module kgaq

go 1.24.0
