package kgaq_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the repo documents whose links the docs CI job keeps alive.
var docFiles = []string{"README.md", "DESIGN.md", "PAPER.md", "ROADMAP.md", "CHANGES.md"}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks verifies every relative markdown link in the tracked
// documents resolves to a file or directory that exists, and that
// file:symbol pointers of the form `path/to/file.go` name real files.
// External (http/https/mailto) links are not fetched — CI must not depend
// on the network — but their URLs must at least parse as absolute.
func TestDocLinks(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken relative link %q", doc, m[1])
			}
		}
	}
}

// TestPaperMapPointers keeps PAPER.md's file pointers honest: every
// `internal/...` or `cmd/...` path mentioned in backticks must exist.
func TestPaperMapPointers(t *testing.T) {
	data, err := os.ReadFile("PAPER.md")
	if err != nil {
		t.Fatal(err)
	}
	pathRe := regexp.MustCompile("`((?:internal|cmd)/[A-Za-z0-9_./-]*)`")
	seen := map[string]bool{}
	for _, m := range pathRe.FindAllStringSubmatch(string(data), -1) {
		p := m[1]
		if seen[p] {
			continue
		}
		seen[p] = true
		if _, err := os.Stat(filepath.FromSlash(p)); err != nil {
			t.Errorf("PAPER.md: pointer %q names a missing path", p)
		}
	}
	if len(seen) == 0 {
		t.Fatal("PAPER.md contains no file pointers — the paper→code map is gone")
	}
}

// TestPaperMapSymbols spot-checks that the symbols PAPER.md anchors the
// paper's core machinery to still exist in the named files, so the map
// cannot silently rot as code moves.
func TestPaperMapSymbols(t *testing.T) {
	checks := []struct{ file, symbol string }{
		{"internal/semsim/semsim.go", "func (c *Calculator) PathSim"},
		{"internal/walk/walker.go", "func (w *Walker) ConvergeCtx"},
		{"internal/walk/walker.go", "func (w *Walker) AnswerDistribution"},
		{"internal/estimate/estimate.go", "func Estimate"},
		{"internal/estimate/estimate.go", "func NextSampleSize"},
		{"internal/estimate/estimate.go", "func Satisfied"},
		{"internal/estimate/stratified.go", "func EstimateStratified"},
		{"internal/estimate/stratified.go", "func MoEStratified"},
		{"internal/estimate/stratified.go", "func AllocateDraws"},
		{"internal/core/exec.go", "func (x *Execution) Refine"},
		{"internal/core/space.go", "func (e *Engine) buildChainLevel"},
		{"internal/core/space.go", "func (e *Engine) buildAssemblySpace"},
		{"internal/core/prepared.go", "func (e *Engine) Prepare"},
		{"internal/core/multi.go", "func (x *Execution) refineMulti"},
		{"internal/estimate/multi.go", "func Project"},
		{"internal/shard/shard.go", "func SplitSpace"},
		{"internal/estimate/estimate_test.go", "func TestTheorem2"},
		{"internal/estimate/multi_test.go", "func TestProjectMatchesSingleTarget"},
	}
	for _, c := range checks {
		data, err := os.ReadFile(filepath.FromSlash(c.file))
		if err != nil {
			t.Errorf("%s: %v", c.file, err)
			continue
		}
		if !strings.Contains(string(data), c.symbol) {
			t.Error(fmt.Sprintf("%s: symbol %q referenced by PAPER.md no longer present", c.file, c.symbol))
		}
	}
}
