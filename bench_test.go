// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation (§VII). Each benchmark runs the corresponding experiment from
// internal/bench on the quick configuration (the tiny dataset, two queries
// per bucket), so `go test -bench=. -benchmem` regenerates a scaled-down
// version of every artefact; `cmd/aggbench` runs the full-size versions.
//
// The reported time per op is the wall-clock of the entire experiment:
// dataset generation, ground-truth computation, and all query executions.
package kgaq

import (
	"io"
	"testing"

	"kgaq/internal/bench"
)

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := bench.Registry()[id]
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := bench.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner(io.Discard, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable5 regenerates Table V: AJS between τ-relevant and
// human-annotated answers across the τ sweep.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table VI: relative error vs τ-GT for all
// methods, datasets and shapes.
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7 regenerates Table VII: relative error vs HA-GT.
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8 regenerates Table VIII: average response time.
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkTable9 regenerates Table IX: the per-round refinement case study.
func BenchmarkTable9(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkTable10 regenerates Table X: operator efficiency.
func BenchmarkTable10(b *testing.B) { runExperiment(b, "table10") }

// BenchmarkTable11 regenerates Table XI: operator effectiveness.
func BenchmarkTable11(b *testing.B) { runExperiment(b, "table11") }

// BenchmarkTable12 regenerates Table XII: per-step (S1/S2/S3) timing.
func BenchmarkTable12(b *testing.B) { runExperiment(b, "table12") }

// BenchmarkTable13 regenerates Table XIII: the embedding-model comparison.
func BenchmarkTable13(b *testing.B) { runExperiment(b, "table13") }

// BenchmarkFig5a regenerates Fig. 5(a): semantic vs topology sampling.
func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5b regenerates Fig. 5(b): validation on/off.
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig5c regenerates Fig. 5(c): Eq. 12 vs fixed sample growth.
func BenchmarkFig5c(b *testing.B) { runExperiment(b, "fig5c") }

// BenchmarkFig6a regenerates Fig. 6(a): interactive eb tightening.
func BenchmarkFig6a(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6b regenerates Fig. 6(b): the confidence-level sweep.
func BenchmarkFig6b(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig6c regenerates Fig. 6(c): the repeat-factor sweep.
func BenchmarkFig6c(b *testing.B) { runExperiment(b, "fig6c") }

// BenchmarkFig6d regenerates Fig. 6(d): the sample-ratio sweep.
func BenchmarkFig6d(b *testing.B) { runExperiment(b, "fig6d") }

// BenchmarkFig6e regenerates Fig. 6(e): the n-bound sweep.
func BenchmarkFig6e(b *testing.B) { runExperiment(b, "fig6e") }

// BenchmarkFig6f regenerates Fig. 6(f): the τ sweep against both ground
// truths.
func BenchmarkFig6f(b *testing.B) { runExperiment(b, "fig6f") }

// BenchmarkAblationDivisor compares the estimator divisor policies (the
// DESIGN.md estimator subtlety).
func BenchmarkAblationDivisor(b *testing.B) { runExperiment(b, "ablation-divisor") }
