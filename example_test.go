package kgaq_test

import (
	"context"
	"fmt"

	"kgaq"
)

// exampleEngine builds an engine over the built-in "tiny" synthetic dataset
// — a schema-flexible knowledge graph plus a matching oracle embedding, so
// the examples run self-contained and deterministically.
func exampleEngine(opts kgaq.Options) *kgaq.Engine {
	ds, err := kgaq.GenerateDataset("tiny")
	if err != nil {
		panic(err)
	}
	if opts.Tau == 0 {
		opts.Tau, _ = kgaq.DatasetOptimalTau("tiny")
	}
	engine, err := kgaq.NewEngine(ds.Graph, ds.Model, opts)
	if err != nil {
		panic(err)
	}
	return engine
}

// ExampleEngine_Query answers the running-example aggregate — the average
// price of automobiles produced in a country — with a 95%-confidence
// accuracy guarantee, parsed from the textual query language.
func ExampleEngine_Query() {
	engine := exampleEngine(kgaq.Options{ErrorBound: 0.05, Seed: 1})
	q, err := kgaq.ParseQuery(
		"AVG(price) MATCH (g:Country name=Country_0)-[product]->(c:Automobile) TARGET c")
	if err != nil {
		panic(err)
	}
	res, err := engine.Query(context.Background(), q)
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("has estimate:", res.Estimate > 0)
	fmt.Println("confidence:", res.Confidence)
	// Output:
	// converged: true
	// has estimate: true
	// confidence: 0.95
}

// ExampleExecution_Refine starts a query once and tightens the error bound
// interactively: the second Refine reuses every draw the first collected,
// so the sample only grows.
func ExampleExecution_Refine() {
	engine := exampleEngine(kgaq.Options{Seed: 1})
	q := kgaq.SimpleQuery(kgaq.Count, "", "Country_0", "Country", "product", "Automobile")
	exec, err := engine.Start(context.Background(), q)
	if err != nil {
		panic(err)
	}
	loose, err := exec.Refine(context.Background(), 0.20)
	if err != nil {
		panic(err)
	}
	tight, err := exec.Refine(context.Background(), 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Println("loose converged:", loose.Converged)
	fmt.Println("tight converged:", tight.Converged)
	fmt.Println("sample reused and grown:", tight.SampleSize >= loose.SampleSize)
	// Output:
	// loose converged: true
	// tight converged: true
	// sample reused and grown: true
}

// ExampleEngine_Prepare compiles a query once and executes it three ways:
// two repeat executions of the plan (the second skips resolution,
// convergence and the answer-space build entirely) and one multi-aggregate
// execution evaluating COUNT, SUM and AVG over a single shared sample.
func ExampleEngine_Prepare() {
	engine := exampleEngine(kgaq.Options{ErrorBound: 0.05, Seed: 1})
	q := kgaq.SimpleQuery(kgaq.Avg, "price", "Country_0", "Country", "product", "Automobile")

	plan, err := engine.Prepare(context.Background(), q)
	if err != nil {
		panic(err)
	}
	info := plan.Plan()
	fmt.Println("shape:", info.Shape)
	fmt.Println("built fresh:", info.CacheBuilt > 0)

	first, err := plan.Query(context.Background())
	if err != nil {
		panic(err)
	}
	again, err := plan.Query(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("deterministic reuse:", first.Estimate == again.Estimate)

	multi, err := plan.QueryMulti(context.Background(), []kgaq.AggSpec{
		{Func: kgaq.Count},
		{Func: kgaq.Sum, Attr: "price"},
		{Func: kgaq.Avg, Attr: "price"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("aggregates:", len(multi.Aggs))
	fmt.Println("one shared sample:", multi.SampleSize > 0 && multi.Converged)
	// Output:
	// shape: simple
	// built fresh: true
	// deterministic reuse: true
	// aggregates: 3
	// one shared sample: true
}

// ExampleEngine_QueryBatch runs a whole workload concurrently over the
// engine's worker pool; results come back in input order.
func ExampleEngine_QueryBatch() {
	engine := exampleEngine(kgaq.Options{ErrorBound: 0.10, Seed: 1})
	queries := []*kgaq.AggregateQuery{
		kgaq.SimpleQuery(kgaq.Count, "", "Country_0", "Country", "product", "Automobile"),
		kgaq.SimpleQuery(kgaq.Avg, "price", "Country_0", "Country", "product", "Automobile"),
	}
	results := engine.QueryBatch(context.Background(), queries, kgaq.WithParallelism(2))
	for i, r := range results {
		fmt.Printf("query %d: err=%v converged=%v\n", i, r.Err, r.Result.Converged)
	}
	// Output:
	// query 0: err=<nil> converged=true
	// query 1: err=<nil> converged=true
}
