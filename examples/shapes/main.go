// Shapes: the §V complex query shapes — chain, cycle and flower — built
// with the query builder and answered through decomposition–assembly, plus
// the textual query language.
//
// Run with:
//
//	go run ./examples/shapes
package main

import (
	"context"
	"fmt"
	"log"

	"kgaq"
)

func main() {
	ds, err := kgaq.GenerateDataset("tiny")
	if err != nil {
		log.Fatal(err)
	}
	tau, _ := kgaq.DatasetOptimalTau("tiny")
	engine, err := kgaq.NewEngine(ds.Graph, ds.Model, kgaq.Options{
		Tau: tau, ErrorBound: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Chain (Q10 style): cars designed by Country_0's designers — two-stage
	// sampling through the Designer intermediates.
	chain := kgaq.ChainQuery(kgaq.Count, "", "Country_0", "Country", []kgaq.QueryHop{
		{Predicate: "nationality", Types: []string{"Designer"}},
		{Predicate: "designer", Types: []string{"Automobile"}},
	})
	run(engine, chain)

	// Cycle (Fig. 4c style): players of clubs grounded in Country_1 who
	// were also born there.
	b := kgaq.NewQueryBuilder()
	tgt := b.Target("SoccerPlayer")
	club := b.Unknown("SoccerClub")
	cn := b.Specific("Country_1", "Country")
	b.Edge(tgt, club, "team")
	b.Edge(club, cn, "ground")
	b.Edge(tgt, cn, "bornIn")
	run(engine, b.Aggregate(kgaq.Avg, "age"))

	// The same cycle in the textual query language.
	parsed, err := kgaq.ParseQuery(
		"AVG(age) MATCH (p:SoccerPlayer)-[team]->(c:SoccerClub)-[ground]->(x:Country name=Country_1), (p)-[bornIn]->(x) TARGET p")
	if err != nil {
		log.Fatal(err)
	}
	run(engine, parsed)

	// Flower: the workload's own flower query (cycle + birth-city branch).
	for _, wq := range ds.Queries {
		if wq.Category == "flower" {
			run(engine, wq.Agg)
			break
		}
	}
}

func run(engine *kgaq.Engine, q *kgaq.AggregateQuery) {
	res, err := engine.Query(context.Background(), q)
	if err != nil {
		log.Printf("%s: %v", q, err)
		return
	}
	fmt.Printf("%s\n  estimate %s  candidates=%d sample=%d converged=%v\n\n",
		q, res.Interval(), res.Candidates, res.SampleSize, res.Converged)
}
