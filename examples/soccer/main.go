// Soccer: GROUP-BY and star-shaped queries over the generated soccer
// domain — "how many players born in Country_1, by age group?" (Q4 style)
// and "players born in Country_1 who play for one of its clubs" (Q9 style).
//
// Run with:
//
//	go run ./examples/soccer
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"kgaq"
)

func main() {
	ds, err := kgaq.GenerateDataset("tiny")
	if err != nil {
		log.Fatal(err)
	}
	tau, _ := kgaq.DatasetOptimalTau("tiny")
	engine, err := kgaq.NewEngine(ds.Graph, ds.Model, kgaq.Options{
		Tau: tau, ErrorBound: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Q4 style: players born in Country_1, grouped by age band. The born-in
	// relation appears in the graph as direct bornIn edges, birthPlace→city
	// chains, and hometown edges; the sampler finds all of them.
	q := kgaq.SimpleQuery(kgaq.Count, "", "Country_1", "Country", "bornIn", "SoccerPlayer").
		WithGroupBy("age_group")
	ctx := context.Background()
	res, err := engine.Query(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", q)
	fmt.Printf("  overall: %s over %d candidates\n", res.Interval(), res.Candidates)
	labels := make([]string, 0, len(res.Groups))
	for l := range res.Groups {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		gr := res.Groups[l]
		fmt.Printf("  age %-4s ≈ %6.2f ± %.2f  (%d draws)\n", l, gr.Estimate, gr.MoE, gr.Draws)
	}

	// Q9 style star: find a club of Country_1 from the workload's own star
	// query so the example works on any seed.
	var star *kgaq.AggregateQuery
	for _, wq := range ds.Queries {
		if wq.Category == "star" {
			star = wq.Agg
			break
		}
	}
	if star == nil {
		log.Fatal("workload has no star query")
	}
	// Per-query options override the engine defaults without rebuilding the
	// engine: the star query runs at a looser 10% bound and its own seed.
	sres, err := engine.Query(ctx, star, kgaq.WithErrorBound(0.10), kgaq.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n  estimate %s (converged: %v)\n", star, sres.Interval(), sres.Converged)

	// MAX without a guarantee: the most valuable player born in Country_1.
	mq := kgaq.SimpleQuery(kgaq.Max, "transfer_value", "Country_1", "Country", "bornIn", "SoccerPlayer")
	mres, err := engine.Query(ctx, mq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n  MAX ≈ %.0f (no accuracy guarantee; grows toward the exact value with sample size)\n",
		mq, mres.Estimate)
}
