// Custombuild: the full do-it-yourself cycle on a hand-built knowledge
// graph — assemble the paper's Figure 1 KG with the graph builder, train a
// TransE embedding from scratch, persist and reload both artefacts, and
// query.
//
// A 12-edge toy graph cannot teach an embedding real predicate semantics,
// so this example runs the engine with validation disabled (trusting the
// sampler) and says so: the estimate aggregates over all reachable typed
// candidates. With a production-size graph, train with DefaultTrainConfig
// and keep validation on (see examples/quickstart for the full pipeline on
// generated data).
//
// Run with:
//
//	go run ./examples/custombuild
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kgaq"
)

func main() {
	// 1. Hand-build Figure 1 of the paper.
	b := kgaq.NewGraphBuilder()
	germany := b.AddNode("Germany", "Country")
	vw := b.AddNode("Volkswagen", "Company")
	porscheCo := b.AddNode("Porsche", "Company")
	schreyer := b.AddNode("Peter_Schreyer", "Person")

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	car := func(name string, price float64) kgaq.NodeID {
		id := b.AddNode(name, "Automobile")
		must(b.SetAttr(id, "price", price))
		return id
	}
	must(b.AddEdge(car("BMW_320", 35000), "assembly", germany))
	audi := car("Audi_TT", 42000)
	must(b.AddEdge(audi, "assembly", vw))
	must(b.AddEdge(vw, "country", germany))
	p911 := car("Porsche_911", 64300)
	must(b.AddEdge(p911, "manufacturer", porscheCo))
	must(b.AddEdge(porscheCo, "country", germany))
	must(b.AddEdge(vw, "product", car("Lamando", 24060.80)))
	kia := car("KIA_K5", 24990)
	must(b.AddEdge(kia, "designer", schreyer))
	must(b.AddEdge(schreyer, "nationality", germany))
	g := b.Build()
	fmt.Println("built:", g)

	// 2. Train a TransE embedding on the graph's triples.
	cfg := kgaq.DefaultTrainConfig()
	cfg.Epochs = 150
	model, err := kgaq.TrainEmbedding("TransE", g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s: %d params in %s\n",
		model.Name(), model.Params, model.TrainTime.Round(1_000_000))

	// 3. Persist and reload both artefacts, as a production deployment
	// would between the offline and online phases.
	dir, err := os.MkdirTemp("", "kgaq-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	gp := filepath.Join(dir, "figure1.graph")
	ep := filepath.Join(dir, "figure1.emb")
	must(kgaq.SaveGraphSnapshot(gp, g))
	must(kgaq.SaveEmbedding(ep, model))
	g2, err := kgaq.LoadGraphSnapshot(gp)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := kgaq.LoadEmbedding(ep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reloaded:", g2)

	// 4. Query. SkipValidation trusts the sampler because a 12-edge TransE
	// cannot separate "produced in" from "designed by"; the estimate is the
	// average over all six reachable automobiles.
	engine, err := kgaq.NewEngine(g2, m2, kgaq.Options{
		ErrorBound:     0.05,
		SkipValidation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := kgaq.SimpleQuery(kgaq.Avg, "price", "Germany", "Country", "product", "Automobile")
	res, err := engine.Query(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s (validation off)\n  estimate %s over %d candidates\n",
		q, res.Interval(), res.Candidates)
	fmt.Println("  note: with a production-size graph, keep validation on and τ≈0.85")
}
