// Quickstart: generate a benchmark knowledge graph with a ready embedding,
// ask the paper's running-example query — "the average price of cars
// produced in Country_0" — and read off the approximate answer with its
// confidence interval and the human-annotated ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"kgaq"
)

func main() {
	// 1. A knowledge graph plus a matching offline embedding. The built-in
	// generator mirrors the paper's evaluation data: the same semantic
	// relation ("produced in") appears as five structurally different
	// subgraph patterns, plus semantically wrong look-alike paths. For your
	// own data, use kgaq.LoadNTriplesFile + kgaq.TrainEmbedding instead.
	ds, err := kgaq.GenerateDataset("tiny")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:    ", ds.Graph)
	fmt.Printf("embedding: %s, d=%d\n", ds.Model.Name(), ds.Model.Dim())

	// 2. An engine with the paper's default guarantees: relative error
	// bound 1% at 95% confidence.
	tau, _ := kgaq.DatasetOptimalTau("tiny")
	engine, err := kgaq.NewEngine(ds.Graph, ds.Model, kgaq.Options{
		Tau:        tau,  // similarity threshold separating correct answers
		ErrorBound: 0.02, // |V̂-V|/V ≤ 2% …
		Confidence: 0.95, // … with 95% probability
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The running example, anchored at a country from the generated
	// workload. Answers connected through assembly edges,
	// manufacturer→company→country chains, product edges from companies —
	// all semantically "produced in" — are found; designer-nationality
	// look-alikes are rejected by correctness validation.
	anchor := workloadAnchor(ds)
	q := kgaq.SimpleQuery(kgaq.Avg, "price", anchor, "Country", "product", "Automobile")

	// Queries take a context — a deadline or cancellation lands mid-query
	// and returns the partial estimate — and per-query options. OnRound
	// streams each refinement round live as the interval tightens.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fmt.Println("\nrefinement rounds (streamed):")
	res, err := engine.Query(ctx, q, kgaq.OnRound(func(r kgaq.Round) {
		fmt.Printf("  |S|=%-5d estimate %.2f ± %.2f\n", r.SampleSize, r.Estimate, r.MoE)
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n", q)
	fmt.Printf("  approximate answer:   %s\n", res.Interval())
	fmt.Printf("  sample:               %d draws over %d candidate answers\n",
		res.SampleSize, res.Candidates)
	fmt.Printf("  refinement rounds:    %d (converged: %v)\n", len(res.Rounds), res.Converged)
	fmt.Printf("  time:                 %.1fms (S1 %.1f / S2 %.1f / S3 %.1f)\n",
		float64(res.Times.Total().Microseconds())/1000,
		ms(res.Times.Sampling), ms(res.Times.Estimation), ms(res.Times.Guarantee))

	// 4. Compare with the ground truth the generator knows. Workload
	// queries are matched by aggregate AND anchor entity.
	for _, wq := range ds.Queries {
		if wq.Agg.String() != q.String() || !anchoredAt(wq, anchor) {
			continue
		}
		truth, err := ds.HAValue(wq)
		if err == nil && truth != 0 {
			fmt.Printf("  ground truth (HA-GT): %.2f → relative error %.2f%%\n",
				truth, 100*math.Abs(res.Estimate-truth)/truth)
		}
	}
}

// anchoredAt reports whether the workload query's specific entity is name.
func anchoredAt(wq kgaq.DatasetQuery, name string) bool {
	for _, n := range wq.Agg.Q.Nodes {
		if n.Name == name {
			return true
		}
	}
	return false
}

// workloadAnchor returns the specific entity of the workload's first simple
// query, so the example always has ground truth to compare against.
func workloadAnchor(ds *kgaq.Dataset) string {
	for _, wq := range ds.Queries {
		if wq.Category != "simple" {
			continue
		}
		for _, n := range wq.Agg.Q.Nodes {
			if n.Name != "" && len(n.Types) > 0 && n.Types[0] == "Country" {
				return n.Name
			}
		}
	}
	return "Country_0"
}

func ms(d interface{ Microseconds() int64 }) float64 {
	return float64(d.Microseconds()) / 1000
}
