// Autos: the paper's automotive workload on a generated DBpedia-shaped
// dataset — Q1/Q2 style simple aggregates, a Q3 style filter query, and the
// interactive error-bound refinement of §IV-C, with ground-truth comparison.
//
// Run with:
//
//	go run ./examples/autos
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"kgaq"
)

func main() {
	ctx := context.Background()
	ds, err := kgaq.GenerateDataset("tiny")
	if err != nil {
		log.Fatal(err)
	}
	tau, err := kgaq.DatasetOptimalTau("tiny")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", ds.Graph)

	engine, err := kgaq.NewEngine(ds.Graph, ds.Model, kgaq.Options{
		Tau: tau, ErrorBound: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Q1/Q2: how many cars does the anchor country produce, and at what
	// average price? The anchor comes from the generated workload so the
	// human-annotated ground truth is always available.
	anchor := workloadAnchor(ds)
	for _, q := range []*kgaq.AggregateQuery{
		kgaq.SimpleQuery(kgaq.Count, "", anchor, "Country", "product", "Automobile"),
		kgaq.SimpleQuery(kgaq.Avg, "price", anchor, "Country", "product", "Automobile"),
	} {
		res, err := engine.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		truth := groundTruth(ds, q)
		fmt.Printf("\n%s\n  estimate %s", q, res.Interval())
		if !math.IsNaN(truth) {
			fmt.Printf("   [HA ground truth %.2f, error %.2f%%]",
				truth, 100*math.Abs(res.Estimate-truth)/truth)
		}
		fmt.Println()
	}

	// Q3: add a fuel-economy filter (Definition 6).
	q3 := kgaq.SimpleQuery(kgaq.Avg, "price", anchor, "Country", "product", "Automobile").
		WithFilter("fuel_economy", 22, 32)
	res, err := engine.Query(ctx, q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n  estimate %s\n", q3, res.Interval())

	// Interactive refinement: tighten eb step by step and watch the
	// incremental cost stay small (Fig. 6a behaviour) — the collected
	// sample is reused across steps.
	fmt.Println("\ninteractive refinement of AVG(price):")
	x, err := engine.Start(ctx, kgaq.SimpleQuery(kgaq.Avg, "price", anchor, "Country", "product", "Automobile"))
	if err != nil {
		log.Fatal(err)
	}
	for _, eb := range []float64{0.05, 0.04, 0.03, 0.02, 0.01} {
		begin := time.Now()
		res, err := x.Refine(ctx, eb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eb=%.0f%%  %s  |S|=%-6d  (+%6.2fms)\n",
			eb*100, res.Interval(), res.SampleSize,
			float64(time.Since(begin).Microseconds())/1000)
	}
}

// workloadAnchor returns the specific country of the workload's first
// simple query.
func workloadAnchor(ds *kgaq.Dataset) string {
	for _, wq := range ds.Queries {
		if wq.Category != "simple" {
			continue
		}
		for _, n := range wq.Agg.Q.Nodes {
			if n.Name != "" && len(n.Types) > 0 && n.Types[0] == "Country" {
				return n.Name
			}
		}
	}
	return "Country_0"
}

// groundTruth returns the dataset's HA-GT for a query matching the given
// one, or NaN when the workload has no such query.
func groundTruth(ds *kgaq.Dataset, q *kgaq.AggregateQuery) float64 {
	anchor := ""
	for _, n := range q.Q.Nodes {
		if n.Name != "" {
			anchor = n.Name
		}
	}
	for _, wq := range ds.Queries {
		if wq.Agg.String() != q.String() {
			continue
		}
		match := false
		for _, n := range wq.Agg.Q.Nodes {
			if n.Name == anchor {
				match = true
			}
		}
		if !match {
			continue
		}
		if v, err := ds.HAValue(wq); err == nil {
			return v
		}
	}
	return math.NaN()
}
