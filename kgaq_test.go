package kgaq

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole public surface: dataset
// generation, engine construction, execution with a guarantee, interactive
// refinement, and the textual query language.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := GenerateDataset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumNodes() == 0 || len(ds.Queries) == 0 {
		t.Fatal("empty dataset")
	}
	tau, err := DatasetOptimalTau("tiny")
	if err != nil || tau <= 0 {
		t.Fatalf("optimal tau = %v, %v", tau, err)
	}
	engine, err := NewEngine(ds.Graph, ds.Model, Options{Tau: tau, ErrorBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	q := SimpleQuery(Count, "", "Country_0", "Country", "product", "Automobile")
	res, err := engine.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate <= 0 || res.SampleSize == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	iv := res.Interval()
	if !iv.Contains(res.Estimate) {
		t.Fatal("interval must contain its own estimate")
	}

	// Interactive refinement reuses the sample.
	x, err := engine.Start(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := x.Refine(context.Background(), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := x.Refine(context.Background(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SampleSize < r1.SampleSize {
		t.Fatal("refinement shrank the sample")
	}

	// The textual language parses to an equivalent query.
	parsed, err := ParseQuery("COUNT(*) MATCH (g:Country name=Country_0)-[product]->(c:Automobile) TARGET c")
	if err != nil {
		t.Fatal(err)
	}
	pres, err := engine.Execute(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pres.Estimate-res.Estimate) > 0.35*res.Estimate {
		t.Fatalf("parsed query estimate %v far from built query %v", pres.Estimate, res.Estimate)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	ds, err := GenerateDataset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.snap")
	ep := filepath.Join(dir, "m.snap")
	if err := SaveGraphSnapshot(gp, ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := SaveEmbedding(ep, ds.Model); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraphSnapshot(gp)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadEmbedding(ep)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != ds.Graph.NumNodes() {
		t.Fatal("graph snapshot mismatch")
	}
	if _, err := NewEngine(g2, m2, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITrainAndQueryNT(t *testing.T) {
	// Load a small N-Triples fixture through the facade, train an
	// embedding, and run a query end to end without a guarantee of
	// accuracy (the fixture is tiny) — the pipeline must still hold
	// together.
	nt := `
<Germany> <rdf:type> <Country> .
<BMW_320> <rdf:type> <Automobile> .
<BMW_320> <assembly> <Germany> .
<BMW_320> <price> "35000" .
<Audi_TT> <rdf:type> <Automobile> .
<Audi_TT> <assembly> <Germany> .
<Audi_TT> <price> "42000" .
<Lamando> <rdf:type> <Automobile> .
<Lamando> <assembly> <Germany> .
<Lamando> <price> "24060" .
`
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.nt")
	if err := os.WriteFile(path, []byte(nt), 0o644); err != nil {
		t.Fatal(err)
	}
	g, errs := LoadNTriplesFile(path)
	if len(errs) != 0 {
		t.Fatalf("load errors: %v", errs)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	model, err := TrainEmbedding("TransE", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(g, model, Options{Tau: 0.99, SkipValidation: true, ErrorBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(SimpleQuery(Avg, "price", "Germany", "Country", "assembly", "Automobile"))
	if err != nil {
		t.Fatal(err)
	}
	want := (35000.0 + 42000 + 24060) / 3
	if math.Abs(res.Estimate-want)/want > 0.10 {
		t.Fatalf("AVG = %v, want ≈%v", res.Estimate, want)
	}
}

func TestDatasetProfiles(t *testing.T) {
	names := DatasetProfiles()
	if len(names) != 4 {
		t.Fatalf("profiles = %v", names)
	}
	if _, err := GenerateDataset("no-such"); !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("err = %v, want ErrUnknownProfile", err)
	}
	if _, err := DatasetOptimalTau("no-such"); !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("err = %v, want ErrUnknownProfile", err)
	}
	if e := errUnknownProfile("x"); !strings.Contains(e.Error(), "x") || !errors.Is(e, ErrUnknownProfile) {
		t.Fatalf("error = %v", e)
	}
}

// TestFacadeContextAPI drives the redesigned execution surface through the
// facade: per-query options, streaming rounds, cancellation, and the batch
// entry point.
func TestFacadeContextAPI(t *testing.T) {
	ds, err := GenerateDataset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	tau, _ := DatasetOptimalTau("tiny")
	engine, err := NewEngine(ds.Graph, ds.Model, Options{Tau: tau, ErrorBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := SimpleQuery(Count, "", "Country_0", "Country", "product", "Automobile")

	var rounds int
	res, err := engine.Query(ctx, q, WithErrorBound(0.10), WithSeed(5),
		OnRound(func(Round) { rounds++ }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate <= 0 || rounds == 0 || rounds != len(res.Rounds) {
		t.Fatalf("estimate %v, %d streamed rounds, %d recorded", res.Estimate, rounds, len(res.Rounds))
	}

	// Cancellation surfaces the facade sentinel.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := engine.Query(cctx, q); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	// Batch keeps per-query outcomes aligned.
	out := engine.QueryBatch(ctx, []*AggregateQuery{q, q}, WithParallelism(2), WithErrorBound(0.10))
	if len(out) != 2 || out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("batch = %+v", out)
	}
	if out[0].Result.Estimate != out[1].Result.Estimate {
		t.Fatal("identical batch queries diverged")
	}
}

func TestEmbeddingModelNames(t *testing.T) {
	if len(EmbeddingModelNames()) != 5 {
		t.Fatalf("models = %v", EmbeddingModelNames())
	}
}

// TestFacadePreparedAPI drives the two-phase surface: Prepare once,
// introspect the plan, execute repeatedly, and fan three aggregates over
// one shared sample with QueryMulti.
func TestFacadePreparedAPI(t *testing.T) {
	ds, err := GenerateDataset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	tau, _ := DatasetOptimalTau("tiny")
	engine, err := NewEngine(ds.Graph, ds.Model, Options{Tau: tau, ErrorBound: 0.10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := SimpleQuery(Count, "", "Country_0", "Country", "product", "Automobile")

	plan, err := engine.Prepare(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	info := plan.Plan()
	if info.Candidates == 0 || info.CacheBuilt == 0 {
		t.Fatalf("plan metadata empty: %+v", info)
	}
	if _, err := ParseQuery(info.Query); err != nil {
		t.Fatalf("PlanInfo.Query %q not re-parseable: %v", info.Query, err)
	}
	r1, err := plan.Query(ctx)
	if err != nil || !r1.Converged {
		t.Fatalf("plan query: %v / %+v", err, r1)
	}
	r2, err := plan.Query(ctx)
	if err != nil || r2.Estimate != r1.Estimate {
		t.Fatalf("plan re-execution diverged: %v / %v vs %v", err, r2.Estimate, r1.Estimate)
	}
	if _, err := plan.Query(ctx, WithShards(4)); !errors.Is(err, ErrPlanOption) {
		t.Fatalf("plan-knob override: err = %v, want ErrPlanOption", err)
	}

	multi, err := plan.QueryMulti(ctx, []AggSpec{
		{Func: Count},
		{Func: Sum, Attr: "price"},
		{Func: Avg, Attr: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !multi.Converged || len(multi.Aggs) != 3 {
		t.Fatalf("multi = %+v", multi)
	}
	if math.Abs(multi.Aggs[2].Estimate-multi.Aggs[1].Estimate/multi.Aggs[0].Estimate) >
		0.05*multi.Aggs[2].Estimate {
		t.Fatalf("AVG %v inconsistent with SUM/COUNT %v/%v",
			multi.Aggs[2].Estimate, multi.Aggs[1].Estimate, multi.Aggs[0].Estimate)
	}
	if _, err := engine.QueryMulti(ctx, q, []AggSpec{{Func: Sum}}); !errors.Is(err, ErrBadAggSpec) {
		t.Fatalf("bad spec: err = %v, want ErrBadAggSpec", err)
	}
}
