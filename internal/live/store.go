package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kgaq/internal/kg"
)

// Event describes one applied batch, delivered synchronously (in epoch
// order) to OnApply hooks. Touched lists the nodes whose adjacency or type
// set changed — the scope the engine's answer-space cache intersects for
// selective invalidation. Attribute-only updates produce an empty Touched:
// cached sampling spaces hold no attribute data, so they stay valid.
type Event struct {
	Epoch   uint64
	Ops     int
	Touched []kg.NodeID
}

// CompactEvent describes one completed compaction, delivered to OnCompact
// hooks from the compacting goroutine — the natural place to rebuild warm
// state (converged walkers, stationary distributions) off the query path.
type CompactEvent struct {
	// Epoch is the store's epoch at swap time; content is unchanged.
	Epoch uint64
	// Folded is the number of delta nodes baked into the new base.
	Folded int
	// Elapsed is the wall-clock cost of the fold (materialise + replay).
	Elapsed time.Duration
}

// Store owns one live graph: the current Snapshot, the monotonic epoch
// counter, the batch log the compactor replays, and the registered hooks.
//
// Concurrency model: readers call Snapshot (one atomic load, never blocks)
// and keep the returned epoch-consistent view as long as they like. Writers
// (Apply) and the compactor serialise on an internal mutex; hooks run
// synchronously under it, so they observe events in epoch order and must be
// fast.
type Store struct {
	snap atomic.Pointer[Snapshot]

	mu      sync.Mutex
	log     []loggedBatch // batches since the current base, oldest first
	watch   chan struct{} // closed and replaced on every Apply
	applyFn []func(Event)
	compFn  []func(CompactEvent)

	compacting atomic.Bool
}

type loggedBatch struct {
	epoch uint64
	batch Batch
}

// NewStore wraps an immutable base graph as a live graph starting at the
// given epoch (the epoch a snapshot file recorded, or 0 for a fresh graph).
func NewStore(base *kg.Graph, epoch uint64) *Store {
	s := &Store{watch: make(chan struct{})}
	s.snap.Store(emptySnapshot(base, epoch))
	return s
}

// Snapshot returns the current epoch-consistent view. The returned Snapshot
// is immutable; later mutations produce new snapshots and never disturb it.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Epoch returns the current epoch.
func (s *Store) Epoch() uint64 { return s.Snapshot().epoch }

// OnApply registers a hook invoked synchronously after every applied batch,
// in epoch order. Register hooks before serving traffic.
func (s *Store) OnApply(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyFn = append(s.applyFn, fn)
}

// OnCompact registers a hook invoked after every completed compaction, from
// the compacting goroutine.
func (s *Store) OnCompact(fn func(CompactEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compFn = append(s.compFn, fn)
}

// Apply atomically applies a batch: either every mutation lands, the store
// advances exactly one epoch and the snapshot the batch created is
// returned, or nothing happens and the error names the offending mutation.
// In-flight readers are unaffected; the new epoch is visible to every
// Snapshot call that starts after Apply returns — the write half of
// read-your-writes.
func (s *Store) Apply(b Batch) (*Snapshot, error) {
	return s.applyHooked(b, nil)
}

// applyHooked is Apply with a commit gate: commit runs under the write lock
// after the batch validated, before the new snapshot becomes visible. An
// error from commit aborts the apply with the store unchanged — the seam
// Durable uses to make a batch durable strictly before readers can see it.
func (s *Store) applyHooked(b Batch, commit func(next *Snapshot) error) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	next, touched, err := applyBatch(cur, b)
	if err != nil {
		return nil, err
	}
	if commit != nil {
		if err := commit(next); err != nil {
			return nil, err
		}
	}
	// The log exists solely so a compaction in flight can replay batches
	// that land while it folds. With no fold running the batch is already
	// reflected in every future snapshot, so the log stays empty — without
	// this gate it would grow one entry per Apply forever on stores whose
	// delta never crosses the compactor's threshold. The ordering is safe
	// because Compact sets the compacting flag before capturing its fold
	// snapshot under this same mutex: an Apply that observes the flag unset
	// is fully visible to the capture, and one that starts after the
	// capture observes the flag set and logs itself.
	if s.compacting.Load() {
		s.log = append(s.log, loggedBatch{epoch: next.epoch, batch: b})
	} else if len(s.log) > 0 {
		s.log = nil
	}
	s.snap.Store(next)
	old := s.watch
	s.watch = make(chan struct{})
	close(old)
	ev := Event{Epoch: next.epoch, Ops: len(b), Touched: touched}
	for _, fn := range s.applyFn {
		fn(ev)
	}
	return next, nil
}

// WaitEpoch blocks until the store has reached at least the given epoch and
// returns a snapshot at or above it — the read half of read-your-writes.
// It returns ctx's error if cancelled first.
func (s *Store) WaitEpoch(ctx context.Context, epoch uint64) (*Snapshot, error) {
	for {
		snap := s.snap.Load()
		if snap.epoch >= epoch {
			return snap, nil
		}
		s.mu.Lock()
		ch := s.watch
		s.mu.Unlock()
		// Re-check: an Apply may have landed between the load and the lock.
		if snap = s.snap.Load(); snap.epoch >= epoch {
			return snap, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, fmt.Errorf("live: waiting for epoch %d (at %d): %w", epoch, snap.epoch, ctx.Err())
		}
	}
}

// Compact folds the current delta into a fresh immutable base graph,
// preserving every id assignment, and swaps it in under the write lock.
// Batches applied while the fold ran are replayed onto the fresh base, so
// no write is lost and the epoch never moves. The expensive part — the
// materialise — runs outside the lock, off the query and write paths.
// Concurrent Compact calls coalesce: the loser returns immediately.
func (s *Store) Compact() (*CompactEvent, error) {
	if !s.compacting.CompareAndSwap(false, true) {
		return nil, nil
	}
	defer s.compacting.Store(false)

	begin := time.Now()
	// The fold snapshot is captured under the write mutex, after the
	// compacting flag is up: every batch either made it into this snapshot
	// or logged itself for the replay below (see Apply). A plain load here
	// could miss a batch mid-Apply that checked the flag before it rose.
	s.mu.Lock()
	snap := s.snap.Load()
	s.mu.Unlock()
	folded := snap.DeltaSize()
	if folded == 0 && len(snap.names) == 0 {
		return nil, nil
	}
	base, err := kg.Materialize(snap)
	if err != nil {
		return nil, fmt.Errorf("live: compact: %w", err)
	}

	s.mu.Lock()
	fresh := emptySnapshot(base, snap.epoch)
	var tail []loggedBatch
	for _, lb := range s.log {
		if lb.epoch <= snap.epoch {
			continue // folded into the new base
		}
		next, _, err := applyBatch(fresh, lb.batch)
		if err != nil {
			// Cannot happen for a batch that applied once already; bail out
			// without swapping rather than lose a write.
			s.mu.Unlock()
			return nil, fmt.Errorf("live: compact replay of epoch %d: %w", lb.epoch, err)
		}
		fresh = next
		tail = append(tail, lb)
	}
	s.log = tail
	s.snap.Store(fresh)
	compFn := append([]func(CompactEvent){}, s.compFn...)
	s.mu.Unlock()

	ev := CompactEvent{Epoch: fresh.epoch, Folded: folded, Elapsed: time.Since(begin)}
	for _, fn := range compFn {
		fn(ev)
	}
	return &ev, nil
}

// CompactorConfig tunes the background compactor.
type CompactorConfig struct {
	// Interval between fold checks (default 2s).
	Interval time.Duration
	// MinDelta skips folds while the delta covers fewer nodes (default 256).
	MinDelta int
	// OnError observes fold failures (default: ignored).
	OnError func(error)
}

func (c CompactorConfig) withDefaults() CompactorConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MinDelta <= 0 {
		c.MinDelta = 256
	}
	return c
}

// StartCompactor runs the background compactor until ctx is cancelled: every
// Interval it folds the delta into a fresh base iff the delta has grown past
// MinDelta nodes. It returns a function that stops the compactor and waits
// for a fold in progress to finish.
func (s *Store) StartCompactor(ctx context.Context, cfg CompactorConfig) (stop func()) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if s.Snapshot().DeltaSize() < cfg.MinDelta {
					continue
				}
				if _, err := s.Compact(); err != nil && cfg.OnError != nil {
					cfg.OnError(err)
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}
