package live

import "kgaq/internal/obs"

// Live-tier metrics: the durability picture beyond what one process's
// /debug/durability snapshot shows — checkpoint cadence/cost and how much
// WAL the last boot had to replay.
var (
	metCheckpoints = obs.Default().Counter("kgaq_live_checkpoints_total",
		"Checkpoints folded to disk.")
	metCheckpointSeconds = obs.Default().Histogram("kgaq_live_checkpoint_seconds",
		"Checkpoint duration: materialize, write, fsync, rename, WAL trim.", obs.DefBuckets)
	metReplayed = obs.Default().Counter("kgaq_live_replayed_records_total",
		"WAL records replayed during boot recovery.")
	metMutations = obs.Default().Counter("kgaq_live_mutations_total",
		"Mutation batches applied durably (WAL-framed before visibility).")
)
