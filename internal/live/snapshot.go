package live

import (
	"fmt"
	"sort"

	"kgaq/internal/kg"
)

// Snapshot is one immutable epoch of a live graph: the compacted base plus
// the copy-on-write delta of every batch applied since. It implements
// kg.ReadGraph, so the walkers, the validator and the engine read it exactly
// like a plain graph; nodes the delta never touched resolve straight into
// the base's dense slices, so an overlay read costs one map miss over the
// immutable path.
//
// Snapshots are persistent-data-structure style: Apply copies the top-level
// delta maps (O(delta size), kept small by compaction) and the per-node
// slices it edits, never mutating state shared with published snapshots. A
// reader holding a Snapshot therefore sees one frozen epoch forever.
type Snapshot struct {
	base  *kg.Graph
	epoch uint64
	baseN int // base.NumNodes(), the id of the first delta-added node

	// Delta-added nodes: node id baseN+i has name names[i]. nameIndex only
	// holds delta-added names; base names resolve through the base index.
	names     []string
	nameIndex map[string]kg.NodeID

	// Per-node overrides, keyed by node id (base or delta-added). A missing
	// key means "unchanged from base" (or empty, for delta-added nodes).
	adj   map[kg.NodeID][]kg.HalfEdge
	types map[kg.NodeID][]kg.TypeID
	attrs map[kg.NodeID][]kg.AttrValue

	// Vocabulary extensions (types and attributes only; predicates are
	// frozen — see the package comment).
	typeNames []string
	typeIndex map[string]kg.TypeID
	attrNames []string
	attrIndex map[string]kg.AttrID

	numEdges int
}

// emptySnapshot wraps a base graph with no delta at the given epoch.
func emptySnapshot(base *kg.Graph, epoch uint64) *Snapshot {
	return &Snapshot{
		base:      base,
		epoch:     epoch,
		baseN:     base.NumNodes(),
		nameIndex: map[string]kg.NodeID{},
		adj:       map[kg.NodeID][]kg.HalfEdge{},
		types:     map[kg.NodeID][]kg.TypeID{},
		attrs:     map[kg.NodeID][]kg.AttrValue{},
		typeIndex: map[string]kg.TypeID{},
		attrIndex: map[string]kg.AttrID{},
		numEdges:  base.NumEdges(),
	}
}

// clone returns a mutable copy sharing nothing writable with s: top-level
// maps are copied, per-node slices are copied lazily by the mutation
// helpers before their first edit.
func (s *Snapshot) clone() *Snapshot {
	n := &Snapshot{
		base:      s.base,
		epoch:     s.epoch,
		baseN:     s.baseN,
		names:     s.names,
		nameIndex: make(map[string]kg.NodeID, len(s.nameIndex)),
		adj:       make(map[kg.NodeID][]kg.HalfEdge, len(s.adj)),
		types:     make(map[kg.NodeID][]kg.TypeID, len(s.types)),
		attrs:     make(map[kg.NodeID][]kg.AttrValue, len(s.attrs)),
		typeNames: s.typeNames,
		typeIndex: make(map[string]kg.TypeID, len(s.typeIndex)),
		attrNames: s.attrNames,
		attrIndex: make(map[string]kg.AttrID, len(s.attrIndex)),
		numEdges:  s.numEdges,
	}
	for k, v := range s.nameIndex {
		n.nameIndex[k] = v
	}
	for k, v := range s.adj {
		n.adj[k] = v
	}
	for k, v := range s.types {
		n.types[k] = v
	}
	for k, v := range s.attrs {
		n.attrs[k] = v
	}
	for k, v := range s.typeIndex {
		n.typeIndex[k] = v
	}
	for k, v := range s.attrIndex {
		n.attrIndex[k] = v
	}
	return n
}

// Epoch returns the epoch this snapshot is frozen at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Base returns the immutable base graph under the delta.
func (s *Snapshot) Base() *kg.Graph { return s.base }

// DeltaSize returns the number of nodes the delta adds or overrides — the
// compactor's fold trigger.
func (s *Snapshot) DeltaSize() int {
	touched := map[kg.NodeID]struct{}{}
	for u := range s.adj {
		touched[u] = struct{}{}
	}
	for u := range s.types {
		touched[u] = struct{}{}
	}
	for u := range s.attrs {
		touched[u] = struct{}{}
	}
	return len(touched)
}

// --- kg.ReadGraph ---

// NumNodes returns the number of nodes (base plus delta-added).
func (s *Snapshot) NumNodes() int { return s.baseN + len(s.names) }

// NumEdges returns the number of stored (directed) edges.
func (s *Snapshot) NumEdges() int { return s.numEdges }

// NumPredicates returns the size of the (frozen) predicate vocabulary.
func (s *Snapshot) NumPredicates() int { return s.base.NumPredicates() }

// NumTypes returns the size of the type vocabulary.
func (s *Snapshot) NumTypes() int { return s.base.NumTypes() + len(s.typeNames) }

// NumAttrs returns the size of the numeric attribute vocabulary.
func (s *Snapshot) NumAttrs() int { return s.base.NumAttrs() + len(s.attrNames) }

// Name returns the unique name of node u.
func (s *Snapshot) Name(u kg.NodeID) string {
	if int(u) >= s.baseN {
		return s.names[int(u)-s.baseN]
	}
	return s.base.Name(u)
}

// Types returns the sorted type ids of node u.
func (s *Snapshot) Types(u kg.NodeID) []kg.TypeID {
	if ts, ok := s.types[u]; ok {
		return ts
	}
	if int(u) >= s.baseN {
		return nil
	}
	return s.base.Types(u)
}

// HasType reports whether node u carries type t.
func (s *Snapshot) HasType(u kg.NodeID, t kg.TypeID) bool {
	ts := s.Types(u)
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
	return i < len(ts) && ts[i] == t
}

// SharesType reports whether node u carries at least one of the given types.
func (s *Snapshot) SharesType(u kg.NodeID, ts []kg.TypeID) bool {
	for _, t := range ts {
		if s.HasType(u, t) {
			return true
		}
	}
	return false
}

// Attr returns the value of attribute a on node u, and whether it is set.
func (s *Snapshot) Attr(u kg.NodeID, a kg.AttrID) (float64, bool) {
	as := s.Attrs(u)
	i := sort.Search(len(as), func(i int) bool { return as[i].Attr >= a })
	if i < len(as) && as[i].Attr == a {
		return as[i].Value, true
	}
	return 0, false
}

// Attrs returns all numeric attributes of node u, sorted by AttrID.
func (s *Snapshot) Attrs(u kg.NodeID) []kg.AttrValue {
	if as, ok := s.attrs[u]; ok {
		return as
	}
	if int(u) >= s.baseN {
		return nil
	}
	return s.base.Attrs(u)
}

// Neighbors returns the half-edges out of node u (both orientations).
func (s *Snapshot) Neighbors(u kg.NodeID) []kg.HalfEdge {
	if hes, ok := s.adj[u]; ok {
		return hes
	}
	if int(u) >= s.baseN {
		return nil
	}
	return s.base.Neighbors(u)
}

// Degree returns the number of half-edges at node u.
func (s *Snapshot) Degree(u kg.NodeID) int { return len(s.Neighbors(u)) }

// NodeByName returns the node with the given unique name, or InvalidNode.
func (s *Snapshot) NodeByName(name string) kg.NodeID {
	if id, ok := s.nameIndex[name]; ok {
		return id
	}
	return s.base.NodeByName(name)
}

// PredByName returns the predicate id for a label, or InvalidPred.
func (s *Snapshot) PredByName(name string) kg.PredID { return s.base.PredByName(name) }

// TypeByName returns the type id for a label, or InvalidType.
func (s *Snapshot) TypeByName(name string) kg.TypeID {
	if id, ok := s.typeIndex[name]; ok {
		return id
	}
	return s.base.TypeByName(name)
}

// AttrByName returns the attribute id for a label, or InvalidAttr.
func (s *Snapshot) AttrByName(name string) kg.AttrID {
	if id, ok := s.attrIndex[name]; ok {
		return id
	}
	return s.base.AttrByName(name)
}

// PredName returns the label of predicate p.
func (s *Snapshot) PredName(p kg.PredID) string { return s.base.PredName(p) }

// TypeName returns the label of type t.
func (s *Snapshot) TypeName(t kg.TypeID) string {
	if int(t) >= s.base.NumTypes() {
		return s.typeNames[int(t)-s.base.NumTypes()]
	}
	return s.base.TypeName(t)
}

// AttrName returns the label of attribute a.
func (s *Snapshot) AttrName(a kg.AttrID) string {
	if int(a) >= s.base.NumAttrs() {
		return s.attrNames[int(a)-s.base.NumAttrs()]
	}
	return s.base.AttrName(a)
}

// NodesByType returns all nodes carrying type t in ascending NodeID order.
// This is a cold-path method on a Snapshot: the base list is filtered by the
// delta's type overrides and merged with delta nodes carrying t, O(base list
// + delta).
func (s *Snapshot) NodesByType(t kg.TypeID) []kg.NodeID {
	var baseList []kg.NodeID
	if int(t) < s.base.NumTypes() {
		baseList = s.base.NodesByType(t)
	}
	if len(s.types) == 0 {
		return baseList
	}
	out := make([]kg.NodeID, 0, len(baseList))
	for _, u := range baseList {
		if _, overridden := s.types[u]; overridden {
			continue // re-added below iff the override still carries t
		}
		out = append(out, u)
	}
	for u := range s.types {
		if s.HasType(u, t) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachEdge calls fn for every stored edge in its original orientation.
func (s *Snapshot) EachEdge(fn func(src kg.NodeID, pred kg.PredID, dst kg.NodeID) bool) {
	n := s.NumNodes()
	for u := 0; u < n; u++ {
		for _, he := range s.Neighbors(kg.NodeID(u)) {
			if he.Out {
				if !fn(kg.NodeID(u), he.Pred, he.To) {
					return
				}
			}
		}
	}
}

// HasEdge reports whether an edge src --pred--> dst is stored.
func (s *Snapshot) HasEdge(src kg.NodeID, pred kg.PredID, dst kg.NodeID) bool {
	for _, he := range s.Neighbors(src) {
		if he.Out && he.To == dst && he.Pred == pred {
			return true
		}
	}
	return false
}

// BoundedSubgraph runs a breadth-first search from start up to n hops.
func (s *Snapshot) BoundedSubgraph(start kg.NodeID, n int) *kg.Bounded {
	return kg.BFS(s, start, n)
}

// String summarises the snapshot, handy in logs.
func (s *Snapshot) String() string {
	return fmt.Sprintf("live.Snapshot{epoch: %d, nodes: %d, edges: %d, delta: %d}",
		s.epoch, s.NumNodes(), s.NumEdges(), s.DeltaSize())
}

var _ kg.ReadGraph = (*Snapshot)(nil)

// --- mutation application (clone-local; callers own the clone) ---

// resolve returns the node id of an entity name, or an error matching
// ErrUnknownEntity.
func (s *Snapshot) resolve(name string) (kg.NodeID, error) {
	if name == "" {
		return kg.InvalidNode, badMutation("empty entity name")
	}
	u := s.NodeByName(name)
	if u == kg.InvalidNode {
		return kg.InvalidNode, fmt.Errorf("%w %q", ErrUnknownEntity, name)
	}
	return u, nil
}

// internType interns a type label into the clone's vocabulary.
func (s *Snapshot) internType(name string) kg.TypeID {
	if t := s.TypeByName(name); t != kg.InvalidType {
		return t
	}
	t := kg.TypeID(s.NumTypes())
	s.typeNames = append(s.typeNames, name)
	s.typeIndex[name] = t
	return t
}

// internAttr interns an attribute label into the clone's vocabulary.
func (s *Snapshot) internAttr(name string) kg.AttrID {
	if a := s.AttrByName(name); a != kg.InvalidAttr {
		return a
	}
	a := kg.AttrID(s.NumAttrs())
	s.attrNames = append(s.attrNames, name)
	s.attrIndex[name] = a
	return a
}

// addEntity inserts or merges a node, reporting whether its type set
// changed.
func (s *Snapshot) addEntity(name string, typeNames []string) (kg.NodeID, bool, error) {
	if name == "" {
		return kg.InvalidNode, false, badMutation("add_entity: empty entity name")
	}
	u := s.NodeByName(name)
	fresh := u == kg.InvalidNode
	if fresh {
		u = kg.NodeID(s.NumNodes())
		s.names = append(s.names, name)
		s.nameIndex[name] = u
		s.types[u] = nil
	}
	changed := fresh
	ts := append([]kg.TypeID(nil), s.Types(u)...)
	for _, tn := range typeNames {
		t := s.internType(tn)
		i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
		if i < len(ts) && ts[i] == t {
			continue
		}
		ts = append(ts, 0)
		copy(ts[i+1:], ts[i:])
		ts[i] = t
		changed = true
	}
	if fresh && len(ts) == 0 {
		// Untyped nodes would escape Definition 4's type condition; give
		// them the same catch-all the loaders use.
		ts = []kg.TypeID{s.internType("Thing")}
	}
	if changed {
		s.types[u] = ts
	}
	return u, changed, nil
}

// addEdge inserts src --pred--> dst, reporting whether the edge was new.
func (s *Snapshot) addEdge(srcName, predName, dstName string) (kg.NodeID, kg.NodeID, bool, error) {
	src, err := s.resolve(srcName)
	if err != nil {
		return 0, 0, false, fmt.Errorf("add_edge src: %w", err)
	}
	dst, err := s.resolve(dstName)
	if err != nil {
		return 0, 0, false, fmt.Errorf("add_edge dst: %w", err)
	}
	if src == dst {
		return 0, 0, false, fmt.Errorf("%w: %q", ErrSelfLoop, srcName)
	}
	pred := s.base.PredByName(predName)
	if pred == kg.InvalidPred {
		return 0, 0, false, fmt.Errorf("%w: %q", ErrFrozenPredicate, predName)
	}
	if s.HasEdge(src, pred, dst) {
		return src, dst, false, nil // duplicate: collapse, like kg.Builder
	}
	s.adj[src] = append(append([]kg.HalfEdge(nil), s.Neighbors(src)...),
		kg.HalfEdge{To: dst, Pred: pred, Out: true})
	s.adj[dst] = append(append([]kg.HalfEdge(nil), s.Neighbors(dst)...),
		kg.HalfEdge{To: src, Pred: pred, Out: false})
	s.numEdges++
	return src, dst, true, nil
}

// removeEdge deletes src --pred--> dst.
func (s *Snapshot) removeEdge(srcName, predName, dstName string) (kg.NodeID, kg.NodeID, error) {
	src, err := s.resolve(srcName)
	if err != nil {
		return 0, 0, fmt.Errorf("remove_edge src: %w", err)
	}
	dst, err := s.resolve(dstName)
	if err != nil {
		return 0, 0, fmt.Errorf("remove_edge dst: %w", err)
	}
	pred := s.PredByName(predName)
	if pred == kg.InvalidPred || !s.HasEdge(src, pred, dst) {
		return 0, 0, fmt.Errorf("%w: %s --%s--> %s", ErrEdgeNotFound, srcName, predName, dstName)
	}
	s.adj[src] = dropHalf(s.Neighbors(src), kg.HalfEdge{To: dst, Pred: pred, Out: true})
	s.adj[dst] = dropHalf(s.Neighbors(dst), kg.HalfEdge{To: src, Pred: pred, Out: false})
	s.numEdges--
	return src, dst, nil
}

// dropHalf copies hes without the first occurrence of he.
func dropHalf(hes []kg.HalfEdge, he kg.HalfEdge) []kg.HalfEdge {
	out := make([]kg.HalfEdge, 0, len(hes)-1)
	dropped := false
	for _, h := range hes {
		if !dropped && h == he {
			dropped = true
			continue
		}
		out = append(out, h)
	}
	return out
}

// setAttr sets attr=value on the named entity.
func (s *Snapshot) setAttr(entity, attr string, value float64) (kg.NodeID, error) {
	u, err := s.resolve(entity)
	if err != nil {
		return 0, fmt.Errorf("set_attr: %w", err)
	}
	if attr == "" {
		return 0, badMutation("set_attr: empty attribute name")
	}
	a := s.internAttr(attr)
	as := append([]kg.AttrValue(nil), s.Attrs(u)...)
	i := sort.Search(len(as), func(i int) bool { return as[i].Attr >= a })
	if i < len(as) && as[i].Attr == a {
		as[i].Value = value
	} else {
		as = append(as, kg.AttrValue{})
		copy(as[i+1:], as[i:])
		as[i] = kg.AttrValue{Attr: a, Value: value}
	}
	s.attrs[u] = as
	return u, nil
}

// setTypes replaces the named entity's type set.
func (s *Snapshot) setTypes(entity string, typeNames []string) (kg.NodeID, error) {
	u, err := s.resolve(entity)
	if err != nil {
		return 0, fmt.Errorf("set_types: %w", err)
	}
	if len(typeNames) == 0 {
		return 0, badMutation("set_types on %q: a node needs at least one type", entity)
	}
	ts := make([]kg.TypeID, 0, len(typeNames))
	for _, tn := range typeNames {
		t := s.internType(tn)
		i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
		if i < len(ts) && ts[i] == t {
			continue
		}
		ts = append(ts, 0)
		copy(ts[i+1:], ts[i:])
		ts[i] = t
	}
	s.types[u] = ts
	return u, nil
}

// applyBatch applies every mutation of b to a clone of s, returning the new
// snapshot at epoch+1 and the set of nodes whose topology or type set
// changed (the cache-invalidation scope; attribute-only updates are
// excluded on purpose — cached answer spaces hold no attribute data).
func applyBatch(s *Snapshot, b Batch) (*Snapshot, []kg.NodeID, error) {
	if len(b) == 0 {
		return nil, nil, badMutation("empty batch")
	}
	next := s.clone()
	touched := map[kg.NodeID]struct{}{}
	for i, m := range b {
		var err error
		switch m.Op {
		case OpAddEntity:
			var u kg.NodeID
			var changed bool
			if u, changed, err = next.addEntity(m.Entity, m.Types); err == nil && changed {
				touched[u] = struct{}{}
			}
		case OpAddEdge:
			var src, dst kg.NodeID
			var added bool
			if src, dst, added, err = next.addEdge(m.Src, m.Pred, m.Dst); err == nil && added {
				touched[src] = struct{}{}
				touched[dst] = struct{}{}
			}
		case OpRemoveEdge:
			var src, dst kg.NodeID
			if src, dst, err = next.removeEdge(m.Src, m.Pred, m.Dst); err == nil {
				touched[src] = struct{}{}
				touched[dst] = struct{}{}
			}
		case OpSetAttr:
			_, err = next.setAttr(m.Entity, m.Attr, m.Value)
		case OpSetTypes:
			var u kg.NodeID
			if u, err = next.setTypes(m.Entity, m.Types); err == nil {
				touched[u] = struct{}{}
			}
		default:
			err = badMutation("unknown op %q", m.Op)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("live: batch[%d]: %w", i, err)
		}
	}
	next.epoch = s.epoch + 1
	nodes := make([]kg.NodeID, 0, len(touched))
	for u := range touched {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return next, nodes, nil
}
