package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kgaq/internal/faultinject"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/wal"
)

func recoverFigure1(t *testing.T, cfg DurabilityConfig) *Durable {
	t.Helper()
	d, err := Recover(cfg, kgtest.Figure1(), 0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return d
}

// randomBatch invents a valid batch against the set of entities already
// created, growing names as it goes.
func randomBatch(rng *rand.Rand, names *[]string) Batch {
	var b Batch
	for n := 1 + rng.Intn(3); n > 0; n-- {
		switch op := rng.Intn(3); {
		case op == 0 || len(*names) < 2:
			name := fmt.Sprintf("ent_%d", len(*names))
			b = append(b, AddEntity(name, "Automobile"))
			*names = append(*names, name)
		case op == 1:
			src := (*names)[rng.Intn(len(*names))]
			dst := (*names)[rng.Intn(len(*names))]
			if src == dst {
				b = append(b, SetAttr(src, "price", float64(rng.Intn(100000))))
			} else {
				b = append(b, AddEdge(src, "product", dst))
			}
		default:
			ent := (*names)[rng.Intn(len(*names))]
			b = append(b, SetAttr(ent, "price", float64(rng.Intn(100000))))
		}
	}
	return b
}

// assertSameGraph compares the recovered snapshot against the never-crashed
// twin: epoch, counts, and per-node name/degree/price.
func assertSameGraph(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Epoch() != want.Epoch() {
		t.Fatalf("epoch %d, want %d", got.Epoch(), want.Epoch())
	}
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("recovered %d nodes / %d edges, want %d / %d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	price := want.AttrByName("price")
	for i := 0; i < want.NumNodes(); i++ {
		u := kg.NodeID(i)
		name := want.Name(u)
		v := got.NodeByName(name)
		if v == kg.InvalidNode {
			t.Fatalf("recovered graph lost node %q", name)
		}
		if len(got.Neighbors(v)) != len(want.Neighbors(u)) {
			t.Fatalf("node %q degree %d, want %d", name, len(got.Neighbors(v)), len(want.Neighbors(u)))
		}
		if price != kg.InvalidAttr {
			wv, wok := want.Attr(u, price)
			gv, gok := got.Attr(v, got.AttrByName("price"))
			if wok != gok || (wok && wv != gv) {
				t.Fatalf("node %q price %v/%v, want %v/%v", name, gv, gok, wv, wok)
			}
		}
	}
}

// TestDurableCrashReplayProperty is the crash-replay property test: a
// random batch stream, a simulated kill after every batch, and a recovery
// that must land on the exact epoch and content of a twin store that never
// crashed. Run with -race.
func TestDurableCrashReplayProperty(t *testing.T) {
	dir := t.TempDir()
	twin := NewStore(kgtest.Figure1(), 0)
	rng := rand.New(rand.NewSource(7))
	var names []string

	d := recoverFigure1(t, DurabilityConfig{Dir: dir})
	for i := 0; i < 40; i++ {
		b := randomBatch(rng, &names)
		if _, err := twin.Apply(b); err != nil {
			t.Fatalf("batch %d rejected by twin: %v", i, err)
		}
		if _, err := d.Apply(b); err != nil {
			t.Fatalf("batch %d rejected by durable: %v", i, err)
		}
		// Occasionally checkpoint so recovery exercises checkpoint + tail.
		if i%11 == 10 {
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at batch %d: %v", i, err)
			}
		}
		d.Crash()
		d = recoverFigure1(t, DurabilityConfig{Dir: dir})
		assertSameGraph(t, d.Store().Snapshot(), twin.Snapshot())
	}
	d.Crash()
}

// A checkpoint must trim covered WAL segments and make the next recovery
// replay only the tail past it.
func TestDurableCheckpointTrimsAndShortensReplay(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every batch rotates into its own file.
	cfg := DurabilityConfig{Dir: dir, SegmentBytes: 1}
	d := recoverFigure1(t, cfg)
	for i := 0; i < 6; i++ {
		if _, err := d.Apply(Batch{AddEntity(fmt.Sprintf("n%d", i), "Automobile")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 8; i++ {
		if _, err := d.Apply(Batch{AddEntity(fmt.Sprintf("n%d", i), "Automobile")}); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.CheckpointEpoch != 6 {
		t.Fatalf("CheckpointEpoch = %d, want 6", st.CheckpointEpoch)
	}
	if st.Segments > 3 {
		t.Fatalf("%d WAL segments survive a checkpoint at epoch 6, want ≤ 3", st.Segments)
	}
	d.Crash()

	d = recoverFigure1(t, cfg)
	defer d.Crash()
	if got := d.Store().Epoch(); got != 8 {
		t.Fatalf("recovered epoch %d, want 8", got)
	}
	rec := d.Stats().Recovery
	if rec.CheckpointEpoch != 6 {
		t.Fatalf("recovery started from checkpoint %d, want 6", rec.CheckpointEpoch)
	}
	if rec.Replayed != 2 {
		t.Fatalf("recovery replayed %d batches, want 2", rec.Replayed)
	}
}

// A corrupt newest checkpoint must fall back to the older one and still
// reach the exact epoch via WAL replay.
func TestDurableCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	cfg := DurabilityConfig{Dir: dir, Checkpoints: 2}
	d := recoverFigure1(t, cfg)
	if _, err := d.Apply(Batch{AddEntity("a", "Automobile")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(Batch{AddEntity("b", "Automobile")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(Batch{AddEntity("c", "Automobile")}); err != nil {
		t.Fatal(err)
	}
	d.Crash()

	// Flip a payload byte in the newest checkpoint (epoch 2).
	newest := filepath.Join(dir, fmt.Sprintf(ckptPattern, 2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	d = recoverFigure1(t, cfg)
	defer d.Crash()
	rec := d.Stats().Recovery
	if rec.BadCheckpoints != 1 {
		t.Fatalf("BadCheckpoints = %d, want 1", rec.BadCheckpoints)
	}
	if rec.CheckpointEpoch != 1 {
		t.Fatalf("fell back to checkpoint %d, want 1", rec.CheckpointEpoch)
	}
	if got := d.Store().Epoch(); got != 3 {
		t.Fatalf("recovered epoch %d, want 3", got)
	}
	if d.Store().Snapshot().NodeByName("c") == kg.InvalidNode {
		t.Fatal("entity c lost in fallback recovery")
	}
}

// A torn final record recovers to the previous epoch and stays writable.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	d := recoverFigure1(t, DurabilityConfig{Dir: dir})
	for i := 0; i < 5; i++ {
		if _, err := d.Apply(Batch{AddEntity(fmt.Sprintf("n%d", i), "Automobile")}); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments (err %v)", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	d = recoverFigure1(t, DurabilityConfig{Dir: dir})
	defer d.Crash()
	if got := d.Store().Epoch(); got != 4 {
		t.Fatalf("recovered epoch %d after torn tail, want 4", got)
	}
	if d.Stats().Recovery.TornBytes == 0 {
		t.Fatal("recovery did not report the torn tail")
	}
	if _, err := d.Apply(Batch{AddEntity("again", "Automobile")}); err != nil {
		t.Fatalf("apply after torn-tail recovery: %v", err)
	}
	if got := d.Store().Epoch(); got != 5 {
		t.Fatalf("epoch %d after re-apply, want 5", got)
	}
}

// A failed fsync must fail the Apply without exposing the batch, and poison
// the log so no later write pretends to be durable.
func TestDurableFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	d := recoverFigure1(t, DurabilityConfig{Dir: dir})
	if _, err := d.Apply(Batch{AddEntity("a", "Automobile")}); err != nil {
		t.Fatal(err)
	}
	deactivate := faultinject.Activate(1, faultinject.Fault{Point: "wal.sync", Count: 1})
	_, err := d.Apply(Batch{AddEntity("b", "Automobile")})
	deactivate()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Apply under failing fsync = %v, want ErrInjected", err)
	}
	if got := d.Store().Epoch(); got != 1 {
		t.Fatalf("failed apply advanced visible epoch to %d", got)
	}
	if d.Store().Snapshot().NodeByName("b") != kg.InvalidNode {
		t.Fatal("unacknowledged batch visible to readers")
	}
	if _, err := d.Apply(Batch{AddEntity("c", "Automobile")}); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Apply on a poisoned log = %v, want wal.ErrClosed", err)
	}
	d.Crash()

	// The record hit the file before the fsync failed, so recovery may
	// resurrect it — an unacknowledged batch surviving is allowed; an
	// acknowledged one lost is not.
	d = recoverFigure1(t, DurabilityConfig{Dir: dir})
	defer d.Crash()
	if got := d.Store().Epoch(); got < 1 {
		t.Fatalf("recovered epoch %d, want ≥ 1", got)
	}
}

// Close writes a final checkpoint: the next boot replays nothing.
func TestDurableCloseCheckpoints(t *testing.T) {
	dir := t.TempDir()
	d := recoverFigure1(t, DurabilityConfig{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, err := d.Apply(Batch{AddEntity(fmt.Sprintf("n%d", i), "Automobile")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(Batch{AddEntity("late", "Automobile")}); !errors.Is(err, ErrDurableClosed) {
		t.Fatalf("Apply after Close = %v, want ErrDurableClosed", err)
	}

	d = recoverFigure1(t, DurabilityConfig{Dir: dir})
	defer d.Crash()
	rec := d.Stats().Recovery
	if rec.CheckpointEpoch != 3 || rec.Replayed != 0 {
		t.Fatalf("after clean Close: checkpoint %d, replayed %d; want 3, 0", rec.CheckpointEpoch, rec.Replayed)
	}
	if got := d.Store().Epoch(); got != 3 {
		t.Fatalf("recovered epoch %d, want 3", got)
	}
}

// The background checkpointer folds on its own once the store advances.
func TestDurableBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	cfg := DurabilityConfig{Dir: dir, CheckpointEvery: 5 * time.Millisecond}
	d := recoverFigure1(t, cfg)
	defer d.Crash()
	stop := d.StartCheckpointer(context.Background())
	defer stop()
	if _, err := d.Apply(Batch{AddEntity("a", "Automobile")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().CheckpointEpoch == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never folded")
		}
		time.Sleep(time.Millisecond)
	}
	if got := d.Stats().CheckpointEpoch; got != 1 {
		t.Fatalf("background checkpoint at epoch %d, want 1", got)
	}
}
