package live

import (
	"errors"
	"fmt"
)

// Typed mutation errors. Match with errors.Is; Apply wraps them with the
// offending batch index and names.
var (
	// ErrUnknownEntity reports a mutation referencing an entity name absent
	// from the snapshot the batch is applied to.
	ErrUnknownEntity = errors.New("live: unknown entity")
	// ErrFrozenPredicate reports an edge whose predicate is not in the base
	// vocabulary (the embedding has no vector for it, so the walk could not
	// score the edge).
	ErrFrozenPredicate = errors.New("live: predicate not in frozen vocabulary")
	// ErrEdgeNotFound reports a RemoveEdge for an edge that is not stored.
	ErrEdgeNotFound = errors.New("live: edge not found")
	// ErrSelfLoop reports an AddEdge with identical endpoints; the only
	// self-loop in the system is the walker's virtual aperiodicity loop.
	ErrSelfLoop = errors.New("live: self-loop rejected")
	// ErrBadMutation reports a structurally invalid mutation (unknown op,
	// missing fields, empty type set).
	ErrBadMutation = errors.New("live: bad mutation")
)

// Op enumerates the mutation kinds.
type Op string

const (
	// OpAddEntity inserts a node with the given name and types; adding an
	// existing name merges the new types into it (graphs are assembled from
	// many sources, so type information arrives incrementally).
	OpAddEntity Op = "add_entity"
	// OpAddEdge inserts the directed edge Src --Pred--> Dst. Both endpoints
	// must exist; the predicate must be in the base vocabulary. Duplicate
	// edges are silently collapsed, like in kg.Builder.
	OpAddEdge Op = "add_edge"
	// OpRemoveEdge deletes the directed edge Src --Pred--> Dst; the edge
	// must be stored.
	OpRemoveEdge Op = "remove_edge"
	// OpSetAttr sets numeric attribute Attr=Value on Entity, overwriting any
	// previous value. New attribute names extend the vocabulary.
	OpSetAttr Op = "set_attr"
	// OpSetTypes replaces Entity's type set with Types (at least one; every
	// node carries a type so Definition 4's type condition stays total).
	// New type names extend the vocabulary.
	OpSetTypes Op = "set_types"
)

// Mutation is one live-graph update. Fields are interpreted per Op; see the
// Op constants. Entities are addressed by unique name, the stable identity
// of the wire formats, so a batch is meaningful independent of internal id
// assignment.
type Mutation struct {
	Op     Op       `json:"op"`
	Entity string   `json:"entity,omitempty"`
	Types  []string `json:"types,omitempty"`
	Src    string   `json:"src,omitempty"`
	Pred   string   `json:"pred,omitempty"`
	Dst    string   `json:"dst,omitempty"`
	Attr   string   `json:"attr,omitempty"`
	Value  float64  `json:"value,omitempty"`
}

// Batch is an atomically applied sequence of mutations: either every
// mutation lands and the store advances one epoch, or none do.
type Batch []Mutation

// AddEntity builds an OpAddEntity mutation.
func AddEntity(name string, types ...string) Mutation {
	return Mutation{Op: OpAddEntity, Entity: name, Types: types}
}

// AddEdge builds an OpAddEdge mutation.
func AddEdge(src, pred, dst string) Mutation {
	return Mutation{Op: OpAddEdge, Src: src, Pred: pred, Dst: dst}
}

// RemoveEdge builds an OpRemoveEdge mutation.
func RemoveEdge(src, pred, dst string) Mutation {
	return Mutation{Op: OpRemoveEdge, Src: src, Pred: pred, Dst: dst}
}

// SetAttr builds an OpSetAttr mutation.
func SetAttr(entity, attr string, value float64) Mutation {
	return Mutation{Op: OpSetAttr, Entity: entity, Attr: attr, Value: value}
}

// SetTypes builds an OpSetTypes mutation.
func SetTypes(entity string, types ...string) Mutation {
	return Mutation{Op: OpSetTypes, Entity: entity, Types: types}
}

// badMutation wraps ErrBadMutation with detail.
func badMutation(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadMutation, fmt.Sprintf(format, args...))
}
