// Package live is the mutation subsystem of the engine: it turns the
// immutable kg.Graph into a continuously updatable knowledge graph without
// giving up the read-side guarantees the sampling hot path depends on.
//
// The design is a copy-on-write delta overlay over an immutable base graph.
// A Store owns the current Snapshot — base graph plus delta — and every
// mutation batch produces a new immutable Snapshot at the next epoch;
// readers grab the current Snapshot with one atomic load and keep a fully
// consistent view for as long as they hold it, no matter how many writes
// land meanwhile. Epochs are monotonic: epoch N+1 contains exactly the
// batches 1..N+1 applied to the base, which is what gives queries
// read-your-writes semantics (wait for the epoch a mutation returned, then
// query the snapshot at or above it).
//
// A background compactor periodically folds the delta into a fresh immutable
// base (kg.Materialize), preserving every id assignment, so overlay lookups
// never degrade as mutations accumulate. Compaction changes representation,
// not content: the epoch does not advance, and batches applied while the
// compactor ran are replayed onto the fresh base before the swap.
//
// One deliberate constraint: mutations may introduce new entities, types and
// attributes, but not new predicates. Predicate semantics come from the
// offline-trained embedding — a predicate without a vector cannot be scored
// by the semantic-aware walk — so edges must use the base vocabulary;
// ErrFrozenPredicate reports violations.
package live
