package live

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
)

func figure1Store(t *testing.T) *Store {
	t.Helper()
	return NewStore(kgtest.Figure1(), 0)
}

func TestApplyAdvancesEpochAtomically(t *testing.T) {
	s := figure1Store(t)
	base := s.Snapshot()
	if base.Epoch() != 0 {
		t.Fatalf("fresh store at epoch %d, want 0", base.Epoch())
	}

	snap1, err := s.Apply(Batch{
		AddEntity("Tesla_3", "Automobile"),
		AddEdge("Germany", "product", "Tesla_3"),
		SetAttr("Tesla_3", "price", 39000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap1.Epoch() != 1 {
		t.Fatalf("epoch %d after first batch, want 1", snap1.Epoch())
	}

	snap := s.Snapshot()
	u := snap.NodeByName("Tesla_3")
	if u == kg.InvalidNode {
		t.Fatal("Tesla_3 not resolvable in new snapshot")
	}
	if !snap.HasEdge(snap.NodeByName("Germany"), snap.PredByName("product"), u) {
		t.Fatal("edge Germany --product--> Tesla_3 missing")
	}
	if v, ok := snap.Attr(u, snap.AttrByName("price")); !ok || v != 39000 {
		t.Fatalf("price = %v (%v), want 39000", v, ok)
	}
	if snap.NumEdges() != base.NumEdges()+1 {
		t.Fatalf("edges %d, want %d", snap.NumEdges(), base.NumEdges()+1)
	}

	// The old snapshot must be frozen: no new node, no new edge, old epoch.
	if base.NodeByName("Tesla_3") != kg.InvalidNode {
		t.Fatal("old snapshot sees the new entity")
	}
	if base.NumEdges() != kgtest.Figure1().NumEdges() {
		t.Fatal("old snapshot edge count moved")
	}
}

func TestApplyAtomicOnError(t *testing.T) {
	s := figure1Store(t)
	before := s.Snapshot()
	_, err := s.Apply(Batch{
		AddEntity("X_1", "Automobile"),
		AddEdge("Germany", "no-such-predicate", "X_1"), // frozen vocabulary
	})
	if !errors.Is(err, ErrFrozenPredicate) {
		t.Fatalf("err = %v, want ErrFrozenPredicate", err)
	}
	after := s.Snapshot()
	if after != before {
		t.Fatal("failed batch replaced the snapshot")
	}
	if after.NodeByName("X_1") != kg.InvalidNode {
		t.Fatal("failed batch leaked its entity")
	}
}

func TestMutationErrors(t *testing.T) {
	s := figure1Store(t)
	cases := []struct {
		name string
		b    Batch
		want error
	}{
		{"unknown entity", Batch{SetAttr("Nobody", "price", 1)}, ErrUnknownEntity},
		{"unknown src", Batch{AddEdge("Nobody", "product", "Germany")}, ErrUnknownEntity},
		{"self loop", Batch{AddEdge("Germany", "product", "Germany")}, ErrSelfLoop},
		{"missing edge", Batch{RemoveEdge("Berlin", "product", "Germany")}, ErrEdgeNotFound},
		{"empty types", Batch{SetTypes("Germany")}, ErrBadMutation},
		{"empty batch", Batch{}, ErrBadMutation},
		{"unknown op", Batch{{Op: "frobnicate"}}, ErrBadMutation},
	}
	for _, tc := range cases {
		if _, err := s.Apply(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if s.Epoch() != 0 {
		t.Fatalf("failed batches advanced the epoch to %d", s.Epoch())
	}
}

func TestRemoveEdgeAndReAdd(t *testing.T) {
	s := figure1Store(t)
	g := s.Snapshot()
	src, dst := g.NodeByName("BMW_320"), g.NodeByName("Germany")
	pred := g.PredByName("assembly")
	if !g.HasEdge(src, pred, dst) {
		t.Fatal("fixture misses BMW_320 --assembly--> Germany")
	}
	sn, pn, dn := "BMW_320", "assembly", "Germany"

	if _, err := s.Apply(Batch{RemoveEdge(sn, pn, dn)}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.HasEdge(src, pred, dst) {
		t.Fatal("removed edge still stored")
	}
	if snap.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("edges %d, want %d", snap.NumEdges(), g.NumEdges()-1)
	}
	if _, err := s.Apply(Batch{AddEdge(sn, pn, dn)}); err != nil {
		t.Fatal(err)
	}
	if !s.Snapshot().HasEdge(src, pred, dst) {
		t.Fatal("re-added edge missing")
	}
	if s.Snapshot().NumEdges() != g.NumEdges() {
		t.Fatal("edge count drifted over remove + re-add")
	}
}

func TestSetTypesReflectsInNodesByType(t *testing.T) {
	s := figure1Store(t)
	g := s.Snapshot()
	u := g.NodeByName("Lamando")
	if u == kg.InvalidNode {
		t.Fatal("fixture has no Lamando")
	}
	if _, err := s.Apply(Batch{SetTypes("Lamando", "Robot")}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	robot := snap.TypeByName("Robot")
	if robot == kg.InvalidType {
		t.Fatal("new type not interned")
	}
	if !snap.HasType(u, robot) {
		t.Fatal("Lamando lost its new type")
	}
	found := false
	for _, v := range snap.NodesByType(robot) {
		if v == u {
			found = true
		}
	}
	if !found {
		t.Fatal("NodesByType(Robot) misses Lamando")
	}
	// The old type's list must no longer contain Leon.
	for _, old := range g.Types(u) {
		for _, v := range snap.NodesByType(old) {
			if v == u {
				t.Fatalf("NodesByType(%s) still lists Lamando", snap.TypeName(old))
			}
		}
	}
}

func TestWaitEpochReadYourWrites(t *testing.T) {
	s := figure1Store(t)
	done := make(chan uint64, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		snap, err := s.Apply(Batch{AddEntity("W_1", "Automobile")})
		if err != nil {
			panic(err)
		}
		done <- snap.Epoch()
	}()
	snap, err := s.WaitEpoch(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() < 1 {
		t.Fatalf("WaitEpoch returned epoch %d", snap.Epoch())
	}
	if snap.NodeByName("W_1") == kg.InvalidNode {
		t.Fatal("snapshot at waited epoch misses the write")
	}
	<-done

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.WaitEpoch(ctx, 99); err == nil {
		t.Fatal("WaitEpoch for an unreached epoch returned without error")
	}
}

func TestCompactPreservesContentAndEpoch(t *testing.T) {
	s := figure1Store(t)
	for i := 0; i < 5; i++ {
		b := Batch{
			AddEntity(nameN("C", i), "Automobile"),
			AddEdge("Germany", "product", nameN("C", i)),
			SetAttr(nameN("C", i), "price", float64(1000*i)),
		}
		if _, err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Snapshot()
	ev, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("compaction skipped a non-empty delta")
	}
	after := s.Snapshot()
	if after.Epoch() != before.Epoch() {
		t.Fatalf("compaction moved the epoch %d → %d", before.Epoch(), after.Epoch())
	}
	if after.DeltaSize() != 0 {
		t.Fatalf("delta not folded: %d nodes still overridden", after.DeltaSize())
	}
	if after.NumNodes() != before.NumNodes() || after.NumEdges() != before.NumEdges() {
		t.Fatalf("compaction changed counts: %v vs %v", after, before)
	}
	// Ids must be preserved exactly.
	for i := 0; i < before.NumNodes(); i++ {
		u := kg.NodeID(i)
		if before.Name(u) != after.Name(u) {
			t.Fatalf("node %d renamed %q → %q", i, before.Name(u), after.Name(u))
		}
		if len(before.Neighbors(u)) != len(after.Neighbors(u)) {
			t.Fatalf("node %d degree changed", i)
		}
	}
	// And mutations keep applying on the fresh base.
	if _, err := s.Apply(Batch{SetAttr("C_0", "price", 7)}); err != nil {
		t.Fatal(err)
	}
}

func nameN(prefix string, i int) string {
	return prefix + "_" + string(rune('0'+i))
}

// Writers, readers and the compactor racing must preserve per-snapshot
// consistency: every snapshot's edge count matches a full EachEdge scan,
// and epochs observed by a reader never go backwards. Run with -race.
func TestConcurrentApplyReadCompact(t *testing.T) {
	s := figure1Store(t)
	stopApply := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopApply:
				return
			default:
			}
			name := "N_" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			_, err := s.Apply(Batch{
				AddEntity(name, "Automobile"),
				AddEdge("Germany", "product", name),
				SetAttr(name, "price", float64(i)),
			})
			if err != nil {
				// Duplicate entity on wrap-around: merge is fine, edge
				// duplicate collapses; only real errors fail the test.
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < 200; i++ {
				snap := s.Snapshot()
				if snap.Epoch() < last {
					t.Errorf("epoch went backwards: %d after %d", snap.Epoch(), last)
					return
				}
				last = snap.Epoch()
				count := 0
				snap.EachEdge(func(kg.NodeID, kg.PredID, kg.NodeID) bool {
					count++
					return true
				})
				if count != snap.NumEdges() {
					t.Errorf("snapshot inconsistent: scan %d vs NumEdges %d", count, snap.NumEdges())
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stopApply)
	wg.Wait()
}
