package live

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kgaq/internal/kg"
	"kgaq/internal/wal"
)

// Checkpoint files are full kg snapshots named by the epoch they hold, so
// recovery can pick the newest without opening anything.
const ckptPattern = "checkpoint-%016x.snap"

// ErrDurableClosed reports an Apply after Close.
var ErrDurableClosed = errors.New("live: durable store closed")

// DurabilityConfig tunes a Durable store. Dir is the only required field.
type DurabilityConfig struct {
	// Dir holds the WAL segments and checkpoint snapshots (created if absent).
	Dir string
	// Sync selects the WAL durability policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval is the wal.SyncInterval ticker period (default 100ms).
	SyncInterval time.Duration
	// SegmentBytes rotates WAL segments past this size (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery is the background checkpointer period (default 30s).
	CheckpointEvery time.Duration
	// Checkpoints is how many snapshots to retain on disk (default 2): the
	// newest plus spares to fall back to if it fails its checksum.
	Checkpoints int
	// OnError observes background sync/checkpoint failures (default: ignored).
	OnError func(error)
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.Checkpoints <= 0 {
		c.Checkpoints = 2
	}
	return c
}

// RecoveryStats describes what one boot-time Recover found.
type RecoveryStats struct {
	// CheckpointEpoch is the epoch of the checkpoint recovery started from
	// (0 = none found, started from the supplied base graph).
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
	// BadCheckpoints counts newer checkpoints skipped for failing their
	// checksum or header validation.
	BadCheckpoints int `json:"bad_checkpoints,omitempty"`
	// Replayed is the number of WAL batches applied on top of the checkpoint.
	Replayed int `json:"replayed"`
	// TornBytes is the truncated torn-tail size (0 = clean shutdown).
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// Segments is the number of WAL segment files read.
	Segments int `json:"segments"`
}

// DurabilityStats is the live durability picture for health and debug
// endpoints.
type DurabilityStats struct {
	Dir             string        `json:"dir"`
	Sync            string        `json:"sync"`
	Epoch           uint64        `json:"epoch"`
	SyncedEpoch     uint64        `json:"synced_epoch"`
	CheckpointEpoch uint64        `json:"checkpoint_epoch"`
	Checkpoints     uint64        `json:"checkpoints_written"`
	Segments        int           `json:"wal_segments"`
	Appended        uint64        `json:"wal_appended"`
	Recovery        RecoveryStats `json:"recovery"`
}

// Durable wraps a Store with a write-ahead log and periodic checkpoints:
// every applied batch is framed into the WAL strictly before its snapshot
// becomes visible, so a crashed process recovers to the exact epoch it
// acknowledged. Reads go through Store() unchanged — durability costs the
// write path only.
type Durable struct {
	store *Store
	log   *wal.Log
	cfg   DurabilityConfig

	// ckptMu serialises checkpoint writes; Apply never takes it.
	ckptMu sync.Mutex
	// diskCkpt is the epoch of the newest checkpoint on disk (0 = none).
	diskCkpt atomic.Uint64
	// ckptGate skips checkpoints while the store hasn't advanced past it;
	// initialised to the recovered epoch so an idle boot writes nothing.
	ckptGate atomic.Uint64
	written  atomic.Uint64
	closed   atomic.Bool

	recovery RecoveryStats
}

// Recover opens (or initialises) the durability directory and reconstructs
// the live store: the newest checkpoint whose checksum verifies — falling
// back to older ones, then to the supplied base graph — plus a replay of
// every WAL record past it. A torn final record is truncated silently;
// corruption deeper in the log fails with an error matching
// wal.ErrCorruptRecord rather than silently dropping acknowledged batches.
func Recover(cfg DurabilityConfig, base *kg.Graph, baseEpoch uint64) (*Durable, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("live: durability dir not set")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	d := &Durable{cfg: cfg}

	// Leftover temp files are checkpoints that never completed their rename:
	// dead weight from a crash mid-checkpoint.
	if tmps, err := filepath.Glob(filepath.Join(cfg.Dir, "checkpoint-*.tmp")); err == nil {
		for _, p := range tmps {
			os.Remove(p)
		}
	}

	g, epoch := base, baseEpoch
	for _, ck := range checkpointsNewestFirst(cfg.Dir) {
		cg, cepoch, err := kg.LoadFileEpoch(ck.path)
		if err != nil || cepoch != ck.epoch {
			// Checksum failure, truncation, or a header that disagrees with
			// the file name: fall back to the next-older checkpoint.
			d.recovery.BadCheckpoints++
			continue
		}
		g, epoch = cg, cepoch
		d.recovery.CheckpointEpoch = cepoch
		break
	}
	d.store = NewStore(g, epoch)
	d.diskCkpt.Store(d.recovery.CheckpointEpoch)

	l, err := wal.Open(cfg.Dir, wal.Options{
		Sync:         cfg.Sync,
		SyncEvery:    cfg.SyncInterval,
		SegmentBytes: cfg.SegmentBytes,
		OnError:      cfg.OnError,
	})
	if err != nil {
		return nil, err
	}
	st, err := l.Replay(epoch, func(recEpoch uint64, payload []byte) error {
		var b Batch
		if err := json.Unmarshal(payload, &b); err != nil {
			return fmt.Errorf("%w: epoch %d payload is not a batch: %v", wal.ErrCorruptRecord, recEpoch, err)
		}
		if want := d.store.Epoch() + 1; recEpoch != want {
			return fmt.Errorf("%w: record epoch %d, store expects %d", wal.ErrCorruptRecord, recEpoch, want)
		}
		if _, err := d.store.Apply(b); err != nil {
			return fmt.Errorf("live: replay epoch %d: %w", recEpoch, err)
		}
		return nil
	})
	if err != nil {
		l.Abort()
		return nil, err
	}
	d.recovery.Replayed = st.Replayed
	d.recovery.TornBytes = st.TornBytes
	d.recovery.Segments = st.Segments
	metReplayed.Add(float64(st.Replayed))

	// A torn tail (or an aggressive trim) can leave the log's last epoch
	// behind the checkpoint's. Every surviving record is then covered by the
	// checkpoint, so restart the log empty rather than leave it refusing the
	// next epoch.
	if last := l.LastEpoch(); last != 0 && last < d.store.Epoch() {
		l.Abort()
		segs, err := filepath.Glob(filepath.Join(cfg.Dir, "wal-*.log"))
		if err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		for _, p := range segs {
			if err := os.Remove(p); err != nil {
				return nil, fmt.Errorf("live: drop covered segment: %w", err)
			}
		}
		if l, err = wal.Open(cfg.Dir, wal.Options{
			Sync:         cfg.Sync,
			SyncEvery:    cfg.SyncInterval,
			SegmentBytes: cfg.SegmentBytes,
			OnError:      cfg.OnError,
		}); err != nil {
			return nil, err
		}
		if _, err := l.Replay(0, nil); err != nil {
			l.Abort()
			return nil, err
		}
	}

	d.log = l
	d.ckptGate.Store(d.store.Epoch())
	return d, nil
}

type ckptFile struct {
	path  string
	epoch uint64
}

func checkpointsNewestFirst(dir string) []ckptFile {
	paths, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.snap"))
	if err != nil {
		return nil
	}
	var out []ckptFile
	for _, p := range paths {
		var epoch uint64
		if _, err := fmt.Sscanf(filepath.Base(p), ckptPattern, &epoch); err != nil {
			continue
		}
		out = append(out, ckptFile{path: p, epoch: epoch})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].epoch > out[j].epoch })
	return out
}

// Store returns the underlying live store. Reads (Snapshot, WaitEpoch) and
// hook registration go through it directly; writes MUST go through
// Durable.Apply or they will not survive a crash.
func (d *Durable) Store() *Store { return d.store }

// Apply applies a batch durably: the batch is validated, framed into the
// WAL (and fsynced, under SyncAlways), and only then made visible to
// readers. When Apply returns, the new epoch is exactly as durable as the
// configured sync policy promises.
func (d *Durable) Apply(b Batch) (*Snapshot, error) {
	if d.closed.Load() {
		return nil, ErrDurableClosed
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("live: encode batch: %w", err)
	}
	snap, err := d.store.applyHooked(b, func(next *Snapshot) error {
		return d.log.Append(next.epoch, payload)
	})
	if err == nil {
		metMutations.Inc()
	}
	return snap, err
}

// Checkpoint folds the current snapshot into an atomic on-disk checkpoint
// (temp file + fsync + rename), trims WAL segments it fully covers, and
// prunes old checkpoints past the retention count. A checkpoint at an epoch
// already covered is a no-op. Safe to call concurrently with Apply: writes
// proceed while the fold runs.
func (d *Durable) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	snap := d.store.Snapshot()
	epoch := snap.epoch
	if epoch <= d.ckptGate.Load() {
		return nil
	}
	begin := time.Now()
	g, err := kg.Materialize(snap)
	if err != nil {
		return fmt.Errorf("live: checkpoint: %w", err)
	}
	final := filepath.Join(d.cfg.Dir, fmt.Sprintf(ckptPattern, epoch))
	tmp, err := os.CreateTemp(d.cfg.Dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("live: checkpoint: %w", err)
	}
	if err := func() error {
		if err := g.SaveEpoch(tmp, epoch); err != nil {
			return err
		}
		return tmp.Sync()
	}(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("live: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("live: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("live: checkpoint: %w", err)
	}
	syncDir(d.cfg.Dir)
	d.diskCkpt.Store(epoch)
	d.ckptGate.Store(epoch)
	d.written.Add(1)

	if err := d.log.TrimThrough(epoch); err != nil {
		return fmt.Errorf("live: checkpoint trim: %w", err)
	}
	if cks := checkpointsNewestFirst(d.cfg.Dir); len(cks) > d.cfg.Checkpoints {
		for _, ck := range cks[d.cfg.Checkpoints:] {
			os.Remove(ck.path)
		}
	}
	metCheckpoints.Inc()
	metCheckpointSeconds.Observe(time.Since(begin).Seconds())
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// StartCheckpointer runs the background checkpointer until ctx is
// cancelled, folding a fresh checkpoint every CheckpointEvery when the
// store has advanced. It returns a function that stops the loop and waits
// for a checkpoint in progress to finish.
func (d *Durable) StartCheckpointer(ctx context.Context) (stop func()) {
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(d.cfg.CheckpointEvery)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if err := d.Checkpoint(); err != nil && d.cfg.OnError != nil {
					d.cfg.OnError(err)
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// Close makes everything durable and releases the WAL: a final sync, a
// final checkpoint (so the next boot replays nothing), then the log closes.
// Apply calls racing Close fail cleanly once the log is closed.
func (d *Durable) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := d.log.Sync()
	if cerr := d.Checkpoint(); err == nil {
		err = cerr
	}
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the store without syncing or checkpointing — the
// in-process stand-in for SIGKILL that the chaos tests recover from.
func (d *Durable) Crash() {
	d.closed.Store(true)
	d.log.Abort()
}

// Stats returns the live durability picture.
func (d *Durable) Stats() DurabilityStats {
	return DurabilityStats{
		Dir:             d.cfg.Dir,
		Sync:            d.cfg.Sync.String(),
		Epoch:           d.store.Epoch(),
		SyncedEpoch:     d.log.SyncedEpoch(),
		CheckpointEpoch: d.diskCkpt.Load(),
		Checkpoints:     d.written.Load(),
		Segments:        d.log.Segments(),
		Appended:        d.log.Appended(),
		Recovery:        d.recovery,
	}
}
