package federate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/estimate"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// ErrUnresolved reports a federated query no member could resolve against
// its own graph: the anchor entity, type, predicate or attribute exists
// nowhere in the federation.
var ErrUnresolved = errors.New("query resolves on no federation member")

// Coordinator scatters aggregate queries across the configured members and
// gathers their draw streams into one guaranteed estimate. It is safe for
// concurrent use; member health is tracked across queries.
type Coordinator struct {
	cfg  Config
	base core.Options

	mu      sync.Mutex
	health  []memberHealth
	queries uint64
	partial uint64
}

// memberHealth is the cross-query, passively observed state of one member.
type memberHealth struct {
	healthy       bool // last RPC outcome (true until proven otherwise)
	everSeen      bool
	consecFails   int
	lastErr       string
	lastEpoch     uint64
	rpcs          uint64
	errs          uint64
	epochRestarts uint64
}

// New builds a coordinator over the given members. base is the option block
// federated queries resolve per-query options against — the coordinator's
// equivalent of an Engine's Options (error bound, confidence, seed, round
// and draw budgets; graph-shape knobs like N and τ travel to the members).
func New(cfg Config, base core.Options) (*Coordinator, error) {
	if len(cfg.Members) == 0 {
		return nil, ErrNoMembers
	}
	seen := make(map[string]bool, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("federate: member needs both name and URL (got %+v)", m)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("federate: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
	}
	c := &Coordinator{cfg: cfg.withDefaults(), base: base, health: make([]memberHealth, len(cfg.Members))}
	for i := range c.health {
		c.health[i].healthy = true
	}
	return c, nil
}

// Members returns the configured member set.
func (c *Coordinator) Members() []Member {
	out := make([]Member, len(c.cfg.Members))
	copy(out, c.cfg.Members)
	return out
}

// memberRun is the per-query accumulated state of one member stratum.
type memberRun struct {
	obs        []estimate.Observation
	candidates int
	sigma      float64
	epoch      uint64
	epochKnown bool
	empty      bool // member resolved the query to zero candidates
	frozen     bool // dead past retry budget; gathered sample stays in the merge
	dropped    bool // dead past retry budget with nothing gathered; stratum excluded
	err        error
}

// live reports whether the member can still take draw allocations.
func (r *memberRun) live() bool { return !r.empty && !r.frozen && !r.dropped }

// contributing reports whether the member's stratum enters the merge.
func (r *memberRun) contributing() bool { return !r.empty && !r.dropped && len(r.obs) > 0 }

// Query executes one federated aggregate query: scatter a pilot, then
// refinement rounds of Neyman-allocated draws across members, merging the
// streams through the stratified Horvitz–Thompson combiner until the
// Theorem 2 condition holds for the requested (eb, α) — the same contract
// and option surface as Engine.Query, across machine boundaries.
//
// Member death follows the package contract: without core.WithDegradation a
// member unreachable past the retry budget fails the query with
// ErrPartialFederation; with it, the query degrades honestly (dead member's
// gathered sample freezes in place, a member that never contributed drops
// and the surviving strata are re-weighted) and the result is flagged
// Degraded.
func (c *Coordinator) Query(ctx context.Context, q *query.Aggregate, opts ...core.QueryOption) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, rounds, err := c.run(ctx, q, opts...)
	c.mu.Lock()
	c.queries++
	if res != nil && res.Degraded {
		c.partial++
	}
	c.mu.Unlock()
	if rounds > 0 {
		metRounds.Observe(float64(rounds))
	}
	if res != nil {
		metStrata.Observe(float64(res.Shards))
	}
	metQueries.With(outcome(res, err)).Inc()
	return res, err
}

// outcome classifies a finished federated query for the queries counter.
func outcome(res *core.Result, err error) string {
	switch {
	case errors.Is(err, ErrPartialFederation):
		return "partial_failure"
	case errors.Is(err, core.ErrInterrupted):
		return "interrupted"
	case err != nil:
		return "error"
	case res.Converged && !res.Degraded:
		return "converged"
	case res.Degraded:
		return "degraded"
	default:
		return "unconverged"
	}
}

func (c *Coordinator) run(ctx context.Context, q *query.Aggregate, opts ...core.QueryOption) (*core.Result, int, error) {
	if q == nil {
		return nil, 0, fmt.Errorf("federate: nil query")
	}
	if !q.Func.HasGuarantee() {
		return nil, 0, fmt.Errorf("federate: %w: %v carries no guarantee to merge", core.ErrFederatedQuery, q.Func)
	}
	if q.GroupBy != "" {
		return nil, 0, fmt.Errorf("federate: %w: GROUP-BY does not decompose into remote strata", core.ErrFederatedQuery)
	}
	rq := core.ResolveQuery(c.base, opts...)
	o := rq.Opts
	gcfg := estimate.GuaranteeConfig{Confidence: o.Confidence, T: o.T, B: o.B, M: o.M}
	qtext := q.String()
	nm := len(c.cfg.Members)

	runs := make([]memberRun, nm)
	alloc := make([]int, nm)
	for i := range alloc {
		alloc[i] = o.MinSample
	}
	pilot := true

	var (
		v, eps     float64
		estimated  bool
		converged  bool
		degradedBy string // why the loop stopped early, for the error path
		anyDeath   bool
		deadNames  []string
		rounds     []core.Round
		sampleTime time.Duration
	)

	result := func() *core.Result {
		res := &core.Result{
			Query:      q,
			Estimate:   v,
			MoE:        eps,
			Confidence: o.Confidence,
			Converged:  converged,
			Degraded:   anyDeath || degradedBy == "deadline",
			TargetEB:   o.ErrorBound,
			Rounds:     rounds,
			Times:      core.StepTimes{Sampling: sampleTime},
		}
		for i := range runs {
			if runs[i].contributing() {
				res.Shards++
				res.SampleSize += len(runs[i].obs)
				res.Candidates += runs[i].candidates
				for _, ob := range runs[i].obs {
					if ob.Correct {
						res.Correct++
					}
				}
			}
		}
		return res
	}

	for round := 0; ; round++ {
		if cerr := context.Cause(ctx); cerr != nil {
			if estimated {
				return result(), len(rounds), fmt.Errorf("federate: %w: %w", core.ErrInterrupted, cerr)
			}
			return nil, len(rounds), fmt.Errorf("federate: %w before the first merge: %w", core.ErrInterrupted, cerr)
		}
		roundStart := time.Now()
		c.scatter(ctx, qtext, q.Func, o, runs, alloc, pilot, round)
		sampleTime += time.Since(roundStart)
		pilot = false

		// Classify fresh deaths. A cancelled parent context is the query
		// being interrupted, not members dying; the top of the next
		// iteration reports it.
		if context.Cause(ctx) == nil {
			for i := range runs {
				r := &runs[i]
				if r.err == nil || r.frozen || r.dropped {
					continue
				}
				anyDeath = true
				deadNames = append(deadNames, c.cfg.Members[i].Name)
				if len(r.obs) > 0 {
					r.frozen = true
				} else {
					r.dropped = true
				}
			}
			if anyDeath && !rq.Degrade.Enabled() {
				return nil, len(rounds), fmt.Errorf("federate: %w: member(s) %s unreachable past the retry budget",
					ErrPartialFederation, strings.Join(deadNames, ", "))
			}
		}

		// Stratum weights from candidate-space sizes, over every
		// contributing member (frozen included — its sample stays in the
		// merge; dropped and empty members are re-weighted away).
		sumCand := 0
		for i := range runs {
			if runs[i].contributing() {
				sumCand += runs[i].candidates
			}
		}
		if sumCand == 0 {
			if anyDeath {
				return nil, len(rounds), fmt.Errorf("federate: %w: no surviving member holds candidate answers (dead: %s)",
					ErrPartialFederation, strings.Join(deadNames, ", "))
			}
			return nil, len(rounds), fmt.Errorf("federate: %w (0 candidates federation-wide)", ErrUnresolved)
		}

		strata := make([]estimate.Stratum, 0, nm)
		total, correct := 0, 0
		for i := range runs {
			r := &runs[i]
			if !r.contributing() {
				continue
			}
			strata = append(strata, estimate.Stratum{
				Weight: float64(r.candidates) / float64(sumCand),
				Obs:    r.obs,
			})
			total += len(r.obs)
			for _, ob := range r.obs {
				if ob.Correct {
					correct++
				}
			}
		}

		nlive := 0
		for i := range runs {
			if runs[i].live() {
				nlive++
			}
		}

		// grow re-allocates delta draws across live members (Neyman on the
		// accumulated per-member σ̂) and reports whether another round is
		// possible at all.
		grow := func(delta int) bool {
			if nlive == 0 || round+1 >= o.MaxRounds || total >= o.MaxDraws {
				return false
			}
			if delta < nlive {
				delta = nlive
			}
			if total+delta > o.MaxDraws {
				delta = o.MaxDraws - total
			}
			live := make([]estimate.StratumStats, 0, nlive)
			idx := make([]int, 0, nlive)
			for i := range runs {
				if runs[i].live() {
					live = append(live, estimate.StratumStats{
						Weight: float64(runs[i].candidates) / float64(sumCand),
						Sigma:  runs[i].sigma,
					})
					idx = append(idx, i)
				}
			}
			shares := estimate.AllocateDraws(delta, live)
			for i := range alloc {
				alloc[i] = 0
			}
			for j, n := range shares {
				alloc[idx[j]] = n
			}
			return true
		}

		vr, verr := estimate.EstimateStratified(q.Func, strata, o.Policy)
		var er float64
		var merr error
		if verr == nil {
			er, merr = estimate.MoEStratified(q.Func, strata, o.Policy, gcfg)
		}
		if verr != nil || merr != nil {
			// No estimable merge yet (no correct draws, or a degenerate
			// stratum): double the sample if the budgets allow.
			if grow(total) {
				continue
			}
			err := verr
			if err == nil {
				err = merr
			}
			return nil, len(rounds), fmt.Errorf("federate: %w: %w", core.ErrNotConverged, err)
		}
		v, eps, estimated = vr, er, true
		rounds = append(rounds, core.Round{Estimate: v, MoE: eps, SampleSize: total})
		if rq.OnRound != nil {
			rq.OnRound(core.Round{Estimate: v, MoE: eps, SampleSize: total})
		}

		// The MinCorrect gate mirrors the engine: with too few correct
		// draws the interval machinery under-covers, so grow instead of
		// trusting it for termination.
		if correct < o.MinCorrect {
			if grow(total) {
				continue
			}
			break
		}
		if estimate.Satisfied(v, eps, o.ErrorBound) {
			converged = true
			break
		}
		if rq.Degrade.ShouldStop(ctx, time.Since(roundStart)) {
			degradedBy = "deadline"
			break
		}
		delta := estimate.NextSampleSize(total, eps, v, o.ErrorBound, 1)
		if delta <= 0 {
			delta = total // V̂=0 keeps the target at zero; double and retry
		}
		if delta > 5*total {
			delta = 5 * total
		}
		if !grow(delta) {
			break
		}
	}

	return result(), len(rounds), nil
}

// scatter runs one round's member RPCs in parallel and folds the answers
// into the per-member runs. Members with a zero allocation (or already
// empty/frozen/dropped) are skipped.
func (c *Coordinator) scatter(ctx context.Context, qtext string, fn query.AggFunc, o core.Options, runs []memberRun, alloc []int, pilot bool, round int) {
	var wg sync.WaitGroup
	for i := range runs {
		if alloc[i] <= 0 || !runs[i].live() {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &runs[i]
			sm := stats.NewSplitmix(o.Seed + int64(round)*1_000_003 + int64(i)*7_919)
			seed := int64(sm.Next() >> 1)
			req := SampleRequest{
				Query:     qtext,
				Draws:     alloc[i],
				Pilot:     pilot,
				Seed:      seed,
				Tau:       o.Tau,
				TimeoutMS: int(c.cfg.MemberTimeout / time.Millisecond),
			}
			resp, err := c.sampleMember(ctx, i, req)
			if err != nil {
				r.err = err
				return
			}
			r.err = nil
			if resp.Candidates <= 0 {
				r.empty = true
				r.obs, r.candidates, r.sigma = nil, 0, 0
				return
			}
			obs, err := estimate.FromWire(resp.Observations)
			if err != nil {
				r.err = fmt.Errorf("federate: member %s: %w", c.cfg.Members[i].Name, err)
				return
			}
			if r.epochKnown && resp.Epoch != r.epoch {
				// The member's graph moved between rounds: its earlier draws
				// observed a different graph. Restart its stream from this
				// round's draws alone.
				r.obs = r.obs[:0]
				metEpochRestarts.Inc()
				c.noteEpochRestart(i)
			}
			r.epoch, r.epochKnown = resp.Epoch, true
			r.obs = append(r.obs, obs...)
			r.candidates = resp.Candidates
			r.sigma = estimate.StratumSigma(fn, r.obs)
			metDraws.Add(float64(len(obs)))
			c.noteEpoch(i, resp.Epoch)
		}(i)
	}
	wg.Wait()
}

// noteRPC folds one member RPC outcome into the cross-query health state.
func (c *Coordinator) noteRPC(mi int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := &c.health[mi]
	h.rpcs++
	h.everSeen = true
	if err == nil {
		h.healthy = true
		h.consecFails = 0
		h.lastErr = ""
		return
	}
	h.errs++
	h.consecFails++
	h.healthy = false
	h.lastErr = err.Error()
	metMemberErrors.With(c.cfg.Members[mi].Name, errKind(err)).Inc()
}

func (c *Coordinator) noteEpoch(mi int, epoch uint64) {
	c.mu.Lock()
	c.health[mi].lastEpoch = epoch
	c.mu.Unlock()
}

func (c *Coordinator) noteEpochRestart(mi int) {
	c.mu.Lock()
	c.health[mi].epochRestarts++
	c.mu.Unlock()
}

// MemberStatus is the externally visible health of one member, as observed
// passively from query traffic (no active probing).
type MemberStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Contacted is false until the first RPC ever reaches this member;
	// Healthy is optimistically true then.
	Contacted           bool   `json:"contacted"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	LastEpoch           uint64 `json:"last_epoch,omitempty"`
	RPCs                uint64 `json:"rpcs"`
	Errors              uint64 `json:"errors,omitempty"`
	EpochRestarts       uint64 `json:"epoch_restarts,omitempty"`
}

// Stats is a point-in-time snapshot of the coordinator.
type Stats struct {
	Members []MemberStatus `json:"members"`
	// Queries counts federated queries started on this coordinator.
	Queries uint64 `json:"queries"`
	// Partial counts queries that lost at least one member (frozen or
	// dropped) and finished degraded.
	Partial uint64 `json:"partial"`
}

// Stats snapshots the coordinator's passively observed state.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Queries: c.queries, Partial: c.partial, Members: make([]MemberStatus, len(c.cfg.Members))}
	for i, m := range c.cfg.Members {
		h := c.health[i]
		s.Members[i] = MemberStatus{
			Name: m.Name, URL: m.URL,
			Healthy: h.healthy, Contacted: h.everSeen,
			ConsecutiveFailures: h.consecFails,
			LastError:           h.lastErr,
			LastEpoch:           h.lastEpoch,
			RPCs:                h.rpcs,
			Errors:              h.errs,
			EpochRestarts:       h.epochRestarts,
		}
	}
	return s
}

// ProbeResult is one member's answer to an active health probe.
type ProbeResult struct {
	Name      string  `json:"name"`
	URL       string  `json:"url"`
	Healthy   bool    `json:"healthy"`
	Error     string  `json:"error,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
}

// Probe actively checks every member's /v1/healthz in parallel (bounded by
// the context). It backs /debug/federation and the kgaqload preflight-style
// checks; the cheap passive Stats path backs /v1/healthz.
func (c *Coordinator) Probe(ctx context.Context) []ProbeResult {
	out := make([]ProbeResult, len(c.cfg.Members))
	var wg sync.WaitGroup
	for i, m := range c.cfg.Members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			start := time.Now()
			err := probeOne(ctx, c.cfg.Client, m.URL)
			out[i] = ProbeResult{
				Name: m.Name, URL: m.URL,
				Healthy:   err == nil,
				LatencyMS: float64(time.Since(start).Microseconds()) / 1e3,
			}
			if err != nil {
				out[i].Error = err.Error()
			}
		}(i, m)
	}
	wg.Wait()
	return out
}

// probeOne GETs one member's health endpoint.
func probeOne(ctx context.Context, client *http.Client, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	res, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4096))
		res.Body.Close()
	}()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", res.StatusCode)
	}
	return nil
}
