package federate

import "kgaq/internal/obs"

// Federation metrics (see README "Metrics"). Per-member series are labelled
// by the configured member name, not the URL, so redeploys keep continuity.
var (
	metQueries = obs.Default().CounterVec("kgaq_federate_queries_total",
		"Federated queries by outcome (converged, degraded, unconverged, partial_failure, interrupted, error).",
		"outcome")
	metRounds = obs.Default().Histogram("kgaq_federate_rounds_per_query",
		"Scatter/gather refinement rounds per federated query.",
		obs.RoundBuckets)
	metRPCSeconds = obs.Default().HistogramVec("kgaq_federate_member_rpc_seconds",
		"Latency of one member sample RPC attempt (successful or not).",
		obs.DefBuckets, "member")
	metMemberErrors = obs.Default().CounterVec("kgaq_federate_member_errors_total",
		"Failed member sample RPC attempts by member and error kind.",
		"member", "kind")
	metHedges = obs.Default().CounterVec("kgaq_federate_hedges_total",
		"Hedged (re-issued) member sample RPCs by member.",
		"member")
	metStrata = obs.Default().Histogram("kgaq_federate_strata_survived",
		"Member strata contributing to the final merged estimate of a federated query.",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16})
	metEpochRestarts = obs.Default().Counter("kgaq_federate_epoch_restarts_total",
		"Member draw streams discarded because the member's graph epoch moved mid-query.")
	metDraws = obs.Default().Counter("kgaq_federate_draws_total",
		"Observations gathered from members across all federated queries.")
)
