// Package federate scatters one aggregate query across several kgaqd
// members — engine instances each owning a distinct graph or answer-space
// partition — and gathers their per-member draw streams into one guaranteed
// estimate (DESIGN.md "Federation: remote strata").
//
// The math is the PR4 stratified Horvitz–Thompson combiner generalised from
// in-process shards to remote strata: one member = one stratum. A member
// samples its own graph with member-local inclusion probabilities, so its
// per-draw HT terms v·1{correct}/p estimate the member's local aggregate
// total without any global knowledge; the coordinator merges stratum totals
// as Σ_h f̂(S_h) (estimate.EstimateStratified), bounds the merged margin
// with the closed-form stratified CLT (estimate.MoEStratified), and splits
// every refinement round's draws across members by Neyman allocation on the
// members' reported σ̂ (estimate.AllocateDraws). The Theorem 2 (eb, α)
// guarantee therefore holds end to end, across machine boundaries.
//
// Failure is part of the contract. A member that stays unreachable past its
// retry budget either freezes (its already-gathered sample keeps
// contributing — the merge stays unbiased for the full federation, the
// margin just cannot shrink below that stratum's frozen variance) or, when
// it never delivered a draw, drops out entirely. Without degradation the
// query fails with the typed ErrPartialFederation; under
// core.WithDegradation the coordinator re-weights the surviving strata and
// returns an answer flagged Degraded — honestly scoped, never silently
// wrong.
package federate

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"kgaq/internal/estimate"
)

// Errors returned by the coordinator. Match with errors.Is.
var (
	// ErrPartialFederation reports that one or more members stayed
	// unreachable past the retry budget while degradation was not enabled
	// (or that no member could contribute at all). The wrapping message
	// names the dead members.
	ErrPartialFederation = errors.New("partial federation")
	// ErrNoMembers reports a coordinator configured with an empty member
	// set.
	ErrNoMembers = errors.New("no federation members configured")
)

// SamplePath is the member-side stratum-execution endpoint, served by
// internal/httpapi on every member.
const SamplePath = "/v1/federate/sample"

// SampleRequest is the body of POST /v1/federate/sample: run the query's
// pilot and/or the requested number of draws against the member's local
// space and return the observation stream.
type SampleRequest struct {
	// Query is the textual aggregate query (the coordinator scatters the
	// query verbatim; each member resolves it against its own graph).
	Query string `json:"query"`
	// Draws is the number of draws the coordinator's allocator assigned to
	// this member for this round.
	Draws int `json:"draws"`
	// Pilot floors the draw count at the member's own initial sample size,
	// so the first round returns a usable variance signal.
	Pilot bool `json:"pilot,omitempty"`
	// Seed makes the member's draw stream deterministic; the coordinator
	// derives a distinct seed per (query, member, round).
	Seed int64 `json:"seed,omitempty"`
	// Tau optionally overrides the member's similarity threshold.
	Tau float64 `json:"tau,omitempty"`
	// TimeoutMS bounds the member-side work (the coordinator's per-member
	// round deadline, so an orphaned request cannot run on).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SampleResponse is the member's answer: the draw stream plus the
// member-side statistics the coordinator's allocator and epoch tracking
// need. A member that cannot resolve the query against its own graph
// (entity/type/predicate absent) answers with zero candidates and no
// observations — an honest "nothing here", not an error.
type SampleResponse struct {
	Observations []estimate.WireObservation `json:"observations"`
	// Candidates is the size of the member's candidate-answer space — the
	// coordinator's stratum-weight basis.
	Candidates int `json:"candidates"`
	// Epoch is the member-local graph epoch the draws observed.
	Epoch uint64 `json:"epoch"`
	// Sigma is the member's per-draw HT-term standard deviation σ̂.
	Sigma float64 `json:"sigma"`
	// ElapsedMS is the member-side execution time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Member names one federation member.
type Member struct {
	// Name identifies the member in errors, metrics and health reports.
	Name string `json:"name"`
	// URL is the member's base URL (scheme://host:port, no path).
	URL string `json:"url"`
}

// Config configures a Coordinator. Zero values take the stated defaults.
type Config struct {
	// Members are the federation members; at least one is required.
	Members []Member
	// Client is the HTTP client used for member RPCs (default: a dedicated
	// client with sane connection pooling; per-RPC deadlines come from
	// MemberTimeout, not the client).
	Client *http.Client
	// MemberTimeout is the per-member, per-attempt deadline of one scatter
	// RPC (default 10s).
	MemberTimeout time.Duration
	// Retries is the number of additional attempts after a failed member
	// RPC before the member counts as dead for this query (default 2).
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff between
	// attempts (default 75ms; attempt k waits in [base·2ᵏ/2, base·2ᵏ)).
	RetryBackoff time.Duration
	// HedgeAfter re-issues a still-unanswered member RPC after this long
	// and takes whichever copy answers first — the classic tail-latency
	// hedge for the slowest member (default 400ms; negative disables).
	HedgeAfter time.Duration
}

// withDefaults normalises the configuration.
func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.MemberTimeout <= 0 {
		c.MemberTimeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 75 * time.Millisecond
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 400 * time.Millisecond
	}
	return c
}

// ParseMembers parses the -federate-members flag form: a comma-separated
// list of "name=url" pairs (the name may be omitted; member-N is assigned).
func ParseMembers(spec string) ([]Member, error) {
	var out []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m := Member{Name: fmt.Sprintf("member-%d", len(out))}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			m.Name, part = strings.TrimSpace(name), strings.TrimSpace(url)
		}
		if !strings.HasPrefix(part, "http://") && !strings.HasPrefix(part, "https://") {
			return nil, fmt.Errorf("federate: member %q: URL must start with http:// or https://", part)
		}
		m.URL = strings.TrimRight(part, "/")
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, ErrNoMembers
	}
	return out, nil
}

// ReadMembersFile parses a members config file: one member per line, either
// "name url" or a bare URL; blank lines and #-comments are skipped.
func ReadMembersFile(data string) ([]Member, error) {
	var out []Member
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := Member{Name: fmt.Sprintf("member-%d", len(out))}
		if fields := strings.Fields(line); len(fields) == 2 {
			m.Name, line = fields[0], fields[1]
		} else if len(fields) != 1 {
			return nil, fmt.Errorf("federate: members file: bad line %q (want \"url\" or \"name url\")", line)
		}
		if !strings.HasPrefix(line, "http://") && !strings.HasPrefix(line, "https://") {
			return nil, fmt.Errorf("federate: member %q: URL must start with http:// or https://", line)
		}
		m.URL = strings.TrimRight(line, "/")
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, ErrNoMembers
	}
	return out, nil
}
