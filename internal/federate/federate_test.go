package federate_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/federate"
	"kgaq/internal/httpapi"
	"kgaq/internal/kg"
	"kgaq/internal/query"
)

// buildSplit constructs a federation fixture the way a shard-owners
// deployment splits one logical graph: every graph (member and twin alike)
// holds the anchor Country Root_0, member j owns the answers with
// i ≡ j (mod parts), and the unsplit twin holds all of them. Prices are
// deterministic, so exact ground truth is available alongside the twin.
func buildSplit(parts, answers int) (members []*kg.Graph, twin *kg.Graph, sum float64) {
	build := func(owns func(i int) bool) *kg.Graph {
		bld := kg.NewBuilder()
		root := bld.AddNode("Root_0", "Country")
		for i := 0; i < answers; i++ {
			if !owns(i) {
				continue
			}
			car := bld.AddNode(fmt.Sprintf("Car_%d", i), "Automobile")
			if err := bld.SetAttr(car, "price", price(i)); err != nil {
				panic(err)
			}
			if err := bld.AddEdge(root, "product", car); err != nil {
				panic(err)
			}
			// Non-answer structure so the walk has somewhere else to go.
			factory := bld.AddNode(fmt.Sprintf("Factory_%d", i), "Factory")
			if err := bld.AddEdge(car, "assembly", factory); err != nil {
				panic(err)
			}
		}
		return bld.Build()
	}
	for j := 0; j < parts; j++ {
		members = append(members, build(func(i int) bool { return i%parts == j }))
	}
	twin = build(func(int) bool { return true })
	for i := 0; i < answers; i++ {
		sum += price(i)
	}
	return members, twin, sum
}

func price(i int) float64 { return 10000 + float64(i%37)*777 }

func newEngine(t *testing.T, g *kg.Graph, opts core.Options) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// startFederation boots one in-process member server per graph, optionally
// wrapped (the chaos tests interpose kill switches), and returns the member
// list for a coordinator.
func startFederation(t *testing.T, graphs []*kg.Graph, wrap func(j int, h http.Handler) http.Handler) []federate.Member {
	t.Helper()
	var members []federate.Member
	for j, g := range graphs {
		eng := newEngine(t, g, core.Options{SkipValidation: true, Seed: int64(100 + j)})
		h := httpapi.NewServer(eng).Handler()
		if wrap != nil {
			h = wrap(j, h)
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		members = append(members, federate.Member{Name: fmt.Sprintf("m%d", j), URL: srv.URL})
	}
	return members
}

// fastConfig keeps death detection cheap inside tests.
func fastConfig(members []federate.Member) federate.Config {
	return federate.Config{
		Members:      members,
		Retries:      1,
		RetryBackoff: 5e6, // 5ms
		HedgeAfter:   -1,  // wall-clock hedging off: deterministic tests
	}
}

// TestFederatedMatchesUnsplitTwin is the merge-correctness property: the
// federated COUNT/SUM/AVG over 3 members must agree with an unsplit twin of
// the same logical graph within the two runs' guaranteed margins, and the
// federated interval must contain the exact truth.
func TestFederatedMatchesUnsplitTwin(t *testing.T) {
	const answers = 240
	graphs, twin, sum := buildSplit(3, answers)
	members := startFederation(t, graphs, nil)
	coord, err := federate.New(fastConfig(members), core.Options{ErrorBound: 0.1, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	twinEng := newEngine(t, twin, core.Options{SkipValidation: true, Seed: 11, ErrorBound: 0.1})

	cases := []struct {
		fn    query.AggFunc
		attr  string
		truth float64
	}{
		{query.Count, "", float64(answers)},
		{query.Sum, "price", sum},
		{query.Avg, "price", sum / float64(answers)},
	}
	for _, tc := range cases {
		t.Run(tc.fn.String(), func(t *testing.T) {
			q := query.Simple(tc.fn, tc.attr, "Root_0", "Country", "product", "Automobile")
			fed, err := coord.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("federated query: %v", err)
			}
			twinRes, err := twinEng.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("twin query: %v", err)
			}
			if !fed.Converged {
				t.Fatalf("federated query did not converge: %+v", fed)
			}
			if fed.Degraded {
				t.Fatalf("healthy federation reported degraded")
			}
			if fed.Shards != 3 {
				t.Fatalf("merged %d strata, want 3", fed.Shards)
			}
			if got := math.Abs(fed.Estimate - tc.truth); got > fed.MoE+1e-9 {
				t.Errorf("federated interval misses truth: estimate %.3f ± %.3f, truth %.3f",
					fed.Estimate, fed.MoE, tc.truth)
			}
			if got, bound := math.Abs(fed.Estimate-twinRes.Estimate), fed.MoE+twinRes.MoE; got > bound+1e-9 {
				t.Errorf("federated %.3f ± %.3f vs twin %.3f ± %.3f: gap %.3f exceeds combined margin %.3f",
					fed.Estimate, fed.MoE, twinRes.Estimate, twinRes.MoE, got, bound)
			}
			if fed.Candidates != answers {
				t.Errorf("federation-wide candidates = %d, want %d", fed.Candidates, answers)
			}
		})
	}
}

// killSwitch makes a member die (fail every sample RPC) after serving a
// fixed number of them — the mid-query member-kill chaos lever.
type killSwitch struct {
	inner     http.Handler
	served    atomic.Int64
	killAfter int64 // die once this many sample RPCs were served; 0 = dead from the start
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == federate.SamplePath {
		if k.served.Add(1) > k.killAfter {
			// Every attempt (including retries) lands here: the member is
			// gone for good, as after a SIGKILL.
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
	}
	k.inner.ServeHTTP(w, r)
}

// TestMemberKillFreezesStratum kills one member after it served the pilot
// round: its gathered sample freezes in the merge (the estimate stays
// unbiased for the full federation), the response is flagged degraded, and
// the reported interval still contains the full unsplit truth.
func TestMemberKillFreezesStratum(t *testing.T) {
	const answers = 240
	graphs, _, sum := buildSplit(3, answers)
	var ks *killSwitch
	members := startFederation(t, graphs, func(j int, h http.Handler) http.Handler {
		if j != 2 {
			return h
		}
		ks = &killSwitch{inner: h, killAfter: 1}
		return ks
	})
	coord, err := federate.New(fastConfig(members), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := query.Simple(query.Sum, "price", "Root_0", "Country", "product", "Automobile")
	res, err := coord.Query(context.Background(), q,
		core.WithDegradation(core.Degradation{MaxErrorBound: 0.5}))
	if err != nil {
		t.Fatalf("degradation-enabled query must not fail on a member kill: %v", err)
	}
	if served := ks.served.Load(); served <= 1 {
		t.Fatalf("kill switch never engaged (served %d sample RPCs)", served)
	}
	if !res.Degraded {
		t.Fatalf("losing a member mid-query must flag the answer degraded: %+v", res)
	}
	if res.Shards != 3 {
		t.Fatalf("frozen stratum must stay in the merge: got %d strata, want 3", res.Shards)
	}
	// The frozen merge is still unbiased for the FULL federation, so the
	// honest (possibly widened) interval must cover the unsplit truth.
	if got := math.Abs(res.Estimate - sum); got > res.MoE+1e-9 {
		t.Errorf("degraded interval misses full truth: estimate %.1f ± %.1f, truth %.1f",
			res.Estimate, res.MoE, sum)
	}
}

// TestMemberDeadAtStartDropsStratum kills one member before it ever
// contributes: under degradation its stratum drops, the surviving strata
// re-weight, and the scoped answer (flagged degraded) covers the surviving
// members' truth.
func TestMemberDeadAtStartDropsStratum(t *testing.T) {
	const answers = 240
	graphs, _, _ := buildSplit(3, answers)
	members := startFederation(t, graphs, func(j int, h http.Handler) http.Handler {
		if j != 1 {
			return h
		}
		return &killSwitch{inner: h, killAfter: 0}
	})
	coord, err := federate.New(fastConfig(members), core.Options{ErrorBound: 0.1, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Truth over the surviving members 0 and 2 only.
	survivorSum := 0.0
	survivors := 0
	for i := 0; i < answers; i++ {
		if i%3 != 1 {
			survivorSum += price(i)
			survivors++
		}
	}
	q := query.Simple(query.Sum, "price", "Root_0", "Country", "product", "Automobile")
	res, err := coord.Query(context.Background(), q,
		core.WithDegradation(core.Degradation{MaxErrorBound: 0.5}))
	if err != nil {
		t.Fatalf("degradation-enabled query must not fail on a dead member: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("a dropped member must flag the answer degraded: %+v", res)
	}
	if res.Shards != 2 {
		t.Fatalf("dropped stratum must leave the merge: got %d strata, want 2", res.Shards)
	}
	if res.Candidates != survivors {
		t.Errorf("surviving candidates = %d, want %d", res.Candidates, survivors)
	}
	if got := math.Abs(res.Estimate - survivorSum); got > res.MoE+1e-9 {
		t.Errorf("re-weighted interval misses the survivors' truth: estimate %.1f ± %.1f, truth %.1f",
			res.Estimate, res.MoE, survivorSum)
	}
}

// TestMemberDeathWithoutDegradationIsTyped asserts the other half of the
// honesty contract: without WithDegradation a dead member is a typed
// ErrPartialFederation, never a silently narrower answer.
func TestMemberDeathWithoutDegradationIsTyped(t *testing.T) {
	graphs, _, _ := buildSplit(3, 120)
	members := startFederation(t, graphs, func(j int, h http.Handler) http.Handler {
		if j != 0 {
			return h
		}
		return &killSwitch{inner: h, killAfter: 0}
	})
	coord, err := federate.New(fastConfig(members), core.Options{ErrorBound: 0.1, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := query.Simple(query.Count, "", "Root_0", "Country", "product", "Automobile")
	_, err = coord.Query(context.Background(), q)
	if !errors.Is(err, federate.ErrPartialFederation) {
		t.Fatalf("want ErrPartialFederation, got %v", err)
	}
}

// TestEmptyMemberIsNotDeath: a member whose graph simply lacks the query's
// anchor answers with an empty stratum and the federation carries on at
// full health.
func TestEmptyMemberIsNotDeath(t *testing.T) {
	graphs, _, sum := buildSplit(2, 120)
	// A third member whose graph knows nothing about the query.
	bld := kg.NewBuilder()
	other := bld.AddNode("Elsewhere_0", "City")
	other2 := bld.AddNode("Elsewhere_1", "City")
	if err := bld.AddEdge(other, "near", other2); err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, bld.Build())
	members := startFederation(t, graphs, nil)
	coord, err := federate.New(fastConfig(members), core.Options{ErrorBound: 0.1, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := query.Simple(query.Sum, "price", "Root_0", "Country", "product", "Automobile")
	res, err := coord.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Degraded || !res.Converged {
		t.Fatalf("an empty member is not a failure: %+v", res)
	}
	if res.Shards != 2 {
		t.Fatalf("merged %d strata, want 2 (empty member contributes none)", res.Shards)
	}
	if got := math.Abs(res.Estimate - sum); got > res.MoE+1e-9 {
		t.Errorf("interval misses truth: estimate %.1f ± %.1f, truth %.1f", res.Estimate, res.MoE, sum)
	}
}

// TestFederatedRejectsUnguaranteed: extremes and GROUP-BY do not decompose
// into remote strata and must be rejected with the typed sentinel.
func TestFederatedRejectsUnguaranteed(t *testing.T) {
	graphs, _, _ := buildSplit(2, 30)
	members := startFederation(t, graphs, nil)
	coord, err := federate.New(fastConfig(members), core.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := query.Simple(query.Max, "price", "Root_0", "Country", "product", "Automobile")
	if _, err := coord.Query(context.Background(), q); !errors.Is(err, core.ErrFederatedQuery) {
		t.Fatalf("MAX: want ErrFederatedQuery, got %v", err)
	}
	q = query.Simple(query.Count, "", "Root_0", "Country", "product", "Automobile")
	q.GroupBy = "price"
	if _, err := coord.Query(context.Background(), q); !errors.Is(err, core.ErrFederatedQuery) {
		t.Fatalf("GROUP-BY: want ErrFederatedQuery, got %v", err)
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := federate.ParseMembers("a=http://h1:1, http://h2:2/,b=https://h3:3")
	if err != nil {
		t.Fatalf("ParseMembers: %v", err)
	}
	want := []federate.Member{
		{Name: "a", URL: "http://h1:1"},
		{Name: "member-1", URL: "http://h2:2"},
		{Name: "b", URL: "https://h3:3"},
	}
	if len(ms) != len(want) {
		t.Fatalf("got %d members, want %d", len(ms), len(want))
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("member[%d] = %+v, want %+v", i, ms[i], want[i])
		}
	}
	if _, err := federate.ParseMembers("h1:1"); err == nil {
		t.Error("scheme-less member URL must be rejected")
	}
	if _, err := federate.ParseMembers(" , "); !errors.Is(err, federate.ErrNoMembers) {
		t.Errorf("empty spec: want ErrNoMembers, got %v", err)
	}
}

func TestReadMembersFile(t *testing.T) {
	ms, err := federate.ReadMembersFile("# fleet\neast http://h1:1\n\nhttp://h2:2/\n")
	if err != nil {
		t.Fatalf("ReadMembersFile: %v", err)
	}
	if len(ms) != 2 || ms[0] != (federate.Member{Name: "east", URL: "http://h1:1"}) ||
		ms[1] != (federate.Member{Name: "member-1", URL: "http://h2:2"}) {
		t.Fatalf("unexpected members: %+v", ms)
	}
	if _, err := federate.ReadMembersFile("a b c\n"); err == nil {
		t.Error("three-field line must be rejected")
	}
}
