package federate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// maxResponseBytes bounds a member sample response body. A round of 20k
// draws serialises to well under 2 MiB; anything past this is a broken or
// hostile member, not a big sample.
const maxResponseBytes = 64 << 20

// sampleMember runs one member's scatter RPC for one round: per-attempt
// deadline, Retries extra attempts with jittered exponential backoff, and a
// tail-latency hedge inside each attempt. The error returned after the last
// attempt is the member's death certificate for this query.
func (c *Coordinator) sampleMember(ctx context.Context, mi int, req SampleRequest) (*SampleResponse, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			d := c.cfg.RetryBackoff << (attempt - 1)
			// Full jitter over the upper half: sleep in [d/2, d).
			d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
		}
		resp, err := c.sampleOnce(ctx, mi, req)
		if err == nil {
			c.noteRPC(mi, nil)
			return resp, nil
		}
		lastErr = err
		c.noteRPC(mi, err)
		if ctx.Err() != nil {
			break // the query is over, not the member
		}
	}
	return nil, lastErr
}

// sampleOnce issues one attempt under the per-member deadline, re-issuing a
// hedge copy after HedgeAfter and taking whichever lands first. Both copies
// carry the same seed, so the draws are identical and the loser is simply
// cancelled — hedging never perturbs the sample.
func (c *Coordinator) sampleOnce(parent context.Context, mi int, req SampleRequest) (*SampleResponse, error) {
	ctx, cancel := context.WithTimeout(parent, c.cfg.MemberTimeout)
	defer cancel()

	type outcome struct {
		resp *SampleResponse
		err  error
	}
	ch := make(chan outcome, 2)
	launch := func() {
		start := time.Now()
		resp, err := c.post(ctx, mi, req)
		metRPCSeconds.With(c.cfg.Members[mi].Name).Observe(time.Since(start).Seconds())
		ch <- outcome{resp, err}
	}
	go launch()

	inflight := 1
	var timerC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		timerC = t.C
	}
	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				return o.resp, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-timerC:
			timerC = nil
			metHedges.With(c.cfg.Members[mi].Name).Inc()
			inflight++
			go launch()
		}
	}
}

// post performs the raw HTTP exchange with one member.
func (c *Coordinator) post(ctx context.Context, mi int, req SampleRequest) (*SampleResponse, error) {
	m := c.cfg.Members[mi]
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("federate: encode request for %s: %w", m.Name, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+SamplePath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("federate: build request for %s: %w", m.Name, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.cfg.Client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("federate: member %s: %w", m.Name, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hres.Body, 4096))
		hres.Body.Close()
	}()
	if hres.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hres.Body, 512))
		return nil, fmt.Errorf("federate: member %s: %w", m.Name, &statusError{
			code: hres.StatusCode,
			msg:  fmt.Sprintf("HTTP %d: %s", hres.StatusCode, bytes.TrimSpace(msg)),
		})
	}
	var out SampleResponse
	dec := json.NewDecoder(io.LimitReader(hres.Body, maxResponseBytes))
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("federate: member %s: decode response: %w", m.Name, err)
	}
	return &out, nil
}

// errKind classifies a member RPC failure for the error-counter label.
func errKind(err error) string {
	var se *statusError
	switch {
	case errors.As(err, &se):
		return "http_" + strconv.Itoa(se.code)
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "conn"
	}
}

// statusError is recognised by errKind; post wraps non-200 answers in it.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }
