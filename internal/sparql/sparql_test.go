package sparql

import (
	"math"
	"testing"

	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
)

func TestExactMatchMissesVariants(t *testing.T) {
	// The defining behaviour of the exact baselines: the running example
	// written against the assembly schema finds only the direct assembly
	// answers (BMW_320, BMW_X6), not the semantically equivalent
	// manufacturer/country or designCompany variants.
	g := kgtest.Figure1()
	q := query.Simple(query.Count, "", "Germany", "Country", "assembly", "Automobile")
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("exact COUNT = %v, want 2 (only direct assembly edges)", res.Value)
	}
	names := map[string]bool{}
	for _, u := range res.Answers {
		names[g.Name(u)] = true
	}
	if !names["BMW_320"] || !names["BMW_X6"] || len(names) != 2 {
		t.Fatalf("answers = %v", names)
	}
}

func TestExactAvg(t *testing.T) {
	g := kgtest.Figure1()
	q := query.Simple(query.Avg, "price", "Germany", "Country", "assembly", "Automobile")
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	want := (35000.0 + 55000.0) / 2
	if math.Abs(res.Value-want) > 1e-9 {
		t.Fatalf("exact AVG = %v, want %v", res.Value, want)
	}
}

func TestExactSumMaxMin(t *testing.T) {
	g := kgtest.Figure1()
	for _, cs := range []struct {
		fn   query.AggFunc
		want float64
	}{
		{query.Sum, 90000},
		{query.Max, 55000},
		{query.Min, 35000},
	} {
		q := query.Simple(cs.fn, "price", "Germany", "Country", "assembly", "Automobile")
		res, err := Execute(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != cs.want {
			t.Fatalf("%v = %v, want %v", cs.fn, res.Value, cs.want)
		}
	}
}

func TestUnknownVocabularyYieldsZero(t *testing.T) {
	g := kgtest.Figure1()
	cases := []*query.Aggregate{
		query.Simple(query.Count, "", "Atlantis", "Country", "assembly", "Automobile"),
		query.Simple(query.Count, "", "Germany", "Country", "teleportedFrom", "Automobile"),
		query.Simple(query.Count, "", "Germany", "Country", "assembly", "Spaceship"),
	}
	for i, q := range cases {
		res, err := Execute(g, q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Value != 0 || len(res.Answers) != 0 {
			t.Fatalf("case %d: got %v answers", i, len(res.Answers))
		}
	}
}

func TestFilter(t *testing.T) {
	g := kgtest.Figure1()
	q := query.Simple(query.Count, "", "Germany", "Country", "assembly", "Automobile").
		WithFilter("fuel_economy", 25, 30)
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// Of the two exact answers, only BMW_320 (28 MPG) passes; BMW_X6 is 22.
	if res.Value != 1 {
		t.Fatalf("filtered COUNT = %v, want 1", res.Value)
	}
}

func TestGroupBy(t *testing.T) {
	g := kgtest.Figure1()
	q := query.Simple(query.Count, "", "Germany", "Country", "assembly", "Automobile").
		WithGroupBy("fuel_economy")
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}
	if res.Groups["28"] != 1 || res.Groups["22"] != 1 {
		t.Fatalf("groups = %v", res.Groups)
	}
}

func TestChainExact(t *testing.T) {
	g := kgtest.Figure1()
	// Exact two-hop pattern: Germany ←country– Company ←assembly– car.
	// Only Audi_TT matches it exactly.
	b := query.NewBuilder()
	de := b.Specific("Germany", "Country")
	co := b.Unknown("Company")
	tgt := b.Target("Automobile")
	b.Edge(co, de, "country")
	b.Edge(tgt, co, "assembly")
	q := b.Aggregate(query.Count, "")
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 || g.Name(res.Answers[0]) != "Audi_TT" {
		t.Fatalf("chain exact = %v (%d answers)", res.Value, len(res.Answers))
	}
}

func TestStarExact(t *testing.T) {
	g := kgtest.Figure1()
	// Lamando is both a product of VW and design-companied by VW.
	b := query.NewBuilder()
	vw := b.Specific("Volkswagen", "Company")
	tgt := b.Target("Automobile")
	b.Edge(vw, tgt, "product")
	b.Edge(tgt, vw, "designCompany")
	q := b.Aggregate(query.Count, "")
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 || g.Name(res.Answers[0]) != "Lamando" {
		t.Fatalf("star exact = %v", res.Value)
	}
}

func TestCycleExact(t *testing.T) {
	// Cycle: car –engine→ device –madeBy→ company ←designCompany– car.
	g := kgtest.Figure1()
	b := query.NewBuilder()
	tgt := b.Target("Automobile")
	dev := b.Unknown("Device")
	co := b.Specific("Volkswagen", "Company")
	b.Edge(tgt, dev, "engine")
	b.Edge(dev, co, "madeBy")
	b.Edge(tgt, co, "designCompany")
	q := b.Aggregate(query.Count, "")
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 || g.Name(res.Answers[0]) != "Lamando" {
		t.Fatalf("cycle exact = %v (%v answers)", res.Value, len(res.Answers))
	}
}

func TestAvgWithMissingAttrs(t *testing.T) {
	// AVG over answers lacking the attribute skips them (unbound in
	// SPARQL), and an all-missing set yields 0.
	b := kg.NewBuilder()
	de := b.AddNode("Germany", "Country")
	car := b.AddNode("Trabant", "Automobile")
	if err := b.AddEdge(car, "assembly", de); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	q := query.Simple(query.Avg, "price", "Germany", "Country", "assembly", "Automobile")
	res, err := Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("AVG over unbound = %v, want 0", res.Value)
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	g := kgtest.Figure1()
	if _, err := Execute(g, &query.Aggregate{}); err == nil {
		t.Fatal("invalid query accepted")
	}
}
