// Package sparql implements a small exact-matching basic-graph-pattern
// engine over kg.Graph: the stand-in for the JENA and Virtuoso/Neo4j
// baselines of §VII. It matches query graphs schema-exactly — a query edge
// matches only a stored edge with the identical predicate — which is
// precisely why exact engines miss the semantically equivalent but
// structurally different answers that the paper's approach finds (both
// baseline rows are identical in every table of the paper, so one engine
// serves both).
//
// Matching is by backtracking over the query's edges with the usual
// candidate-ordering heuristics; aggregates, filters and GROUP BY are
// applied over the matched target bindings.
package sparql
