package sparql

import (
	"fmt"
	"sort"
	"strconv"

	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// Result is the exact aggregate over schema-exact matches.
type Result struct {
	Value   float64
	Answers []kg.NodeID // distinct target bindings that passed filters
	Groups  map[string]float64
}

// Execute runs the aggregate query with exact matching. Unknown predicates,
// types or entities yield zero answers (as a triple store would), not an
// error; malformed queries still error.
func Execute(g *kg.Graph, a *query.Aggregate) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	matches, err := bindTargets(g, a.Q)
	if err != nil {
		return nil, err
	}

	// Filters (§V-A) apply per answer.
	var attr kg.AttrID = kg.InvalidAttr
	if a.Attr != "" {
		attr = g.AttrByName(a.Attr)
	}
	var answers []kg.NodeID
	for _, u := range matches {
		ok := true
		for _, f := range a.Filters {
			fa := g.AttrByName(f.Attr)
			if fa == kg.InvalidAttr {
				ok = false
				break
			}
			v, has := g.Attr(u, fa)
			if !has || !f.Matches(v) {
				ok = false
				break
			}
		}
		if ok {
			answers = append(answers, u)
		}
	}

	res := &Result{Answers: answers}
	if a.GroupBy != "" {
		ga := g.AttrByName(a.GroupBy)
		groups := map[string][]kg.NodeID{}
		for _, u := range answers {
			label := "n/a"
			if ga != kg.InvalidAttr {
				if v, ok := g.Attr(u, ga); ok {
					label = strconv.FormatFloat(v, 'g', -1, 64)
				}
			}
			groups[label] = append(groups[label], u)
		}
		res.Groups = map[string]float64{}
		for label, us := range groups {
			v, err := aggregateOver(g, a.Func, attr, us)
			if err == nil {
				res.Groups[label] = v
			}
		}
		// The scalar result is the overall aggregate.
	}
	v, err := aggregateOver(g, a.Func, attr, answers)
	if err != nil {
		return nil, err
	}
	res.Value = v
	return res, nil
}

// aggregateOver applies the aggregate function exactly over the answers'
// attribute values; answers missing the attribute are skipped (SPARQL
// semantics for unbound values).
func aggregateOver(g *kg.Graph, fn query.AggFunc, attr kg.AttrID, us []kg.NodeID) (float64, error) {
	if fn == query.Count {
		return float64(len(us)), nil
	}
	var vals []float64
	for _, u := range us {
		if attr == kg.InvalidAttr {
			continue
		}
		if v, ok := g.Attr(u, attr); ok {
			vals = append(vals, v)
		}
	}
	switch fn {
	case query.Sum:
		return stats.Sum(vals), nil
	case query.Avg:
		if len(vals) == 0 {
			return 0, nil
		}
		return stats.Mean(vals), nil
	case query.Max:
		if len(vals) == 0 {
			return 0, nil
		}
		v, _ := stats.Max(vals)
		return v, nil
	case query.Min:
		if len(vals) == 0 {
			return 0, nil
		}
		v, _ := stats.Min(vals)
		return v, nil
	default:
		return 0, fmt.Errorf("sparql: unsupported aggregate %v", fn)
	}
}

// bindTargets enumerates the distinct bindings of the target variable over
// exact matches of the basic graph pattern.
func bindTargets(g *kg.Graph, q *query.Graph) ([]kg.NodeID, error) {
	n := len(q.Nodes)

	// Resolve per-node unary constraints.
	typeIDs := make([][]kg.TypeID, n)
	fixed := make([]kg.NodeID, n)
	for i, nd := range q.Nodes {
		fixed[i] = kg.InvalidNode
		if nd.IsSpecific() {
			u := g.NodeByName(nd.Name)
			if u == kg.InvalidNode {
				return nil, nil // unknown entity: zero matches
			}
			fixed[i] = u
		}
		for _, tn := range nd.Types {
			if t := g.TypeByName(tn); t != kg.InvalidType {
				typeIDs[i] = append(typeIDs[i], t)
			}
		}
		if len(typeIDs[i]) == 0 {
			return nil, nil // type absent from the graph: zero matches
		}
	}
	preds := make([]kg.PredID, len(q.Edges))
	for i, e := range q.Edges {
		p := g.PredByName(e.Predicate)
		if p == kg.InvalidPred {
			return nil, nil // unknown predicate: zero matches
		}
		preds[i] = p
	}

	nodeOK := func(qi int, u kg.NodeID) bool {
		if fixed[qi] != kg.InvalidNode && fixed[qi] != u {
			return false
		}
		return g.SharesType(u, typeIDs[qi])
	}

	// Order query edges so each new edge touches the bound part (the query
	// graph is connected, so a BFS edge order works).
	order := connectedEdgeOrder(q)

	binding := make([]kg.NodeID, n)
	bound := make([]bool, n)
	targets := map[kg.NodeID]bool{}

	var match func(step int)
	match = func(step int) {
		if step == len(order) {
			targets[binding[q.Target]] = true
			return
		}
		e := q.Edges[order[step]]
		p := preds[order[step]]
		// Matching is exact on the predicate but orientation-insensitive:
		// it emulates a competently written exact query whose triple
		// patterns follow the store's canonical direction. The baseline's
		// error comes from missing schema *variants* (different predicates,
		// multi-hop paths), never from direction bookkeeping.
		switch {
		case bound[e.From] && bound[e.To]:
			if g.HasEdge(binding[e.From], p, binding[e.To]) ||
				g.HasEdge(binding[e.To], p, binding[e.From]) {
				match(step + 1)
			}
		case bound[e.From], bound[e.To]:
			from, free := e.From, e.To
			if !bound[e.From] {
				from, free = e.To, e.From
			}
			for _, he := range g.Neighbors(binding[from]) {
				if he.Pred != p {
					continue
				}
				if !nodeOK(free, he.To) {
					continue
				}
				if used(binding, bound, he.To, free) {
					continue
				}
				binding[free] = he.To
				bound[free] = true
				match(step + 1)
				bound[free] = false
			}
		default:
			// Unreachable with a connected edge order seeded below.
		}
	}

	// Seed: bind one endpoint of the first edge, preferring a specific
	// node so the search starts from a single entity.
	first := q.Edges[order[0]]
	seedNode := first.From
	if fixed[first.From] == kg.InvalidNode && fixed[first.To] != kg.InvalidNode {
		seedNode = first.To
	}
	var seeds []kg.NodeID
	if fixed[seedNode] != kg.InvalidNode {
		seeds = []kg.NodeID{fixed[seedNode]}
	} else {
		seen := map[kg.NodeID]bool{}
		for _, t := range typeIDs[seedNode] {
			for _, u := range g.NodesByType(t) {
				if !seen[u] {
					seen[u] = true
					seeds = append(seeds, u)
				}
			}
		}
	}
	for _, s := range seeds {
		if !nodeOK(seedNode, s) {
			continue
		}
		binding[seedNode] = s
		bound[seedNode] = true
		match(0)
		bound[seedNode] = false
	}

	out := make([]kg.NodeID, 0, len(targets))
	for u := range targets {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// used enforces injective matching on non-target variables (standard
// subgraph isomorphism semantics; SPARQL BGPs are homomorphic, but the
// paper's exact baselines compare against isomorphic matchers — for the
// tree/cycle-shaped queries of the workload the two coincide).
func used(binding []kg.NodeID, bound []bool, u kg.NodeID, except int) bool {
	for i, b := range bound {
		if b && i != except && binding[i] == u {
			return true
		}
	}
	return false
}

// connectedEdgeOrder returns query edge indices so that each edge after the
// first shares a node with the union of earlier edges.
func connectedEdgeOrder(q *query.Graph) []int {
	n := len(q.Edges)
	order := make([]int, 0, n)
	usedE := make([]bool, n)
	touched := map[int]bool{}
	// Start from the first edge adjoining a specific node if any, else 0.
	start := 0
	for i, e := range q.Edges {
		if q.Nodes[e.From].IsSpecific() || q.Nodes[e.To].IsSpecific() {
			start = i
			break
		}
	}
	order = append(order, start)
	usedE[start] = true
	touched[q.Edges[start].From] = true
	touched[q.Edges[start].To] = true
	for len(order) < n {
		advanced := false
		for i, e := range q.Edges {
			if usedE[i] {
				continue
			}
			if touched[e.From] || touched[e.To] {
				order = append(order, i)
				usedE[i] = true
				touched[e.From] = true
				touched[e.To] = true
				advanced = true
			}
		}
		if !advanced {
			break // disconnected (rejected upstream by Validate)
		}
	}
	return order
}
