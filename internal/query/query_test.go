package query

import (
	"math"
	"strings"
	"testing"
)

func TestSimpleConstructor(t *testing.T) {
	a := Simple(Avg, "price", "Germany", "Country", "product", "Automobile")
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeSimple {
		t.Fatalf("shape = %v, want simple", got)
	}
	if a.Q.Nodes[a.Q.Target].Types[0] != "Automobile" {
		t.Fatal("target type wrong")
	}
	if !strings.Contains(a.String(), "AVG(price)") {
		t.Fatalf("String = %q", a.String())
	}
}

func TestChainConstructor(t *testing.T) {
	// Q10: How many cars are designed by German designers?
	a := Chain(Count, "", "Germany", "Country", []Hop{
		{Predicate: "nationality", Types: []string{"Person"}},
		{Predicate: "designer", Types: []string{"Automobile"}},
	})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeChain {
		t.Fatalf("shape = %v, want chain", got)
	}
	paths, err := a.Q.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	if len(paths[0].Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(paths[0].Hops))
	}
	if paths[0].RootName != "Germany" {
		t.Fatalf("root = %q", paths[0].RootName)
	}
	if paths[0].Hops[1].Types[0] != "Automobile" {
		t.Fatal("final hop should end at target type")
	}
}

func starQuery() *Aggregate {
	// Q9-style: soccer players born in Spain who played for Barcelona.
	b := NewBuilder()
	spain := b.Specific("Spain", "Country")
	barca := b.Specific("Barcelona_FC", "SoccerClub")
	tgt := b.Target("SoccerPlayer")
	b.Edge(tgt, spain, "bornIn")
	b.Edge(tgt, barca, "team")
	return b.Aggregate(Count, "")
}

func TestStarShapeAndDecompose(t *testing.T) {
	a := starQuery()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeStar {
		t.Fatalf("shape = %v, want star", got)
	}
	paths, err := a.Q.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	roots := map[string]bool{}
	for _, p := range paths {
		roots[p.RootName] = true
		if len(p.Hops) != 1 {
			t.Fatalf("star branch should be one hop, got %d", len(p.Hops))
		}
	}
	if !roots["Spain"] || !roots["Barcelona_FC"] {
		t.Fatalf("roots = %v", roots)
	}
}

func cycleQuery() *Aggregate {
	// Figure 4(c)-style cycle: target player member of a club that is
	// grounded in a country where the player also has nationality.
	b := NewBuilder()
	tgt := b.Target("SoccerPlayer")
	club := b.Unknown("SoccerClub")
	eng := b.Specific("England", "Country")
	b.Edge(tgt, club, "team")
	b.Edge(club, eng, "ground")
	b.Edge(tgt, eng, "nationality")
	return b.Aggregate(Avg, "age")
}

func TestCycleShapeAndDecompose(t *testing.T) {
	a := cycleQuery()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeCycle {
		t.Fatalf("shape = %v, want cycle", got)
	}
	paths, err := a.Q.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 (both arcs of the cycle)", len(paths))
	}
	// Both arcs start from England; one is direct, one goes via the club.
	lens := map[int]bool{}
	for _, p := range paths {
		if p.RootName != "England" {
			t.Fatalf("root = %q, want England", p.RootName)
		}
		lens[len(p.Hops)] = true
	}
	if !lens[1] || !lens[2] {
		t.Fatalf("arc lengths = %v, want {1,2}", lens)
	}
}

func flowerQuery() *Aggregate {
	// Figure 4(d)-style flower: cycle plus an extra branch.
	b := NewBuilder()
	tgt := b.Target("SoccerPlayer")
	club := b.Unknown("SoccerClub")
	eng := b.Specific("England", "Country")
	spain := b.Specific("Spain", "Country")
	b.Edge(tgt, club, "team")
	b.Edge(club, eng, "ground")
	b.Edge(tgt, eng, "nationality")
	b.Edge(tgt, spain, "bornIn")
	return b.Aggregate(Avg, "age")
}

func TestFlowerShapeAndDecompose(t *testing.T) {
	a := flowerQuery()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeFlower {
		t.Fatalf("shape = %v, want flower", got)
	}
	paths, err := a.Q.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"one node", &Graph{Nodes: []Node{{Types: []string{"T"}}}, Target: 0}},
		{"target out of range", &Graph{
			Nodes:  []Node{{Name: "a", Types: []string{"T"}}, {Types: []string{"T"}}},
			Edges:  []Edge{{0, 1, "p"}},
			Target: 7,
		}},
		{"named target", &Graph{
			Nodes:  []Node{{Name: "a", Types: []string{"T"}}, {Name: "b", Types: []string{"T"}}},
			Edges:  []Edge{{0, 1, "p"}},
			Target: 1,
		}},
		{"typeless target", &Graph{
			Nodes:  []Node{{Name: "a", Types: []string{"T"}}, {}},
			Edges:  []Edge{{0, 1, "p"}},
			Target: 1,
		}},
		{"no specific node", &Graph{
			Nodes:  []Node{{Types: []string{"T"}}, {Types: []string{"T"}}},
			Edges:  []Edge{{0, 1, "p"}},
			Target: 1,
		}},
		{"no edges", &Graph{
			Nodes:  []Node{{Name: "a", Types: []string{"T"}}, {Types: []string{"T"}}},
			Target: 1,
		}},
		{"self loop", &Graph{
			Nodes:  []Node{{Name: "a", Types: []string{"T"}}, {Types: []string{"T"}}},
			Edges:  []Edge{{0, 0, "p"}},
			Target: 1,
		}},
		{"edge predicate missing", &Graph{
			Nodes:  []Node{{Name: "a", Types: []string{"T"}}, {Types: []string{"T"}}},
			Edges:  []Edge{{0, 1, ""}},
			Target: 1,
		}},
		{"duplicate edges", &Graph{
			Nodes:  []Node{{Name: "a", Types: []string{"T"}}, {Types: []string{"T"}}},
			Edges:  []Edge{{0, 1, "p"}, {1, 0, "p"}},
			Target: 1,
		}},
		{"disconnected", &Graph{
			Nodes: []Node{
				{Name: "a", Types: []string{"T"}}, {Types: []string{"T"}},
				{Name: "c", Types: []string{"T"}}, {Types: []string{"T"}},
			},
			Edges:  []Edge{{0, 1, "p"}, {2, 3, "q"}},
			Target: 1,
		}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid graph", c.name)
		}
	}
}

func TestAggregateValidate(t *testing.T) {
	a := Simple(Sum, "", "Germany", "Country", "product", "Automobile")
	if err := a.Validate(); err == nil {
		t.Fatal("SUM without attribute accepted")
	}
	a = Simple(Count, "", "Germany", "Country", "product", "Automobile")
	if err := a.Validate(); err != nil {
		t.Fatalf("COUNT(*) rejected: %v", err)
	}
	a.WithFilter("price", 100, 50)
	if err := a.Validate(); err == nil {
		t.Fatal("empty filter range accepted")
	}
	a.Filters = []Filter{{Attr: "", Low: 0, High: 1}}
	if err := a.Validate(); err == nil {
		t.Fatal("filter without attribute accepted")
	}
	var nilQ Aggregate
	if err := nilQ.Validate(); err == nil {
		t.Fatal("aggregate without query graph accepted")
	}
}

func TestFilterMatches(t *testing.T) {
	f := Filter{Attr: "mpg", Low: 25, High: 30}
	if !f.Matches(25) || !f.Matches(30) || !f.Matches(27.5) {
		t.Fatal("closed range should include endpoints")
	}
	if f.Matches(24.999) || f.Matches(30.001) {
		t.Fatal("out of range accepted")
	}
	open := Filter{Attr: "mpg", Low: math.Inf(-1), High: 30}
	if !open.Matches(-1e9) {
		t.Fatal("open lower bound broken")
	}
	if got := open.String(); !strings.Contains(got, "<= 30") {
		t.Fatalf("String = %q", got)
	}
}

func TestAggFuncProperties(t *testing.T) {
	guar := map[AggFunc]bool{Count: true, Sum: true, Avg: true, Max: false, Min: false}
	for f, want := range guar {
		if f.HasGuarantee() != want {
			t.Errorf("%s HasGuarantee = %v, want %v", f, f.HasGuarantee(), want)
		}
	}
	for _, name := range []string{"COUNT", "sum", "Avg", "MAX", "min"} {
		if _, err := ParseAggFunc(name); err != nil {
			t.Errorf("ParseAggFunc(%q) failed: %v", name, err)
		}
	}
	if _, err := ParseAggFunc("MEDIAN"); err == nil {
		t.Error("ParseAggFunc accepted MEDIAN")
	}
}

func TestWithFilterHelpers(t *testing.T) {
	a := Simple(Avg, "price", "Germany", "Country", "product", "Automobile").
		WithFilterAtLeast("mpg", 25).
		WithFilterAtMost("price", 100000).
		WithGroupBy("brand")
	if len(a.Filters) != 2 {
		t.Fatalf("filters = %d, want 2", len(a.Filters))
	}
	if !math.IsInf(a.Filters[0].High, 1) || !math.IsInf(a.Filters[1].Low, -1) {
		t.Fatal("open bounds not set")
	}
	if a.GroupBy != "brand" {
		t.Fatal("group by not set")
	}
	if !strings.Contains(a.String(), "GROUPBY brand") {
		t.Fatalf("String = %q", a.String())
	}
}

func TestDecomposeSimple(t *testing.T) {
	a := Simple(Avg, "price", "Germany", "Country", "product", "Automobile")
	paths, err := a.Q.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0].Hops) != 1 {
		t.Fatalf("paths = %+v", paths)
	}
	if paths[0].Hops[0].Predicate != "product" {
		t.Fatalf("hop predicate = %q", paths[0].Hops[0].Predicate)
	}
}

func TestDecomposeDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		p1, err := flowerQuery().Q.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := flowerQuery().Q.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		if len(p1) != len(p2) {
			t.Fatal("nondeterministic decomposition size")
		}
		for j := range p1 {
			if p1[j].RootName != p2[j].RootName || len(p1[j].Hops) != len(p2[j].Hops) {
				t.Fatal("nondeterministic decomposition")
			}
		}
	}
}
