package query

import "math"

// Simple builds the canonical simple aggregate query of Definition 3: a
// specific node (name + type) connected to a typed target by one predicate.
// Example 1 of the paper becomes:
//
//	Simple(Avg, "price", "Germany", "Country", "product", "Automobile")
func Simple(f AggFunc, attr, specificName, specificType, predicate, targetType string) *Aggregate {
	return &Aggregate{
		Q: &Graph{
			Nodes: []Node{
				{Name: specificName, Types: []string{specificType}},
				{Types: []string{targetType}},
			},
			Edges:  []Edge{{From: 0, To: 1, Predicate: predicate}},
			Target: 1,
		},
		Func: f,
		Attr: attr,
	}
}

// Chain builds a chain-shaped query (§V-B): the specific node, then hops
// through unknown typed nodes, ending at the target (the last hop).
func Chain(f AggFunc, attr, specificName, specificType string, hops []Hop) *Aggregate {
	g := &Graph{Nodes: []Node{{Name: specificName, Types: []string{specificType}}}}
	for i, h := range hops {
		g.Nodes = append(g.Nodes, Node{Types: h.Types})
		g.Edges = append(g.Edges, Edge{From: i, To: i + 1, Predicate: h.Predicate})
	}
	g.Target = len(g.Nodes) - 1
	return &Aggregate{Q: g, Func: f, Attr: attr}
}

// Builder assembles arbitrary-shape query graphs fluently. Node methods
// return the node index for use in Edge.
type Builder struct {
	g *Graph
}

// NewBuilder returns an empty query-graph builder.
func NewBuilder() *Builder { return &Builder{g: &Graph{Target: -1}} }

// Specific adds a named node and returns its index.
func (b *Builder) Specific(name string, types ...string) int {
	b.g.Nodes = append(b.g.Nodes, Node{Name: name, Types: types})
	return len(b.g.Nodes) - 1
}

// Unknown adds an unnamed typed node and returns its index.
func (b *Builder) Unknown(types ...string) int {
	b.g.Nodes = append(b.g.Nodes, Node{Types: types})
	return len(b.g.Nodes) - 1
}

// Target adds an unnamed typed node, marks it as the query target, and
// returns its index.
func (b *Builder) Target(types ...string) int {
	i := b.Unknown(types...)
	b.g.Target = i
	return i
}

// Edge connects two node indices with a predicate.
func (b *Builder) Edge(from, to int, predicate string) *Builder {
	b.g.Edges = append(b.g.Edges, Edge{From: from, To: to, Predicate: predicate})
	return b
}

// Graph finalises and returns the query graph (call Validate separately).
func (b *Builder) Graph() *Graph { return b.g }

// Aggregate finalises the query graph into an aggregate query.
func (b *Builder) Aggregate(f AggFunc, attr string) *Aggregate {
	return &Aggregate{Q: b.g, Func: f, Attr: attr}
}

// WithFilter appends a closed range filter and returns the query for
// chaining.
func (a *Aggregate) WithFilter(attr string, low, high float64) *Aggregate {
	a.Filters = append(a.Filters, Filter{Attr: attr, Low: low, High: high})
	return a
}

// WithFilterAtLeast appends a lower-bounded filter.
func (a *Aggregate) WithFilterAtLeast(attr string, low float64) *Aggregate {
	return a.WithFilter(attr, low, math.Inf(1))
}

// WithFilterAtMost appends an upper-bounded filter.
func (a *Aggregate) WithFilterAtMost(attr string, high float64) *Aggregate {
	return a.WithFilter(attr, math.Inf(-1), high)
}

// WithGroupBy sets the GROUP-BY attribute and returns the query for
// chaining.
func (a *Aggregate) WithGroupBy(attr string) *Aggregate {
	a.GroupBy = attr
	return a
}
