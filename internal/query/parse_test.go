package query

import (
	"strings"
	"testing"
)

func TestParseRunningExample(t *testing.T) {
	a, err := Parse("AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c")
	if err != nil {
		t.Fatal(err)
	}
	if a.Func != Avg || a.Attr != "price" {
		t.Fatalf("agg = %s(%s)", a.Func, a.Attr)
	}
	if got := a.Q.ShapeOf(); got != ShapeSimple {
		t.Fatalf("shape = %v", got)
	}
	if a.Q.Nodes[0].Name != "Germany" || a.Q.Nodes[0].Types[0] != "Country" {
		t.Fatalf("specific node = %+v", a.Q.Nodes[0])
	}
	if a.Q.Edges[0].Predicate != "product" {
		t.Fatalf("predicate = %q", a.Q.Edges[0].Predicate)
	}
}

func TestParseImplicitTarget(t *testing.T) {
	a, err := Parse("COUNT(*) MATCH (g:Country name=Germany)<-[assembly]-(c:Automobile)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Q.Target != 1 {
		t.Fatalf("implicit target = %d, want 1", a.Q.Target)
	}
	// Reversed arrow: edge goes c -> g.
	e := a.Q.Edges[0]
	if e.From != 1 || e.To != 0 {
		t.Fatalf("edge = %+v, want 1->0", e)
	}
}

func TestParseCountStar(t *testing.T) {
	a, err := Parse("COUNT(*) MATCH (g:Country name=Germany)-[product]->(c:Automobile)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Func != Count || a.Attr != "" {
		t.Fatalf("agg = %s(%q)", a.Func, a.Attr)
	}
}

func TestParseChain(t *testing.T) {
	a, err := Parse("COUNT(*) MATCH (g:Country name=Germany)<-[nationality]-(p:Person)<-[designer]-(c:Automobile) TARGET c")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeChain {
		t.Fatalf("shape = %v, want chain", got)
	}
	if len(a.Q.Nodes) != 3 || len(a.Q.Edges) != 2 {
		t.Fatalf("graph = %d nodes, %d edges", len(a.Q.Nodes), len(a.Q.Edges))
	}
}

func TestParseStarWithSharedNode(t *testing.T) {
	in := "COUNT(*) MATCH (s:Country name=Spain)<-[bornIn]-(p:SoccerPlayer), (b:SoccerClub name=Barcelona_FC)<-[team]-(p)"
	a, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeStar {
		t.Fatalf("shape = %v, want star", got)
	}
	if len(a.Q.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3 (p shared)", len(a.Q.Nodes))
	}
}

func TestParseCycle(t *testing.T) {
	in := "AVG(age) MATCH (p:SoccerPlayer)-[team]->(c:SoccerClub)-[ground]->(e:Country name=England), (p)-[nationality]->(e) TARGET p"
	a, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Q.ShapeOf(); got != ShapeCycle {
		t.Fatalf("shape = %v, want cycle", got)
	}
}

func TestParseFiltersAndGroupBy(t *testing.T) {
	in := "AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c FILTER 25<=fuel_economy<=30 FILTER price<=100000 GROUPBY brand"
	a, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Filters) != 2 {
		t.Fatalf("filters = %d, want 2", len(a.Filters))
	}
	f := a.Filters[0]
	if f.Attr != "fuel_economy" || f.Low != 25 || f.High != 30 {
		t.Fatalf("filter = %+v", f)
	}
	if a.Filters[1].Attr != "price" || a.Filters[1].High != 100000 {
		t.Fatalf("filter 2 = %+v", a.Filters[1])
	}
	if a.GroupBy != "brand" {
		t.Fatalf("groupby = %q", a.GroupBy)
	}
}

func TestParseFilterAtLeast(t *testing.T) {
	a, err := Parse("COUNT(*) MATCH (g:Country name=Germany)-[product]->(c:Automobile) FILTER horsepower>=300")
	if err != nil {
		t.Fatal(err)
	}
	if a.Filters[0].Low != 300 {
		t.Fatalf("filter = %+v", a.Filters[0])
	}
}

func TestParseMultiType(t *testing.T) {
	a, err := Parse("COUNT(*) MATCH (g:Country name=Germany)-[product]->(c:Automobile|MeanOfTransportation)")
	if err != nil {
		t.Fatal(err)
	}
	tgt := a.Q.Nodes[a.Q.Target]
	if len(tgt.Types) != 2 {
		t.Fatalf("target types = %v", tgt.Types)
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	if _, err := Parse("count(*) match (g:Country name=Germany)-[product]->(c:Automobile) target c"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"AVG price MATCH (a:T name=x)-[p]->(b:U)",
		"FOO(price) MATCH (a:T name=x)-[p]->(b:U)",
		"AVG(price) (a:T name=x)-[p]->(b:U)",                      // missing MATCH
		"AVG(price) MATCH (a:T name=x)-[p->(b:U)",                 // broken edge
		"AVG(price) MATCH (a:T name=x)-[p]->(b:U) TARGET zz",      // unknown target id
		"AVG(price) MATCH (a:T name=x)-[p]->(b:U) garbage",        // trailing garbage
		"AVG(price) MATCH (a:T name=x)-[p]->(b:U)-[q]->(c:V)",     // two unnamed, no TARGET
		"AVG(price) MATCH (a:T name=x)-[p]->(b:U) FILTER 30<=mpg", // half range
		"AVG(price) MATCH (a:T name=x)-[p]->(a:T name=y)",         // node renamed
		"AVG(price) MATCH (a:T name=x)-[p]->(b:U) FILTER mpg==5",  // bad operator
		"AVG(price) MATCH (a:T name=x)-[p]->(b:U) TARGET a",       // named target
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", in)
		}
	}
}

func TestParseErrorsMentionOffset(t *testing.T) {
	_, err := Parse("AVG(price) MATCH (a:T name=x)-[p]->(b:U) garbage")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("err = %v, want offset info", err)
	}
}
