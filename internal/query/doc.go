// Package query models aggregate queries over knowledge graphs (Definition
// 2 and §V of the paper): a query graph with one target node and one or more
// specific (named) nodes, an aggregate function over a numeric attribute of
// the answers, optional range filters, and optional GROUP-BY.
//
// Complex shapes (chain, star, cycle, flower) are supported through
// decomposition into root-to-target paths, the form consumed by the
// decomposition–assembly engine (§V-B).
package query
