package query

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// genGraph builds a random valid query graph of one of the five Figure 4
// shapes. The generator only emits what the textual language can express
// (identifier names/types/predicates), which is exactly the domain the
// String ↔ Parse round-trip promises.
func genGraph(r *rand.Rand) *Graph {
	idents := []string{"Country", "Automobile", "Person", "Brand", "City", "Engine"}
	names := []string{"Germany", "BMW", "Munich", "Alice", "X5", "Node.Seven"}
	preds := []string{"product", "designer", "locatedIn", "owns", "partOf"}
	pick := func(pool []string) string { return pool[r.Intn(len(pool))] }
	types := func() []string {
		out := []string{pick(idents)}
		for r.Intn(3) == 0 {
			t := pick(idents)
			dup := false
			for _, have := range out {
				if have == t {
					dup = true
				}
			}
			if !dup {
				out = append(out, t)
			}
		}
		return out
	}

	b := NewBuilder()
	switch r.Intn(5) {
	case 0: // simple
		root := b.Specific(pick(names), types()...)
		tgt := b.Target(types()...)
		b.Edge(root, tgt, pick(preds))
	case 1: // chain
		cur := b.Specific(pick(names), types()...)
		hops := 2 + r.Intn(3)
		for i := 0; i < hops; i++ {
			var next int
			if i == hops-1 {
				next = b.Target(types()...)
			} else {
				next = b.Unknown(types()...)
			}
			b.Edge(cur, next, pick(preds))
			cur = next
		}
	case 2: // star
		tgt := b.Target(types()...)
		arms := 2 + r.Intn(3)
		for i := 0; i < arms; i++ {
			root := b.Specific(pick(names)+"_"+string(rune('a'+i)), types()...)
			b.Edge(root, tgt, pick(preds))
		}
	case 3: // cycle
		root := b.Specific(pick(names), types()...)
		mid := b.Unknown(types()...)
		tgt := b.Target(types()...)
		b.Edge(root, mid, pick(preds))
		b.Edge(mid, tgt, pick(preds))
		b.Edge(tgt, root, pick(preds))
	default: // flower: cycle plus an extra branch
		root := b.Specific(pick(names), types()...)
		mid := b.Unknown(types()...)
		tgt := b.Target(types()...)
		b.Edge(root, mid, pick(preds))
		b.Edge(mid, tgt, pick(preds))
		b.Edge(tgt, root, pick(preds))
		extra := b.Specific(pick(names)+"_x", types()...)
		b.Edge(extra, tgt, pick(preds))
	}
	return b.Graph()
}

// genBound draws a filter bound: mostly finite (including values whose
// shortest form needs an exponent), sometimes infinite.
func genBound(r *rand.Rand, side int) float64 {
	switch r.Intn(5) {
	case 0:
		return math.Inf(side)
	case 1:
		return float64(r.Intn(2000)-1000) * math.Pow(10, float64(r.Intn(13)-6))
	default:
		return math.Round(r.Float64()*1e4) / 100
	}
}

// TestStringParseRoundTrip is the satellite property test: every
// constructible query — all five shapes, all aggregate functions, filters
// with any mix of open/closed bounds, GROUP-BY — must survive
// Parse(String()) structurally intact.
func TestStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	attrs := []string{"price", "mpg", "weight", "year"}
	for i := 0; i < 2000; i++ {
		g := genGraph(r)
		fn := AggFunc(r.Intn(5))
		attr := attrs[r.Intn(len(attrs))]
		if fn == Count && r.Intn(2) == 0 {
			attr = "" // COUNT(*)
		}
		a := &Aggregate{Q: g, Func: fn, Attr: attr}
		for f := r.Intn(3); f > 0; f-- {
			lo, hi := genBound(r, -1), genBound(r, 1)
			if lo > hi {
				lo, hi = hi, lo
			}
			a.Filters = append(a.Filters, Filter{Attr: attrs[r.Intn(len(attrs))], Low: lo, High: hi})
		}
		if fn.HasGuarantee() && r.Intn(3) == 0 {
			a.GroupBy = attrs[r.Intn(len(attrs))]
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("generator emitted invalid query %v: %v", a, err)
		}

		printed := a.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("iteration %d: Parse(%q) failed: %v", i, printed, err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("iteration %d: round-trip mismatch\nprinted: %s\nwant: %#v\ngot:  %#v",
				i, printed, a, back)
		}
	}
}

// TestStringParseRoundTripFixed pins the tricky hand-picked cases: open
// bounds on either side, fully unbounded filters, exponent-formatted
// bounds, COUNT(*), multi-type nodes, and dotted entity names.
func TestStringParseRoundTripFixed(t *testing.T) {
	cases := []*Aggregate{
		Simple(Count, "", "Germany", "Country", "product", "Automobile"),
		Simple(Avg, "price", "Node.Seven", "Country", "product", "Automobile").
			WithFilterAtLeast("mpg", 25).
			WithFilterAtMost("price", 1e6).
			WithGroupBy("brand"),
		Simple(Sum, "price", "Germany", "Country", "product", "Automobile").
			WithFilter("mpg", math.Inf(-1), math.Inf(1)),
		Simple(Max, "price", "Germany", "Country", "product", "Automobile").
			WithFilter("price", 2.5e-7, 4e12),
		Chain(Min, "year", "BMW", "Brand", []Hop{
			{Predicate: "designer", Types: []string{"Person", "Engineer"}},
			{Predicate: "product", Types: []string{"Automobile"}},
		}),
	}
	for _, a := range cases {
		if err := a.Validate(); err != nil {
			t.Fatalf("fixture invalid: %v", err)
		}
		back, err := Parse(a.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", a.String(), err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("round-trip mismatch for %q:\nwant %#v\ngot  %#v", a.String(), a, back)
		}
	}
}
