package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions. COUNT, SUM and AVG carry the paper's accuracy
// guarantee; MAX and MIN are supported without one (§VII, Table X/XI).
const (
	Count AggFunc = iota
	Sum
	Avg
	Max
	Min
)

// String returns the SQL-style name of the function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// HasGuarantee reports whether the sampling–estimation pipeline provides a
// confidence-interval accuracy guarantee for this function.
func (f AggFunc) HasGuarantee() bool { return f == Count || f == Sum || f == Avg }

// ParseAggFunc converts a name like "AVG" into an AggFunc.
func ParseAggFunc(s string) (AggFunc, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "COUNT":
		return Count, nil
	case "SUM":
		return Sum, nil
	case "AVG", "MEAN":
		return Avg, nil
	case "MAX":
		return Max, nil
	case "MIN":
		return Min, nil
	default:
		return 0, fmt.Errorf("query: unknown aggregate function %q", s)
	}
}

// Shape classifies the topology of a query graph (Figure 4 of the paper).
type Shape int

// Query graph shapes.
const (
	ShapeSimple Shape = iota // one specific node, one edge to the target
	ShapeChain               // a path: specific → unknowns → target
	ShapeStar                // several branches meeting at the target
	ShapeCycle               // the underlying undirected graph has a cycle
	ShapeFlower              // cycle(s) plus extra branches
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeSimple:
		return "simple"
	case ShapeChain:
		return "chain"
	case ShapeStar:
		return "star"
	case ShapeCycle:
		return "cycle"
	case ShapeFlower:
		return "flower"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Node is one query-graph node. A node with a Name is a specific node (its
// entity is known); a node without one is an unknown typed node. Exactly one
// node of the query is designated the target.
type Node struct {
	Types []string
	Name  string // empty for unknown nodes
}

// IsSpecific reports whether the node names a concrete entity.
func (n Node) IsSpecific() bool { return n.Name != "" }

// Edge is a predicate-labelled query edge between node indices.
type Edge struct {
	From, To  int
	Predicate string
}

// Filter restricts answers to those whose attribute value lies in
// [Low, High] (Definition 6). Use -Inf / +Inf for open ends.
type Filter struct {
	Attr string
	Low  float64
	High float64
}

// Matches reports whether value v passes the filter.
func (f Filter) Matches(v float64) bool { return v >= f.Low && v <= f.High }

// String renders the filter as "L <= attr <= U".
func (f Filter) String() string {
	switch {
	case math.IsInf(f.Low, -1) && math.IsInf(f.High, 1):
		return f.Attr + " unbounded"
	case math.IsInf(f.Low, -1):
		return fmt.Sprintf("%s <= %g", f.Attr, f.High)
	case math.IsInf(f.High, 1):
		return fmt.Sprintf("%g <= %s", f.Low, f.Attr)
	default:
		return fmt.Sprintf("%g <= %s <= %g", f.Low, f.Attr, f.High)
	}
}

// Graph is a query graph: nodes, edges, and the index of the target node.
type Graph struct {
	Nodes  []Node
	Edges  []Edge
	Target int
}

// Aggregate is a full aggregate query AQ_G = (Q, f_a) with the §V
// extensions: filters on answer attributes and GROUP-BY over an answer
// attribute.
type Aggregate struct {
	Q       *Graph
	Func    AggFunc
	Attr    string // aggregated attribute; empty only for COUNT(*)
	Filters []Filter
	GroupBy string // attribute of the target node; empty = no grouping
}

// Validate checks structural well-formedness of the query graph.
func (g *Graph) Validate() error {
	if len(g.Nodes) < 2 {
		return fmt.Errorf("query: need at least a specific and a target node, have %d", len(g.Nodes))
	}
	if g.Target < 0 || g.Target >= len(g.Nodes) {
		return fmt.Errorf("query: target index %d out of range", g.Target)
	}
	if g.Nodes[g.Target].IsSpecific() {
		return fmt.Errorf("query: target node must be unknown, but has name %q", g.Nodes[g.Target].Name)
	}
	if len(g.Nodes[g.Target].Types) == 0 {
		return fmt.Errorf("query: target node needs at least one type")
	}
	specifics := 0
	for i, n := range g.Nodes {
		if len(n.Types) == 0 {
			return fmt.Errorf("query: node %d needs at least one type", i)
		}
		if n.IsSpecific() {
			specifics++
		}
	}
	if specifics == 0 {
		return fmt.Errorf("query: need at least one specific (named) node")
	}
	if len(g.Edges) == 0 {
		return fmt.Errorf("query: need at least one edge")
	}
	type edgeKey struct {
		a, b int
		pred string
	}
	seen := map[edgeKey]bool{}
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("query: edge %d endpoints out of range", i)
		}
		if e.From == e.To {
			return fmt.Errorf("query: edge %d is a self-loop", i)
		}
		if e.Predicate == "" {
			return fmt.Errorf("query: edge %d has no predicate", i)
		}
		// Parallel edges with distinct predicates are legitimate (two
		// constraints between the same pair); duplicates are not.
		k := edgeKey{a: e.From, b: e.To, pred: e.Predicate}
		if e.From > e.To {
			k.a, k.b = e.To, e.From
		}
		if seen[k] {
			return fmt.Errorf("query: duplicate edge between nodes %d and %d with predicate %q", e.From, e.To, e.Predicate)
		}
		seen[k] = true
	}
	if !g.connected() {
		return fmt.Errorf("query: query graph is not connected")
	}
	return nil
}

func (g *Graph) connected() bool {
	if len(g.Nodes) == 0 {
		return true
	}
	adj := g.undirectedAdj()
	seen := make([]bool, len(g.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(g.Nodes)
}

func (g *Graph) undirectedAdj() [][]int {
	adj := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	return adj
}

// ShapeOf classifies the query graph per Figure 4. Classification assumes a
// valid graph. A path topology counts as a chain only when it runs from a
// single specific node to the target; a path with specific nodes on both
// ends (branches meeting at the target) is a two-armed star.
func (g *Graph) ShapeOf() Shape {
	n, m := len(g.Nodes), len(g.Edges)
	hasCycle := m >= n // connected graph with |E| >= |V| has a cycle
	degree := make([]int, n)
	for _, e := range g.Edges {
		degree[e.From]++
		degree[e.To]++
	}
	maxDeg := 0
	for _, d := range degree {
		if d > maxDeg {
			maxDeg = d
		}
	}
	specifics := 0
	for _, nd := range g.Nodes {
		if nd.IsSpecific() {
			specifics++
		}
	}
	switch {
	case hasCycle && maxDeg > 2:
		return ShapeFlower
	case hasCycle:
		return ShapeCycle
	case n == 2:
		return ShapeSimple
	case maxDeg <= 2 && specifics == 1 && degree[g.Target] == 1:
		return ShapeChain
	default:
		return ShapeStar
	}
}

// Hop is one step of a root-to-target path: follow Predicate to a node
// carrying one of Types (the final hop's types are the target's).
type Hop struct {
	Predicate string
	Types     []string
}

// Path is a decomposed sub-query: a specific root entity, then a sequence of
// predicate hops ending at the shared target. Len 1 = simple query, longer =
// chain (§V-B).
type Path struct {
	RootName  string
	RootTypes []string
	Hops      []Hop
}

// Decompose splits the query into root-to-target paths covering every query
// edge — the decomposition–assembly framework of §V-B. Simple queries yield
// one one-hop path, chains one multi-hop path, stars one path per branch,
// and cycles/flowers one path per arc.
//
// Query graphs are tiny (real workloads rarely exceed four edges, per the
// paper's SPARQL-log citation), so Decompose simply enumerates all simple
// root→target paths and greedily picks a minimal edge-covering subset,
// guaranteeing at least one path per specific node.
func (g *Graph) Decompose() ([]Path, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}

	// Edge-labelled adjacency: (edge index, far endpoint). Tracking edge
	// indices keeps parallel edges with distinct predicates separate.
	type arc struct {
		edge int
		to   int
	}
	adj := make([][]arc, len(g.Nodes))
	for ei, e := range g.Edges {
		adj[e.From] = append(adj[e.From], arc{edge: ei, to: e.To})
		adj[e.To] = append(adj[e.To], arc{edge: ei, to: e.From})
	}
	for i := range adj {
		sort.Slice(adj[i], func(a, b int) bool { // deterministic enumeration
			if adj[i][a].to != adj[i][b].to {
				return adj[i][a].to < adj[i][b].to
			}
			return adj[i][a].edge < adj[i][b].edge
		})
	}

	type cand struct {
		root  int
		nodes []int // root ... target
		edges []int // parallel to nodes[1:]
	}
	var cands []cand
	for i, n := range g.Nodes {
		if !n.IsSpecific() {
			continue
		}
		// DFS enumeration of simple paths from specific node i to target.
		onTrail := make([]bool, len(g.Nodes))
		var nodesTrail, edgesTrail []int
		var walk func(u int)
		walk = func(u int) {
			if u == g.Target {
				cands = append(cands, cand{
					root:  i,
					nodes: append([]int(nil), nodesTrail...),
					edges: append([]int(nil), edgesTrail...),
				})
				return
			}
			for _, a := range adj[u] {
				if onTrail[a.to] {
					continue
				}
				onTrail[a.to] = true
				nodesTrail = append(nodesTrail, a.to)
				edgesTrail = append(edgesTrail, a.edge)
				walk(a.to)
				nodesTrail = nodesTrail[:len(nodesTrail)-1]
				edgesTrail = edgesTrail[:len(edgesTrail)-1]
				onTrail[a.to] = false
			}
		}
		onTrail[i] = true
		nodesTrail = []int{i}
		walk(i)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("query: no specific node can reach the target")
	}
	// Shorter paths first so the greedy cover prefers direct constraints;
	// ties break on root index then lexicographic edge sequence for
	// determinism.
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if len(ca.edges) != len(cb.edges) {
			return len(ca.edges) < len(cb.edges)
		}
		if ca.root != cb.root {
			return ca.root < cb.root
		}
		for k := range ca.edges {
			if ca.edges[k] != cb.edges[k] {
				return ca.edges[k] < cb.edges[k]
			}
		}
		return false
	})

	covered := make([]bool, len(g.Edges))
	coveredCount := 0
	rootHasPath := map[int]bool{}
	var chosen []cand
	take := func(c cand) {
		chosen = append(chosen, c)
		rootHasPath[c.root] = true
		for _, ei := range c.edges {
			if !covered[ei] {
				covered[ei] = true
				coveredCount++
			}
		}
	}

	// Greedy cover: repeatedly take the candidate covering the most
	// uncovered edges until every edge is covered.
	for coveredCount < len(g.Edges) {
		best, bestGain := -1, 0
		for ci, c := range cands {
			gain := 0
			for _, ei := range c.edges {
				if !covered[ei] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = ci, gain
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("query: edges exist that lie on no root-to-target path")
		}
		take(cands[best])
	}
	// Every specific node must contribute a constraint (§V-B intersects one
	// sample per root); add its shortest path when the cover skipped it.
	for ci, c := range cands {
		if !rootHasPath[c.root] {
			take(cands[ci]) // cands are sorted shortest-first per root
		}
	}

	// Deterministic output order: by root index, then path length.
	sort.SliceStable(chosen, func(a, b int) bool {
		if chosen[a].root != chosen[b].root {
			return chosen[a].root < chosen[b].root
		}
		return len(chosen[a].edges) < len(chosen[b].edges)
	})

	paths := make([]Path, 0, len(chosen))
	for _, c := range chosen {
		p := Path{RootName: g.Nodes[c.root].Name, RootTypes: g.Nodes[c.root].Types}
		for k, ei := range c.edges {
			p.Hops = append(p.Hops, Hop{
				Predicate: g.Edges[ei].Predicate,
				Types:     g.Nodes[c.nodes[k+1]].Types,
			})
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Validate checks the full aggregate query.
func (a *Aggregate) Validate() error {
	if a.Q == nil {
		return fmt.Errorf("query: aggregate has no query graph")
	}
	if err := a.Q.Validate(); err != nil {
		return err
	}
	if a.Func != Count && a.Attr == "" {
		return fmt.Errorf("query: %s requires an attribute", a.Func)
	}
	for _, f := range a.Filters {
		if f.Attr == "" {
			return fmt.Errorf("query: filter without attribute")
		}
		if f.Low > f.High {
			return fmt.Errorf("query: filter %s has empty range", f)
		}
	}
	return nil
}

// String renders the aggregate query in the textual query language — the
// exact grammar Parse accepts, so Parse(a.String()) reconstructs a for every
// constructible query (names and attributes within the language's
// identifier/value charset). Nodes print first, in index order, as
// single-node patterns with ids n0, n1, …; then every edge as its own
// two-node pattern; so the re-parsed graph preserves node indices, edge
// order and edge direction, and reflect.DeepEqual round-trips.
func (a *Aggregate) String() string {
	var sb strings.Builder
	if a.Attr != "" {
		fmt.Fprintf(&sb, "%s(%s)", a.Func, a.Attr)
	} else {
		fmt.Fprintf(&sb, "%s(*)", a.Func)
	}
	if a.Q != nil {
		sb.WriteString(" MATCH ")
		for i, n := range a.Q.Nodes {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(n%d", i)
			if len(n.Types) > 0 {
				sb.WriteString(":" + strings.Join(n.Types, "|"))
			}
			if n.Name != "" {
				sb.WriteString(" name=" + n.Name)
			}
			sb.WriteString(")")
		}
		for _, e := range a.Q.Edges {
			fmt.Fprintf(&sb, ", (n%d)-[%s]->(n%d)", e.From, e.Predicate, e.To)
		}
		if a.Q.Target >= 0 && a.Q.Target < len(a.Q.Nodes) {
			fmt.Fprintf(&sb, " TARGET n%d", a.Q.Target)
		}
	}
	for _, f := range a.Filters {
		fmt.Fprintf(&sb, " FILTER %s <= %s <= %s", fmtBound(f.Low), f.Attr, fmtBound(f.High))
	}
	if a.GroupBy != "" {
		fmt.Fprintf(&sb, " GROUPBY %s", a.GroupBy)
	}
	return sb.String()
}

// fmtBound renders one filter bound in the syntax tryNumber reads back:
// shortest exact decimal/exponent form, with infinities as ±inf.
func fmtBound(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
