package query

import (
	"reflect"
	"testing"
)

// FuzzParse drives the query-language parser with arbitrary input. Two
// oracles apply: the parser must never panic (any accepted or rejected
// input), and every successfully parsed query must survive the
// String → Parse round-trip structurally intact — the same property
// TestStringParseRoundTrip checks from the constructive side.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c",
		"COUNT(*) MATCH (a:T name=x)-[p]->(b:U)",
		"SUM(v) MATCH (a:T name=x)-[p]->(b:U), (c:W name=y)-[q]->(b) TARGET b FILTER price >= 3",
		"MAX(price) MATCH (a:T|U name=x)<-[p]-(b:V) TARGET b FILTER 1 <= price <= 2 GROUPBY brand",
		"MIN(mpg) MATCH (a:T name=x)-[p]->(b:U)-[q]->(c:V)-[r]->(a) TARGET b",
		"AVG(p) MATCH (a:T name=n0)-[e]->(t:U) TARGET t FILTER -inf <= p <= inf",
		"count(*) match (a:T name=x)-[p]->(b:U) filter price <= 1e+06",
		"SUM(x) MATCH (a:T name=Node.Seven)-[p]->(b:U) TARGET b",
		"AVG(price)MATCH(g:Country name=G)-[product]->(c:Automobile)TARGET c",
		"COUNT(*) MATCH (a:T name=x)-[p]->(b:U) FILTER 2.5e-7 <= price <= 4e12",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		agg, err := Parse(input)
		if err != nil {
			return // rejected input only needs to not panic
		}
		printed := agg.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (printed from accepted input %q) failed: %v",
				printed, input, err)
		}
		if !reflect.DeepEqual(agg, back) {
			t.Fatalf("round-trip mismatch for input %q:\nprinted %q\nfirst  %#v\nsecond %#v",
				input, printed, agg, back)
		}
	})
}
