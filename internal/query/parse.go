package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse reads the compact textual query language used by cmd/aggquery and
// the test fixtures. The running example of the paper is written as:
//
//	AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c
//
// Grammar (one line, case-insensitive keywords):
//
//	query    = agg "MATCH" pattern {"," pattern} ["TARGET" id]
//	           {"FILTER" filter} ["GROUPBY" attr]
//	agg      = FUNC "(" (attr | "*") ")"
//	pattern  = node { edge node }
//	node     = "(" id [":" type {"|" type}] ["name=" value] ")"
//	edge     = "-[" pred "]->" | "<-[" pred "]-"
//	filter   = num "<=" attr "<=" num | attr ">=" num | attr "<=" num
//	num      = float with optional exponent, or [+-]"inf"
//
// Node ids are local to the query; reusing an id refers to the same node,
// which is how cycles and stars are expressed. When TARGET is omitted and
// exactly one unnamed node exists, that node is the target. Numbers accept
// exponent notation ("1e+06") and the infinities ("-inf", "inf") so that
// Aggregate.String output — which prints filter bounds exactly — parses
// back; the one casualty is a filter attribute literally named "inf",
// which now reads as a bound.
func Parse(input string) (*Aggregate, error) {
	p := &parser{in: input}
	agg, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("query: parse: %w", err)
	}
	if err := agg.Validate(); err != nil {
		return nil, err
	}
	return agg, nil
}

type parser struct {
	in  string
	pos int
}

func (p *parser) parse() (*Aggregate, error) {
	fname, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("aggregate function: %w", err)
	}
	f, err := ParseAggFunc(fname)
	if err != nil {
		return nil, err
	}
	if !p.eat("(") {
		return nil, p.errf("expected '(' after %s", fname)
	}
	attr := ""
	if p.eat("*") {
		// COUNT(*)
	} else {
		attr, err = p.ident()
		if err != nil {
			return nil, fmt.Errorf("aggregate attribute: %w", err)
		}
	}
	if !p.eat(")") {
		return nil, p.errf("expected ')' after aggregate attribute")
	}
	if !p.eatKeyword("MATCH") {
		return nil, p.errf("expected MATCH")
	}

	g := &Graph{Target: -1}
	ids := map[string]int{}
	nodeID := func(id string, n Node) (int, error) {
		if i, ok := ids[id]; ok {
			// Merging a re-referenced node: later mentions may add nothing
			// new; conflicting names are an error.
			if n.Name != "" && g.Nodes[i].Name != "" && n.Name != g.Nodes[i].Name {
				return 0, fmt.Errorf("node %q renamed from %q to %q", id, g.Nodes[i].Name, n.Name)
			}
			if n.Name != "" {
				g.Nodes[i].Name = n.Name
			}
			g.Nodes[i].Types = mergeTypes(g.Nodes[i].Types, n.Types)
			return i, nil
		}
		g.Nodes = append(g.Nodes, n)
		ids[id] = len(g.Nodes) - 1
		return len(g.Nodes) - 1, nil
	}

	for {
		id, n, err := p.node()
		if err != nil {
			return nil, err
		}
		cur, err := nodeID(id, n)
		if err != nil {
			return nil, err
		}
		for {
			pred, forward, ok, err := p.edge()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			id2, n2, err := p.node()
			if err != nil {
				return nil, err
			}
			next, err := nodeID(id2, n2)
			if err != nil {
				return nil, err
			}
			e := Edge{From: cur, To: next, Predicate: pred}
			if !forward {
				e.From, e.To = e.To, e.From
			}
			g.Edges = append(g.Edges, e)
			cur = next
		}
		if !p.eat(",") {
			break
		}
	}

	agg := &Aggregate{Q: g, Func: f, Attr: attr}
	for {
		switch {
		case p.eatKeyword("TARGET"):
			id, err := p.ident()
			if err != nil {
				return nil, fmt.Errorf("TARGET: %w", err)
			}
			i, ok := ids[id]
			if !ok {
				return nil, p.errf("TARGET references unknown node %q", id)
			}
			g.Target = i
		case p.eatKeyword("FILTER"):
			fl, err := p.filter()
			if err != nil {
				return nil, err
			}
			agg.Filters = append(agg.Filters, fl)
		case p.eatKeyword("GROUPBY"):
			a, err := p.ident()
			if err != nil {
				return nil, fmt.Errorf("GROUPBY: %w", err)
			}
			agg.GroupBy = a
		default:
			p.skipSpace()
			if p.pos != len(p.in) {
				return nil, p.errf("unexpected trailing input %q", p.in[p.pos:])
			}
			if g.Target == -1 {
				unnamed := -1
				count := 0
				for i, n := range g.Nodes {
					if !n.IsSpecific() {
						unnamed = i
						count++
					}
				}
				if count != 1 {
					return nil, p.errf("TARGET required: query has %d unnamed nodes", count)
				}
				g.Target = unnamed
			}
			return agg, nil
		}
	}
}

func mergeTypes(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range append(append([]string(nil), a...), b...) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// node parses "(" id [":" types] ["name=" value] ")".
func (p *parser) node() (id string, n Node, err error) {
	if !p.eat("(") {
		return "", n, p.errf("expected '(' starting a node")
	}
	id, err = p.ident()
	if err != nil {
		return "", n, fmt.Errorf("node id: %w", err)
	}
	if p.eat(":") {
		for {
			t, err := p.ident()
			if err != nil {
				return "", n, fmt.Errorf("node type: %w", err)
			}
			n.Types = append(n.Types, t)
			if !p.eat("|") {
				break
			}
		}
	}
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], "name=") {
		p.pos += len("name=")
		v, err := p.value()
		if err != nil {
			return "", n, fmt.Errorf("node name: %w", err)
		}
		n.Name = v
	}
	if !p.eat(")") {
		return "", n, p.errf("expected ')' closing node %q", id)
	}
	return id, n, nil
}

// edge parses "-[pred]->" or "<-[pred]-"; ok=false when the next token is
// not an edge.
func (p *parser) edge() (pred string, forward, ok bool, err error) {
	p.skipSpace()
	rest := p.in[p.pos:]
	switch {
	case strings.HasPrefix(rest, "-["):
		p.pos += 2
		pred, err = p.ident()
		if err != nil {
			return "", false, false, fmt.Errorf("edge predicate: %w", err)
		}
		if !p.eat("]->") {
			return "", false, false, p.errf("expected ']->' after predicate %q", pred)
		}
		return pred, true, true, nil
	case strings.HasPrefix(rest, "<-["):
		p.pos += 3
		pred, err = p.ident()
		if err != nil {
			return "", false, false, fmt.Errorf("edge predicate: %w", err)
		}
		if !p.eat("]-") {
			return "", false, false, p.errf("expected ']-' after predicate %q", pred)
		}
		return pred, false, true, nil
	default:
		return "", false, false, nil
	}
}

// filter parses "num<=attr<=num", "attr>=num" or "attr<=num".
func (p *parser) filter() (Filter, error) {
	p.skipSpace()
	// Try the two-sided form first: number <= ident <= number.
	if num, ok := p.tryNumber(); ok {
		if !p.eat("<=") {
			return Filter{}, p.errf("expected '<=' in range filter")
		}
		attr, err := p.ident()
		if err != nil {
			return Filter{}, fmt.Errorf("filter attribute: %w", err)
		}
		if !p.eat("<=") {
			return Filter{}, p.errf("expected second '<=' in range filter")
		}
		hi, ok := p.tryNumber()
		if !ok {
			return Filter{}, p.errf("expected upper bound in range filter")
		}
		return Filter{Attr: attr, Low: num, High: hi}, nil
	}
	attr, err := p.ident()
	if err != nil {
		return Filter{}, fmt.Errorf("filter attribute: %w", err)
	}
	switch {
	case p.eat(">="):
		num, ok := p.tryNumber()
		if !ok {
			return Filter{}, p.errf("expected number after '>='")
		}
		return Filter{Attr: attr, Low: num, High: math.Inf(1)}, nil
	case p.eat("<="):
		num, ok := p.tryNumber()
		if !ok {
			return Filter{}, p.errf("expected number after '<='")
		}
		return Filter{Attr: attr, Low: math.Inf(-1), High: num}, nil
	default:
		return Filter{}, p.errf("expected '>=' or '<=' after filter attribute %q", attr)
	}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

// eat consumes the literal token if present.
func (p *parser) eat(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// eatKeyword consumes a case-insensitive keyword followed by a non-ident
// character.
func (p *parser) eatKeyword(kw string) bool {
	p.skipSpace()
	rest := p.in[p.pos:]
	if len(rest) < len(kw) || !strings.EqualFold(rest[:len(kw)], kw) {
		return false
	}
	if len(rest) > len(kw) && isIdentChar(rest[len(kw)]) {
		return false
	}
	p.pos += len(kw)
	return true
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '-' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// ident parses an identifier (letters, digits, '_', '-').
func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && isIdentChar(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.in[start:p.pos], nil
}

// value parses an identifier-like value (node names may contain dots).
func (p *parser) value() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && (isIdentChar(p.in[p.pos]) || p.in[p.pos] == '.') {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected value")
	}
	return p.in[start:p.pos], nil
}

// tryNumber parses a float if the next token is one: optional sign, then
// either "inf" (ident-delimited) or digits with an optional fraction and
// exponent — everything strconv.FormatFloat(v, 'g', -1, 64) can print, so
// filter bounds round-trip through Aggregate.String.
func (p *parser) tryNumber() (float64, bool) {
	p.skipSpace()
	start := p.pos
	i := p.pos
	neg := false
	if i < len(p.in) && (p.in[i] == '-' || p.in[i] == '+') {
		neg = p.in[i] == '-'
		i++
	}
	if rest := p.in[i:]; len(rest) >= 3 && strings.EqualFold(rest[:3], "inf") &&
		(len(rest) == 3 || !isIdentChar(rest[3])) {
		p.pos = i + 3
		if neg {
			return math.Inf(-1), true
		}
		return math.Inf(1), true
	}
	digits := false
	for i < len(p.in) && (p.in[i] >= '0' && p.in[i] <= '9' || p.in[i] == '.') {
		if p.in[i] != '.' {
			digits = true
		}
		i++
	}
	if !digits {
		return 0, false
	}
	if i < len(p.in) && (p.in[i] == 'e' || p.in[i] == 'E') {
		j := i + 1
		if j < len(p.in) && (p.in[j] == '-' || p.in[j] == '+') {
			j++
		}
		k := j
		for k < len(p.in) && p.in[k] >= '0' && p.in[k] <= '9' {
			k++
		}
		if k > j {
			i = k
		}
	}
	v, err := strconv.ParseFloat(p.in[start:i], 64)
	if err != nil {
		return 0, false
	}
	p.pos = i
	return v, true
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}
