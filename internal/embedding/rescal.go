package embedding

import "math/rand"

// rescal (Nickel et al., ICML 2011) is a tensor factorisation model: each
// relation r has a full d×d interaction matrix M_r and the plausibility of
// (h,r,t) is the bilinear form hᵀ M_r t. We train it with the same margin
// ranking loss as the translation models by treating energy = -hᵀ M_r t.
//
// The flattened interaction matrix is the predicate semantics exposed to the
// sampler — as in the paper, this representation preserves relation
// composition and inversion poorly, which is precisely why RESCAL trails the
// translation family in Table XIII.
type rescal struct {
	ent [][]float64
	mat [][]float64 // d*d row-major per relation
	dim int
}

func newRESCAL(numEnt, numRel, dim int, r *rand.Rand) *rescal {
	m := &rescal{dim: dim}
	m.ent = make([][]float64, numEnt)
	for i := range m.ent {
		m.ent[i] = randUniform(r, dim)
		Normalize(m.ent[i])
	}
	m.mat = make([][]float64, numRel)
	for i := range m.mat {
		m.mat[i] = randUniform(r, dim*dim)
		Scale(m.mat[i], 1/Norm(m.mat[i]))
	}
	return m
}

func (m *rescal) name() string { return "RESCAL" }

func (m *rescal) paramCount() int { return len(m.ent)*m.dim + len(m.mat)*m.dim*m.dim }

// bilinear returns hᵀ M t.
func (m *rescal) bilinear(h, r, t int) float64 {
	hv, tv, M := m.ent[h], m.ent[t], m.mat[r]
	s := 0.0
	for i := 0; i < m.dim; i++ {
		row := M[i*m.dim : (i+1)*m.dim]
		mi := 0.0
		for j := 0; j < m.dim; j++ {
			mi += row[j] * tv[j]
		}
		s += hv[i] * mi
	}
	return s
}

func (m *rescal) energy(h, r, t int) float64 { return -m.bilinear(h, r, t) }

// step applies analytic gradients of the bilinear score s = hᵀ M t:
// ∂s/∂h = M t, ∂s/∂t = Mᵀ h, ∂s/∂M = h tᵀ. The positive triple ascends the
// score (descends the energy); the negative descends it.
func (m *rescal) step(pos, neg Triple, lr float64) {
	m.applyGrad(int(pos.H), int(pos.R), int(pos.T), +lr)
	m.applyGrad(int(neg.H), int(neg.R), int(neg.T), -lr)
}

func (m *rescal) applyGrad(h, r, t int, scale float64) {
	hv, tv, M := m.ent[h], m.ent[t], m.mat[r]
	d := m.dim
	mt := make([]float64, d)  // M t
	mth := make([]float64, d) // Mᵀ h
	for i := 0; i < d; i++ {
		row := M[i*d : (i+1)*d]
		s := 0.0
		for j := 0; j < d; j++ {
			s += row[j] * tv[j]
			mth[j] += row[j] * hv[i]
		}
		mt[i] = s
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			M[i*d+j] += scale * hv[i] * tv[j]
		}
	}
	for i := 0; i < d; i++ {
		hv[i] += scale * mt[i]
		tv[i] += scale * mth[i]
	}
}

func (m *rescal) finishEpoch() {
	for _, v := range m.ent {
		Normalize(v)
	}
	// Bound interaction matrices (Frobenius norm ≤ sqrt(dim)) to keep the
	// bilinear scores from blowing up under the unbounded margin objective.
	for _, M := range m.mat {
		n := Norm(M)
		limit := sqrt(float64(m.dim))
		if n > limit {
			Scale(M, limit/n)
		}
	}
}

func (m *rescal) relVector(r int) []float64 { return m.mat[r] }
func (m *rescal) entVector(e int) []float64 { return m.ent[e] }
