package embedding

import "math/rand"

// se implements Structured Embeddings (Bordes et al., AAAI 2011): each
// relation carries two projection matrices and
// energy(h,r,t) = ||M1 h - M2 t||² (we use the squared L2 form for smooth
// gradients; the original used L1).
//
// The concatenation [M1|M2] flattened is the predicate semantics exposed to
// the sampler.
type se struct {
	ent [][]float64
	m1  [][]float64 // d*d row-major per relation
	m2  [][]float64
	rel [][]float64 // cached concatenated [M1|M2] per relation
	dim int
}

func newSE(numEnt, numRel, dim int, r *rand.Rand) *se {
	m := &se{dim: dim}
	m.ent = make([][]float64, numEnt)
	for i := range m.ent {
		m.ent[i] = randUniform(r, dim)
		Normalize(m.ent[i])
	}
	m.m1 = make([][]float64, numRel)
	m.m2 = make([][]float64, numRel)
	m.rel = make([][]float64, numRel)
	for i := range m.m1 {
		m.m1[i] = identityPlusNoise(r, dim, 0.1)
		m.m2[i] = identityPlusNoise(r, dim, 0.1)
		m.rel[i] = make([]float64, 2*dim*dim)
	}
	return m
}

// identityPlusNoise initialises a d×d matrix near the identity so the
// initial projections are well-conditioned.
func identityPlusNoise(r *rand.Rand, d int, eps float64) []float64 {
	M := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			v := (r.Float64()*2 - 1) * eps
			if i == j {
				v += 1
			}
			M[i*d+j] = v
		}
	}
	return M
}

func (m *se) name() string { return "SE" }

func (m *se) paramCount() int { return len(m.ent)*m.dim + 2*len(m.m1)*m.dim*m.dim }

// residual computes e = M1 h - M2 t.
func (m *se) residual(h, r, t int, out []float64) {
	hv, tv := m.ent[h], m.ent[t]
	M1, M2 := m.m1[r], m.m2[r]
	d := m.dim
	for i := 0; i < d; i++ {
		s := 0.0
		r1 := M1[i*d : (i+1)*d]
		r2 := M2[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			s += r1[j]*hv[j] - r2[j]*tv[j]
		}
		out[i] = s
	}
}

func (m *se) energy(h, r, t int) float64 {
	e := make([]float64, m.dim)
	m.residual(h, r, t, e)
	return Dot(e, e)
}

// step applies analytic gradients of E = ||M1 h - M2 t||²:
//
//	∂E/∂h = 2 M1ᵀ e    ∂E/∂M1 = 2 e hᵀ
//	∂E/∂t = -2 M2ᵀ e   ∂E/∂M2 = -2 e tᵀ
func (m *se) step(pos, neg Triple, lr float64) {
	m.applyGrad(int(pos.H), int(pos.R), int(pos.T), -lr)
	m.applyGrad(int(neg.H), int(neg.R), int(neg.T), +lr)
}

func (m *se) applyGrad(h, r, t int, scale float64) {
	e := make([]float64, m.dim)
	m.residual(h, r, t, e)
	hv, tv := m.ent[h], m.ent[t]
	M1, M2 := m.m1[r], m.m2[r]
	d := m.dim
	// All gradients are computed from the pre-update parameters; mixing
	// fresh and stale values inside one step makes the update direction
	// inconsistent and lets the matrices diverge.
	h0 := append([]float64(nil), hv...)
	t0 := append([]float64(nil), tv...)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			hv[j] += scale * 2 * M1[i*d+j] * e[i]
			tv[j] -= scale * 2 * M2[i*d+j] * e[i]
			M1[i*d+j] += scale * 2 * e[i] * h0[j]
			M2[i*d+j] -= scale * 2 * e[i] * t0[j]
		}
	}
	// Per-step clamps keep a large residual from blowing the matrices up
	// inside a single epoch (the epoch-level renormalisation is too late).
	limit := sqrt(float64(d))
	if n := Norm(M1); n > limit {
		Scale(M1, limit/n)
	}
	if n := Norm(M2); n > limit {
		Scale(M2, limit/n)
	}
	Normalize(hv)
	Normalize(tv)
}

func (m *se) finishEpoch() {
	for _, v := range m.ent {
		Normalize(v)
	}
	limit := sqrt(float64(m.dim))
	for _, M := range m.m1 {
		if n := Norm(M); n > limit {
			Scale(M, limit/n)
		}
	}
	for _, M := range m.m2 {
		if n := Norm(M); n > limit {
			Scale(M, limit/n)
		}
	}
}

func (m *se) relVector(r int) []float64 {
	out := m.rel[r]
	copy(out, m.m1[r])
	copy(out[len(m.m1[r]):], m.m2[r])
	return out
}

func (m *se) entVector(e int) []float64 { return m.ent[e] }
