// Package embedding provides the knowledge-graph embedding substrate of the
// paper (§III, Table XIII): d-dimensional predicate (and entity) vectors
// whose cosine similarity captures predicate semantics (Eq. 4).
//
// Two families are provided:
//
//   - An Oracle model constructed from known predicate semantic clusters.
//     The synthetic dataset generator knows which predicates mean the same
//     thing, so it can produce vectors with prescribed cosine similarity to
//     each cluster centre. This plays the role of the converged offline
//     embedding the paper assumes as input (its Algorithm 2 line 1).
//   - Five trainable models — TransE, TransH, TransD (translation family),
//     RESCAL (tensor factorisation) and SE (relation-specific projections) —
//     trained by SGD on a margin ranking loss with negative sampling,
//     reproducing the embedding comparison of Table XIII.
package embedding
