package embedding

import "math/rand"

// transH (Wang et al., AAAI 2014) projects entities onto a relation-specific
// hyperplane before translating: with unit normal w and translation d,
// energy(h,r,t) = ||h⊥ + d - t⊥||² where x⊥ = x - (w·x)w. The translation
// vector d is the predicate semantics exposed to the sampler.
type transH struct {
	ent [][]float64
	d   [][]float64 // translation per relation
	w   [][]float64 // unit hyperplane normal per relation
	dim int
}

func newTransH(numEnt, numRel, dim int, r *rand.Rand) *transH {
	m := &transH{dim: dim}
	m.ent = make([][]float64, numEnt)
	for i := range m.ent {
		m.ent[i] = randUniform(r, dim)
		Normalize(m.ent[i])
	}
	m.d = make([][]float64, numRel)
	m.w = make([][]float64, numRel)
	for i := range m.d {
		m.d[i] = randUniform(r, dim)
		Normalize(m.d[i])
		m.w[i] = randUnit(r, dim)
	}
	return m
}

func (m *transH) name() string { return "TransH" }

func (m *transH) paramCount() int { return len(m.ent)*m.dim + 2*len(m.d)*m.dim }

// residual computes e = h⊥ + d - t⊥ for relation r.
func (m *transH) residual(h, r, t int, out []float64) {
	hv, tv, dv, wv := m.ent[h], m.ent[t], m.d[r], m.w[r]
	wh := Dot(wv, hv)
	wt := Dot(wv, tv)
	for i := 0; i < m.dim; i++ {
		hp := hv[i] - wh*wv[i]
		tp := tv[i] - wt*wv[i]
		out[i] = hp + dv[i] - tp
	}
}

func (m *transH) energy(h, r, t int) float64 {
	e := make([]float64, m.dim)
	m.residual(h, r, t, e)
	return Dot(e, e)
}

// step applies analytic gradients of E = ||e||², e = h⊥ + d - t⊥:
//
//	∂E/∂h = 2(I - wwᵀ)e        ∂E/∂t = -2(I - wwᵀ)e
//	∂E/∂d = 2e
//	∂E/∂w = 2[(t-h)(w·e) + ((t-h)·w) e]
func (m *transH) step(pos, neg Triple, lr float64) {
	m.applyGrad(int(pos.H), int(pos.R), int(pos.T), -lr)
	m.applyGrad(int(neg.H), int(neg.R), int(neg.T), +lr)
}

func (m *transH) applyGrad(h, r, t int, scale float64) {
	e := make([]float64, m.dim)
	m.residual(h, r, t, e)
	hv, tv, dv, wv := m.ent[h], m.ent[t], m.d[r], m.w[r]
	we := Dot(wv, e)
	// Snapshot (t-h) so the w gradient uses pre-update entity values.
	th := make([]float64, m.dim)
	thW := 0.0
	for i := 0; i < m.dim; i++ {
		th[i] = tv[i] - hv[i]
		thW += th[i] * wv[i]
	}
	for i := 0; i < m.dim; i++ {
		proj := 2 * (e[i] - we*wv[i]) // (I - wwᵀ)e, doubled
		hv[i] += scale * proj
		tv[i] -= scale * proj
		dv[i] += scale * 2 * e[i]
		wv[i] += scale * 2 * (th[i]*we + thW*e[i])
	}
	Normalize(wv)
}

func (m *transH) finishEpoch() {
	for _, v := range m.ent {
		Normalize(v)
	}
	for _, v := range m.w {
		Normalize(v)
	}
}

func (m *transH) relVector(r int) []float64 { return m.d[r] }
func (m *transH) entVector(e int) []float64 { return m.ent[e] }
