package embedding

import (
	"math"
	"math/rand"
)

// Dot returns the inner product of a and b (which must have equal length).
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Cosine returns the cosine similarity of a and b, and 0 when either vector
// is all-zero.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales a to unit norm in place. Zero vectors are left unchanged.
func Normalize(a []float64) {
	n := Norm(a)
	if n == 0 {
		return
	}
	for i := range a {
		a[i] /= n
	}
}

// Scale multiplies a by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// AddScaled performs dst += s*src in place.
func AddScaled(dst []float64, s float64, src []float64) {
	for i := range dst {
		dst[i] += s * src[i]
	}
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// randUnit draws a uniformly random unit vector of dimension d.
func randUnit(r *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for {
		for i := range v {
			v[i] = r.NormFloat64()
		}
		if Norm(v) > 1e-9 {
			break
		}
	}
	Normalize(v)
	return v
}

// randUniform draws a vector with entries uniform in [-6/sqrt(d), 6/sqrt(d)],
// the classic TransE initialisation.
func randUniform(r *rand.Rand, d int) []float64 {
	bound := 6 / math.Sqrt(float64(d))
	v := make([]float64, d)
	for i := range v {
		v[i] = (r.Float64()*2 - 1) * bound
	}
	return v
}

// orthogonalTo returns a random unit vector orthogonal to the unit vector c.
func orthogonalTo(r *rand.Rand, c []float64) []float64 {
	for {
		u := randUnit(r, len(c))
		AddScaled(u, -Dot(u, c), c) // remove the component along c
		if Norm(u) > 1e-6 {
			Normalize(u)
			return u
		}
	}
}
