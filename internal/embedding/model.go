package embedding

import (
	"fmt"

	"kgaq/internal/kg"
)

// Model supplies one d-dimensional semantic vector per predicate of a graph.
// It is the only interface the sampling and similarity layers depend on;
// both the oracle and every trained model implement it.
type Model interface {
	// PredicateVector returns the vector for predicate p. The returned
	// slice must not be modified.
	PredicateVector(p kg.PredID) []float64
	// Dim returns the embedding dimension.
	Dim() int
	// Name identifies the model (e.g. "TransE", "oracle").
	Name() string
}

// LinkScorer ranks the plausibility of unseen edges. It is consumed by the
// EAQ baseline, which collects candidate entities via link prediction.
// Higher scores mean more plausible links.
type LinkScorer interface {
	ScoreLink(head kg.NodeID, rel kg.PredID, tail kg.NodeID) float64
}

// PredVectors is a plain container of predicate vectors implementing Model.
type PredVectors struct {
	ModelName string
	Vecs      [][]float64
}

// PredicateVector implements Model.
func (p *PredVectors) PredicateVector(id kg.PredID) []float64 {
	return p.Vecs[id]
}

// Dim implements Model.
func (p *PredVectors) Dim() int {
	if len(p.Vecs) == 0 {
		return 0
	}
	return len(p.Vecs[0])
}

// Name implements Model.
func (p *PredVectors) Name() string { return p.ModelName }

// Validate checks that the container has one vector per predicate of g, all
// of equal dimension.
func (p *PredVectors) Validate(g *kg.Graph) error {
	if len(p.Vecs) != g.NumPredicates() {
		return fmt.Errorf("embedding: %d vectors for %d predicates", len(p.Vecs), g.NumPredicates())
	}
	d := p.Dim()
	for i, v := range p.Vecs {
		if len(v) != d {
			return fmt.Errorf("embedding: predicate %d has dim %d, want %d", i, len(v), d)
		}
	}
	return nil
}

// PredicateSimilarity returns the cosine similarity between the vectors of
// predicates a and b under model m (Eq. 4 of the paper).
func PredicateSimilarity(m Model, a, b kg.PredID) float64 {
	return Cosine(m.PredicateVector(a), m.PredicateVector(b))
}
