package embedding

import "math/rand"

// transD (Ji et al., ACL 2015) builds dynamic projection matrices from
// entity- and relation-specific projection vectors:
// M_r,e = r_p e_pᵀ + I, so the projected entity is e⊥ = e + (e_p·e) r_p.
// energy(h,r,t) = ||h⊥ + r - t⊥||². The translation r is the predicate
// semantics exposed to the sampler.
type transD struct {
	ent  [][]float64
	entP [][]float64 // entity projection vectors
	rel  [][]float64
	relP [][]float64 // relation projection vectors
	dim  int
}

func newTransD(numEnt, numRel, dim int, r *rand.Rand) *transD {
	m := &transD{dim: dim}
	m.ent = make([][]float64, numEnt)
	m.entP = make([][]float64, numEnt)
	for i := range m.ent {
		m.ent[i] = randUniform(r, dim)
		Normalize(m.ent[i])
		m.entP[i] = randUniform(r, dim)
		Scale(m.entP[i], 0.1)
	}
	m.rel = make([][]float64, numRel)
	m.relP = make([][]float64, numRel)
	for i := range m.rel {
		m.rel[i] = randUniform(r, dim)
		Normalize(m.rel[i])
		m.relP[i] = randUniform(r, dim)
		Scale(m.relP[i], 0.1)
	}
	return m
}

func (m *transD) name() string { return "TransD" }

func (m *transD) paramCount() int {
	return 2*len(m.ent)*m.dim + 2*len(m.rel)*m.dim
}

// residual computes e = h⊥ + r - t⊥ and returns the projection coefficients
// (h_p·h) and (t_p·t) needed by the gradients.
func (m *transD) residual(h, r, t int, out []float64) (ph, pt float64) {
	hv, tv, rv, rp := m.ent[h], m.ent[t], m.rel[r], m.relP[r]
	ph = Dot(m.entP[h], hv)
	pt = Dot(m.entP[t], tv)
	for i := 0; i < m.dim; i++ {
		hp := hv[i] + ph*rp[i]
		tp := tv[i] + pt*rp[i]
		out[i] = hp + rv[i] - tp
	}
	return ph, pt
}

func (m *transD) energy(h, r, t int) float64 {
	e := make([]float64, m.dim)
	m.residual(h, r, t, e)
	return Dot(e, e)
}

// step applies analytic gradients of E = ||e||²,
// e = h + (h_p·h) r_p + r - t - (t_p·t) r_p:
//
//	∂E/∂h   = 2(e + h_p (r_p·e))      ∂E/∂t   = -2(e + t_p (r_p·e))
//	∂E/∂h_p = 2(r_p·e) h              ∂E/∂t_p = -2(r_p·e) t
//	∂E/∂r   = 2e
//	∂E/∂r_p = 2[(h_p·h) - (t_p·t)] e
func (m *transD) step(pos, neg Triple, lr float64) {
	m.applyGrad(int(pos.H), int(pos.R), int(pos.T), -lr)
	m.applyGrad(int(neg.H), int(neg.R), int(neg.T), +lr)
}

func (m *transD) applyGrad(h, r, t int, scale float64) {
	e := make([]float64, m.dim)
	ph, pt := m.residual(h, r, t, e)
	hv, tv, rv := m.ent[h], m.ent[t], m.rel[r]
	hp, tp, rp := m.entP[h], m.entP[t], m.relP[r]
	rpe := Dot(rp, e)
	// Snapshot entity vectors so projection-vector gradients use pre-update
	// values.
	h0 := append([]float64(nil), hv...)
	t0 := append([]float64(nil), tv...)
	for i := 0; i < m.dim; i++ {
		hv[i] += scale * 2 * (e[i] + hp[i]*rpe)
		tv[i] -= scale * 2 * (e[i] + tp[i]*rpe)
		hp[i] += scale * 2 * rpe * h0[i]
		tp[i] -= scale * 2 * rpe * t0[i]
		rv[i] += scale * 2 * e[i]
		rp[i] += scale * 2 * (ph - pt) * e[i]
	}
}

func (m *transD) finishEpoch() {
	for _, v := range m.ent {
		Normalize(v)
	}
	// Keep projection vectors bounded so projections stay well-conditioned.
	for _, v := range m.entP {
		if Norm(v) > 1 {
			Normalize(v)
		}
	}
	for _, v := range m.relP {
		if Norm(v) > 1 {
			Normalize(v)
		}
	}
}

func (m *transD) relVector(r int) []float64 { return m.rel[r] }
func (m *transD) entVector(e int) []float64 { return m.ent[e] }
