package embedding

import (
	"math"
	"testing"
	"testing/quick"

	"kgaq/internal/stats"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotNormCosine(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	c := []float64{2, 0, 0}
	if Dot(a, b) != 0 {
		t.Fatal("orthogonal dot != 0")
	}
	if Norm(c) != 2 {
		t.Fatalf("Norm = %v, want 2", Norm(c))
	}
	if Cosine(a, c) != 1 {
		t.Fatalf("Cosine parallel = %v, want 1", Cosine(a, c))
	}
	if Cosine(a, b) != 0 {
		t.Fatalf("Cosine orthogonal = %v, want 0", Cosine(a, b))
	}
	if Cosine(a, []float64{0, 0, 0}) != 0 {
		t.Fatal("Cosine with zero vector should be 0")
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	Normalize(v)
	if !almostEq(Norm(v), 1, 1e-12) {
		t.Fatalf("Norm after Normalize = %v", Norm(v))
	}
	z := []float64{0, 0}
	Normalize(z) // must not panic or produce NaN
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("Normalize changed the zero vector")
	}
}

func TestAddScaledSub(t *testing.T) {
	a := []float64{1, 2}
	AddScaled(a, 2, []float64{3, 4})
	if a[0] != 7 || a[1] != 10 {
		t.Fatalf("AddScaled = %v", a)
	}
	d := Sub([]float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestRandUnitIsUnit(t *testing.T) {
	r := stats.NewRand(3)
	for i := 0; i < 20; i++ {
		v := randUnit(r, 16)
		if !almostEq(Norm(v), 1, 1e-9) {
			t.Fatalf("randUnit norm = %v", Norm(v))
		}
	}
}

func TestOrthogonalTo(t *testing.T) {
	r := stats.NewRand(5)
	c := randUnit(r, 16)
	for i := 0; i < 20; i++ {
		u := orthogonalTo(r, c)
		if !almostEq(Dot(u, c), 0, 1e-9) {
			t.Fatalf("orthogonalTo dot = %v", Dot(u, c))
		}
		if !almostEq(Norm(u), 1, 1e-9) {
			t.Fatalf("orthogonalTo norm = %v", Norm(u))
		}
	}
}

// Property: Cosine is symmetric and bounded in [-1, 1].
func TestCosineProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		d := 2 + r.Intn(16)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := 0; i < d; i++ {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		c1 := Cosine(a, b)
		c2 := Cosine(b, a)
		return almostEq(c1, c2, 1e-12) && c1 >= -1-1e-12 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
