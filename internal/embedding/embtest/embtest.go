// Package embtest provides shared embedding fixtures for tests of the walk,
// similarity, estimation and engine layers. It lives outside kgtest so that
// kgtest stays free of embedding dependencies (the embedding package's own
// tests use kgtest).
package embtest

import (
	"fmt"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
)

// Figure1Model builds the deterministic oracle embedding for the Figure 1
// fixture graph, with the paper's predicate similarities
// (kgtest.Figure1Affinities).
func Figure1Model(g *kg.Graph) *embedding.PredVectors {
	m, err := embedding.NewOracle(g, 64, 271828, []embedding.Cluster{{
		Name:     "producedIn",
		Affinity: kgtest.Figure1Affinities(),
	}})
	if err != nil {
		panic(fmt.Sprintf("embtest: %v", err))
	}
	return m
}
