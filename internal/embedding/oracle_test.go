package embedding

import (
	"math"
	"testing"

	"kgaq/internal/kg/kgtest"
)

func TestOracleAffinities(t *testing.T) {
	g := kgtest.Figure1()
	clusters := []Cluster{
		{
			Name: "producedIn",
			Affinity: map[string]float64{
				"assembly":      0.98,
				"manufacturer":  0.90,
				"country":       0.81,
				"designCompany": 0.79,
			},
		},
		{
			Name:     "personal",
			Affinity: map[string]float64{"designer": 0.95, "nationality": 0.9},
		},
	}
	m, err := NewOracle(g, 32, 7, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}

	assembly := g.PredByName("assembly")
	country := g.PredByName("country")
	designer := g.PredByName("designer")
	capital := g.PredByName("capitalOf")

	// Within-cluster similarity ≈ product of affinities.
	got := PredicateSimilarity(m, assembly, country)
	want := 0.98 * 0.81
	if math.Abs(got-want) > 0.25 {
		t.Fatalf("sim(assembly,country) = %v, want ≈%v", got, want)
	}
	if got < 0.5 {
		t.Fatalf("within-cluster similarity too low: %v", got)
	}
	// Cross-cluster and unclustered similarities are near zero in d=32.
	if s := PredicateSimilarity(m, assembly, designer); math.Abs(s) > 0.5 {
		t.Fatalf("cross-cluster sim = %v, want ≈0", s)
	}
	if s := PredicateSimilarity(m, assembly, capital); math.Abs(s) > 0.5 {
		t.Fatalf("unclustered sim = %v, want ≈0", s)
	}
	// Self similarity is exactly 1.
	if s := PredicateSimilarity(m, assembly, assembly); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self sim = %v", s)
	}
}

func TestOracleCanonicalPredicateHitsCentreExactly(t *testing.T) {
	g := kgtest.Figure1()
	m, err := NewOracle(g, 32, 1, []Cluster{{
		Name:     "c",
		Affinity: map[string]float64{"assembly": 1.0, "country": 0.8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := PredicateSimilarity(m, g.PredByName("assembly"), g.PredByName("country"))
	// cos(v_country, centre) = 0.8 and assembly *is* the centre.
	if math.Abs(s-0.8) > 1e-9 {
		t.Fatalf("sim(assembly,country) = %v, want exactly 0.8", s)
	}
}

func TestOracleRejectsBadAffinity(t *testing.T) {
	g := kgtest.Figure1()
	_, err := NewOracle(g, 32, 1, []Cluster{{
		Name: "c", Affinity: map[string]float64{"assembly": 1.5},
	}})
	if err == nil {
		t.Fatal("affinity 1.5 accepted")
	}
}

func TestOracleRejectsDoubleAssignment(t *testing.T) {
	g := kgtest.Figure1()
	_, err := NewOracle(g, 32, 1, []Cluster{
		{Name: "a", Affinity: map[string]float64{"assembly": 0.9}},
		{Name: "b", Affinity: map[string]float64{"assembly": 0.8}},
	})
	if err == nil {
		t.Fatal("double cluster assignment accepted")
	}
}

func TestOracleSkipsUnknownPredicates(t *testing.T) {
	g := kgtest.Figure1()
	m, err := NewOracle(g, 32, 1, []Cluster{{
		Name: "c", Affinity: map[string]float64{"assembly": 0.9, "noSuchPredicate": 0.7},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRejectsTinyDim(t *testing.T) {
	g := kgtest.Figure1()
	if _, err := NewOracle(g, 2, 1, nil); err == nil {
		t.Fatal("dim 2 accepted")
	}
}

func TestOracleDeterministic(t *testing.T) {
	g := kgtest.Figure1()
	spec := []Cluster{{Name: "c", Affinity: map[string]float64{"assembly": 0.9, "country": 0.8}}}
	m1, err := NewOracle(g, 16, 42, spec)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewOracle(g, 16, 42, spec)
	if err != nil {
		t.Fatal(err)
	}
	for p := range m1.Vecs {
		for i := range m1.Vecs[p] {
			if m1.Vecs[p][i] != m2.Vecs[p][i] {
				t.Fatal("oracle not deterministic for equal seeds")
			}
		}
	}
}
