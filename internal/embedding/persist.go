package embedding

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// vectorsSnapshot is the gob wire form for persisted predicate vectors.
// Persisting only the vectors (not trainer state) keeps snapshots portable
// across models: a loaded embedding behaves exactly like an oracle.
type vectorsSnapshot struct {
	ModelName string
	Vecs      [][]float64
	EntVecs   [][]float64
}

// Save writes the predicate (and optional entity) vectors of m. Trained
// models persist their entity vectors too, so link-prediction baselines can
// reload them; other models persist predicates only.
func Save(w io.Writer, m Model) error {
	s := vectorsSnapshot{ModelName: m.Name()}
	switch v := m.(type) {
	case *Trained:
		s.Vecs = v.Vecs
		s.EntVecs = v.EntVecs
	case *PredVectors:
		s.Vecs = v.Vecs
	default:
		return fmt.Errorf("embedding: cannot persist model type %T", m)
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		return fmt.Errorf("embedding: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("embedding: save: %w", err)
	}
	return nil
}

// LoadedModel is a reloaded embedding: predicate vectors plus, when the
// snapshot carried them, entity vectors usable for TransE-style link
// scoring.
type LoadedModel struct {
	PredVectors
	EntVecs [][]float64
}

// ScoreLink implements LinkScorer with the TransE energy when entity
// vectors are available, and 0 otherwise.
func (l *LoadedModel) ScoreLink(head, rel, tail int32) float64 {
	if l.EntVecs == nil {
		return 0
	}
	h, r, t := l.EntVecs[head], l.Vecs[rel], l.EntVecs[tail]
	e := 0.0
	for i := range h {
		d := h[i] + r[i] - t[i]
		e += d * d
	}
	return -e
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*LoadedModel, error) {
	var s vectorsSnapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&s); err != nil {
		return nil, fmt.Errorf("embedding: load: %w", err)
	}
	if len(s.Vecs) == 0 {
		return nil, fmt.Errorf("embedding: load: snapshot has no predicate vectors")
	}
	d := len(s.Vecs[0])
	for i, v := range s.Vecs {
		if len(v) != d {
			return nil, fmt.Errorf("embedding: load: predicate %d has dim %d, want %d", i, len(v), d)
		}
	}
	return &LoadedModel{
		PredVectors: PredVectors{ModelName: s.ModelName, Vecs: s.Vecs},
		EntVecs:     s.EntVecs,
	}, nil
}

// SaveFile writes the model snapshot to path.
func SaveFile(path string, m Model) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("embedding: %w", err)
	}
	if err := Save(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model snapshot from path.
func LoadFile(path string) (*LoadedModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("embedding: %w", err)
	}
	defer f.Close()
	return Load(f)
}
