package embedding

import (
	"fmt"
	"math"
	"sort"

	"kgaq/internal/kg"
	"kgaq/internal/stats"
)

// Cluster describes one semantic cluster of predicates for the oracle
// embedding. Every predicate is given a target cosine similarity (affinity)
// to the cluster centre; the canonical predicate of the cluster has affinity
// 1 and coincides with the centre.
//
// Example, mirroring Figure 3 of the paper: the "producedIn" cluster maps
// product→1.0, assembly→0.98, manufacturer→0.9, country→0.81,
// designCompany→0.79, with designer and nationality left to other clusters.
type Cluster struct {
	Name     string
	Affinity map[string]float64 // predicate label → target cosine to centre
}

// NewOracle builds an oracle embedding for graph g: predicates inside a
// cluster receive unit vectors whose cosine to the cluster centre equals the
// prescribed affinity; predicates mentioned in no cluster receive random
// unit vectors (near-orthogonal to everything in dimension dim).
//
// The construction places v = a·c + sqrt(1-a²)·u with u a random unit vector
// orthogonal to the centre c, so cos(v,c) = a exactly, and for two
// predicates of the same cluster cos(v1,v2) ≈ a1·a2 (the residual term is
// O(1/sqrt(dim))). An affinity outside [-1,1] is an error.
func NewOracle(g *kg.Graph, dim int, seed int64, clusters []Cluster) (*PredVectors, error) {
	if dim < 4 {
		return nil, fmt.Errorf("embedding: oracle dim %d too small (need ≥4)", dim)
	}
	r := stats.NewRand(seed)
	vecs := make([][]float64, g.NumPredicates())

	assigned := make(map[kg.PredID]bool)
	for _, cl := range clusters {
		centre := randUnit(r, dim)
		// Deterministic iteration: vector construction consumes randomness,
		// so Go's randomized map order would make equal seeds produce
		// different embeddings.
		labels := make([]string, 0, len(cl.Affinity))
		for label := range cl.Affinity {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		for _, label := range labels {
			a := cl.Affinity[label]
			if a < -1 || a > 1 {
				return nil, fmt.Errorf("embedding: cluster %q: affinity %v for %q outside [-1,1]", cl.Name, a, label)
			}
			p := g.PredByName(label)
			if p == kg.InvalidPred {
				// Cluster specs may mention predicates that a particular
				// synthetic instance did not emit; skip silently.
				continue
			}
			if assigned[p] {
				return nil, fmt.Errorf("embedding: predicate %q assigned to two clusters", label)
			}
			assigned[p] = true
			v := make([]float64, dim)
			AddScaled(v, a, centre)
			residual := 1 - a*a
			if residual > 1e-12 {
				u := orthogonalTo(r, centre)
				AddScaled(v, sqrt(residual), u)
			}
			Normalize(v)
			vecs[p] = v
		}
	}
	for p := range vecs {
		if vecs[p] == nil {
			vecs[p] = randUnit(r, dim)
		}
	}
	return &PredVectors{ModelName: "oracle", Vecs: vecs}, nil
}

// sqrt guards tiny negative residuals from floating-point cancellation.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
