package embedding

import (
	"bytes"
	"testing"

	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/stats"
)

// trainGraph builds a graph large enough for margin training to have signal:
// a bipartite pattern where relation "likes" links people to foods and
// relation "locatedIn" links foods to countries.
func trainGraph(t testing.TB) *kg.Graph {
	t.Helper()
	b := kg.NewBuilder()
	r := stats.NewRand(13)
	var people, foods, countries []kg.NodeID
	for i := 0; i < 20; i++ {
		people = append(people, b.AddNode(pname("p", i), "Person"))
	}
	for i := 0; i < 15; i++ {
		foods = append(foods, b.AddNode(pname("f", i), "Food"))
	}
	for i := 0; i < 5; i++ {
		countries = append(countries, b.AddNode(pname("c", i), "Country"))
	}
	for _, p := range people {
		for k := 0; k < 3; k++ {
			if err := b.AddEdge(p, "likes", foods[r.Intn(len(foods))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, f := range foods {
		if err := b.AddEdge(f, "locatedIn", countries[r.Intn(len(countries))]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func pname(prefix string, i int) string {
	return prefix + string(rune('A'+i/10)) + string(rune('0'+i%10))
}

func quickCfg() TrainConfig {
	return TrainConfig{Dim: 16, Epochs: 30, LearningRate: 0.05, Margin: 1.0, Seed: 3}
}

// rankingAccuracy measures how often a true triple scores above a corrupted
// one under the trained link scorer.
func rankingAccuracy(t *testing.T, g *kg.Graph, m *Trained) float64 {
	t.Helper()
	r := stats.NewRand(99)
	triples := Triples(g)
	wins, total := 0, 0
	for _, tr := range triples {
		for k := 0; k < 4; k++ {
			neg := corrupt(r, g, tr)
			if m.ScoreLink(tr.H, tr.R, tr.T) > m.ScoreLink(neg.H, neg.R, neg.T) {
				wins++
			}
			total++
		}
	}
	return float64(wins) / float64(total)
}

func TestTrainAllModelsRank(t *testing.T) {
	g := trainGraph(t)
	for _, name := range ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := Train(name, g, quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(g); err != nil {
				t.Fatal(err)
			}
			if m.Dim() == 0 {
				t.Fatal("zero-dimensional predicate vectors")
			}
			acc := rankingAccuracy(t, g, m)
			if acc < 0.70 {
				t.Fatalf("%s ranking accuracy = %.2f, want ≥ 0.70", name, acc)
			}
			if m.Params <= 0 || m.MemoryBytes() <= 0 {
				t.Fatal("parameter accounting missing")
			}
			if m.TrainTime <= 0 {
				t.Fatal("train time not recorded")
			}
		})
	}
}

func TestTrainDeterministic(t *testing.T) {
	g := trainGraph(t)
	m1, err := Train("TransE", g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train("TransE", g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for p := range m1.Vecs {
		for i := range m1.Vecs[p] {
			if m1.Vecs[p][i] != m2.Vecs[p][i] {
				t.Fatal("training not deterministic for equal seeds")
			}
		}
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	g := kgtest.Figure1()
	bad := []TrainConfig{
		{Dim: 1, Epochs: 1, LearningRate: 0.1, Margin: 1},
		{Dim: 8, Epochs: 0, LearningRate: 0.1, Margin: 1},
		{Dim: 8, Epochs: 1, LearningRate: 0, Margin: 1},
		{Dim: 8, Epochs: 1, LearningRate: 0.1, Margin: 0},
	}
	for i, cfg := range bad {
		if _, err := Train("TransE", g, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestTrainUnknownModel(t *testing.T) {
	g := kgtest.Figure1()
	if _, err := Train("BERT", g, quickCfg()); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestTrainEmptyGraph(t *testing.T) {
	b := kg.NewBuilder()
	b.AddNode("lonely", "T")
	g := b.Build()
	if _, err := Train("TransE", g, quickCfg()); err == nil {
		t.Fatal("edgeless graph accepted")
	}
}

func TestTriplesExtraction(t *testing.T) {
	g := kgtest.Figure1()
	ts := Triples(g)
	if len(ts) != g.NumEdges() {
		t.Fatalf("Triples = %d, want %d", len(ts), g.NumEdges())
	}
	for _, tr := range ts {
		if !g.HasEdge(tr.H, tr.R, tr.T) {
			t.Fatalf("extracted non-edge %v", tr)
		}
	}
}

func TestCorruptProducesNonEdges(t *testing.T) {
	g := kgtest.Figure1()
	r := stats.NewRand(17)
	ts := Triples(g)
	nonEdges := 0
	for i := 0; i < 200; i++ {
		pos := ts[r.Intn(len(ts))]
		neg := corrupt(r, g, pos)
		if neg == pos {
			t.Fatal("corrupt returned the positive triple")
		}
		if !g.HasEdge(neg.H, neg.R, neg.T) {
			nonEdges++
		}
	}
	if nonEdges < 190 {
		t.Fatalf("corrupt produced only %d/200 non-edges", nonEdges)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	g := trainGraph(t)
	m, err := Train("TransE", g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	l, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "TransE" || l.Dim() != m.Dim() {
		t.Fatalf("reloaded model = %s/%d, want TransE/%d", l.Name(), l.Dim(), m.Dim())
	}
	for p := range m.Vecs {
		for i := range m.Vecs[p] {
			if l.Vecs[p][i] != m.Vecs[p][i] {
				t.Fatal("predicate vectors changed across persist")
			}
		}
	}
	if l.EntVecs == nil {
		t.Fatal("entity vectors not persisted for trained model")
	}
	// Link scores agree (TransE energy is reconstructible from vectors).
	tr := Triples(g)[0]
	if got, want := l.ScoreLink(int32(tr.H), int32(tr.R), int32(tr.T)), m.ScoreLink(tr.H, tr.R, tr.T); !almostEq(got, want, 1e-9) {
		t.Fatalf("reloaded ScoreLink = %v, want %v", got, want)
	}
}

func TestPersistOracle(t *testing.T) {
	g := kgtest.Figure1()
	m, err := NewOracle(g, 16, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	l, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.EntVecs != nil {
		t.Fatal("oracle snapshot should not carry entity vectors")
	}
	if l.ScoreLink(0, 0, 1) != 0 {
		t.Fatal("ScoreLink without entity vectors should be 0")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
