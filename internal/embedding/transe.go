package embedding

import "math/rand"

// transE implements the classic translation model of Bordes et al. (NIPS
// 2013): energy(h,r,t) = ||h + r - t||² with entity vectors kept on the unit
// sphere. Its relation vectors are the predicate semantics consumed by the
// sampler.
type transE struct {
	ent [][]float64
	rel [][]float64
	dim int
}

func newTransE(numEnt, numRel, dim int, r *rand.Rand) *transE {
	m := &transE{dim: dim}
	m.ent = make([][]float64, numEnt)
	for i := range m.ent {
		m.ent[i] = randUniform(r, dim)
		Normalize(m.ent[i])
	}
	m.rel = make([][]float64, numRel)
	for i := range m.rel {
		m.rel[i] = randUniform(r, dim)
		Normalize(m.rel[i])
	}
	return m
}

func (m *transE) name() string { return "TransE" }

func (m *transE) paramCount() int { return (len(m.ent) + len(m.rel)) * m.dim }

func (m *transE) energy(h, r, t int) float64 {
	e := 0.0
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	for i := 0; i < m.dim; i++ {
		d := hv[i] + rv[i] - tv[i]
		e += d * d
	}
	return e
}

// step applies one margin-loss SGD update. For energy E = ||h+r-t||² the
// gradients are ∂E/∂h = 2(h+r-t), ∂E/∂r = 2(h+r-t), ∂E/∂t = -2(h+r-t); the
// positive triple descends, the negative ascends.
func (m *transE) step(pos, neg Triple, lr float64) {
	m.applyGrad(int(pos.H), int(pos.R), int(pos.T), -lr)
	m.applyGrad(int(neg.H), int(neg.R), int(neg.T), +lr)
}

func (m *transE) applyGrad(h, r, t int, scale float64) {
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	for i := 0; i < m.dim; i++ {
		g := 2 * (hv[i] + rv[i] - tv[i]) * scale
		hv[i] += g
		rv[i] += g
		tv[i] -= g
	}
}

func (m *transE) finishEpoch() {
	for _, v := range m.ent {
		Normalize(v)
	}
}

func (m *transE) relVector(r int) []float64 { return m.rel[r] }
func (m *transE) entVector(e int) []float64 { return m.ent[e] }
