package embedding

import (
	"fmt"
	"math/rand"
	"time"

	"kgaq/internal/kg"
	"kgaq/internal/stats"
)

// Triple is one (head, relation, tail) fact used for embedding training.
type Triple struct {
	H kg.NodeID
	R kg.PredID
	T kg.NodeID
}

// Triples extracts all stored edges of g as training triples.
func Triples(g *kg.Graph) []Triple {
	out := make([]Triple, 0, g.NumEdges())
	g.EachEdge(func(src kg.NodeID, pred kg.PredID, dst kg.NodeID) bool {
		out = append(out, Triple{H: src, R: pred, T: dst})
		return true
	})
	return out
}

// TrainConfig controls SGD training shared by all models.
type TrainConfig struct {
	Dim          int     // embedding dimension (matrix models use Dim x Dim)
	Epochs       int     // passes over the triple set
	LearningRate float64 // SGD step size
	Margin       float64 // margin of the ranking loss
	Seed         int64   // RNG seed (training is deterministic given it)
}

// DefaultTrainConfig returns the configuration used by the benchmarks:
// small enough to train in seconds on synthetic graphs, large enough for
// predicate clusters to emerge.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Dim: 32, Epochs: 60, LearningRate: 0.02, Margin: 1.0, Seed: 1}
}

func (c TrainConfig) validate() error {
	if c.Dim < 2 {
		return fmt.Errorf("embedding: dim %d too small", c.Dim)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("embedding: epochs must be positive")
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("embedding: learning rate must be positive")
	}
	if c.Margin <= 0 {
		return fmt.Errorf("embedding: margin must be positive")
	}
	return nil
}

// scorer is the per-model plug-in for the shared trainer: an energy function
// (lower = more plausible) with an analytic SGD step for the margin loss.
type scorer interface {
	// energy returns the dissimilarity of triple (h,r,t).
	energy(h, r, t int) float64
	// step performs one gradient step reducing energy of pos and raising
	// energy of neg (both share the relation) with learning rate lr.
	step(pos, neg Triple, lr float64)
	// finishEpoch lets the model renormalise its parameters.
	finishEpoch()
	// relVector returns the semantic vector representing relation r.
	relVector(r int) []float64
	// entVector returns the vector of entity e (nil if the model has none).
	entVector(e int) []float64
	// name identifies the model.
	name() string
	// paramCount returns the number of float64 parameters (memory metric
	// for Table XIII).
	paramCount() int
}

// Trained is the result of Train: a Model (predicate vectors), optional
// entity vectors for link prediction, and training cost metrics.
type Trained struct {
	PredVectors
	EntVecs   [][]float64
	TrainTime time.Duration
	Params    int // number of float64 parameters
	FinalLoss float64
	sc        scorer
	numEnt    int
	numRel    int
}

// MemoryBytes returns the approximate parameter memory of the model.
func (t *Trained) MemoryBytes() int { return t.Params * 8 }

// ScoreLink implements LinkScorer: the negated energy of the candidate
// triple under the trained model (higher = more plausible).
func (t *Trained) ScoreLink(head kg.NodeID, rel kg.PredID, tail kg.NodeID) float64 {
	if t.sc == nil {
		return 0
	}
	return -t.sc.energy(int(head), int(rel), int(tail))
}

var _ Model = (*Trained)(nil)
var _ LinkScorer = (*Trained)(nil)

// newScorer constructs the scorer for a model name.
func newScorer(model string, numEnt, numRel, dim int, r *rand.Rand) (scorer, error) {
	switch model {
	case "TransE":
		return newTransE(numEnt, numRel, dim, r), nil
	case "TransH":
		return newTransH(numEnt, numRel, dim, r), nil
	case "TransD":
		return newTransD(numEnt, numRel, dim, r), nil
	case "RESCAL":
		return newRESCAL(numEnt, numRel, dim, r), nil
	case "SE":
		return newSE(numEnt, numRel, dim, r), nil
	default:
		return nil, fmt.Errorf("embedding: unknown model %q (have TransE, TransH, TransD, RESCAL, SE)", model)
	}
}

// ModelNames lists the trainable models in the order used by Table XIII.
func ModelNames() []string { return []string{"TransE", "TransD", "TransH", "RESCAL", "SE"} }

// Train fits the named model to the edges of g by SGD over a margin ranking
// loss with uniform negative sampling (corrupting head or tail with equal
// probability, re-drawing corrupted triples that exist in g).
func Train(model string, g *kg.Graph, cfg TrainConfig) (*Trained, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	triples := Triples(g)
	if len(triples) == 0 {
		return nil, fmt.Errorf("embedding: graph has no edges to train on")
	}
	r := stats.NewRand(cfg.Seed)
	sc, err := newScorer(model, g.NumNodes(), g.NumPredicates(), cfg.Dim, r)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	order := make([]int, len(triples))
	for i := range order {
		order[i] = i
	}
	finalLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for _, idx := range order {
			pos := triples[idx]
			neg := corrupt(r, g, pos)
			loss := cfg.Margin + sc.energy(int(pos.H), int(pos.R), int(pos.T)) -
				sc.energy(int(neg.H), int(neg.R), int(neg.T))
			if loss > 0 {
				epochLoss += loss
				sc.step(pos, neg, cfg.LearningRate)
			}
		}
		sc.finishEpoch()
		finalLoss = epochLoss / float64(len(triples))
	}

	out := &Trained{
		PredVectors: PredVectors{ModelName: model},
		TrainTime:   time.Since(start),
		Params:      sc.paramCount(),
		FinalLoss:   finalLoss,
		sc:          sc,
		numEnt:      g.NumNodes(),
		numRel:      g.NumPredicates(),
	}
	out.Vecs = make([][]float64, g.NumPredicates())
	for p := 0; p < g.NumPredicates(); p++ {
		out.Vecs[p] = append([]float64(nil), sc.relVector(p)...)
	}
	if ev := sc.entVector(0); ev != nil {
		out.EntVecs = make([][]float64, g.NumNodes())
		for e := 0; e < g.NumNodes(); e++ {
			out.EntVecs[e] = append([]float64(nil), sc.entVector(e)...)
		}
	}
	return out, nil
}

// corrupt draws a negative triple by replacing head or tail with a random
// entity, rejecting corruptions that are true edges (up to a retry budget —
// a rarely hit guard on dense toy graphs).
func corrupt(r *rand.Rand, g *kg.Graph, pos Triple) Triple {
	n := kg.NodeID(g.NumNodes())
	for tries := 0; tries < 16; tries++ {
		neg := pos
		if r.Intn(2) == 0 {
			neg.H = kg.NodeID(r.Intn(int(n)))
		} else {
			neg.T = kg.NodeID(r.Intn(int(n)))
		}
		if neg.H == neg.T {
			continue
		}
		if !g.HasEdge(neg.H, neg.R, neg.T) {
			return neg
		}
	}
	// Give up on filtering; an occasional false negative is harmless.
	neg := pos
	neg.H = kg.NodeID(r.Intn(int(n)))
	return neg
}
