package baselines

import (
	"math"
	"testing"

	"kgaq/internal/embedding"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
)

func fixture(t *testing.T) (*kg.Graph, *embedding.PredVectors) {
	t.Helper()
	g := kgtest.Figure1()
	return g, embtest.Figure1Model(g)
}

func countCars() *query.Aggregate {
	return query.Simple(query.Count, "", "Germany", "Country", "product", "Automobile")
}

func avgPrice() *query.Aggregate {
	return query.Simple(query.Avg, "price", "Germany", "Country", "product", "Automobile")
}

func TestSSBExactTauGT(t *testing.T) {
	g, m := fixture(t)
	ssb, err := NewSSB(g, m, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ssb.Name() != "SSB" {
		t.Fatal("name")
	}
	res, err := ssb.Execute(countCars())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 {
		t.Fatalf("SSB COUNT = %v, want 5", res.Value)
	}
	names := map[string]bool{}
	for _, u := range res.Answers {
		names[g.Name(u)] = true
	}
	for _, want := range kgtest.Figure1Answers() {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	if names["KIA_K5"] {
		t.Error("KIA_K5 included at τ=0.85")
	}

	// The running example's AVG.
	avg, err := ssb.Execute(avgPrice())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.Value-kgtest.Figure1AvgPrice) > 0.01 {
		t.Fatalf("SSB AVG = %v, want %v", avg.Value, kgtest.Figure1AvgPrice)
	}
}

func TestSSBChain(t *testing.T) {
	g, m := fixture(t)
	ssb, err := NewSSB(g, m, 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Chain(query.Count, "", "Germany", "Country", []query.Hop{
		{Predicate: "nationality", Types: []string{"Person"}},
		{Predicate: "designer", Types: []string{"Automobile"}},
	})
	res, err := ssb.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 || g.Name(res.Answers[0]) != "KIA_K5" {
		t.Fatalf("chain SSB = %v (%d answers)", res.Value, len(res.Answers))
	}
}

func TestSSBWithFilterAndGroupBy(t *testing.T) {
	g, m := fixture(t)
	ssb, err := NewSSB(g, m, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := countCars().WithFilter("fuel_economy", 25, 30)
	res, err := ssb.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 { // BMW_320 (28), Audi_TT (26)
		t.Fatalf("filtered SSB COUNT = %v, want 2", res.Value)
	}
	q2 := countCars().WithGroupBy("fuel_economy")
	res, err = ssb.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups["28"] != 1 || res.Groups["n/a"] != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}
	_ = g
}

func TestGraBIgnoresSemantics(t *testing.T) {
	g, _ := fixture(t)
	b := NewGraB(g)
	if b.Name() != "GraB" {
		t.Fatal("name")
	}
	res, err := b.Execute(countCars())
	if err != nil {
		t.Fatal(err)
	}
	// Within 2 hops of Germany: BMW_320, BMW_X6, Porsche_911, Audi_TT,
	// Lamando, KIA_K5 — the structural matcher cannot exclude KIA.
	names := map[string]bool{}
	for _, u := range res.Answers {
		names[g.Name(u)] = true
	}
	if !names["KIA_K5"] {
		t.Fatal("GraB should include the structurally close KIA_K5")
	}
	if res.Value != 6 {
		t.Fatalf("GraB COUNT = %v, want 6", res.Value)
	}
}

func TestQGALexicalOnly(t *testing.T) {
	g, _ := fixture(t)
	b := NewQGA(g)
	if b.Name() != "QGA" {
		t.Fatal("name")
	}
	res, err := b.Execute(countCars())
	if err != nil {
		t.Fatal(err)
	}
	// "product" matches no other predicate lexically on this fixture, and
	// no car carries a literal product edge from Germany; only the
	// 2-hop product path via Volkswagen remains reachable when every hop
	// must match lexically — country/assembly do not. QGA therefore finds
	// nearly nothing: the paper's worst performer.
	if res.Value > 1 {
		t.Fatalf("QGA COUNT = %v, want ≤ 1", res.Value)
	}
}

func TestExactEnginesIdentical(t *testing.T) {
	g, _ := fixture(t)
	q := query.Simple(query.Count, "", "Germany", "Country", "assembly", "Automobile")
	jena, err := NewJENA(g).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	virt, err := NewVirtuoso(g).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if jena.Value != virt.Value || len(jena.Answers) != len(virt.Answers) {
		t.Fatal("JENA and Virtuoso must agree exactly")
	}
	if jena.Value != 2 {
		t.Fatalf("exact COUNT = %v, want 2", jena.Value)
	}
	if NewJENA(g).Name() != "JENA" || NewVirtuoso(g).Name() != "Virtuoso" {
		t.Fatal("names")
	}
}

func TestSGQIncludesAllCorrect(t *testing.T) {
	g, m := fixture(t)
	sgq, err := NewSGQ(g, m, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sgq.Name() != "SGQ" {
		t.Fatal("name")
	}
	res, err := sgq.Execute(countCars())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, u := range res.Answers {
		names[g.Name(u)] = true
	}
	for _, want := range kgtest.Figure1Answers() {
		if !names[want] {
			t.Errorf("SGQ missing correct answer %s", want)
		}
	}
	// k grows in steps of 50; with only 6 candidates the first batch takes
	// everything, incorrect KIA included — the paper's reason its error
	// is non-zero.
	if !names["KIA_K5"] {
		t.Error("SGQ top-k should include KIA_K5 in the last batch")
	}
}

func TestEAQLinkPrediction(t *testing.T) {
	g, _ := fixture(t)
	trained, err := embedding.Train("TransE", g, embedding.TrainConfig{
		Dim: 16, Epochs: 80, LearningRate: 0.05, Margin: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	eaq := NewEAQ(g, trained)
	if eaq.Name() != "EAQ" {
		t.Fatal("name")
	}
	res, err := eaq.Execute(countCars())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("EAQ found nothing")
	}
	// Complex shapes are unsupported (the "-" cells of Table VI).
	chain := query.Chain(query.Count, "", "Germany", "Country", []query.Hop{
		{Predicate: "nationality", Types: []string{"Person"}},
		{Predicate: "designer", Types: []string{"Automobile"}},
	})
	if _, err := eaq.Execute(chain); err != ErrUnsupported {
		t.Fatalf("chain err = %v, want ErrUnsupported", err)
	}
}

func TestStarIntersection(t *testing.T) {
	g, m := fixture(t)
	ssb, err := NewSSB(g, m, 0.75, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := query.NewBuilder()
	de := b.Specific("Germany", "Country")
	vw := b.Specific("Volkswagen", "Company")
	tgt := b.Target("Automobile")
	b.Edge(de, tgt, "product")
	b.Edge(vw, tgt, "designCompany")
	res, err := ssb.Execute(b.Aggregate(query.Count, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 { // Audi_TT and Lamando at τ=0.75
		t.Fatalf("star SSB COUNT = %v, want 2", res.Value)
	}
}

func TestInvalidQueriesRejected(t *testing.T) {
	g, m := fixture(t)
	ssb, _ := NewSSB(g, m, 0.85, 3)
	methods := []Method{ssb, NewGraB(g), NewQGA(g), NewJENA(g)}
	for _, meth := range methods {
		if _, err := meth.Execute(&query.Aggregate{}); err == nil {
			t.Errorf("%s accepted invalid query", meth.Name())
		}
	}
}

func TestUnknownEntityYieldsEmpty(t *testing.T) {
	g, m := fixture(t)
	ssb, _ := NewSSB(g, m, 0.85, 3)
	q := query.Simple(query.Count, "", "Atlantis", "Country", "product", "Automobile")
	res, err := ssb.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("unknown entity COUNT = %v, want 0", res.Value)
	}
}
