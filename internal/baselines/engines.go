package baselines

import (
	"math"
	"sort"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/semsim"
	"kgaq/internal/sparql"
)

// EAQ reimplements the defining behaviour of Li et al.'s link-prediction
// aggregates: candidate entities are collected by scoring the hypothetical
// edge (answer, predicate, entity) under a trained embedding's energy and
// keeping candidates whose score clears a threshold calibrated on the
// graph's true edges with that predicate. No edge-to-path mapping, no
// semantic similarity, simple queries only — exactly the limitations the
// paper lists in §VI.
type EAQ struct {
	g      *kg.Graph
	scorer embedding.LinkScorer
	// N bounds the candidate scope in hops (default 3).
	N int
	// Quantile of true-edge scores used as the acceptance threshold
	// (default 0.25: a candidate must score at least as well as the bottom
	// quartile of real edges).
	Quantile float64

	thresholds map[kg.PredID]float64
}

// NewEAQ builds the baseline from any link scorer (typically a trained
// TransE model).
func NewEAQ(g *kg.Graph, scorer embedding.LinkScorer) *EAQ {
	return &EAQ{g: g, scorer: scorer, N: 3, Quantile: 0.25, thresholds: map[kg.PredID]float64{}}
}

// Name implements Method.
func (e *EAQ) Name() string { return "EAQ" }

// threshold calibrates the acceptance score for a predicate from the
// observed edges carrying it. With fewer than five true edges the
// calibration is meaningless and NaN is returned; Execute then falls back
// to a candidate-relative cut.
func (e *EAQ) threshold(pred kg.PredID) float64 {
	if t, ok := e.thresholds[pred]; ok {
		return t
	}
	var scores []float64
	e.g.EachEdge(func(src kg.NodeID, p kg.PredID, dst kg.NodeID) bool {
		if p == pred {
			scores = append(scores, e.scorer.ScoreLink(src, p, dst))
		}
		return true
	})
	t := math.NaN()
	if len(scores) >= 5 {
		sort.Float64s(scores)
		idx := int(e.Quantile * float64(len(scores)-1))
		t = scores[idx]
	}
	e.thresholds[pred] = t
	return t
}

// Execute implements Method.
func (e *EAQ) Execute(a *query.Aggregate) (*Answer, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	paths, err := a.Q.Decompose()
	if err != nil {
		return nil, err
	}
	if len(paths) != 1 || len(paths[0].Hops) != 1 {
		return nil, ErrUnsupported
	}
	p := paths[0]
	us := e.g.NodeByName(p.RootName)
	if us == kg.InvalidNode {
		return AggregateOver(e.g, a, nil)
	}
	pred := e.g.PredByName(p.Hops[0].Predicate)
	if pred == kg.InvalidPred {
		return AggregateOver(e.g, a, nil)
	}
	var types []kg.TypeID
	for _, tn := range p.Hops[0].Types {
		if t := e.g.TypeByName(tn); t != kg.InvalidType {
			types = append(types, t)
		}
	}
	thr := e.threshold(pred)
	bound := e.g.BoundedSubgraph(us, e.N)
	type scored struct {
		u kg.NodeID
		s float64
	}
	var cands []scored
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, u := range bound.Nodes {
		if u == us || !e.g.SharesType(u, types) {
			continue
		}
		// The predicted fact may be stored in either orientation; take the
		// more plausible one.
		s := e.scorer.ScoreLink(u, pred, us)
		if s2 := e.scorer.ScoreLink(us, pred, u); s2 > s {
			s = s2
		}
		cands = append(cands, scored{u: u, s: s})
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if math.IsNaN(thr) {
		// Candidate-relative fallback: keep the clearly plausible upper
		// band of the score range.
		thr = lo + 0.6*(hi-lo)
	}
	var answers []kg.NodeID
	for _, c := range cands {
		if c.s >= thr {
			answers = append(answers, c.u)
		}
	}
	return AggregateOver(e.g, a, answers)
}

// SGQ reimplements the incremental top-k semantic search of Wang et al.
// (the paper's own earlier system): answers ranked by exact semantic
// similarity, k grown in steps of 50 until every τ-correct answer is
// included — at which point the last batch has also dragged in some
// incorrect answers ranked in between, the source of its small error
// (§VII-B reason 4).
type SGQ struct {
	calc *semsim.Calculator
	tau  float64
	n    int
	// Step is the k increment (default 50).
	Step int
}

// NewSGQ builds the baseline.
func NewSGQ(g *kg.Graph, model embedding.Model, tau float64, n int) (*SGQ, error) {
	calc, err := semsim.NewCalculator(g, model, 0)
	if err != nil {
		return nil, err
	}
	if tau <= 0 {
		tau = 0.85
	}
	if n <= 0 {
		n = 3
	}
	return &SGQ{calc: calc, tau: tau, n: n, Step: 50}, nil
}

// Name implements Method.
func (s *SGQ) Name() string { return "SGQ" }

// Execute implements Method.
func (s *SGQ) Execute(a *query.Aggregate) (*Answer, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	g := s.calc.Graph()
	answers, err := answersByPolicy(g, a, func(root kg.NodeID, pred kg.PredID, types []kg.TypeID) map[kg.NodeID]bool {
		best := semsim.Exhaustive(g, s.calc, root, pred, s.n)
		type scored struct {
			u   kg.NodeID
			sim float64
		}
		var ranked []scored
		for u, sim := range best {
			if g.SharesType(u, types) {
				ranked = append(ranked, scored{u: u, sim: sim})
			}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].sim != ranked[j].sim {
				return ranked[i].sim > ranked[j].sim
			}
			return ranked[i].u < ranked[j].u
		})
		// Grow k by Step until all τ-correct answers are covered.
		lastCorrect := -1
		for i, r := range ranked {
			if r.sim >= s.tau {
				lastCorrect = i
			}
		}
		k := s.Step
		for k < lastCorrect+1 {
			k += s.Step
		}
		if k > len(ranked) {
			k = len(ranked)
		}
		out := map[kg.NodeID]bool{}
		for _, r := range ranked[:k] {
			out[r.u] = true
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	return AggregateOver(g, a, answers)
}

// ExactEngine wraps the sparql package as the JENA / Virtuoso baselines.
// Exact schema matching misses every structurally different variant; both
// engines produce identical answers (as in the paper's tables), differing
// only in the label they report.
type ExactEngine struct {
	g     *kg.Graph
	label string
}

// NewJENA returns the JENA-labelled exact engine.
func NewJENA(g *kg.Graph) *ExactEngine { return &ExactEngine{g: g, label: "JENA"} }

// NewVirtuoso returns the Virtuoso-labelled exact engine.
func NewVirtuoso(g *kg.Graph) *ExactEngine { return &ExactEngine{g: g, label: "Virtuoso"} }

// Name implements Method.
func (e *ExactEngine) Name() string { return e.label }

// Execute implements Method.
func (e *ExactEngine) Execute(a *query.Aggregate) (*Answer, error) {
	res, err := sparql.Execute(e.g, a)
	if err != nil {
		return nil, err
	}
	return &Answer{Value: res.Value, Answers: res.Answers, Groups: res.Groups}, nil
}
