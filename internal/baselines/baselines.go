package baselines

import (
	"fmt"
	"sort"
	"strconv"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
)

// Answer is a baseline's result: the aggregate value, the answer set it
// aggregated over, and per-group values for GROUP-BY queries.
type Answer struct {
	Value   float64
	Answers []kg.NodeID
	Groups  map[string]float64
}

// Method is a competing query-answering system.
type Method interface {
	Name() string
	Execute(a *query.Aggregate) (*Answer, error)
}

// ErrUnsupported is returned by methods that cannot run a query shape
// (e.g. EAQ beyond simple queries, shown as "-" in the paper's tables).
var ErrUnsupported = fmt.Errorf("baselines: query shape unsupported by this method")

// hopExpander returns, per method, the set of nodes reachable from root
// through ONE query hop under the method's matching policy.
type hopExpander func(root kg.NodeID, pred kg.PredID, types []kg.TypeID) map[kg.NodeID]bool

// answersByPolicy evaluates the decomposed query under a per-hop expansion
// policy: each path expands stage-wise from its root; the final sets of all
// paths are intersected (decomposition–assembly, the same frame the engine
// uses, so baselines and engine answer the same question).
func answersByPolicy(g kg.ReadGraph, a *query.Aggregate, expand hopExpander) ([]kg.NodeID, error) {
	paths, err := a.Q.Decompose()
	if err != nil {
		return nil, err
	}
	var result map[kg.NodeID]bool
	for _, p := range paths {
		us := g.NodeByName(p.RootName)
		if us == kg.InvalidNode {
			return nil, nil // unknown entity: zero answers, like a store
		}
		frontier := map[kg.NodeID]bool{us: true}
		for _, hop := range p.Hops {
			pred := g.PredByName(hop.Predicate)
			if pred == kg.InvalidPred {
				frontier = nil
				break
			}
			var types []kg.TypeID
			for _, tn := range hop.Types {
				if t := g.TypeByName(tn); t != kg.InvalidType {
					types = append(types, t)
				}
			}
			next := map[kg.NodeID]bool{}
			for u := range frontier {
				for v := range expand(u, pred, types) {
					next[v] = true
				}
			}
			frontier = next
		}
		if result == nil {
			result = frontier
		} else {
			for u := range result {
				if !frontier[u] {
					delete(result, u)
				}
			}
		}
	}
	out := make([]kg.NodeID, 0, len(result))
	for u := range result {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// AggregateOver applies f_a with filters and GROUP-BY exactly over a fixed
// answer set, skipping answers missing the aggregated attribute (consistent
// with the engine and with SPARQL unbound semantics). It is exported for the
// bench layer, which uses it to compute per-group ground truths.
func AggregateOver(g kg.ReadGraph, a *query.Aggregate, answers []kg.NodeID) (*Answer, error) {
	var filtered []kg.NodeID
	for _, u := range answers {
		ok := true
		for _, f := range a.Filters {
			fa := g.AttrByName(f.Attr)
			if fa == kg.InvalidAttr {
				ok = false
				break
			}
			v, has := g.Attr(u, fa)
			if !has || !f.Matches(v) {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, u)
		}
	}
	res := &Answer{Answers: filtered}
	v, err := scalarAggregate(g, a, filtered)
	if err != nil {
		return nil, err
	}
	res.Value = v
	if a.GroupBy != "" {
		ga := g.AttrByName(a.GroupBy)
		groups := map[string][]kg.NodeID{}
		for _, u := range filtered {
			label := "n/a"
			if ga != kg.InvalidAttr {
				if gv, ok := g.Attr(u, ga); ok {
					label = strconv.FormatFloat(gv, 'g', -1, 64)
				}
			}
			groups[label] = append(groups[label], u)
		}
		res.Groups = map[string]float64{}
		for label, us := range groups {
			if gv, err := scalarAggregate(g, a, us); err == nil {
				res.Groups[label] = gv
			}
		}
	}
	return res, nil
}

func scalarAggregate(g kg.ReadGraph, a *query.Aggregate, answers []kg.NodeID) (float64, error) {
	if a.Func == query.Count {
		return float64(len(answers)), nil
	}
	attr := g.AttrByName(a.Attr)
	var vals []float64
	if attr != kg.InvalidAttr {
		for _, u := range answers {
			if v, ok := g.Attr(u, attr); ok {
				vals = append(vals, v)
			}
		}
	}
	switch a.Func {
	case query.Sum:
		return stats.Sum(vals), nil
	case query.Avg:
		if len(vals) == 0 {
			return 0, nil
		}
		return stats.Mean(vals), nil
	case query.Max:
		if len(vals) == 0 {
			return 0, nil
		}
		v, _ := stats.Max(vals)
		return v, nil
	case query.Min:
		if len(vals) == 0 {
			return 0, nil
		}
		v, _ := stats.Min(vals)
		return v, nil
	default:
		return 0, fmt.Errorf("baselines: unsupported aggregate %v", a.Func)
	}
}

// SSB is the Semantic Similarity-based Baseline of Algorithm 1: exhaustive
// bounded path enumeration, exact τ-relevant correct answers, exact
// aggregate. It is costly by design and doubles as the τ-GT oracle for
// effectiveness evaluation.
type SSB struct {
	calc *semsim.Calculator
	tau  float64
	n    int
}

// NewSSB builds the baseline. tau defaults to 0.85 and n to 3 when zero.
func NewSSB(g *kg.Graph, model embedding.Model, tau float64, n int) (*SSB, error) {
	calc, err := semsim.NewCalculator(g, model, 0)
	if err != nil {
		return nil, err
	}
	if tau <= 0 {
		tau = 0.85
	}
	if n <= 0 {
		n = 3
	}
	return &SSB{calc: calc, tau: tau, n: n}, nil
}

// Name implements Method.
func (s *SSB) Name() string { return "SSB" }

// CorrectAnswers returns the exact τ-relevant correct answer set of the
// query (the τ-GT answer set).
func (s *SSB) CorrectAnswers(a *query.Aggregate) ([]kg.NodeID, error) {
	g := s.calc.Graph()
	return answersByPolicy(g, a, func(root kg.NodeID, pred kg.PredID, types []kg.TypeID) map[kg.NodeID]bool {
		best := semsim.Exhaustive(g, s.calc, root, pred, s.n)
		out := map[kg.NodeID]bool{}
		for u, sim := range best {
			if sim >= s.tau && g.SharesType(u, types) {
				out[u] = true
			}
		}
		return out
	})
}

// Execute implements Method: exact aggregate over the τ-relevant answers.
func (s *SSB) Execute(a *query.Aggregate) (*Answer, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	answers, err := s.CorrectAnswers(a)
	if err != nil {
		return nil, err
	}
	return AggregateOver(s.calc.Graph(), a, answers)
}

// GraB reimplements the structural matcher of Jin et al.: answers are the
// typed nodes within a bounded distance of the specific entity, scored by
// path length only — no semantics, so structurally close but semantically
// wrong answers slip in and distant correct ones are missed.
type GraB struct {
	g *kg.Graph
	// MaxDist is the structural-similarity radius per hop (default 2).
	MaxDist int
}

// NewGraB builds the baseline.
func NewGraB(g *kg.Graph) *GraB { return &GraB{g: g, MaxDist: 2} }

// Name implements Method.
func (b *GraB) Name() string { return "GraB" }

// Execute implements Method.
func (b *GraB) Execute(a *query.Aggregate) (*Answer, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	answers, err := answersByPolicy(b.g, a, func(root kg.NodeID, pred kg.PredID, types []kg.TypeID) map[kg.NodeID]bool {
		bound := b.g.BoundedSubgraph(root, b.MaxDist)
		out := map[kg.NodeID]bool{}
		for _, u := range bound.Nodes {
			if u != root && b.g.SharesType(u, types) {
				out[u] = true
			}
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	return AggregateOver(b.g, a, answers)
}

// QGA reimplements the keyword-based matcher of Han et al.: an edge matches
// a query hop when its predicate NAME is lexically similar to the query
// predicate (character-trigram Jaccard). Lexical matching finds exact and
// morphologically related predicates but none of the semantically
// equivalent, differently named ones — the paper's worst performer.
type QGA struct {
	g *kg.Graph
	// Threshold is the trigram-Jaccard cutoff (default 0.35).
	Threshold float64
	// MaxLen bounds match path length (default 2).
	MaxLen int
}

// NewQGA builds the baseline.
func NewQGA(g *kg.Graph) *QGA { return &QGA{g: g, Threshold: 0.35, MaxLen: 2} }

// Name implements Method.
func (b *QGA) Name() string { return "QGA" }

// Execute implements Method.
func (b *QGA) Execute(a *query.Aggregate) (*Answer, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	answers, err := answersByPolicy(b.g, a, b.expand)
	if err != nil {
		return nil, err
	}
	return AggregateOver(b.g, a, answers)
}

// expand finds nodes reachable within MaxLen hops where every traversed
// predicate lexically matches the query predicate.
func (b *QGA) expand(root kg.NodeID, pred kg.PredID, types []kg.TypeID) map[kg.NodeID]bool {
	queryName := b.g.PredName(pred)
	lexOK := make(map[kg.PredID]bool, b.g.NumPredicates())
	for p := 0; p < b.g.NumPredicates(); p++ {
		lexOK[kg.PredID(p)] = trigramJaccard(queryName, b.g.PredName(kg.PredID(p))) >= b.Threshold
	}
	out := map[kg.NodeID]bool{}
	seen := map[kg.NodeID]bool{root: true}
	frontier := []kg.NodeID{root}
	for depth := 0; depth < b.MaxLen; depth++ {
		var next []kg.NodeID
		for _, u := range frontier {
			for _, he := range b.g.Neighbors(u) {
				if !lexOK[he.Pred] || seen[he.To] {
					continue
				}
				seen[he.To] = true
				next = append(next, he.To)
				if b.g.SharesType(he.To, types) {
					out[he.To] = true
				}
			}
		}
		frontier = next
	}
	return out
}

// trigramJaccard is the character-trigram Jaccard similarity of two
// lower-cased strings (short strings fall back to bigrams).
func trigramJaccard(a, b string) float64 {
	if a == b {
		return 1
	}
	ga := ngrams(a, 3)
	gb := ngrams(b, 3)
	return stats.Jaccard(ga, gb)
}

func ngrams(s string, n int) map[string]bool {
	ls := []rune(lower(s))
	out := map[string]bool{}
	if len(ls) < n {
		out[string(ls)] = true
		return out
	}
	for i := 0; i+n <= len(ls); i++ {
		out[string(ls[i:i+n])] = true
	}
	return out
}

func lower(s string) string {
	b := []rune(s)
	for i, r := range b {
		if r >= 'A' && r <= 'Z' {
			b[i] = r + ('a' - 'A')
		}
	}
	return string(b)
}
