// Package baselines implements the competing methods of §VII: the exact
// Semantic-Similarity Baseline SSB (Algorithm 1, which doubles as the τ-GT
// oracle), the link-prediction method EAQ, the incremental top-k semantic
// search SGQ, the structural matcher GraB, the keyword matcher QGA, and the
// exact-schema SPARQL engines JENA and Virtuoso (one matcher, two names —
// their rows are identical in every table of the paper).
//
// All methods implement Method: given an aggregate query they return the
// aggregate over whatever answer set their matching policy finds. The
// factoid-first methods (SGQ, GraB, QGA, JENA, Virtuoso) reproduce the
// paper's extension "adding an aggregate operation after the factoid
// answers".
package baselines
