package estimate

import (
	"math"
	"math/rand"
	"testing"

	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// population is a synthetic candidate-answer set with known ground truth,
// mirroring a converged walker: each answer has a value, a sampling
// probability π′ and a correctness flag.
type population struct {
	values  []float64
	probs   []float64
	correct []bool
	alias   *stats.Alias
}

func newPopulation(r *rand.Rand, k int, correctFrac float64) *population {
	p := &population{
		values:  make([]float64, k),
		probs:   make([]float64, k),
		correct: make([]bool, k),
	}
	total := 0.0
	for i := 0; i < k; i++ {
		p.values[i] = 10 + r.Float64()*90
		p.probs[i] = 0.05 + r.Float64() // non-uniform
		p.correct[i] = r.Float64() < correctFrac
		total += p.probs[i]
	}
	for i := range p.probs {
		p.probs[i] /= total
	}
	p.alias = stats.NewAlias(p.probs)
	return p
}

func (p *population) truth(fn query.AggFunc) float64 {
	sum, cnt := 0.0, 0.0
	for i := range p.values {
		if p.correct[i] {
			sum += p.values[i]
			cnt++
		}
	}
	switch fn {
	case query.Count:
		return cnt
	case query.Sum:
		return sum
	case query.Avg:
		if cnt == 0 {
			return 0
		}
		return sum / cnt
	default:
		return math.NaN()
	}
}

func (p *population) draw(r *rand.Rand, n int) []Observation {
	obs := make([]Observation, n)
	for i := range obs {
		j := p.alias.Draw(r)
		obs[i] = Observation{Value: p.values[j], Prob: p.probs[j], Correct: p.correct[j]}
	}
	return obs
}

// Lemma 3/4: the SampleSize estimators for SUM and COUNT are unbiased — the
// mean estimate over many independent samples converges to the truth.
func TestUnbiasedSumCount(t *testing.T) {
	r := stats.NewRand(42)
	pop := newPopulation(r, 40, 0.7)
	for _, fn := range []query.AggFunc{query.Sum, query.Count} {
		truth := pop.truth(fn)
		const trials = 4000
		acc := 0.0
		for i := 0; i < trials; i++ {
			obs := pop.draw(r, 40)
			v, err := Estimate(fn, obs, SampleSize)
			if err != nil {
				t.Fatal(err)
			}
			acc += v
		}
		mean := acc / trials
		if rel := math.Abs(mean-truth) / truth; rel > 0.02 {
			t.Errorf("%s: mean estimate %v vs truth %v (rel %v)", fn, mean, truth, rel)
		}
	}
}

// Lemma 5: the AVG estimator is consistent — a single large sample lands
// near the truth.
func TestConsistentAvg(t *testing.T) {
	r := stats.NewRand(7)
	pop := newPopulation(r, 40, 0.7)
	truth := pop.truth(query.Avg)
	obs := pop.draw(r, 40000)
	v, err := Estimate(query.Avg, obs, SampleSize)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(v-truth) / truth; rel > 0.02 {
		t.Fatalf("AVG estimate %v vs truth %v (rel %v)", v, truth, rel)
	}
}

// The paper's printed divisor (|S⁺|) overestimates whenever the sample
// contains incorrect answers; the ablation in DESIGN.md rests on this.
func TestCorrectOnlyBias(t *testing.T) {
	r := stats.NewRand(13)
	pop := newPopulation(r, 40, 0.6)
	truth := pop.truth(query.Count)
	const trials = 2000
	acc := 0.0
	for i := 0; i < trials; i++ {
		obs := pop.draw(r, 40)
		v, err := Estimate(query.Count, obs, CorrectOnly)
		if err != nil {
			t.Fatal(err)
		}
		acc += v
	}
	mean := acc / trials
	if mean <= truth*1.1 {
		t.Fatalf("CorrectOnly COUNT mean %v should exceed truth %v markedly", mean, truth)
	}
}

// AVG is policy-independent (divisors cancel in the ratio).
func TestAvgPolicyIndependent(t *testing.T) {
	r := stats.NewRand(3)
	pop := newPopulation(r, 30, 0.5)
	obs := pop.draw(r, 500)
	a, err := Estimate(query.Avg, obs, SampleSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(query.Avg, obs, CorrectOnly)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("AVG differs across policies: %v vs %v", a, b)
	}
}

func TestEstimateMaxMin(t *testing.T) {
	obs := []Observation{
		{Value: 5, Prob: 0.2, Correct: true},
		{Value: 50, Prob: 0.2, Correct: false}, // incorrect: ignored
		{Value: 9, Prob: 0.2, Correct: true},
		{Value: 1, Prob: 0.2, Correct: true},
	}
	v, err := Estimate(query.Max, obs, SampleSize)
	if err != nil || v != 9 {
		t.Fatalf("MAX = %v, %v; want 9", v, err)
	}
	v, err = Estimate(query.Min, obs, SampleSize)
	if err != nil || v != 1 {
		t.Fatalf("MIN = %v, %v; want 1", v, err)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(query.Sum, nil, SampleSize); err != ErrNoObservations {
		t.Fatalf("empty sample err = %v", err)
	}
	bad := []Observation{{Value: 1, Prob: 0.5, Correct: false}}
	if _, err := Estimate(query.Avg, bad, SampleSize); err != ErrNoCorrect {
		t.Fatalf("AVG with no correct err = %v", err)
	}
	if _, err := Estimate(query.Max, bad, SampleSize); err != ErrNoCorrect {
		t.Fatalf("MAX with no correct err = %v", err)
	}
	if _, err := Estimate(query.Count, bad, CorrectOnly); err != ErrNoCorrect {
		t.Fatalf("CorrectOnly with no correct err = %v", err)
	}
	// SampleSize COUNT with no correct answers is a valid zero estimate.
	if v, err := Estimate(query.Count, bad, SampleSize); err != nil || v != 0 {
		t.Fatalf("SampleSize COUNT = %v, %v; want 0, nil", v, err)
	}
	if _, err := Estimate(query.AggFunc(99), bad, SampleSize); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}

func TestZeroProbObservationsIgnored(t *testing.T) {
	obs := []Observation{
		{Value: 10, Prob: 0, Correct: true}, // impossible draw: guard
		{Value: 10, Prob: 0.5, Correct: true},
		{Value: 10, Prob: 0.5, Correct: true},
	}
	v, err := Estimate(query.Sum, obs, SampleSize)
	if err != nil {
		t.Fatal(err)
	}
	want := (10/0.5 + 10/0.5) / 3.0
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("SUM = %v, want %v", v, want)
	}
}

// Confidence interval coverage: at 95% the BLB interval should contain the
// truth in the vast majority of trials. Bootstrap CIs are approximate, so
// the assertion is deliberately loose.
func TestMoECoverage(t *testing.T) {
	r := stats.NewRand(99)
	pop := newPopulation(r, 50, 0.8)
	truth := pop.truth(query.Sum)
	const trials = 120
	covered := 0
	for i := 0; i < trials; i++ {
		obs := pop.draw(r, 120)
		v, err := Estimate(query.Sum, obs, SampleSize)
		if err != nil {
			t.Fatal(err)
		}
		eps, err := MoE(query.Sum, obs, SampleSize, DefaultGuarantee(), r)
		if err != nil {
			t.Fatal(err)
		}
		iv := Interval{Estimate: v, MoE: eps, Confidence: 0.95}
		if iv.Contains(truth) {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 0.75 {
		t.Fatalf("coverage = %v, want ≥ 0.75", frac)
	}
}

func TestMoEShrinksWithSampleSize(t *testing.T) {
	r := stats.NewRand(21)
	pop := newPopulation(r, 50, 0.8)
	small := pop.draw(r, 60)
	large := pop.draw(r, 2000)
	eSmall, err := MoE(query.Sum, small, SampleSize, DefaultGuarantee(), r)
	if err != nil {
		t.Fatal(err)
	}
	eLarge, err := MoE(query.Sum, large, SampleSize, DefaultGuarantee(), r)
	if err != nil {
		t.Fatal(err)
	}
	if eLarge >= eSmall {
		t.Fatalf("MoE did not shrink: %v (n=60) vs %v (n=2000)", eSmall, eLarge)
	}
}

func TestMoEHigherConfidenceWiderInterval(t *testing.T) {
	r := stats.NewRand(23)
	pop := newPopulation(r, 50, 0.8)
	obs := pop.draw(r, 300)
	cfgLo := GuaranteeConfig{Confidence: 0.86, T: 3, B: 50, M: 0.6}
	cfgHi := GuaranteeConfig{Confidence: 0.98, T: 3, B: 50, M: 0.6}
	// Identical RNG streams keep the bootstrap noise comparable.
	eLo, err := MoE(query.Sum, obs, SampleSize, cfgLo, stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	eHi, err := MoE(query.Sum, obs, SampleSize, cfgHi, stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if eHi <= eLo {
		t.Fatalf("98%% MoE %v should exceed 86%% MoE %v", eHi, eLo)
	}
}

func TestMoEErrors(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := MoE(query.Sum, nil, SampleSize, DefaultGuarantee(), r); err != ErrNoObservations {
		t.Fatalf("err = %v", err)
	}
	bad := []Observation{{Value: 1, Prob: 0.5, Correct: false}, {Value: 2, Prob: 0.5, Correct: false}}
	if _, err := MoE(query.Avg, bad, SampleSize, DefaultGuarantee(), r); err != ErrNoCorrect {
		t.Fatalf("err = %v", err)
	}
}

// Theorem 2: once ε ≤ V̂·eb/(1+eb), the relative error is bounded by eb for
// any true value inside the interval.
func TestTheorem2(t *testing.T) {
	vhat, eb := 578.0, 0.01
	target := Target(vhat, eb)
	if math.Abs(target-578.0*0.01/1.01) > 1e-12 {
		t.Fatalf("target = %v", target)
	}
	if !Satisfied(vhat, target, eb) || Satisfied(vhat, target*1.01, eb) {
		t.Fatal("Satisfied boundary wrong")
	}
	if Satisfied(0, 0, eb) {
		t.Fatal("zero estimate must not satisfy termination")
	}
	// Any truth V within [V̂-ε, V̂+ε] has |V̂-V|/V ≤ eb when ε = target.
	eps := target
	for _, v := range []float64{vhat - eps, vhat, vhat + eps} {
		if rel := math.Abs(vhat-v) / v; rel > eb+1e-12 {
			t.Fatalf("relative error %v exceeds eb at V=%v", rel, v)
		}
	}
}

// Example 5 of the paper: |S|=100, V̂=578, ε=6.5, eb=1%, m=0.6 → |ΔS| ≈ 16.
func TestNextSampleSizeExample5(t *testing.T) {
	got := NextSampleSize(100, 6.5, 578, 0.01, 0.6)
	if got != 16 {
		t.Fatalf("|ΔS| = %d, want 16", got)
	}
}

func TestNextSampleSizeBoundaries(t *testing.T) {
	// Termination already satisfied → no more samples.
	if got := NextSampleSize(100, 1.0, 578, 0.01, 0.6); got != 0 {
		t.Fatalf("satisfied case = %d, want 0", got)
	}
	// Barely unsatisfied → at least 1.
	target := Target(578, 0.01)
	if got := NextSampleSize(100, target*1.0001, 578, 0.01, 0.6); got < 1 {
		t.Fatalf("tiny excess = %d, want ≥ 1", got)
	}
	// Larger ε → more samples (monotonicity).
	if NextSampleSize(100, 13, 578, 0.01, 0.6) <= NextSampleSize(100, 6.5, 578, 0.01, 0.6) {
		t.Fatal("|ΔS| not monotone in ε")
	}
	// Invalid m falls back to 0.6.
	if NextSampleSize(100, 6.5, 578, 0.01, -1) != 16 {
		t.Fatal("m fallback broken")
	}
}

func TestIntervalAccessors(t *testing.T) {
	iv := Interval{Estimate: 100, MoE: 5, Confidence: 0.95}
	if iv.Low() != 95 || iv.High() != 105 {
		t.Fatalf("bounds = [%v, %v]", iv.Low(), iv.High())
	}
	if !iv.Contains(95) || !iv.Contains(105) || iv.Contains(94.99) {
		t.Fatal("Contains wrong")
	}
	if iv.String() == "" {
		t.Fatal("String empty")
	}
}

func TestGuaranteeDefaults(t *testing.T) {
	cfg := GuaranteeConfig{}.withDefaults()
	if cfg != DefaultGuarantee() {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = GuaranteeConfig{Confidence: 2, T: -1, B: 0, M: 5}.withDefaults()
	if cfg != DefaultGuarantee() {
		t.Fatalf("sanitised = %+v", cfg)
	}
}

func TestDivisorPolicyString(t *testing.T) {
	if SampleSize.String() != "sample-size" || CorrectOnly.String() != "correct-only" {
		t.Fatal("policy names wrong")
	}
}
