package estimate

import (
	"encoding/json"
	"math"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	obs := []Observation{
		{Value: 12.5, Prob: 0.25, Correct: true},
		{Value: 0, Prob: 0.5, Correct: false},
		{Value: -3, Prob: 1, Correct: true},
	}
	data, err := json.Marshal(ToWire(obs))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var wire []WireObservation
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back, err := FromWire(wire)
	if err != nil {
		t.Fatalf("FromWire: %v", err)
	}
	if len(back) != len(obs) {
		t.Fatalf("got %d observations, want %d", len(back), len(obs))
	}
	for i := range obs {
		if back[i].Value != obs[i].Value || back[i].Prob != obs[i].Prob || back[i].Correct != obs[i].Correct {
			t.Errorf("obs[%d] = %+v, want %+v", i, back[i], obs[i])
		}
	}
}

func TestFromWireRejectsMalformed(t *testing.T) {
	bad := [][]WireObservation{
		{{V: 1, P: 0, C: true}},            // correct draw with zero probability
		{{V: 1, P: 1.5, C: true}},          // probability out of range
		{{V: 1, P: -0.1, C: false}},        // negative probability
		{{V: math.NaN(), P: 0.5, C: true}}, // non-finite value
		{{V: 1, P: math.Inf(1), C: true}},  // non-finite probability
	}
	for i, w := range bad {
		if _, err := FromWire(w); err == nil {
			t.Errorf("case %d: FromWire accepted malformed observation %+v", i, w[0])
		}
	}
}
