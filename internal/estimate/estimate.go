package estimate

import (
	"fmt"
	"math"
	"math/rand"

	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// Observation is one sampled answer after correctness validation: its
// aggregated attribute value, its per-draw probability π′, and the
// validation verdict (semantic similarity ≥ τ and all filters passed).
//
// Under sharded execution (DESIGN.md "Sharded execution") the draw comes
// from one shard's stratum: Prob is then the probability conditional on the
// stratum, and the stratum's inclusion probability rides along in
// StratumWeight so the stratified combiner can merge per-shard samples
// without side tables. The zero values (Stratum 0, StratumWeight 0) mark an
// unstratified observation, which Regroup treats as a single stratum of
// weight 1.
type Observation struct {
	Value   float64
	Prob    float64
	Correct bool

	// Stratum identifies the shard stratum the draw came from.
	Stratum int
	// StratumWeight is the inclusion probability w_h of that stratum
	// (Σ π′ over the shard's owned answers); zero means unstratified.
	StratumWeight float64
}

// DivisorPolicy selects the estimator normalisation (see DESIGN.md).
type DivisorPolicy int

const (
	// SampleSize divides by |S| and weights by the correctness indicator —
	// the provably unbiased importance-sampling form, and the default.
	SampleSize DivisorPolicy = iota
	// CorrectOnly divides by |S⁺| and sums over the validated answers only,
	// the paper's printed Eq. 7–8. It coincides with SampleSize when every
	// sampled answer validates; otherwise it overestimates by |S|/|S⁺|.
	CorrectOnly
)

// String names the policy.
func (p DivisorPolicy) String() string {
	if p == CorrectOnly {
		return "correct-only"
	}
	return "sample-size"
}

// ErrNoObservations is returned when an estimate is requested over an empty
// sample.
var ErrNoObservations = fmt.Errorf("estimate: no observations")

// ErrNoCorrect is returned when an estimator that needs at least one correct
// answer (AVG, MAX, MIN, or any CorrectOnly estimate) sees none.
var ErrNoCorrect = fmt.Errorf("estimate: no correct answers in sample")

// Estimate computes the point estimate V̂ = f̂ₐ(S) (Eq. 7–9). COUNT ignores
// observation values. MAX and MIN return the extreme value among correct
// observations — supported without an accuracy guarantee, as in §VII.
func Estimate(fn query.AggFunc, obs []Observation, pol DivisorPolicy) (float64, error) {
	if len(obs) == 0 {
		return 0, ErrNoObservations
	}
	switch fn {
	case query.Count, query.Sum:
		num, nCorrect := htSum(fn, obs)
		switch pol {
		case CorrectOnly:
			if nCorrect == 0 {
				return 0, ErrNoCorrect
			}
			return num / float64(nCorrect), nil
		default:
			return num / float64(len(obs)), nil
		}
	case query.Avg:
		// Ratio estimator (Eq. 9): divisors cancel, so AVG is identical
		// under both policies.
		sum, _ := htSum(query.Sum, obs)
		cnt, nCorrect := htSum(query.Count, obs)
		if nCorrect == 0 || cnt == 0 {
			return 0, ErrNoCorrect
		}
		return sum / cnt, nil
	case query.Max, query.Min:
		best := math.NaN()
		for _, o := range obs {
			if !o.Correct {
				continue
			}
			if math.IsNaN(best) ||
				(fn == query.Max && o.Value > best) ||
				(fn == query.Min && o.Value < best) {
				best = o.Value
			}
		}
		if math.IsNaN(best) {
			return 0, ErrNoCorrect
		}
		return best, nil
	default:
		return 0, fmt.Errorf("estimate: unsupported aggregate %v", fn)
	}
}

// htSum returns Σ_{correct} v/π′ (v = 1 for COUNT) and the number of correct
// observations.
func htSum(fn query.AggFunc, obs []Observation) (float64, int) {
	sum := 0.0
	n := 0
	for _, o := range obs {
		if !o.Correct || o.Prob <= 0 {
			continue
		}
		n++
		v := 1.0
		if fn != query.Count {
			v = o.Value
		}
		sum += v / o.Prob
	}
	return sum, n
}

// GuaranteeConfig tunes the confidence-interval machinery of §IV-C.
type GuaranteeConfig struct {
	// Confidence is 1-α (default 0.95).
	Confidence float64
	// T is the number of BLB small samples (paper: t ≥ 3).
	T int
	// B is the number of bootstrap resamples per small sample (paper: ≥50).
	B int
	// M is the BLB scale factor m ∈ [0.5, 1] (paper: 0.6).
	M float64
}

// DefaultGuarantee returns the paper's default configuration.
func DefaultGuarantee() GuaranteeConfig {
	return GuaranteeConfig{Confidence: 0.95, T: 3, B: 50, M: 0.6}
}

func (c GuaranteeConfig) withDefaults() GuaranteeConfig {
	d := DefaultGuarantee()
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = d.Confidence
	}
	if c.T <= 0 {
		c.T = d.T
	}
	if c.B <= 0 {
		c.B = d.B
	}
	if c.M <= 0 || c.M > 1 {
		c.M = d.M
	}
	return c
}

// MoE estimates the margin of error ε of the confidence interval V̂ ± ε at
// the configured confidence level using the Bag of Little Bootstraps
// (§IV-C): the sample is split into T small samples; each is bootstrapped B
// times with resamples of size |S| — the size of the full collected sample,
// so the bootstrap distribution matches the estimator actually reported;
// Eq. 11 turns the resample estimates into a σ, Eq. 10 into an ε; the final
// ε is the mean over small samples.
func MoE(fn query.AggFunc, obs []Observation, pol DivisorPolicy,
	cfg GuaranteeConfig, r *rand.Rand) (float64, error) {

	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return 0, ErrNoObservations
	}
	resampleN := len(obs)
	z := stats.ZCritical(cfg.Confidence)

	t := cfg.T
	if t > len(obs) {
		t = len(obs)
	}
	chunk := len(obs) / t
	if chunk == 0 {
		chunk = 1
	}
	var eps []float64
	for i := 0; i < t; i++ {
		lo := i * chunk
		hi := lo + chunk
		if i == t-1 {
			hi = len(obs)
		}
		small := obs[lo:hi]
		sigma, err := bootstrapSigma(fn, small, pol, resampleN, cfg.B, r)
		if err != nil {
			// A small sample without correct answers contributes no ε; skip
			// it rather than failing the whole guarantee round.
			continue
		}
		eps = append(eps, z*sigma)
	}
	if len(eps) == 0 {
		return 0, ErrNoCorrect
	}
	return stats.Mean(eps), nil
}

// bootstrapSigma estimates σ_V̂ per Eq. 11 over B resamples of size
// resampleN drawn with replacement from small.
func bootstrapSigma(fn query.AggFunc, small []Observation, pol DivisorPolicy,
	resampleN, b int, r *rand.Rand) (float64, error) {

	ests := make([]float64, 0, b)
	resample := make([]Observation, resampleN)
	for rep := 0; rep < b; rep++ {
		for i := range resample {
			resample[i] = small[r.Intn(len(small))]
		}
		v, err := Estimate(fn, resample, pol)
		if err != nil {
			continue
		}
		ests = append(ests, v)
	}
	if len(ests) < 2 {
		return 0, ErrNoCorrect
	}
	return stats.StdDev(ests), nil
}

// Target returns the Theorem 2 MoE target V̂·eb/(1+eb): once ε is at or
// below it, |V̂−V|/V ≤ eb holds with the configured confidence.
func Target(vhat, eb float64) float64 {
	return math.Abs(vhat) * eb / (1 + eb)
}

// Satisfied reports the Theorem 2 termination condition ε ≤ V̂·eb/(1+eb).
// A zero estimate never satisfies it (the target collapses to zero).
func Satisfied(vhat, moe, eb float64) bool {
	if vhat == 0 {
		return false
	}
	return moe <= Target(vhat, eb)
}

// NextSampleSize returns |ΔS| per Eq. 12: the number of additional answers
// to collect so that ε shrinks to the Theorem 2 target, assuming σ ∝ 1/√N.
// It returns at least 1 whenever the termination condition is unmet.
func NextSampleSize(curSize int, moe, vhat, eb, m float64) int {
	tgt := Target(vhat, eb)
	if tgt <= 0 || moe <= tgt {
		return 0
	}
	if m <= 0 || m > 1 {
		m = 0.6
	}
	ratio := moe / tgt
	delta := int(float64(curSize) * (math.Pow(ratio, 2*m) - 1))
	if delta < 1 {
		delta = 1
	}
	return delta
}

// Interval is a confidence interval V̂ ± ε with its confidence level.
type Interval struct {
	Estimate   float64
	MoE        float64
	Confidence float64
}

// Low returns the lower bound of the interval.
func (iv Interval) Low() float64 { return iv.Estimate - iv.MoE }

// High returns the upper bound of the interval.
func (iv Interval) High() float64 { return iv.Estimate + iv.MoE }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	return v >= iv.Low() && v <= iv.High()
}

// String renders the interval for logs and the CLI.
func (iv Interval) String() string {
	return fmt.Sprintf("%.4f ± %.4f (%.0f%%)", iv.Estimate, iv.MoE, iv.Confidence*100)
}
