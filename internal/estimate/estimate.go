package estimate

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// Observation is one sampled answer after correctness validation: its
// aggregated attribute value, its per-draw probability π′, and the
// validation verdict (semantic similarity ≥ τ and all filters passed).
//
// Under sharded execution (DESIGN.md "Sharded execution") the draw comes
// from one shard's stratum: Prob is then the probability conditional on the
// stratum, and the stratum's inclusion probability rides along in
// StratumWeight so the stratified combiner can merge per-shard samples
// without side tables. The zero values (Stratum 0, StratumWeight 0) mark an
// unstratified observation, which Regroup treats as a single stratum of
// weight 1.
type Observation struct {
	Value   float64
	Prob    float64
	Correct bool

	// Stratum identifies the shard stratum the draw came from.
	Stratum int
	// StratumWeight is the inclusion probability w_h of that stratum
	// (Σ π′ over the shard's owned answers); zero means unstratified.
	StratumWeight float64
}

// DivisorPolicy selects the estimator normalisation (see DESIGN.md).
type DivisorPolicy int

const (
	// SampleSize divides by |S| and weights by the correctness indicator —
	// the provably unbiased importance-sampling form, and the default.
	SampleSize DivisorPolicy = iota
	// CorrectOnly divides by |S⁺| and sums over the validated answers only,
	// the paper's printed Eq. 7–8. It coincides with SampleSize when every
	// sampled answer validates; otherwise it overestimates by |S|/|S⁺|.
	CorrectOnly
)

// String names the policy.
func (p DivisorPolicy) String() string {
	if p == CorrectOnly {
		return "correct-only"
	}
	return "sample-size"
}

// ErrNoObservations is returned when an estimate is requested over an empty
// sample.
var ErrNoObservations = fmt.Errorf("estimate: no observations")

// ErrNoCorrect is returned when an estimator that needs at least one correct
// answer (AVG, MAX, MIN, or any CorrectOnly estimate) sees none.
var ErrNoCorrect = fmt.Errorf("estimate: no correct answers in sample")

// Estimate computes the point estimate V̂ = f̂ₐ(S) (Eq. 7–9). COUNT ignores
// observation values. MAX and MIN return the extreme value among correct
// observations — supported without an accuracy guarantee, as in §VII.
func Estimate(fn query.AggFunc, obs []Observation, pol DivisorPolicy) (float64, error) {
	if len(obs) == 0 {
		return 0, ErrNoObservations
	}
	switch fn {
	case query.Count, query.Sum:
		num, nCorrect := htSum(fn, obs)
		switch pol {
		case CorrectOnly:
			if nCorrect == 0 {
				return 0, ErrNoCorrect
			}
			return num / float64(nCorrect), nil
		default:
			return num / float64(len(obs)), nil
		}
	case query.Avg:
		// Ratio estimator (Eq. 9): divisors cancel, so AVG is identical
		// under both policies.
		sum, _ := htSum(query.Sum, obs)
		cnt, nCorrect := htSum(query.Count, obs)
		if nCorrect == 0 || cnt == 0 {
			return 0, ErrNoCorrect
		}
		return sum / cnt, nil
	case query.Max, query.Min:
		best := math.NaN()
		for _, o := range obs {
			if !o.Correct {
				continue
			}
			if math.IsNaN(best) ||
				(fn == query.Max && o.Value > best) ||
				(fn == query.Min && o.Value < best) {
				best = o.Value
			}
		}
		if math.IsNaN(best) {
			return 0, ErrNoCorrect
		}
		return best, nil
	default:
		return 0, fmt.Errorf("estimate: unsupported aggregate %v", fn)
	}
}

// htSum returns Σ_{correct} v/π′ (v = 1 for COUNT) and the number of correct
// observations.
func htSum(fn query.AggFunc, obs []Observation) (float64, int) {
	sum := 0.0
	n := 0
	for _, o := range obs {
		if !o.Correct || o.Prob <= 0 {
			continue
		}
		n++
		v := 1.0
		if fn != query.Count {
			v = o.Value
		}
		sum += v / o.Prob
	}
	return sum, n
}

// GuaranteeConfig tunes the confidence-interval machinery of §IV-C.
type GuaranteeConfig struct {
	// Confidence is 1-α (default 0.95).
	Confidence float64
	// T is the number of BLB small samples (paper: t ≥ 3).
	T int
	// B is the number of bootstrap resamples per small sample (paper: ≥50).
	B int
	// M is the BLB scale factor m ∈ [0.5, 1] (paper: 0.6).
	M float64
}

// DefaultGuarantee returns the paper's default configuration.
func DefaultGuarantee() GuaranteeConfig {
	return GuaranteeConfig{Confidence: 0.95, T: 3, B: 50, M: 0.6}
}

func (c GuaranteeConfig) withDefaults() GuaranteeConfig {
	d := DefaultGuarantee()
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = d.Confidence
	}
	if c.T <= 0 {
		c.T = d.T
	}
	if c.B <= 0 {
		c.B = d.B
	}
	if c.M <= 0 || c.M > 1 {
		c.M = d.M
	}
	return c
}

// moeKind selects the flattened bootstrap accumulator for one (fn, policy)
// pair. The COUNT/SUM/AVG estimators are all of the form Σ termᵢ / divisor,
// so a resample estimate needs only one or two running sums over
// precomputed per-observation contributions — no Observation copies, no
// per-element branching on correctness, no division in the inner loop.
type moeKind int

const (
	// moeGeneric falls back to re-running Estimate per resample (MAX/MIN,
	// or any future aggregate without a flat form).
	moeGeneric moeKind = iota
	// moePlain divides the HT term sum by the fixed resample size
	// (COUNT/SUM under SampleSize): one accumulator.
	moePlain
	// moeByCount divides the HT term sum by the resample's correct count
	// (COUNT/SUM under CorrectOnly): two accumulators, skip when none.
	moeByCount
	// moeRatio is the AVG ratio estimator Σ v/π′ / Σ 1/π′ over correct
	// draws: two accumulators, skip when the denominator is empty.
	moeRatio
)

// moeKindOf classifies (fn, pol); ok is false for the generic fallback.
func moeKindOf(fn query.AggFunc, pol DivisorPolicy) moeKind {
	switch fn {
	case query.Count, query.Sum:
		if pol == CorrectOnly {
			return moeByCount
		}
		return moePlain
	case query.Avg:
		return moeRatio
	default:
		return moeGeneric
	}
}

// moeScratch is the reusable working memory of one MoE evaluation: the
// flattened per-observation contribution arrays and the resample estimate
// buffer. Pooled so a warm guarantee round allocates nothing — the
// guarantee loop calls MoE every round and the old per-call resample
// materialisation was 93% of warm query CPU.
type moeScratch struct {
	valTerms []float64
	cntTerms []float64
	ests     []float64
	resample []Observation // generic fallback only
}

var moePool = sync.Pool{New: func() any { return new(moeScratch) }}

// grow returns buf resized to n, reallocating only when capacity is short.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// MoE estimates the margin of error ε of the confidence interval V̂ ± ε at
// the configured confidence level using the Bag of Little Bootstraps
// (§IV-C): the sample is split into T small samples; each is bootstrapped B
// times with resamples of size |S| — the size of the full collected sample,
// so the bootstrap distribution matches the estimator actually reported;
// Eq. 11 turns the resample estimates into a σ, Eq. 10 into an ε; the final
// ε is the mean over small samples.
//
// The result is a deterministic function of (fn, obs, pol, cfg) and exactly
// one Int63 drawn from r, which seeds the internal resampling stream: a
// caller that derives r from a stable key gets a reproducible ε regardless
// of how much randomness other subsystems consumed in between.
func MoE(fn query.AggFunc, obs []Observation, pol DivisorPolicy,
	cfg GuaranteeConfig, r *rand.Rand) (float64, error) {
	return MoESeeded(fn, obs, pol, cfg, r.Int63())
}

// MoESeeded is MoE with the resampling stream seeded directly — the
// allocation-free form the guarantee loop uses (constructing a *rand.Rand
// per round costs a ~5KB source allocation; a seed is free). The engine
// derives the seed from the query seed, the aggregate function and the
// sample size, making ε independent of the draw stream's position.
func MoESeeded(fn query.AggFunc, obs []Observation, pol DivisorPolicy,
	cfg GuaranteeConfig, seed int64) (float64, error) {

	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return 0, ErrNoObservations
	}
	resampleN := len(obs)
	z := stats.ZCritical(cfg.Confidence)

	t := cfg.T
	if t > len(obs) {
		t = len(obs)
	}
	chunk := len(obs) / t
	if chunk == 0 {
		chunk = 1
	}

	sc := moePool.Get().(*moeScratch)
	defer moePool.Put(sc)
	sm := stats.NewSplitmix(seed)

	kind := moeKindOf(fn, pol)
	if kind != moeGeneric {
		sc.valTerms = grow(sc.valTerms, len(obs))
		sc.cntTerms = grow(sc.cntTerms, len(obs))
		for i, o := range obs {
			sc.valTerms[i], sc.cntTerms[i] = 0, 0
			if !o.Correct || o.Prob <= 0 {
				continue
			}
			switch kind {
			case moePlain, moeByCount:
				v := 1.0
				if fn != query.Count {
					v = o.Value
				}
				sc.valTerms[i] = v / o.Prob
				sc.cntTerms[i] = 1 // correct-draw indicator
			case moeRatio:
				sc.valTerms[i] = o.Value / o.Prob
				sc.cntTerms[i] = 1 / o.Prob
			}
		}
	}

	epsSum, epsN := 0.0, 0
	for i := 0; i < t; i++ {
		lo := i * chunk
		hi := lo + chunk
		if i == t-1 {
			hi = len(obs)
		}
		var sigma float64
		var err error
		if kind == moeGeneric {
			sigma, err = sc.genericSigma(fn, obs[lo:hi], pol, resampleN, cfg.B, &sm)
		} else {
			sigma, err = sc.flatSigma(kind, lo, hi, resampleN, cfg.B, &sm)
		}
		if err != nil {
			// A small sample without correct answers contributes no ε; skip
			// it rather than failing the whole guarantee round.
			continue
		}
		epsSum += z * sigma
		epsN++
	}
	if epsN == 0 {
		return 0, ErrNoCorrect
	}
	return epsSum / float64(epsN), nil
}

// flatSigma estimates σ_V̂ per Eq. 11 over b resamples of size resampleN
// drawn with replacement from the small sample [lo,hi), using the
// precomputed contribution arrays: each resample element costs one bounded
// splitmix draw and one or two adds.
func (sc *moeScratch) flatSigma(kind moeKind, lo, hi, resampleN, b int, sm *stats.Splitmix) (float64, error) {
	w := hi - lo
	ests := sc.ests[:0]
	for rep := 0; rep < b; rep++ {
		if kind == moePlain {
			sSum := 0.0
			for j := 0; j < resampleN; j++ {
				sSum += sc.valTerms[lo+sm.Intn(w)]
			}
			ests = append(ests, sSum/float64(resampleN))
			continue
		}
		sSum, cSum := 0.0, 0.0
		for j := 0; j < resampleN; j++ {
			idx := lo + sm.Intn(w)
			sSum += sc.valTerms[idx]
			cSum += sc.cntTerms[idx]
		}
		if cSum == 0 {
			continue // no correct draws in this resample: no estimate
		}
		ests = append(ests, sSum/cSum)
	}
	sc.ests = ests
	if len(ests) < 2 {
		return 0, ErrNoCorrect
	}
	return stats.StdDev(ests), nil
}

// genericSigma is flatSigma for aggregates without a flat accumulator form:
// it materialises each resample (into a reused buffer) and re-runs the full
// estimator.
func (sc *moeScratch) genericSigma(fn query.AggFunc, small []Observation, pol DivisorPolicy,
	resampleN, b int, sm *stats.Splitmix) (float64, error) {

	if cap(sc.resample) < resampleN {
		sc.resample = make([]Observation, resampleN)
	}
	resample := sc.resample[:resampleN]
	ests := sc.ests[:0]
	for rep := 0; rep < b; rep++ {
		for i := range resample {
			resample[i] = small[sm.Intn(len(small))]
		}
		v, err := Estimate(fn, resample, pol)
		if err != nil {
			continue
		}
		ests = append(ests, v)
	}
	sc.ests = ests
	if len(ests) < 2 {
		return 0, ErrNoCorrect
	}
	return stats.StdDev(ests), nil
}

// Target returns the Theorem 2 MoE target V̂·eb/(1+eb): once ε is at or
// below it, |V̂−V|/V ≤ eb holds with the configured confidence.
func Target(vhat, eb float64) float64 {
	return math.Abs(vhat) * eb / (1 + eb)
}

// Satisfied reports the Theorem 2 termination condition ε ≤ V̂·eb/(1+eb).
// A zero estimate never satisfies it (the target collapses to zero).
func Satisfied(vhat, moe, eb float64) bool {
	if vhat == 0 {
		return false
	}
	return moe <= Target(vhat, eb)
}

// NextSampleSize returns |ΔS| per Eq. 12: the number of additional answers
// to collect so that ε shrinks to the Theorem 2 target, assuming σ ∝ 1/√N.
// It returns at least 1 whenever the termination condition is unmet.
func NextSampleSize(curSize int, moe, vhat, eb, m float64) int {
	tgt := Target(vhat, eb)
	if tgt <= 0 || moe <= tgt {
		return 0
	}
	if m <= 0 || m > 1 {
		m = 0.6
	}
	ratio := moe / tgt
	delta := int(float64(curSize) * (math.Pow(ratio, 2*m) - 1))
	if delta < 1 {
		delta = 1
	}
	return delta
}

// Interval is a confidence interval V̂ ± ε with its confidence level.
type Interval struct {
	Estimate   float64
	MoE        float64
	Confidence float64
}

// Low returns the lower bound of the interval.
func (iv Interval) Low() float64 { return iv.Estimate - iv.MoE }

// High returns the upper bound of the interval.
func (iv Interval) High() float64 { return iv.Estimate + iv.MoE }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	return v >= iv.Low() && v <= iv.High()
}

// String renders the interval for logs and the CLI.
func (iv Interval) String() string {
	return fmt.Sprintf("%.4f ± %.4f (%.0f%%)", iv.Estimate, iv.MoE, iv.Confidence*100)
}
