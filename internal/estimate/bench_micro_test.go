package estimate

import (
	"testing"

	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// Micro-benchmarks of the estimation layer: point estimates and the BLB
// margin of error, which dominate the guarantee step (S3).

func benchObservations(b *testing.B, n int) []Observation {
	b.Helper()
	r := stats.NewRand(7)
	pop := newPopulation(r, 60, 0.7)
	return pop.draw(r, n)
}

func BenchmarkEstimateSum1k(b *testing.B) {
	obs := benchObservations(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(query.Sum, obs, SampleSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateAvg1k(b *testing.B) {
	obs := benchObservations(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(query.Avg, obs, SampleSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMoEBLB1k(b *testing.B) {
	obs := benchObservations(b, 1000)
	r := stats.NewRand(3)
	cfg := DefaultGuarantee()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MoE(query.Sum, obs, SampleSize, cfg, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNextSampleSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NextSampleSize(1000, 50, 578, 0.01, 0.6)
	}
}
