package estimate

import "kgaq/internal/query"

// This file carries the multi-aggregate face of the Horvitz–Thompson
// estimators: the paper's Eq. 7–9 all consume the same semantic-aware
// sample, so one drawn answer can feed COUNT, SUM(price) and AVG(price)
// simultaneously. A MultiObservation shares the expensive per-draw facts —
// the visiting probability π′ and the validated correctness verdict —
// across every aggregate target, while each target contributes only its own
// attribute value. Project lowers a multi-target sample onto one target's
// classic observation list, so every single-target estimator (plain or
// stratified) applies unchanged and keeps its bias/consistency properties.

// MultiObservation is one sampled answer scored against several aggregate
// targets at once. Prob, Correct and the stratum fields have exactly the
// Observation semantics (Correct is the semantic + filter verdict, shared
// by all targets); Values[k] / Has[k] carry target k's attribute value and
// whether the answer has that attribute at all. A COUNT(*) target occupies
// a slot with Has[k] == false throughout — Project ignores values for
// COUNT.
type MultiObservation struct {
	Prob    float64
	Correct bool

	// Stratum / StratumWeight identify the shard stratum the draw came
	// from, as on Observation; zero StratumWeight means unstratified.
	Stratum       int
	StratumWeight float64

	// Values[k] is target k's attribute value when Has[k]; parallel slices
	// sized to the target count.
	Values []float64
	Has    []bool
}

// Project lowers a multi-target sample onto target k's single-target
// observation list for aggregate function fn. The shared verdict carries
// over; an answer missing target k's attribute cannot contribute to
// SUM/AVG/MAX/MIN (its Correct is cleared, mirroring the single-target
// pipeline), while COUNT ignores attribute presence entirely. k < 0
// addresses a valueless target (COUNT(*)).
func Project(obs []MultiObservation, k int, fn query.AggFunc) []Observation {
	return ProjectInto(nil, obs, k, fn)
}

// ProjectInto is Project writing into dst (reused when its capacity
// suffices), so a multi-aggregate guarantee loop can project every spec of
// every round through one scratch buffer instead of allocating a fresh
// observation list per (spec, round).
func ProjectInto(dst []Observation, obs []MultiObservation, k int, fn query.AggFunc) []Observation {
	if cap(dst) < len(obs) {
		dst = make([]Observation, len(obs))
	}
	dst = dst[:len(obs)]
	for i, m := range obs {
		o := Observation{
			Prob:          m.Prob,
			Correct:       m.Correct,
			Stratum:       m.Stratum,
			StratumWeight: m.StratumWeight,
		}
		if k >= 0 && k < len(m.Values) {
			o.Value = m.Values[k]
			if fn != query.Count && !m.Has[k] {
				o.Correct = false
			}
		} else if fn != query.Count {
			o.Correct = false // a valueless target feeds no value estimator
		}
		dst[i] = o
	}
	return dst
}
