package estimate

import (
	"math"
	"math/rand"
	"testing"

	"kgaq/internal/query"
)

// multiFixture builds a multi-target sample with targets
// [COUNT(*), SUM(price), AVG(price)] alongside the equivalent
// independently-constructed single-target observation lists.
func multiFixture(n int, r *rand.Rand) (multi []MultiObservation, count, sum []Observation) {
	for i := 0; i < n; i++ {
		prob := 0.01 + r.Float64()
		correct := r.Intn(4) != 0
		has := r.Intn(5) != 0
		val := 100 * r.Float64()
		m := MultiObservation{
			Prob: prob, Correct: correct,
			Values: []float64{0, val, val},
			Has:    []bool{false, has, has},
		}
		multi = append(multi, m)
		count = append(count, Observation{Prob: prob, Correct: correct})
		sum = append(sum, Observation{Prob: prob, Correct: correct && has, Value: val})
	}
	return multi, count, sum
}

// The projection of a multi-target sample must be indistinguishable from
// the observation list the single-target pipeline would have built — same
// estimates, same ErrNoCorrect behaviour.
func TestProjectMatchesSingleTarget(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	multi, count, sum := multiFixture(200, r)

	for _, tc := range []struct {
		name string
		k    int
		fn   query.AggFunc
		want []Observation
	}{
		{"count-star", 0, query.Count, count},
		{"sum", 1, query.Sum, sum},
		{"avg", 2, query.Avg, sum},
		{"count-star-negative-index", -1, query.Count, count},
	} {
		got := Project(multi, tc.k, tc.fn)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: projected %d obs, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range got {
			w := tc.want[i]
			if got[i].Correct != w.Correct || got[i].Prob != w.Prob {
				t.Fatalf("%s: obs %d = %+v, want %+v", tc.name, i, got[i], w)
			}
			if tc.fn != query.Count && got[i].Value != w.Value {
				t.Fatalf("%s: obs %d value = %v, want %v", tc.name, i, got[i].Value, w.Value)
			}
		}
		ve, err1 := Estimate(tc.fn, got, SampleSize)
		vw, err2 := Estimate(tc.fn, tc.want, SampleSize)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", tc.name, err1, err2)
		}
		if err1 == nil && math.Abs(ve-vw) > 1e-12*math.Abs(vw) {
			t.Fatalf("%s: estimate %v, want %v", tc.name, ve, vw)
		}
	}
}

// A target the answer lacks must not contribute to SUM but must still
// count for COUNT — the single-target missing-attribute rule, per target.
func TestProjectMissingAttribute(t *testing.T) {
	multi := []MultiObservation{
		{Prob: 0.5, Correct: true, Values: []float64{10}, Has: []bool{false}},
	}
	if obs := Project(multi, 0, query.Sum); obs[0].Correct {
		t.Fatal("SUM projection kept an answer without the attribute")
	}
	if obs := Project(multi, 0, query.Count); !obs[0].Correct {
		t.Fatal("COUNT projection dropped a correct answer")
	}
	// An out-of-range target index is a valueless target.
	if obs := Project(multi, 3, query.Avg); obs[0].Correct {
		t.Fatal("AVG projection of a valueless target kept Correct")
	}
}

// Stratum identity must survive projection so the stratified combiner can
// regroup the projected sample exactly as it would the single-target one.
func TestProjectPreservesStrata(t *testing.T) {
	multi := []MultiObservation{
		{Prob: 0.5, Correct: true, Stratum: 2, StratumWeight: 0.25, Values: []float64{3}, Has: []bool{true}},
		{Prob: 0.5, Correct: true, Stratum: 5, StratumWeight: 0.75, Values: []float64{4}, Has: []bool{true}},
	}
	obs := Project(multi, 0, query.Sum)
	strata := Regroup(obs)
	if len(strata) != 2 {
		t.Fatalf("regrouped into %d strata, want 2", len(strata))
	}
	if strata[0].Weight != 0.25 || strata[1].Weight != 0.75 {
		t.Fatalf("stratum weights lost: %+v", strata)
	}
}
