package estimate

import (
	"math"
	"math/rand"
	"testing"

	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// stratify cuts a population into n hash-strata the way internal/shard
// partitions a candidate-answer space: each answer owned by one stratum,
// per-stratum probabilities conditional, weights summing to 1.
type stratified struct {
	pop    *population
	weight []float64
	index  [][]int
	alias  []*stats.Alias
}

func stratifyPop(pop *population, n int) *stratified {
	s := &stratified{pop: pop, weight: make([]float64, n), index: make([][]int, n)}
	for i := range pop.values {
		h := (i * 2654435761) % n
		s.index[h] = append(s.index[h], i)
		s.weight[h] += pop.probs[i]
	}
	s.alias = make([]*stats.Alias, n)
	for h := range s.index {
		if len(s.index[h]) == 0 {
			continue
		}
		cond := make([]float64, len(s.index[h]))
		for k, i := range s.index[h] {
			cond[k] = pop.probs[i] / s.weight[h]
		}
		s.alias[h] = stats.NewAlias(cond)
	}
	return s
}

// draw samples per-stratum observations with conditional probabilities.
func (s *stratified) draw(r *rand.Rand, perStratum int) []Stratum {
	var out []Stratum
	for h := range s.index {
		if s.alias[h] == nil {
			continue
		}
		st := Stratum{Weight: s.weight[h]}
		for d := 0; d < perStratum; d++ {
			k := s.alias[h].Draw(r)
			i := s.index[h][k]
			st.Obs = append(st.Obs, Observation{
				Value:         s.pop.values[i],
				Prob:          s.pop.probs[i] / s.weight[h],
				Correct:       s.pop.correct[i],
				Stratum:       h,
				StratumWeight: s.weight[h],
			})
		}
		out = append(out, st)
	}
	return out
}

// The merged stratified estimator is unbiased for COUNT and SUM, exactly
// like its single-shard counterpart (Lemma 3/4 carried across the merge).
func TestStratifiedUnbiasedSumCount(t *testing.T) {
	r := stats.NewRand(42)
	pop := newPopulation(r, 40, 0.7)
	for _, shards := range []int{2, 8} {
		s := stratifyPop(pop, shards)
		for _, fn := range []query.AggFunc{query.Sum, query.Count} {
			truth := pop.truth(fn)
			const trials = 4000
			acc := 0.0
			for i := 0; i < trials; i++ {
				strata := s.draw(r, 40/shards+1)
				v, err := EstimateStratified(fn, strata, SampleSize)
				if err != nil {
					t.Fatal(err)
				}
				acc += v
			}
			mean := acc / trials
			if rel := math.Abs(mean-truth) / truth; rel > 0.02 {
				t.Errorf("%s @%d shards: mean %v vs truth %v (rel %v)", fn, shards, mean, truth, rel)
			}
		}
	}
}

// A single stratum of weight 1 reproduces the plain estimator bit for bit,
// for every aggregate and both divisor policies.
func TestStratifiedSingleStratumEquivalence(t *testing.T) {
	r := stats.NewRand(11)
	pop := newPopulation(r, 30, 0.6)
	obs := pop.draw(r, 200)
	for _, fn := range []query.AggFunc{query.Count, query.Sum, query.Avg, query.Max, query.Min} {
		for _, pol := range []DivisorPolicy{SampleSize, CorrectOnly} {
			want, werr := Estimate(fn, obs, pol)
			got, gerr := EstimateStratified(fn, []Stratum{{Weight: 1, Obs: obs}}, pol)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s/%s: err %v vs %v", fn, pol, werr, gerr)
			}
			if werr == nil && got != want {
				t.Fatalf("%s/%s: stratified %v != plain %v", fn, pol, got, want)
			}
		}
	}
}

// Regroup reassembles flat observations into the strata they came from and
// folds unsharded observations into one weight-1 stratum.
func TestRegroup(t *testing.T) {
	r := stats.NewRand(5)
	pop := newPopulation(r, 24, 0.7)
	s := stratifyPop(pop, 3)
	strata := s.draw(r, 10)
	var flat []Observation
	for _, st := range strata {
		flat = append(flat, st.Obs...)
	}
	re := Regroup(flat)
	if len(re) != len(strata) {
		t.Fatalf("regrouped %d strata, want %d", len(re), len(strata))
	}
	for i := range re {
		if re[i].Weight != strata[i].Weight || len(re[i].Obs) != len(strata[i].Obs) {
			t.Fatalf("stratum %d mismatch after regroup", i)
		}
	}
	v1, err1 := EstimateStratified(query.Sum, strata, SampleSize)
	v2, err2 := EstimateStratified(query.Sum, re, SampleSize)
	if err1 != nil || err2 != nil || v1 != v2 {
		t.Fatalf("regrouped estimate %v (%v) vs %v (%v)", v2, err2, v1, err1)
	}

	plain := Regroup(pop.draw(r, 50))
	if len(plain) != 1 || plain[0].Weight != 1 {
		t.Fatalf("unsharded draws regrouped to %+v, want one weight-1 stratum", plain)
	}
}

// The stratified bootstrap interval covers the truth at roughly the
// configured confidence.
func TestStratifiedMoECoverage(t *testing.T) {
	r := stats.NewRand(23)
	pop := newPopulation(r, 40, 0.8)
	s := stratifyPop(pop, 4)
	truth := pop.truth(query.Sum)
	const trials = 200
	covered := 0
	for i := 0; i < trials; i++ {
		strata := s.draw(r, 60)
		v, err := EstimateStratified(query.Sum, strata, SampleSize)
		if err != nil {
			t.Fatal(err)
		}
		eps, err := MoEStratified(query.Sum, strata, SampleSize, DefaultGuarantee())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-truth) <= eps {
			covered++
		}
	}
	if rate := float64(covered) / trials; rate < 0.88 {
		t.Fatalf("stratified 95%% interval covered truth %.0f%% of the time", rate*100)
	}
}

// Stratification with Neyman-style per-stratum sampling cannot be worse
// than plain sampling in expectation; sanity-check that the stratified
// estimator's spread is no larger than the plain one's at equal total size.
func TestStratifiedVarianceNoWorse(t *testing.T) {
	r := stats.NewRand(31)
	pop := newPopulation(r, 60, 0.75)
	s := stratifyPop(pop, 6)
	const trials, total = 1500, 60
	var plainVar, stratVar float64
	truth := pop.truth(query.Sum)
	for i := 0; i < trials; i++ {
		v1, _ := Estimate(query.Sum, pop.draw(r, total), SampleSize)
		plainVar += (v1 - truth) * (v1 - truth)
		v2, _ := EstimateStratified(query.Sum, s.draw(r, total/6), SampleSize)
		stratVar += (v2 - truth) * (v2 - truth)
	}
	if stratVar > plainVar*1.1 { // 10% slack for sampling noise
		t.Fatalf("stratified MSE %v exceeds plain MSE %v", stratVar/trials, plainVar/trials)
	}
}

func TestAllocateDraws(t *testing.T) {
	// Proportional fallback while no variance signal exists.
	alloc := AllocateDraws(100, []StratumStats{{Weight: 0.5}, {Weight: 0.3}, {Weight: 0.2}})
	if sum(alloc) != 100 {
		t.Fatalf("allocation %v does not sum to 100", alloc)
	}
	if alloc[0] != 50 || alloc[1] != 30 || alloc[2] != 20 {
		t.Fatalf("proportional allocation = %v", alloc)
	}

	// Neyman: draws follow w·σ.
	alloc = AllocateDraws(100, []StratumStats{
		{Weight: 0.5, Sigma: 0}, {Weight: 0.25, Sigma: 8}, {Weight: 0.25, Sigma: 2}})
	if sum(alloc) != 100 {
		t.Fatalf("allocation %v does not sum to 100", alloc)
	}
	if alloc[1] <= alloc[2] {
		t.Fatalf("high-variance stratum got %d ≤ low-variance %d", alloc[1], alloc[2])
	}
	if alloc[0] < 1 {
		t.Fatal("zero-variance stratum lost its floor")
	}

	// Floors: every stratum sampled when the budget allows.
	alloc = AllocateDraws(3, []StratumStats{{Weight: 0.98}, {Weight: 0.01}, {Weight: 0.01}})
	for i, a := range alloc {
		if a < 1 {
			t.Fatalf("stratum %d got no draw: %v", i, alloc)
		}
	}
	if got := AllocateDraws(0, []StratumStats{{Weight: 1}}); sum(got) != 0 {
		t.Fatalf("zero budget allocated %v", got)
	}
}

func TestStratumSigma(t *testing.T) {
	obs := []Observation{
		{Value: 10, Prob: 0.5, Correct: true},
		{Value: 10, Prob: 0.5, Correct: true},
	}
	if s := StratumSigma(query.Sum, obs); s != 0 {
		t.Fatalf("identical terms: sigma = %v, want 0", s)
	}
	obs = append(obs, Observation{Value: 90, Prob: 0.1, Correct: true})
	if s := StratumSigma(query.Sum, obs); s <= 0 {
		t.Fatalf("spread terms: sigma = %v, want > 0", s)
	}
	if s := StratumSigma(query.Sum, obs[:1]); s != 0 {
		t.Fatalf("single draw: sigma = %v, want 0", s)
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
