// Package estimate implements the approximate-result estimation and
// accuracy-guarantee layers of the paper (§IV-B, §IV-C): Horvitz–Thompson
// style estimators for COUNT and SUM (unbiased) and AVG (consistent) over
// the non-uniform sample drawn from the stationary answer distribution π′,
// confidence intervals via the Central Limit Theorem with the Bag of Little
// Bootstraps variance estimate, the Theorem 2 termination test, and the
// error-based sample-size configuration of Eq. 12.
//
// The package also provides the cross-shard side of sharded execution
// (DESIGN.md "Sharded execution"): per-shard samples arrive as disjoint
// strata of the candidate-answer space, EstimateStratified merges them into
// one unbiased estimate with the shard inclusion probabilities folded into
// each Observation's conditional draw probability, MoEStratified computes
// the closed-form stratified CLT margin of error, and AllocateDraws splits
// the next round's draws across strata by Neyman allocation.
//
// Multi-aggregate execution rides the same machinery: a MultiObservation
// carries one draw's shared facts (π′, correctness verdict, stratum) plus
// per-target attribute values, and Project lowers it onto any single
// target's classic observation list, so one sample feeds COUNT, SUM and
// AVG accumulators at once without touching the estimators.
package estimate
