package estimate

import (
	"math"
	"sort"
	"sync"

	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// This file implements the cross-shard combiner of the sharded execution
// model (DESIGN.md "Sharded execution"): per-shard samples are disjoint
// strata of the candidate-answer space, each drawn from its own conditional
// distribution π′|shard, and the merged estimate is the classic stratified
// Horvitz–Thompson form
//
//	V̂ = Σ_h  f̂(S_h),   f̂(S_h) = (1/n_h) Σ_{i∈S_h} v_i·1{correct}/p_i
//
// where p_i = π′(i)/w_h is the draw probability conditional on the stratum
// and w_h = Σ π′(owned answers) is the shard's inclusion probability. The
// inclusion probability is folded into the conditional p_i carried on each
// Observation, so each shard term estimates its stratum total
// E[f̂(S_h)] = Σ_{u∈A_h} v_u·1{correct} without bias, whatever n_h the
// allocator chose — the merge is unbiased for COUNT and SUM and consistent
// for AVG, exactly the properties the single-shard estimators carry.

// Stratum is one shard's sample: its inclusion probability and the
// observations drawn from its conditional distribution.
type Stratum struct {
	// Weight is the stratum's inclusion probability w_h ∈ (0, 1]; the
	// weights of a query's strata sum to 1.
	Weight float64
	// Obs are the draws from the stratum's conditional distribution
	// (Observation.Prob is conditional on the stratum).
	Obs []Observation
}

// Regroup reassembles flat observations into strata using the Stratum and
// StratumWeight fields, in ascending stratum order. Observations with a
// zero StratumWeight (the unsharded default) land in one stratum of weight
// 1, so a regrouped-then-combined unstratified sample reproduces the plain
// estimator.
func Regroup(obs []Observation) []Stratum {
	byID := map[int]*Stratum{}
	var ids []int
	for _, o := range obs {
		w := o.StratumWeight
		if w <= 0 {
			w = 1
		}
		st, ok := byID[o.Stratum]
		if !ok {
			st = &Stratum{Weight: w}
			byID[o.Stratum] = st
			ids = append(ids, o.Stratum)
		}
		st.Obs = append(st.Obs, o)
	}
	sort.Ints(ids)
	out := make([]Stratum, len(ids))
	for k, id := range ids {
		out[k] = *byID[id]
	}
	return out
}

// EstimateStratified computes the merged point estimate over per-shard
// strata. COUNT and SUM merge as Σ_h f̂(S_h) over conditional-probability
// HT means; AVG is the ratio of the stratified SUM and COUNT; MAX and MIN
// are the extreme over every stratum's correct observations (weights play
// no role for extremes).
//
// A stratum without draws contributes zero, biasing the merge low by that
// stratum's share — callers own coverage. The engine guarantees it by
// flooring the first round at the stratum count (core's firstSample) and
// every later allocation at one draw per stratum (AllocateDraws); a caller
// driving this combiner directly with fewer draws than strata inherits the
// bias.
func EstimateStratified(fn query.AggFunc, strata []Stratum, pol DivisorPolicy) (float64, error) {
	total := 0
	for _, st := range strata {
		total += len(st.Obs)
	}
	if total == 0 {
		return 0, ErrNoObservations
	}
	switch fn {
	case query.Count, query.Sum:
		v, _, err := stratifiedSum(fn, strata, pol)
		return v, err
	case query.Avg:
		// Ratio estimator over the stratified totals; divisor policy cancels
		// in spirit but each component uses the requested policy.
		sum, nCorrect, _ := stratifiedSumLenient(query.Sum, strata, pol)
		cnt, _, _ := stratifiedSumLenient(query.Count, strata, pol)
		if nCorrect == 0 || cnt == 0 {
			return 0, ErrNoCorrect
		}
		return sum / cnt, nil
	case query.Max, query.Min:
		flat := make([]Observation, 0, total)
		for _, st := range strata {
			flat = append(flat, st.Obs...)
		}
		return Estimate(fn, flat, pol)
	default:
		return 0, ErrNoObservations
	}
}

// stratifiedSum merges COUNT/SUM strata under the policy, failing with
// ErrNoCorrect when CorrectOnly sees no correct draw anywhere.
func stratifiedSum(fn query.AggFunc, strata []Stratum, pol DivisorPolicy) (float64, int, error) {
	v, nCorrect, _ := stratifiedSumLenient(fn, strata, pol)
	if pol == CorrectOnly && nCorrect == 0 {
		return 0, 0, ErrNoCorrect
	}
	return v, nCorrect, nil
}

// stratifiedSumLenient is stratifiedSum without the CorrectOnly failure:
// strata with no correct draws simply contribute zero.
func stratifiedSumLenient(fn query.AggFunc, strata []Stratum, pol DivisorPolicy) (float64, int, int) {
	acc := 0.0
	nCorrect := 0
	n := 0
	for _, st := range strata {
		if len(st.Obs) == 0 {
			continue
		}
		n += len(st.Obs)
		// The stratum's inclusion probability is already folded into the
		// conditional draw probabilities, so the per-stratum HT mean
		// estimates the stratum total directly; the merge is a plain sum.
		num, c := htSum(fn, st.Obs)
		nCorrect += c
		switch pol {
		case CorrectOnly:
			if c > 0 {
				acc += num / float64(c)
			}
		default:
			acc += num / float64(len(st.Obs))
		}
	}
	return acc, nCorrect, n
}

// MoEStratified estimates the margin of error of the stratified estimate
// with the closed-form stratified CLT variance: the strata are independent,
// so Var(V̂) = Σ_h s_h²/n_h with s_h the sample standard deviation of
// stratum h's per-draw HT terms, and ε = z·σ at the configured confidence.
// This is where the stratified decomposition pays on the guarantee step —
// one O(|S|) pass replaces the unsharded path's T·B bootstrap resamples
// (the BLB exists to see the pooled sample's heavy HT tail; the strata
// localise that tail, and each stratum term is a plain mean of i.i.d.
// draws whose variance the within-stratum s_h captures directly). AVG uses
// the delta-method linearisation of the ratio. Strata too small to carry a
// variance signal (a single draw) are pooled and assessed jointly, erring
// toward a wider interval.
//
// MAX and MIN carry no guarantee (§VII) and report ErrNoCorrect.
func MoEStratified(fn query.AggFunc, strata []Stratum, pol DivisorPolicy,
	cfg GuaranteeConfig) (float64, error) {

	cfg = cfg.withDefaults()
	total := 0
	for _, st := range strata {
		total += len(st.Obs)
	}
	if total == 0 {
		return 0, ErrNoObservations
	}
	if fn == query.Max || fn == query.Min {
		return 0, ErrNoCorrect
	}

	// Per-stratum HT terms for the numerator (value) and, for AVG's
	// linearisation, the denominator (correctness indicator). The term
	// buffers come from the shared estimator pool: this merge runs once per
	// guarantee round per spec, and reallocating them was a measurable slice
	// of the sharded round's allocations.
	sumFn := fn
	if fn == query.Avg {
		sumFn = query.Sum
	}
	sc := stratPool.Get().(*stratScratch)
	defer stratPool.Put(sc)
	variance := 0.0
	pooledS, pooledC := sc.pooledS[:0], sc.pooledC[:0] // single-draw strata, assessed jointly
	var ratio float64
	var denom float64
	if fn == query.Avg {
		s, nCorrect, _ := stratifiedSumLenient(query.Sum, strata, pol)
		c, _, _ := stratifiedSumLenient(query.Count, strata, pol)
		if nCorrect == 0 || c == 0 {
			return 0, ErrNoCorrect
		}
		ratio, denom = s/c, c
	}
	anyCorrect := false
	for _, st := range strata {
		n := len(st.Obs)
		if n == 0 {
			continue
		}
		sc.sTerms = grow(sc.sTerms, n)
		sc.cTerms = grow(sc.cTerms, n)
		sTerms, cTerms := sc.sTerms, sc.cTerms
		for i := range sTerms {
			sTerms[i], cTerms[i] = 0, 0
		}
		for i, o := range st.Obs {
			if !o.Correct || o.Prob <= 0 {
				continue
			}
			anyCorrect = true
			v := 1.0
			if sumFn != query.Count {
				v = o.Value
			}
			sTerms[i] = v / o.Prob
			cTerms[i] = 1 / o.Prob
		}
		if n < 2 {
			pooledS = append(pooledS, sTerms[0])
			pooledC = append(pooledC, cTerms[0])
			continue
		}
		variance += stratumVariance(fn, sTerms, cTerms, ratio) / float64(n)
	}
	if !anyCorrect {
		return 0, ErrNoCorrect
	}
	if len(pooledS) > 0 {
		// Single-draw strata cannot estimate their own variance; treat their
		// union as one proportionally sampled pseudo-stratum. The pooled
		// spread includes between-stratum variation, so the interval errs
		// wide. A lone single-draw stratum contributes its squared term —
		// maximally conservative — which the allocator's next round resolves.
		if m := len(pooledS); m >= 2 {
			variance += stratumVariance(fn, pooledS, pooledC, ratio) / float64(m)
		} else {
			variance += pooledS[0] * pooledS[0]
		}
	}
	sc.pooledS, sc.pooledC = pooledS, pooledC // retain growth for reuse
	if fn == query.Avg {
		variance /= denom * denom
	}
	if variance < 0 {
		variance = 0 // delta-method cross terms can dip below zero numerically
	}
	return stats.ZCritical(cfg.Confidence) * math.Sqrt(variance), nil
}

// stratumVariance returns the per-draw variance of one stratum's estimator
// terms: the plain HT-term sample variance for COUNT and SUM, the
// delta-method combination Var(s) + R²·Var(c) − 2R·Cov(s,c) for AVG.
func stratumVariance(fn query.AggFunc, sTerms, cTerms []float64, ratio float64) float64 {
	n := float64(len(sTerms))
	var meanS, meanC float64
	for i := range sTerms {
		meanS += sTerms[i]
		meanC += cTerms[i]
	}
	meanS /= n
	meanC /= n
	var varS, varC, cov float64
	for i := range sTerms {
		ds, dc := sTerms[i]-meanS, cTerms[i]-meanC
		varS += ds * ds
		varC += dc * dc
		cov += ds * dc
	}
	varS /= n - 1
	varC /= n - 1
	cov /= n - 1
	if fn != query.Avg {
		return varS
	}
	return varS + ratio*ratio*varC - 2*ratio*cov
}

// stratScratch is the reusable working memory of the stratified merge,
// pooled like moeScratch so a warm sharded guarantee round allocates
// nothing in the combiner.
type stratScratch struct {
	sTerms, cTerms, pooledS, pooledC []float64
}

var stratPool = sync.Pool{New: func() any { return new(stratScratch) }}

// StratumSigma returns the sample standard deviation of a stratum's
// per-draw Horvitz–Thompson terms v·1{correct}/π′ — the variance signal the
// Neyman allocator weighs strata by. COUNT uses v = 1; a stratum with fewer
// than two draws reports zero (no signal yet). Computed in two streaming
// passes (no term buffer): the allocator refreshes this per stratum per
// round.
func StratumSigma(fn query.AggFunc, obs []Observation) float64 {
	if len(obs) < 2 {
		return 0
	}
	term := func(o Observation) float64 {
		if !o.Correct || o.Prob <= 0 {
			return 0
		}
		v := 1.0
		if fn != query.Count {
			v = o.Value // SUM terms; for AVG the numerator dominates the ratio's variance
		}
		return v / o.Prob
	}
	mean := 0.0
	for _, o := range obs {
		mean += term(o)
	}
	mean /= float64(len(obs))
	acc := 0.0
	for _, o := range obs {
		d := term(o) - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(obs)-1))
}

// StratumStats carries one stratum's allocation inputs.
type StratumStats struct {
	// Weight is the stratum's inclusion probability w_h.
	Weight float64
	// Sigma is the stratum's per-draw HT-term standard deviation (see
	// StratumSigma); zero means no variance signal yet.
	Sigma float64
}

// AllocateDraws splits a round's additional draws across strata. With
// variance signals it uses Neyman allocation — shares proportional to
// w_h·σ_h, which minimises the variance of the merged estimate for a fixed
// total — and falls back to proportional allocation (shares ∝ w_h, the
// behaviour of unstratified sampling in expectation) while σ is unknown.
// Every stratum is floored at one draw whenever total ≥ len(stats); when
// total is smaller than the stratum count the floors cannot hold and the
// highest-share strata win the draws — callers needing full coverage (the
// stratified estimator does; see EstimateStratified) must size the round
// at len(stats) or more, as core's firstSample does. The returned counts
// sum exactly to total (largest-remainder rounding, deterministic).
func AllocateDraws(total int, stats []StratumStats) []int {
	return AllocateDrawsInto(nil, total, stats)
}

// allocScratch is the pooled working memory of AllocateDrawsInto: the
// Neyman shares and the largest-remainder worklist, one slot per stratum.
type allocScratch struct {
	shares []float64
	fracs  []frac
}

type frac struct {
	idx int
	rem float64
}

var allocPool = sync.Pool{New: func() any { return new(allocScratch) }}

// AllocateDrawsInto is AllocateDraws writing into dst (reused when its
// capacity suffices) so the per-round sharded draw path reuses one
// allocation buffer across rounds; the internal share/remainder scratch is
// pooled, so a warm call allocates nothing.
func AllocateDrawsInto(dst []int, total int, stats []StratumStats) []int {
	if cap(dst) < len(stats) {
		dst = make([]int, len(stats))
	}
	out := dst[:len(stats)]
	for i := range out {
		out[i] = 0
	}
	if total <= 0 || len(stats) == 0 {
		return out
	}
	sc := allocPool.Get().(*allocScratch)
	defer allocPool.Put(sc)
	sc.shares = grow(sc.shares, len(stats))
	shares := sc.shares
	sum := 0.0
	for i, st := range stats {
		shares[i] = st.Weight * st.Sigma
		sum += shares[i]
	}
	if sum <= 0 {
		// No variance signal: proportional allocation.
		for i, st := range stats {
			shares[i] = st.Weight
			sum += st.Weight
		}
	}
	if sum <= 0 {
		out[0] = total
		return out
	}

	// Floors first, then largest-remainder on what's left.
	remaining := total
	if total >= len(stats) {
		for i := range out {
			out[i] = 1
		}
		remaining = total - len(stats)
	}
	if cap(sc.fracs) < len(stats) {
		sc.fracs = make([]frac, len(stats))
	}
	fracs := sc.fracs[:len(stats)]
	assigned := 0
	for i := range stats {
		exact := float64(remaining) * shares[i] / sum
		whole := int(exact)
		out[i] += whole
		assigned += whole
		fracs[i] = frac{idx: i, rem: exact - float64(whole)}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for k := 0; assigned < remaining; k++ {
		out[fracs[k%len(fracs)].idx]++
		assigned++
	}
	return out
}
