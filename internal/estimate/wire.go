package estimate

import (
	"fmt"
	"math"
)

// This file is the wire form of remote observations — the unit of exchange
// of federated execution (DESIGN.md "Federation: remote strata"). A member
// ships its local draws to the coordinator as compact JSON triples; the
// coordinator folds them back into Observations, assigns them to the
// member's stratum and merges through the stratified combiner. The stratum
// fields deliberately do not travel: a member knows nothing about its place
// in the federation, so the coordinator stamps stratum identity and weight
// after decoding.

// WireObservation is one remote draw on the wire: the observed value, the
// member-local inclusion probability, and the semantic-correctness verdict.
// Field names are single letters because a refinement round ships thousands
// of these.
type WireObservation struct {
	V float64 `json:"v,omitempty"`
	P float64 `json:"p"`
	C bool    `json:"c,omitempty"`
}

// ToWire encodes observations for transport, dropping the stratum fields
// (see the file comment).
func ToWire(obs []Observation) []WireObservation {
	out := make([]WireObservation, len(obs))
	for i, o := range obs {
		out[i] = WireObservation{V: o.Value, P: o.Prob, C: o.Correct}
	}
	return out
}

// FromWire decodes remote observations, rejecting probabilities a
// Horvitz–Thompson estimator cannot survive: a correct draw with p ≤ 0
// would poison the merge with an infinite term, p > 1 or a non-finite
// value is a corrupt member. The returned observations carry no stratum
// assignment; the caller stamps it.
func FromWire(in []WireObservation) ([]Observation, error) {
	out := make([]Observation, len(in))
	for i, w := range in {
		if math.IsNaN(w.P) || math.IsInf(w.P, 0) || w.P < 0 || w.P > 1 {
			return nil, fmt.Errorf("estimate: observation %d: inclusion probability %v outside [0, 1]", i, w.P)
		}
		if w.C && w.P == 0 {
			return nil, fmt.Errorf("estimate: observation %d: correct draw with zero inclusion probability", i)
		}
		if math.IsNaN(w.V) || math.IsInf(w.V, 0) {
			return nil, fmt.Errorf("estimate: observation %d: non-finite value", i)
		}
		out[i] = Observation{Value: w.V, Prob: w.P, Correct: w.C}
	}
	return out, nil
}
