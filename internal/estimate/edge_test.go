package estimate

import (
	"math"
	"testing"

	"kgaq/internal/query"
)

// A stratum the allocator never reached (zero draws) must not break the
// merge: the empty stratum contributes zero to the estimate and the
// variance, and the populated strata carry the result — exactly the
// documented low-bias contract callers own coverage for.
func TestStratifiedMergeZeroDrawStratum(t *testing.T) {
	populated := Stratum{Weight: 0.5, Obs: []Observation{
		{Value: 10, Prob: 0.1, Correct: true},
		{Value: 12, Prob: 0.1, Correct: true},
		{Value: 8, Prob: 0.1, Correct: true},
		{Value: 11, Prob: 0.1, Correct: false},
	}}
	withEmpty := []Stratum{populated, {Weight: 0.5}}
	without := []Stratum{populated}

	for _, fn := range []query.AggFunc{query.Count, query.Sum, query.Avg} {
		vEmpty, err := EstimateStratified(fn, withEmpty, SampleSize)
		if err != nil {
			t.Fatalf("%v with empty stratum: %v", fn, err)
		}
		vRef, err := EstimateStratified(fn, without, SampleSize)
		if err != nil {
			t.Fatalf("%v reference: %v", fn, err)
		}
		if vEmpty != vRef {
			t.Fatalf("%v: empty stratum changed estimate %v -> %v", fn, vRef, vEmpty)
		}
		eEmpty, err := MoEStratified(fn, withEmpty, SampleSize, DefaultGuarantee())
		if err != nil {
			t.Fatalf("%v MoE with empty stratum: %v", fn, err)
		}
		eRef, err := MoEStratified(fn, without, SampleSize, DefaultGuarantee())
		if err != nil {
			t.Fatalf("%v MoE reference: %v", fn, err)
		}
		if eEmpty != eRef {
			t.Fatalf("%v: empty stratum changed MoE %v -> %v", fn, eRef, eEmpty)
		}
	}

	// All strata empty: the merge reports the no-observations error rather
	// than inventing a zero estimate.
	if _, err := EstimateStratified(query.Sum, []Stratum{{Weight: 1}}, SampleSize); err == nil {
		t.Fatal("all-empty strata produced an estimate")
	}
}

// AllocateDraws with zero-sigma and zero-weight strata: counts stay
// non-negative, sum exactly to the total, and a stratum with no share never
// starves the floors when the total covers them.
func TestAllocateDrawsDegenerateStrata(t *testing.T) {
	cases := []struct {
		st    []StratumStats
		haveW bool // some positive weight: the per-stratum floors apply
	}{
		{[]StratumStats{{Weight: 0.5}, {Weight: 0.5}}, true},                 // no variance signal
		{[]StratumStats{{Weight: 1}, {Weight: 0}}, true},                     // weightless stratum
		{[]StratumStats{{Weight: 0}, {Weight: 0}}, false},                    // fully degenerate: all draws land on stratum 0
		{[]StratumStats{{Weight: 0.9, Sigma: 100}, {Weight: 0.1}}, true},     // one-sided signal
		{[]StratumStats{{Weight: 1e-300, Sigma: 1e-300}, {Weight: 1}}, true}, // underflow-edge weight
	}
	for ci, c := range cases {
		for _, total := range []int{0, 1, 2, 7, 100} {
			out := AllocateDraws(total, c.st)
			sum := 0
			for i, n := range out {
				if n < 0 {
					t.Fatalf("case %d total %d: negative allocation %v", ci, total, out)
				}
				if c.haveW && total >= len(c.st) && n == 0 {
					t.Fatalf("case %d total %d: stratum %d starved below floor: %v", ci, total, i, out)
				}
				sum += n
			}
			if sum != total {
				t.Fatalf("case %d total %d: allocations sum to %d: %v", ci, total, sum, out)
			}
		}
	}
}

// A single-observation sample is the smallest input the BLB machinery can
// see: every resample is that observation repeated, so the bootstrap spread
// is exactly zero for a correct draw, and the CorrectOnly estimators
// surface ErrNoCorrect — never a panic, never NaN — for an incorrect one.
func TestMoESingleObservation(t *testing.T) {
	correct := []Observation{{Value: 42, Prob: 0.2, Correct: true}}
	for _, fn := range []query.AggFunc{query.Count, query.Sum, query.Avg} {
		eps, err := MoESeeded(fn, correct, SampleSize, DefaultGuarantee(), 7)
		if err != nil {
			t.Fatalf("%v single correct: %v", fn, err)
		}
		if eps != 0 || math.IsNaN(eps) {
			t.Fatalf("%v single correct: MoE %v, want exactly 0", fn, eps)
		}
	}

	incorrect := []Observation{{Value: 42, Prob: 0.2, Correct: false}}
	// SampleSize COUNT/SUM estimate 0 with zero spread; the ratio and
	// CorrectOnly forms have no defined estimate at all.
	if eps, err := MoESeeded(query.Sum, incorrect, SampleSize, DefaultGuarantee(), 7); err != nil || eps != 0 {
		t.Fatalf("SUM single incorrect under SampleSize: eps=%v err=%v, want 0, nil", eps, err)
	}
	for _, fn := range []query.AggFunc{query.Count, query.Sum} {
		if _, err := MoESeeded(fn, incorrect, CorrectOnly, DefaultGuarantee(), 7); err == nil {
			t.Fatalf("%v single incorrect under CorrectOnly: want ErrNoCorrect", fn)
		}
	}
	if _, err := MoESeeded(query.Avg, incorrect, SampleSize, DefaultGuarantee(), 7); err == nil {
		t.Fatal("AVG single incorrect: want ErrNoCorrect")
	}
}

// The MoE seed fully determines the bootstrap stream: same seed, same ε,
// bitwise; different seeds perturb it. This is the property the engine's
// guarantee-RNG split rests on.
func TestMoESeededReproducible(t *testing.T) {
	obs := make([]Observation, 120)
	for i := range obs {
		obs[i] = Observation{Value: float64(5 + i%11), Prob: 0.005 + 0.001*float64(i%7), Correct: i%4 != 0}
	}
	a, err := MoESeeded(query.Sum, obs, SampleSize, DefaultGuarantee(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MoESeeded(query.Sum, obs, SampleSize, DefaultGuarantee(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different ε: %v vs %v", a, b)
	}
	c, err := MoESeeded(query.Sum, obs, SampleSize, DefaultGuarantee(), 54321)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("independent seeds produced identical ε — stream ignores the seed")
	}
}
