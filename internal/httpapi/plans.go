package httpapi

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/query"
)

// Plan-cache defaults; cmd/kgaqd overrides them from flags.
const (
	DefaultPlanCap = 128
	DefaultPlanTTL = 10 * time.Minute
)

// planEntry is one cached prepared plan.
type planEntry struct {
	id       string
	prepared *core.Prepared
	agg      *query.Aggregate
	created  time.Time
	lastUsed time.Time
	uses     uint64
}

// planCache is a TTL + LRU cache of prepared plans keyed by content id: the
// same query text under the same plan options maps to the same id, so
// clients can treat POST /v1/prepare as idempotent. Entries expire ttl
// after their last use and the capacity bound evicts least-recently-used
// plans first. All methods are safe for concurrent use.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

func newPlanCache(capacity int, ttl time.Duration) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCap
	}
	if ttl <= 0 {
		ttl = DefaultPlanTTL
	}
	return &planCache{
		cap:   capacity,
		ttl:   ttl,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// planID derives the content id of a plan: the canonical (re-printed)
// query text plus the plan-relevant option fingerprint.
func planID(canonical, optFingerprint string) string {
	sum := sha256.Sum256([]byte(canonical + "\x00" + optFingerprint))
	return "p" + hex.EncodeToString(sum[:8])
}

// purgeLocked drops expired entries and enforces the capacity bound.
// Callers hold pc.mu.
func (pc *planCache) purgeLocked(now time.Time) {
	for el := pc.ll.Back(); el != nil; {
		prev := el.Prev()
		e := el.Value.(*planEntry)
		if now.Sub(e.lastUsed) > pc.ttl {
			pc.ll.Remove(el)
			delete(pc.items, e.id)
		}
		el = prev
	}
	for pc.ll.Len() > pc.cap {
		back := pc.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*planEntry)
		pc.ll.Remove(back)
		delete(pc.items, e.id)
	}
}

// put inserts (or refreshes) a plan under id and returns the resident
// entry.
func (pc *planCache) put(id string, p *core.Prepared, agg *query.Aggregate) *planEntry {
	now := time.Now()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.items[id]; ok {
		e := el.Value.(*planEntry)
		e.lastUsed = now
		pc.ll.MoveToFront(el)
		return e
	}
	e := &planEntry{id: id, prepared: p, agg: agg, created: now, lastUsed: now}
	pc.items[id] = pc.ll.PushFront(e)
	pc.purgeLocked(now)
	return e
}

// get returns the plan for id, refreshing its TTL, or nil when unknown or
// expired.
func (pc *planCache) get(id string) *planEntry {
	now := time.Now()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.purgeLocked(now)
	el, ok := pc.items[id]
	if !ok {
		return nil
	}
	e := el.Value.(*planEntry)
	e.lastUsed = now
	e.uses++
	pc.ll.MoveToFront(el)
	return e
}

// planJSON is one cached plan on the wire (/v1/prepare response and the
// /debug/plans listing).
type planJSON struct {
	ID          string  `json:"id"`
	Query       string  `json:"query"`
	Shape       string  `json:"shape"`
	Paths       int     `json:"paths"`
	HopBound    int     `json:"hop_bound"`
	Strata      int     `json:"strata,omitempty"`
	Candidates  int     `json:"candidates"`
	Epoch       uint64  `json:"epoch"`
	EpochPolicy string  `json:"epoch_policy"`
	CacheHits   int     `json:"cache_hits"`
	CacheBuilt  int     `json:"cache_built"`
	Rebuilds    int     `json:"rebuilds,omitempty"`
	Uses        uint64  `json:"uses"`
	AgeS        float64 `json:"age_s"`
	IdleS       float64 `json:"idle_s"`
	TTLS        float64 `json:"ttl_s"`
}

// entryJSON renders one entry, taking the cache lock (uses/lastUsed are
// mutated under it by get/put).
func (pc *planCache) entryJSON(e *planEntry, now time.Time) planJSON {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.entryJSONLocked(e, now)
}

func (pc *planCache) entryJSONLocked(e *planEntry, now time.Time) planJSON {
	info := e.prepared.Plan()
	return planJSON{
		ID:          e.id,
		Query:       info.Query,
		Shape:       info.Shape.String(),
		Paths:       info.Paths,
		HopBound:    info.HopBound,
		Strata:      info.Strata,
		Candidates:  info.Candidates,
		Epoch:       info.Epoch,
		EpochPolicy: info.EpochPolicy.String(),
		CacheHits:   info.CacheHits,
		CacheBuilt:  info.CacheBuilt,
		Rebuilds:    info.Rebuilds,
		Uses:        e.uses,
		AgeS:        now.Sub(e.created).Seconds(),
		IdleS:       now.Sub(e.lastUsed).Seconds(),
		TTLS:        pc.ttl.Seconds(),
	}
}

// snapshot lists the resident plans, most recently used first.
func (pc *planCache) snapshot() []planJSON {
	now := time.Now()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.purgeLocked(now)
	out := make([]planJSON, 0, pc.ll.Len())
	for el := pc.ll.Front(); el != nil; el = el.Next() {
		out = append(out, pc.entryJSONLocked(el.Value.(*planEntry), now))
	}
	return out
}

// len reports the resident plan count (after purging expired entries).
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.purgeLocked(time.Now())
	return pc.ll.Len()
}

// optFingerprint canonicalises the plan-relevant request options for the
// content id: two prepare requests differing only in execution-level knobs
// (error bound, seed, …) map to the same plan.
func (qr *prepareRequest) optFingerprint() string {
	return fmt.Sprintf("tau=%g|shards=%d|policy=%s|min_epoch=%d", qr.Tau, qr.Shards, qr.EpochPolicy, qr.MinEpoch)
}
