package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/live"
	"kgaq/internal/stats"
)

const avgPriceText = "AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c"

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes == 0 || h.Edges == 0 {
		t.Fatalf("health = %+v", h)
	}
}

// The debug mux serves the pprof index and live cache counters; running a
// query against the API first makes the counters non-trivial, and the
// healthz cache block must agree with /debug/cache.
func TestDebugMux(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(eng)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	dbg := httptest.NewServer(api.DebugHandler())
	t.Cleanup(dbg.Close)

	if resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q}`, avgPriceText)); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %s", resp.StatusCode, body)
	}

	resp, err := http.Get(dbg.URL + "/debug/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/cache status = %d", resp.StatusCode)
	}
	var c cacheJSON
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if c.Misses == 0 || c.Entries == 0 {
		t.Fatalf("cache counters flat after a query: %+v", c)
	}

	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cache.Misses != c.Misses || h.Cache.Entries != c.Entries {
		t.Fatalf("healthz cache %+v disagrees with /debug/cache %+v", h.Cache, c)
	}

	presp, err := http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", presp.StatusCode)
	}
}

// TestQueryRoundTrip drives the paper's running example end to end over
// HTTP: the textual query goes in, the guaranteed estimate comes out.
func TestQueryRoundTrip(t *testing.T) {
	ts := testServer(t)
	resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if !qr.Converged || qr.Estimate == nil || qr.Interrupted {
		t.Fatalf("response = %+v", qr)
	}
	if rel := stats.RelativeError(*qr.Estimate, kgtest.Figure1AvgPrice); rel > 0.05 {
		t.Fatalf("estimate %v, rel error %v", *qr.Estimate, rel)
	}
	if qr.SampleSize == 0 || len(qr.Rounds) == 0 {
		t.Fatalf("bookkeeping missing: %+v", qr)
	}
}

// TestQueryOverrides confirms per-request options land: a distinct seed and
// loose bound change the execution, and max_draws caps the sample.
func TestQueryOverrides(t *testing.T) {
	ts := testServer(t)
	_, body := postQuery(t, ts, fmt.Sprintf(
		`{"query": %q, "error_bound": 0.10, "seed": 99, "max_draws": 40}`, avgPriceText))
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if qr.SampleSize > 40 {
		t.Fatalf("max_draws override ignored: |S| = %d", qr.SampleSize)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		body   string
		status int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"query": ""}`, http.StatusBadRequest},
		{`{"query": "AVG(price) MATCH nonsense"}`, http.StatusBadRequest},
		{`{"query": "COUNT(*) MATCH (g:Country name=Atlantis)-[product]->(c:Automobile) TARGET c"}`, http.StatusBadRequest},
		{fmt.Sprintf(`{"query": %q, "sampler": "quantum"}`, avgPriceText), http.StatusBadRequest},
		{fmt.Sprintf(`{"query": %q, "unknown_field": 1}`, avgPriceText), http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, body := postQuery(t, ts, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("case %d: status = %d, want %d (%s)", i, resp.StatusCode, c.status, body)
		}
	}
	// Unknown-entity failures carry the sentinel's message.
	_, body := postQuery(t, ts, `{"query": "COUNT(*) MATCH (g:Country name=Atlantis)-[product]->(c:Automobile) TARGET c"}`)
	if !bytes.Contains(body, []byte("unknown entity")) {
		t.Fatalf("error body %s lacks sentinel message", body)
	}
}

// TestQueryStream reads the NDJSON streaming response: at least one round
// line followed by a final result line.
func TestQueryStream(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query": %q, "stream": true}`, avgPriceText)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	rounds, results := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Round  *roundJSON     `json:"round"`
			Result *queryResponse `json:"result"`
			Error  string         `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("%v in %s", err, sc.Text())
		}
		switch {
		case line.Round != nil:
			if results > 0 {
				t.Fatal("round after result")
			}
			rounds++
		case line.Result != nil:
			results++
			if !line.Result.Converged {
				t.Fatalf("streamed result did not converge: %+v", line.Result)
			}
		case line.Error != "":
			t.Fatalf("streamed error: %s", line.Error)
		}
	}
	if rounds == 0 || results != 1 {
		t.Fatalf("stream shape: %d rounds, %d results", rounds, results)
	}
}

// TestConcurrentRequests hammers one server (one shared Engine) from many
// goroutines — the serving-layer face of the engine's concurrency
// guarantee. Run under -race in CI.
func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json",
				strings.NewReader(fmt.Sprintf(`{"query": %q, "seed": %d}`, avgPriceText, seed+1)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var qr queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || qr.Estimate == nil {
				errs <- fmt.Errorf("seed %d: status %d, %+v", seed, resp.StatusCode, qr)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// testLiveServer builds a read-write server over a live store wrapping the
// Figure 1 graph.
func testLiveServer(t *testing.T) (*httptest.Server, *live.Store) {
	t.Helper()
	g := kgtest.Figure1()
	store := live.NewStore(g, 0)
	eng, err := core.NewLiveEngine(store, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewLiveServer(eng, store).Handler())
	t.Cleanup(ts.Close)
	return ts, store
}

// TestMutateRoundTrip drives the live path end to end over HTTP: an NDJSON
// batch lands atomically, healthz reports the new epoch, and a min_epoch
// query reads its own write.
func TestMutateRoundTrip(t *testing.T) {
	ts, _ := testLiveServer(t)

	batch := `{"op":"add_entity","entity":"Tesla_3","types":["Automobile"]}
{"op":"add_edge","src":"Germany","pred":"product","dst":"Tesla_3"}
{"op":"set_attr","entity":"Tesla_3","attr":"price","value":39000}`
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status = %d", resp.StatusCode)
	}
	var mr mutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 1 || mr.Applied != 3 {
		t.Fatalf("mutate response = %+v", mr)
	}

	// healthz reports the epoch and live mode.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Live || h.Epoch != mr.Epoch {
		t.Fatalf("healthz = %+v, want live at epoch %d", h, mr.Epoch)
	}

	// Read-your-writes: the count at min_epoch includes the new automobile.
	countText := "COUNT(*) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c"
	_, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q, "min_epoch": %d, "seed": 3}`, countText, mr.Epoch))
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if qr.Epoch < mr.Epoch {
		t.Fatalf("query epoch %d below min_epoch %d", qr.Epoch, mr.Epoch)
	}
	if qr.Candidates != 7 {
		t.Fatalf("candidates = %d after adding Tesla_3, want 7 (6 base automobiles + 1)", qr.Candidates)
	}
}

// TestMutateErrors: malformed lines and unsatisfiable batches are 400s and
// leave the store untouched.
func TestMutateErrors(t *testing.T) {
	ts, store := testLiveServer(t)
	cases := []string{
		"",              // empty batch
		"{not json",     // malformed line
		`{"op":"nope"}`, // unknown op
		`{"op":"add_edge","src":"Germany","pred":"made-up","dst":"BMW_320"}`,   // frozen vocab
		`{"op":"remove_edge","src":"Berlin","pred":"product","dst":"Germany"}`, // missing edge
	}
	for i, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/mutate", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	if store.Epoch() != 0 {
		t.Fatalf("failed batches advanced the store to epoch %d", store.Epoch())
	}

	// A read-only server has no mutate route at all.
	ro := testServer(t)
	resp, err := http.Post(ro.URL+"/v1/mutate", "application/x-ndjson", strings.NewReader(`{"op":"set_attr"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("read-only server accepted a mutation")
	}
}

// TestMinEpochUnreachable: a static server rejects positive min_epoch.
func TestMinEpochUnreachable(t *testing.T) {
	ts := testServer(t)
	resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q, "min_epoch": 5}`, avgPriceText))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestQuerySharded drives a per-request sharded execution and checks the
// sharded healthz/debug reporting on a sharded server.
func TestQuerySharded(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g),
		core.Options{ErrorBound: 0.05, Seed: 7, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q, "shards": 4}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if !qr.Converged || qr.Estimate == nil {
		t.Fatalf("sharded response = %+v", qr)
	}
	if qr.Shards < 1 {
		t.Fatalf("response shards = %d, want ≥ 1", qr.Shards)
	}
	if rel := stats.RelativeError(*qr.Estimate, kgtest.Figure1AvgPrice); rel > 0.05 {
		t.Fatalf("sharded estimate %v, rel error %v", *qr.Estimate, rel)
	}

	// Sharding a topology-only ablation sampler is the client's mistake.
	resp, body = postQuery(t, ts, fmt.Sprintf(`{"query": %q, "shards": 2, "sampler": "cnarw"}`, avgPriceText))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sharded cnarw: status = %d, want 400 (%s)", resp.StatusCode, body)
	}

	// healthz reports the per-shard balance once a plan is active.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if len(h.Shards) != 4 {
		t.Fatalf("healthz shards = %+v, want 4 entries", h.Shards)
	}
	owned, draws := 0, uint64(0)
	for _, s := range h.Shards {
		owned += s.OwnedNodes
		draws += s.Draws
	}
	if owned != g.NumNodes() {
		t.Fatalf("healthz shard ownership sums to %d, graph has %d", owned, g.NumNodes())
	}
	if draws == 0 {
		t.Fatal("healthz shard draws all zero after a sharded query")
	}

	// The debug mux serves the same snapshot.
	dts := httptest.NewServer(srv.DebugHandler())
	t.Cleanup(dts.Close)
	dresp, err := http.Get(dts.URL + "/debug/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var sh []shardJSON
	if err := json.NewDecoder(dresp.Body).Decode(&sh); err != nil {
		t.Fatal(err)
	}
	if len(sh) != 4 {
		t.Fatalf("/debug/shards returned %d entries, want 4", len(sh))
	}
}
