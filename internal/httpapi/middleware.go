package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"kgaq/internal/admission"
	"kgaq/internal/core"
)

// ClientIDHeader is the default header the admission layer reads a client
// identity from; requests without it are bucketed by remote host.
const ClientIDHeader = "X-Client-ID"

// RequestIDHeader carries the request's correlation id: honoured inbound
// (so a caller's id threads through the access log) and always set on the
// response.
const RequestIDHeader = "X-Request-ID"

// TraceIDHeader echoes the id of the lifecycle trace a sampled request
// produced; fetch it at /debug/trace/{id} on the debug listener.
const TraceIDHeader = "X-Trace-ID"

// reqPrefix and reqSeq generate process-unique request ids: a random
// process prefix plus a monotone counter — cheap, collision-free within a
// deployment, and ordered within one process.
var (
	reqPrefix = func() string {
		var b [4]byte
		_, _ = rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	reqSeq atomic.Uint64
)

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
}

// reqState is the per-request scratch the middleware chain and handlers
// share through the request context: who the request is, its admission
// grant, and whether the answer was degraded (for the access log and the
// grant outcome).
type reqState struct {
	id     string
	client string
	grant  *admission.Grant
	// degraded is set by the query paths when the response carries a
	// relaxed or deadline-degraded (but honest) bound.
	degraded bool
	// effectiveEB is the relaxed bound the admission grant substituted for
	// the requested one (0 when not relaxed).
	effectiveEB float64
	// shed marks a request refused by admission (429/503).
	shed bool
	// traceID names the lifecycle trace this request produced ("" when the
	// request was not sampled).
	traceID string
	// rounds/achievedEB carry the execution's convergence telemetry into
	// the access log; hasRounds marks them as set (a query can legitimately
	// finish in 0 rounds).
	rounds     int
	hasRounds  bool
	achievedEB *float64
}

type reqStateKey struct{}

// stateFrom returns the request's shared state, nil outside the middleware
// chain (direct handler tests).
func stateFrom(ctx context.Context) *reqState {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	return st
}

// responseRecorder captures the response status for the access log and the
// admission outcome while passing streaming flushes through.
type responseRecorder struct {
	http.ResponseWriter
	status int
}

func (r *responseRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// clientID identifies the caller for rate limiting and logging: the
// configured client header when present, otherwise the remote host.
func (s *Server) clientID(r *http.Request) string {
	header := s.clientHeader
	if header == "" {
		header = ClientIDHeader
	}
	if id := r.Header.Get(header); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// recoverPanics is the outermost middleware: a panic that escapes a
// handler (the engine's own containment converts query panics into typed
// errors long before this) answers 500 with the request id instead of
// killing the process. http.ErrAbortHandler re-panics — it is net/http's
// own connection-abort signal, not a defect.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel by identity, per net/http docs
				panic(rec)
			}
			id := w.Header().Get(RequestIDHeader)
			if s.logger != nil {
				s.logger.Error("panic serving request",
					slog.String("request_id", id),
					slog.String("path", r.URL.Path),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())))
			}
			// Best effort: if the handler already streamed a partial body the
			// status line is gone, but the connection still terminates.
			writeError(w, http.StatusInternalServerError,
				"internal error (request %s)", id)
		}()
		next.ServeHTTP(w, r)
	})
}

// instrument is the request-scope middleware: request id, shared
// per-request state, and one structured access-log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		st := &reqState{id: id, client: s.clientID(r)}
		w.Header().Set(RequestIDHeader, id)
		rec := &responseRecorder{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), reqStateKey{}, st))

		begin := time.Now()
		metHTTPInFlight.Add(1)
		next.ServeHTTP(rec, r)
		metHTTPInFlight.Add(-1)
		elapsed := time.Since(begin)

		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		// Metrics label by the matched pattern only — a 404's raw path would
		// be an unbounded label set — while the log keeps the real path.
		pattern := r.Pattern // set by ServeMux on match; empty on 404s
		metricRoute := pattern
		if metricRoute == "" {
			metricRoute = "unmatched"
		}
		metRequests.With(metricRoute, strconv.Itoa(status)).Inc()
		metLatency.With(metricRoute).Observe(elapsed.Seconds())

		if s.logger == nil {
			return
		}
		route := pattern
		if route == "" {
			route = r.URL.Path
		}
		attrs := []slog.Attr{
			slog.String("id", id),
			slog.String("client", st.client),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("status", status),
			slog.Float64("latency_ms", float64(elapsed.Microseconds())/1000),
		}
		if st.traceID != "" {
			attrs = append(attrs, slog.String("trace_id", st.traceID))
		}
		if st.hasRounds {
			attrs = append(attrs, slog.Int("rounds", st.rounds))
		}
		if st.achievedEB != nil {
			attrs = append(attrs, slog.Float64("achieved_eb", *st.achievedEB))
		}
		if st.shed {
			attrs = append(attrs, slog.Bool("shed", true))
		}
		if st.degraded {
			attrs = append(attrs, slog.Bool("degraded", true))
		}
		if g := st.grant; g != nil && g.QueuedFor() > 0 {
			attrs = append(attrs, slog.Float64("queued_ms", float64(g.QueuedFor().Microseconds())/1000))
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

// admit gates a work endpoint behind the admission controller: shed
// requests answer a typed 429/503 with Retry-After, admitted ones carry
// their grant in the request state and release it — with the observed
// outcome — when the handler returns.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adm == nil {
			next(w, r)
			return
		}
		st := stateFrom(r.Context())
		if st == nil { // admit is always nested inside instrument; be safe
			st = &reqState{client: s.clientID(r)}
			r = r.WithContext(context.WithValue(r.Context(), reqStateKey{}, st))
		}
		grant, err := s.adm.Admit(r.Context(), st.client)
		if err != nil {
			var shed *admission.Shed
			if errors.As(err, &shed) {
				st.shed = true
				writeShed(w, shed)
				return
			}
			// The waiter's own context ended while queued: the client is gone
			// (or its deadline passed) — nobody is listening, but complete the
			// exchange coherently.
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		st.grant = grant
		begin := time.Now()
		rec, _ := w.(*responseRecorder)
		defer func() {
			outcome := admission.OutcomeOK
			switch {
			case rec != nil && rec.status >= 500:
				outcome = admission.OutcomeError
			case st.degraded:
				outcome = admission.OutcomeDegraded
			}
			grant.Release(time.Since(begin), outcome)
		}()
		next(w, r)
	}
}

// shedBody is the typed error body of a 429/503 shed response, so clients
// can branch on "code" instead of parsing prose.
type shedBody struct {
	Error string `json:"error"`
	// Code is "rate_limited", "queue_full" or "draining".
	Code string `json:"code"`
	// RetryAfterS mirrors the Retry-After header with sub-second precision.
	RetryAfterS float64 `json:"retry_after_s"`
}

// writeShed answers an admission refusal: 429 Too Many Requests for rate
// limits and queue overflow, 503 Service Unavailable for a draining
// server — both with a Retry-After header (whole seconds, minimum 1, per
// RFC 9110) and the typed JSON body.
func writeShed(w http.ResponseWriter, shed *admission.Shed) {
	status := http.StatusTooManyRequests
	code := "queue_full"
	switch {
	case errors.Is(shed, admission.ErrRateLimited):
		code = "rate_limited"
	case errors.Is(shed, admission.ErrDraining):
		status = http.StatusServiceUnavailable
		code = "draining"
	}
	secs := int(math.Ceil(shed.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, status, shedBody{
		Error:       shed.Error(),
		Code:        code,
		RetryAfterS: shed.RetryAfter.Seconds(),
	})
}

// degradeOptions applies the serving tier's degradation policy to one query
// execution: deadline-aware early stopping (the core loop returns the
// honest interval it holds when the deadline closes in) and, under queue
// pressure, a relaxed effective error bound within the honesty floor. It
// returns the options to append and records the relaxation in the request
// state so the response and access log can surface it.
func (s *Server) degradeOptions(ctx context.Context, requestedEB float64) []core.QueryOption {
	if s.adm == nil {
		return nil
	}
	maxEB := s.adm.Config().MaxErrorBound
	if maxEB <= 0 {
		return nil
	}
	opts := []core.QueryOption{core.WithDegradation(core.Degradation{MaxErrorBound: maxEB})}
	st := stateFrom(ctx)
	if st == nil || st.grant == nil {
		return opts
	}
	if requestedEB <= 0 {
		requestedEB = s.eng.Options().ErrorBound
	}
	if eff, relaxed := st.grant.EffectiveEB(requestedEB); relaxed {
		st.degraded = true
		st.effectiveEB = eff
		opts = append(opts, core.WithErrorBound(eff))
	}
	return opts
}
