package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"kgaq/internal/admission"
	"kgaq/internal/buildinfo"
	"kgaq/internal/core"
	"kgaq/internal/federate"
	"kgaq/internal/live"
	"kgaq/internal/obs"
	"kgaq/internal/query"
)

// maxRequestBody bounds a query request; the textual language is tiny.
const maxRequestBody = 1 << 20

// maxMutateBody bounds one NDJSON mutation batch.
const maxMutateBody = 8 << 20

// Server is the HTTP/JSON serving layer over one shared Engine. The
// Engine's concurrency guarantee is what lets a single Server instance
// answer parallel requests without any locking of its own: every request
// runs an independent Execution. When constructed over a live store
// (NewLiveServer) it additionally accepts mutation batches on /v1/mutate.
// Prepared plans (POST /v1/prepare) live in an internally synchronised
// TTL/LRU cache shared by every request.
type Server struct {
	eng     *core.Engine
	store   *live.Store   // nil for a read-only (static-graph) server
	dur     *live.Durable // nil when the live store is memory-only
	plans   *planCache
	started time.Time

	// adm gates the work endpoints (nil = no admission control); see
	// ConfigureAdmission.
	adm *admission.Controller
	// clientHeader names the request header carrying the client identity
	// for rate limiting ("" = ClientIDHeader).
	clientHeader string
	// logger receives one structured access-log line per request (nil =
	// no access logging).
	logger *slog.Logger
	// tracer samples query lifecycles into a bounded ring served under
	// /debug/trace; see ConfigureTracing.
	tracer *obs.Tracer
	// fed makes this server a federation coordinator: /v1/query scatters
	// across its members instead of running locally (nil = plain member /
	// standalone server); see ConfigureFederation.
	fed *federate.Coordinator
	// build is the binary's build provenance, shown in healthz when the
	// binary registered it (see ConfigureBuild).
	build *buildinfo.Info
}

// ConfigureBuild records the serving binary's build provenance for the
// healthz "build" block. Call before serving.
func (s *Server) ConfigureBuild(info buildinfo.Info) { s.build = &info }

// NewServer wraps an engine for read-only serving.
func NewServer(eng *core.Engine) *Server {
	return &Server{
		eng:     eng,
		plans:   newPlanCache(0, 0),
		started: time.Now(),
		tracer:  obs.NewTracer(0, 1),
	}
}

// NewLiveServer wraps a live engine and its mutation store for read-write
// serving.
func NewLiveServer(eng *core.Engine, store *live.Store) *Server {
	s := NewServer(eng)
	s.store = store
	return s
}

// ConfigurePlans re-bounds the prepared-plan cache (flags -plan-cap /
// -plan-ttl). Call before serving.
func (s *Server) ConfigurePlans(capacity int, ttl time.Duration) {
	s.plans = newPlanCache(capacity, ttl)
}

// ConfigureAdmission puts the work endpoints (/v1/query, /v1/prepare,
// /v1/plans/{id}/query, /v1/mutate — healthz stays exempt) behind an
// admission controller: per-client rate limits, the bounded work queue with
// fast 429/503 + Retry-After shedding, and pressure-based degradation
// grants. clientHeader overrides the header the client identity is read
// from ("" = ClientIDHeader). Call before serving.
func (s *Server) ConfigureAdmission(c *admission.Controller, clientHeader string) {
	s.adm = c
	s.clientHeader = clientHeader
}

// ConfigureLogging enables the structured access log: one line per request
// with request id, client, method, route, status, latency, and the
// shed/degraded markers. Call before serving.
func (s *Server) ConfigureLogging(l *slog.Logger) { s.logger = l }

// ConfigureTracing re-bounds the query-lifecycle trace ring (flags
// -trace-ring / -trace-sample): capacity finished traces are retained for
// /debug/trace, and one request in sampleEvery is traced (1 = all,
// 0 = tracing off). Call before serving.
func (s *Server) ConfigureTracing(capacity, sampleEvery int) {
	s.tracer = obs.NewTracer(capacity, sampleEvery)
}

// trace begins the request's lifecycle trace: the trace id is echoed in the
// X-Trace-ID header (and later the response body), recorded for the access
// log, and the trace travels to the engine through the context. The cleanup
// finishes the trace into the ring; the finish* helpers seal it earlier —
// before the response is written — so a client can fetch its trace the
// moment it reads the response (Finish is idempotent).
func (s *Server) trace(ctx context.Context, w http.ResponseWriter, kind, target string) (context.Context, func()) {
	t := s.tracer.Start(kind, target)
	if t == nil {
		return ctx, func() {}
	}
	w.Header().Set(TraceIDHeader, t.ID())
	if st := stateFrom(ctx); st != nil {
		st.traceID = t.ID()
	}
	return obs.WithTrace(ctx, t), func() { s.tracer.Finish(t) }
}

// ConfigureDurability routes /v1/mutate through a durable store: a batch
// is acknowledged only once its WAL record is durable per the configured
// sync policy. healthz and /debug/durability gain the durability picture.
// Call before serving; d must wrap the same live store the server was
// built over.
func (s *Server) ConfigureDurability(d *live.Durable) { s.dur = d }

// Admission returns the configured controller (nil when admission is off).
func (s *Server) Admission() *admission.Controller { return s.adm }

// Drain performs the serving-tier half of a graceful shutdown: new and
// queued requests shed with 503 "draining" while in-flight ones run to
// completion. Call it before closing the listener; a nil-admission server
// drains trivially.
func (s *Server) Drain(ctx context.Context) error {
	if s.adm == nil {
		return nil
	}
	return s.adm.Drain(ctx)
}

// Handler returns the routed HTTP handler:
//
//	POST /v1/query            — execute one aggregate query, or several
//	                            aggregates over one sample ("aggregates")
//	POST /v1/prepare          — compile a query into a cached plan → plan id
//	POST /v1/plans/{id}/query — execute a prepared plan (single or multi)
//	POST /v1/mutate           — apply one atomic mutation batch (NDJSON, live servers)
//	GET  /v1/healthz          — liveness plus graph statistics and the current epoch
//
// Work endpoints pass through the admission controller; healthz stays
// exempt so load balancers can probe a saturated or draining server. The
// whole mux sits inside the instrumentation middleware (request ids +
// access log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.admit(s.handleQuery))
	mux.HandleFunc("POST /v1/prepare", s.admit(s.handlePrepare))
	mux.HandleFunc("POST /v1/plans/{id}/query", s.admit(s.handlePlanQuery))
	mux.HandleFunc("POST /v1/federate/sample", s.admit(s.handleFederateSample))
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	if s.store != nil {
		mux.HandleFunc("POST /v1/mutate", s.admit(s.handleMutate))
	}
	return s.recoverPanics(s.instrument(mux))
}

// contentTypeOK reports whether a request Content-Type is acceptable for a
// JSON body: unset (bare curl -d) or any application/json variant.
func contentTypeOK(header string, accept ...string) bool {
	if header == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return false
	}
	for _, a := range accept {
		if mt == a {
			return true
		}
	}
	return false
}

// readJSON decodes one JSON request body under the shared hardening rules:
// a non-JSON Content-Type is 415, a body over maxBytes is 413, malformed
// JSON is 400. It reports whether decoding succeeded; on failure the error
// response has already been written.
func readJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	if ct := r.Header.Get("Content-Type"); !contentTypeOK(ct, "application/json") {
		writeError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type %q (use application/json)", ct)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// queryRequest is the body of POST /v1/query: the textual query language
// plus per-query overrides of the engine's options. Zero-valued fields keep
// the server's engine defaults.
type queryRequest struct {
	// Query is the textual aggregate query, e.g.
	// "AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c".
	Query string `json:"query"`

	ErrorBound float64 `json:"error_bound,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Tau        float64 `json:"tau,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	MaxDraws   int     `json:"max_draws,omitempty"`
	MaxRounds  int     `json:"max_rounds,omitempty"`
	// Sampler selects "semantic" (default), "cnarw" or "node2vec".
	Sampler string `json:"sampler,omitempty"`
	// TimeoutMS bounds this query's execution; on expiry the response
	// carries the partial estimate with interrupted=true.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Stream switches the response to NDJSON: one {"round":…} line per
	// refinement round as it happens, then a final {"result":…} line.
	Stream bool `json:"stream,omitempty"`
	// MinEpoch pins the query to a graph view at or above this epoch —
	// read-your-writes: pass the epoch a /v1/mutate response carried and the
	// query observes that batch. The query waits (bounded by timeout_ms /
	// the request context) for the epoch on a live server; a static server
	// rejects positive values.
	MinEpoch uint64 `json:"min_epoch,omitempty"`
	// Shards overrides the server's shard count for this query: the
	// candidate-answer space is cut into this many ownership strata,
	// sampled per shard and merged with the stratified Horvitz–Thompson
	// combiner. Requires the semantic sampler.
	Shards int `json:"shards,omitempty"`
	// Aggregates switches the request to multi-aggregate execution: every
	// listed aggregate is evaluated over one shared sample of the query
	// graph (the query's own aggregate function is ignored), refined until
	// each guaranteed aggregate meets its error bound. Incompatible with
	// "stream".
	Aggregates []aggSpecJSON `json:"aggregates,omitempty"`
}

// aggSpecJSON is one multi-aggregate target on the wire.
type aggSpecJSON struct {
	// Func is COUNT, SUM, AVG, MAX or MIN (case-insensitive).
	Func string `json:"func"`
	// Attr is the aggregated attribute; omit only for COUNT.
	Attr string `json:"attr,omitempty"`
	// ErrorBound optionally tightens/loosens this aggregate's bound.
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// specs translates the wire form into engine specs.
func toSpecs(in []aggSpecJSON) ([]core.AggSpec, error) {
	out := make([]core.AggSpec, len(in))
	for i, a := range in {
		fn, err := query.ParseAggFunc(a.Func)
		if err != nil {
			return nil, fmt.Errorf("aggregates[%d]: %v", i, err)
		}
		out[i] = core.AggSpec{Func: fn, Attr: a.Attr, ErrorBound: a.ErrorBound}
	}
	return out, nil
}

// options translates the request's overrides into per-query options.
func (qr *queryRequest) options() ([]core.QueryOption, error) {
	var opts []core.QueryOption
	if qr.ErrorBound > 0 {
		opts = append(opts, core.WithErrorBound(qr.ErrorBound))
	}
	if qr.Confidence > 0 {
		opts = append(opts, core.WithConfidence(qr.Confidence))
	}
	if qr.Tau > 0 {
		opts = append(opts, core.WithTau(qr.Tau))
	}
	if qr.Seed != 0 {
		opts = append(opts, core.WithSeed(qr.Seed))
	}
	if qr.MaxDraws > 0 {
		opts = append(opts, core.WithMaxDraws(qr.MaxDraws))
	}
	if qr.MaxRounds > 0 {
		opts = append(opts, core.WithMaxRounds(qr.MaxRounds))
	}
	if qr.MinEpoch > 0 {
		opts = append(opts, core.WithMinEpoch(qr.MinEpoch))
	}
	if qr.Shards > 0 {
		opts = append(opts, core.WithShards(qr.Shards))
	}
	switch strings.ToLower(qr.Sampler) {
	case "", "semantic":
	case "cnarw":
		opts = append(opts, core.WithSampler(core.SamplerCNARW))
	case "node2vec":
		opts = append(opts, core.WithSampler(core.SamplerNode2Vec))
	default:
		return nil, fmt.Errorf("unknown sampler %q (semantic, cnarw, node2vec)", qr.Sampler)
	}
	return opts, nil
}

// roundJSON is one refinement round on the wire.
type roundJSON struct {
	Estimate   float64  `json:"estimate"`
	MoE        *float64 `json:"moe"`
	SampleSize int      `json:"sample_size"`
}

// groupJSON is one GROUP-BY bucket on the wire.
type groupJSON struct {
	Estimate float64  `json:"estimate"`
	MoE      *float64 `json:"moe"`
	Draws    int      `json:"draws"`
}

// queryResponse is the body of a successful (or partial) query execution.
type queryResponse struct {
	Query       string               `json:"query"`
	Estimate    *float64             `json:"estimate"`
	MoE         *float64             `json:"moe"`
	Confidence  float64              `json:"confidence"`
	Converged   bool                 `json:"converged"`
	Interrupted bool                 `json:"interrupted,omitempty"`
	SampleSize  int                  `json:"sample_size"`
	Distinct    int                  `json:"distinct"`
	Candidates  int                  `json:"candidates"`
	Shards      int                  `json:"shards,omitempty"`
	Epoch       uint64               `json:"epoch"`
	Rounds      []roundJSON          `json:"rounds,omitempty"`
	Groups      map[string]groupJSON `json:"groups,omitempty"`
	ElapsedMS   float64              `json:"elapsed_ms"`
	// Degraded marks an answer the serving tier loosened honestly: the loop
	// stopped before the target bound (deadline pressure) or ran against a
	// relaxed effective bound (queue pressure). The interval is still a
	// valid 1-α interval — achieved_eb is the bound it actually guarantees.
	Degraded bool `json:"degraded,omitempty"`
	// TargetEB is the bound this execution refined toward.
	TargetEB float64 `json:"target_eb,omitempty"`
	// EffectiveEB is the relaxed bound admission substituted under queue
	// pressure (absent when the request's own bound was used).
	EffectiveEB float64 `json:"effective_eb,omitempty"`
	// AchievedEB is the relative error bound the returned interval actually
	// attains (null when no finite bound is honest).
	AchievedEB *float64 `json:"achieved_eb,omitempty"`
	// TraceID names this execution's lifecycle trace, fetchable at
	// /debug/trace/{id} on the debug listener while it stays in the ring
	// (absent when the request was not sampled).
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error,omitempty"`
}

// jsonFloat maps NaN/Inf (JSON-unrepresentable) to null.
func jsonFloat(f float64) *float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	return &f
}

func toResponse(agg *query.Aggregate, res *core.Result, interrupted bool, elapsed time.Duration) queryResponse {
	out := queryResponse{
		Query:       agg.String(),
		Estimate:    jsonFloat(res.Estimate),
		MoE:         jsonFloat(res.MoE),
		Confidence:  res.Confidence,
		Converged:   res.Converged,
		Interrupted: interrupted,
		SampleSize:  res.SampleSize,
		Distinct:    res.Distinct,
		Candidates:  res.Candidates,
		Shards:      res.Shards,
		Epoch:       res.Epoch,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
		Degraded:    res.Degraded,
		TargetEB:    res.TargetEB,
		AchievedEB:  jsonFloat(res.AchievedEB()),
	}
	for _, r := range res.Rounds {
		out.Rounds = append(out.Rounds, roundJSON{Estimate: r.Estimate, MoE: jsonFloat(r.MoE), SampleSize: r.SampleSize})
	}
	if res.Groups != nil {
		out.Groups = map[string]groupJSON{}
		for label, gr := range res.Groups {
			out.Groups[label] = groupJSON{Estimate: gr.Estimate, MoE: jsonFloat(gr.MoE), Draws: gr.Draws}
		}
	}
	return out
}

// errorStatus maps execution errors onto HTTP statuses: resolution errors
// are the client's fault, everything else is the engine's.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownEntity),
		errors.Is(err, core.ErrUnknownType),
		errors.Is(err, core.ErrUnknownPredicate),
		errors.Is(err, core.ErrUnknownAttribute),
		errors.Is(err, core.ErrShardedSampler),
		errors.Is(err, core.ErrPlanSampler),
		errors.Is(err, core.ErrPlanOption),
		errors.Is(err, core.ErrBadAggSpec),
		errors.Is(err, core.ErrFederatedQuery),
		errors.Is(err, federate.ErrUnresolved),
		errors.Is(err, core.ErrEpochNotReached):
		return http.StatusBadRequest
	case errors.Is(err, federate.ErrPartialFederation):
		// Members died past the retry budget and no degradation was allowed:
		// the coordinator's upstream failed, not the client or this process.
		return http.StatusBadGateway
	case errors.Is(err, core.ErrNotConverged):
		return http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrInterrupted):
		// A timeout/disconnect that landed before any partial result exists
		// (e.g. during preparation) is the client's deadline, not our fault.
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// isMutationError reports whether an Apply failure is the batch's fault
// (validation rejected it — a 400) as opposed to a durability failure
// (WAL write/sync error, store closed — the server's 503).
func isMutationError(err error) bool {
	return errors.Is(err, live.ErrUnknownEntity) ||
		errors.Is(err, live.ErrFrozenPredicate) ||
		errors.Is(err, live.ErrEdgeNotFound) ||
		errors.Is(err, live.ErrSelfLoop) ||
		errors.Is(err, live.ErrBadMutation)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, maxRequestBody, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	agg, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The request context carries both the client disconnect and the server
	// drain; the optional per-query timeout layers on top. Either way the
	// engine returns its partial estimate instead of running on.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	ctx, endTrace := s.trace(ctx, w, "query", agg.String())
	defer endTrace()
	opts = append(opts, s.degradeOptions(ctx, req.ErrorBound)...)

	// A coordinator scatters single-aggregate guaranteed queries across its
	// members; the shapes that do not decompose into remote strata are the
	// client's to re-route to a member directly.
	if s.fed != nil {
		switch {
		case len(req.Aggregates) > 0:
			writeError(w, http.StatusBadRequest, "multi-aggregate queries do not federate (one shared sample cannot span members)")
		case req.MinEpoch > 0:
			writeError(w, http.StatusBadRequest, "min_epoch is not meaningful across federation members (each owns its own epoch sequence)")
		case req.Stream:
			s.streamQuery(ctx, w, agg, func(ctx context.Context, extra ...core.QueryOption) (*core.Result, error) {
				return s.fed.Query(ctx, agg, append(opts, extra...)...)
			})
		default:
			s.runSingle(ctx, w, agg, func(ctx context.Context) (*core.Result, error) {
				return s.fed.Query(ctx, agg, opts...)
			})
		}
		return
	}

	if len(req.Aggregates) > 0 {
		if req.Stream {
			writeError(w, http.StatusBadRequest, "\"aggregates\" and \"stream\" are incompatible")
			return
		}
		specs, err := toSpecs(req.Aggregates)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.runMulti(ctx, w, agg, specs, func(ctx context.Context) (*core.MultiResult, error) {
			return s.eng.QueryMulti(ctx, agg, specs, opts...)
		})
		return
	}

	if req.Stream {
		s.streamQuery(ctx, w, agg, func(ctx context.Context, extra ...core.QueryOption) (*core.Result, error) {
			return s.eng.Query(ctx, agg, append(opts, extra...)...)
		})
		return
	}
	s.runSingle(ctx, w, agg, func(ctx context.Context) (*core.Result, error) {
		return s.eng.Query(ctx, agg, opts...)
	})
}

// runSingle executes one single-aggregate query through run and writes the
// response, sharing the partial-result contract between the direct and
// prepared-plan paths.
func (s *Server) runSingle(ctx context.Context, w http.ResponseWriter, agg *query.Aggregate,
	run func(context.Context) (*core.Result, error)) {

	begin := time.Now()
	res, err := run(ctx)
	elapsed := time.Since(begin)
	if err != nil {
		// A partial result is only worth a 200 when it carries an estimate;
		// an interruption before the first completed round (NaN estimate)
		// is the same outcome as one during preparation — a timeout.
		if core.IsPartial(err, res) {
			resp := toResponse(agg, res, true, elapsed)
			resp.Error = err.Error()
			s.finishSingle(ctx, &resp)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeError(w, errorStatus(err), "%v", err)
		return
	}
	resp := toResponse(agg, res, false, elapsed)
	s.finishSingle(ctx, &resp)
	writeJSON(w, http.StatusOK, resp)
}

// finishSingle folds the request-scoped degradation record (the admission
// grant's relaxed bound) into the response, mirrors the final degraded flag
// and convergence telemetry back into the request state for the access log
// and grant outcome, and seals the lifecycle trace so the client can fetch
// it by the echoed id as soon as it reads the response.
func (s *Server) finishSingle(ctx context.Context, resp *queryResponse) {
	if st := stateFrom(ctx); st != nil {
		if st.effectiveEB > 0 {
			resp.EffectiveEB = st.effectiveEB
			resp.Degraded = true
		}
		if resp.Degraded {
			st.degraded = true
		}
		st.rounds, st.hasRounds = len(resp.Rounds), true
		st.achievedEB = resp.AchievedEB
	}
	if t := obs.TraceFrom(ctx); t != nil {
		resp.TraceID = t.ID()
		s.tracer.Finish(t)
	}
}

// finishMulti is finishSingle for multi-aggregate responses.
func (s *Server) finishMulti(ctx context.Context, resp *multiResponse) {
	if st := stateFrom(ctx); st != nil {
		if st.effectiveEB > 0 {
			resp.EffectiveEB = st.effectiveEB
			resp.Degraded = true
		}
		if resp.Degraded {
			st.degraded = true
		}
		st.rounds, st.hasRounds = resp.Rounds, true
	}
	if t := obs.TraceFrom(ctx); t != nil {
		resp.TraceID = t.ID()
		s.tracer.Finish(t)
	}
}

// runMulti executes a multi-aggregate query through run and writes the
// response; an interrupted run with partial estimates still answers 200.
func (s *Server) runMulti(ctx context.Context, w http.ResponseWriter, agg *query.Aggregate,
	specs []core.AggSpec, run func(context.Context) (*core.MultiResult, error)) {

	begin := time.Now()
	res, err := run(ctx)
	elapsed := time.Since(begin)
	if err != nil {
		if errors.Is(err, core.ErrInterrupted) && res != nil && anyEstimate(res) {
			resp := toMultiResponse(agg, res, true, elapsed)
			resp.Error = err.Error()
			s.finishMulti(ctx, &resp)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeError(w, errorStatus(err), "%v", err)
		return
	}
	resp := toMultiResponse(agg, res, false, elapsed)
	s.finishMulti(ctx, &resp)
	writeJSON(w, http.StatusOK, resp)
}

// anyEstimate reports whether a partial multi result carries at least one
// usable estimate.
func anyEstimate(res *core.MultiResult) bool {
	for _, ar := range res.Aggs {
		if !math.IsNaN(ar.Estimate) {
			return true
		}
	}
	return false
}

// streamQuery answers in NDJSON: a {"round":…} line per refinement round
// (flushed immediately — OnRound fires on this goroutine, so writes need no
// locking), then one final {"result":…} or {"error":…} line. run executes
// the query with the streaming callback appended — the direct and
// prepared-plan paths share this.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, agg *query.Aggregate,
	run func(context.Context, ...core.QueryOption) (*core.Result, error)) {

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	wrote := false
	emit := func(v any) {
		wrote = true
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	begin := time.Now()
	res, err := run(ctx, core.OnRound(func(r core.Round) {
		emit(map[string]roundJSON{"round": {Estimate: r.Estimate, MoE: jsonFloat(r.MoE), SampleSize: r.SampleSize}})
	}))
	elapsed := time.Since(begin)
	switch {
	case err != nil && core.IsPartial(err, res):
		resp := toResponse(agg, res, true, elapsed)
		resp.Error = err.Error()
		s.finishSingle(ctx, &resp)
		emit(map[string]queryResponse{"result": resp})
	case err != nil:
		// While nothing has been streamed the status line is still ours to
		// set; match the non-stream path instead of defaulting to 200.
		if !wrote {
			w.WriteHeader(errorStatus(err))
		}
		emit(map[string]string{"error": err.Error()})
	default:
		resp := toResponse(agg, res, false, elapsed)
		s.finishSingle(ctx, &resp)
		emit(map[string]queryResponse{"result": resp})
	}
}

// aggResultJSON is one aggregate's outcome within a multi-aggregate
// response.
type aggResultJSON struct {
	Func       string   `json:"func"`
	Attr       string   `json:"attr,omitempty"`
	Estimate   *float64 `json:"estimate"`
	MoE        *float64 `json:"moe"`
	ErrorBound float64  `json:"error_bound"`
	Converged  bool     `json:"converged"`
	// AchievedEB is the bound this aggregate's interval actually attains
	// (null when no finite bound is honest).
	AchievedEB *float64             `json:"achieved_eb,omitempty"`
	Rounds     []roundJSON          `json:"rounds,omitempty"`
	Groups     map[string]groupJSON `json:"groups,omitempty"`
}

// multiResponse is the body of a multi-aggregate execution: shared sample
// counters plus one result per aggregate.
type multiResponse struct {
	Query       string          `json:"query"`
	Aggs        []aggResultJSON `json:"aggregates"`
	Confidence  float64         `json:"confidence"`
	Converged   bool            `json:"converged"`
	Interrupted bool            `json:"interrupted,omitempty"`
	Rounds      int             `json:"rounds"`
	SampleSize  int             `json:"sample_size"`
	Distinct    int             `json:"distinct"`
	Candidates  int             `json:"candidates"`
	Shards      int             `json:"shards,omitempty"`
	Epoch       uint64          `json:"epoch"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	// Degraded marks an honestly-loosened answer (see queryResponse).
	Degraded bool `json:"degraded,omitempty"`
	// EffectiveEB is the relaxed bound admission substituted under queue
	// pressure (absent when the request's own bound was used).
	EffectiveEB float64 `json:"effective_eb,omitempty"`
	// TraceID names this execution's lifecycle trace (see queryResponse).
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error,omitempty"`
}

func toMultiResponse(agg *query.Aggregate, res *core.MultiResult, interrupted bool, elapsed time.Duration) multiResponse {
	out := multiResponse{
		Query:       agg.String(),
		Confidence:  res.Confidence,
		Converged:   res.Converged,
		Interrupted: interrupted,
		Rounds:      res.Rounds,
		SampleSize:  res.SampleSize,
		Distinct:    res.Distinct,
		Candidates:  res.Candidates,
		Shards:      res.Shards,
		Epoch:       res.Epoch,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
		Degraded:    res.Degraded,
	}
	for _, ar := range res.Aggs {
		aj := aggResultJSON{
			Func:       ar.Spec.Func.String(),
			Attr:       ar.Spec.Attr,
			Estimate:   jsonFloat(ar.Estimate),
			MoE:        jsonFloat(ar.MoE),
			ErrorBound: ar.ErrorBound,
			Converged:  ar.Converged,
			AchievedEB: jsonFloat(ar.AchievedEB()),
		}
		for _, r := range ar.Rounds {
			aj.Rounds = append(aj.Rounds, roundJSON{Estimate: r.Estimate, MoE: jsonFloat(r.MoE), SampleSize: r.SampleSize})
		}
		if ar.Groups != nil {
			aj.Groups = map[string]groupJSON{}
			for label, gr := range ar.Groups {
				aj.Groups[label] = groupJSON{Estimate: gr.Estimate, MoE: jsonFloat(gr.MoE), Draws: gr.Draws}
			}
		}
		out.Aggs = append(out.Aggs, aj)
	}
	return out
}

// prepareRequest is the body of POST /v1/prepare: the textual query plus
// the plan-relevant options. Execution-level knobs (error bound, seed,
// draw budgets) belong on the per-execution /v1/plans/{id}/query request
// instead; the ones here are compiled into the plan.
type prepareRequest struct {
	Query string `json:"query"`
	// Tau is compiled into the plan's validation oracle.
	Tau float64 `json:"tau,omitempty"`
	// Shards fixes the plan's stratum split.
	Shards int `json:"shards,omitempty"`
	// EpochPolicy is "pin" (default: freeze the Prepare-time snapshot) or
	// "repin" (follow the live graph, rebuilding when the epoch moves).
	EpochPolicy string `json:"epoch_policy,omitempty"`
	// MinEpoch makes the plan observe at least this epoch (read-your-writes
	// at prepare time).
	MinEpoch uint64 `json:"min_epoch,omitempty"`
	// TimeoutMS bounds the compilation (walk convergence).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

func (pr *prepareRequest) options() ([]core.QueryOption, error) {
	var opts []core.QueryOption
	if pr.Tau > 0 {
		opts = append(opts, core.WithTau(pr.Tau))
	}
	if pr.Shards > 0 {
		opts = append(opts, core.WithShards(pr.Shards))
	}
	if pr.MinEpoch > 0 {
		opts = append(opts, core.WithMinEpoch(pr.MinEpoch))
	}
	switch strings.ToLower(pr.EpochPolicy) {
	case "", "pin":
	case "repin":
		opts = append(opts, core.WithEpochPolicy(core.EpochRepin))
	default:
		return nil, fmt.Errorf("unknown epoch_policy %q (pin, repin)", pr.EpochPolicy)
	}
	return opts, nil
}

// handlePrepare compiles a query into a cached plan and returns its id and
// metadata. The id is a content hash, so preparing the same query twice is
// idempotent and refreshes the plan's TTL.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if !readJSON(w, r, maxRequestBody, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	agg, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	ctx, endTrace := s.trace(ctx, w, "prepare", agg.String())
	defer endTrace()
	id := planID(agg.String(), req.optFingerprint())
	if e := s.plans.get(id); e != nil {
		// Idempotent re-prepare: the resident plan is fresh again.
		metPlanHits.Inc()
		endTrace()
		writeJSON(w, http.StatusOK, s.plans.entryJSON(e, time.Now()))
		return
	}
	metPlanMisses.Inc()
	p, err := s.eng.Prepare(ctx, agg, opts...)
	if err != nil {
		writeError(w, errorStatus(err), "%v", err)
		return
	}
	e := s.plans.put(id, p, agg)
	endTrace()
	writeJSON(w, http.StatusOK, s.plans.entryJSON(e, time.Now()))
}

// handlePlanQuery executes a cached plan: the body is a queryRequest
// without "query" (the plan carries it) — single-aggregate by default,
// multi-aggregate with "aggregates", NDJSON streaming with "stream".
// Unknown or expired plan ids answer 404.
func (s *Server) handlePlanQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req queryRequest
	if !readJSON(w, r, maxRequestBody, &req) {
		return
	}
	if req.Query != "" {
		writeError(w, http.StatusBadRequest, "\"query\" belongs to /v1/prepare; the plan already carries it")
		return
	}
	e := s.plans.get(id)
	if e == nil {
		metPlanMisses.Inc()
		writeError(w, http.StatusNotFound, "unknown or expired plan %q (POST /v1/prepare first)", id)
		return
	}
	metPlanHits.Inc()
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	ctx, endTrace := s.trace(ctx, w, "plan_query", e.agg.String())
	defer endTrace()
	opts = append(opts, s.degradeOptions(ctx, req.ErrorBound)...)
	if len(req.Aggregates) > 0 {
		if req.Stream {
			writeError(w, http.StatusBadRequest, "\"aggregates\" and \"stream\" are incompatible")
			return
		}
		specs, err := toSpecs(req.Aggregates)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.runMulti(ctx, w, e.agg, specs, func(ctx context.Context) (*core.MultiResult, error) {
			return e.prepared.QueryMulti(ctx, specs, opts...)
		})
		return
	}
	if req.Stream {
		s.streamQuery(ctx, w, e.agg, func(ctx context.Context, extra ...core.QueryOption) (*core.Result, error) {
			return e.prepared.Query(ctx, append(opts, extra...)...)
		})
		return
	}
	s.runSingle(ctx, w, e.agg, func(ctx context.Context) (*core.Result, error) {
		return e.prepared.Query(ctx, opts...)
	})
}

// cacheJSON is the answer-space cache snapshot on the wire, shared by
// /v1/healthz and the debug mux's /debug/cache.
type cacheJSON struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Bytes    int64   `json:"bytes"`
	MaxBytes int64   `json:"max_bytes"`
}

func cacheSnapshot(eng *core.Engine) cacheJSON {
	st := eng.CacheStats()
	return cacheJSON{
		Hits:     st.Hits,
		Misses:   st.Misses,
		HitRate:  st.HitRate(),
		Entries:  st.Entries,
		Bytes:    st.Bytes,
		MaxBytes: st.MaxBytes,
	}
}

// shardJSON is one shard's statistics on the wire (healthz and
// /debug/shards): node ownership balance, attributed sample draws, and —
// on live servers — mutations that landed in the shard's territory.
type shardJSON struct {
	Shard      int    `json:"shard"`
	OwnedNodes int    `json:"owned_nodes"`
	Draws      uint64 `json:"draws"`
	Touched    uint64 `json:"touched,omitempty"`
}

func shardSnapshot(eng *core.Engine) []shardJSON {
	st := eng.ShardStats()
	out := make([]shardJSON, len(st))
	for i, s := range st {
		out[i] = shardJSON{Shard: s.Shard, OwnedNodes: s.OwnedNodes, Draws: s.Draws, Touched: s.Touched}
	}
	return out
}

// healthResponse is the body of GET /v1/healthz.
type healthResponse struct {
	Status     string      `json:"status"`
	UptimeS    float64     `json:"uptime_s"`
	Nodes      int         `json:"nodes"`
	Edges      int         `json:"edges"`
	Predicates int         `json:"predicates"`
	Types      int         `json:"types"`
	Epoch      uint64      `json:"epoch"`
	Live       bool        `json:"live"`
	DeltaNodes int         `json:"delta_nodes,omitempty"`
	Cache      cacheJSON   `json:"cache"`
	Plans      int         `json:"plans"`
	Shards     []shardJSON `json:"shards,omitempty"`
	// Admission is the serving tier's load snapshot: in-flight/queued depth,
	// shed and degrade counters, and the latency-SLO percentiles (absent
	// when admission control is off).
	Admission *admission.Stats `json:"admission,omitempty"`
	// Durability is the WAL/checkpoint picture: last synced epoch, newest
	// checkpoint, segment count and the boot-time recovery stats (absent on
	// memory-only servers).
	Durability *live.DurabilityStats `json:"durability,omitempty"`
	// Federation is the coordinator's passive member-health picture (absent
	// unless this server coordinates a federation).
	Federation *federationHealth `json:"federation,omitempty"`
	// Build is the binary's build provenance (absent until the binary
	// registers it; see ConfigureBuild).
	Build *buildinfo.Info `json:"build,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g, epoch := s.eng.Snapshot()
	h := healthResponse{
		Status:     "ok",
		UptimeS:    time.Since(s.started).Seconds(),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Predicates: g.NumPredicates(),
		Types:      g.NumTypes(),
		Epoch:      epoch,
		Live:       s.store != nil,
		Cache:      cacheSnapshot(s.eng),
		Plans:      s.plans.len(),
	}
	if s.store != nil {
		h.DeltaNodes = s.store.Snapshot().DeltaSize()
	}
	// Per-shard stats appear once the server runs an actual partition plan
	// (a single-shard engine's stats are the graph totals already shown).
	if sh := shardSnapshot(s.eng); len(sh) > 1 {
		h.Shards = sh
	}
	if s.adm != nil {
		st := s.adm.Stats()
		h.Admission = &st
		if st.Draining {
			h.Status = "draining"
		}
	}
	if s.dur != nil {
		st := s.dur.Stats()
		h.Durability = &st
	}
	h.Federation = s.federationHealth()
	h.Build = s.build
	writeJSON(w, http.StatusOK, h)
}

// mutateResponse is the body of a successful POST /v1/mutate.
type mutateResponse struct {
	// Epoch is the epoch the batch created; pass it back as min_epoch on
	// /v1/query for read-your-writes.
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	// TraceID names this batch's lifecycle trace (see queryResponse).
	TraceID string `json:"trace_id,omitempty"`
}

// handleMutate applies one atomic mutation batch, encoded as NDJSON: one
// JSON mutation object per line (see live.Mutation), e.g.
//
//	{"op":"add_entity","entity":"Tesla_3","types":["Automobile"]}
//	{"op":"add_edge","src":"Germany","pred":"product","dst":"Tesla_3"}
//	{"op":"set_attr","entity":"Tesla_3","attr":"price","value":39000}
//
// The whole request is one batch: either every line lands and the response
// carries the new epoch, or nothing does and the 400 body names the
// offending line.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); !contentTypeOK(ct,
		"application/x-ndjson", "application/jsonlines", "application/json") {
		writeError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type %q (use application/x-ndjson)", ct)
		return
	}
	var batch live.Batch
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, maxMutateBody))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m live.Mutation
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&m); err != nil {
			writeError(w, http.StatusBadRequest, "line %d: %v", lineNo, err)
			return
		}
		batch = append(batch, m)
	}
	if err := sc.Err(); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"mutation batch exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty mutation batch")
		return
	}
	ctx, endTrace := s.trace(r.Context(), w, "mutate", fmt.Sprintf("%d mutations", len(batch)))
	defer endTrace()
	// On a durable server the batch is framed into the WAL (and fsynced,
	// under sync=always) strictly before this returns: the acknowledged
	// epoch survives a kill.
	var snap *live.Snapshot
	var err error
	if s.dur != nil {
		snap, err = s.dur.Apply(batch)
	} else {
		snap, err = s.store.Apply(batch)
	}
	if err != nil {
		if isMutationError(err) {
			// A malformed or unsatisfiable batch — the client's to fix; the
			// store state is untouched.
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// The batch was valid but could not be made durable (WAL failure,
		// store closed mid-drain): the server's fault, nothing applied.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	// Counts come from the snapshot this very batch created, so the
	// response is self-consistent even while other clients keep writing.
	resp := mutateResponse{
		Epoch:   snap.Epoch(),
		Applied: len(batch),
		Nodes:   snap.NumNodes(),
		Edges:   snap.NumEdges(),
	}
	if t := obs.TraceFrom(ctx); t != nil {
		t.SetAttr("epoch", snap.Epoch())
		t.SetAttr("applied", len(batch))
		resp.TraceID = t.ID()
	}
	endTrace()
	writeJSON(w, http.StatusOK, resp)
}

// debugRoute is one entry of the /debug/ index.
type debugRoute struct {
	Path string `json:"path"`
	Desc string `json:"desc"`
}

// debugIndex describes every route the debug mux serves; GET /debug/
// returns it so operators can discover the surface without the source.
var debugIndex = []debugRoute{
	{"/metrics", "process metrics, Prometheus text exposition format"},
	{"/debug/trace", "retained query-lifecycle traces, newest first"},
	{"/debug/trace/{id}", "one trace: spans, per-round convergence telemetry, attributes"},
	{"/debug/cache", "answer-space cache counters"},
	{"/debug/shards", "per-shard ownership, draws and mutation touches"},
	{"/debug/plans", "resident prepared plans, most recently used first"},
	{"/debug/admission", "admission controller snapshot (404 when admission is off)"},
	{"/debug/durability", "WAL/checkpoint picture (404 on memory-only servers)"},
	{"/debug/federation", "coordinator member health: passive stats + active probe (404 when not coordinating)"},
	{"/debug/pprof/", "net/http/pprof profile suite"},
}

// DebugHandler returns the operations mux served on the (loopback-only by
// default) debug address: the net/http/pprof suite under /debug/pprof/,
// the Prometheus scrape endpoint at /metrics, the trace ring under
// /debug/trace, and JSON snapshots of the cache/shard/plan/admission/
// durability state. It is deliberately a separate handler from the public
// API so profiling endpoints never face query traffic.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", obs.Default().Handler())
	mux.HandleFunc("GET /debug/{$}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, debugIndex)
	})
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.tracer.Summaries())
	})
	mux.HandleFunc("GET /debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		td := s.tracer.Lookup(id)
		if td == nil {
			writeError(w, http.StatusNotFound, "unknown trace %q (evicted, unsampled, or never issued)", id)
			return
		}
		writeJSON(w, http.StatusOK, td)
	})
	mux.HandleFunc("GET /debug/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, cacheSnapshot(s.eng))
	})
	mux.HandleFunc("GET /debug/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, shardSnapshot(s.eng))
	})
	mux.HandleFunc("GET /debug/plans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.plans.snapshot())
	})
	mux.HandleFunc("GET /debug/admission", func(w http.ResponseWriter, r *http.Request) {
		if s.adm == nil {
			writeError(w, http.StatusNotFound, "admission control is not configured")
			return
		}
		writeJSON(w, http.StatusOK, s.adm.Stats())
	})
	mux.HandleFunc("GET /debug/durability", func(w http.ResponseWriter, r *http.Request) {
		if s.dur == nil {
			writeError(w, http.StatusNotFound, "durability is not configured (start with -data-dir)")
			return
		}
		writeJSON(w, http.StatusOK, s.dur.Stats())
	})
	mux.HandleFunc("GET /debug/federation", s.handleDebugFederation)
	return mux
}
