package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kgaq/internal/admission"
	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/live"
)

// admissionServer builds a static-graph server behind an admission
// controller, returning both so tests can reach the controller directly.
func admissionServer(t *testing.T, cfg admission.Config) (*httptest.Server, *Server) {
	t.Helper()
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(eng)
	api.ConfigureAdmission(admission.New(cfg), "")
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts, api
}

// TestRequestIDHeader: every response carries X-Request-ID; an inbound id is
// honoured so callers can correlate.
func TestRequestIDHeader(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(RequestIDHeader); id == "" {
		t.Fatal("response has no X-Request-ID")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set(RequestIDHeader, "caller-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(RequestIDHeader); id != "caller-42" {
		t.Fatalf("inbound request id not honoured: got %q", id)
	}
}

// TestAccessLog: the structured log carries method, route pattern, status,
// latency and the client identity.
func TestAccessLog(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(eng)
	var buf bytes.Buffer
	var mu sync.Mutex
	api.ConfigureLogging(slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil)))
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query",
		strings.NewReader(fmt.Sprintf(`{"query": %q, "seed": 3}`, avgPriceText)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ClientIDHeader, "tester")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	line := buf.String()
	mu.Unlock()
	var entry struct {
		Msg       string  `json:"msg"`
		ID        string  `json:"id"`
		Client    string  `json:"client"`
		Method    string  `json:"method"`
		Route     string  `json:"route"`
		Status    int     `json:"status"`
		LatencyMS float64 `json:"latency_ms"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("%v in %q", err, line)
	}
	if entry.Msg != "request" || entry.ID == "" || entry.Client != "tester" {
		t.Fatalf("log entry = %+v", entry)
	}
	if entry.Method != "POST" || entry.Route != "POST /v1/query" || entry.Status != 200 {
		t.Fatalf("log entry = %+v", entry)
	}
	if entry.LatencyMS <= 0 {
		t.Fatalf("latency_ms = %g", entry.LatencyMS)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestQueueFullResponse: with the slot held and the queue full, a request
// answers a typed 429 with a Retry-After header — the backpressure contract.
func TestQueueFullResponse(t *testing.T) {
	ts, api := admissionServer(t, admission.Config{MaxInFlight: 1, MaxQueue: 1})

	// Hold the only slot and fill the one queue position via the controller.
	grant, err := api.Admission().Admit(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	defer grant.Release(0, admission.OutcomeOK)
	queued := make(chan struct{})
	go func() {
		g, err := api.Admission().Admit(context.Background(), "holder")
		if err == nil {
			defer g.Release(0, admission.OutcomeOK)
		}
		close(queued)
	}()
	waitUntil(t, func() bool { return api.Admission().Stats().Queued == 1 })

	resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q}`, avgPriceText))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var shed shedBody
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if shed.Code != "queue_full" || shed.Error == "" || shed.RetryAfterS <= 0 {
		t.Fatalf("shed body = %+v", shed)
	}
	grant.Release(0, admission.OutcomeOK)
	<-queued
}

// TestRateLimitResponse: a client over its token budget answers a typed 429
// whose code distinguishes it from queue pressure.
func TestRateLimitResponse(t *testing.T) {
	ts, _ := admissionServer(t, admission.Config{MaxInFlight: 4, PerClientRate: 0.001, PerClientBurst: 1})

	body := fmt.Sprintf(`{"query": %q, "seed": 3}`, avgPriceText)
	do := func() (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ClientIDHeader, "greedy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	if resp, b := do(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d: %s", resp.StatusCode, b)
	}
	resp, b := do()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	var shed shedBody
	if err := json.Unmarshal(b, &shed); err != nil {
		t.Fatalf("%v in %s", err, b)
	}
	if shed.Code != "rate_limited" {
		t.Fatalf("shed code = %q, want rate_limited", shed.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 without Retry-After")
	}
}

// TestDeadlineDegradedResponse: an unattainably tight bound under a request
// timeout degrades honestly — 200, degraded=true, finite achieved_eb —
// because the admission tier arms core.Degradation on every execution.
func TestDeadlineDegradedResponse(t *testing.T) {
	ts, _ := admissionServer(t, admission.Config{MaxInFlight: 4, MaxErrorBound: 0.5})

	// max_draws is lifted far past the default cap so the deadline — not
	// the draw budget — is what ends refinement.
	resp, body := postQuery(t, ts, fmt.Sprintf(
		`{"query": %q, "error_bound": 1e-9, "timeout_ms": 250, "max_draws": 1000000000, "seed": 3}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if !qr.Degraded {
		t.Fatalf("degraded = false: %s", body)
	}
	if qr.Interrupted {
		t.Fatalf("degradation should beat the deadline, not trip it: %s", body)
	}
	if qr.AchievedEB == nil || *qr.AchievedEB <= 0 {
		t.Fatalf("achieved_eb = %v, want finite positive", qr.AchievedEB)
	}
	if qr.TargetEB != 1e-9 {
		t.Fatalf("target_eb = %g", qr.TargetEB)
	}
}

// TestPressureRelaxedResponse: a request admitted from a pressured queue
// runs against a relaxed effective bound and says so.
func TestPressureRelaxedResponse(t *testing.T) {
	ts, api := admissionServer(t, admission.Config{
		MaxInFlight: 1, MaxQueue: 2, DegradePressure: 0.4, MaxErrorBound: 0.5,
	})

	grant, err := api.Admission().Admit(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}

	body := fmt.Sprintf(`{"query": %q, "error_bound": 0.02, "seed": 3}`, avgPriceText)
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			results <- result{}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		results <- result{resp.StatusCode, buf.Bytes()}
	}
	// First waiter arrives at pressure 0 (keeps its bound), the second at
	// pressure 1/2 ≥ 0.4 (relaxed).
	go post()
	waitUntil(t, func() bool { return api.Admission().Stats().Queued == 1 })
	go post()
	waitUntil(t, func() bool { return api.Admission().Stats().Queued == 2 })
	grant.Release(0, admission.OutcomeOK)

	relaxed := 0
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("status = %d: %s", r.status, r.body)
		}
		var qr queryResponse
		if err := json.Unmarshal(r.body, &qr); err != nil {
			t.Fatalf("%v in %s", err, r.body)
		}
		if qr.EffectiveEB > 0 {
			relaxed++
			if !qr.Degraded {
				t.Fatalf("effective_eb %g without degraded flag: %s", qr.EffectiveEB, r.body)
			}
			if qr.EffectiveEB <= 0.02 || qr.EffectiveEB > 0.5 {
				t.Fatalf("effective_eb = %g, want in (0.02, 0.5]", qr.EffectiveEB)
			}
		}
	}
	if relaxed != 1 {
		t.Fatalf("relaxed responses = %d, want exactly the pressured waiter", relaxed)
	}

	if st := api.Admission().Stats(); st.Degraded != 1 {
		t.Errorf("controller degraded counter = %d, want 1", st.Degraded)
	}
}

// TestHealthzAdmissionBlock: healthz exposes the admission snapshot and the
// debug mux serves /debug/admission.
func TestHealthzAdmissionBlock(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(eng)
	api.ConfigureAdmission(admission.New(admission.Config{MaxInFlight: 3}), "")
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	dbg := httptest.NewServer(api.DebugHandler())
	t.Cleanup(dbg.Close)

	postQuery(t, ts, fmt.Sprintf(`{"query": %q, "seed": 3}`, avgPriceText))
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Admission == nil {
		t.Fatal("healthz has no admission block")
	}
	if h.Admission.MaxInFlight != 3 || h.Admission.Completed == 0 {
		t.Fatalf("admission block = %+v", h.Admission)
	}

	dresp, err := http.Get(dbg.URL + "/debug/admission")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var st admission.Stats
	if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.MaxInFlight != 3 {
		t.Fatalf("/debug/admission = %+v", st)
	}
}

// TestGracefulDrain exercises the shutdown contract on a live server with a
// concurrent mutation stream: the in-flight request (blocked on a future
// epoch) completes, the queued request sheds with a typed 503, the drain
// returns only after the slot frees, and post-drain arrivals shed.
func TestGracefulDrain(t *testing.T) {
	g := kgtest.Figure1()
	store := live.NewStore(g, 0)
	eng, err := core.NewLiveEngine(store, embtest.Figure1Model(g), core.Options{ErrorBound: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewLiveServer(eng, store)
	api.ConfigureAdmission(admission.New(admission.Config{MaxInFlight: 1, MaxQueue: 2}), "")
	ts := httptest.NewServer(api.Handler())

	// The live mutation stream: applied at the store layer so it keeps
	// advancing epochs through the drain (HTTP mutates would shed).
	streamCtx, stopStream := context.WithCancel(context.Background())
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		for i := 0; ; i++ {
			select {
			case <-streamCtx.Done():
				return
			default:
			}
			ent := fmt.Sprintf("Drain_%d", i)
			_, err := store.Apply(live.Batch{
				{Op: live.OpAddEntity, Entity: ent, Types: []string{"Automobile"}},
				{Op: live.OpAddEdge, Src: "Germany", Pred: "product", Dst: ent},
				{Op: live.OpSetAttr, Entity: ent, Attr: "price", Value: 30000},
			})
			if err != nil {
				t.Errorf("stream apply: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() { stopStream(); <-streamDone }()

	countText := "COUNT(*) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c"

	// In-flight: holds the only slot while waiting for a future epoch the
	// stream will eventually reach.
	_, epoch := eng.Snapshot()
	inflight := make(chan result2, 1)
	go func() {
		inflight <- post2(ts, fmt.Sprintf(`{"query": %q, "min_epoch": %d, "seed": 3}`, countText, epoch+40))
	}()
	waitUntil(t, func() bool { return api.Admission().Stats().InFlight == 1 })

	// Queued: waits for the slot until the drain sheds it.
	queued := make(chan result2, 1)
	go func() {
		queued <- post2(ts, fmt.Sprintf(`{"query": %q, "seed": 3}`, countText))
	}()
	waitUntil(t, func() bool { return api.Admission().Stats().Queued == 1 })

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- api.Drain(ctx)
	}()

	// The queued request sheds with the typed draining 503.
	qr := <-queued
	if qr.err != nil {
		t.Fatalf("queued request: %v", qr.err)
	}
	if qr.status != http.StatusServiceUnavailable {
		t.Fatalf("queued request status = %d, want 503: %s", qr.status, qr.body)
	}
	var shed shedBody
	if err := json.Unmarshal(qr.body, &shed); err != nil {
		t.Fatalf("%v in %s", err, qr.body)
	}
	if shed.Code != "draining" || qr.retryAfter == "" {
		t.Fatalf("queued shed = %+v, Retry-After %q", shed, qr.retryAfter)
	}

	// The in-flight request completes normally once the stream reaches its
	// epoch, and only then does the drain return.
	fr := <-inflight
	if fr.err != nil {
		t.Fatalf("in-flight request: %v", fr.err)
	}
	if fr.status != http.StatusOK {
		t.Fatalf("in-flight status = %d: %s", fr.status, fr.body)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Post-drain arrivals shed; then the listener closes.
	pr := post2(ts, fmt.Sprintf(`{"query": %q}`, countText))
	if pr.err != nil {
		t.Fatal(pr.err)
	}
	if pr.status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", pr.status)
	}
	ts.Close()
}

type result2 struct {
	status     int
	body       []byte
	retryAfter string
	err        error
}

func post2(ts *httptest.Server, body string) result2 {
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		return result2{err: err}
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return result2{err: err}
	}
	return result2{status: resp.StatusCode, body: buf.Bytes(), retryAfter: resp.Header.Get("Retry-After")}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
