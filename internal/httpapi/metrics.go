package httpapi

import "kgaq/internal/obs"

// Serving-tier metrics. Routes are labelled by the mux pattern the request
// matched ("unmatched" for 404s), never the raw URL path, so cardinality
// stays bounded by the route table.
var (
	metRequests = obs.Default().CounterVec("kgaq_http_requests_total",
		"HTTP requests served, by matched route pattern and status code.",
		"route", "status")
	metLatency = obs.Default().HistogramVec("kgaq_http_request_seconds",
		"HTTP request latency by matched route pattern.", obs.DefBuckets, "route")
	metHTTPInFlight = obs.Default().Gauge("kgaq_http_inflight",
		"HTTP requests currently being served.")
	metPlanHits = obs.Default().Counter("kgaq_http_plan_cache_hits_total",
		"Prepared-plan cache lookups that found a resident plan.")
	metPlanMisses = obs.Default().Counter("kgaq_http_plan_cache_misses_total",
		"Prepared-plan cache lookups that missed (unknown or expired id).")
)
