package httpapi

import (
	"context"
	"errors"
	"net/http"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/estimate"
	"kgaq/internal/federate"
	"kgaq/internal/query"
)

// This file is the HTTP face of federated execution (DESIGN.md "Federation:
// remote strata"). Every server is member-capable: POST /v1/federate/sample
// runs one stratum round against the local engine. A server additionally
// becomes a coordinator via ConfigureFederation, after which /v1/query
// scatters across the configured members instead of running locally.

// ConfigureFederation turns this server into a federation coordinator:
// single-aggregate /v1/query requests scatter across the coordinator's
// members and merge through the stratified combiner, /v1/healthz gains the
// federation block, and /debug/federation serves member health. Call before
// serving.
func (s *Server) ConfigureFederation(c *federate.Coordinator) { s.fed = c }

// handleFederateSample is the member half of a federated query: run a pilot
// and/or the allocated draws against the local engine's own graph and
// return the observation stream with member-local probabilities
// (POST /v1/federate/sample, see federate.SampleRequest/SampleResponse).
func (s *Server) handleFederateSample(w http.ResponseWriter, r *http.Request) {
	var req federate.SampleRequest
	if !readJSON(w, r, maxRequestBody, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	agg, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	var opts []core.QueryOption
	if req.Seed != 0 {
		opts = append(opts, core.WithSeed(req.Seed))
	}
	if req.Tau > 0 {
		opts = append(opts, core.WithTau(req.Tau))
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	ctx, endTrace := s.trace(ctx, w, "federate-sample", agg.String())
	defer endTrace()

	begin := time.Now()
	ms, err := s.eng.FederateSample(ctx, agg, req.Draws, req.Pilot, opts...)
	if err != nil {
		// A query this member's graph simply cannot resolve (anchor entity,
		// type, predicate or attribute absent) is an honest empty stratum,
		// not a failure: other members may well hold the answers.
		if errors.Is(err, core.ErrUnknownEntity) || errors.Is(err, core.ErrUnknownType) ||
			errors.Is(err, core.ErrUnknownPredicate) || errors.Is(err, core.ErrUnknownAttribute) {
			_, epoch := s.eng.Snapshot()
			writeJSON(w, http.StatusOK, federate.SampleResponse{
				Candidates: 0,
				Epoch:      epoch,
				ElapsedMS:  float64(time.Since(begin).Microseconds()) / 1000,
			})
			return
		}
		writeError(w, errorStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, federate.SampleResponse{
		Observations: estimate.ToWire(ms.Obs),
		Candidates:   ms.Candidates,
		Epoch:        ms.Epoch,
		Sigma:        ms.Sigma,
		ElapsedMS:    float64(time.Since(begin).Microseconds()) / 1000,
	})
}

// federationHealth is the healthz block of a coordinator: the passive
// member-health picture (no probing on the healthz path — load balancers
// hit it hard).
type federationHealth struct {
	Members []federate.MemberStatus `json:"members"`
	Queries uint64                  `json:"queries"`
	Partial uint64                  `json:"partial,omitempty"`
	// Unhealthy counts configured members that currently look down from
	// query traffic.
	Unhealthy int `json:"unhealthy,omitempty"`
}

func (s *Server) federationHealth() *federationHealth {
	if s.fed == nil {
		return nil
	}
	st := s.fed.Stats()
	fh := &federationHealth{Members: st.Members, Queries: st.Queries, Partial: st.Partial}
	for _, m := range st.Members {
		if m.Contacted && !m.Healthy {
			fh.Unhealthy++
		}
	}
	return fh
}

// debugFederation is the /debug/federation body: passive stats plus an
// active probe of every member's healthz.
type debugFederation struct {
	Stats federate.Stats         `json:"stats"`
	Probe []federate.ProbeResult `json:"probe"`
}

func (s *Server) handleDebugFederation(w http.ResponseWriter, r *http.Request) {
	if s.fed == nil {
		writeError(w, http.StatusNotFound, "federation is not configured (start with -federate-members)")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	writeJSON(w, http.StatusOK, debugFederation{
		Stats: s.fed.Stats(),
		Probe: s.fed.Probe(ctx),
	})
}
