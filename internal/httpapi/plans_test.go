package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// Prepare → execute → execute again: the prepared-plan flow end to end,
// including idempotent re-prepare and plan metadata.
func TestPrepareAndPlanQuery(t *testing.T) {
	ts := testServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/prepare", fmt.Sprintf(`{"query": %q}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare status = %d: %s", resp.StatusCode, body)
	}
	var plan planJSON
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.ID == "" || plan.Shape != "simple" || plan.Candidates == 0 || plan.CacheBuilt == 0 {
		t.Fatalf("plan = %+v", plan)
	}

	// Idempotent re-prepare: same content id, no second build.
	resp, body = postJSON(t, ts.URL+"/v1/prepare", fmt.Sprintf(`{"query": %q}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-prepare status = %d: %s", resp.StatusCode, body)
	}
	var again planJSON
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != plan.ID {
		t.Fatalf("re-prepare changed id: %s vs %s", again.ID, plan.ID)
	}

	// Execute the plan twice; results are deterministic under one seed.
	var ests [2]float64
	for i := range ests {
		resp, body = postJSON(t, ts.URL+"/v1/plans/"+plan.ID+"/query", `{"seed": 11, "error_bound": 0.05}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan query status = %d: %s", resp.StatusCode, body)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Estimate == nil || !qr.Converged {
			t.Fatalf("plan query = %s", body)
		}
		ests[i] = *qr.Estimate
	}
	if ests[0] != ests[1] {
		t.Fatalf("plan executions diverged under one seed: %v vs %v", ests[0], ests[1])
	}
	if rel := stats.RelativeError(ests[0], kgtest.Figure1AvgPrice); rel > 0.05 {
		t.Fatalf("estimate %v vs truth %v", ests[0], kgtest.Figure1AvgPrice)
	}

	// Unknown plan ids are 404.
	resp, _ = postJSON(t, ts.URL+"/v1/plans/p0000000000000000/query", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown plan status = %d", resp.StatusCode)
	}
	// "query" in a plan execution body is a client error.
	resp, _ = postJSON(t, ts.URL+"/v1/plans/"+plan.ID+"/query", fmt.Sprintf(`{"query": %q}`, avgPriceText))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query-in-plan-body status = %d", resp.StatusCode)
	}
}

// The multi-aggregate form: both inline on /v1/query and through a plan,
// answering COUNT+SUM+AVG from one shared sample.
func TestMultiAggregateQuery(t *testing.T) {
	ts := testServer(t)
	const aggs = `"aggregates": [
		{"func": "COUNT"},
		{"func": "SUM", "attr": "price"},
		{"func": "AVG", "attr": "price"}
	]`

	resp, body := postJSON(t, ts.URL+"/v1/query",
		fmt.Sprintf(`{"query": %q, "error_bound": 0.05, "seed": 3, %s}`, avgPriceText, aggs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multi status = %d: %s", resp.StatusCode, body)
	}
	var mr multiResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Converged || len(mr.Aggs) != 3 || mr.SampleSize == 0 {
		t.Fatalf("multi = %s", body)
	}
	for _, ar := range mr.Aggs {
		if ar.Estimate == nil || !ar.Converged {
			t.Fatalf("agg %s: %s", ar.Func, body)
		}
	}
	if rel := stats.RelativeError(*mr.Aggs[2].Estimate, kgtest.Figure1AvgPrice); rel > 0.05 {
		t.Fatalf("AVG %v vs truth", *mr.Aggs[2].Estimate)
	}

	// Through a plan.
	resp, body = postJSON(t, ts.URL+"/v1/prepare", fmt.Sprintf(`{"query": %q}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: %d %s", resp.StatusCode, body)
	}
	var plan planJSON
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/plans/"+plan.ID+"/query",
		fmt.Sprintf(`{"error_bound": 0.05, "seed": 3, %s}`, aggs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan multi status = %d: %s", resp.StatusCode, body)
	}
	var pm multiResponse
	if err := json.Unmarshal(body, &pm); err != nil {
		t.Fatal(err)
	}
	if !pm.Converged || len(pm.Aggs) != 3 {
		t.Fatalf("plan multi = %s", body)
	}

	// Streaming is incompatible with aggregates; bad func names are 400.
	resp, _ = postJSON(t, ts.URL+"/v1/query",
		fmt.Sprintf(`{"query": %q, "stream": true, %s}`, avgPriceText, aggs))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream+aggregates status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query",
		fmt.Sprintf(`{"query": %q, "aggregates": [{"func": "MEDIAN"}]}`, avgPriceText))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad func status = %d", resp.StatusCode)
	}
}

// The /debug/plans listing reflects the resident plans.
func TestDebugPlans(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(eng)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	dbg := httptest.NewServer(api.DebugHandler())
	t.Cleanup(dbg.Close)

	if resp, body := postJSON(t, ts.URL+"/v1/prepare", fmt.Sprintf(`{"query": %q}`, avgPriceText)); resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(dbg.URL + "/debug/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plans []planJSON
	if err := json.NewDecoder(resp.Body).Decode(&plans); err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Shape != "simple" || plans[0].EpochPolicy != "pin" {
		t.Fatalf("debug plans = %+v", plans)
	}

	// Healthz counts the resident plans too.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Plans != 1 {
		t.Fatalf("healthz plans = %d, want 1", h.Plans)
	}
}

// TTL expiry and the capacity bound evict plans; expired ids answer 404.
func TestPlanCacheTTLAndLRU(t *testing.T) {
	pc := newPlanCache(2, 50*time.Millisecond)
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prep := func(name string) *core.Prepared {
		q, err := query.Parse(fmt.Sprintf(
			"AVG(price) MATCH (g:Country name=%s)-[product]->(c:Automobile) TARGET c", name))
		if err != nil {
			t.Fatal(err)
		}
		p, err := eng.Prepare(t.Context(), q)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pc.put("a", prep("Germany"), nil)
	pc.put("b", prep("Germany"), nil)
	pc.put("c", prep("Germany"), nil) // capacity 2: evicts the LRU ("a")
	if pc.get("a") != nil {
		t.Fatal("LRU entry survived over-capacity insert")
	}
	if pc.get("b") == nil || pc.get("c") == nil {
		t.Fatal("resident plans missing")
	}
	time.Sleep(80 * time.Millisecond)
	if pc.get("b") != nil || pc.len() != 0 {
		t.Fatal("TTL-expired plans survived")
	}
}

// Request-body hardening: oversized bodies answer 413, non-JSON
// Content-Types answer 415 — on every JSON endpoint.
func TestRequestBodyHardening(t *testing.T) {
	ts := testServer(t)

	// 413: a body over the 1 MiB bound.
	big := `{"query": "` + strings.Repeat("x", maxRequestBody+1024) + `"}`
	for _, path := range []string{"/v1/query", "/v1/prepare", "/v1/plans/pdeadbeef/query"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized: status = %d, want 413", path, resp.StatusCode)
		}
	}

	// 415: explicit non-JSON Content-Type.
	for _, path := range []string{"/v1/query", "/v1/prepare", "/v1/plans/pdeadbeef/query"} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(`{"query": "x"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("%s text/plain: status = %d, want 415", path, resp.StatusCode)
		}
	}

	// Unset Content-Type (bare curl -d) still works; charset params are fine.
	req, err := http.NewRequest("POST", ts.URL+"/v1/query",
		strings.NewReader(fmt.Sprintf(`{"query": %q, "error_bound": 0.1}`, avgPriceText)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Del("Content-Type")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unset Content-Type: status = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/query", "application/json; charset=utf-8",
		strings.NewReader(fmt.Sprintf(`{"query": %q, "error_bound": 0.1}`, avgPriceText)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("charset param: status = %d, want 200", resp.StatusCode)
	}
}
