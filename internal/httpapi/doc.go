// Package httpapi is the HTTP/JSON serving layer over one shared engine:
// /v1/query (single, streaming, multi-aggregate), the prepared-plan pair
// /v1/prepare + /v1/plans/{id}/query, /v1/mutate for NDJSON mutation
// batches on live graphs, and /v1/healthz.
//
// The work endpoints sit behind an optional admission controller
// (ConfigureAdmission): per-client token buckets, a bounded in-flight
// pool with a bounded wait queue (fast typed 429/503 + Retry-After
// beyond), and honest degradation — under queue pressure or a tight
// deadline the effective error bound relaxes toward a configured floor
// and the response reports degraded/target_eb/effective_eb/achieved_eb,
// so clients always see the guarantee actually delivered. Every request
// carries an X-Request-ID and can emit one structured access-log line
// (ConfigureLogging); /debug/admission and the healthz admission block
// expose shed/degrade counters and latency percentiles. Drain sheds the
// queue and waits for in-flight work before shutdown.
package httpapi
