package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/faultinject"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/live"
	"kgaq/internal/wal"
)

// testDurableServer builds a read-write server whose mutations go through a
// WAL-backed durable store rooted at a fresh directory.
func testDurableServer(t *testing.T, dir string) (*httptest.Server, *Server, *live.Durable) {
	t.Helper()
	g := kgtest.Figure1()
	dur, err := live.Recover(live.DurabilityConfig{Dir: dir, Sync: wal.SyncAlways}, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewLiveEngine(dur.Store(), embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewLiveServer(eng, dur.Store())
	api.ConfigureDurability(dur)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts, api, dur
}

// TestMutateDurableAckSurvivesCrash: an acked mutation under sync=always is
// on disk before the 200 — a crash and re-recovery lands on the same epoch,
// and healthz/debug report the durability picture throughout.
func TestMutateDurableAckSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	ts, api, dur := testDurableServer(t, dir)

	batch := `{"op":"add_entity","entity":"Tesla_3","types":["Automobile"]}
{"op":"add_edge","src":"Germany","pred":"product","dst":"Tesla_3"}`
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	var mr mutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mr.Epoch != 1 {
		t.Fatalf("durable mutate: status %d, %+v", resp.StatusCode, mr)
	}

	// healthz carries the durability block with the acked epoch synced.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if h.Durability == nil {
		t.Fatal("healthz missing durability block on a durable server")
	}
	if h.Durability.SyncedEpoch != 1 || h.Durability.Sync != "always" {
		t.Fatalf("healthz durability = %+v, want synced_epoch 1 under always", h.Durability)
	}

	// /debug/durability serves the same stats.
	dbg := httptest.NewServer(api.DebugHandler())
	t.Cleanup(dbg.Close)
	dresp, err := http.Get(dbg.URL + "/debug/durability")
	if err != nil {
		t.Fatal(err)
	}
	var ds live.DurabilityStats
	if err := json.NewDecoder(dresp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || ds.Epoch != 1 {
		t.Fatalf("/debug/durability: status %d, %+v", dresp.StatusCode, ds)
	}

	// Crash (no sync, no checkpoint) and recover from the same directory:
	// the acked epoch is exactly restored.
	dur.Crash()
	re, err := live.Recover(live.DurabilityConfig{Dir: dir, Sync: wal.SyncAlways}, kgtest.Figure1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Store().Epoch(); got != 1 {
		t.Fatalf("epoch after crash+recover = %d, want 1", got)
	}
	if re.Store().Snapshot().NodeByName("Tesla_3") == kg.InvalidNode {
		t.Fatal("acked entity lost across crash+recover")
	}
}

// TestMutateDurabilityFailureIs503: when the WAL cannot make the batch
// durable, the client gets a 503 — not a 400 — and nothing is applied.
func TestMutateDurabilityFailureIs503(t *testing.T) {
	ts, _, dur := testDurableServer(t, t.TempDir())
	defer faultinject.Activate(1, faultinject.Fault{
		Point: "wal.sync", Count: 1, Err: faultinject.ErrInjected,
	})()

	resp, err := http.Post(ts.URL+"/v1/mutate", "application/x-ndjson",
		strings.NewReader(`{"op":"add_entity","entity":"Ghost","types":["Automobile"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate under failed fsync: status %d, want 503", resp.StatusCode)
	}
	if got := dur.Store().Epoch(); got != 0 {
		t.Fatalf("failed durable batch advanced the store to epoch %d", got)
	}

	// A plain validation error on the same durable server is still a 400.
	resp, err = http.Post(ts.URL+"/v1/mutate", "application/x-ndjson",
		strings.NewReader(`{"op":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch on durable server: status %d, want 400", resp.StatusCode)
	}
}

// TestInjectedPanicAnswers500: a panic injected into query validation is
// contained by the engine into ErrInternal, surfaces as a 500 with the
// request id echoed, and the server keeps answering.
func TestInjectedPanicAnswers500(t *testing.T) {
	ts := testServer(t)
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Point: "core.validate", Count: 1, Panic: "injected http panic",
	})
	resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q}`, avgPriceText))
	deactivate()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("query under injected panic: status %d (%s), want 500", resp.StatusCode, body)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("500 response missing X-Request-ID")
	}

	// The process survives: the next request on the same server is a 200.
	resp, body = postQuery(t, ts, fmt.Sprintf(`{"query": %q}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after contained panic: status %d (%s)", resp.StatusCode, body)
	}
}

// TestRecoverPanicsMiddleware exercises the outermost guard directly: a
// handler panic (past the engine's own containment) becomes a 500 with the
// request id, and http.ErrAbortHandler passes through untouched.
func TestRecoverPanicsMiddleware(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng)
	h := s.recoverPanics(s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	id := rec.Header().Get(RequestIDHeader)
	if id == "" || !strings.Contains(rec.Body.String(), id) {
		t.Fatalf("500 body %q does not echo request id %q", rec.Body.String(), id)
	}

	// net/http's own abort sentinel must not be swallowed.
	abort := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler { //nolint:errorlint // sentinel by identity
			t.Fatalf("recovered %v, want http.ErrAbortHandler to re-panic", r)
		}
	}()
	abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/abort", nil))
	t.Fatal("ErrAbortHandler did not re-panic")
}

// TestDebugDurabilityUnconfigured: a memory-only server 404s the endpoint.
func TestDebugDurabilityUnconfigured(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dbg := httptest.NewServer(NewServer(eng).DebugHandler())
	t.Cleanup(dbg.Close)
	resp, err := http.Get(dbg.URL + "/debug/durability")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/durability without durability: status %d, want 404", resp.StatusCode)
	}
}
