package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kgaq/internal/admission"
	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/obs"
)

// TestMetricsScrape is the golden scrape: a durable live server with
// admission control handles a mutation and a query, then /metrics on the
// debug mux must yield a strictly-parseable Prometheus exposition covering
// every instrumented tier — httpapi, admission, core and the WAL.
func TestMetricsScrape(t *testing.T) {
	ts, api, _ := testDurableServer(t, t.TempDir())
	api.ConfigureAdmission(admission.New(admission.Config{MaxInFlight: 4}), "")
	dbg := httptest.NewServer(api.DebugHandler())
	t.Cleanup(dbg.Close)

	batch := `{"op":"add_entity","entity":"Tesla_3","types":["Automobile"]}
{"op":"add_edge","src":"Germany","pred":"product","dst":"Tesla_3"}
{"op":"set_attr","entity":"Tesla_3","attr":"price","value":39000}`
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status = %d", resp.StatusCode)
	}
	postQuery(t, ts, fmt.Sprintf(`{"query": %q, "seed": 3}`, avgPriceText))

	scrape, err := http.Get(dbg.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	if ct := scrape.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	fams, err := obs.ParseText(scrape.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	for _, name := range []string{
		"kgaq_http_requests_total",
		"kgaq_http_request_seconds",
		"kgaq_http_inflight",
		"kgaq_admission_admitted_total",
		"kgaq_admission_inflight",
		"kgaq_core_queries_total",
		"kgaq_core_rounds_per_query",
		"kgaq_core_draws_total",
		"kgaq_core_validation_calls_total",
		"kgaq_wal_appends_total",
		"kgaq_wal_append_seconds",
		"kgaq_live_mutations_total",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("scrape is missing family %s", name)
		}
	}
	// The exercised counters must have moved, not merely exist.
	if f := fams["kgaq_core_draws_total"]; f != nil && (len(f.Samples) == 0 || f.Samples[0].Value <= 0) {
		t.Errorf("kgaq_core_draws_total did not advance: %+v", f.Samples)
	}
	if f := fams["kgaq_wal_appends_total"]; f != nil && (len(f.Samples) == 0 || f.Samples[0].Value <= 0) {
		t.Errorf("kgaq_wal_appends_total did not advance: %+v", f.Samples)
	}
}

// TestTraceEndToEnd follows the echoed trace id of a completed query to
// /debug/trace/{id} and checks the convergence telemetry: every round drew
// samples, and the final achieved error bound meets the requested one.
func TestTraceEndToEnd(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(eng)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	dbg := httptest.NewServer(api.DebugHandler())
	t.Cleanup(dbg.Close)

	const eb = 0.05
	resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q, "seed": 3, "error_bound": %g}`, avgPriceText, eb))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Converged {
		t.Fatalf("query did not converge: %s", body)
	}
	if qr.TraceID == "" {
		t.Fatalf("response carries no trace_id: %s", body)
	}
	if hdr := resp.Header.Get(TraceIDHeader); hdr != qr.TraceID {
		t.Fatalf("%s header = %q, body trace_id = %q", TraceIDHeader, hdr, qr.TraceID)
	}

	// The trace is sealed before the response body is written, so it is
	// fetchable the moment the client has the id.
	tresp, err := http.Get(dbg.URL + "/debug/trace/" + qr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status = %d", tresp.StatusCode)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	var td obs.TraceData
	if err := json.NewDecoder(tresp.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	if td.ID != qr.TraceID || td.Kind != "query" || !td.Finished {
		t.Fatalf("trace = %+v", td)
	}
	if len(td.Rounds) == 0 {
		t.Fatal("trace has no per-round telemetry")
	}
	for i, r := range td.Rounds {
		if r.Draws <= 0 {
			t.Errorf("round %d drew nothing: %+v", i, r)
		}
	}
	final := td.Rounds[len(td.Rounds)-1]
	if final.AchievedEB == nil || *final.AchievedEB > eb {
		t.Errorf("final achieved_eb = %v, want <= %g", final.AchievedEB, eb)
	}
	if len(td.Spans) == 0 {
		t.Error("trace has no spans")
	}

	// The ring listing knows the trace, and unknown ids 404.
	lresp, err := http.Get(dbg.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var sums []obs.TraceSummary
	if err := json.NewDecoder(lresp.Body).Decode(&sums); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sums {
		found = found || s.ID == qr.TraceID
	}
	if !found {
		t.Fatalf("/debug/trace listing does not contain %s", qr.TraceID)
	}
	missResp, err := http.Get(dbg.URL + "/debug/trace/t-nope-000000")
	if err != nil {
		t.Fatal(err)
	}
	missResp.Body.Close()
	if missResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", missResp.StatusCode)
	}
}

// TestDebugIndexAndContentType: GET /debug/ lists the debug surface and
// every JSON debug endpoint declares the same charset-qualified type.
func TestDebugIndexAndContentType(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dbg := httptest.NewServer(NewServer(eng).DebugHandler())
	t.Cleanup(dbg.Close)

	resp, err := http.Get(dbg.URL + "/debug/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/ status = %d", resp.StatusCode)
	}
	var idx []debugRoute
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(debugIndex) {
		t.Fatalf("index has %d routes, want %d", len(idx), len(debugIndex))
	}
	for _, path := range []string{"/debug/", "/debug/cache", "/debug/shards", "/debug/plans", "/debug/trace"} {
		r, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if ct := r.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s Content-Type = %q, want application/json; charset=utf-8", path, ct)
		}
	}
}

// TestTracingDisabled: sample=0 turns tracing off — no header, no body
// field, queries unaffected.
func TestTracingDisabled(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(eng)
	api.ConfigureTracing(0, 0)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	resp, body := postQuery(t, ts, fmt.Sprintf(`{"query": %q, "seed": 3}`, avgPriceText))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if hdr := resp.Header.Get(TraceIDHeader); hdr != "" {
		t.Fatalf("unexpected %s header %q with tracing off", TraceIDHeader, hdr)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != "" {
		t.Fatalf("unexpected trace_id %q with tracing off", qr.TraceID)
	}
}
