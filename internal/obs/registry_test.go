package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // dropped: counters are monotone
	g := r.Gauge("test_depth", "Depth.")
	g.Set(4)
	g.Add(-1)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 3.5\n",
		"# TYPE test_depth gauge\n",
		"test_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Fatalf("self-parse: %v", err)
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_esc_total", "Help with \\ backslash\nand newline.", "path")
	v.With(`C:\dir with "quotes"` + "\nnewline").Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP test_esc_total Help with \\ backslash\nand newline.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_esc_total{path="C:\\dir with \"quotes\"\nnewline"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}

	fams, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-parse: %v", err)
	}
	f := fams["test_esc_total"]
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("parse lost the family: %+v", fams)
	}
	if got, want := f.Samples[0].Labels["path"], `C:\dir with "quotes"`+"\nnewline"; got != want {
		t.Errorf("round-trip label = %q, want %q", got, want)
	}
	if got, want := f.Help, "Help with \\ backslash\nand newline."; got != want {
		t.Errorf("round-trip help = %q, want %q", got, want)
	}
}

func TestHistogramCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
		`test_latency_seconds_sum 56.05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The strict parser enforces cumulativity and +Inf/count agreement.
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Fatalf("self-parse: %v", err)
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_b_seconds", "B.", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var b strings.Builder
	_ = r.WriteText(&b)
	if !strings.Contains(b.String(), `test_b_seconds_bucket{le="1"} 1`) {
		t.Errorf("le=1 bucket should include observation 1:\n%s", b.String())
	}
}

func TestIdempotentAndConflictingRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_same_total", "x")
	b := r.Counter("test_same_total", "x")
	if a != b {
		t.Error("re-registration should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration should panic")
		}
	}()
	r.Gauge("test_same_total", "now a gauge")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", bad)
				}
			}()
			r.Counter(bad, "x")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label name le should panic")
			}
		}()
		r.CounterVec("test_le_total", "x", "le")
	}()
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "c")
	v := r.CounterVec("test_conc_labeled_total", "c", "worker")
	h := r.Histogram("test_conc_seconds", "h", []float64{0.5})
	g := r.Gauge("test_conc_gauge", "g")

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(name).Inc()
				h.Observe(float64(i%2) + 0.25)
				g.Add(1)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b) // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %v", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %v", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %v", got, workers*perWorker)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("self-parse after concurrency: %v", err)
	}
}

func TestParseTextRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":           "orphan_total 3\n",
		"negative counter":  "# TYPE x_total counter\nx_total -1\n",
		"bad escape":        "# TYPE x counter\nx{a=\"\\q\"} 1\n",
		"unterminated":      "# TYPE x counter\nx{a=\"v} 1\n",
		"duplicate label":   "# TYPE x counter\nx{a=\"1\",a=\"2\"} 1\n",
		"non-cumulative":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"count mismatch":    "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n",
		"bucket without le": "# TYPE h histogram\nh_bucket 2\nh_sum 1\nh_count 2\n",
		"retyped family":    "# TYPE x counter\n# TYPE x gauge\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error for:\n%s", name, text)
		}
	}
}

func TestParseTextAccepts(t *testing.T) {
	text := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\"} 1 1700000000000\nok_total{a=\"c\"} +Inf\n\n# TYPE g gauge\ng -3.5e-2\n"
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(fams["ok_total"].Samples) != 2 {
		t.Errorf("want 2 samples, got %+v", fams["ok_total"].Samples)
	}
	if !math.IsInf(fams["ok_total"].Samples[1].Value, +1) {
		t.Errorf("+Inf sample lost: %+v", fams["ok_total"].Samples[1])
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_id_total", "x", "route", "status")
	a := v.With("q", "200")
	b := v.With("q", "200")
	if a != b {
		t.Error("same label values should resolve the same child")
	}
	v.With("q", "500").Inc()
	a.Add(2)
	var sb strings.Builder
	_ = r.WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, `test_id_total{route="q",status="200"} 2`) ||
		!strings.Contains(out, `test_id_total{route="q",status="500"} 1`) {
		t.Errorf("labelled series wrong:\n%s", out)
	}
}
