// Package obs is the unified observability layer: a zero-dependency
// metrics registry exported in the Prometheus text exposition format, and a
// lightweight query-lifecycle tracer whose finished traces land in a
// bounded in-memory ring.
//
// # Metrics
//
// A Registry holds metric families — counters, gauges and histograms,
// optionally labelled — registered once at package init and updated
// lock-free (atomics) on the hot path:
//
//	var draws = obs.Default().Counter("kgaq_core_draws_total",
//		"Sample draws taken across all queries.")
//	draws.Add(float64(len(fresh)))
//
// Default() is the process-wide registry every instrumented package
// registers into; kgaqd serves it at GET /metrics on the debug listener.
// Naming follows the Prometheus conventions: kgaq_<tier>_<what>_<unit>,
// counters end in _total, durations are histograms in seconds.
//
// # Traces
//
// A Tracer mints one Trace per query/prepare/mutate request. The trace
// rides the context (WithTrace/TraceFrom) through the serving and engine
// tiers, collecting spans (resolve, walk convergence, apply), per-round
// convergence telemetry (draws, validation calls, verdict-cache hits, the
// shrinking ε̂) and free-form attributes. Every Trace method is safe on a
// nil receiver, so uninstrumented paths pay one nil check.
//
// Finished traces are sampled (1-in-N, default every one) into a bounded
// ring served at /debug/trace and /debug/trace/{id}; the trace id is echoed
// in responses and access logs so logs, traces and metrics correlate on one
// id.
//
// The package deliberately depends only on the standard library — it sits
// below every other internal package.
package obs
