package obs

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Span("x")()
	tr.Add("c", 1)
	tr.SetAttr("k", "v")
	tr.Round(RoundTelemetry{})
	if tr.ID() != "" || tr.Counter("c") != 0 {
		t.Error("nil trace should be inert")
	}
	var tracer *Tracer
	if tracer.Start("query", "") != nil {
		t.Error("nil tracer should return nil traces")
	}
	tracer.Finish(nil)
}

func TestTraceLifecycle(t *testing.T) {
	tracer := NewTracer(4, 1)
	tr := tracer.Start("query", "COUNT(x)")
	if tr == nil {
		t.Fatal("sample-every-1 tracer returned nil trace")
	}
	done := tr.Span("resolve")
	done()
	tr.Add("draws", 10)
	tr.Add("draws", 5)
	tr.SetAttr("converged", true)
	tr.SetAttr("bad_float", math.Inf(1))
	tr.Round(RoundTelemetry{Round: 1, Draws: 10, AchievedEB: Float(0.5)})
	tr.Round(RoundTelemetry{Round: 2, Draws: 5, AchievedEB: Float(0.01)})
	tracer.Finish(tr)
	tracer.Finish(tr) // idempotent

	d := tracer.Lookup(tr.ID())
	if d == nil {
		t.Fatal("finished trace not retained")
	}
	if !d.Finished || d.Kind != "query" || d.Target != "COUNT(x)" {
		t.Errorf("bad export: %+v", d)
	}
	if d.Counters["draws"] != 15 {
		t.Errorf("counters = %v", d.Counters)
	}
	if len(d.Rounds) != 2 || *d.Rounds[1].AchievedEB != 0.01 {
		t.Errorf("rounds = %+v", d.Rounds)
	}
	if d.Attrs["bad_float"] != nil {
		t.Errorf("non-finite attr should export as nil, got %v", d.Attrs["bad_float"])
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("trace export must marshal: %v", err)
	}
	sums := tracer.Summaries()
	if len(sums) != 1 || sums[0].ID != tr.ID() || sums[0].Rounds != 2 {
		t.Errorf("summaries = %+v", sums)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tracer := NewTracer(2, 1)
	var ids []string
	for i := 0; i < 3; i++ {
		tr := tracer.Start("query", "")
		ids = append(ids, tr.ID())
		tracer.Finish(tr)
	}
	if tracer.Lookup(ids[0]) != nil {
		t.Error("oldest trace should be evicted")
	}
	if tracer.Lookup(ids[1]) == nil || tracer.Lookup(ids[2]) == nil {
		t.Error("recent traces should be retained")
	}
	if sums := tracer.Summaries(); len(sums) != 2 || sums[0].ID != ids[2] {
		t.Errorf("summaries should be newest-first within capacity: %+v", sums)
	}
}

func TestTracerSampling(t *testing.T) {
	tracer := NewTracer(16, 3)
	kept := 0
	for i := 0; i < 9; i++ {
		if tr := tracer.Start("query", ""); tr != nil {
			kept++
			tracer.Finish(tr)
		}
	}
	if kept != 3 {
		t.Errorf("1-in-3 sampling kept %d of 9", kept)
	}
	disabled := NewTracer(16, 0)
	if disabled.Start("query", "") != nil {
		t.Error("sample=0 should disable tracing")
	}
}

func TestContextPropagation(t *testing.T) {
	tracer := NewTracer(4, 1)
	tr := tracer.Start("query", "")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("TraceFrom should return the attached trace")
	}
	if TraceFrom(context.Background()) != nil {
		t.Error("TraceFrom on a bare context should be nil")
	}
	if got := WithTrace(context.Background(), nil); TraceFrom(got) != nil {
		t.Error("WithTrace(nil) should keep the context bare")
	}
}

func TestTraceConcurrency(t *testing.T) {
	tracer := NewTracer(8, 1)
	tr := tracer.Start("query", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Add("draws", 1)
				tr.Span("s")()
				tr.Round(RoundTelemetry{Round: i})
				tr.SetAttr("k", i)
			}
		}()
	}
	wg.Wait()
	tracer.Finish(tr)
	d := tracer.Lookup(tr.ID())
	if d.Counters["draws"] != 4000 {
		t.Errorf("draws = %v", d.Counters["draws"])
	}
	if len(d.Rounds)+d.DroppedRounds != 4000 {
		t.Errorf("rounds %d + dropped %d != 4000", len(d.Rounds), d.DroppedRounds)
	}
	if len(d.Spans)+d.DroppedSpans != 4000 {
		t.Errorf("spans %d + dropped %d != 4000", len(d.Spans), d.DroppedSpans)
	}
}

func TestFloatBoxing(t *testing.T) {
	if Float(math.NaN()) != nil || Float(math.Inf(-1)) != nil {
		t.Error("non-finite floats should box to nil")
	}
	if v := Float(0.25); v == nil || *v != 0.25 {
		t.Error("finite floats should round-trip")
	}
}
