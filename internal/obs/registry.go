package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// TextContentType is the Prometheus text exposition content type served by
// Registry.Handler.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefBuckets are latency histogram bounds in seconds, spanning sub-millisecond
// cache hits through multi-second degraded queries.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RoundBuckets bound distributions of refinement-round counts.
var RoundBuckets = []float64{1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50}

// A Registry is a set of named metric families. Registration (Counter,
// Gauge, Histogram and their Vec forms) is idempotent: asking twice for the
// same name returns the same family, while asking with a conflicting type,
// label set or bucket layout panics — such conflicts are programming errors
// caught at init, not runtime conditions.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var std = NewRegistry()

// Default returns the process-wide registry that instrumented packages
// register into and kgaqd exports at /metrics.
func Default() *Registry { return std }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or more labelled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // *Counter | *Gauge | *Histogram, keyed by joined label values
	order  []string       // registration order of series keys, re-sorted at export
}

const labelSep = "\xff"

func (f *family) child(lvs []string) any {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	key := strings.Join(lvs, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	default:
		m = newHistogram(f.buckets)
	}
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

func (r *Registry) family(name, help string, kind metricKind, labels, buckets []float64, labelNames []string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labelNames) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labelNames...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil, nil)
	return f.child(nil).(*Counter)
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil, nil)
	return f.child(nil).(*Gauge)
}

// Histogram registers (or returns) an unlabelled histogram with the given
// bucket upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, nil, normBuckets(name, buckets), nil)
	return f.child(nil).(*Histogram)
}

// CounterVec registers a counter family keyed by the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, nil, labelNames)}
}

// GaugeVec registers a gauge family keyed by the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, nil, labelNames)}
}

// HistogramVec registers a histogram family keyed by the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, nil, normBuckets(name, buckets), labelNames)}
}

func normBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("obs: metric %q: buckets not strictly ascending", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1]
	}
	return buckets
}

// CounterVec is a counter family; With resolves one labelled series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(lvs ...string) *Counter { return v.f.child(lvs).(*Counter) }

// GaugeVec is a gauge family; With resolves one labelled series.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(lvs ...string) *Gauge { return v.f.child(lvs).(*Gauge) }

// HistogramVec is a histogram family; With resolves one labelled series.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (created on first use).
func (v *HistogramVec) With(lvs ...string) *Histogram { return v.f.child(lvs).(*Histogram) }

// A Counter is a monotonically non-decreasing value. Safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d, which must be non-negative (negative deltas are dropped to
// preserve monotonicity).
func (c *Counter) Add(d float64) {
	if d < 0 || math.IsNaN(d) {
		return
	}
	addFloat(&c.bits, d)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// A Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// A Histogram counts observations into fixed buckets and tracks their sum.
// Safe for concurrent use; Observe is lock-free.
type Histogram struct {
	upper  []float64       // ascending bucket upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(upper)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float bits
	count  atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts (ending with the +Inf bucket),
// the sum and the count. Reads are individually atomic; a scrape racing
// Observe may see count ahead of a bucket by one, which Prometheus tolerates.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	count = h.count.Load()
	sum = h.Sum()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	// Clamp so the +Inf bucket equals the reported count even mid-Observe.
	if cum[len(cum)-1] > count {
		count = cum[len(cum)-1]
	} else {
		cum[len(cum)-1] = count
	}
	return cum, sum, count
}

// WriteText writes every family in the Prometheus text exposition format
// (version 0.0.4), families and series in sorted order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })

	for _, i := range idx {
		var lvs []string
		if keys[i] != "" || len(f.labels) > 0 {
			lvs = strings.Split(keys[i], labelSep)
		}
		switch m := series[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, lvs, "", ""), formatFloat(m.Value()))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, lvs, "", ""), formatFloat(m.Value()))
		case *Histogram:
			cum, sum, count := m.snapshot()
			for bi, upper := range m.upper {
				le := formatFloat(upper)
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, lvs, "le", le), cum[bi])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, lvs, "le", "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, lvs, "", ""), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, lvs, "", ""), count)
		}
	}
}

// labelString renders {k="v",...}, appending the extra pair (used for le)
// when extraKey is non-empty. Returns "" for an unlabelled series.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`"`)
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value: integers without exponents, +Inf/-Inf
// in Prometheus spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at the Prometheus text content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
