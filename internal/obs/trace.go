package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Limits keeping one runaway request from bloating its trace: beyond these,
// spans/rounds are counted but dropped.
const (
	maxSpansPerTrace  = 256
	maxRoundsPerTrace = 512
)

// A Tracer mints traces and retains finished ones in a bounded ring.
// Sampling is 1-in-N on Start: unsampled requests get a nil *Trace, whose
// methods are all no-ops, so call sites never branch.
type Tracer struct {
	capacity int
	sample   int
	seq      atomic.Uint64
	started  atomic.Uint64
	prefix   string

	mu   sync.Mutex
	ring []*Trace // newest last
	byID map[string]*Trace
}

// NewTracer returns a tracer retaining the last capacity finished traces
// and sampling one in every sampleEvery Starts (1 = keep all, 0 = disabled).
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	var pfx [4]byte
	_, _ = rand.Read(pfx[:])
	return &Tracer{
		capacity: capacity,
		sample:   sampleEvery,
		prefix:   hex.EncodeToString(pfx[:]),
		byID:     make(map[string]*Trace),
	}
}

// Start begins a trace of the given kind (query, prepare, plan_query,
// mutate) describing the given target (e.g. the query text). Returns nil —
// a valid no-op trace — when this request is not sampled.
func (tr *Tracer) Start(kind, target string) *Trace {
	if tr == nil || tr.sample <= 0 {
		return nil
	}
	n := tr.started.Add(1)
	if tr.sample > 1 && n%uint64(tr.sample) != 1 {
		return nil
	}
	return &Trace{
		id:     fmt.Sprintf("t-%s-%06d", tr.prefix, tr.seq.Add(1)),
		kind:   kind,
		target: target,
		start:  time.Now(),
		attrs:  make(map[string]any),
	}
}

// Finish seals the trace and retains it in the ring. Idempotent; safe on a
// nil tracer or nil trace.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.end = time.Now()
	t.mu.Unlock()

	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.ring = append(tr.ring, t)
	tr.byID[t.id] = t
	for len(tr.ring) > tr.capacity {
		evict := tr.ring[0]
		tr.ring = tr.ring[1:]
		delete(tr.byID, evict.id)
	}
}

// Lookup returns the finished trace with the given id, or nil.
func (tr *Tracer) Lookup(id string) *TraceData {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	t := tr.byID[id]
	tr.mu.Unlock()
	if t == nil {
		return nil
	}
	d := t.export()
	return &d
}

// Summaries lists retained traces, newest first.
func (tr *Tracer) Summaries() []TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	ring := append([]*Trace(nil), tr.ring...)
	tr.mu.Unlock()
	out := make([]TraceSummary, 0, len(ring))
	for i := len(ring) - 1; i >= 0; i-- {
		out = append(out, ring[i].summary())
	}
	return out
}

// A Trace accumulates the lifecycle of one request: spans, counters,
// attributes and per-round convergence telemetry. All methods are safe for
// concurrent use and on a nil receiver.
type Trace struct {
	id     string
	kind   string
	target string
	start  time.Time

	mu            sync.Mutex
	end           time.Time
	finished      bool
	spans         []SpanData
	droppedSpans  int
	rounds        []RoundTelemetry
	droppedRounds int
	counters      map[string]float64
	attrs         map[string]any
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span opens a named span and returns its closer:
//
//	defer t.Span("walk_converge")()
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		if len(t.spans) >= maxSpansPerTrace {
			t.droppedSpans++
			return
		}
		t.spans = append(t.spans, SpanData{
			Name:    name,
			StartMS: float64(begin.Sub(t.start)) / float64(time.Millisecond),
			DurMS:   float64(time.Since(begin)) / float64(time.Millisecond),
		})
	}
}

// Add accumulates a named counter (draws, validation_calls,
// verdict_cache_hits, ...).
func (t *Trace) Add(name string, delta float64) {
	if t == nil || delta == 0 {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]float64)
	}
	t.counters[name] += delta
	t.mu.Unlock()
}

// Counter returns the current value of a named counter.
func (t *Trace) Counter(name string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// SetAttr records a key/value attribute (last write wins). Values must be
// JSON-marshalable; non-finite floats are nulled at export.
func (t *Trace) SetAttr(key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs[key] = value
	t.mu.Unlock()
}

// Round appends one refinement round's telemetry.
func (t *Trace) Round(r RoundTelemetry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.rounds) >= maxRoundsPerTrace {
		t.droppedRounds++
		return
	}
	t.rounds = append(t.rounds, r)
}

// RoundTelemetry is the convergence record of one guarantee-loop round.
type RoundTelemetry struct {
	Round      int      `json:"round"`
	SampleSize int      `json:"sample_size"`
	Draws      int      `json:"draws"`
	Validated  int      `json:"validated"`
	CacheHits  int      `json:"verdict_cache_hits"`
	Estimate   *float64 `json:"estimate"`
	MoE        *float64 `json:"moe"`
	AchievedEB *float64 `json:"achieved_eb"` // ε̂ after this round; nil when undefined
	ElapsedMS  float64  `json:"elapsed_ms"`
}

// SpanData is one exported span.
type SpanData struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// TraceData is the full JSON export of a finished (or in-flight) trace.
type TraceData struct {
	ID            string             `json:"id"`
	Kind          string             `json:"kind"`
	Target        string             `json:"target,omitempty"`
	Start         time.Time          `json:"start"`
	DurMS         float64            `json:"dur_ms"`
	Finished      bool               `json:"finished"`
	Spans         []SpanData         `json:"spans,omitempty"`
	DroppedSpans  int                `json:"dropped_spans,omitempty"`
	Rounds        []RoundTelemetry   `json:"rounds,omitempty"`
	DroppedRounds int                `json:"dropped_rounds,omitempty"`
	Counters      map[string]float64 `json:"counters,omitempty"`
	Attrs         map[string]any     `json:"attrs,omitempty"`
}

// TraceSummary is the /debug/trace listing entry.
type TraceSummary struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	Target string    `json:"target,omitempty"`
	Start  time.Time `json:"start"`
	DurMS  float64   `json:"dur_ms"`
	Rounds int       `json:"rounds"`
}

func (t *Trace) export() TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if !t.finished {
		end = time.Now()
	}
	d := TraceData{
		ID:            t.id,
		Kind:          t.kind,
		Target:        t.target,
		Start:         t.start,
		DurMS:         float64(end.Sub(t.start)) / float64(time.Millisecond),
		Finished:      t.finished,
		Spans:         append([]SpanData(nil), t.spans...),
		DroppedSpans:  t.droppedSpans,
		Rounds:        append([]RoundTelemetry(nil), t.rounds...),
		DroppedRounds: t.droppedRounds,
	}
	if len(t.counters) > 0 {
		d.Counters = make(map[string]float64, len(t.counters))
		for k, v := range t.counters {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Counters[k] = v
		}
	}
	if len(t.attrs) > 0 {
		d.Attrs = make(map[string]any, len(t.attrs))
		for k, v := range t.attrs {
			d.Attrs[k] = sanitizeAttr(v)
		}
	}
	return d
}

func (t *Trace) summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSummary{
		ID:     t.id,
		Kind:   t.kind,
		Target: t.target,
		Start:  t.start,
		DurMS:  float64(t.end.Sub(t.start)) / float64(time.Millisecond),
		Rounds: len(t.rounds),
	}
}

// sanitizeAttr makes attribute values JSON-safe: non-finite floats become
// nil (encoding/json rejects them outright).
func sanitizeAttr(v any) any {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil
		}
	case float32:
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return nil
		}
	case []float64:
		out := make([]any, len(x))
		for i, f := range x {
			out[i] = sanitizeAttr(f)
		}
		return out
	}
	return v
}

// Float boxes a float for the pointer-valued telemetry fields, mapping
// non-finite values to nil so the export marshals cleanly.
func Float(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil (whose methods no-op).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
