package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A Sample is one exposition line: a metric name, its label pairs and value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// A Family is one parsed metric family: its TYPE, HELP and samples. For
// histograms the samples carry the _bucket/_sum/_count suffixed names.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseText parses and validates a Prometheus text exposition (format
// 0.0.4). It is deliberately strict — stricter than a scraping server needs
// to be — because it backs the metrics-lint CI step and the golden-scrape
// test:
//
//   - every sample must belong to a family declared by a preceding # TYPE
//   - label syntax and escapes must be exact; duplicate label names reject
//   - counter and histogram sample values must be non-negative
//   - histogram buckets must be cumulative (non-decreasing by le), end in
//     le="+Inf", and the +Inf bucket must equal the series' _count
//
// It returns the families keyed by name.
func ParseText(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := parseSample(line, fams); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", f.Name, err)
			}
		}
	}
	return fams, nil
}

func parseComment(line string, fams map[string]*Family) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		f := familyFor(fams, name)
		if f.Type != "" && f.Type != typ {
			return fmt.Errorf("metric %s re-typed %s -> %s", name, f.Type, typ)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		familyFor(fams, name).Help = unescapeHelp(help)
	}
	return nil
}

func familyFor(fams map[string]*Family, name string) *Family {
	if f, ok := fams[name]; ok {
		return f
	}
	f := &Family{Name: name}
	fams[name] = f
	return f
}

func parseSample(line string, fams map[string]*Family) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
	}
	valStr := strings.TrimSpace(rest)
	// A trailing timestamp (integer ms) is permitted by the format.
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		ts := strings.TrimSpace(valStr[i+1:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return fmt.Errorf("sample %s: malformed timestamp %q", name, ts)
		}
		valStr = valStr[:i]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}

	fam, _ := resolveFamily(fams, name)
	if fam == nil {
		return fmt.Errorf("sample %s has no preceding # TYPE", name)
	}
	switch fam.Type {
	case "counter":
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("counter %s has non-monotone value %v", name, v)
		}
	case "histogram":
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("histogram sample %s has negative value %v", name, v)
		}
		if strings.HasSuffix(name, "_bucket") {
			if _, ok := labels["le"]; !ok {
				return fmt.Errorf("bucket sample %s lacks le label", name)
			}
		}
	}
	fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: v})
	return nil
}

// resolveFamily maps a sample name to its declared family: exact match, or
// for histograms the _bucket/_sum/_count suffixed forms.
func resolveFamily(fams map[string]*Family, name string) (*Family, string) {
	if f, ok := fams[name]; ok && f.Type != "" {
		return f, name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, ok := fams[base]; ok && f.Type == "histogram" {
				return f, base
			}
		}
	}
	return nil, ""
}

func splitName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid sample name %q", name)
	}
	return name, strings.TrimLeft(line[i:], " "), nil
}

// parseLabels parses a {k="v",...} block, honoring \\, \" and \n escapes in
// values, and returns the remainder of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " ,")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if key != "le" && !validLabelName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		s = strings.TrimLeft(s[eq+1:], " ")
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", key)
		}
		val, rest, err := parseQuoted(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", key, err)
		}
		labels[key] = val
		s = rest
	}
}

func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed value %q", s)
	}
	return v, nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// checkHistogram validates per-series bucket cumulativity, the +Inf
// terminal bucket and bucket/_count agreement.
func checkHistogram(f *Family) error {
	type series struct {
		les     []float64
		counts  []float64
		count   float64
		hasCnt  bool
		hasSum  bool
		sumSeen float64
	}
	bySig := make(map[string]*series)
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte(';')
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := sig(labels)
		s, ok := bySig[k]
		if !ok {
			s = &series{}
			bySig[k] = s
		}
		return s
	}
	for _, smp := range f.Samples {
		switch {
		case strings.HasSuffix(smp.Name, "_bucket"):
			le, err := parseValue(smp.Labels["le"])
			if err != nil {
				return fmt.Errorf("bad le %q", smp.Labels["le"])
			}
			s := get(smp.Labels)
			s.les = append(s.les, le)
			s.counts = append(s.counts, smp.Value)
		case strings.HasSuffix(smp.Name, "_count"):
			s := get(smp.Labels)
			s.count, s.hasCnt = smp.Value, true
		case strings.HasSuffix(smp.Name, "_sum"):
			s := get(smp.Labels)
			s.sumSeen, s.hasSum = smp.Value, true
		default:
			return fmt.Errorf("unexpected histogram sample %s", smp.Name)
		}
	}
	for lbl, s := range bySig {
		if len(s.les) == 0 {
			return fmt.Errorf("series {%s} has no buckets", lbl)
		}
		// Buckets appear in exposition order; sort defensively by le.
		idx := make([]int, len(s.les))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return s.les[idx[i]] < s.les[idx[j]] })
		prev := math.Inf(-1)
		prevCount := 0.0
		sawInf := false
		var lastCount float64
		for _, i := range idx {
			if s.les[i] == prev {
				return fmt.Errorf("series {%s} has duplicate le=%v", lbl, s.les[i])
			}
			if s.counts[i] < prevCount {
				return fmt.Errorf("series {%s} buckets not cumulative at le=%v", lbl, s.les[i])
			}
			prev, prevCount = s.les[i], s.counts[i]
			if math.IsInf(s.les[i], +1) {
				sawInf = true
			}
			lastCount = s.counts[i]
		}
		if !sawInf {
			return fmt.Errorf("series {%s} lacks le=\"+Inf\" bucket", lbl)
		}
		if !s.hasCnt || !s.hasSum {
			return fmt.Errorf("series {%s} lacks _count or _sum", lbl)
		}
		if lastCount != s.count {
			return fmt.Errorf("series {%s}: +Inf bucket %v != count %v", lbl, lastCount, s.count)
		}
	}
	return nil
}
