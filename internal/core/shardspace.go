package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"kgaq/internal/estimate"
	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/shard"
	"kgaq/internal/stats"
)

// shardSplit is the immutable partition of one compiled sampling space
// (DESIGN.md "Sharded execution"): the candidate answers cut into per-shard
// strata by node ownership, each stratum with its own conditional alias
// table. Computed once — at Prepare for a prepared plan — and shared
// read-only by every execution of the plan.
type shardSplit struct {
	plan   shard.Plan
	spaces []*shard.Space // non-empty strata, ascending shard order
	// posOf maps a global answer index to its stratum's position in spaces.
	posOf []int
}

// newShardSplit cuts an answer space into shards-many strata.
func newShardSplit(sp *answerSpace, shards int) (*shardSplit, error) {
	plan := shard.NewPlan(shards)
	spaces, err := shard.SplitSpace(plan, sp.answers, sp.probs)
	if err != nil {
		return nil, fmt.Errorf("core: sharding sampling space: %w", err)
	}
	split := &shardSplit{
		plan:   plan,
		spaces: spaces,
		posOf:  make([]int, len(sp.answers)),
	}
	for i := range split.posOf {
		split.posOf[i] = -1
	}
	for pos, spc := range spaces {
		for _, i := range spc.Index {
			split.posOf[i] = pos
		}
	}
	return split, nil
}

// shardedSpace is one execution's view of a shard split: the shared
// immutable partition plus the per-execution draw state — each stratum's
// deterministic RNG stream, its draw count, and the latest variance
// signals feeding the Neyman allocator. Per-shard validation runs in
// parallel without sharing mutable state; draws merge back through the
// stratified Horvitz–Thompson combiner of internal/estimate.
type shardedSpace struct {
	*shardSplit
	// rngs are per-stratum generators: each stratum's draw stream is
	// deterministic under the query seed regardless of how the allocator
	// splits a round across strata.
	rngs []*rand.Rand
	// drawn counts draws taken per stratum (allocation state).
	drawn []int
	// sigmas holds the latest per-stratum HT-term standard deviations; the
	// allocator turns them into Neyman shares. Zero until the first
	// estimated round.
	sigmas []float64
	// statsBuf and allocBuf are reusable per-round scratch for the Neyman
	// allocation (one stratum-stats row and one draw-count slot per stratum);
	// sized lazily on first draw and reused for the execution's lifetime.
	statsBuf []estimate.StratumStats
	allocBuf []int
}

// newShardedSpace binds per-execution draw state to a shared split.
func newShardedSpace(split *shardSplit, seed int64) *shardedSpace {
	sh := &shardedSpace{
		shardSplit: split,
		rngs:       make([]*rand.Rand, len(split.spaces)),
		drawn:      make([]int, len(split.spaces)),
		sigmas:     make([]float64, len(split.spaces)),
	}
	for pos, spc := range split.spaces {
		// Each stratum forks an independent stream from the query seed and
		// its shard id, so draws are reproducible per stratum no matter how
		// rounds allocate across strata.
		sh.rngs[pos] = stats.NewRand(seed ^ (int64(spc.Shard)+1)*0x9E3779B9)
	}
	return sh
}

// condProb returns the draw probability of global answer index i
// conditional on its stratum.
func (sh *shardedSpace) condProb(sp *answerSpace, i int) float64 {
	return sp.probs[i] / sh.spaces[sh.posOf[i]].Weight
}

// drawInto allocates k draws across strata — Neyman once variance signals
// exist, proportional before — samples each stratum from its own stream,
// and appends the global answer indices to dst in ascending-stratum order.
// The allocation scratch lives on the sharded space, so steady-state rounds
// draw without allocating.
func (sh *shardedSpace) drawInto(dst []int, k int) []int {
	if cap(sh.statsBuf) < len(sh.spaces) {
		sh.statsBuf = make([]estimate.StratumStats, len(sh.spaces))
	}
	st := sh.statsBuf[:len(sh.spaces)]
	for pos, spc := range sh.spaces {
		st[pos] = estimate.StratumStats{Weight: spc.Weight, Sigma: sh.sigmas[pos]}
	}
	sh.allocBuf = estimate.AllocateDrawsInto(sh.allocBuf, k, st)
	for pos, n := range sh.allocBuf {
		if n <= 0 {
			continue
		}
		dst = sh.spaces[pos].DrawInto(dst, sh.rngs[pos], n)
		sh.drawn[pos] += n
	}
	return dst
}

// updateSigmas refreshes the per-stratum variance signals from a round's
// regrouped strata (stratum ids are shard ids) under the aggregate function
// whose guarantee is driving the refinement. Strata counts are small, so a
// direct scan over spaces beats building a shard→sigma map every round.
func (sh *shardedSpace) updateSigmas(fn query.AggFunc, strata []estimate.Stratum) {
	for _, st := range strata {
		if len(st.Obs) == 0 {
			continue
		}
		id := st.Obs[0].Stratum
		for pos, spc := range sh.spaces {
			if spc.Shard == id {
				sh.sigmas[pos] = estimate.StratumSigma(fn, st.Obs)
				break
			}
		}
	}
}

// prevalidate batch-validates the not-yet-validated answers in the draw
// list. The fresh answers are grouped per stratum, strata are packed into
// at most GOMAXPROCS buckets, and each bucket runs one shared greedy
// search on its own goroutine (taken opportunistically from the engine's
// worker pool). On a single-CPU machine every stratum lands in one bucket
// and the search is exactly the unsharded shared traversal — sharding
// never splits validation work it cannot parallelise. Each goroutine
// writes only its bucket's verdict segment; segments merge into the
// execution's shared verdict slab afterwards, on the calling goroutine, so
// the lazy single-draw path stays lock-free. A ctx cancellation mid-batch
// discards that batch's verdicts, exactly like the unsharded path.
//
// The fully-cached round (every draw already carries a verdict) allocates
// nothing: de-duplication runs on the scratch marks and the fresh queue
// reuses scratch storage, so the per-stratum machinery is only built when
// there is genuinely fresh work.
func (sh *shardedSpace) prevalidate(ctx context.Context, e *Engine, sp *answerSpace, drawIdx []int, scr *execScratch) {
	if sp.oracle.batch == nil {
		return
	}
	scr.beginMarks(len(sp.answers))
	flat := scr.freshIdx[:0]
	for _, i := range drawIdx {
		if !scr.mark(i) {
			continue
		}
		if sp.verdicts[i] != verdictUnknown {
			continue
		}
		flat = append(flat, i)
	}
	scr.freshIdx = flat
	if len(flat) == 0 {
		return
	}
	fresh := make([][]kg.NodeID, len(sh.spaces))
	freshIdx := make([][]int, len(sh.spaces))
	active := 0
	for _, i := range flat {
		pos := sh.posOf[i]
		if len(fresh[pos]) == 0 {
			active++
		}
		fresh[pos] = append(fresh[pos], sp.answers[i])
		freshIdx[pos] = append(freshIdx[pos], i)
	}
	buckets := runtime.GOMAXPROCS(0)
	if buckets > active {
		buckets = active
	}
	bucketNodes := make([][]kg.NodeID, buckets)
	bucketIdx := make([][]int, buckets)
	b := 0
	for pos := range sh.spaces {
		if len(fresh[pos]) == 0 {
			continue
		}
		bucketNodes[b] = append(bucketNodes[b], fresh[pos]...)
		bucketIdx[b] = append(bucketIdx[b], freshIdx[pos]...)
		b = (b + 1) % buckets
	}
	segments := make([]map[int]bool, buckets)
	var wg sync.WaitGroup
	var pb panicBox
	for b := range bucketNodes {
		segments[b] = map[int]bool{}
		validate := func(b int) {
			res := sp.oracle.batch(ctx, bucketNodes[b])
			if ctx.Err() != nil {
				return
			}
			for k, i := range bucketIdx[b] {
				segments[b][i] = res[bucketNodes[b][k]]
			}
		}
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				defer func() { <-e.sem }()
				defer pb.capture()
				validate(b)
			}(b)
		default:
			validate(b)
		}
	}
	wg.Wait()
	pb.rethrow()
	if ctx.Err() != nil {
		return
	}
	// Merge the segments into the execution-shared verdict slab on this
	// goroutine; the per-draw observation path then works unchanged.
	for _, seg := range segments {
		for i, v := range seg {
			if sp.verdicts[i] == verdictUnknown {
				sp.setVerdict(i, v)
			}
		}
	}
}
