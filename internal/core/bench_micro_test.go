package core

import (
	"context"
	"testing"

	"kgaq/internal/datagen"
	"kgaq/internal/query"
)

// Micro-benchmarks of the engine's hot paths on the tiny dataset: end-to-end
// execution, space construction (walker + convergence + distribution), and
// incremental refinement. These complement the table/figure harness in the
// repository root, which measures whole experiments.

func benchDataset(b *testing.B) *datagen.Dataset {
	b.Helper()
	ds, err := datagen.Generate(datagen.TinyProfile())
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkExecuteSimpleCount(b *testing.B) {
	ds := benchDataset(b)
	e, err := NewEngine(ds.Graph, ds.Model, Options{Tau: 0.85, ErrorBound: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	q := query.Simple(query.Count, "", "Country_0", "Country", "product", "Automobile")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteSimpleAvg(b *testing.B) {
	ds := benchDataset(b)
	e, err := NewEngine(ds.Graph, ds.Model, Options{Tau: 0.85, ErrorBound: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	q := query.Simple(query.Avg, "price", "Country_0", "Country", "product", "Automobile")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStartOnly(b *testing.B) {
	// Walker construction + convergence + answer distribution, no sampling.
	ds := benchDataset(b)
	e, err := NewEngine(ds.Graph, ds.Model, Options{Tau: 0.85})
	if err != nil {
		b.Fatal(err)
	}
	q := query.Simple(query.Count, "", "Country_0", "Country", "product", "Automobile")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Start(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteChain(b *testing.B) {
	ds := benchDataset(b)
	e, err := NewEngine(ds.Graph, ds.Model, Options{Tau: 0.85, ErrorBound: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	q := query.Chain(query.Count, "", "Country_0", "Country", []query.Hop{
		{Predicate: "nationality", Types: []string{"Designer"}},
		{Predicate: "designer", Types: []string{"Automobile"}},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInteractiveTighten(b *testing.B) {
	ds := benchDataset(b)
	e, err := NewEngine(ds.Graph, ds.Model, Options{Tau: 0.85})
	if err != nil {
		b.Fatal(err)
	}
	q := query.Simple(query.Avg, "price", "Country_0", "Country", "product", "Automobile")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := e.Start(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		for _, eb := range []float64{0.10, 0.05, 0.02} {
			if _, err := x.Refine(context.Background(), eb); err != nil {
				b.Fatal(err)
			}
		}
	}
}
