package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"kgaq/internal/query"
)

// TestQueryCancelMidRefinement is the acceptance test of the context-aware
// API: cancelling after the first refinement round yields ErrInterrupted
// plus the partial estimate of the completed rounds, Converged=false.
func TestQueryCancelMidRefinement(t *testing.T) {
	e, _ := figure1Engine(t, Options{Seed: 7, MinSample: 10, MinCorrect: 5, FixedDelta: 10})
	ctx, cancel := context.WithCancel(context.Background())
	var rounds []Round
	res, err := e.Query(ctx, avgPriceQuery(),
		// An unreachable bound keeps refinement running until cancelled.
		WithErrorBound(1e-9),
		OnRound(func(r Round) {
			rounds = append(rounds, r)
			cancel()
		}))
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should also match context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled query returned no partial result")
	}
	if res.Converged {
		t.Fatal("cancelled query claims convergence")
	}
	if len(rounds) == 0 || math.IsNaN(res.Estimate) {
		t.Fatalf("partial result lacks the completed round: %+v", res)
	}
	if res.Estimate != rounds[len(rounds)-1].Estimate {
		t.Fatalf("partial estimate %v ≠ last round's %v", res.Estimate, rounds[len(rounds)-1].Estimate)
	}
}

// TestRefineCancelledKeepsEarlierRounds: a Refine call cancelled before
// completing a round of its own still reports the last round of an earlier
// Refine on the same Execution, so interactive tightening never loses an
// already-produced estimate.
func TestRefineCancelledKeepsEarlierRounds(t *testing.T) {
	e, _ := figure1Engine(t, Options{Seed: 7})
	x, err := e.Start(context.Background(), avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	first, err := x.Refine(context.Background(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := x.Refine(ctx, 0.0001)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if math.IsNaN(res.Estimate) || res.Estimate != first.Estimate {
		t.Fatalf("cancelled refine lost the earlier estimate: %v, want %v", res.Estimate, first.Estimate)
	}
	if !IsPartial(err, res) {
		t.Fatal("IsPartial must accept an estimate-bearing interrupt")
	}
	if IsPartial(err, nil) || IsPartial(nil, res) {
		t.Fatal("IsPartial must require both an interrupt and a result")
	}
}

// TestStartCancelled covers cancellation during preparation, before any
// sample exists: no partial result, just ErrInterrupted.
func TestStartCancelled(t *testing.T) {
	e, _ := figure1Engine(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, err := e.Start(ctx, avgPriceQuery())
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if x != nil {
		t.Fatal("cancelled Start returned an execution")
	}
	if _, err := e.Query(ctx, avgPriceQuery()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Query err = %v, want ErrInterrupted", err)
	}
	// The topology-only samplers honour ctx during preparation too.
	if _, err := e.Start(ctx, countQuery(), WithSampler(SamplerCNARW)); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("CNARW Start err = %v, want ErrInterrupted", err)
	}
}

// TestQueryOptionOverrides confirms per-query options shadow the engine
// configuration without mutating it.
func TestQueryOptionOverrides(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 7})
	ctx := context.Background()

	// MaxDraws: an unreachable bound with a tiny budget must stop early.
	res, err := e.Query(ctx, avgPriceQuery(), WithErrorBound(1e-9), WithMaxDraws(40))
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize > 40 {
		t.Fatalf("WithMaxDraws ignored: |S| = %d", res.SampleSize)
	}
	if res.Converged {
		t.Fatal("1e-9 bound cannot converge in 40 draws")
	}
	if e.Options().MaxDraws != 20000 || e.Options().ErrorBound != 0.02 {
		t.Fatalf("engine options mutated: %+v", e.Options())
	}

	// Confidence override shows up on the result.
	res, err = e.Query(ctx, avgPriceQuery(), WithConfidence(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence != 0.9 {
		t.Fatalf("confidence = %v, want 0.9", res.Confidence)
	}

	// Tau override: at τ=0.99 nothing validates, so AVG must fail even
	// though the engine default τ works fine.
	if _, err := e.Query(ctx, avgPriceQuery(), WithTau(0.99), WithMaxRounds(3)); err == nil {
		t.Fatal("WithTau(0.99) did not land")
	}
	if _, err := e.Query(ctx, avgPriceQuery()); err != nil {
		t.Fatalf("engine default run broken after overrides: %v", err)
	}

	// Seed override: same seed reproduces, different seed may differ but
	// both must succeed; determinism is the load-bearing half.
	a, err := e.Query(ctx, avgPriceQuery(), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(ctx, avgPriceQuery(), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || a.SampleSize != b.SampleSize {
		t.Fatalf("same-seed queries diverged: %v/%d vs %v/%d",
			a.Estimate, a.SampleSize, b.Estimate, b.SampleSize)
	}
}

// TestConcurrentQueries exercises the documented concurrency guarantee:
// one Engine, ≥8 goroutines, per-query seeds; same-seed pairs must agree
// exactly. Run with -race in CI.
func TestConcurrentQueries(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05})
	const workers = 12 // seeds 0..5 twice, so every seed has a twin
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Query(context.Background(), avgPriceQuery(),
				WithSeed(int64(i%6)+1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 0; i < 6; i++ {
		a, b := results[i], results[i+6]
		if a.Estimate != b.Estimate || a.SampleSize != b.SampleSize {
			t.Fatalf("seed %d twins diverged under concurrency: %v/%d vs %v/%d",
				i+1, a.Estimate, a.SampleSize, b.Estimate, b.SampleSize)
		}
	}
}

// TestQueryBatch runs a mixed workload over the worker pool: outcomes stay
// index-aligned and per-query failures do not sink the batch.
func TestQueryBatch(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 3})
	qs := []*query.Aggregate{
		countQuery(),
		query.Simple(query.Count, "", "Atlantis", "Country", "product", "Automobile"),
		avgPriceQuery(),
	}
	out := e.QueryBatch(context.Background(), qs, WithParallelism(2))
	if len(out) != len(qs) {
		t.Fatalf("got %d results", len(out))
	}
	for i, br := range out {
		if br.Query != qs[i] {
			t.Fatalf("result %d not index-aligned", i)
		}
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("valid queries failed: %v / %v", out[0].Err, out[2].Err)
	}
	if !errors.Is(out[1].Err, ErrUnknownEntity) {
		t.Fatalf("invalid query err = %v, want ErrUnknownEntity", out[1].Err)
	}
	if out[0].Result.Estimate <= 0 || out[2].Result.Estimate <= 0 {
		t.Fatal("degenerate batch estimates")
	}
}

// TestQueryBatchCancelled: a cancelled batch marks undispatched queries
// with ErrInterrupted instead of hanging.
func TestQueryBatchCancelled(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := make([]*query.Aggregate, 16)
	for i := range qs {
		qs[i] = countQuery()
	}
	out := e.QueryBatch(ctx, qs, WithParallelism(2))
	for i, br := range out {
		if !errors.Is(br.Err, ErrInterrupted) {
			t.Fatalf("result %d: err = %v, want ErrInterrupted", i, br.Err)
		}
	}
}

// TestRoundsStreaming: the OnRound callback and the Rounds accessor both
// see exactly the rounds recorded on the result.
func TestRoundsStreaming(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 7})
	var streamed []Round
	x, err := e.Start(context.Background(), avgPriceQuery(),
		OnRound(func(r Round) { streamed = append(streamed, r) }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.Refine(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Rounds) {
		t.Fatalf("streamed %d rounds, result has %d", len(streamed), len(res.Rounds))
	}
	for i := range streamed {
		if streamed[i] != res.Rounds[i] {
			t.Fatalf("round %d mismatch: %+v vs %+v", i, streamed[i], res.Rounds[i])
		}
	}
	if got := x.Rounds(); len(got) != len(res.Rounds) {
		t.Fatalf("Rounds() = %d, want %d", len(got), len(res.Rounds))
	}
}

// TestSentinelErrors: resolution failures match their typed sentinels
// through errors.Is.
func TestSentinelErrors(t *testing.T) {
	e, _ := figure1Engine(t, Options{})
	ctx := context.Background()
	cases := []struct {
		q    *query.Aggregate
		want error
	}{
		{query.Simple(query.Count, "", "Atlantis", "Country", "product", "Automobile"), ErrUnknownEntity},
		{query.Simple(query.Count, "", "Germany", "Person", "product", "Automobile"), ErrUnknownEntity},
		{query.Simple(query.Count, "", "Germany", "Planet", "product", "Automobile"), ErrUnknownType},
		{query.Simple(query.Count, "", "Germany", "Country", "owns", "Automobile"), ErrUnknownPredicate},
		{query.Simple(query.Avg, "warpSpeed", "Germany", "Country", "product", "Automobile"), ErrUnknownAttribute},
	}
	for i, c := range cases {
		_, err := e.Query(ctx, c.q)
		if !errors.Is(err, c.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, c.want)
		}
	}
}

// TestDeprecatedShims: the one-release Execute/Run compatibility layer
// still answers queries.
func TestDeprecatedShims(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 3})
	res, err := e.Execute(countQuery())
	if err != nil || res.Estimate <= 0 {
		t.Fatalf("Execute shim: %v, %+v", err, res)
	}
	x, err := e.Start(context.Background(), countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res, err = x.Run(0.10); err != nil || res.Estimate <= 0 {
		t.Fatalf("Run shim: %v, %+v", err, res)
	}
}
