package core

import (
	"sync"

	"kgaq/internal/estimate"
	"kgaq/internal/kg"
)

// execScratch is the reusable working memory of the draw→validate→estimate
// hot loop: observation lists, the multi-target value arena, draw batches,
// the batch-validation work queue and the generation-stamped candidate
// marks. One scratch serves one Refine/refineMulti call at a time; the
// buffers are reset (re-sliced to zero length, never reallocated while
// capacity holds) at each use, and the whole struct returns to a sync.Pool
// when the call finishes, so steady-state refinement rounds allocate
// nothing on these paths. The allocation-budget tests in
// allocbudget_test.go enforce that property per stage.
type execScratch struct {
	// obs is the per-round single-target observation list (observations).
	obs []estimate.Observation
	// base and labels serve the grouped path's shared base list and
	// per-draw group labels.
	base   []estimate.Observation
	labels []string
	// mobs is the per-round multi-target observation list; vals and has are
	// the flat |S|×K arena its Values/Has slices alias, so a round's whole
	// multi-target accumulation costs zero allocations.
	mobs []estimate.MultiObservation
	vals []float64
	has  []bool
	// proj is the per-spec projection target (estimate.ProjectInto).
	proj []estimate.Observation
	// draws is the per-call alias-table draw batch (sampleMore).
	draws []int
	// freshNodes/freshIdx queue the distinct not-yet-validated answers of a
	// round for the batch validator.
	freshNodes []kg.NodeID
	freshIdx   []int
	// marks de-duplicates candidate indices without a map: marks[i] == gen
	// means index i was seen in the current generation (beginMarks bumps
	// gen, so resetting costs nothing).
	marks []uint32
	gen   uint32
}

var execScratchPool = sync.Pool{New: func() any { return new(execScratch) }}

// disableScratchPool short-circuits the pool: every acquire returns a fresh
// zero scratch and nothing is recycled. The pooled-versus-unpooled
// equivalence tests flip it to prove pooling is behaviour-invisible.
var disableScratchPool = false

func getScratch() *execScratch {
	if disableScratchPool {
		return new(execScratch)
	}
	return execScratchPool.Get().(*execScratch)
}

func putScratch(s *execScratch) {
	if disableScratchPool || s == nil {
		return
	}
	execScratchPool.Put(s)
}

// holdScratch attaches pooled scratch to the execution for the duration of
// one refinement entry point and returns the release. Nested refinement
// helpers (runExtreme, runGrouped) see the already-attached scratch and the
// release becomes a no-op for them, so only the outermost holder returns it
// to the pool.
func (x *Execution) holdScratch() func() {
	if x.scr != nil {
		return func() {}
	}
	x.scr = getScratch()
	return func() {
		putScratch(x.scr)
		x.scr = nil
	}
}

// beginMarks starts a new de-duplication generation over n candidates.
func (s *execScratch) beginMarks(n int) {
	if len(s.marks) < n {
		s.marks = make([]uint32, n)
		s.gen = 0
	}
	s.gen++
	if s.gen == 0 { // generation counter wrapped: clear once and restart
		for i := range s.marks {
			s.marks[i] = 0
		}
		s.gen = 1
	}
}

// mark reports whether candidate index i is seen for the first time in the
// current generation.
func (s *execScratch) mark(i int) bool {
	if s.marks[i] == s.gen {
		return false
	}
	s.marks[i] = s.gen
	return true
}
