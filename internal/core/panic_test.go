package core

import (
	"context"
	"errors"
	"testing"

	"kgaq/internal/faultinject"
	"kgaq/internal/query"
)

// An injected panic inside candidate validation must surface as a typed
// ErrInternal carrying the query and a stack — and leave the engine fully
// usable for the next query.
func TestPanicInValidationIsContained(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 7})
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Point: "core.validate", Count: 1, Panic: "injected validation panic",
	})
	_, err := e.Query(context.Background(), avgPriceQuery())
	deactivate()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("query under injected panic = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error is not *InternalError: %v", err)
	}
	if ie.Query == "" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError missing context: query %q, stack %d bytes", ie.Query, len(ie.Stack))
	}

	// The engine survives: the very next query succeeds.
	res, err := e.Query(context.Background(), avgPriceQuery())
	if err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	if res == nil || res.Estimate <= 0 {
		t.Fatalf("degenerate result after contained panic: %+v", res)
	}
}

// The same containment must hold under sharded execution, where validation
// fans out across worker goroutines: the panic crosses the goroutine
// boundary with its stack instead of killing the process.
func TestPanicInShardWorkerIsContained(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 7, Shards: 2})
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Point: "core.validate", Count: 1, Panic: "injected shard panic",
	})
	_, err := e.Query(context.Background(), avgPriceQuery())
	deactivate()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("sharded query under injected panic = %v, want ErrInternal", err)
	}
	if _, err := e.Query(context.Background(), avgPriceQuery()); err != nil {
		t.Fatalf("sharded query after contained panic: %v", err)
	}
}

// One poisoned query in a batch must fail alone; its siblings complete.
func TestPanicInBatchIsolated(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 7})
	defer faultinject.Activate(1, faultinject.Fault{
		Point: "core.validate", Count: 1, Panic: "injected batch panic",
	})()
	qs := []*query.Aggregate{avgPriceQuery(), countQuery(), avgPriceQuery()}
	results := e.QueryBatch(context.Background(), qs)
	internal, ok := 0, 0
	for i, r := range results {
		switch {
		case errors.Is(r.Err, ErrInternal):
			internal++
		case r.Err != nil:
			t.Fatalf("query %d failed with unexpected error: %v", i, r.Err)
		default:
			ok++
		}
	}
	if internal != 1 {
		t.Fatalf("%d queries hit the injected panic, want exactly 1", internal)
	}
	if ok != len(qs)-1 {
		t.Fatalf("%d sibling queries completed, want %d", ok, len(qs)-1)
	}
}
