package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"kgaq/internal/query"
)

// Pooling must be behaviour-invisible: the same query under the same seed
// returns bitwise-identical estimates, margins and draw counts whether the
// hot-loop scratch comes from the sync.Pool or is freshly allocated every
// call. disableScratchPool flips the acquire path; everything else is
// shared code.
func TestPooledMatchesUnpooledQuery(t *testing.T) {
	run := func() *Result {
		e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 11})
		res, err := e.Query(context.Background(), avgPriceQuery())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	disableScratchPool = true
	unpooled := run()
	disableScratchPool = false
	pooled := run()

	if pooled.Estimate != unpooled.Estimate || pooled.MoE != unpooled.MoE {
		t.Fatalf("pooled (%v ± %v) != unpooled (%v ± %v)",
			pooled.Estimate, pooled.MoE, unpooled.Estimate, unpooled.MoE)
	}
	if pooled.SampleSize != unpooled.SampleSize || pooled.Distinct != unpooled.Distinct ||
		pooled.Correct != unpooled.Correct || len(pooled.Rounds) != len(unpooled.Rounds) {
		t.Fatalf("pooled counters %+v != unpooled %+v", pooled, unpooled)
	}
	for i := range pooled.Rounds {
		if pooled.Rounds[i] != unpooled.Rounds[i] {
			t.Fatalf("round %d: pooled %+v != unpooled %+v", i, pooled.Rounds[i], unpooled.Rounds[i])
		}
	}
}

// The multi-aggregate path reuses the same pooled arenas; it must be
// equally pooling-invariant.
func TestPooledMatchesUnpooledQueryMulti(t *testing.T) {
	run := func() *MultiResult {
		e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 13})
		res, err := e.QueryMulti(context.Background(), countQuery(), threeSpecs())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	disableScratchPool = true
	unpooled := run()
	disableScratchPool = false
	pooled := run()

	if pooled.SampleSize != unpooled.SampleSize || pooled.Rounds != unpooled.Rounds ||
		pooled.Distinct != unpooled.Distinct || pooled.Correct != unpooled.Correct {
		t.Fatalf("pooled counters %+v != unpooled %+v", pooled, unpooled)
	}
	for k := range pooled.Aggs {
		pa, ua := pooled.Aggs[k], unpooled.Aggs[k]
		if pa.Estimate != ua.Estimate || pa.MoE != ua.MoE || len(pa.Rounds) != len(ua.Rounds) {
			t.Fatalf("agg %v: pooled (%v ± %v, %d rounds) != unpooled (%v ± %v, %d rounds)",
				pa.Spec, pa.Estimate, pa.MoE, len(pa.Rounds), ua.Estimate, ua.MoE, len(ua.Rounds))
		}
	}
}

// One shared draw stream means QueryMulti and three sequential Query calls
// see the same sample: under a bound loose enough that every aggregate
// settles as soon as the minimum-correct floor is met, the estimates,
// margins and draw counts agree bitwise. This pins the guarantee-RNG split — the bootstrap seeds derive
// from (query seed, aggregate, sample size), never from the draw stream's
// position, so running three aggregates together consumes exactly the
// stream one aggregate would.
func TestQueryMultiBitwiseMatchesSequentialSingles(t *testing.T) {
	const seed, eb = 9, 0.5
	e, _ := figure1Engine(t, Options{ErrorBound: eb, Seed: seed})
	ctx := context.Background()

	multi, err := e.QueryMulti(ctx, countQuery(), threeSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if !multi.Converged {
		t.Fatalf("multi did not converge under eb=%v", eb)
	}

	singles := []*query.Aggregate{
		countQuery(),
		query.Simple(query.Sum, "price", "Germany", "Country", "product", "Automobile"),
		avgPriceQuery(),
	}
	for k, q := range singles {
		single, err := e.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		agg := multi.Aggs[k]
		if agg.Estimate != single.Estimate {
			t.Fatalf("%v: multi estimate %v != single %v (bitwise)", q.Func, agg.Estimate, single.Estimate)
		}
		if agg.MoE != single.MoE {
			t.Fatalf("%v: multi MoE %v != single %v (bitwise)", q.Func, agg.MoE, single.MoE)
		}
		if multi.SampleSize != single.SampleSize {
			t.Fatalf("%v: multi drew %d, single drew %d — streams diverged",
				q.Func, multi.SampleSize, single.SampleSize)
		}
	}
}

// Concurrent executions of one shared Prepared plan must neither race on
// the pooled scratch (run under -race in CI) nor let buffer reuse leak
// state between executions: every same-seeded run returns bitwise-identical
// results no matter how many neighbours hammer the pool.
func TestConcurrentQueryMultiSharedPlan(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 17})
	p, err := e.Prepare(context.Background(), countQuery())
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 4
	results := make([]*MultiResult, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				res, err := p.QueryMulti(context.Background(), threeSpecs())
				if err != nil {
					t.Error(err)
					return
				}
				results[w*perWorker+j] = res
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	ref := results[0]
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
		if res.SampleSize != ref.SampleSize || res.Rounds != ref.Rounds || res.Correct != ref.Correct {
			t.Fatalf("result %d counters %+v diverge from first %+v — pooled state leaked", i, res, ref)
		}
		for k := range res.Aggs {
			if res.Aggs[k].Estimate != ref.Aggs[k].Estimate || res.Aggs[k].MoE != ref.Aggs[k].MoE {
				t.Fatalf("result %d agg %v (%v ± %v) diverges from first (%v ± %v)",
					i, res.Aggs[k].Spec, res.Aggs[k].Estimate, res.Aggs[k].MoE,
					ref.Aggs[k].Estimate, ref.Aggs[k].MoE)
			}
			if math.IsNaN(res.Aggs[k].Estimate) {
				t.Fatalf("result %d agg %v is NaN", i, res.Aggs[k].Spec)
			}
		}
	}
}
