package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"kgaq/internal/query"
)

// BatchResult pairs one batch query with its outcome; the slice returned by
// QueryBatch is index-aligned with the input queries.
type BatchResult struct {
	Query  *query.Aggregate
	Result *Result
	Err    error
}

// sharedPlan is one plan key's build slot: the first worker to reach it
// compiles the plan, every later worker with the same key reuses the
// compiled space.
type sharedPlan struct {
	once sync.Once
	p    *Prepared
	err  error
}

// QueryBatch executes the queries concurrently over a bounded worker pool
// (WithParallelism, default GOMAXPROCS) and returns per-query outcomes in
// input order. Options apply to every query in the batch; an OnRound
// callback is serialized across the pool, so it observes one round at a
// time even while queries run in parallel. Cancelling ctx stops
// dispatching new queries — never-started ones report ErrInterrupted with
// a nil Result — and interrupts the in-flight ones, which report
// ErrInterrupted alongside their partial Results. QueryBatch itself never
// returns an aggregate error: inspect each BatchResult.
//
// Queries whose graphs compile to the same plan key (identical decomposed
// paths under identical plan knobs — e.g. COUNT, SUM and AVG over one
// query graph) share a single answer-space build: the first worker to
// reach the key compiles it, the rest rebind their aggregates onto the
// compiled space. The build time lands on the building query's
// Result.Times; the sharing queries report only their own sampling work.
func (e *Engine) QueryBatch(ctx context.Context, qs []*query.Aggregate, opts ...QueryOption) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	cfg := e.queryConfig(opts)
	if cfg.onRound != nil {
		// The workers would otherwise invoke the user's callback from many
		// goroutines at once — an invisible data-race trap.
		var mu sync.Mutex
		orig := cfg.onRound
		cfg.onRound = func(r Round) {
			mu.Lock()
			defer mu.Unlock()
			orig(r)
		}
	}
	workers := cfg.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}

	var plansMu sync.Mutex
	plans := map[string]*sharedPlan{}
	run := func(i int) (*Result, error) {
		q := qs[i]
		if cfg.opts.Sampler != SamplerSemantic {
			x, err := e.startTopology(ctx, q, cfg)
			if err != nil {
				return nil, err
			}
			return x.Refine(ctx, 0)
		}
		if err := q.Validate(); err != nil {
			return nil, err
		}
		paths, err := q.Q.Decompose()
		if err != nil {
			return nil, err
		}
		key := planKey(paths, cfg.opts)
		plansMu.Lock()
		slot, ok := plans[key]
		if !ok {
			slot = &sharedPlan{}
			plans[key] = slot
		}
		plansMu.Unlock()
		building := false
		slot.once.Do(func() {
			building = true
			slot.p, slot.err = e.prepare(ctx, q, cfg)
		})
		if slot.err != nil {
			// The key's build failed (resolution, convergence); the failure
			// applies to every query with this plan key equally.
			return nil, slot.err
		}
		p := slot.p
		if !building {
			if p, err = e.prepareShared(q, paths, cfg, slot.p); err != nil {
				return nil, err
			}
		}
		x, err := p.Start(ctx)
		if err != nil {
			return nil, err
		}
		if building {
			x.times.Sampling += p.buildTime
		}
		return x.Refine(ctx, 0)
	}

	// A panic in one query must not take the worker (and with it the whole
	// process) down: each query is guarded individually, so a poisoned
	// query yields its own ErrInternal and the batch completes.
	runSafe := func(i int) (res *Result, err error) {
		defer catchPanics(aggString(qs[i]), &err)
		return run(i)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, err := runSafe(i)
				out[i] = BatchResult{Query: qs[i], Result: res, Err: err}
			}
		}()
	}
dispatch:
	for i := range qs {
		select {
		case work <- i:
		case <-ctx.Done():
			for j := i; j < len(qs); j++ {
				out[j] = BatchResult{Query: qs[j],
					Err: fmt.Errorf("core: %w before dispatch: %w", ErrInterrupted, ctx.Err())}
			}
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	return out
}
