package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"kgaq/internal/query"
)

// BatchResult pairs one batch query with its outcome; the slice returned by
// QueryBatch is index-aligned with the input queries.
type BatchResult struct {
	Query  *query.Aggregate
	Result *Result
	Err    error
}

// QueryBatch executes the queries concurrently over a bounded worker pool
// (WithParallelism, default GOMAXPROCS) and returns per-query outcomes in
// input order. Options apply to every query in the batch; an OnRound
// callback is serialized across the pool, so it observes one round at a
// time even while queries run in parallel. Cancelling ctx stops
// dispatching new queries — never-started ones report ErrInterrupted with
// a nil Result — and interrupts the in-flight ones, which report
// ErrInterrupted alongside their partial Results. QueryBatch itself never
// returns an aggregate error: inspect each BatchResult.
func (e *Engine) QueryBatch(ctx context.Context, qs []*query.Aggregate, opts ...QueryOption) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	cfg := e.queryConfig(opts)
	if cfg.onRound != nil {
		// The workers would otherwise invoke the user's callback from many
		// goroutines at once — an invisible data-race trap.
		var mu sync.Mutex
		orig := cfg.onRound
		opts = append(opts, OnRound(func(r Round) {
			mu.Lock()
			defer mu.Unlock()
			orig(r)
		}))
	}
	workers := cfg.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, err := e.Query(ctx, qs[i], opts...)
				out[i] = BatchResult{Query: qs[i], Result: res, Err: err}
			}
		}()
	}
dispatch:
	for i := range qs {
		select {
		case work <- i:
		case <-ctx.Done():
			for j := i; j < len(qs); j++ {
				out[j] = BatchResult{Query: qs[j],
					Err: fmt.Errorf("core: %w before dispatch: %w", ErrInterrupted, ctx.Err())}
			}
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	return out
}
