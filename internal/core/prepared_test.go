package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// Prepare must compile once — stages built fresh on a cold engine, served
// from cache when the same plan is prepared again — and expose honest plan
// metadata.
func TestPrepareCompilesOnceAndIntrospects(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 1})
	ctx := context.Background()

	p, err := e.Prepare(ctx, avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	info := p.Plan()
	if info.Shape.String() != "simple" {
		t.Fatalf("shape = %v, want simple", info.Shape)
	}
	if info.Paths != 1 || info.HopBound != 3 {
		t.Fatalf("paths/hop bound = %d/%d, want 1/3", info.Paths, info.HopBound)
	}
	if info.Candidates != 6 {
		t.Fatalf("candidates = %d, want 6 (Figure 1 automobiles)", info.Candidates)
	}
	if info.CacheBuilt != 1 || info.CacheHits != 0 {
		t.Fatalf("cold prepare: built/hits = %d/%d, want 1/0", info.CacheBuilt, info.CacheHits)
	}
	if info.Strata != 0 {
		t.Fatalf("unsharded plan reports %d strata", info.Strata)
	}
	if info.EpochPolicy != EpochPin {
		t.Fatalf("default epoch policy = %v, want pin", info.EpochPolicy)
	}
	if _, err := query.Parse(info.Query); err != nil {
		t.Fatalf("Plan().Query %q is not re-parseable: %v", info.Query, err)
	}

	p2, err := e.Prepare(ctx, avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if info2 := p2.Plan(); info2.CacheBuilt != 0 || info2.CacheHits != 1 {
		t.Fatalf("warm prepare: built/hits = %d/%d, want 0/1", info2.CacheBuilt, info2.CacheHits)
	}
}

// A prepared plan executes repeatedly without rebuilding: the engine's
// stage cache sees exactly one miss however many queries run, and equal
// seeds draw identical samples.
func TestPreparedQueryReuse(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 9})
	ctx := context.Background()
	p, err := e.Prepare(ctx, avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for i := 0; i < 5; i++ {
		res, err := p.Query(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("run %d did not converge", i)
		}
		if first == nil {
			first = res
		} else if res.Estimate != first.Estimate || res.SampleSize != first.SampleSize {
			t.Fatalf("run %d diverged under one seed: %v/%d vs %v/%d",
				i, res.Estimate, res.SampleSize, first.Estimate, first.SampleSize)
		}
	}
	if cs := e.CacheStats(); cs.Misses != 1 {
		t.Fatalf("stage cache misses = %d after 5 plan executions, want 1", cs.Misses)
	}
	// Seed overrides draw an independent stream without recompiling.
	res, err := p.Query(ctx, WithSeed(1234))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("seed-override run did not converge")
	}
	if cs := e.CacheStats(); cs.Misses != 1 {
		t.Fatalf("stage cache misses = %d after seed override, want 1", cs.Misses)
	}
}

// One Prepared must serve concurrent executions: forked verdict caches,
// private RNGs, shared immutable space (run with -race).
func TestPreparedConcurrentExecutions(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 3})
	p, err := e.Prepare(context.Background(), countQuery())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	ests := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := p.Query(context.Background(), WithSeed(int64(w+1)))
			if err != nil {
				errs[w] = err
				return
			}
			ests[w] = res.Estimate
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		if rel := stats.RelativeError(ests[w], 5); rel > 0.25 {
			t.Fatalf("worker %d estimate %v far from the 5 correct automobiles", w, ests[w])
		}
	}
}

// Plan-compiled knobs cannot be overridden per execution; execution-level
// knobs can.
func TestPreparedOptionBoundaries(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 1})
	ctx := context.Background()
	p, err := e.Prepare(ctx, avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]QueryOption{
		"hop bound":    WithHopBound(2),
		"tau":          WithTau(0.7),
		"shards":       WithShards(4),
		"sampler":      WithSampler(SamplerCNARW),
		"epoch policy": WithEpochPolicy(EpochRepin),
	} {
		if _, err := p.Query(ctx, opt); !errors.Is(err, ErrPlanOption) {
			t.Fatalf("%s override: err = %v, want ErrPlanOption", name, err)
		}
	}
	if _, err := p.Query(ctx, WithErrorBound(0.2), WithSeed(5), WithMaxDraws(5000)); err != nil {
		t.Fatalf("execution-level overrides rejected: %v", err)
	}
}

// Prepare requires the semantic sampler: the topology ablations draw
// during the build and have nothing to compile.
func TestPrepareRejectsTopologySamplers(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05})
	if _, err := e.Prepare(context.Background(), countQuery(), WithSampler(SamplerCNARW)); !errors.Is(err, ErrPlanSampler) {
		t.Fatalf("err = %v, want ErrPlanSampler", err)
	}
	// The one-shot path still accepts them (it routes around Prepare).
	if _, err := e.Query(context.Background(), countQuery(), WithSampler(SamplerCNARW), WithErrorBound(0.3)); err != nil {
		t.Fatalf("one-shot topology query failed: %v", err)
	}
}

// A sharded plan compiles its split once and reports the stratum count.
func TestPreparedSharded(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 7, Shards: 4})
	ctx := context.Background()
	p, err := e.Prepare(ctx, avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	info := p.Plan()
	if info.Strata < 1 || info.Strata > 6 {
		t.Fatalf("strata = %d, want within [1,6]", info.Strata)
	}
	res, err := p.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Shards != info.Strata {
		t.Fatalf("sharded plan query: converged=%v shards=%d (plan %d)", res.Converged, res.Shards, info.Strata)
	}
	if rel := stats.RelativeError(res.Estimate, kgtest.Figure1AvgPrice); rel > 0.05 {
		t.Fatalf("estimate %v vs truth %v", res.Estimate, kgtest.Figure1AvgPrice)
	}
}

// QueryBatch must share one answer-space build across same-graph queries:
// COUNT, SUM and AVG over one query graph are one plan key.
func TestQueryBatchDedupesPlans(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 2})
	qs := []*query.Aggregate{
		countQuery(),
		query.Simple(query.Sum, "price", "Germany", "Country", "product", "Automobile"),
		avgPriceQuery(),
		avgPriceQuery().WithFilterAtLeast("price", 0),
	}
	results := e.QueryBatch(context.Background(), qs, WithParallelism(4))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !r.Result.Converged {
			t.Fatalf("query %d did not converge", i)
		}
	}
	if cs := e.CacheStats(); cs.Misses != 1 {
		t.Fatalf("stage cache misses = %d for a 4-query same-graph batch, want 1 (one shared build)", cs.Misses)
	}
}
