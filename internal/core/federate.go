package core

import (
	"context"
	"fmt"

	"kgaq/internal/estimate"
	"kgaq/internal/query"
)

// This file is the member half of federated execution (DESIGN.md
// "Federation: remote strata"): one engine instance samples its own graph
// as a single remote stratum and hands the draws to a coordinator, which
// merges per-member streams through the stratified Horvitz–Thompson
// combiner in internal/federate.

// MemberSample is one round's worth of local draws, produced by
// FederateSample and shipped to the coordinator. Observation probabilities
// are member-local (conditional on this graph), so the per-draw HT terms
// v·1{correct}/p estimate this member's local aggregate total without any
// knowledge of the rest of the federation.
type MemberSample struct {
	// Obs are the draws from this member's sampling distribution, with
	// member-local inclusion probabilities and no stratum assignment (the
	// coordinator stamps stratum identity and weight).
	Obs []estimate.Observation
	// Candidates is the size of the member's candidate-answer space — the
	// coordinator's basis for the stratum weights it feeds the Neyman
	// allocator.
	Candidates int
	// Epoch is the graph epoch the draws observed. The coordinator tracks
	// it per member: a moved epoch means earlier rounds sampled a different
	// graph and the member's stream restarts.
	Epoch uint64
	// Sigma is the sample standard deviation of the per-draw HT terms — the
	// member's variance signal for cross-member Neyman allocation.
	Sigma float64
}

// FederateSample runs one federated sampling round against this engine's
// own graph: prepare (or reuse) the query's answer space, draw n
// observations, validate them, and return the stream with the member-side
// statistics the coordinator needs. Each call is an independent round —
// draws across calls are i.i.d. from the same space (per-call seeds keep
// rounds distinct), so the coordinator can pool them freely.
//
// pilot floors the draw count at the execution's initial sample size (the
// paper's |S| sizing), so the first round carries a usable variance signal
// whatever tiny allocation the coordinator asked for.
//
// The query must carry a guaranteed aggregate (COUNT/SUM/AVG) without
// GROUP-BY: extremes and grouped queries do not decompose into remote
// strata. Local sharding is forced off — the combiner needs member-local
// conditional probabilities, not probabilities conditional on a member's
// own sub-strata.
func (e *Engine) FederateSample(ctx context.Context, q *query.Aggregate, n int, pilot bool, opts ...QueryOption) (ms *MemberSample, err error) {
	defer catchPanics(aggString(q), &err)
	if ctx == nil {
		ctx = context.Background()
	}
	if !q.Func.HasGuarantee() {
		return nil, fmt.Errorf("core: %w: %v carries no guarantee to federate", ErrFederatedQuery, q.Func)
	}
	if q.GroupBy != "" {
		return nil, fmt.Errorf("core: %w: GROUP-BY does not decompose into remote strata", ErrFederatedQuery)
	}
	x, err := e.Start(ctx, q, append(opts, WithShards(1))...)
	if err != nil {
		return nil, err
	}
	release := x.holdScratch()
	defer release()
	if pilot {
		if floor := x.initialSize(x.sp.len()); n < floor {
			n = floor
		}
	}
	if n < 2 {
		n = 2 // σ̂ needs two draws to exist
	}
	x.sampleMore(n)
	obs := x.observations(ctx)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("core: %w during member sampling: %w", ErrInterrupted, cerr)
	}
	// The observation list is scratch-backed; copy it out of the pool.
	out := make([]estimate.Observation, len(obs))
	copy(out, obs)
	return &MemberSample{
		Obs:        out,
		Candidates: x.sp.len(),
		Epoch:      x.v.epoch,
		Sigma:      estimate.StratumSigma(q.Func, out),
	}, nil
}
