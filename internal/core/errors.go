package core

import (
	"errors"
	"math"
)

// Sentinel errors returned (possibly wrapped) by query resolution and
// execution. Match with errors.Is; the wrapping message carries the
// offending name and query context.
var (
	// ErrUnknownEntity reports a specific entity name absent from the graph
	// (or present but failing the Definition 5 type condition).
	ErrUnknownEntity = errors.New("unknown entity")
	// ErrUnknownType reports a query type name absent from the graph.
	ErrUnknownType = errors.New("unknown type")
	// ErrUnknownPredicate reports a query predicate absent from the graph
	// (the embedding has no vector for it).
	ErrUnknownPredicate = errors.New("unknown predicate")
	// ErrUnknownAttribute reports an aggregated, filtered or grouped
	// attribute absent from the graph.
	ErrUnknownAttribute = errors.New("unknown attribute")
	// ErrNotConverged reports that no estimable sample was obtained within
	// the round budget. A run that produces an estimate but exhausts its
	// draw budget does NOT error; it returns a Result with Converged=false.
	ErrNotConverged = errors.New("did not converge")
	// ErrInterrupted reports that the context was cancelled or its deadline
	// expired mid-query. When refinement had already produced an estimate,
	// the error accompanies a partial Result with Converged=false.
	ErrInterrupted = errors.New("query interrupted")
	// ErrEpochNotReached reports a WithMinEpoch requirement the engine's
	// graph source cannot satisfy — always, for a static engine asked for a
	// positive epoch; never for a live engine, which waits instead (a
	// cancelled wait reports ErrInterrupted).
	ErrEpochNotReached = errors.New("graph epoch not reached")
	// ErrShardedSampler reports a query combining sharded execution with a
	// topology-only ablation sampler, whose empirical visit shares carry no
	// exact per-answer probability to stratify.
	ErrShardedSampler = errors.New("sharded execution requires the semantic sampler")
	// ErrPlanSampler reports Engine.Prepare with a topology-only ablation
	// sampler: those samplers draw during the build itself, so a plan would
	// have nothing reusable to compile.
	ErrPlanSampler = errors.New("prepared plans require the semantic sampler")
	// ErrPlanOption reports a Prepared.Start/Query/QueryMulti override of
	// an option that is compiled into the plan (sampler, shards, hop bound,
	// self-loop weight, τ, repeat factor). Prepare a new plan with those
	// options instead.
	ErrPlanOption = errors.New("option is compiled into the prepared plan")
	// ErrBadAggSpec reports an invalid multi-aggregate specification: an
	// empty spec list, a non-COUNT aggregate without an attribute, or a
	// MAX/MIN aggregate combined with GROUP-BY.
	ErrBadAggSpec = errors.New("invalid aggregate spec")
	// ErrFederatedQuery reports a query shape federated execution cannot
	// scatter: MAX/MIN (no guarantee to merge) or GROUP-BY (group strata do
	// not decompose into remote member strata). Rejected by both the member
	// sampling API (Engine.FederateSample) and the coordinator.
	ErrFederatedQuery = errors.New("query is not federatable")
)

// IsPartial reports whether an interrupted query still yielded a usable
// partial estimate — the single predicate the CLIs and the HTTP server
// share for "report the partial instead of failing".
func IsPartial(err error, res *Result) bool {
	return errors.Is(err, ErrInterrupted) && res != nil && !math.IsNaN(res.Estimate)
}
