package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kgaq/internal/kg"
	"kgaq/internal/obs"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// EpochPolicy governs how a prepared plan tracks a live engine's graph
// epochs across executions. Static engines serve a single epoch, so both
// policies behave identically there.
type EpochPolicy int

const (
	// EpochPin (the default) freezes the plan on the snapshot current at
	// Prepare: every later execution observes exactly that epoch, however
	// many mutation batches land meanwhile — deterministic repeat reads at
	// the price of staleness. A WithMinEpoch above the pinned epoch fails
	// with ErrEpochNotReached, because the plan will never move.
	EpochPin EpochPolicy = iota
	// EpochRepin re-pins the plan to the engine's current snapshot at each
	// Start: when the epoch moved, the compiled answer space is rebuilt
	// against the new view (cheap when the engine's stage cache still holds
	// the untouched stages) and the plan's epoch advances. WithMinEpoch
	// waits for the store to reach the epoch, then rebuilds.
	EpochRepin
)

// String names the policy.
func (p EpochPolicy) String() string {
	if p == EpochRepin {
		return "repin"
	}
	return "pin"
}

// planKnobs are the option fields compiled into a prepared plan's answer
// space and validation oracle. They cannot be overridden per execution —
// changing any of them requires a new Prepare — which is what keeps a
// Prepared's concurrent executions coherent.
type planKnobs struct {
	sampler  SamplerKind
	shards   int
	n        int
	selfLoop float64
	tau      float64
	repeat   int
}

func knobsOf(o Options) planKnobs {
	return planKnobs{
		sampler:  o.Sampler,
		shards:   o.Shards,
		n:        o.N,
		selfLoop: o.SelfLoopSim,
		tau:      o.Tau,
		repeat:   o.Repeat,
	}
}

// PlanInfo is the introspectable metadata of a prepared plan — what the
// compilation produced and what it cost, the payload of kgaqd's
// /v1/prepare response and /debug/plans listing.
type PlanInfo struct {
	// Query is the compiled query in the textual language (re-parseable).
	Query string
	// Shape is the query graph's Figure 4 classification.
	Shape query.Shape
	// Paths is the number of decomposed root-to-target paths (§V-B).
	Paths int
	// HopBound is the walk-scope bound n the plan was compiled with.
	HopBound int
	// Strata is the number of non-empty shard strata the candidate space
	// was split into; 0 for an unsharded plan.
	Strata int
	// Candidates is |A|: candidate answers with positive visiting
	// probability under the compiled distribution.
	Candidates int
	// Epoch is the graph epoch the compiled space observes.
	Epoch uint64
	// EpochPolicy is the plan's behaviour when the live graph moves on.
	EpochPolicy EpochPolicy
	// CacheHits / CacheBuilt count the converged chain stages the
	// compilation served from the engine's answer-space cache versus built
	// fresh — CacheBuilt 0 means the plan compiled entirely from cache.
	CacheHits  int
	CacheBuilt int
	// Rebuilds counts how many times an EpochRepin plan re-compiled after
	// the graph epoch moved.
	Rebuilds int
}

// compiled is one epoch's compilation of a prepared query: the resolved
// bindings and the immutable sampling space (plus its shard split). A new
// compiled replaces the old wholesale when an EpochRepin plan follows the
// graph, so executions started earlier keep their epoch's state untouched.
type compiled struct {
	v       view
	attr    kg.AttrID
	group   kg.AttrID
	filters []resolvedFilter
	sp      *answerSpace
	split   *shardSplit // non-nil when the plan is sharded
	hits    int         // stage-cache hits during this compilation
	built   int         // stages converged fresh during this compilation
}

// Prepared is a compiled aggregate query: name→id resolution, shape
// classification, filter/attribute binding and the full answer-space build
// (walk convergence, alias tables, shard split) all done once at Prepare.
// It is safe for concurrent use — any number of goroutines may Start
// executions or Query/QueryMulti from one Prepared; each execution forks
// its own verdict caches and RNG while sharing the immutable compiled
// space.
type Prepared struct {
	e      *Engine
	q      *query.Aggregate
	cfg    queryConfig // Prepare-time configuration: the plan's defaults
	paths  []query.Path
	shape  query.Shape
	policy EpochPolicy

	// buildTime is the initial compilation's wall time; Engine.Start (the
	// unprepared path) charges it to the execution's sampling step so the
	// one-shot API's timing semantics are unchanged.
	buildTime time.Duration

	mu       sync.Mutex
	cur      *compiled
	rebuilds int
}

// Prepare compiles a query into a reusable execution plan: Validate,
// decomposition, name→id resolution, filter/attribute binding, walker
// convergence and answer-space assembly (with shard split when the plan is
// sharded) happen here, once; every later Query/Start/QueryMulti on the
// returned Prepared skips straight to drawing the sample. QueryOptions
// given here become the plan's defaults; executions may override the
// sampling/guarantee knobs per call, but not the compiled ones
// (ErrPlanOption names the offender).
//
// Prepared plans require the semantic sampler — the topology-only ablation
// samplers draw during the build itself and have nothing to reuse
// (ErrPlanSampler).
//
// On a live engine the plan observes the snapshot current at Prepare (or
// the one WithMinEpoch waits for); WithEpochPolicy chooses whether later
// executions stay pinned there or re-pin to fresh snapshots as the graph
// moves.
func (e *Engine) Prepare(ctx context.Context, q *query.Aggregate, opts ...QueryOption) (p *Prepared, err error) {
	defer catchPanics(aggString(q), &err)
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := e.queryConfig(opts)
	if cfg.opts.Sampler != SamplerSemantic {
		return nil, fmt.Errorf("core: %w (got %v)", ErrPlanSampler, cfg.opts.Sampler)
	}
	return e.prepare(ctx, q, cfg)
}

// prepare is the option-resolved core of Prepare, shared with the rebased
// Engine.Start/Query and QueryBatch paths.
func (e *Engine) prepare(ctx context.Context, q *query.Aggregate, cfg queryConfig) (*Prepared, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.Func.HasGuarantee() && q.GroupBy != "" {
		return nil, fmt.Errorf("core: GROUP-BY with %v is unsupported", q.Func)
	}
	paths, err := q.Q.Decompose()
	if err != nil {
		return nil, err
	}
	v := e.src.snapshot()
	if cfg.minEpoch > v.epoch {
		if v, err = e.src.waitEpoch(ctx, cfg.minEpoch); err != nil {
			return nil, err
		}
	}
	p := &Prepared{
		e:      e,
		q:      q,
		cfg:    cfg,
		paths:  paths,
		shape:  q.Q.ShapeOf(),
		policy: cfg.epochPolicy,
	}
	begin := time.Now()
	c, err := p.compile(ctx, v)
	if err != nil {
		return nil, err
	}
	p.buildTime = time.Since(begin)
	p.cur = c
	return p, nil
}

// compile builds one epoch's compiled state: bindings plus the answer
// space. Pure with respect to p's mutable fields — callers install the
// result.
func (p *Prepared) compile(ctx context.Context, v view) (*compiled, error) {
	defer obs.TraceFrom(ctx).Span("compile")()
	e, q, o := p.e, p.q, p.cfg.opts
	c := &compiled{v: v}
	var err error
	endResolve := obs.TraceFrom(ctx).Span("resolve")
	if c.attr, err = resolveAttr(v.g, q.Attr); err != nil {
		endResolve()
		return nil, err
	}
	if c.group, err = resolveAttr(v.g, q.GroupBy); err != nil {
		endResolve()
		return nil, err
	}
	for _, f := range q.Filters {
		a, err := resolveAttr(v.g, f.Attr)
		if err != nil {
			endResolve()
			return nil, err
		}
		c.filters = append(c.filters, resolvedFilter{attr: a, low: f.Low, high: f.High})
	}
	endResolve()
	bm := &buildMetrics{}
	endBuild := obs.TraceFrom(ctx).Span("build_space")
	c.sp, err = e.buildAssemblySpace(ctx, o, v, p.paths, bm)
	endBuild()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: %w during preparation: %w", ErrInterrupted, cerr)
		}
		return nil, err
	}
	if o.Shards > 1 {
		if c.split, err = newShardSplit(c.sp, o.Shards); err != nil {
			return nil, err
		}
	}
	c.hits, c.built = int(bm.hits.Load()), int(bm.built.Load())
	return c, nil
}

// Plan returns the plan's introspection metadata. On an EpochRepin plan the
// epoch, candidate count and cache counters describe the current
// compilation.
func (p *Prepared) Plan() PlanInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.cur
	strata := 0
	if c.split != nil {
		strata = len(c.split.spaces)
	}
	return PlanInfo{
		Query:       p.q.String(),
		Shape:       p.shape,
		Paths:       len(p.paths),
		HopBound:    p.cfg.opts.N,
		Strata:      strata,
		Candidates:  c.sp.len(),
		Epoch:       c.v.epoch,
		EpochPolicy: p.policy,
		CacheHits:   c.hits,
		CacheBuilt:  c.built,
		Rebuilds:    p.rebuilds,
	}
}

// Aggregate returns the compiled aggregate query.
func (p *Prepared) Aggregate() *query.Aggregate { return p.q }

// ensure returns the compiled state an execution starting now must use,
// honouring the plan's epoch policy and the execution's minEpoch.
func (p *Prepared) ensure(ctx context.Context, minEpoch uint64) (*compiled, error) {
	if p.policy == EpochPin {
		p.mu.Lock()
		c := p.cur
		p.mu.Unlock()
		if minEpoch > c.v.epoch {
			return nil, fmt.Errorf("core: %w: plan is pinned at epoch %d, %d requested (prepare anew or use EpochRepin)",
				ErrEpochNotReached, c.v.epoch, minEpoch)
		}
		return c, nil
	}
	// EpochRepin: follow the engine's current snapshot, waiting for
	// minEpoch outside the lock so a long wait never blocks concurrent
	// executions of the already-compiled state.
	v := p.e.src.snapshot()
	if minEpoch > v.epoch {
		var err error
		if v, err = p.e.src.waitEpoch(ctx, minEpoch); err != nil {
			return nil, err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur.v.epoch >= v.epoch {
		return p.cur, nil
	}
	c, err := p.compile(ctx, v)
	if err != nil {
		return nil, err
	}
	p.cur = c
	p.rebuilds++
	metPlanRebuilds.Inc()
	return c, nil
}

// Start starts one execution of the plan: per-call options may override
// the sampling and guarantee knobs (seed, error bound, policy, draw
// budgets, OnRound, …) but not the compiled plan knobs — overriding the
// sampler, shard count, hop bound, self-loop weight, τ or the repeat
// factor fails with ErrPlanOption, because those are baked into the
// compiled space and its validation oracle. The execution reuses the
// compiled answer space directly; only drawing, validation verdict caching
// and estimation remain per call. Refine the returned Execution exactly as
// one from Engine.Start.
func (p *Prepared) Start(ctx context.Context, opts ...QueryOption) (x *Execution, err error) {
	defer catchPanics(aggString(p.q), &err)
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := mergeConfig(p.cfg, opts)
	if got, want := knobsOf(cfg.opts), knobsOf(p.cfg.opts); got != want {
		return nil, fmt.Errorf("core: %w: plan compiled with %+v, execution requested %+v",
			ErrPlanOption, want, got)
	}
	if cfg.epochPolicy != p.policy {
		return nil, fmt.Errorf("core: %w: epoch policy is fixed at Prepare (plan uses %v)",
			ErrPlanOption, p.policy)
	}
	c, err := p.ensure(ctx, cfg.minEpoch)
	if err != nil {
		return nil, err
	}
	x = &Execution{
		e:       p.e,
		q:       p.q,
		v:       c.v,
		opts:    cfg.opts,
		onRound: cfg.onRound,
		degrade: cfg.degrade,
		attr:    c.attr,
		group:   c.group,
		filters: c.filters,
		sp:      c.sp.fork(),
		rng:     stats.NewRand(cfg.opts.Seed),
	}
	if c.split != nil {
		x.sh = newShardedSpace(c.split, cfg.opts.Seed)
	}
	return x, nil
}

// Query runs one full execution of the plan — Start plus refinement to the
// (possibly overridden) error bound, with the same cancellation and
// partial-result semantics as Engine.Query.
func (p *Prepared) Query(ctx context.Context, opts ...QueryOption) (*Result, error) {
	x, err := p.Start(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return x.Refine(ctx, 0)
}

// planKey canonically identifies the compiled half of a query under given
// options: the decomposed paths (which capture roots, predicates and type
// sets, the inputs of the walk) plus the compiled plan knobs. Queries with
// equal keys share one answer-space build — QueryBatch's dedupe unit.
func planKey(paths []query.Path, o Options) string {
	return fmt.Sprintf("%+v|%+v", paths, knobsOf(o))
}

// prepareShared derives a plan for q that reuses base's compiled answer
// space — the QueryBatch dedupe path: q decomposes to the same paths under
// the same plan knobs (equal planKey), so only its aggregate bindings
// (attribute, filters, GROUP-BY) need resolving. The two plans share the
// immutable space and shard split; executions still fork private verdict
// caches, so the sharing is invisible except in build cost.
func (e *Engine) prepareShared(q *query.Aggregate, paths []query.Path, cfg queryConfig, base *Prepared) (*Prepared, error) {
	if !q.Func.HasGuarantee() && q.GroupBy != "" {
		return nil, fmt.Errorf("core: GROUP-BY with %v is unsupported", q.Func)
	}
	base.mu.Lock()
	c0 := base.cur
	base.mu.Unlock()
	c := &compiled{v: c0.v, sp: c0.sp, split: c0.split, hits: c0.hits, built: c0.built}
	var err error
	if c.attr, err = resolveAttr(c.v.g, q.Attr); err != nil {
		return nil, err
	}
	if c.group, err = resolveAttr(c.v.g, q.GroupBy); err != nil {
		return nil, err
	}
	for _, f := range q.Filters {
		a, err := resolveAttr(c.v.g, f.Attr)
		if err != nil {
			return nil, err
		}
		c.filters = append(c.filters, resolvedFilter{attr: a, low: f.Low, high: f.High})
	}
	return &Prepared{
		e:      e,
		q:      q,
		cfg:    cfg,
		paths:  paths,
		shape:  q.Q.ShapeOf(),
		policy: cfg.epochPolicy,
		cur:    c,
	}, nil
}
