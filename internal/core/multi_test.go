package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

func threeSpecs() []AggSpec {
	return []AggSpec{
		{Func: query.Count},
		{Func: query.Sum, Attr: "price"},
		{Func: query.Avg, Attr: "price"},
	}
}

// The acceptance-criteria test: COUNT+SUM+AVG through QueryMulti must
// perform exactly one answer-space build and one shared draw stream — the
// per-agg round traces all report the same sample sizes, the shared
// SampleSize covers all three, and the stage cache sees a single miss.
func TestQueryMultiSingleBuildSharedSample(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 11})
	ctx := context.Background()
	p, err := e.Prepare(ctx, countQuery())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.QueryMulti(ctx, threeSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if cs := e.CacheStats(); cs.Misses != 1 {
		t.Fatalf("stage cache misses = %d, want 1 (one answer-space build)", cs.Misses)
	}
	if !res.Converged {
		t.Fatalf("multi query did not converge: %+v", res)
	}
	if len(res.Aggs) != 3 {
		t.Fatalf("aggs = %d, want 3", len(res.Aggs))
	}
	truths := []float64{5, kgtest.Figure1SumPrice, kgtest.Figure1AvgPrice}
	for k, ar := range res.Aggs {
		if !ar.Converged {
			t.Fatalf("agg %v did not converge", ar.Spec)
		}
		if rel := stats.RelativeError(ar.Estimate, truths[k]); rel > 0.05 {
			t.Fatalf("agg %v estimate %v vs truth %v (rel %v)", ar.Spec, ar.Estimate, truths[k], rel)
		}
		// Shared draw stream: every agg's final round covers the shared
		// sample, and rounds never disagree on the sample they saw.
		if n := len(ar.Rounds); n == 0 || ar.Rounds[n-1].SampleSize != res.SampleSize {
			t.Fatalf("agg %v rounds %v disagree with shared sample size %d", ar.Spec, ar.Rounds, res.SampleSize)
		}
		for ri, r := range ar.Rounds {
			if r.SampleSize != res.Aggs[0].Rounds[ri].SampleSize {
				t.Fatalf("agg %v round %d sample size %d diverges from agg 0's %d — not one stream",
					ar.Spec, ri, r.SampleSize, res.Aggs[0].Rounds[ri].SampleSize)
			}
		}
	}
	if res.Rounds == 0 || res.SampleSize == 0 {
		t.Fatalf("shared counters empty: %+v", res)
	}
}

// QueryMulti must agree with three separate single-aggregate queries (same
// truths, same guarantees) while sharing the sample.
func TestQueryMultiMatchesSingles(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 5})
	ctx := context.Background()
	multi, err := e.QueryMulti(ctx, countQuery(), threeSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for k, q := range []*query.Aggregate{
		countQuery(),
		query.Simple(query.Sum, "price", "Germany", "Country", "product", "Automobile"),
		avgPriceQuery(),
	} {
		single, err := e.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !single.Converged {
			t.Fatalf("single %v did not converge", q.Func)
		}
		// Both carry the eb=0.05 guarantee against one truth, so they agree
		// within twice the bound.
		if rel := math.Abs(multi.Aggs[k].Estimate-single.Estimate) / math.Abs(single.Estimate); rel > 0.10 {
			t.Fatalf("agg %v: multi %v vs single %v", q.Func, multi.Aggs[k].Estimate, single.Estimate)
		}
	}
}

// MAX/MIN specs ride the shared sample without a guarantee.
func TestQueryMultiExtremesRideAlong(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 6})
	specs := append(threeSpecs(),
		AggSpec{Func: query.Max, Attr: "price"},
		AggSpec{Func: query.Min, Attr: "price"})
	res, err := e.QueryMulti(context.Background(), countQuery(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("guaranteed aggs did not converge")
	}
	maxR, minR := res.Aggs[3], res.Aggs[4]
	if maxR.Converged || minR.Converged {
		t.Fatal("extremes must not claim convergence")
	}
	if math.IsNaN(maxR.Estimate) || math.IsNaN(minR.Estimate) || maxR.Estimate < minR.Estimate {
		t.Fatalf("extreme estimates broken: max %v min %v", maxR.Estimate, minR.Estimate)
	}
}

// Extremes-only spec lists work too (fixed-size rounds, no guarantee).
func TestQueryMultiExtremesOnly(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 6})
	res, err := e.QueryMulti(context.Background(), countQuery(), []AggSpec{
		{Func: query.Max, Attr: "price"},
		{Func: query.Min, Attr: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("extremes-only run claims convergence")
	}
	if math.IsNaN(res.Aggs[0].Estimate) || math.IsNaN(res.Aggs[1].Estimate) {
		t.Fatalf("extremes not estimated: %+v", res.Aggs)
	}
}

// GROUP-BY multi execution: every guaranteed spec reports per-group
// results over the one shared sample.
func TestQueryMultiGrouped(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.10, Seed: 17})
	q := countQuery().WithGroupBy("fuel_economy")
	res, err := e.QueryMulti(context.Background(), q, []AggSpec{
		{Func: query.Count},
		{Func: query.Avg, Attr: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ar := range res.Aggs {
		if ar.Groups == nil {
			t.Fatalf("agg %v: no groups", ar.Spec)
		}
		for _, label := range []string{"28", "22", "26", "n/a"} {
			if _, ok := ar.Groups[label]; !ok {
				t.Fatalf("agg %v: group %q missing (have %v)", ar.Spec, label, ar.Groups)
			}
		}
	}
	if gr := res.Aggs[0].Groups["n/a"]; stats.RelativeError(gr.Estimate, 2) > 0.3 {
		t.Fatalf("n/a COUNT group %v, want ≈2", gr.Estimate)
	}
}

// Sharded multi execution merges every spec through the stratified
// combiner over the same per-stratum draw streams.
func TestQueryMultiSharded(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 7, Shards: 4})
	res, err := e.QueryMulti(context.Background(), countQuery(), threeSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sharded multi did not converge: %+v", res)
	}
	if res.Shards < 1 {
		t.Fatalf("shards = %d", res.Shards)
	}
	truths := []float64{5, kgtest.Figure1SumPrice, kgtest.Figure1AvgPrice}
	for k, ar := range res.Aggs {
		if rel := stats.RelativeError(ar.Estimate, truths[k]); rel > 0.05 {
			t.Fatalf("agg %v estimate %v vs truth %v", ar.Spec, ar.Estimate, truths[k])
		}
	}
}

// Per-spec error bounds refine until the tightest one is met.
func TestQueryMultiPerSpecBounds(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.20, Seed: 5})
	res, err := e.QueryMulti(context.Background(), countQuery(), []AggSpec{
		{Func: query.Count, ErrorBound: 0.20},
		{Func: query.Avg, Attr: "price", ErrorBound: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	avg := res.Aggs[1]
	if avg.ErrorBound != 0.02 {
		t.Fatalf("avg bound = %v", avg.ErrorBound)
	}
	if !satisfiedWithin(avg.Estimate, avg.MoE, 0.02) {
		t.Fatalf("avg MoE %v does not satisfy its own 2%% bound (estimate %v)", avg.MoE, avg.Estimate)
	}
}

func satisfiedWithin(v, moe, eb float64) bool {
	return moe <= math.Abs(v)*eb/(1+eb)
}

// Spec validation errors are typed.
func TestQueryMultiBadSpecs(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05})
	ctx := context.Background()
	for name, tc := range map[string]struct {
		q     *query.Aggregate
		specs []AggSpec
	}{
		"empty":             {countQuery(), nil},
		"sum-without-attr":  {countQuery(), []AggSpec{{Func: query.Sum}}},
		"grouped-max":       {countQuery().WithGroupBy("fuel_economy"), []AggSpec{{Func: query.Max, Attr: "price"}}},
		"unknown-aggregate": {countQuery(), []AggSpec{{Func: query.AggFunc(99), Attr: "x"}}},
	} {
		if _, err := e.QueryMulti(ctx, tc.q, tc.specs); !errors.Is(err, ErrBadAggSpec) {
			t.Fatalf("%s: err = %v, want ErrBadAggSpec", name, err)
		}
	}
	// Unknown spec attribute surfaces the resolution sentinel.
	if _, err := e.QueryMulti(ctx, countQuery(), []AggSpec{{Func: query.Sum, Attr: "no_such"}}); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("unknown attr: err = %v, want ErrUnknownAttribute", err)
	}
}
