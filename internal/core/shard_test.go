package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/live"
	"kgaq/internal/query"
	"kgaq/internal/shard"
	"kgaq/internal/stats"
)

// Sharded runs must satisfy the same Theorem 2 bound as single-shard runs:
// for every shard count the converged estimate lands within the configured
// error bound of the ground truth, because the stratified merge preserves
// unbiasedness and the stratified bootstrap drives the same termination
// test.
func TestShardedWithinErrorBound(t *testing.T) {
	const eb = 0.05
	for _, shards := range []int{1, 2, 8} {
		e, _ := figure1Engine(t, Options{ErrorBound: eb, Seed: 7, Shards: shards})
		res, err := e.Query(context.Background(), avgPriceQuery())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !res.Converged {
			t.Fatalf("shards=%d: did not converge: %+v", shards, res)
		}
		if rel := stats.RelativeError(res.Estimate, kgtest.Figure1AvgPrice); rel > eb {
			t.Fatalf("shards=%d: AVG %v vs truth %v (rel %v > eb)", shards, res.Estimate, kgtest.Figure1AvgPrice, rel)
		}
		wantShards := 0
		if shards > 1 {
			// Figure 1 has 6 candidates; strata owning none are dropped, so
			// the effective count is in [1, min(shards, 6)].
			if res.Shards < 1 || res.Shards > 6 {
				t.Fatalf("shards=%d: effective strata = %d", shards, res.Shards)
			}
		} else if res.Shards != wantShards {
			t.Fatalf("shards=1: Result.Shards = %d, want 0", res.Shards)
		}
	}
}

// Unbiasedness of the merged estimator on the seed dataset: the mean of
// many independently seeded sharded COUNT estimates converges to the
// single-shard ground truth (5 semantically correct automobiles).
func TestShardedCountUnbiased(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Shards: 4})
	const truth = 5.0
	const trials = 120
	acc := 0.0
	for i := 0; i < trials; i++ {
		res, err := e.Query(context.Background(), countQuery(), WithSeed(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		acc += res.Estimate
	}
	mean := acc / trials
	if rel := math.Abs(mean-truth) / truth; rel > 0.03 {
		t.Fatalf("mean sharded COUNT %v vs truth %v (rel %v)", mean, truth, rel)
	}
}

// MoE coverage across shard counts {1, 2, 8}: converged intervals must
// cover the ground truth at roughly the configured 95% confidence. The
// tolerance (85%) leaves room for the bootstrap's small-sample optimism,
// matching the slack the unsharded coverage tests allow.
func TestShardedMoECoverage(t *testing.T) {
	const truth = kgtest.Figure1SumPrice
	q := query.Simple(query.Sum, "price", "Germany", "Country", "product", "Automobile")
	for _, shards := range []int{1, 2, 8} {
		e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Shards: shards})
		const trials = 60
		covered, converged := 0, 0
		for i := 0; i < trials; i++ {
			res, err := e.Query(context.Background(), q, WithSeed(int64(100+i)))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				continue
			}
			converged++
			// The slack term absorbs float summation order: a fully
			// enumerated stratification reports MoE 0 with an estimate equal
			// to the truth up to rounding.
			if math.Abs(res.Estimate-truth) <= res.MoE+1e-9*truth {
				covered++
			}
		}
		if converged < trials/2 {
			t.Fatalf("shards=%d: only %d/%d runs converged", shards, converged, trials)
		}
		if rate := float64(covered) / float64(converged); rate < 0.85 {
			t.Fatalf("shards=%d: interval covered truth in %.0f%% of %d converged runs", shards, rate*100, converged)
		}
	}
}

// Sharded executions are deterministic under a fixed seed: per-stratum RNG
// streams make the drawn sample independent of goroutine scheduling.
func TestShardedDeterministic(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 7, Shards: 4})
	a, err := e.Query(context.Background(), avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(context.Background(), avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || a.SampleSize != b.SampleSize {
		t.Fatalf("sharded runs diverged: (%v, %d) vs (%v, %d)",
			a.Estimate, a.SampleSize, b.Estimate, b.SampleSize)
	}
}

// Filters fold into the sharded correctness indicator exactly as unsharded.
func TestShardedFilter(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 11, Shards: 4})
	q := countQuery().WithFilter("fuel_economy", 25, 30)
	res, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(res.Estimate, 2); rel > 0.15 {
		t.Fatalf("sharded filtered COUNT = %v, want ≈2 (rel %v)", res.Estimate, rel)
	}
}

// Extremes scan every stratum; the true MAX is found just as unsharded.
func TestShardedMax(t *testing.T) {
	e, _ := figure1Engine(t, Options{Seed: 13, Shards: 4})
	q := query.Simple(query.Max, "price", "Germany", "Country", "product", "Automobile")
	res, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 64300 {
		t.Fatalf("sharded MAX = %v, want 64300", res.Estimate)
	}
}

// The topology-only ablation samplers carry empirical probabilities that do
// not stratify; asking for both is an explicit error.
func TestShardedRejectsTopologySamplers(t *testing.T) {
	e, _ := figure1Engine(t, Options{Shards: 2})
	_, err := e.Query(context.Background(), countQuery(), WithSampler(SamplerCNARW))
	if err == nil {
		t.Fatal("sharded CNARW accepted")
	}
}

// Engine-plan shard statistics: every node owned exactly once, and draw
// attribution accounts for each sampled answer.
func TestShardStats(t *testing.T) {
	e, g := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 7, Shards: 4})
	res, err := e.Query(context.Background(), countQuery())
	if err != nil {
		t.Fatal(err)
	}
	st := e.ShardStats()
	if len(st) != 4 {
		t.Fatalf("ShardStats returned %d shards, want 4", len(st))
	}
	owned, draws := 0, uint64(0)
	for i, s := range st {
		if s.Shard != i {
			t.Fatalf("shard ids out of order: %+v", st)
		}
		owned += s.OwnedNodes
		draws += s.Draws
	}
	if owned != g.NumNodes() {
		t.Fatalf("owned nodes sum to %d, graph has %d", owned, g.NumNodes())
	}
	if draws != uint64(res.SampleSize) {
		t.Fatalf("per-shard draws sum to %d, query drew %d", draws, res.SampleSize)
	}
}

// GROUP-BY under sharding: per-group stratified estimates converge and the
// group structure matches the unsharded run.
func TestShardedGroupBy(t *testing.T) {
	g, m := twoRegionFixture(t)
	e, err := NewEngine(g, m, Options{ErrorBound: 0.10, Seed: 7, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := regionQuery(query.Count, "", "A")
	q.GroupBy = "price"
	res, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("sharded GROUP-BY returned no groups")
	}
	// Every price value is unique per car, so each group's estimate is ≈1.
	for label, gr := range res.Groups {
		if gr.Estimate < 0.5 || gr.Estimate > 2.0 {
			t.Fatalf("group %q estimate %v, want ≈1", label, gr.Estimate)
		}
	}
}

// Mutate-while-sharded-query: concurrent atomic batches against a live
// engine while sharded queries run. Run with -race; correctness assertion
// is that every query observes one consistent epoch and stays within the
// (generous) bound of either the old or new ground truth.
func TestShardedLiveConcurrentMutate(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.10, Seed: 7, Shards: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("Car_A_new%d", i)
			_, err := st.Apply(live.Batch{
				live.AddEntity(name, "Automobile"),
				live.AddEdge("RootA", "product", name),
				live.SetAttr(name, "price", 20000),
			})
			if err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
			i++
			time.Sleep(time.Millisecond)
		}
	}()
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		res, err := e.Query(context.Background(), regionQuery(query.Count, "", "A"), WithShards(4))
		if err != nil {
			t.Fatalf("sharded query under mutation: %v", err)
		}
		if res.Estimate < 4 { // base region has 8 cars; mutations only add
			t.Fatalf("sharded estimate %v collapsed under mutation", res.Estimate)
		}
	}
	close(stop)
	wg.Wait()
}

// A first round smaller than the stratum count would leave strata
// unobserved and bias the merge low; firstSample floors round one at the
// stratum count, so even a pathological MinSample stays unbiased.
func TestShardedFirstRoundCoversAllStrata(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 7, Shards: 8, MinSample: 1, T: 1, Lambda: 0.01})
	res, err := e.Query(context.Background(), countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize < res.Shards {
		t.Fatalf("first round drew %d over %d strata", res.SampleSize, res.Shards)
	}
	if rel := stats.RelativeError(res.Estimate, 5); rel > 0.10 {
		t.Fatalf("tiny-initial sharded COUNT = %v, want ≈5 (rel %v)", res.Estimate, rel)
	}
}

// The ownership hash must not degenerate for power-of-two shard counts: a
// node population whose ids follow a periodic pattern (bulk loads
// interleaving types) must still spread across all shards.
func TestShardedPeriodicIDsSpread(t *testing.T) {
	const n, shards = 4096, 8
	counts := make(map[int]int)
	for i := 0; i < n; i += 4 { // every 4th id, the skew pattern of bulk loads
		counts[shard.Assign(kg.NodeID(i), shards)]++
	}
	if len(counts) != shards {
		t.Fatalf("periodic ids landed on %d of %d shards: %v", len(counts), shards, counts)
	}
	for s, c := range counts {
		if c < n/4/shards/2 || c > n/4/shards*2 {
			t.Fatalf("shard %d owns %d of %d periodic ids — skewed: %v", s, c, n/4, counts)
		}
	}
}
