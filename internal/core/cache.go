package core

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kgaq/internal/kg"
)

// DefaultCacheBytes is the answer-space cache's default memory bound.
const DefaultCacheBytes int64 = 64 << 20

// stageKey identifies one converged chain stage: everything that shapes the
// walker's stationary distribution and its answer filter (root, query
// predicate, target types, walk config). Validator knobs (τ, repeat) are
// deliberately NOT part of the key — they only affect verdicts, which live
// in a per-(τ, repeat) sub-map on the entry — so a per-query WithTau
// override still hits the cached convergence and merely re-validates.
type stageKey struct {
	root     kg.NodeID
	pred     kg.PredID
	types    string // sorted target TypeIDs, encoded
	n        int
	selfLoop float64
}

// verdictKey selects one validator configuration's verdict map within a
// cached stage.
type verdictKey struct {
	tau    float64
	repeat int
}

// typesKeyOf canonicalises a type set (query order is irrelevant).
func typesKeyOf(types []kg.TypeID) string {
	ts := append([]kg.TypeID(nil), types...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return fmt.Sprint(ts)
}

// stageEntry is one cached converged stage: the renormalised answer
// distribution π′, the full stationary map (the validator's expansion
// priorities), and one leg-verdict cache per validator configuration.
// answers/probs/piMap are immutable after construction and read lock-free;
// verdicts is guarded by mu and grows as queries validate answers, so
// repeated queries skip both convergence and re-validation.
type stageEntry struct {
	answers []kg.NodeID
	probs   []float64
	piMap   map[kg.NodeID]float64
	cost    int64

	mu       sync.Mutex
	verdicts map[verdictKey]map[kg.NodeID]bool
}

// maxVerdictConfigs bounds how many distinct (τ, repeat) verdict maps one
// cached stage may hold. Verdict keys are always members of the stage's
// answer set, so each map is bounded by len(answers); the config count is
// the only unbounded dimension (kgaqd accepts per-request τ overrides), and
// capping it keeps the entry's resident size within the cost charged to the
// LRU budget at insert time.
const maxVerdictConfigs = 8

// verdictsFor returns the verdict map of one validator configuration,
// creating it on first use. When a new configuration would exceed
// maxVerdictConfigs, all verdict maps are dropped and rebuilt on demand —
// verdicts are recomputable, and a workload cycling through more than
// maxVerdictConfigs τ values is already re-validating constantly. Callers
// must hold st.mu.
func (st *stageEntry) verdictsFor(k verdictKey) map[kg.NodeID]bool {
	m, ok := st.verdicts[k]
	if !ok {
		if len(st.verdicts) >= maxVerdictConfigs {
			clear(st.verdicts)
		}
		m = make(map[kg.NodeID]bool)
		st.verdicts[k] = m
	}
	return m
}

func newStageEntry(answers []kg.NodeID, probs []float64, piMap map[kg.NodeID]float64) *stageEntry {
	st := &stageEntry{
		answers:  answers,
		probs:    probs,
		piMap:    piMap,
		verdicts: make(map[verdictKey]map[kg.NodeID]bool),
	}
	// Approximate resident bytes: the distribution slices, the π map and
	// headroom for the verdict maps to fill in (one bool per candidate
	// answer per possible validator configuration, map overhead included) —
	// the worst case the maxVerdictConfigs cap allows, so the LRU budget
	// stays honest as verdicts accumulate.
	st.cost = 256 +
		int64(len(answers))*(4+8) +
		int64(len(piMap))*48 +
		int64(maxVerdictConfigs)*int64(len(answers))*16
	return st
}

// CacheStats is a point-in-time snapshot of the answer-space cache.
type CacheStats struct {
	Hits     uint64
	Misses   uint64
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// spaceCache is a concurrency-safe, memory-bounded LRU of converged stages.
// Lookups and insertions take one short critical section; the heavy work
// (convergence, validation) always happens outside the lock, so concurrent
// misses on the same key may build the stage twice — the first insert wins
// and both callers end up sharing it.
type spaceCache struct {
	maxBytes int64
	hits     atomic.Uint64
	misses   atomic.Uint64

	mu    sync.Mutex
	bytes int64
	ll    *list.List // front = most recently used
	items map[stageKey]*list.Element
}

type cacheItem struct {
	key   stageKey
	entry *stageEntry
}

func newSpaceCache(maxBytes int64) *spaceCache {
	return &spaceCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[stageKey]*list.Element),
	}
}

// get returns the cached stage for key, promoting it to most recently used.
func (c *spaceCache) get(key stageKey) *stageEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return el.Value.(*cacheItem).entry
}

// put inserts a freshly built stage and returns the canonical entry for the
// key: when a concurrent builder inserted first, its entry is kept (and
// returned) so every caller shares one verdict cache. Entries larger than
// the whole budget are returned uncached.
func (c *spaceCache) put(key stageKey, st *stageEntry) *stageEntry {
	if c == nil || st.cost > c.maxBytes {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheItem).entry
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: st})
	c.bytes += st.cost
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.bytes -= it.entry.cost
	}
	return st
}

func (c *spaceCache) stats() CacheStats {
	if c == nil {
		return CacheStats{MaxBytes: -1}
	}
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Entries:  entries,
		Bytes:    bytes,
		MaxBytes: c.maxBytes,
	}
}
