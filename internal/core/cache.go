package core

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kgaq/internal/kg"
)

// DefaultCacheBytes is the answer-space cache's default memory bound.
const DefaultCacheBytes int64 = 64 << 20

// stageKey identifies one converged chain stage: everything that shapes the
// walker's stationary distribution and its answer filter (root, query
// predicate, target types, walk config). Validator knobs (τ, repeat) are
// deliberately NOT part of the key — they only affect verdicts, which live
// in a per-(τ, repeat) sub-map on the entry — so a per-query WithTau
// override still hits the cached convergence and merely re-validates.
// The epoch is not part of the key either: entries stay valid across
// epochs until a mutation touches their scope (see invalidate).
type stageKey struct {
	root     kg.NodeID
	pred     kg.PredID
	types    string // sorted target TypeIDs, encoded
	n        int
	selfLoop float64
}

// verdictKey selects one validator configuration's verdict map within a
// cached stage.
type verdictKey struct {
	tau    float64
	repeat int
}

// typesKeyOf canonicalises a type set (query order is irrelevant).
func typesKeyOf(types []kg.TypeID) string {
	ts := append([]kg.TypeID(nil), types...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return fmt.Sprint(ts)
}

// stageEntry is one cached converged stage: the renormalised answer
// distribution π′, the full stationary map (the validator's expansion
// priorities), and one leg-verdict cache per validator configuration.
// answers/probs/piMap are immutable after construction and read lock-free;
// verdicts is guarded by mu and grows as queries validate answers, so
// repeated queries skip both convergence and re-validation.
//
// For live graphs the entry additionally records the epoch it was built at
// and its scope — the sorted node set of the walk's n-bound. A mutation
// invalidates the entry iff it touches a scope node: everything the stage
// caches (transition rows, π, verdict paths of length ≤ n) is a function of
// the scope's topology and types alone, so snapshots whose mutations all
// land outside the scope share the entry soundly.
type stageEntry struct {
	answers []kg.NodeID
	probs   []float64
	piMap   map[kg.NodeID]float64
	cost    int64

	epoch uint64
	scope []kg.NodeID // sorted; the walk's n-bounded node set
	types []kg.TypeID // decoded target types, for compaction rewarm

	mu       sync.Mutex
	verdicts map[verdictKey]*verdictTable
}

// verdictTable is a flat open-addressing verdict cache keyed by node id —
// the shared stage-level counterpart of the execution's per-index verdict
// byte array. Every refinement round's batch validation probes it once per
// distinct drawn answer, so the probe replaces a Go map lookup with one
// multiply-hash and a short linear scan over a power-of-two slot array.
// Keys are stored as node id + 1 so the zero slot means empty (NodeID 0 is
// a valid node). First verdict wins, matching the map-based semantics it
// replaced. Not goroutine-safe: callers hold the stage entry's mutex.
type verdictTable struct {
	keys []int64
	vals []bool
	n    int
}

func newVerdictTable() *verdictTable {
	return &verdictTable{keys: make([]int64, 64), vals: make([]bool, 64)}
}

func (t *verdictTable) slot(u kg.NodeID) int {
	h := uint64(u) * 0x9E3779B97F4A7C15
	return int((h ^ (h >> 32)) & uint64(len(t.keys)-1))
}

// get returns the cached verdict for u and whether one exists.
func (t *verdictTable) get(u kg.NodeID) (verdict, ok bool) {
	k := int64(u) + 1
	mask := len(t.keys) - 1
	for i := t.slot(u); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			return false, false
		}
	}
}

// put caches a verdict for u; an existing entry is kept unchanged.
func (t *verdictTable) put(u kg.NodeID, v bool) {
	if 4*(t.n+1) > 3*len(t.keys) { // grow at 75% load
		old := *t
		t.keys = make([]int64, 2*len(old.keys))
		t.vals = make([]bool, 2*len(old.vals))
		t.n = 0
		for i, k := range old.keys {
			if k != 0 {
				t.put(kg.NodeID(k-1), old.vals[i])
			}
		}
	}
	k := int64(u) + 1
	mask := len(t.keys) - 1
	for i := t.slot(u); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return // first verdict wins
		case 0:
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return
		}
	}
}

// maxVerdictConfigs bounds how many distinct (τ, repeat) verdict maps one
// cached stage may hold. Verdict keys are always members of the stage's
// answer set, so each map is bounded by len(answers); the config count is
// the only unbounded dimension (kgaqd accepts per-request τ overrides), and
// capping it keeps the entry's resident size within the cost charged to the
// LRU budget at insert time.
const maxVerdictConfigs = 8

// verdictsFor returns the verdict table of one validator configuration,
// creating it on first use. When a new configuration would exceed
// maxVerdictConfigs, all verdict tables are dropped and rebuilt on demand —
// verdicts are recomputable, and a workload cycling through more than
// maxVerdictConfigs τ values is already re-validating constantly. Callers
// must hold st.mu.
func (st *stageEntry) verdictsFor(k verdictKey) *verdictTable {
	m, ok := st.verdicts[k]
	if !ok {
		if len(st.verdicts) >= maxVerdictConfigs {
			clear(st.verdicts)
		}
		m = newVerdictTable()
		st.verdicts[k] = m
	}
	return m
}

func newStageEntry(answers []kg.NodeID, probs []float64, piMap map[kg.NodeID]float64,
	epoch uint64, scope []kg.NodeID, types []kg.TypeID) *stageEntry {
	st := &stageEntry{
		answers:  answers,
		probs:    probs,
		piMap:    piMap,
		epoch:    epoch,
		scope:    scope,
		types:    append([]kg.TypeID(nil), types...),
		verdicts: make(map[verdictKey]*verdictTable),
	}
	// Approximate resident bytes: the distribution slices, the π map, the
	// scope list, and headroom for the verdict tables to fill in (9 bytes
	// per open-addressing slot at ≤75% load per possible validator
	// configuration) — the worst case the maxVerdictConfigs cap allows, so
	// the LRU budget stays honest as verdicts accumulate.
	st.cost = 256 +
		int64(len(answers))*(4+8) +
		int64(len(piMap))*48 +
		int64(len(scope))*4 +
		int64(maxVerdictConfigs)*int64(len(answers))*16
	return st
}

// CacheStats is a point-in-time snapshot of the answer-space cache.
type CacheStats struct {
	Hits        uint64
	Misses      uint64
	Invalidated uint64 // entries evicted by mutation-scope intersection
	Entries     int
	Bytes       int64
	MaxBytes    int64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// invalEvent is one applied mutation batch as the cache saw it, kept in a
// short ring so insertions racing an invalidation can be checked against
// the mutations that landed while they were being built.
type invalEvent struct {
	epoch uint64
	nodes []kg.NodeID // sorted touched set
}

// maxInvalEvents bounds the ring; a build that outlives this many batches
// simply is not cached (recomputable, and a sign the workload is write-bound
// anyway).
const maxInvalEvents = 256

// spaceCache is a concurrency-safe, memory-bounded LRU of converged stages.
// Lookups and insertions take one short critical section; the heavy work
// (convergence, validation) always happens outside the lock, so concurrent
// misses on the same key may build the stage twice — the first insert wins
// and both callers end up sharing it.
//
// Under a live graph the cache is kept coherent by invalidate(), called
// synchronously for every applied batch: entries whose scope intersects the
// batch's touched nodes are evicted — and only those, so roots disjoint
// from the mutated region keep their hits.
type spaceCache struct {
	maxBytes    int64
	hits        atomic.Uint64
	misses      atomic.Uint64
	invalidated atomic.Uint64

	mu     sync.Mutex
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[stageKey]*list.Element
	events []invalEvent // recent invalidations, oldest first
	// evicted remembers recently invalidated keys (bounded) so the
	// compaction rewarm can rebuild them off the query path.
	evicted map[stageKey]*stageEntry
}

type cacheItem struct {
	key   stageKey
	entry *stageEntry
}

// maxEvictedKeys bounds the rewarm memory between compactions.
const maxEvictedKeys = 64

func newSpaceCache(maxBytes int64) *spaceCache {
	return &spaceCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[stageKey]*list.Element),
		evicted:  make(map[stageKey]*stageEntry),
	}
}

// get returns the cached stage for key, promoting it to most recently used.
// A stage built at an epoch later than the querying snapshot's is not
// served (the query must not observe writes newer than its snapshot); the
// entry stays cached for queries at or above its build epoch.
func (c *spaceCache) get(key stageKey, epoch uint64) *stageEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	el, ok := c.items[key]
	var st *stageEntry
	if ok {
		st = el.Value.(*cacheItem).entry
		if st.epoch > epoch {
			st = nil
		} else {
			c.ll.MoveToFront(el)
		}
	}
	c.mu.Unlock()
	if st == nil {
		c.misses.Add(1)
		metSpaceMisses.Inc()
		return nil
	}
	c.hits.Add(1)
	metSpaceHits.Inc()
	return st
}

// put inserts a freshly built stage and returns the canonical entry for the
// key: when a concurrent builder inserted first, its entry is kept (and
// returned) so every caller shares one verdict cache. Entries larger than
// the whole budget are returned uncached, as are entries whose scope was
// touched by a mutation applied after their build snapshot (the racing
// counterpart of invalidate).
func (c *spaceCache) put(key stageKey, st *stageEntry) *stageEntry {
	if c == nil || st.cost > c.maxBytes {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ev := range c.events {
		if ev.epoch <= st.epoch {
			continue
		}
		if scopeIntersects(st.scope, ev.nodes) {
			return st // stale before it was ever cached
		}
	}
	if len(c.events) == maxInvalEvents && c.events[0].epoch > st.epoch {
		// The ring no longer covers the build window; be conservative.
		return st
	}
	if el, ok := c.items[key]; ok {
		prev := el.Value.(*cacheItem).entry
		if prev.epoch >= st.epoch {
			c.ll.MoveToFront(el)
			return prev
		}
		// The resident entry predates ours (e.g. rewarmed from an older
		// snapshot losing a race); replace it.
		c.ll.Remove(el)
		delete(c.items, key)
		c.bytes -= prev.cost
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: st})
	c.bytes += st.cost
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.bytes -= it.entry.cost
	}
	return st
}

// scopeIntersects reports whether two sorted node lists share an element.
func scopeIntersects(a, b []kg.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// invalidate evicts every entry whose scope intersects the touched set of a
// mutation batch applied at epoch — selective by construction: an entry
// rooted in an untouched region survives and keeps serving hits. The event
// is recorded so concurrently building stages cannot re-insert stale state,
// and evicted keys are remembered for the compaction rewarm.
func (c *spaceCache) invalidate(touched []kg.NodeID, epoch uint64) {
	if c == nil || len(touched) == 0 {
		return
	}
	nodes := append([]kg.NodeID(nil), touched...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	lo, hi := nodes[0], nodes[len(nodes)-1]
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		it := el.Value.(*cacheItem)
		// Range prefilter: scopes are sorted, so a batch entirely outside
		// [scope[0], scope[last]] cannot intersect — the common case under
		// regional churn, and it keeps the full merge off most entries.
		sc := it.entry.scope
		if len(sc) == 0 || hi < sc[0] || sc[len(sc)-1] < lo {
			el = next
			continue
		}
		if scopeIntersects(sc, nodes) {
			c.ll.Remove(el)
			delete(c.items, it.key)
			c.bytes -= it.entry.cost
			c.invalidated.Add(1)
			metSpaceInvalidated.Inc()
			if len(c.evicted) < maxEvictedKeys {
				c.evicted[it.key] = it.entry
			}
		}
		el = next
	}
	c.events = append(c.events, invalEvent{epoch: epoch, nodes: nodes})
	if len(c.events) > maxInvalEvents {
		c.events = c.events[len(c.events)-maxInvalEvents:]
	}
}

// takeEvicted drains the remembered invalidated entries — the compaction
// rewarm's work list.
func (c *spaceCache) takeEvicted() map[stageKey]*stageEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.evicted
	c.evicted = make(map[stageKey]*stageEntry)
	return out
}

func (c *spaceCache) stats() CacheStats {
	if c == nil {
		return CacheStats{MaxBytes: -1}
	}
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Invalidated: c.invalidated.Load(),
		Entries:     entries,
		Bytes:       bytes,
		MaxBytes:    c.maxBytes,
	}
}
