// Package core is the paper's primary contribution assembled end to end
// (Algorithm 2): semantic-aware sampling over the n-bounded subgraph
// (§IV-A), correctness validation and Horvitz–Thompson estimation (§IV-B),
// and the iteratively refined CLT/BLB accuracy guarantee (§IV-C), extended
// with filters, GROUP-BY, MAX/MIN, chain-shaped queries via two-stage
// sampling, and star/cycle/flower queries via decomposition–assembly (§V).
//
// # Execution model
//
// An Engine pairs one graph source (static *kg.Graph or live mutation
// store) with one embedding model and serves any number of concurrent
// queries. Execution follows a two-phase Prepare → Execute model:
// Engine.Prepare compiles a query once — name→id resolution, shape
// classification, filter/attribute binding, walker convergence, the answer
// distribution, alias tables and the shard split — into a concurrency-safe
// *Prepared (introspectable via Plan()); each Prepared.Start then forks a
// private Execution holding the execution's verdict caches, RNG and draw
// list, pinned to one epoch-consistent graph view (EpochPin freezes the
// Prepare-time snapshot, EpochRepin follows the live graph).
// Execution.Refine implements Algorithm 1's refinement loop: draw,
// validate, estimate, compute the margin of error, test Theorem 2's
// termination condition, and size the next round per Eq. 12. Engine.Query
// and Engine.Start remain as thin single-use wrappers, and
// Engine.QueryBatch dedupes identical plan keys so same-graph queries
// share one build.
//
// # Multi-aggregate execution
//
// Prepared.QueryMulti (and the Engine.QueryMulti one-shot) evaluates a
// list of AggSpecs — e.g. COUNT, SUM(price), AVG(price) — over one shared
// draw stream: the Eq. 7–9 estimators all consume the same semantic-aware
// sample, so each round validates its fresh draws once and feeds every
// spec's Horvitz–Thompson accumulator (estimate.MultiObservation /
// estimate.Project); the guarantee loop refines until every guaranteed
// spec meets its error bound, GROUP-BY and sharded strata included.
//
// # Performance machinery
//
// Converged walker stages (stationary distributions plus their validation
// verdicts) live in an engine-wide memory-bounded LRU keyed by (root,
// predicate, target types, walk config); repeat queries skip convergence
// and re-validation. Under a live graph, entries are invalidated
// selectively — only when a mutation touches their walk scope — and
// compactions rebuild recently evicted stages off the query path.
//
// # Sharded execution
//
// Options.Shards (or the per-query WithShards) switches a query to
// partition-parallel execution: the candidate-answer space is cut into
// hash-ownership strata (internal/shard), each stratum drawn from its own
// conditional distribution and validated in per-shard batches, and the
// per-shard samples merge through the stratified Horvitz–Thompson combiner
// of internal/estimate, with each round's draws allocated across shards by
// per-shard variance. See DESIGN.md "Sharded execution".
package core
