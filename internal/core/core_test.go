package core

import (
	"context"
	"strings"
	"testing"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/estimate"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

func figure1Engine(t *testing.T, opts Options) (*Engine, *kg.Graph) {
	t.Helper()
	g := kgtest.Figure1()
	e, err := NewEngine(g, embtest.Figure1Model(g), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

func avgPriceQuery() *query.Aggregate {
	return query.Simple(query.Avg, "price", "Germany", "Country", "product", "Automobile")
}

func countQuery() *query.Aggregate {
	return query.Simple(query.Count, "", "Germany", "Country", "product", "Automobile")
}

func TestNewEngineErrors(t *testing.T) {
	g := kgtest.Figure1()
	m := embtest.Figure1Model(g)
	if _, err := NewEngine(nil, m, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewEngine(g, nil, Options{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	e, _ := figure1Engine(t, Options{})
	o := e.Options()
	if o.Tau != 0.85 || o.ErrorBound != 0.01 || o.Confidence != 0.95 ||
		o.N != 3 || o.Repeat != 3 || o.Lambda != 0.3 ||
		o.T != 3 || o.B != 50 || o.M != 0.6 || o.MaxRounds != 10 {
		t.Fatalf("defaults = %+v", o)
	}
}

// The running example: AVG(price) of cars produced in Germany ≈ $44,072.16.
func TestExecuteAvgRunningExample(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 7})
	res, err := e.Execute(avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	rel := stats.RelativeError(res.Estimate, kgtest.Figure1AvgPrice)
	if rel > 0.02 {
		t.Fatalf("estimate %v, truth %v, rel error %v > eb", res.Estimate, kgtest.Figure1AvgPrice, rel)
	}
	if res.Candidates != 6 {
		t.Fatalf("candidates = %d, want 6", res.Candidates)
	}
	if res.SampleSize == 0 || len(res.Rounds) == 0 {
		t.Fatal("sample bookkeeping missing")
	}
	if res.Times.Total() <= 0 {
		t.Fatal("step timing missing")
	}
	if res.Interval().Confidence != 0.95 {
		t.Fatal("interval confidence wrong")
	}
}

func TestExecuteCount(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 3})
	res, err := e.Execute(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(res.Estimate, 5); rel > 0.10 {
		t.Fatalf("COUNT estimate %v, want ≈5 (rel %v)", res.Estimate, rel)
	}
}

func TestExecuteSum(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 5})
	q := query.Simple(query.Sum, "price", "Germany", "Country", "product", "Automobile")
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(res.Estimate, kgtest.Figure1SumPrice); rel > 0.10 {
		t.Fatalf("SUM estimate %v, want ≈%v (rel %v)", res.Estimate, kgtest.Figure1SumPrice, rel)
	}
}

// Q3-style filter: fuel economy between 25 and 30 keeps BMW_320 and Audi_TT.
func TestExecuteWithFilter(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 11})
	q := countQuery().WithFilter("fuel_economy", 25, 30)
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(res.Estimate, 2); rel > 0.15 {
		t.Fatalf("filtered COUNT = %v, want ≈2 (rel %v)", res.Estimate, rel)
	}
}

func TestExecuteMaxMin(t *testing.T) {
	e, _ := figure1Engine(t, Options{Seed: 13})
	qMax := query.Simple(query.Max, "price", "Germany", "Country", "product", "Automobile")
	res, err := e.Execute(qMax)
	if err != nil {
		t.Fatal(err)
	}
	// MAX converges to the true extreme as rounds accumulate; with four 20+
	// draw rounds over 6 answers the exact value is found.
	if res.Estimate != 64300 {
		t.Fatalf("MAX = %v, want 64300", res.Estimate)
	}
	if res.Converged || res.MoE != 0 {
		t.Fatal("extremes must not claim a guarantee")
	}
	qMin := query.Simple(query.Min, "price", "Germany", "Country", "product", "Automobile")
	res, err = e.Execute(qMin)
	if err != nil {
		t.Fatal(err)
	}
	// KIA K5 ($24,990) is semantically incorrect; the true MIN is Lamando.
	if res.Estimate != 24060.80 {
		t.Fatalf("MIN = %v, want 24060.80 (Lamando)", res.Estimate)
	}
}

func TestExecuteGroupBy(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 17})
	q := countQuery().WithGroupBy("fuel_economy")
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups == nil {
		t.Fatal("no groups returned")
	}
	// Groups: 28 (BMW_320), 22 (BMW_X6), 26 (Audi_TT), n/a (Porsche_911,
	// Lamando).
	for _, label := range []string{"28", "22", "26", "n/a"} {
		if _, ok := res.Groups[label]; !ok {
			t.Fatalf("group %q missing (have %v)", label, res.Groups)
		}
	}
	if gr := res.Groups["n/a"]; stats.RelativeError(gr.Estimate, 2) > 0.25 {
		t.Fatalf("n/a group estimate %v, want ≈2", gr.Estimate)
	}
}

// Q10-style chain: cars designed by German designers. At τ=0.8 only KIA K5
// qualifies (nationality 0.84, designer 0.80 ≥ τ on both legs).
func TestExecuteChain(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Tau: 0.8, Seed: 19})
	q := query.Chain(query.Count, "", "Germany", "Country", []query.Hop{
		{Predicate: "nationality", Types: []string{"Person"}},
		{Predicate: "designer", Types: []string{"Automobile"}},
	})
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(res.Estimate, 1); rel > 0.15 {
		t.Fatalf("chain COUNT = %v, want ≈1 (rel %v)", res.Estimate, rel)
	}
}

// Star assembly: cars produced in Germany AND design-companied by VW. At
// τ=0.75 the intersection's correct answers are Audi_TT and Lamando.
func TestExecuteStar(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Tau: 0.75, Seed: 23})
	b := query.NewBuilder()
	de := b.Specific("Germany", "Country")
	vw := b.Specific("Volkswagen", "Company")
	tgt := b.Target("Automobile")
	b.Edge(de, tgt, "product")
	b.Edge(vw, tgt, "designCompany")
	q := b.Aggregate(query.Count, "")
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(res.Estimate, 2); rel > 0.15 {
		t.Fatalf("star COUNT = %v, want ≈2 (rel %v)", res.Estimate, rel)
	}
}

// Interactive refinement: tightening eb reuses the collected sample.
func TestInteractiveRefinement(t *testing.T) {
	e, _ := figure1Engine(t, Options{Seed: 29})
	x, err := e.Start(context.Background(), avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := x.Refine(context.Background(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	size1 := res1.SampleSize
	res2, err := x.Refine(context.Background(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SampleSize < size1 {
		t.Fatalf("sample shrank across refinement: %d → %d", size1, res2.SampleSize)
	}
	if !res2.Converged {
		t.Fatal("refined run did not converge")
	}
	// The guarantee is probabilistic (95%); a single run may exceed eb
	// slightly. The statistical coverage check lives in
	// TestGuaranteeCoverage.
	if rel := stats.RelativeError(res2.Estimate, kgtest.Figure1AvgPrice); rel > 0.03 {
		t.Fatalf("refined estimate %v, rel error %v ≫ eb", res2.Estimate, rel)
	}
}

// The end-to-end accuracy guarantee: across many seeds, the converged
// estimate respects the error bound in well over the nominal share of runs
// (bootstrap CIs are approximate, so the assertion is conservative).
func TestGuaranteeCoverage(t *testing.T) {
	hits, runs := 0, 0
	for seed := int64(1); seed <= 25; seed++ {
		e, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: seed})
		res, err := e.Execute(avgPriceQuery())
		if err != nil || !res.Converged {
			continue
		}
		runs++
		if stats.RelativeError(res.Estimate, kgtest.Figure1AvgPrice) <= 0.02 {
			hits++
		}
	}
	if runs < 20 {
		t.Fatalf("only %d/25 runs converged", runs)
	}
	if frac := float64(hits) / float64(runs); frac < 0.8 {
		t.Fatalf("guarantee held in %v of runs, want ≥ 0.8", frac)
	}
}

func TestSkipValidationAblation(t *testing.T) {
	// Without validation, KIA K5 pollutes the COUNT: expectation is 6.
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 31, SkipValidation: true})
	res, err := e.Execute(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelativeError(res.Estimate, 6); rel > 0.10 {
		t.Fatalf("unvalidated COUNT = %v, want ≈6", res.Estimate)
	}
	// Relative error vs the τ-GT of 5 is therefore ≈20%, far above the
	// validated engine's — the Fig. 5b effect.
	if stats.RelativeError(res.Estimate, 5) < 0.10 {
		t.Fatal("ablation unexpectedly accurate")
	}
}

func TestFixedDeltaAblation(t *testing.T) {
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 37, FixedDelta: 50, MinSample: 10})
	res, err := e.Execute(avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fixed-delta run did not converge")
	}
	// Every growth round added exactly 50 draws.
	for i := 1; i < len(res.Rounds); i++ {
		if diff := res.Rounds[i].SampleSize - res.Rounds[i-1].SampleSize; diff != 50 {
			t.Fatalf("round %d grew by %d, want 50", i, diff)
		}
	}
}

func TestTopologySamplerAblation(t *testing.T) {
	for _, s := range []SamplerKind{SamplerCNARW, SamplerNode2Vec} {
		e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 41, Sampler: s})
		res, err := e.Execute(countQuery())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Estimate <= 0 {
			t.Fatalf("%v: estimate = %v", s, res.Estimate)
		}
		// Topology samplers cannot run complex shapes.
		q := query.Chain(query.Count, "", "Germany", "Country", []query.Hop{
			{Predicate: "nationality", Types: []string{"Person"}},
			{Predicate: "designer", Types: []string{"Automobile"}},
		})
		if _, err := e.Execute(q); err == nil {
			t.Fatalf("%v: chain accepted", s)
		}
	}
}

func TestDivisorPolicyAblation(t *testing.T) {
	// With τ=0.85 some sampled answers (KIA) are incorrect, so the
	// CorrectOnly policy overestimates COUNT.
	def, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 43})
	resDef, err := def.Execute(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	alt, _ := figure1Engine(t, Options{ErrorBound: 0.02, Seed: 43, Policy: estimate.CorrectOnly})
	resAlt, err := alt.Execute(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if resAlt.Estimate <= resDef.Estimate {
		t.Fatalf("CorrectOnly %v should exceed SampleSize %v", resAlt.Estimate, resDef.Estimate)
	}
}

func TestExecuteResolutionErrors(t *testing.T) {
	e, _ := figure1Engine(t, Options{})
	cases := []*query.Aggregate{
		query.Simple(query.Count, "", "Atlantis", "Country", "product", "Automobile"),
		query.Simple(query.Count, "", "Germany", "Planet", "product", "Automobile"),
		query.Simple(query.Count, "", "Germany", "Country", "owns", "Automobile"),
		query.Simple(query.Count, "", "Germany", "Country", "product", "Spaceship"),
		query.Simple(query.Avg, "warpSpeed", "Germany", "Country", "product", "Automobile"),
		// Germany is a Country, not a Person.
		query.Simple(query.Count, "", "Germany", "Person", "product", "Automobile"),
	}
	for i, q := range cases {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
	// GROUP-BY with MAX is rejected.
	q := query.Simple(query.Max, "price", "Germany", "Country", "product", "Automobile").WithGroupBy("fuel_economy")
	if _, err := e.Execute(q); err == nil {
		t.Error("GROUP-BY MAX accepted")
	}
}

func TestExecuteNoCorrectAnswers(t *testing.T) {
	// τ=0.99 excludes every answer; AVG must fail loudly.
	e, _ := figure1Engine(t, Options{Tau: 0.99, MaxRounds: 3, Seed: 47})
	_, err := e.Execute(avgPriceQuery())
	if err == nil || !strings.Contains(err.Error(), "no") {
		t.Fatalf("err = %v, want no-correct-answers failure", err)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	e1, _ := figure1Engine(t, Options{Seed: 53})
	e2, _ := figure1Engine(t, Options{Seed: 53})
	r1, err := e1.Execute(avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Execute(avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Estimate != r2.Estimate || r1.SampleSize != r2.SampleSize {
		t.Fatalf("nondeterministic execution: %v/%d vs %v/%d",
			r1.Estimate, r1.SampleSize, r2.Estimate, r2.SampleSize)
	}
}

func TestCandidateAnswersOrdering(t *testing.T) {
	e, g := figure1Engine(t, Options{})
	x, err := e.Start(context.Background(), avgPriceQuery())
	if err != nil {
		t.Fatal(err)
	}
	cands := x.CandidateAnswers()
	if len(cands) != 6 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Highest-π′ first: a direct assembly answer outranks KIA K5.
	first := g.Name(cands[0])
	if first == "KIA_K5" {
		t.Fatal("KIA K5 should not lead the candidate ranking")
	}
}

func TestSamplerKindString(t *testing.T) {
	if SamplerSemantic.String() != "semantic" || SamplerCNARW.String() != "cnarw" || SamplerNode2Vec.String() != "node2vec" {
		t.Fatal("sampler names wrong")
	}
}
