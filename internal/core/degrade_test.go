package core

import (
	"context"
	"math"
	"testing"
	"time"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/estimate"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
)

// TestAchievedEBInvertsSatisfied checks the algebra: achievedEB returns the
// boundary bound — Satisfied holds at it and fails just below it.
func TestAchievedEBInvertsSatisfied(t *testing.T) {
	cases := []struct{ v, moe float64 }{
		{100, 1}, {100, 10}, {-50, 3}, {0.2, 0.01}, {1e6, 1e3},
	}
	for _, c := range cases {
		eb := achievedEB(c.v, c.moe)
		if math.IsInf(eb, 1) {
			t.Fatalf("achievedEB(%g, %g) = +Inf", c.v, c.moe)
		}
		// At the achieved bound the Theorem 2 condition holds (allow float
		// slack by nudging up one ulp-scale factor)…
		if !estimate.Satisfied(c.v, c.moe, eb*(1+1e-12)) {
			t.Errorf("Satisfied(%g, %g, achieved=%g) = false", c.v, c.moe, eb)
		}
		// …and any materially tighter bound fails.
		if estimate.Satisfied(c.v, c.moe, eb*0.99) {
			t.Errorf("Satisfied(%g, %g, %g) = true below the achieved bound", c.v, c.moe, eb*0.99)
		}
	}
}

func TestAchievedEBEdgeCases(t *testing.T) {
	if eb := achievedEB(100, 0); eb != 0 {
		t.Errorf("exact answer: achievedEB = %g, want 0", eb)
	}
	for _, c := range []struct{ v, moe float64 }{
		{0, 0}, {10, 10}, {10, 20}, {math.NaN(), 1}, {10, math.NaN()}, {10, -1},
	} {
		if eb := achievedEB(c.v, c.moe); !math.IsInf(eb, 1) {
			t.Errorf("achievedEB(%g, %g) = %g, want +Inf", c.v, c.moe, eb)
		}
	}
}

// TestDeadlineDegrade runs a query whose error bound is unreachably tight
// under a context deadline with an enormous degradation headroom: the loop
// must stop after its first estimable round with Degraded set and an honest
// (finite) achieved bound, instead of burning the deadline and returning
// ErrInterrupted.
func TestDeadlineDegrade(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := NewEngine(g, embtest.Figure1Model(g), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Simple(query.Avg, "price", "Germany", "Country", "product", "Automobile")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := eng.Query(ctx, q,
		WithErrorBound(1e-9), // unattainable: forces the degrade arm
		WithDegradation(Degradation{MaxErrorBound: 0.5, DeadlineHeadroom: 2 * time.Minute}))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded = false, want true")
	}
	if res.Converged {
		t.Fatal("Converged = true for an unattainable bound")
	}
	if res.TargetEB != 1e-9 {
		t.Errorf("TargetEB = %g", res.TargetEB)
	}
	if len(res.Rounds) != 1 {
		t.Errorf("rounds = %d, want 1 (degrade after the first estimable round)", len(res.Rounds))
	}
	if eb := res.AchievedEB(); math.IsInf(eb, 1) || math.IsNaN(eb) {
		t.Errorf("AchievedEB = %g, want finite", eb)
	}
	if math.IsNaN(res.Estimate) || math.IsNaN(res.MoE) {
		t.Errorf("degraded result lost its interval: %+v", res)
	}
}

// TestNoDeadlineNoDegrade: without a context deadline the degradation
// directive is inert — the loop refines to convergence as usual.
func TestNoDeadlineNoDegrade(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := NewEngine(g, embtest.Figure1Model(g), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Simple(query.Avg, "price", "Germany", "Country", "product", "Automobile")
	res, err := eng.Query(context.Background(), q,
		WithErrorBound(0.05),
		WithDegradation(Degradation{MaxErrorBound: 0.5, DeadlineHeadroom: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("Degraded without a deadline")
	}
	if !res.Converged {
		t.Fatal("expected convergence at eb=0.05")
	}
}

// TestDeadlineDegradeMulti mirrors TestDeadlineDegrade on the shared-sample
// multi-aggregate loop.
func TestDeadlineDegradeMulti(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := NewEngine(g, embtest.Figure1Model(g), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Simple(query.Avg, "price", "Germany", "Country", "product", "Automobile")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := eng.QueryMulti(ctx, q,
		[]AggSpec{{Func: query.Count}, {Func: query.Avg, Attr: "price"}},
		WithErrorBound(1e-9),
		WithDegradation(Degradation{MaxErrorBound: 0.5, DeadlineHeadroom: 2 * time.Minute}))
	if err != nil {
		t.Fatalf("QueryMulti: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded = false, want true")
	}
	for _, ar := range res.Aggs {
		if math.IsNaN(ar.Estimate) {
			t.Errorf("%v: degraded multi result lost its estimate", ar.Spec)
		}
		if eb := ar.AchievedEB(); math.IsInf(eb, 1) {
			t.Errorf("%v: AchievedEB = +Inf, want finite", ar.Spec)
		}
	}
}
