// Package core is the paper's primary contribution assembled end to end
// (Algorithm 2): semantic-aware sampling over the n-bounded subgraph
// (§IV-A), correctness validation and Horvitz–Thompson estimation (§IV-B),
// and the iteratively refined CLT/BLB accuracy guarantee (§IV-C), extended
// with filters, GROUP-BY, MAX/MIN, chain-shaped queries via two-stage
// sampling, and star/cycle/flower queries via decomposition–assembly (§V).
package core

import (
	"fmt"
	"runtime"
	"time"

	"kgaq/internal/embedding"
	"kgaq/internal/estimate"
	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/semsim"
)

// SamplerKind selects the sampling algorithm (the S1 ablation of Fig. 5a).
type SamplerKind int

const (
	// SamplerSemantic is the semantic-aware random walk of §IV-A (default).
	SamplerSemantic SamplerKind = iota
	// SamplerCNARW is the topology-only common-neighbor-aware walk.
	SamplerCNARW
	// SamplerNode2Vec is the topology-only biased second-order walk.
	SamplerNode2Vec
)

// String names the sampler.
func (s SamplerKind) String() string {
	switch s {
	case SamplerCNARW:
		return "cnarw"
	case SamplerNode2Vec:
		return "node2vec"
	default:
		return "semantic"
	}
}

// Options carries every knob of the pipeline; zero values mean the paper's
// defaults (§VII-A "Parameters").
type Options struct {
	// Tau is the semantic-similarity threshold τ (default 0.85).
	Tau float64
	// ErrorBound is the user error bound eb (default 0.01).
	ErrorBound float64
	// Confidence is 1-α (default 0.95).
	Confidence float64
	// N bounds the walk scope in hops (default 3).
	N int
	// Repeat is the validation repeat factor r (default 3).
	Repeat int
	// Lambda is the desired sample ratio λ (default 0.3).
	Lambda float64
	// T, B, M configure the Bag of Little Bootstraps (defaults 3, 50, 0.6).
	T int
	B int
	M float64
	// MaxRounds caps refinement rounds (default 10; the paper observes
	// Ne ≤ 10 in practice).
	MaxRounds int
	// MinSample floors the initial sample size (default 30 draws).
	MinSample int
	// MaxDraws caps the total sample size (default 20000 draws). The
	// Horvitz–Thompson estimator has heavy tails when some answers carry
	// tiny visiting probabilities; without a budget, a query whose variance
	// resists the error bound would grow its sample geometrically. When the
	// budget is exhausted the engine returns its best estimate with
	// Converged=false.
	MaxDraws int
	// MinCorrect is the minimum number of correct draws required before a
	// confidence interval is trusted for termination (default 30). With
	// fewer, the bootstrap cannot see the heavy tail of the
	// Horvitz–Thompson weights and reports over-tight intervals.
	MinCorrect int
	// Seed makes execution deterministic (default 1).
	Seed int64
	// SelfLoopSim is the aperiodicity self-loop weight (default 0.001).
	SelfLoopSim float64
	// Policy selects the estimator divisor (default SampleSize; see
	// DESIGN.md).
	Policy estimate.DivisorPolicy
	// Sampler selects the sampling algorithm (default semantic-aware).
	Sampler SamplerKind
	// FixedDelta, when positive, replaces the Eq. 12 sample-size
	// configuration with a fixed |ΔS| (the S3 ablation of Fig. 5c).
	FixedDelta int
	// SkipValidation treats every sampled answer as correct (the S2
	// ablation of Fig. 5b).
	SkipValidation bool
	// ExtremeRounds is the number of fixed-size sampling rounds for MAX and
	// MIN, which carry no guarantee (default 4, as reported in §VII-B).
	ExtremeRounds int
	// CacheMaxBytes bounds the engine's answer-space cache (converged
	// stationary distributions plus their validation verdicts, shared
	// across queries). Zero means DefaultCacheBytes; a negative value
	// disables the cache entirely.
	CacheMaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 0.85
	}
	if o.ErrorBound <= 0 {
		o.ErrorBound = 0.01
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.Repeat <= 0 {
		o.Repeat = 3
	}
	if o.Lambda <= 0 || o.Lambda > 1 {
		o.Lambda = 0.3
	}
	if o.T <= 0 {
		o.T = 3
	}
	if o.B <= 0 {
		o.B = 50
	}
	if o.M <= 0 || o.M > 1 {
		o.M = 0.6
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10
	}
	if o.MinSample <= 0 {
		o.MinSample = 30
	}
	if o.MaxDraws <= 0 {
		o.MaxDraws = 20000
	}
	if o.MinCorrect <= 0 {
		o.MinCorrect = 30
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SelfLoopSim <= 0 {
		o.SelfLoopSim = 0.001
	}
	if o.ExtremeRounds <= 0 {
		o.ExtremeRounds = 4
	}
	if o.CacheMaxBytes == 0 {
		o.CacheMaxBytes = DefaultCacheBytes
	}
	return o
}

func (o Options) guarantee() estimate.GuaranteeConfig {
	return estimate.GuaranteeConfig{Confidence: o.Confidence, T: o.T, B: o.B, M: o.M}
}

// StepTimes breaks the response time into the paper's three steps
// (Table XII): S1 semantic-aware sampling, S2 approximate estimation
// (validation + point estimate), S3 accuracy guarantee (CI + sizing).
type StepTimes struct {
	Sampling   time.Duration
	Estimation time.Duration
	Guarantee  time.Duration
}

// Total returns the summed step time.
func (s StepTimes) Total() time.Duration {
	return s.Sampling + s.Estimation + s.Guarantee
}

func (s *StepTimes) add(other StepTimes) {
	s.Sampling += other.Sampling
	s.Estimation += other.Estimation
	s.Guarantee += other.Guarantee
}

// Round records one refinement iteration, the raw material of Table IX.
type Round struct {
	Estimate   float64
	MoE        float64
	SampleSize int
}

// GroupResult is the per-group outcome of a GROUP-BY query.
type GroupResult struct {
	Estimate float64
	MoE      float64
	Draws    int // observations that fell into the group
}

// Result is the outcome of executing one aggregate query.
type Result struct {
	Query      *query.Aggregate
	Estimate   float64
	MoE        float64
	Confidence float64
	Converged  bool // Theorem 2 termination condition met
	Rounds     []Round
	SampleSize int // total draws |S|
	Distinct   int // distinct answers in the sample
	Correct    int // draws that validated as correct
	Candidates int // |A|: candidate answers with positive π′
	Times      StepTimes
	Groups     map[string]GroupResult // non-nil only for GROUP-BY queries
}

// Interval returns the confidence interval of the final estimate.
func (r *Result) Interval() estimate.Interval {
	return estimate.Interval{Estimate: r.Estimate, MoE: r.MoE, Confidence: r.Confidence}
}

// Engine executes aggregate queries over one graph + embedding pair.
//
// An Engine is safe for concurrent use by multiple goroutines: the graph,
// the embedding model, the defaulted Options and the precomputed
// predicate-similarity matrix are immutable after NewEngine, the shared
// answer-space cache is internally synchronised, and every Query/Start
// call builds its own Execution with a private RNG and draw list.
// Concurrent queries with the same seed draw identical samples; validation
// verdicts may be served from the shared cache, where they were settled by
// whichever query batch-validated them first (always a legitimate §IV-B2
// outcome — see DESIGN.md "Performance architecture").
type Engine struct {
	g     *kg.Graph
	model embedding.Model
	opts  Options
	calc  *semsim.Calculator // shared read-only similarity matrix
	cache *spaceCache        // nil when CacheMaxBytes < 0
	sem   chan struct{}      // bounds the chain-build worker pool
}

// NewEngine validates the pair and returns an execution engine. The full
// P×P predicate-similarity matrix is precomputed here, once, and shared
// read-only by every query the engine serves.
func NewEngine(g *kg.Graph, model embedding.Model, opts Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil embedding model")
	}
	if model.Dim() == 0 {
		return nil, fmt.Errorf("core: embedding model has no vectors")
	}
	opts = opts.withDefaults()
	calc, err := semsim.NewCalculator(g, model, 0)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:     g,
		model: model,
		opts:  opts,
		calc:  calc,
		sem:   make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
	if opts.CacheMaxBytes > 0 {
		e.cache = newSpaceCache(opts.CacheMaxBytes)
	}
	return e, nil
}

// Graph returns the engine's knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// Options returns the effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// CacheStats snapshots the answer-space cache counters (MaxBytes is -1 when
// the cache is disabled).
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// resolveRoot maps a decomposed path's root onto the graph, enforcing the
// name + type conditions of Definition 5.
func (e *Engine) resolveRoot(p query.Path) (kg.NodeID, error) {
	us := e.g.NodeByName(p.RootName)
	if us == kg.InvalidNode {
		return kg.InvalidNode, fmt.Errorf("core: %w: specific entity %q not in graph", ErrUnknownEntity, p.RootName)
	}
	types, err := e.resolveTypes(p.RootTypes)
	if err != nil {
		return kg.InvalidNode, err
	}
	if !e.g.SharesType(us, types) {
		return kg.InvalidNode, fmt.Errorf("core: %w: entity %q has none of the required types %v", ErrUnknownEntity, p.RootName, p.RootTypes)
	}
	return us, nil
}

// resolveTypes interns query type names, failing on unknown ones.
func (e *Engine) resolveTypes(names []string) ([]kg.TypeID, error) {
	out := make([]kg.TypeID, 0, len(names))
	for _, n := range names {
		t := e.g.TypeByName(n)
		if t == kg.InvalidType {
			return nil, fmt.Errorf("core: %w %q", ErrUnknownType, n)
		}
		out = append(out, t)
	}
	return out, nil
}

// resolvePred interns a query predicate, failing on unknown ones (the
// embedding has no vector for a predicate absent from the graph).
func (e *Engine) resolvePred(name string) (kg.PredID, error) {
	p := e.g.PredByName(name)
	if p == kg.InvalidPred {
		return kg.InvalidPred, fmt.Errorf("core: %w %q", ErrUnknownPredicate, name)
	}
	return p, nil
}

// resolveAttr interns the aggregated attribute (empty for COUNT(*)).
func (e *Engine) resolveAttr(name string) (kg.AttrID, error) {
	if name == "" {
		return kg.InvalidAttr, nil
	}
	a := e.g.AttrByName(name)
	if a == kg.InvalidAttr {
		return kg.InvalidAttr, fmt.Errorf("core: %w %q", ErrUnknownAttribute, name)
	}
	return a, nil
}
