package core

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"kgaq/internal/embedding"
	"kgaq/internal/estimate"
	"kgaq/internal/kg"
	"kgaq/internal/live"
	"kgaq/internal/query"
	"kgaq/internal/semsim"
	"kgaq/internal/shard"
)

// SamplerKind selects the sampling algorithm (the S1 ablation of Fig. 5a).
type SamplerKind int

const (
	// SamplerSemantic is the semantic-aware random walk of §IV-A (default).
	SamplerSemantic SamplerKind = iota
	// SamplerCNARW is the topology-only common-neighbor-aware walk.
	SamplerCNARW
	// SamplerNode2Vec is the topology-only biased second-order walk.
	SamplerNode2Vec
)

// String names the sampler.
func (s SamplerKind) String() string {
	switch s {
	case SamplerCNARW:
		return "cnarw"
	case SamplerNode2Vec:
		return "node2vec"
	default:
		return "semantic"
	}
}

// Options carries every knob of the pipeline; zero values mean the paper's
// defaults (§VII-A "Parameters").
type Options struct {
	// Tau is the semantic-similarity threshold τ (default 0.85).
	Tau float64
	// ErrorBound is the user error bound eb (default 0.01).
	ErrorBound float64
	// Confidence is 1-α (default 0.95).
	Confidence float64
	// N bounds the walk scope in hops (default 3).
	N int
	// Repeat is the validation repeat factor r (default 3).
	Repeat int
	// Lambda is the desired sample ratio λ (default 0.3).
	Lambda float64
	// T, B, M configure the Bag of Little Bootstraps (defaults 3, 50, 0.6).
	T int
	B int
	M float64
	// MaxRounds caps refinement rounds (default 10; the paper observes
	// Ne ≤ 10 in practice).
	MaxRounds int
	// MinSample floors the initial sample size (default 30 draws).
	MinSample int
	// MaxDraws caps the total sample size (default 20000 draws). The
	// Horvitz–Thompson estimator has heavy tails when some answers carry
	// tiny visiting probabilities; without a budget, a query whose variance
	// resists the error bound would grow its sample geometrically. When the
	// budget is exhausted the engine returns its best estimate with
	// Converged=false.
	MaxDraws int
	// MinCorrect is the minimum number of correct draws required before a
	// confidence interval is trusted for termination (default 30). With
	// fewer, the bootstrap cannot see the heavy tail of the
	// Horvitz–Thompson weights and reports over-tight intervals.
	MinCorrect int
	// Seed makes execution deterministic (default 1).
	Seed int64
	// SelfLoopSim is the aperiodicity self-loop weight (default 0.001).
	SelfLoopSim float64
	// Policy selects the estimator divisor (default SampleSize; see
	// DESIGN.md).
	Policy estimate.DivisorPolicy
	// Sampler selects the sampling algorithm (default semantic-aware).
	Sampler SamplerKind
	// FixedDelta, when positive, replaces the Eq. 12 sample-size
	// configuration with a fixed |ΔS| (the S3 ablation of Fig. 5c).
	FixedDelta int
	// SkipValidation treats every sampled answer as correct (the S2
	// ablation of Fig. 5b).
	SkipValidation bool
	// ExtremeRounds is the number of fixed-size sampling rounds for MAX and
	// MIN, which carry no guarantee (default 4, as reported in §VII-B).
	ExtremeRounds int
	// CacheMaxBytes bounds the engine's answer-space cache (converged
	// stationary distributions plus their validation verdicts, shared
	// across queries). Zero means DefaultCacheBytes; a negative value
	// disables the cache entirely.
	CacheMaxBytes int64
	// Shards partitions query execution: the candidate-answer space is cut
	// into this many hash-ownership strata, sampled and validated per shard
	// (in parallel where cores allow) and merged through the stratified
	// Horvitz–Thompson combiner, with each refinement round's draws
	// allocated across shards by per-shard variance (Neyman allocation).
	// Default 1 (unsharded); requires the semantic sampler. See DESIGN.md
	// "Sharded execution".
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 0.85
	}
	if o.ErrorBound <= 0 {
		o.ErrorBound = 0.01
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.Repeat <= 0 {
		o.Repeat = 3
	}
	if o.Lambda <= 0 || o.Lambda > 1 {
		o.Lambda = 0.3
	}
	if o.T <= 0 {
		o.T = 3
	}
	if o.B <= 0 {
		o.B = 50
	}
	if o.M <= 0 || o.M > 1 {
		o.M = 0.6
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10
	}
	if o.MinSample <= 0 {
		o.MinSample = 30
	}
	if o.MaxDraws <= 0 {
		o.MaxDraws = 20000
	}
	if o.MinCorrect <= 0 {
		o.MinCorrect = 30
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SelfLoopSim <= 0 {
		o.SelfLoopSim = 0.001
	}
	if o.ExtremeRounds <= 0 {
		o.ExtremeRounds = 4
	}
	if o.CacheMaxBytes == 0 {
		o.CacheMaxBytes = DefaultCacheBytes
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Shards > shard.MaxShards {
		o.Shards = shard.MaxShards
	}
	return o
}

func (o Options) guarantee() estimate.GuaranteeConfig {
	return estimate.GuaranteeConfig{Confidence: o.Confidence, T: o.T, B: o.B, M: o.M}
}

// StepTimes breaks the response time into the paper's three steps
// (Table XII): S1 semantic-aware sampling, S2 approximate estimation
// (validation + point estimate), S3 accuracy guarantee (CI + sizing).
type StepTimes struct {
	Sampling   time.Duration
	Estimation time.Duration
	Guarantee  time.Duration
}

// Total returns the summed step time.
func (s StepTimes) Total() time.Duration {
	return s.Sampling + s.Estimation + s.Guarantee
}

func (s *StepTimes) add(other StepTimes) {
	s.Sampling += other.Sampling
	s.Estimation += other.Estimation
	s.Guarantee += other.Guarantee
}

// Round records one refinement iteration, the raw material of Table IX.
type Round struct {
	Estimate   float64
	MoE        float64
	SampleSize int
}

// GroupResult is the per-group outcome of a GROUP-BY query.
type GroupResult struct {
	Estimate float64
	MoE      float64
	Draws    int // observations that fell into the group
}

// Result is the outcome of executing one aggregate query.
type Result struct {
	Query      *query.Aggregate
	Estimate   float64
	MoE        float64
	Confidence float64
	Converged  bool // Theorem 2 termination condition met for TargetEB
	// Degraded reports the guarantee loop stopped refining early under a
	// WithDegradation directive (deadline pressure): the interval is honest
	// for the returned sample but may be looser than TargetEB requested.
	// AchievedEB() reports the bound it actually attains.
	Degraded bool
	// TargetEB is the relative error bound this execution refined toward
	// (0 for MAX/MIN, which carry no guarantee).
	TargetEB   float64
	Rounds     []Round
	SampleSize int    // total draws |S|
	Distinct   int    // distinct answers in the sample
	Correct    int    // draws that validated as correct
	Candidates int    // |A|: candidate answers with positive π′
	Shards     int    // strata the sample was drawn from (0 when unsharded)
	Epoch      uint64 // graph epoch the whole query observed (0 on static engines)
	Times      StepTimes
	Groups     map[string]GroupResult // non-nil only for GROUP-BY queries
}

// Interval returns the confidence interval of the final estimate.
func (r *Result) Interval() estimate.Interval {
	return estimate.Interval{Estimate: r.Estimate, MoE: r.MoE, Confidence: r.Confidence}
}

// view is the graph state one query executes against: an epoch-consistent
// read view. For static engines the view is the graph itself at epoch 0;
// for live engines it is one immutable live.Snapshot.
type view struct {
	g     kg.ReadGraph
	epoch uint64
}

// graphSource yields consistent views. Implementations must be safe for
// concurrent use.
type graphSource interface {
	// snapshot returns the current view, never blocking.
	snapshot() view
	// waitEpoch blocks until a view at or above epoch exists, honouring ctx.
	waitEpoch(ctx context.Context, epoch uint64) (view, error)
}

// staticSource serves one immutable graph forever, at epoch 0.
type staticSource struct{ g *kg.Graph }

func (s staticSource) snapshot() view { return view{g: s.g, epoch: 0} }

func (s staticSource) waitEpoch(_ context.Context, epoch uint64) (view, error) {
	if epoch > 0 {
		return view{}, fmt.Errorf("core: %w: static graph is pinned at epoch 0, %d requested",
			ErrEpochNotReached, epoch)
	}
	return s.snapshot(), nil
}

// liveSource serves epoch-consistent snapshots of a mutation store.
type liveSource struct{ st *live.Store }

func (s liveSource) snapshot() view {
	snap := s.st.Snapshot()
	return view{g: snap, epoch: snap.Epoch()}
}

func (s liveSource) waitEpoch(ctx context.Context, epoch uint64) (view, error) {
	snap, err := s.st.WaitEpoch(ctx, epoch)
	if err != nil {
		return view{}, fmt.Errorf("core: %w during preparation: %w", ErrInterrupted, err)
	}
	return view{g: snap, epoch: snap.Epoch()}, nil
}

// Engine executes aggregate queries over one graph + embedding pair.
//
// An Engine is safe for concurrent use by multiple goroutines: the graph
// source, the embedding model, the defaulted Options and the precomputed
// predicate-similarity matrix are immutable after NewEngine, the shared
// answer-space cache is internally synchronised, and every Query/Start
// call builds its own Execution with a private RNG and draw list.
// Concurrent queries with the same seed draw identical samples; validation
// verdicts may be served from the shared cache, where they were settled by
// whichever query batch-validated them first (always a legitimate §IV-B2
// outcome — see DESIGN.md "Performance architecture").
//
// A live engine (NewLiveEngine) additionally pins every query to the
// mutation store's snapshot current at Start, so a query's whole refinement
// observes exactly one epoch while writers proceed; the answer-space cache
// is invalidated selectively as batches land (see DESIGN.md "Epochs and
// consistency").
type Engine struct {
	src   graphSource
	base  *kg.Graph // construction-time graph (vocabulary anchor)
	model embedding.Model
	opts  Options
	calc  *semsim.Calculator // shared read-only similarity matrix
	cache *spaceCache        // nil when CacheMaxBytes < 0
	sem   chan struct{}      // bounds the chain-build and shard worker pools

	// plan is the engine's ownership partition (Options.Shards); per-shard
	// counters below are always attributed in this plan's terms, so stats
	// stay comparable even when queries override the shard count.
	plan         shard.Plan
	shardDraws   []atomic.Uint64 // draws whose answer the shard owns
	shardTouched []atomic.Uint64 // mutated nodes the shard owns (live engines)
}

// NewEngine validates the pair and returns an execution engine over a
// static (immutable) graph. The full P×P predicate-similarity matrix is
// precomputed here, once, and shared read-only by every query the engine
// serves.
func NewEngine(g *kg.Graph, model embedding.Model, opts Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	return newEngine(staticSource{g: g}, g, model, opts)
}

// NewLiveEngine returns an engine over a live mutation store. Queries
// execute against the epoch-consistent snapshot current at Start (or the
// one WithMinEpoch waits for); applied batches invalidate the answer-space
// cache selectively — only stages whose walk scope a mutation touched — and
// compactions rebuild recently invalidated stages off the query path.
//
// The similarity matrix is built once over the store's base vocabulary;
// this is sound because live graphs freeze the predicate vocabulary (see
// live.ErrFrozenPredicate).
func NewLiveEngine(store *live.Store, model embedding.Model, opts Options) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("core: nil live store")
	}
	base := store.Snapshot().Base()
	e, err := newEngine(liveSource{st: store}, base, model, opts)
	if err != nil {
		return nil, err
	}
	store.OnApply(func(ev live.Event) {
		for _, u := range ev.Touched {
			e.shardTouched[e.plan.Of(u)].Add(1)
		}
		if e.cache != nil {
			e.cache.invalidate(ev.Touched, ev.Epoch)
		}
	})
	if e.cache != nil {
		store.OnCompact(func(ev live.CompactEvent) {
			e.rewarm(ev)
		})
	}
	return e, nil
}

func newEngine(src graphSource, base *kg.Graph, model embedding.Model, opts Options) (*Engine, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil embedding model")
	}
	if model.Dim() == 0 {
		return nil, fmt.Errorf("core: embedding model has no vectors")
	}
	opts = opts.withDefaults()
	calc, err := semsim.NewCalculator(base, model, 0)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		src:   src,
		base:  base,
		model: model,
		opts:  opts,
		calc:  calc,
		sem:   make(chan struct{}, runtime.GOMAXPROCS(0)),
		plan:  shard.NewPlan(opts.Shards),
	}
	e.shardDraws = make([]atomic.Uint64, e.plan.Shards())
	e.shardTouched = make([]atomic.Uint64, e.plan.Shards())
	if opts.CacheMaxBytes > 0 {
		e.cache = newSpaceCache(opts.CacheMaxBytes)
	}
	return e, nil
}

// rewarm rebuilds recently invalidated stages against the freshly compacted
// graph: walker construction, CSR/CSC assembly and convergence run here, in
// the compactor's goroutine, so the next query on a hot root finds the
// stage cached instead of paying convergence on the query path. Best
// effort: a stage that fails to rebuild (e.g. its root lost all candidate
// answers) is simply dropped.
func (e *Engine) rewarm(live.CompactEvent) {
	work := e.cache.takeEvicted()
	if len(work) == 0 {
		return
	}
	v := e.src.snapshot()
	for key, old := range work {
		cfg := e.opts
		cfg.N = key.n
		cfg.SelfLoopSim = key.selfLoop
		_, _ = e.convergedStage(context.Background(), cfg, v, key.root, key.pred, old.types, nil)
	}
}

// Graph returns the engine's construction-time knowledge graph (for a live
// engine: the base the store was opened with). Use Snapshot for the
// current, epoch-consistent view.
func (e *Engine) Graph() *kg.Graph { return e.base }

// Snapshot returns the engine's current graph view and its epoch. Static
// engines always report epoch 0.
func (e *Engine) Snapshot() (kg.ReadGraph, uint64) {
	v := e.src.snapshot()
	return v.g, v.epoch
}

// Options returns the effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// CacheStats snapshots the answer-space cache counters (MaxBytes is -1 when
// the cache is disabled).
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// ShardStat is one shard's share of the engine's work, in the engine plan's
// terms (Options.Shards): the nodes it owns under the current graph view,
// the sample draws whose answers it owned, and — on live engines — how many
// mutated nodes landed in its territory (the per-shard face of selective
// cache invalidation).
type ShardStat struct {
	Shard      int
	OwnedNodes int
	Draws      uint64
	Touched    uint64
}

// ShardStats reports per-shard execution statistics under the engine's
// ownership plan. Queries that override the shard count per call still
// contribute: draws are attributed to the engine-plan shard owning the
// sampled answer, not the query-plan stratum it was drawn from.
func (e *Engine) ShardStats() []ShardStat {
	v := e.src.snapshot()
	owned := e.plan.OwnedCounts(v.g)
	out := make([]ShardStat, e.plan.Shards())
	for s := range out {
		out[s] = ShardStat{
			Shard:      s,
			OwnedNodes: owned[s],
			Draws:      e.shardDraws[s].Load(),
			Touched:    e.shardTouched[s].Load(),
		}
	}
	return out
}

// countDraws attributes a batch of drawn answers to the engine plan's
// shards.
func (e *Engine) countDraws(answers []kg.NodeID, idx []int) {
	metDraws.Add(float64(len(idx)))
	for _, i := range idx {
		e.shardDraws[e.plan.Of(answers[i])].Add(1)
	}
}

// resolveRoot maps a decomposed path's root onto the query's graph view,
// enforcing the name + type conditions of Definition 5.
func resolveRoot(g kg.ReadGraph, p query.Path) (kg.NodeID, error) {
	us := g.NodeByName(p.RootName)
	if us == kg.InvalidNode {
		return kg.InvalidNode, fmt.Errorf("core: %w: specific entity %q not in graph", ErrUnknownEntity, p.RootName)
	}
	types, err := resolveTypes(g, p.RootTypes)
	if err != nil {
		return kg.InvalidNode, err
	}
	if !g.SharesType(us, types) {
		return kg.InvalidNode, fmt.Errorf("core: %w: entity %q has none of the required types %v", ErrUnknownEntity, p.RootName, p.RootTypes)
	}
	return us, nil
}

// resolveTypes interns query type names, failing on unknown ones.
func resolveTypes(g kg.ReadGraph, names []string) ([]kg.TypeID, error) {
	out := make([]kg.TypeID, 0, len(names))
	for _, n := range names {
		t := g.TypeByName(n)
		if t == kg.InvalidType {
			return nil, fmt.Errorf("core: %w %q", ErrUnknownType, n)
		}
		out = append(out, t)
	}
	return out, nil
}

// resolvePred interns a query predicate, failing on unknown ones (the
// embedding has no vector for a predicate absent from the graph).
func resolvePred(g kg.ReadGraph, name string) (kg.PredID, error) {
	p := g.PredByName(name)
	if p == kg.InvalidPred {
		return kg.InvalidPred, fmt.Errorf("core: %w %q", ErrUnknownPredicate, name)
	}
	return p, nil
}

// resolveAttr interns the aggregated attribute (empty for COUNT(*)).
func resolveAttr(g kg.ReadGraph, name string) (kg.AttrID, error) {
	if name == "" {
		return kg.InvalidAttr, nil
	}
	a := g.AttrByName(name)
	if a == kg.InvalidAttr {
		return kg.InvalidAttr, fmt.Errorf("core: %w %q", ErrUnknownAttribute, name)
	}
	return a, nil
}
