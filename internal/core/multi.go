package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"kgaq/internal/estimate"
	"kgaq/internal/kg"
	"kgaq/internal/query"
)

// AggSpec names one aggregate to evaluate over a shared sample: the
// function, its attribute (empty only for COUNT), and an optional
// per-aggregate error bound. The paper's Eq. 7–9 estimators all consume
// the same semantic-aware sample, so a multi-aggregate execution draws
// once and feeds every spec's Horvitz–Thompson accumulator from the same
// stream.
type AggSpec struct {
	Func query.AggFunc
	// Attr is the aggregated attribute; empty means COUNT(*).
	Attr string
	// ErrorBound overrides the execution's error bound for this aggregate
	// (guaranteed functions only); zero keeps the shared bound.
	ErrorBound float64
}

// String renders the spec as "FUNC(attr)".
func (s AggSpec) String() string {
	if s.Attr == "" {
		return s.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", s.Func, s.Attr)
}

// AggResult is one spec's outcome within a multi-aggregate execution.
// COUNT/SUM/AVG specs carry the Theorem 2 guarantee individually; MAX/MIN
// specs report the sample extreme without one (MoE 0, Converged false).
type AggResult struct {
	Spec AggSpec
	// Estimate and MoE are the spec's final point estimate and margin of
	// error (NaN estimate when no round could estimate this spec).
	Estimate float64
	MoE      float64
	// ErrorBound is the bound this spec refined toward.
	ErrorBound float64
	// Converged reports the spec's own Theorem 2 termination (per group,
	// when grouped).
	Converged bool
	// Rounds is this spec's per-round trace; SampleSize is shared across
	// specs within a round — the visible face of the single draw stream.
	Rounds []Round
	// Groups carries per-group outcomes when the underlying query has
	// GROUP-BY.
	Groups map[string]GroupResult
}

// MultiResult is the outcome of a multi-aggregate execution: one shared
// sample, one refinement loop, N aggregate results.
type MultiResult struct {
	Query      *query.Aggregate
	Aggs       []AggResult
	Confidence float64
	// Converged reports whether every guaranteed spec met its bound.
	Converged bool
	// Degraded reports the shared guarantee loop stopped early under a
	// WithDegradation directive; per-spec AchievedEB() tells what each
	// aggregate's interval still honestly attains.
	Degraded bool
	// Rounds counts the shared refinement iterations.
	Rounds int
	// SampleSize is the total draws |S| — shared by all specs, which is
	// the whole point: three aggregates cost one sample.
	SampleSize int
	Distinct   int
	Correct    int
	Candidates int
	Shards     int
	Epoch      uint64
	Times      StepTimes
}

// validateSpecs checks a multi-aggregate spec list against the underlying
// query.
func validateSpecs(specs []AggSpec, grouped bool) error {
	if len(specs) == 0 {
		return fmt.Errorf("core: %w: empty spec list", ErrBadAggSpec)
	}
	for _, s := range specs {
		switch s.Func {
		case query.Count, query.Sum, query.Avg, query.Max, query.Min:
		default:
			return fmt.Errorf("core: %w: unknown aggregate %v", ErrBadAggSpec, s.Func)
		}
		if s.Func != query.Count && s.Attr == "" {
			return fmt.Errorf("core: %w: %s requires an attribute", ErrBadAggSpec, s.Func)
		}
		if grouped && !s.Func.HasGuarantee() {
			return fmt.Errorf("core: %w: GROUP-BY with %v is unsupported", ErrBadAggSpec, s.Func)
		}
	}
	return nil
}

// QueryMulti executes every spec over one shared sample of the plan: a
// single answer-space reuse, a single draw stream, a single validation
// pass per round, with per-spec Horvitz–Thompson accumulators. The
// guarantee loop refines until every guaranteed spec (COUNT/SUM/AVG) meets
// its error bound at the configured confidence — per group when the plan's
// query has GROUP-BY, per stratum-merged estimate when the plan is
// sharded. MAX/MIN specs ride along without a guarantee. Cancellation
// returns the partial MultiResult with ErrInterrupted, like Query.
func (p *Prepared) QueryMulti(ctx context.Context, specs []AggSpec, opts ...QueryOption) (*MultiResult, error) {
	x, err := p.Start(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return x.refineMulti(ctx, specs)
}

// QueryMulti is the one-shot form of Prepared.QueryMulti: prepare the
// query once, execute every spec over one shared sample.
func (e *Engine) QueryMulti(ctx context.Context, q *query.Aggregate, specs []AggSpec, opts ...QueryOption) (*MultiResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := e.queryConfig(opts)
	if cfg.opts.Sampler != SamplerSemantic {
		return nil, fmt.Errorf("core: %w (got %v)", ErrPlanSampler, cfg.opts.Sampler)
	}
	p, err := e.prepare(ctx, q, cfg)
	if err != nil {
		return nil, err
	}
	x, err := p.Start(ctx)
	if err != nil {
		return nil, err
	}
	x.times.Sampling += p.buildTime
	return x.refineMulti(ctx, specs)
}

// multiObservation materialises draw i against every spec target at once:
// probability, stratum identity and the semantic + filter verdict are
// computed once and shared; each target contributes its own attribute
// value. values and has are the draw's K-wide slots in the round's flat
// arena — the caller carves them out of one reused backing array, so
// multi-target accumulation allocates nothing per draw.
func (x *Execution) multiObservation(ctx context.Context, i int, attrs []kg.AttrID,
	values []float64, has []bool) estimate.MultiObservation {

	g := x.v.g
	u := x.sp.answers[i]
	m := estimate.MultiObservation{Prob: x.sp.probs[i],
		Correct: x.opts.SkipValidation || x.sp.correctness(ctx, i)}
	if x.sh != nil {
		spc := x.sh.spaces[x.sh.posOf[i]]
		m.Prob = x.sh.condProb(x.sp, i)
		m.Stratum = spc.Shard
		m.StratumWeight = spc.Weight
	}
	if m.Correct {
		for _, f := range x.filters {
			v, ok := g.Attr(u, f.attr)
			if !ok || v < f.low || v > f.high {
				m.Correct = false
				break
			}
		}
	}
	m.Values, m.Has = values, has
	for k, a := range attrs {
		values[k], has[k] = 0, false
		if a == kg.InvalidAttr {
			continue // COUNT(*) target: no value column
		}
		if v, ok := g.Attr(u, a); ok {
			values[k] = v
			has[k] = true
		}
	}
	return m
}

// multiObservationList builds the round's multi-target observation list
// (batch-validating fresh draws first) plus, for grouped queries, the
// per-draw group labels. The list, its Values/Has backing and the labels
// all live in the execution's scratch: rebuilt in place each round, valid
// until the next refresh.
func (x *Execution) multiObservationList(ctx context.Context, attrs []kg.AttrID) ([]estimate.MultiObservation, []string) {
	x.prevalidateDraws(ctx)
	scr := x.scr
	n, targets := len(x.drawIdx), len(attrs)
	if cap(scr.vals) < n*targets {
		scr.vals = make([]float64, n*targets)
		scr.has = make([]bool, n*targets)
	}
	vals, has := scr.vals[:n*targets], scr.has[:n*targets]
	out := scr.mobs[:0]
	var labels []string
	grouped := x.group != kg.InvalidAttr
	if grouped {
		labels = scr.labels[:0]
	}
	for k, i := range x.drawIdx {
		lo, hi := k*targets, (k+1)*targets
		out = append(out, x.multiObservation(ctx, i, attrs, vals[lo:hi:hi], has[lo:hi:hi]))
		if grouped {
			label := "n/a"
			if v, ok := x.v.g.Attr(x.sp.answers[i], x.group); ok {
				label = strconv.FormatFloat(v, 'g', -1, 64)
			}
			labels = append(labels, label)
		}
	}
	scr.mobs = out
	if grouped {
		scr.labels = labels
	}
	return out, labels
}

// refineMulti is the multi-aggregate guarantee loop: one shared draw
// stream, per-spec estimators over projections of the same multi-target
// sample, refinement until every guaranteed spec satisfies Theorem 2 (per
// group when grouped). Sample sizing follows the worst-converged spec —
// the aggregate whose ε/target ratio is largest drives the Eq. 12 growth,
// so the loop never terminates early on an easy aggregate while a hard one
// still misses its bound.
func (x *Execution) refineMulti(ctx context.Context, specs []AggSpec) (res *MultiResult, err error) {
	defer catchPanics(x.queryString(), &err)
	if ctx == nil {
		ctx = context.Background()
	}
	release := x.holdScratch()
	defer release()
	grouped := x.group != kg.InvalidAttr
	if err := validateSpecs(specs, grouped); err != nil {
		return nil, err
	}
	o := x.opts
	attrs := make([]kg.AttrID, len(specs))
	ebs := make([]float64, len(specs))
	var guaranteed, extremes []int
	for k, s := range specs {
		a, err := resolveAttr(x.v.g, s.Attr)
		if err != nil {
			return nil, err
		}
		attrs[k] = a
		ebs[k] = s.ErrorBound
		if ebs[k] <= 0 {
			ebs[k] = o.ErrorBound
		}
		if s.Func.HasGuarantee() {
			guaranteed = append(guaranteed, k)
		} else {
			extremes = append(extremes, k)
		}
	}
	state := make([]AggResult, len(specs))
	for k, s := range specs {
		state[k] = AggResult{Spec: s, Estimate: math.NaN(), MoE: math.NaN(), ErrorBound: ebs[k]}
	}

	if len(x.drawIdx) == 0 {
		x.firstSample()
	}
	maxRounds := o.MaxRounds
	if grouped {
		maxRounds *= 3
	}
	const minGroupDraws = 8

	rounds := 0
	converged := false
	var mobs []estimate.MultiObservation
	var labels []string
	obsAt := -1 // the drawIdx length mobs reflects

	refresh := func() error {
		begin := time.Now()
		mobs, labels = x.multiObservationList(ctx, attrs)
		obsAt = len(x.drawIdx)
		x.times.Estimation += time.Since(begin)
		return ctx.Err()
	}

	if len(guaranteed) == 0 {
		// Extremes only: fixed-size rounds over the shared stream, as the
		// single-aggregate MAX/MIN path (§VII, no guarantee).
		per := x.sp.len() / 20
		if per < 20 {
			per = 20
		}
		if x.sh != nil && per < len(x.sh.spaces) {
			per = len(x.sh.spaces)
		}
		for round := 1; round < o.ExtremeRounds; round++ {
			if err := ctx.Err(); err != nil {
				return x.multiInterrupted(ctx, specs, state, rounds, mobs, err)
			}
			if !x.sampleMore(per) {
				break
			}
		}
	}

	for round := 0; len(guaranteed) > 0 && round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return x.multiInterrupted(ctx, specs, state, rounds, mobs, err)
		}
		roundBegin := time.Now()
		if err := refresh(); err != nil {
			// Validation was cut short; this round's verdicts are
			// incomplete, so do not fold them into the estimates.
			return x.multiInterrupted(ctx, specs, state, rounds, nil, err)
		}
		correct := 0
		for _, m := range mobs {
			if m.Correct {
				correct++
			}
		}
		rounds++
		// With too few correct draws the variance machinery under-sees the
		// heavy HT tail for every spec at once; grow first (as single-agg).
		if correct < o.MinCorrect {
			if !x.sampleMore(len(x.drawIdx)) {
				break
			}
			continue
		}
		allOK := true
		haveEst := false
		worst := 1.0
		var worstV, worstEps, worstEb float64
		for gi, k := range guaranteed {
			fn := specs[k].Func
			begin := time.Now()
			base := estimate.ProjectInto(x.scr.proj[:0], mobs, k, fn)
			x.scr.proj = base
			// The first guaranteed spec refreshes the Neyman allocator's
			// variance signals; allocation stays a function of one spec so
			// the draw streams remain deterministic under the seed.
			re := x.evalFn(fn, base, gi == 0)
			v, err := re.estimate()
			x.times.Estimation += time.Since(begin)
			if err != nil {
				allOK = false // unestimable spec: the default growth arm doubles
				continue
			}
			begin = time.Now()
			eps, merr := re.moe()
			x.times.Guarantee += time.Since(begin)
			if merr != nil {
				allOK = false
				continue
			}
			state[k].Estimate, state[k].MoE = v, eps
			state[k].Rounds = append(state[k].Rounds, Round{Estimate: v, MoE: eps, SampleSize: len(x.drawIdx)})
			if gi == 0 {
				x.emitRound(Round{Estimate: v, MoE: eps, SampleSize: len(x.drawIdx)})
				x.traceRound(ctx, roundBegin, v, eps)
			}
			haveEst = true
			if grouped {
				if !x.multiGroupRound(k, fn, base, labels, ebs[k], minGroupDraws, &state[k], &worst) {
					allOK = false
				}
				continue
			}
			state[k].Converged = estimate.Satisfied(v, eps, ebs[k])
			if !state[k].Converged {
				allOK = false
				if t := estimate.Target(v, ebs[k]); t > 0 {
					if r := eps / t; r > worst {
						worst, worstV, worstEps, worstEb = r, v, eps, ebs[k]
					}
				}
			}
		}
		if allOK && haveEst {
			converged = true
			break
		}
		// Deadline-aware degradation, as the single-aggregate loop: every
		// spec's current interval is complete and honest, so stopping here
		// beats being cancelled mid-round (see Degradation).
		if haveEst && x.degrade.shouldStop(ctx, time.Since(roundBegin)) {
			x.degraded = true
			break
		}
		var delta int
		switch {
		case o.FixedDelta > 0:
			delta = o.FixedDelta
		case grouped && worst > 1:
			delta = int(float64(len(x.drawIdx)) * (math.Pow(worst, 2*o.M) - 1))
			if delta < len(x.drawIdx)/2 {
				delta = len(x.drawIdx) / 2
			}
		case !grouped && worst > 1:
			m := o.M
			if x.sh != nil {
				m = 1 // stable stratified ε: undamped Eq. 12, as single-agg
			}
			delta = estimate.NextSampleSize(len(x.drawIdx), worstEps, worstV, worstEb, m)
		default:
			// An unestimable or zero-estimate spec gives no ratio to size
			// with: enlarge geometrically and retry, as the single path does.
			delta = len(x.drawIdx)
		}
		if max := 5 * len(x.drawIdx); delta > max {
			delta = max
		}
		if !x.sampleMore(delta) {
			break // draw budget exhausted: report the best estimates so far
		}
	}

	if len(guaranteed) > 0 {
		any := false
		for _, k := range guaranteed {
			if !math.IsNaN(state[k].Estimate) {
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("core: %w: no estimable sample within %d rounds: %w",
				ErrNotConverged, maxRounds, estimate.ErrNoCorrect)
		}
	}
	// Settle the extremes (and the shared counters) over the final sample.
	if obsAt != len(x.drawIdx) {
		if err := refresh(); err != nil {
			return x.multiInterrupted(ctx, specs, state, rounds, mobs, err)
		}
	}
	for _, k := range extremes {
		fn := specs[k].Func
		begin := time.Now()
		obs := estimate.ProjectInto(x.scr.proj[:0], mobs, k, fn)
		x.scr.proj = obs
		if v, err := x.evalFn(fn, obs, false).estimate(); err == nil {
			state[k].Estimate = v
			state[k].MoE = 0
			state[k].Rounds = append(state[k].Rounds, Round{Estimate: v, SampleSize: len(x.drawIdx)})
		}
		x.times.Estimation += time.Since(begin)
	}
	return x.multiResult(ctx, state, rounds, converged, mobs), nil
}

// multiGroupRound evaluates one guaranteed spec's per-group estimators for
// the current round, filling st.Groups and reporting whether every
// sufficiently observed group satisfies the spec's bound. The worst
// ε/target ratio across unsatisfied groups accumulates into *worst, the
// shared growth signal.
func (x *Execution) multiGroupRound(k int, fn query.AggFunc, base []estimate.Observation,
	labels []string, eb float64, minGroupDraws int, st *AggResult, worst *float64) bool {

	seen := map[string]bool{}
	inGroup := map[string]int{}
	for idx, ob := range base {
		if ob.Correct {
			seen[labels[idx]] = true
			inGroup[labels[idx]]++
		}
	}
	groups := map[string]GroupResult{}
	allOK := len(seen) > 0
	for label := range seen {
		obsL := make([]estimate.Observation, len(base))
		copy(obsL, base)
		for idx := range obsL {
			if labels[idx] != label {
				obsL[idx].Correct = false
			}
		}
		ge := x.evalFn(fn, obsL, false)
		gv, err := ge.estimate()
		if err != nil {
			continue
		}
		begin := time.Now()
		geps, err := ge.moe()
		x.times.Guarantee += time.Since(begin)
		if err != nil {
			continue
		}
		groups[label] = GroupResult{Estimate: gv, MoE: geps, Draws: inGroup[label]}
		if inGroup[label] >= minGroupDraws && !estimate.Satisfied(gv, geps, eb) {
			allOK = false
			if t := estimate.Target(gv, eb); t > 0 {
				if r := geps / t; r > *worst {
					*worst = r
				}
			}
		}
	}
	st.Groups = groups
	st.Converged = allOK && len(groups) > 0
	return st.Converged
}

// multiInterrupted packages the partial state of a cancelled
// multi-aggregate refinement, mirroring the single-aggregate interrupted
// contract: best estimates so far, Converged false, an error wrapping both
// ErrInterrupted and the ctx cause.
func (x *Execution) multiInterrupted(ctx context.Context, _ []AggSpec, state []AggResult, rounds int,
	mobs []estimate.MultiObservation, cause error) (*MultiResult, error) {

	return x.multiResult(ctx, state, rounds, false, mobs),
		fmt.Errorf("core: %w after %d draws: %w", ErrInterrupted, len(x.drawIdx), cause)
}

// multiResult assembles the shared-counters result.
func (x *Execution) multiResult(ctx context.Context, state []AggResult, rounds int, converged bool,
	mobs []estimate.MultiObservation) *MultiResult {

	x.finishTelemetry(ctx, converged, math.NaN(), math.NaN())
	x.scr.beginMarks(x.sp.len())
	distinct := 0
	for _, i := range x.drawIdx {
		if x.scr.mark(i) {
			distinct++
		}
	}
	correct := 0
	for _, m := range mobs {
		if m.Correct {
			correct++
		}
	}
	shards := 0
	if x.sh != nil {
		shards = len(x.sh.spaces)
	}
	return &MultiResult{
		Query:      x.q,
		Aggs:       state,
		Confidence: x.opts.Confidence,
		Converged:  converged,
		Degraded:   x.degraded,
		Rounds:     rounds,
		SampleSize: len(x.drawIdx),
		Distinct:   distinct,
		Correct:    correct,
		Candidates: x.sp.len(),
		Shards:     shards,
		Epoch:      x.v.epoch,
		Times:      x.times,
	}
}
