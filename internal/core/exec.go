package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"kgaq/internal/estimate"
	"kgaq/internal/kg"
	"kgaq/internal/obs"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// resolvedFilter is a query filter with its attribute interned.
type resolvedFilter struct {
	attr kg.AttrID
	low  float64
	high float64
}

// Execution is a started query whose sample can be refined incrementally —
// the interactive scenario of §IV-C where the user tightens eb at runtime
// and the engine reuses everything collected so far.
//
// An Execution carries its own RNG, sampling space and validation caches
// and must not be shared across goroutines; concurrency happens by running
// many Executions of one Engine in parallel.
type Execution struct {
	e       *Engine
	q       *query.Aggregate
	v       view    // the epoch-consistent graph view this query observes
	opts    Options // engine options with per-query overrides applied
	onRound func(Round)
	degrade Degradation // deadline-aware degradation (disabled by default)
	attr    kg.AttrID
	group   kg.AttrID
	filters []resolvedFilter

	degraded bool    // the guarantee loop stopped early under degrade
	targetEB float64 // the bound the last Refine targeted

	sp      *answerSpace
	sh      *shardedSpace // non-nil when Options.Shards > 1
	rng     *rand.Rand    // the draw stream: consumed by sampling alone
	scr     *execScratch  // pooled hot-loop buffers, held per Refine call
	drawIdx []int
	rounds  []Round
	times   StepTimes

	// Telemetry bookkeeping. reportedTimes is what earlier result() calls on
	// this execution already exported to the step-seconds metrics, so
	// interactive re-Refine exports deltas, never double-counts. The trace*
	// fields are the previous traced round's cumulative readings, turning the
	// trace counters into per-round figures.
	reportedTimes  StepTimes
	traceSampleAt  int
	traceValidated float64
	traceHits      float64
}

// Start validates and prepares a query: decomposition, walker construction,
// convergence, and the answer distribution — everything up to (but not
// including) drawing the sample. The preparation time is charged to the
// sampling step. ctx cancels the preparation (walker convergence and space
// assembly are the heavy parts); a cancelled Start returns ErrInterrupted.
//
// The execution is pinned to the engine's graph view current at this call
// (or the first view satisfying WithMinEpoch): every later Refine reads
// that one epoch, however many mutations land meanwhile.
//
// Start is a thin wrapper over the two-phase API: it Prepares a
// single-use plan and starts its one execution. Workloads that re-execute
// a query graph (or fan several aggregates over one sample) should call
// Engine.Prepare once and reuse the plan.
func (e *Engine) Start(ctx context.Context, q *query.Aggregate, opts ...QueryOption) (x *Execution, err error) {
	defer catchPanics(aggString(q), &err)
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := e.queryConfig(opts)
	if cfg.opts.Sampler != SamplerSemantic {
		return e.startTopology(ctx, q, cfg)
	}
	p, err := e.prepare(ctx, q, cfg)
	if err != nil {
		return nil, err
	}
	x, err = p.Start(ctx)
	if err != nil {
		return nil, err
	}
	// The one-shot API's contract: preparation time is part of the query's
	// sampling step.
	x.times.Sampling += p.buildTime
	return x, nil
}

// startTopology prepares an execution under a topology-only ablation
// sampler (Fig. 5a), which draws its sample during the build itself and so
// cannot be compiled into a reusable plan.
func (e *Engine) startTopology(ctx context.Context, q *query.Aggregate, cfg queryConfig) (*Execution, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.Func.HasGuarantee() && q.GroupBy != "" {
		return nil, fmt.Errorf("core: GROUP-BY with %v is unsupported", q.Func)
	}
	o := cfg.opts
	if o.Shards > 1 {
		return nil, fmt.Errorf("core: %w (got %v)", ErrShardedSampler, o.Sampler)
	}
	v := e.src.snapshot()
	if cfg.minEpoch > v.epoch {
		var err error
		if v, err = e.src.waitEpoch(ctx, cfg.minEpoch); err != nil {
			return nil, err
		}
	}
	x := &Execution{e: e, q: q, v: v, opts: o, onRound: cfg.onRound, degrade: cfg.degrade, rng: stats.NewRand(o.Seed)}

	var err error
	if x.attr, err = resolveAttr(v.g, q.Attr); err != nil {
		return nil, err
	}
	if x.group, err = resolveAttr(v.g, q.GroupBy); err != nil {
		return nil, err
	}
	for _, f := range q.Filters {
		a, err := resolveAttr(v.g, f.Attr)
		if err != nil {
			return nil, err
		}
		x.filters = append(x.filters, resolvedFilter{attr: a, low: f.Low, high: f.High})
	}

	paths, err := q.Q.Decompose()
	if err != nil {
		return nil, err
	}
	if len(paths) != 1 {
		return nil, fmt.Errorf("core: %v sampler supports simple queries only", o.Sampler)
	}
	begin := time.Now()
	sp, draws, err := e.buildTopologySpace(ctx, o, v, paths[0], x.rng, x.initialSize(200))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: %w during preparation: %w", ErrInterrupted, cerr)
		}
		return nil, err
	}
	x.sp = sp
	x.drawIdx = draws
	x.times.Sampling += time.Since(begin)
	return x, nil
}

// Query runs the full pipeline: Start plus refinement to the configured
// error bound, honouring ctx between rounds and inside the walk and
// validation hot loops. On cancellation it returns the partial Result
// collected so far (Converged=false) together with an error wrapping both
// ErrInterrupted and ctx.Err().
func (e *Engine) Query(ctx context.Context, q *query.Aggregate, opts ...QueryOption) (*Result, error) {
	x, err := e.Start(ctx, q, opts...)
	if err != nil {
		return nil, err
	}
	return x.Refine(ctx, 0)
}

// Rounds returns a snapshot of the refinement rounds observed so far — the
// pull-style counterpart of the OnRound streaming option.
func (x *Execution) Rounds() []Round {
	return append([]Round(nil), x.rounds...)
}

// emitRound records a refinement round and streams it to the OnRound
// callback, if any.
func (x *Execution) emitRound(r Round) {
	x.rounds = append(x.rounds, r)
	if x.onRound != nil {
		x.onRound(r)
	}
}

// traceRound records one guarantee-loop round into the request trace: the
// fresh draws and validation work of this round, the estimate and its ε,
// and the achieved bound ε̂ = ε/(|V̂|−ε) whose shrink toward eb is the
// Theorem 2 convergence signal.
func (x *Execution) traceRound(ctx context.Context, began time.Time, vhat, eps float64) {
	t := obs.TraceFrom(ctx)
	if t == nil {
		return
	}
	n := len(x.drawIdx)
	validated := t.Counter("validation_calls")
	hits := t.Counter("verdict_cache_hits")
	t.Round(obs.RoundTelemetry{
		Round:      len(x.rounds),
		SampleSize: n,
		Draws:      n - x.traceSampleAt,
		Validated:  int(validated - x.traceValidated),
		CacheHits:  int(hits - x.traceHits),
		Estimate:   obs.Float(vhat),
		MoE:        obs.Float(eps),
		AchievedEB: obs.Float(achievedEB(vhat, eps)),
		ElapsedMS:  float64(time.Since(began)) / float64(time.Millisecond),
	})
	x.traceSampleAt, x.traceValidated, x.traceHits = n, validated, hits
}

// finishTelemetry exports one completed Refine to the engine metrics and
// stamps the request trace with the result-level attributes (outcome,
// convergence, the final ε̂, per-shard draw attribution). Step times export
// as deltas against what this execution already reported.
func (x *Execution) finishTelemetry(ctx context.Context, converged bool, vhat, moe float64) {
	outcome := "unconverged"
	switch {
	case ctx.Err() != nil:
		outcome = "interrupted"
	case x.degraded:
		outcome = "degraded"
	case converged:
		outcome = "converged"
	}
	metQueries.With(outcome).Inc()
	metRounds.Observe(float64(len(x.rounds)))
	metStepSeconds.With("sampling").Add((x.times.Sampling - x.reportedTimes.Sampling).Seconds())
	metStepSeconds.With("estimation").Add((x.times.Estimation - x.reportedTimes.Estimation).Seconds())
	metStepSeconds.With("guarantee").Add((x.times.Guarantee - x.reportedTimes.Guarantee).Seconds())
	x.reportedTimes = x.times

	t := obs.TraceFrom(ctx)
	if t == nil {
		return
	}
	t.SetAttr("outcome", outcome)
	t.SetAttr("converged", converged)
	t.SetAttr("degraded", x.degraded)
	t.SetAttr("rounds", len(x.rounds))
	t.SetAttr("sample_size", len(x.drawIdx))
	t.SetAttr("candidates", x.sp.len())
	t.SetAttr("epoch", x.v.epoch)
	t.SetAttr("target_eb", x.targetEB)
	t.SetAttr("estimate", vhat)
	t.SetAttr("moe", moe)
	t.SetAttr("achieved_eb", achievedEB(vhat, moe))
	if x.sh != nil {
		draws := make(map[string]int, len(x.sh.spaces))
		for pos, spc := range x.sh.spaces {
			draws[strconv.Itoa(spc.Shard)] = x.sh.drawn[pos]
		}
		t.SetAttr("shard_draws", draws)
	}
}

// initialSize is the paper's |S| = t·(λ·|A|)^m with a practical floor.
func (x *Execution) initialSize(candidates int) int {
	o := x.opts
	n := float64(o.T) * math.Pow(o.Lambda*float64(candidates), o.M)
	size := int(math.Ceil(n))
	if size < o.MinSample {
		size = o.MinSample
	}
	return size
}

// firstSample draws the initial round. Under sharded execution the size is
// additionally floored at the stratum count: an unobserved stratum
// contributes zero to the merged estimate AND zero to its variance, so a
// first round smaller than the stratum count could converge on a biased
// underestimate; covering every stratum from round one (the allocator's
// per-stratum floors then hold for all later rounds) removes that mode.
func (x *Execution) firstSample() {
	size := x.initialSize(x.sp.len())
	if x.sh != nil && size < len(x.sh.spaces) {
		size = len(x.sh.spaces)
	}
	x.sampleMore(size)
}

// observation materialises draw i: the correctness verdict combines the
// cached semantic validation with the §V-A filter condition
// c(u) = (L ≤ u.b ≤ U && s ≥ τ), and an answer missing the aggregated
// attribute cannot contribute to SUM/AVG/MAX/MIN. Under sharded execution
// the probability is conditional on the draw's stratum and the stratum's
// inclusion probability rides along, so the stratified combiner can merge
// per-shard samples from the flat observation list.
func (x *Execution) observation(ctx context.Context, i int) estimate.Observation {
	g := x.v.g
	u := x.sp.answers[i]
	// The Fig. 5b ablation (SkipValidation) trusts the sampler blindly:
	// every sampled answer is treated as correct.
	obs := estimate.Observation{Prob: x.sp.probs[i],
		Correct: x.opts.SkipValidation || x.sp.correctness(ctx, i)}
	if x.sh != nil {
		spc := x.sh.spaces[x.sh.posOf[i]]
		obs.Prob = x.sh.condProb(x.sp, i)
		obs.Stratum = spc.Shard
		obs.StratumWeight = spc.Weight
	}
	if obs.Correct {
		for _, f := range x.filters {
			v, ok := g.Attr(u, f.attr)
			if !ok || v < f.low || v > f.high {
				obs.Correct = false
				break
			}
		}
	}
	if x.attr != kg.InvalidAttr {
		v, ok := g.Attr(u, x.attr)
		if !ok {
			if x.q.Func != query.Count {
				obs.Correct = false
			}
		} else {
			obs.Value = v
		}
	}
	return obs
}

// prevalidateDraws batch-validates every fresh distinct answer in the draw
// list — per stratum and in parallel when sharded, in one shared greedy
// search otherwise — so the per-draw observation path hits the verdict
// cache.
func (x *Execution) prevalidateDraws(ctx context.Context) {
	fireValidatePoint()
	if x.opts.SkipValidation {
		return
	}
	if x.sh != nil {
		x.sh.prevalidate(ctx, x.e, x.sp, x.drawIdx, x.scr)
		return
	}
	x.sp.prevalidate(ctx, x.drawIdx, x.scr)
}

func (x *Execution) observations(ctx context.Context) []estimate.Observation {
	x.prevalidateDraws(ctx)
	out := x.scr.obs[:0]
	for _, i := range x.drawIdx {
		out = append(out, x.observation(ctx, i))
	}
	x.scr.obs = out
	return out
}

// roundEval evaluates one observation list — a refinement round's full
// sample, or one GROUP-BY group's view of it — under one aggregate
// function. When sharded, the strata are regrouped once and shared by the
// point estimate and the margin of error.
type roundEval struct {
	x      *Execution
	fn     query.AggFunc
	obs    []estimate.Observation
	strata []estimate.Stratum // nil when unsharded
}

// eval builds the round evaluator for the execution's own aggregate.
// updateAlloc must be true exactly for the full-sample evaluation of a
// round: it refreshes the Neyman allocator's per-stratum variance signals,
// which per-group views (subsets with out-of-group draws zeroed, visited
// in map order) must never do — allocation stays a function of the whole
// sample and the run stays deterministic under its seed.
func (x *Execution) eval(obs []estimate.Observation, updateAlloc bool) *roundEval {
	return x.evalFn(x.q.Func, obs, updateAlloc)
}

// evalFn is eval for an explicit aggregate function — the multi-aggregate
// path evaluates several functions over projections of one shared sample.
func (x *Execution) evalFn(fn query.AggFunc, obs []estimate.Observation, updateAlloc bool) *roundEval {
	re := &roundEval{x: x, fn: fn, obs: obs}
	if x.sh != nil {
		re.strata = estimate.Regroup(obs)
		if updateAlloc {
			x.sh.updateSigmas(fn, re.strata)
		}
	}
	return re
}

// estimate computes the point estimate — stratified when sharded (the
// per-shard samples merge as Σ_h f̂(S_h) over conditional probabilities),
// plain Horvitz–Thompson otherwise.
func (re *roundEval) estimate() (float64, error) {
	x := re.x
	if re.strata != nil {
		return estimate.EstimateStratified(re.fn, re.strata, x.opts.Policy)
	}
	return estimate.Estimate(re.fn, re.obs, x.opts.Policy)
}

// moe computes ε — the closed-form stratified CLT variance when sharded
// (one O(|S|) pass), BLB otherwise.
func (re *roundEval) moe() (float64, error) {
	x := re.x
	o := x.opts
	if re.strata != nil {
		return estimate.MoEStratified(re.fn, re.strata, o.Policy, o.guarantee())
	}
	return estimate.MoESeeded(re.fn, re.obs, o.Policy, o.guarantee(), x.moeSeed(re.fn, len(re.obs)))
}

// moeSeed derives the BLB bootstrap stream for one MoE evaluation from the
// execution seed, the aggregate function and the sample size. The bootstrap
// deliberately does NOT consume x.rng: the draw stream stays a function of
// draw counts alone, so pooled and unpooled execution, and a QueryMulti
// versus sequential Query calls over the same plan, sample identically —
// the determinism property tests pin this down. Distinct (fn, n) pairs map
// to distinct pre-scramble seeds (fn is a small enum), and splitmix64
// decorrelates consecutive sample sizes.
func (x *Execution) moeSeed(fn query.AggFunc, n int) int64 {
	sm := stats.NewSplitmix(x.opts.Seed + int64(n)*1_000_003 + int64(fn))
	return int64(sm.Next())
}

// sampleMore extends the draw list by k, honouring the MaxDraws budget. It
// reports whether any draws were added. Sharded executions allocate the k
// draws across strata (Neyman once variance signals exist) and draw each
// stratum from its own deterministic stream.
func (x *Execution) sampleMore(k int) bool {
	if budget := x.opts.MaxDraws - len(x.drawIdx); k > budget {
		k = budget
	}
	if k <= 0 {
		return false
	}
	begin := time.Now()
	var fresh []int
	if x.sh != nil {
		x.scr.draws = x.sh.drawInto(x.scr.draws[:0], k)
		fresh = x.scr.draws
	} else {
		x.scr.draws = x.sp.drawInto(x.scr.draws[:0], x.rng, k)
		fresh = x.scr.draws
	}
	x.drawIdx = append(x.drawIdx, fresh...)
	x.e.countDraws(x.sp.answers, fresh)
	x.times.Sampling += time.Since(begin)
	return true
}

// interrupted packages the partial state of a cancelled refinement: the
// best estimate so far with Converged=false, plus an error matching both
// ErrInterrupted and the ctx cause. When this Refine call completed no
// round of its own, the estimate falls back to the last recorded round
// (an earlier Refine on the same Execution may have produced one); only a
// truly round-less execution reports NaN. The cancelled ctx flows into
// the result bookkeeping on purpose: draws whose validation never ran
// count as incorrect instead of blocking the cancel on a fresh
// validation pass.
func (x *Execution) interrupted(ctx context.Context, vhat, moe float64, estimated bool, cause error) (*Result, error) {
	if !estimated {
		if n := len(x.rounds); n > 0 {
			vhat, moe = x.rounds[n-1].Estimate, x.rounds[n-1].MoE
		} else {
			vhat, moe = math.NaN(), math.NaN()
		}
	}
	return x.result(ctx, vhat, moe, false, nil),
		fmt.Errorf("core: %w after %d draws: %w", ErrInterrupted, len(x.drawIdx), cause)
}

// Refine grows the sample until the Theorem 2 condition holds for the given
// error bound (eb ≤ 0 means the execution's configured bound), reusing all
// previously collected draws — interactive tightening of eb keeps the
// sample. ctx is checked between refinement rounds and inside the
// validation hot loop; a cancelled Refine returns the partial Result with
// Converged=false and an error wrapping ErrInterrupted.
func (x *Execution) Refine(ctx context.Context, eb float64) (res *Result, err error) {
	defer x.catchPanics(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	release := x.holdScratch()
	defer release()
	if eb <= 0 {
		eb = x.opts.ErrorBound
	}
	x.targetEB = eb
	if !x.q.Func.HasGuarantee() {
		return x.runExtreme(ctx)
	}
	if x.group != kg.InvalidAttr {
		return x.runGrouped(ctx, eb)
	}
	o := x.opts
	if len(x.drawIdx) == 0 {
		x.firstSample()
	}

	var vhat, moe float64
	converged := false
	estimated := false
	for round := 0; round < o.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return x.interrupted(ctx, vhat, moe, estimated, err)
		}
		roundBegin := time.Now()
		begin := time.Now()
		obs := x.observations(ctx)
		correct := 0
		for _, ob := range obs {
			if ob.Correct {
				correct++
			}
		}
		if err := ctx.Err(); err != nil {
			// Validation was cut short; the verdicts of this round are
			// incomplete, so do not fold them into the estimate.
			x.times.Estimation += time.Since(begin)
			return x.interrupted(ctx, vhat, moe, estimated, err)
		}
		re := x.eval(obs, true)
		v, err := re.estimate()
		x.times.Estimation += time.Since(begin)
		if err != nil {
			if err == estimate.ErrNoCorrect {
				// Unlucky sample: enlarge and retry.
				if !x.sampleMore(len(x.drawIdx)) {
					break
				}
				continue
			}
			return nil, err
		}
		// With too few correct draws the bootstrap cannot see the heavy
		// tail of the HT weights; a CI computed now would terminate
		// over-optimistically. Grow first.
		if correct < o.MinCorrect {
			if !x.sampleMore(len(x.drawIdx)) {
				// Budget exhausted: fall through and report what we have,
				// without claiming convergence.
				vhat, moe = v, math.NaN()
				estimated = true
				break
			}
			continue
		}
		begin = time.Now()
		eps, err := re.moe()
		// Close the timing window before the OnRound callback fires: its
		// latency (e.g. a slow streaming client) is not guarantee time.
		x.times.Guarantee += time.Since(begin)
		if err != nil {
			if !x.sampleMore(len(x.drawIdx)) {
				break
			}
			continue
		}
		vhat, moe = v, eps
		estimated = true
		x.emitRound(Round{Estimate: v, MoE: eps, SampleSize: len(x.drawIdx)})
		x.traceRound(ctx, roundBegin, v, eps)
		if estimate.Satisfied(v, eps, eb) {
			converged = true
			break
		}
		// Deadline-aware degradation: when another round (predicted from this
		// one's cost) would not fit before the context deadline, stop here and
		// report the honest interval already held rather than be cancelled
		// mid-validation. The estimate above is complete, so the answer is
		// exactly what an earlier termination would have returned.
		if x.degrade.shouldStop(ctx, time.Since(roundBegin)) {
			x.degraded = true
			break
		}
		begin = time.Now()
		delta := o.FixedDelta
		if delta <= 0 {
			m := o.M
			if x.sh != nil {
				// The sharded guarantee uses the closed-form stratified CLT
				// ε, which scales exactly as 1/√N — so the Eq. 12 sizing
				// runs undamped (m = 1) instead of with the BLB's
				// conservative exponent; the stable ε estimate makes the
				// full step safe where the bootstrap's noise would not.
				m = 1
			}
			delta = estimate.NextSampleSize(len(x.drawIdx), eps, v, eb, m)
		}
		if max := 5 * len(x.drawIdx); delta > max {
			delta = max // keep one round from ballooning on a noisy early ε
		}
		x.times.Guarantee += time.Since(begin)
		if !x.sampleMore(delta) {
			break // draw budget exhausted: report the best estimate so far
		}
	}
	if !estimated {
		return nil, fmt.Errorf("core: %w: no estimable sample within %d rounds: %w",
			ErrNotConverged, o.MaxRounds, estimate.ErrNoCorrect)
	}
	return x.result(ctx, vhat, moe, converged, nil), nil
}

// runExtreme supports MAX/MIN without a guarantee (§VII): fixed-size rounds
// over the sampling distribution, returning the running extreme.
func (x *Execution) runExtreme(ctx context.Context) (*Result, error) {
	o := x.opts
	per := x.sp.len() / 20 // 5% of the candidates per round
	if per < 20 {
		per = 20
	}
	if x.sh != nil && per < len(x.sh.spaces) {
		per = len(x.sh.spaces) // observe every stratum each extreme round
	}
	var best float64
	found := false
	for round := 0; round < o.ExtremeRounds; round++ {
		if err := ctx.Err(); err != nil {
			return x.interrupted(ctx, best, 0, found, err)
		}
		roundBegin := time.Now()
		if !x.sampleMore(per) && round > 0 {
			break
		}
		begin := time.Now()
		v, err := x.eval(x.observations(ctx), true).estimate()
		x.times.Estimation += time.Since(begin)
		if err != nil {
			continue
		}
		best = v
		found = true
		x.emitRound(Round{Estimate: v, SampleSize: len(x.drawIdx)})
		x.traceRound(ctx, roundBegin, v, math.NaN())
	}
	if !found {
		return nil, estimate.ErrNoCorrect
	}
	return x.result(ctx, best, 0, false, nil), nil
}

// runGrouped answers GROUP-BY queries: each group's estimator runs over the
// full sample with group membership folded into the correctness indicator
// (a draw outside the group contributes zero), which keeps the HT estimator
// unbiased per group. Every sufficiently observed group must individually
// satisfy Theorem 2, which is why GROUP-BY costs roughly a group-count
// multiple of a plain query (Table X).
func (x *Execution) runGrouped(ctx context.Context, eb float64) (*Result, error) {
	o := x.opts
	if len(x.drawIdx) == 0 {
		x.firstSample()
	}
	const minGroupDraws = 8
	maxRounds := 3 * o.MaxRounds
	var groups map[string]GroupResult
	var vhat, moe float64
	estimated := false
	lastEmit := -1 // sample size the last emitted round covered
	converged := false
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			res, rerr := x.interrupted(ctx, vhat, moe, estimated, err)
			res.Groups = groups
			return res, rerr
		}
		roundBegin := time.Now()
		begin := time.Now()
		byGroup, inGroup, base := x.groupedObservations(ctx)
		if err := ctx.Err(); err != nil {
			// Validation was cut short; this round's verdicts are incomplete,
			// so report the previous round's groups, not estimates over them.
			x.times.Estimation += time.Since(begin)
			res, rerr := x.interrupted(ctx, vhat, moe, estimated, err)
			res.Groups = groups
			return res, rerr
		}
		// The overall (ungrouped) estimate of this round, streamed to
		// OnRound so grouped queries report live progress too.
		baseEval := x.eval(base, true)
		if v, err := baseEval.estimate(); err == nil {
			gbegin := time.Now()
			eps, err := baseEval.moe()
			x.times.Guarantee += time.Since(gbegin)
			if err != nil {
				eps = math.NaN()
			}
			vhat, moe = v, eps
			estimated = true
			lastEmit = len(x.drawIdx)
			x.emitRound(Round{Estimate: v, MoE: eps, SampleSize: len(x.drawIdx)})
			x.traceRound(ctx, roundBegin, v, eps)
		}
		groups = map[string]GroupResult{}
		allOK := len(byGroup) > 0
		worstRatio := 1.0
		for label, obs := range byGroup {
			groupEval := x.eval(obs, false)
			v, err := groupEval.estimate()
			if err != nil {
				continue
			}
			gbegin := time.Now()
			eps, err := groupEval.moe()
			x.times.Guarantee += time.Since(gbegin)
			if err != nil {
				continue
			}
			groups[label] = GroupResult{Estimate: v, MoE: eps, Draws: inGroup[label]}
			if inGroup[label] >= minGroupDraws && !estimate.Satisfied(v, eps, eb) {
				allOK = false
				if t := estimate.Target(v, eb); t > 0 {
					if r := eps / t; r > worstRatio {
						worstRatio = r
					}
				}
			}
		}
		x.times.Estimation += time.Since(begin)
		if allOK && len(groups) > 0 {
			converged = true
			break
		}
		if x.degrade.shouldStop(ctx, time.Since(roundBegin)) {
			x.degraded = true
			break
		}
		delta := int(float64(len(x.drawIdx)) * (math.Pow(worstRatio, 2*o.M) - 1))
		if delta < len(x.drawIdx)/2 {
			delta = len(x.drawIdx) / 2
		}
		if max := 5 * len(x.drawIdx); delta > max {
			delta = max
		}
		if !x.sampleMore(delta) {
			break // draw budget exhausted
		}
	}
	// The overall (ungrouped) estimate accompanies the groups; recompute it
	// only when no round produced one or draws arrived after the last round.
	if !estimated || lastEmit != len(x.drawIdx) {
		finalBegin := time.Now()
		finalObs := x.observations(ctx)
		if err := ctx.Err(); err != nil {
			res, rerr := x.interrupted(ctx, vhat, moe, estimated, err)
			res.Groups = groups
			return res, rerr
		}
		finalEval := x.eval(finalObs, true)
		v, err := finalEval.estimate()
		if err != nil {
			return nil, err
		}
		eps, err := finalEval.moe()
		if err != nil {
			eps = math.NaN()
		}
		vhat, moe = v, eps
		x.emitRound(Round{Estimate: v, MoE: eps, SampleSize: len(x.drawIdx)})
		x.traceRound(ctx, finalBegin, v, eps)
	}
	return x.result(ctx, vhat, moe, converged, groups), nil
}

// groupedObservations builds, for every group label, a full-sample
// observation list in which draws outside the group are marked incorrect,
// plus the count of in-group draws per label and the shared base
// observation list itself (for the round's overall estimate).
func (x *Execution) groupedObservations(ctx context.Context) (map[string][]estimate.Observation, map[string]int, []estimate.Observation) {
	g := x.v.g
	x.prevalidateDraws(ctx)
	labels := x.scr.labels[:0]
	base := x.scr.base[:0]
	seen := map[string]bool{}
	inGroup := map[string]int{}
	for _, i := range x.drawIdx {
		ob := x.observation(ctx, i)
		base = append(base, ob)
		label := "n/a"
		if v, ok := g.Attr(x.sp.answers[i], x.group); ok {
			label = strconv.FormatFloat(v, 'g', -1, 64)
		}
		labels = append(labels, label)
		if ob.Correct {
			seen[label] = true
			inGroup[label]++
		}
	}
	x.scr.labels, x.scr.base = labels, base
	byGroup := map[string][]estimate.Observation{}
	for label := range seen {
		obs := make([]estimate.Observation, len(base))
		copy(obs, base)
		for k := range obs {
			if labels[k] != label {
				obs[k].Correct = false
			}
		}
		byGroup[label] = obs
	}
	return byGroup, inGroup, base
}

func (x *Execution) result(ctx context.Context, vhat, moe float64, converged bool, groups map[string]GroupResult) *Result {
	x.finishTelemetry(ctx, converged, vhat, moe)
	correct := 0
	distinct := 0
	x.scr.beginMarks(x.sp.len())
	for _, i := range x.drawIdx {
		if x.scr.mark(i) {
			distinct++
		}
		if x.observation(ctx, i).Correct {
			correct++
		}
	}
	shards := 0
	if x.sh != nil {
		shards = len(x.sh.spaces)
	}
	return &Result{
		Query:      x.q,
		Estimate:   vhat,
		MoE:        moe,
		Confidence: x.opts.Confidence,
		Converged:  converged,
		Degraded:   x.degraded,
		TargetEB:   x.targetEB,
		Rounds:     append([]Round(nil), x.rounds...),
		SampleSize: len(x.drawIdx),
		Distinct:   distinct,
		Correct:    correct,
		Candidates: x.sp.len(),
		Shards:     shards,
		Epoch:      x.v.epoch,
		Times:      x.times,
		Groups:     groups,
	}
}

// Execute runs the full pipeline with the engine's configured error bound.
//
// Deprecated: use Query, which adds context cancellation and per-query
// options. Execute remains as a one-release compatibility shim.
func (e *Engine) Execute(q *query.Aggregate) (*Result, error) {
	return e.Query(context.Background(), q)
}

// Run refines the sample until the Theorem 2 condition holds for eb.
//
// Deprecated: use Refine, which adds context cancellation. Run remains as
// a one-release compatibility shim.
func (x *Execution) Run(eb float64) (*Result, error) {
	return x.Refine(context.Background(), eb)
}

// CandidateAnswers exposes the sampling space (candidate answers sorted by
// descending π′) for diagnostics and the CLIs.
func (x *Execution) CandidateAnswers() []kg.NodeID {
	idx := make([]int, len(x.sp.answers))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x.sp.probs[idx[a]] > x.sp.probs[idx[b]] })
	out := make([]kg.NodeID, len(idx))
	for k, i := range idx {
		out[k] = x.sp.answers[i]
	}
	return out
}
