package core

import (
	"context"
	"testing"

	"kgaq/internal/estimate"
	"kgaq/internal/kg"
	"kgaq/internal/query"
)

// Per-stage allocation budgets for the draw→validate→estimate→merge hot
// loop, measured on the warm path: scratch attached, pools primed, every
// current draw's verdict cached. These are the numbers the PR 9 reclamation
// bought — a budget increase is a performance regression and needs the same
// scrutiny as a latency one.
const (
	// drawAllocBudget covers one alias-table draw batch into reused scratch
	// (answerSpace.drawInto and shardedSpace.drawInto).
	drawAllocBudget = 0
	// validateAllocBudget covers the batch-validation entry when every draw
	// already has a verdict — the steady-state round where validation is a
	// cache sweep (answerSpace.prevalidate, shardedSpace.prevalidate).
	validateAllocBudget = 0
	// estimateAllocBudget covers one warm round's observation rebuild plus
	// the flattened-bootstrap MoE (observations + MoESeeded): both run on
	// pooled buffers.
	estimateAllocBudget = 0
	// mergeAllocBudget covers the stratified Horvitz–Thompson merge of a
	// sharded round (Regroup excluded — the engine merges via pooled
	// MoEStratified/EstimateStratified over per-round strata).
	mergeAllocBudget = 0
	// multiAccumBudget covers one warm multi-target accumulation round: the
	// shared-draw observation list with its flat Values/Has arena plus one
	// projection (multiObservationList + ProjectInto).
	multiAccumBudget = 0
)

// warmExecution prepares a figure-1 COUNT execution with scratch held, an
// initial sample drawn and every draw's verdict cached, so the per-stage
// benchmarks below measure exactly the steady-state round.
func warmExecution(t *testing.T) (*Execution, context.Context, func()) {
	t.Helper()
	e, _ := figure1Engine(t, Options{ErrorBound: 0.05, Seed: 21})
	p, err := e.Prepare(context.Background(), countQuery())
	if err != nil {
		t.Fatal(err)
	}
	x, err := p.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release := x.holdScratch()
	x.firstSample()
	ctx := context.Background()
	x.prevalidateDraws(ctx)
	x.observations(ctx) // prime obs scratch and every lazy verdict
	return x, ctx, release
}

func TestAllocBudgetDraw(t *testing.T) {
	x, _, release := warmExecution(t)
	defer release()
	const k = 128
	x.scr.draws = x.sp.drawInto(x.scr.draws[:0], x.rng, k) // size the batch buffer
	allocs := testing.AllocsPerRun(200, func() {
		x.scr.draws = x.sp.drawInto(x.scr.draws[:0], x.rng, k)
	})
	if allocs > drawAllocBudget {
		t.Fatalf("draw stage allocates %.1f/op, budget %d", allocs, drawAllocBudget)
	}
}

func TestAllocBudgetValidateCached(t *testing.T) {
	x, ctx, release := warmExecution(t)
	defer release()
	allocs := testing.AllocsPerRun(200, func() {
		x.sp.prevalidate(ctx, x.drawIdx, x.scr)
	})
	if allocs > validateAllocBudget {
		t.Fatalf("validate stage (cached) allocates %.1f/op, budget %d", allocs, validateAllocBudget)
	}
}

func TestAllocBudgetEstimate(t *testing.T) {
	x, ctx, release := warmExecution(t)
	defer release()
	o := x.opts
	obs := x.observations(ctx)
	seed := x.moeSeed(query.Count, len(obs))
	if _, err := estimate.MoESeeded(query.Count, obs, o.Policy, o.guarantee(), seed); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		obs := x.observations(ctx)
		if _, err := estimate.MoESeeded(query.Count, obs, o.Policy, o.guarantee(), seed); err != nil {
			panic(err)
		}
	})
	if allocs > estimateAllocBudget {
		t.Fatalf("estimate stage allocates %.1f/op, budget %d", allocs, estimateAllocBudget)
	}
}

func TestAllocBudgetStratifiedMerge(t *testing.T) {
	// Synthetic 4-stratum sample exercising the pooled merge exactly as a
	// sharded guarantee round does.
	obs := make([]estimate.Observation, 400)
	for i := range obs {
		obs[i] = estimate.Observation{
			Value:         float64(10 + i%17),
			Prob:          0.002 + 0.001*float64(i%5),
			Correct:       i%3 != 0,
			Stratum:       i % 4,
			StratumWeight: 0.25,
		}
	}
	strata := estimate.Regroup(obs)
	cfg := estimate.DefaultGuarantee()
	if _, err := estimate.MoEStratified(query.Sum, strata, estimate.SampleSize, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := estimate.EstimateStratified(query.Sum, strata, estimate.SampleSize); err != nil {
			panic(err)
		}
		if _, err := estimate.MoEStratified(query.Sum, strata, estimate.SampleSize, cfg); err != nil {
			panic(err)
		}
	})
	if allocs > mergeAllocBudget {
		t.Fatalf("stratified merge allocates %.1f/op, budget %d", allocs, mergeAllocBudget)
	}
}

func TestAllocBudgetMultiAccumulation(t *testing.T) {
	x, ctx, release := warmExecution(t)
	defer release()
	attrs := []kg.AttrID{kg.InvalidAttr, kg.InvalidAttr, kg.InvalidAttr}
	mobs, _ := x.multiObservationList(ctx, attrs)
	x.scr.proj = estimate.ProjectInto(x.scr.proj[:0], mobs, 0, query.Count)
	allocs := testing.AllocsPerRun(100, func() {
		mobs, _ := x.multiObservationList(ctx, attrs)
		x.scr.proj = estimate.ProjectInto(x.scr.proj[:0], mobs, 0, query.Count)
	})
	if allocs > multiAccumBudget {
		t.Fatalf("multi-target accumulation allocates %.1f/op, budget %d", allocs, multiAccumBudget)
	}
}
