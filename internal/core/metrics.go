package core

import "kgaq/internal/obs"

// Engine-tier metrics. Registered once into the process registry; the
// hot-path updates are single atomic adds next to the counters the engine
// already keeps (cache stats, buildMetrics), so a scrape and /debug/cache
// always tell the same story.
var (
	metQueries = obs.Default().CounterVec("kgaq_core_queries_total",
		"Completed engine executions by outcome (converged, unconverged, degraded, interrupted).",
		"outcome")
	metRounds = obs.Default().Histogram("kgaq_core_rounds_per_query",
		"Guarantee-loop rounds taken per execution.", obs.RoundBuckets)
	metDraws = obs.Default().Counter("kgaq_core_draws_total",
		"Semantic-aware sample draws taken across all executions.")
	metValidationCalls = obs.Default().Counter("kgaq_core_validation_calls_total",
		"Candidate answers greedily validated against the similarity oracle (verdict-cache misses).")
	metVerdictHits = obs.Default().Counter("kgaq_core_verdict_cache_hits_total",
		"Candidate validations answered from a stage's shared verdict cache.")
	metSpaceHits = obs.Default().Counter("kgaq_core_space_cache_hits_total",
		"Answer-space stage cache hits.")
	metSpaceMisses = obs.Default().Counter("kgaq_core_space_cache_misses_total",
		"Answer-space stage cache misses (stage walked to convergence).")
	metSpaceInvalidated = obs.Default().Counter("kgaq_core_space_cache_invalidated_total",
		"Answer-space stages evicted by mutation-driven invalidation.")
	metStageBuilds = obs.Default().Counter("kgaq_core_stage_builds_total",
		"Random-walk stages converged from scratch (cache misses plus uncached builds).")
	metPlanRebuilds = obs.Default().Counter("kgaq_core_plan_rebuilds_total",
		"Prepared plans recompiled because their pinned epoch went stale.")
	metStepSeconds = obs.Default().CounterVec("kgaq_core_step_seconds_total",
		"Engine execution time attributed per step (sampling, estimation, guarantee).",
		"step")
)
