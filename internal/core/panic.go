package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"kgaq/internal/faultinject"
	"kgaq/internal/query"
)

// ErrInternal reports a panic inside query execution, converted into an
// error at the engine boundary so one bad query cannot take the process
// down. Match with errors.Is; the concrete *InternalError carries the
// query, the panic value and the goroutine stack.
var ErrInternal = errors.New("internal error")

// InternalError is the typed form of a contained panic.
type InternalError struct {
	// Query is the query being executed when the panic fired ("" if the
	// panic predates query binding).
	Query string
	// Panic is the recovered panic value.
	Panic any
	// Stack is the stack of the panicking goroutine.
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.Query == "" {
		return fmt.Sprintf("internal error: panic: %v", e.Panic)
	}
	return fmt.Sprintf("internal error: panic executing %q: %v", e.Query, e.Panic)
}

func (e *InternalError) Unwrap() error { return ErrInternal }

// catchPanics is the deferred guard on every exported engine entry point:
// it converts a panic into an *InternalError assigned through err, leaving
// the engine itself untouched and usable. A panic captured on a worker
// goroutine (rethrown as *capturedPanic) keeps its original stack. Both
// variants call recover() directly — recover only works in the immediate
// deferred frame.
func (x *Execution) catchPanics(err *error) {
	if r := recover(); r != nil {
		*err = toInternal(x.queryString(), r)
	}
}

func catchPanics(query string, err *error) {
	if r := recover(); r != nil {
		*err = toInternal(query, r)
	}
}

func toInternal(query string, r any) error {
	if c, ok := r.(*capturedPanic); ok {
		return &InternalError{Query: query, Panic: c.val, Stack: c.stack}
	}
	return &InternalError{Query: query, Panic: r, Stack: debug.Stack()}
}

func (x *Execution) queryString() string {
	if x == nil {
		return ""
	}
	return aggString(x.q)
}

func aggString(q *query.Aggregate) string {
	if q == nil {
		return ""
	}
	return q.String()
}

// capturedPanic carries a panic across a goroutine boundary: worker
// goroutines recover into a panicBox, and the coordinating goroutine
// rethrows after the WaitGroup settles so the entry-point guard converts
// it with the worker's own stack.
type capturedPanic struct {
	val   any
	stack []byte
}

// panicBox collects the first panic among a set of worker goroutines.
type panicBox struct {
	p atomic.Pointer[capturedPanic]
}

// capture is deferred inside each worker goroutine.
func (b *panicBox) capture() {
	if r := recover(); r != nil {
		if c, ok := r.(*capturedPanic); ok {
			b.p.CompareAndSwap(nil, c)
			return
		}
		b.p.CompareAndSwap(nil, &capturedPanic{val: r, stack: debug.Stack()})
	}
}

// rethrow re-raises the captured panic (if any) on the calling goroutine.
// Call after the workers' WaitGroup has settled.
func (b *panicBox) rethrow() {
	if c := b.p.Load(); c != nil {
		panic(c)
	}
}

// fireValidatePoint is the faultinject seam the chaos suite uses to panic
// inside candidate validation.
func fireValidatePoint() {
	if faultinject.Enabled() {
		if err := faultinject.Fire("core.validate"); err != nil {
			panic(err)
		}
	}
}
