package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"kgaq/internal/live"
	"kgaq/internal/query"
)

// An EpochPin plan (the default) keeps serving its Prepare-time snapshot
// while writers move the store on: repeat executions are deterministic and
// stale by design, and a WithMinEpoch above the pin fails with
// ErrEpochNotReached rather than silently serving old data.
func TestPreparedEpochPinStaysPinned(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.05, Seed: 3})
	ctx := context.Background()

	p, err := e.Prepare(ctx, regionQuery(query.Count, "", "B"))
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Epoch != 0 || before.Candidates != 8 {
		t.Fatalf("baseline: epoch %d candidates %d, want 0/8", before.Epoch, before.Candidates)
	}

	snap, err := st.Apply(live.Batch{
		live.AddEntity("Car_B_pin", "Automobile"),
		live.AddEdge("RootB", "product", "Car_B_pin"),
		live.SetAttr("Car_B_pin", "price", 50000),
	})
	if err != nil {
		t.Fatal(err)
	}

	after, err := p.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != 0 || after.Candidates != 8 {
		t.Fatalf("pinned plan moved: epoch %d candidates %d, want 0/8", after.Epoch, after.Candidates)
	}
	if _, err := p.Query(ctx, WithMinEpoch(snap.Epoch())); !errors.Is(err, ErrEpochNotReached) {
		t.Fatalf("min_epoch above the pin: err = %v, want ErrEpochNotReached", err)
	}
	if got := p.Plan(); got.Epoch != 0 || got.Rebuilds != 0 {
		t.Fatalf("plan metadata moved: %+v", got)
	}
	// A one-shot query (which pins per call) sees the write, proving the
	// staleness is the plan's, not the engine's.
	fresh, err := e.Query(ctx, regionQuery(query.Count, "", "B"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Candidates != 9 {
		t.Fatalf("one-shot candidates = %d, want 9", fresh.Candidates)
	}
}

// An EpochRepin plan follows the store: a mutation between executions
// triggers exactly one transparent rebuild (cheap for untouched scopes via
// the stage cache), the result observes the new epoch, and WithMinEpoch
// waits-and-rebuilds instead of failing.
func TestPreparedEpochRepinFollowsWrites(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.05, Seed: 3})
	ctx := context.Background()

	p, err := e.Prepare(ctx, regionQuery(query.Count, "", "B"), WithEpochPolicy(EpochRepin))
	if err != nil {
		t.Fatal(err)
	}
	if before, err := p.Query(ctx); err != nil || before.Candidates != 8 {
		t.Fatalf("baseline: %v / %+v", err, before)
	}

	snap, err := st.Apply(live.Batch{
		live.AddEntity("Car_B_repin", "Automobile"),
		live.AddEdge("RootB", "product", "Car_B_repin"),
		live.SetAttr("Car_B_repin", "price", 61000),
	})
	if err != nil {
		t.Fatal(err)
	}

	after, err := p.Query(ctx, WithMinEpoch(snap.Epoch()))
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch < snap.Epoch() {
		t.Fatalf("repin result epoch %d below %d", after.Epoch, snap.Epoch())
	}
	if after.Candidates != 9 {
		t.Fatalf("repin candidates = %d, want 9 (observes the write)", after.Candidates)
	}
	info := p.Plan()
	if info.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", info.Rebuilds)
	}
	if info.Epoch != snap.Epoch() {
		t.Fatalf("plan epoch = %d, want %d", info.Epoch, snap.Epoch())
	}
	// Stable store: no further rebuilds on repeat execution.
	if _, err := p.Query(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.Plan().Rebuilds; got != 1 {
		t.Fatalf("rebuilds after stable repeat = %d, want 1", got)
	}
}

// Plan reuse under concurrent mutation (-race): an EpochPin and an
// EpochRepin plan execute from many goroutines while a writer churns the
// same region. The pinned plan must keep reporting its frozen epoch's
// candidate count; the repinning plan must always observe a consistent
// (monotone) snapshot.
func TestPreparedConcurrentMutateWhileQuery(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.10, Seed: 21})
	ctx := context.Background()

	pinned, err := e.Prepare(ctx, regionQuery(query.Count, "", "B"))
	if err != nil {
		t.Fatal(err)
	}
	repin, err := e.Prepare(ctx, regionQuery(query.Avg, "price", "B"), WithEpochPolicy(EpochRepin))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("Churn_P%d", i%32)
			if _, err := st.Apply(live.Batch{
				live.AddEntity(name, "Automobile"),
				live.AddEdge("RootB", "product", name),
				live.SetAttr(name, "price", float64(10000+i)),
			}); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := pinned.Query(ctx, WithSeed(int64(w*10+i+1)))
				if err != nil {
					t.Errorf("pinned[%d/%d]: %v", w, i, err)
					continue
				}
				if res.Epoch != 0 || res.Candidates != 8 {
					t.Errorf("pinned[%d/%d]: epoch %d candidates %d, want 0/8", w, i, res.Epoch, res.Candidates)
				}
				mres, err := repin.Query(ctx, WithSeed(int64(w*10+i+1)))
				if err != nil {
					t.Errorf("repin[%d/%d]: %v", w, i, err)
					continue
				}
				if mres.Candidates < 8 {
					t.Errorf("repin[%d/%d]: candidates %d below region floor", w, i, mres.Candidates)
				}
				if math.IsNaN(mres.Estimate) {
					t.Errorf("repin[%d/%d]: NaN estimate", w, i)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	writer.Wait()
}

// QueryMulti on a live plan keeps the whole multi-aggregate refinement on
// one pinned epoch: every spec's estimate describes the same snapshot even
// while writes land mid-refinement.
func TestPreparedQueryMultiPinnedEpoch(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.10, Seed: 5})
	ctx := context.Background()
	p, err := e.Prepare(ctx, regionQuery(query.Count, "", "B"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(live.Batch{
		live.AddEntity("Car_B_multi", "Automobile"),
		live.AddEdge("RootB", "product", "Car_B_multi"),
		live.SetAttr("Car_B_multi", "price", 70000),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := p.QueryMulti(ctx, []AggSpec{
		{Func: query.Count},
		{Func: query.Avg, Attr: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 0 || res.Candidates != 8 {
		t.Fatalf("multi on pinned plan: epoch %d candidates %d, want 0/8", res.Epoch, res.Candidates)
	}
}
