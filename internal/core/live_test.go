package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/live"
	"kgaq/internal/query"
)

// twoRegionFixture builds a graph with two connected components ("A" and
// "B"), each a Country root with Automobile products, so the two roots'
// 3-hop walk scopes are provably disjoint — the setting the selective
// cache invalidation tests need.
func twoRegionFixture(t *testing.T) (*kg.Graph, *embedding.PredVectors) {
	t.Helper()
	b := kg.NewBuilder()
	for _, region := range []string{"A", "B"} {
		root := b.AddNode("Root"+region, "Country")
		for i := 0; i < 8; i++ {
			car := b.AddNode(fmt.Sprintf("Car_%s%d", region, i), "Automobile")
			if err := b.AddEdge(root, "product", car); err != nil {
				t.Fatal(err)
			}
			if err := b.SetAttr(car, "price", float64(10000+1000*i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	m, err := embedding.NewOracle(g, 32, 7, []embedding.Cluster{{
		Name:     "producedIn",
		Affinity: map[string]float64{"product": 1.0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func regionQuery(fn query.AggFunc, attr, region string) *query.Aggregate {
	return query.Simple(fn, attr, "Root"+region, "Country", "product", "Automobile")
}

func liveEngine(t *testing.T, opts Options) (*Engine, *live.Store) {
	t.Helper()
	g, m := twoRegionFixture(t)
	st := live.NewStore(g, 0)
	e, err := NewLiveEngine(st, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, st
}

// A mutation in one region must evict only that region's cached stages:
// the disjoint root keeps hitting, the mutated root rebuilds and observes
// the write.
func TestLiveSelectiveInvalidation(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.05, Seed: 3})
	ctx := context.Background()

	if _, err := e.Query(ctx, regionQuery(query.Count, "", "A")); err != nil {
		t.Fatal(err)
	}
	resB, err := e.Query(ctx, regionQuery(query.Count, "", "B"))
	if err != nil {
		t.Fatal(err)
	}
	warm := e.CacheStats()

	// Mutate region B: attach a new automobile to RootB.
	snapB, err := st.Apply(live.Batch{
		live.AddEntity("Car_B_new", "Automobile"),
		live.AddEdge("RootB", "product", "Car_B_new"),
		live.SetAttr("Car_B_new", "price", 99000),
	})
	ep := snapB.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	st1 := e.CacheStats()
	if st1.Invalidated == 0 {
		t.Fatal("mutation inside a cached scope invalidated nothing")
	}
	if st1.Entries >= warm.Entries && warm.Entries > 0 {
		t.Fatalf("expected selective eviction, entries %d → %d", warm.Entries, st1.Entries)
	}

	// Region A is untouched: its stage must still hit.
	if _, err := e.Query(ctx, regionQuery(query.Count, "", "A")); err != nil {
		t.Fatal(err)
	}
	st2 := e.CacheStats()
	if st2.Hits <= st1.Hits {
		t.Fatalf("query on the untouched root missed the cache (hits %d → %d)", st1.Hits, st2.Hits)
	}

	// Region B must rebuild and see the new candidate at min_epoch.
	resB2, err := e.Query(ctx, regionQuery(query.Count, "", "B"), WithMinEpoch(ep))
	if err != nil {
		t.Fatal(err)
	}
	if resB2.Epoch < ep {
		t.Fatalf("result epoch %d below min_epoch %d", resB2.Epoch, ep)
	}
	if resB2.Candidates != resB.Candidates+1 {
		t.Fatalf("candidates %d after write, want %d", resB2.Candidates, resB.Candidates+1)
	}
}

// Attribute-only updates must not invalidate cached stages — the stage holds
// no attribute data — yet queries observe the new values immediately,
// because observations read attributes from the query's snapshot.
func TestLiveAttrUpdateKeepsCacheButChangesEstimate(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.02, Seed: 5})
	ctx := context.Background()

	res1, err := e.Query(ctx, regionQuery(query.Max, "price", "A"))
	if err != nil {
		t.Fatal(err)
	}
	warm := e.CacheStats()

	snapA, err := st.Apply(live.Batch{live.SetAttr("Car_A0", "price", 1_000_000)})
	ep := snapA.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	st1 := e.CacheStats()
	if st1.Invalidated != warm.Invalidated {
		t.Fatal("attribute-only update invalidated cached stages")
	}

	res2, err := e.Query(ctx, regionQuery(query.Max, "price", "A"), WithMinEpoch(ep))
	if err != nil {
		t.Fatal(err)
	}
	if e.CacheStats().Hits <= warm.Hits {
		t.Fatal("attr update should have left the stage cached")
	}
	if res2.Estimate <= res1.Estimate || res2.Estimate != 1_000_000 {
		t.Fatalf("MAX(price) = %v after raising a price to 1e6 (was %v)", res2.Estimate, res1.Estimate)
	}
}

// WithMinEpoch on a static engine can never be satisfied for epochs > 0.
func TestStaticEngineMinEpoch(t *testing.T) {
	g := kgtest.Figure1()
	e, err := NewEngine(g, figure1Model(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Query(context.Background(), avgPriceQuery(), WithMinEpoch(3))
	if !errors.Is(err, ErrEpochNotReached) {
		t.Fatalf("err = %v, want ErrEpochNotReached", err)
	}
}

// WithMinEpoch on a live engine waits for the store; a cancelled wait
// reports ErrInterrupted.
func TestLiveMinEpochWaits(t *testing.T) {
	e, st := liveEngine(t, Options{Seed: 2})

	go func() {
		time.Sleep(10 * time.Millisecond)
		if _, err := st.Apply(live.Batch{live.SetAttr("Car_A1", "price", 123)}); err != nil {
			panic(err)
		}
	}()
	res, err := e.Query(context.Background(), regionQuery(query.Avg, "price", "A"), WithMinEpoch(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch < 1 {
		t.Fatalf("result epoch %d, want ≥ 1", res.Epoch)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = e.Query(ctx, regionQuery(query.Avg, "price", "A"), WithMinEpoch(999))
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// Compaction must fold the delta without moving the epoch and rewarm the
// stages the preceding mutations evicted, off the query path.
func TestLiveCompactionRewarm(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.05, Seed: 11})
	ctx := context.Background()

	if _, err := e.Query(ctx, regionQuery(query.Count, "", "B")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(live.Batch{
		live.AddEntity("Car_B_x", "Automobile"),
		live.AddEdge("RootB", "product", "Car_B_x"),
	}); err != nil {
		t.Fatal(err)
	}
	if e.CacheStats().Invalidated == 0 {
		t.Fatal("setup: mutation did not invalidate the B stage")
	}
	ev, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("compaction skipped")
	}
	before := e.CacheStats()
	if before.Entries == 0 {
		t.Fatal("rewarm left the cache empty")
	}
	res, err := e.Query(ctx, regionQuery(query.Count, "", "B"))
	if err != nil {
		t.Fatal(err)
	}
	after := e.CacheStats()
	if after.Hits <= before.Hits {
		t.Fatal("query after compaction missed the rewarmed stage")
	}
	if res.Candidates != 9 {
		t.Fatalf("rewarmed stage reports %d candidates, want 9", res.Candidates)
	}
}

// Writers batching mutations while QueryBatch runs: every query must either
// succeed against a consistent epoch or report a typed error; cancellation
// mid-churn must surface ErrInterrupted; and the cache must keep serving
// verdict-shared hits for the untouched region. Run with -race.
func TestLiveConcurrentMutateWhileQuery(t *testing.T) {
	e, st := liveEngine(t, Options{ErrorBound: 0.05, Seed: 17})
	ctx := context.Background()

	// Warm region A so the reader side has a stable cached stage.
	if _, err := e.Query(ctx, regionQuery(query.Count, "", "A")); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: churn region B only
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("Churn_B%d", i%32)
			_, err := st.Apply(live.Batch{
				live.AddEntity(name, "Automobile"),
				live.AddEdge("RootB", "product", name),
				live.SetAttr(name, "price", float64(i)),
			})
			if err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	qs := make([]*query.Aggregate, 0, 24)
	for i := 0; i < 12; i++ {
		qs = append(qs, regionQuery(query.Count, "", "A"), regionQuery(query.Avg, "price", "B"))
	}
	results := e.QueryBatch(ctx, qs)
	for i, br := range results {
		if br.Err != nil {
			t.Errorf("batch[%d]: %v", i, br.Err)
			continue
		}
		// Snapshot consistency: candidate count must correspond to exactly
		// one epoch's region-B population (9 base-less-one… is impossible:
		// region B only grows), so it is monotone in the observed epoch.
		if br.Result.Candidates < 8 {
			t.Errorf("batch[%d]: %d candidates, below the region floor", i, br.Result.Candidates)
		}
		if math.IsNaN(br.Result.Estimate) {
			t.Errorf("batch[%d]: NaN estimate", i)
		}
	}

	// Cancellation mid-churn keeps the ErrInterrupted semantics.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Query(cctx, regionQuery(query.Count, "", "B")); !errors.Is(err, ErrInterrupted) {
		t.Errorf("cancelled query under churn: err = %v, want ErrInterrupted", err)
	}

	close(stop)
	wg.Wait()

	// The untouched region's stage must have survived the whole churn.
	before := e.CacheStats()
	if _, err := e.Query(ctx, regionQuery(query.Count, "", "A")); err != nil {
		t.Fatal(err)
	}
	if after := e.CacheStats(); after.Hits <= before.Hits {
		t.Fatal("region-A stage lost during disjoint churn")
	}
}

func figure1Model(t *testing.T, g *kg.Graph) *embedding.PredVectors {
	t.Helper()
	m, err := embedding.NewOracle(g, 64, 271828, []embedding.Cluster{{
		Name:     "producedIn",
		Affinity: kgtest.Figure1Affinities(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}
