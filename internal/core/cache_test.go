package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"kgaq/internal/datagen"
	"kgaq/internal/kg"
	"kgaq/internal/query"
)

func cacheTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	ds, err := datagen.Generate(datagen.TinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds.Graph, ds.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Repeated identical queries must hit the answer-space cache: the second
// run skips walker construction and convergence entirely, which the miss
// counter staying flat proves (a second miss would mean a rebuild).
func TestCacheHitOnRepeatedQuery(t *testing.T) {
	e := cacheTestEngine(t, Options{Tau: 0.85, ErrorBound: 0.05})
	q := query.Simple(query.Count, "", "Country_0", "Country", "product", "Automobile")

	r1, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	after1 := e.CacheStats()
	if after1.Misses == 0 {
		t.Fatal("first query reported no cache miss")
	}
	if after1.Entries == 0 {
		t.Fatal("first query left nothing in the cache")
	}

	r2, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	after2 := e.CacheStats()
	if after2.Misses != after1.Misses {
		t.Fatalf("repeat query re-converged: misses %d → %d", after1.Misses, after2.Misses)
	}
	if after2.Hits <= after1.Hits {
		t.Fatalf("repeat query did not hit the cache: hits %d → %d", after1.Hits, after2.Hits)
	}
	if after2.HitRate() <= 0 {
		t.Fatalf("hit rate = %v, want > 0", after2.HitRate())
	}
	// Identical seed + cached space ⇒ identical result.
	if r1.Estimate != r2.Estimate || r1.SampleSize != r2.SampleSize {
		t.Fatalf("cached run diverged: %v/%d vs %v/%d", r1.Estimate, r1.SampleSize, r2.Estimate, r2.SampleSize)
	}
}

// The stage key covers what shapes the stationary distribution (root,
// predicate, types, walk config): a per-query tau override must HIT the
// cached convergence (verdicts live in a per-(τ, repeat) sub-map), while a
// changed hop bound must MISS (it changes the walk's scope).
func TestCacheKeySeparatesConfigs(t *testing.T) {
	e := cacheTestEngine(t, Options{Tau: 0.85, ErrorBound: 0.05})
	q := query.Simple(query.Count, "", "Country_0", "Country", "product", "Automobile")
	if _, err := e.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	base := e.CacheStats()

	if _, err := e.Query(context.Background(), q, WithTau(0.7)); err != nil {
		t.Fatal(err)
	}
	afterTau := e.CacheStats()
	if afterTau.Misses != base.Misses {
		t.Fatal("tau override re-converged instead of hitting the cached stage")
	}
	if afterTau.Hits <= base.Hits {
		t.Fatal("tau override did not hit the cached stage")
	}
	// The shared stage must keep the two validator configurations' verdicts
	// apart: one sub-map per (τ, repeat).
	e.cache.mu.Lock()
	vconfigs := 0
	for _, el := range e.cache.items {
		st := el.Value.(*cacheItem).entry
		st.mu.Lock()
		if n := len(st.verdicts); n > vconfigs {
			vconfigs = n
		}
		st.mu.Unlock()
	}
	e.cache.mu.Unlock()
	if vconfigs < 2 {
		t.Fatalf("stage holds %d verdict configurations, want 2 (τ=0.85 and τ=0.7)", vconfigs)
	}

	if _, err := e.Query(context.Background(), q, WithHopBound(2)); err != nil {
		t.Fatal(err)
	}
	afterN := e.CacheStats()
	if afterN.Misses == afterTau.Misses {
		t.Fatal("hop-bound override was served a stage with the wrong scope")
	}
}

// The LRU must stay within its byte bound, evicting least-recently-used
// stages, and lookups must keep working after eviction.
func TestCacheLRUEviction(t *testing.T) {
	c := newSpaceCache(24_000)
	mkEntry := func() *stageEntry {
		// ~6 KB per entry under the newStageEntry cost model.
		answers := make([]kg.NodeID, 32)
		probs := make([]float64, 32)
		pi := make(map[kg.NodeID]float64, 32)
		for i := range answers {
			answers[i] = kg.NodeID(i)
			pi[kg.NodeID(i)] = 1.0 / 32
		}
		return newStageEntry(answers, probs, pi, 0, nil, nil)
	}
	keyOf := func(i int) stageKey { return stageKey{root: kg.NodeID(i), types: "[]"} }

	const total = 12
	for i := 0; i < total; i++ {
		c.put(keyOf(i), mkEntry())
		if st := c.stats(); st.Bytes > st.MaxBytes {
			t.Fatalf("cache exceeded its bound after insert %d: %d > %d", i, st.Bytes, st.MaxBytes)
		}
	}
	st := c.stats()
	if st.Entries >= total {
		t.Fatalf("no eviction happened: %d entries resident", st.Entries)
	}
	if st.Entries == 0 {
		t.Fatal("eviction removed everything")
	}
	// The oldest keys are gone, the newest still resident.
	if c.get(keyOf(0), 0) != nil {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if c.get(keyOf(total-1), 0) == nil {
		t.Fatal("most-recently-used entry was evicted")
	}
	// Touching an old-but-resident key must protect it from the next round
	// of evictions.
	var protected stageKey
	for i := 0; i < total; i++ {
		if c.get(keyOf(i), 0) != nil {
			protected = keyOf(i)
			break
		}
	}
	if c.get(protected, 0) == nil {
		t.Fatal("no resident entry found to protect")
	}
	// Inserting one fewer than the resident count must evict only the
	// untouched entries; the just-promoted one survives.
	for i := 0; i < st.Entries-1; i++ {
		c.put(keyOf(total+i), mkEntry())
	}
	if c.get(protected, 0) == nil {
		t.Fatal("recently-touched entry was evicted before older ones")
	}
}

// The per-stage verdict maps are bounded: cycling through more validator
// configurations than maxVerdictConfigs resets the maps instead of growing
// past the memory the LRU budget charged for them.
func TestVerdictConfigsBounded(t *testing.T) {
	st := newStageEntry([]kg.NodeID{1, 2}, []float64{0.5, 0.5}, map[kg.NodeID]float64{1: 0.5, 2: 0.5}, 0, nil, nil)
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := 0; i < 5*maxVerdictConfigs; i++ {
		m := st.verdictsFor(verdictKey{tau: 0.5 + float64(i)/1000, repeat: 3})
		m.put(1, true)
		if len(st.verdicts) > maxVerdictConfigs {
			t.Fatalf("verdict configs grew to %d (cap %d)", len(st.verdicts), maxVerdictConfigs)
		}
	}
	// An existing config is returned, not reset.
	k := verdictKey{tau: 0.9, repeat: 3}
	st.verdictsFor(k).put(2, true)
	if v, ok := st.verdictsFor(k).get(2); !ok || !v {
		t.Fatal("existing verdict config was reset on re-access")
	}
}

// put must be idempotent under racing builders: the first insert wins and
// later puts return the canonical entry.
func TestCachePutReturnsCanonicalEntry(t *testing.T) {
	c := newSpaceCache(1 << 20)
	key := stageKey{root: 1, types: "[]"}
	a := newStageEntry([]kg.NodeID{1}, []float64{1}, map[kg.NodeID]float64{1: 1}, 0, nil, nil)
	b := newStageEntry([]kg.NodeID{1}, []float64{1}, map[kg.NodeID]float64{1: 1}, 0, nil, nil)
	if got := c.put(key, a); got != a {
		t.Fatal("first put did not return its own entry")
	}
	if got := c.put(key, b); got != a {
		t.Fatal("second put did not return the canonical first entry")
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// A negative CacheMaxBytes disables the cache without breaking queries.
func TestCacheDisabled(t *testing.T) {
	e := cacheTestEngine(t, Options{Tau: 0.85, ErrorBound: 0.05, CacheMaxBytes: -1})
	q := query.Simple(query.Count, "", "Country_0", "Country", "product", "Automobile")
	if _, err := e.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.MaxBytes != -1 || st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache reported activity: %+v", st)
	}
}

// Hammer one cached answer space from many goroutines with mixed Query and
// QueryBatch traffic; run under -race this checks the shared similarity
// matrix, the LRU bookkeeping and the shared verdict caches.
func TestCacheConcurrentHammer(t *testing.T) {
	e := cacheTestEngine(t, Options{Tau: 0.85, ErrorBound: 0.05, MaxDraws: 400})
	mkQuery := func(i int) *query.Aggregate {
		// Three distinct hot queries cycling through one shared cache.
		root := fmt.Sprintf("Country_%d", i%3)
		return query.Simple(query.Count, "", root, "Country", "product", "Automobile")
	}

	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 6; i++ {
				if (w+i)%2 == 0 {
					if _, err := e.Query(ctx, mkQuery(i), WithSeed(int64(w*100+i+1))); err != nil {
						errCh <- err
						return
					}
				} else {
					qs := []*query.Aggregate{mkQuery(i), mkQuery(i + 1)}
					for _, br := range e.QueryBatch(ctx, qs, WithSeed(int64(w*100+i+1))) {
						if br.Err != nil {
							errCh <- br.Err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("concurrent hammer produced no cache hits: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
}
