package core

import (
	"context"
	"math"
	"time"
)

// DefaultDeadlineHeadroom is the safety margin a degradation-enabled
// refinement keeps between its last observed round cost and the context
// deadline (Degradation.DeadlineHeadroom zero value).
const DefaultDeadlineHeadroom = 25 * time.Millisecond

// Degradation configures graceful degradation of the guarantee loop. The
// paper's accuracy machinery makes every refinement round a complete,
// honest answer: after any round the execution holds a point estimate with
// a valid 1-α confidence interval — just a looser one than the requested
// error bound may demand. Under deadline pressure it is therefore
// principled to stop refining early and report the (achieved eb, α) bound
// actually reached, instead of being cancelled mid-round and salvaging a
// partial result. A serving tier under load uses exactly this contract:
// relax the effective bound instead of queueing (see internal/admission).
//
// Degradation never loosens what is reported — Result.MoE is always the
// honest interval of the returned sample, Result.Converged still refers to
// the requested bound, and Result.Degraded marks the early stop.
type Degradation struct {
	// MaxErrorBound is the honesty floor: the loosest relative error bound
	// a degraded execution is allowed to aim for. Zero disables degradation
	// entirely; the loop then refines to the requested bound or its budget.
	MaxErrorBound float64
	// DeadlineHeadroom is the stop margin: the loop degrades once the time
	// remaining to the context deadline drops below the previous round's
	// cost plus this headroom (another round would likely be cut short).
	// Zero means DefaultDeadlineHeadroom.
	DeadlineHeadroom time.Duration
}

func (d Degradation) enabled() bool { return d.MaxErrorBound > 0 }

func (d Degradation) headroom() time.Duration {
	if d.DeadlineHeadroom > 0 {
		return d.DeadlineHeadroom
	}
	return DefaultDeadlineHeadroom
}

// shouldStop reports whether a refinement loop that just spent lastRound on
// its latest round should degrade now rather than start another round: the
// context deadline is closer than one more round plus the headroom.
func (d Degradation) shouldStop(ctx context.Context, lastRound time.Duration) bool {
	if !d.enabled() {
		return false
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return false
	}
	return time.Until(deadline) < lastRound+d.headroom()
}

// ShouldStop reports whether a refinement loop that just spent lastRound on
// its latest round should degrade now rather than start another: the
// context deadline is closer than one more round plus the headroom. It is
// the exported form of the engine's own deadline-degradation check, shared
// with the federated round driver (internal/federate).
func (d Degradation) ShouldStop(ctx context.Context, lastRound time.Duration) bool {
	return d.shouldStop(ctx, lastRound)
}

// Enabled reports whether this configuration permits degradation at all (a
// zero MaxErrorBound disables it). The federated coordinator uses it to
// decide between a typed partial-federation failure and an honestly
// degraded answer when a member dies mid-query.
func (d Degradation) Enabled() bool { return d.enabled() }

// AchievedEB returns the relative error bound the result's interval
// actually attains — the smallest eb for which the Theorem 2 condition
// ε ≤ |V̂|·eb/(1+eb) holds. It is +Inf when the interval is wider than the
// estimate (no finite relative bound is honest) and 0 for an exact answer.
// A degraded response stays statistically sound precisely because this
// value, not the requested bound, is what the interval guarantees.
func (r *Result) AchievedEB() float64 { return achievedEB(r.Estimate, r.MoE) }

// AchievedEB returns the relative error bound this aggregate's interval
// actually attains (see Result.AchievedEB).
func (a *AggResult) AchievedEB() float64 { return achievedEB(a.Estimate, a.MoE) }

// achievedEB inverts the Theorem 2 target ε = |V̂|·eb/(1+eb) for eb:
// eb = ε/(|V̂|−ε), clamped to +Inf when ε ≥ |V̂| or the inputs are NaN.
func achievedEB(v, moe float64) float64 {
	av := math.Abs(v)
	switch {
	case math.IsNaN(v), math.IsNaN(moe), moe < 0:
		return math.Inf(1)
	case moe == 0:
		if av == 0 {
			return math.Inf(1)
		}
		return 0
	case moe >= av:
		return math.Inf(1)
	default:
		return moe / (av - moe)
	}
}
