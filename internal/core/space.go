package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"kgaq/internal/kg"
	"kgaq/internal/obs"
	"kgaq/internal/query"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
	"kgaq/internal/walk"
)

// maxChainIntermediates caps the number of stage-one entities expanded per
// chain hop. The paper's two-stage sampling runs "till enough automobiles
// are obtained"; expanding the highest-π intermediates first preserves the
// bulk of the probability mass while bounding work.
const maxChainIntermediates = 300

// answerSpace is the sampling space of one query execution: the candidate
// answers A with their exact per-draw probabilities π′ (Theorem 1), plus a
// lazily evaluated, cached correctness oracle combining the τ threshold and
// the greedy validation of §IV-B2.
//
// The oracle closures accept a ctx so a cancelled query can abandon an
// in-flight validation; verdicts are only cached when the validation ran to
// completion, so a cancelled call never poisons the cache with false
// negatives.
//
// answers, probs, alias and the oracle are immutable after construction —
// the compiled-plan half a Prepared shares across executions; verdicts is a
// per-execution cache, renewed by fork, so concurrent executions of one
// plan never write the same array. (The semantic oracle's own caches live
// on the engine's stage entries, guarded by their mutex.)
type answerSpace struct {
	answers []kg.NodeID
	probs   []float64 // sums to 1
	alias   *stats.Alias
	// oracle is the per-answer correctness machinery; the batch form, when
	// set, validates many answers in one shared search so a round's worth of
	// fresh answers costs one traversal instead of one per answer.
	oracle correctOracle
	// verdicts caches per-index validation outcomes, one byte per candidate
	// (verdictUnknown / verdictIncorrect / verdictCorrect). The flat probe
	// replaced a map lookup on the per-draw observation path, which runs
	// |S| times per refinement round.
	verdicts []uint8
}

// Per-candidate verdict-cache states.
const (
	verdictUnknown uint8 = iota
	verdictIncorrect
	verdictCorrect
)

func (s *answerSpace) len() int { return len(s.answers) }

// fork returns an execution-private view of the space: the immutable parts
// (candidate answers, probabilities, alias table, correctness oracle) are
// shared, the per-execution verdict cache starts fresh. This is what makes
// a Prepared safe for concurrent Start calls.
func (s *answerSpace) fork() *answerSpace {
	return &answerSpace{
		answers: s.answers, probs: s.probs, alias: s.alias, oracle: s.oracle,
		verdicts: make([]uint8, len(s.answers)),
	}
}

// setVerdict caches a completed validation outcome for index i.
func (s *answerSpace) setVerdict(i int, v bool) {
	if v {
		s.verdicts[i] = verdictCorrect
	} else {
		s.verdicts[i] = verdictIncorrect
	}
}

// correctness returns the validated semantic correctness (similarity ≥ τ
// through validation) for the answer at index i, caching completed
// verdicts on the execution.
func (s *answerSpace) correctness(ctx context.Context, i int) bool {
	if v := s.verdicts[i]; v != verdictUnknown {
		return v == verdictCorrect
	}
	v := s.oracle.single(ctx, s.answers[i])
	if ctx.Err() != nil {
		return false // incomplete validation: no verdict, no cache entry
	}
	s.setVerdict(i, v)
	return v
}

// drawInto appends k alias-table draws to dst and returns it; callers pass
// a reused scratch buffer so the per-round draw batch allocates nothing
// once warm.
func (s *answerSpace) drawInto(dst []int, r *rand.Rand, k int) []int {
	for j := 0; j < k; j++ {
		dst = append(dst, s.alias.Draw(r))
	}
	return dst
}

// prevalidate batch-validates every not-yet-validated answer appearing in
// the draw list, queueing the distinct fresh indices through the scratch
// work buffers. Without a batch validator it is a no-op (the per-answer
// oracle runs lazily instead). A ctx cancellation mid-batch discards the
// incomplete verdicts instead of caching them.
func (s *answerSpace) prevalidate(ctx context.Context, drawIdx []int, scr *execScratch) {
	if s.oracle.batch == nil {
		return
	}
	scr.beginMarks(len(s.answers))
	fresh := scr.freshNodes[:0]
	freshIdx := scr.freshIdx[:0]
	for _, i := range drawIdx {
		if !scr.mark(i) {
			continue
		}
		if s.verdicts[i] == verdictUnknown {
			fresh = append(fresh, s.answers[i])
			freshIdx = append(freshIdx, i)
		}
	}
	scr.freshNodes, scr.freshIdx = fresh, freshIdx
	if len(fresh) == 0 {
		return
	}
	res := s.oracle.batch(ctx, fresh)
	if ctx.Err() != nil {
		return
	}
	for k, i := range freshIdx {
		s.setVerdict(i, res[fresh[k]])
	}
}

// buildMetrics counts answer-space build work, the raw material of a
// prepared plan's introspection (PlanInfo.CacheHits / CacheBuilt). Counters
// are atomic because chain builds fan out over the engine's worker pool. A
// nil *buildMetrics is a valid no-op sink.
type buildMetrics struct {
	hits  atomic.Int64 // converged stages served from the engine cache
	built atomic.Int64 // stages converged fresh during this build
}

func (b *buildMetrics) hit() {
	if b != nil {
		b.hits.Add(1)
	}
}

func (b *buildMetrics) build() {
	if b != nil {
		b.built.Add(1)
	}
}

// buildSemanticSpace assembles the answer space for one decomposed path
// using the semantic-aware walker (§IV-A), recursively for chains (§V-B).
func (e *Engine) buildSemanticSpace(ctx context.Context, o Options, v view, p query.Path, bm *buildMetrics) (*answerSpace, error) {
	us, err := resolveRoot(v.g, p)
	if err != nil {
		return nil, err
	}
	pi, oracle, err := e.buildChainLevel(ctx, o, v, us, p.Hops, bm)
	if err != nil {
		return nil, err
	}
	return spaceFromMap(pi, oracle)
}

// correctOracle is the per-path correctness machinery: a per-answer verdict
// plus an optional batch form that shares one greedy search across many
// answers.
type correctOracle struct {
	single func(ctx context.Context, u kg.NodeID) bool
	batch  func(ctx context.Context, us []kg.NodeID) map[kg.NodeID]bool
}

// spaceFromMap normalises a π map into an answerSpace with deterministic
// answer order.
func spaceFromMap(pi map[kg.NodeID]float64, oracle correctOracle) (*answerSpace, error) {
	answers := make([]kg.NodeID, 0, len(pi))
	for u := range pi {
		answers = append(answers, u)
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i] < answers[j] })
	probs := make([]float64, len(answers))
	total := 0.0
	for i, u := range answers {
		probs[i] = pi[u]
		total += pi[u]
	}
	if len(answers) == 0 || total <= 0 {
		return nil, fmt.Errorf("core: no candidate answers with positive visiting probability")
	}
	for i := range probs {
		probs[i] /= total
	}
	alias := stats.NewAlias(probs)
	if alias == nil {
		return nil, fmt.Errorf("core: failed to build sampling table")
	}
	return &answerSpace{
		answers: answers, probs: probs, alias: alias, oracle: oracle,
		verdicts: make([]uint8, len(answers)),
	}, nil
}

// convergedStage returns the converged stage for (root, pred, types) under
// the walk configuration in o, consulting the engine's answer-space cache
// first. A miss builds the walker over the query's graph view, converges it
// and extracts π′, then publishes the stage for every later query with the
// same key; concurrent misses build independently and converge on the
// first-published entry.
//
// Epoch discipline: a cached stage is served only when its build epoch is
// at or below the view's (older is fine — mutation-scope invalidation
// guarantees nothing in the stage's bound changed since it was built); a
// fresh build is tagged with the view's epoch and its walk scope, the unit
// of selective invalidation.
func (e *Engine) convergedStage(ctx context.Context, o Options, v view,
	root kg.NodeID, pred kg.PredID, types []kg.TypeID, bm *buildMetrics) (*stageEntry, error) {

	key := stageKey{
		root:     root,
		pred:     pred,
		types:    typesKeyOf(types),
		n:        o.N,
		selfLoop: o.SelfLoopSim,
	}
	if st := e.cache.get(key, v.epoch); st != nil {
		bm.hit()
		return st, nil
	}
	bm.build()
	metStageBuilds.Inc()
	endSpan := obs.TraceFrom(ctx).Span("walk_converge")
	w, err := walk.New(v.g, e.calc, root, pred, walk.Config{N: o.N, SelfLoopSim: o.SelfLoopSim})
	if err != nil {
		endSpan()
		return nil, err
	}
	if _, err := w.ConvergeCtx(ctx); err != nil {
		endSpan()
		return nil, err
	}
	endSpan()
	dist, err := w.AnswerDistribution(types)
	if err != nil {
		return nil, fmt.Errorf("core: stage rooted at %q: %w", v.g.Name(root), err)
	}
	scope := append([]kg.NodeID(nil), w.Bound().Nodes...)
	sort.Slice(scope, func(i, j int) bool { return scope[i] < scope[j] })
	st := newStageEntry(dist.Answers, dist.Probs, w.PiMap(), v.epoch, scope, types)
	return e.cache.put(key, st), nil
}

// stageOracle builds the leg validator over one converged stage. The batch
// form runs one greedy search for a whole set of answers (§IV-B2's search
// is a single traversal recording paths to every requested answer).
// Verdicts live on the shared stage entry under the (τ, repeat) sub-map,
// guarded by its mutex, and are stored only when the search was not
// cancelled mid-flight; the validation itself runs outside the lock so
// concurrent queries never serialise on it.
func (e *Engine) stageOracle(o Options, v view, st *stageEntry,
	root kg.NodeID, pred kg.PredID) correctOracle {

	vcfg := semsim.ValidatorConfig{Repeat: o.Repeat, MaxLen: o.N, Tau: o.Tau}
	vkey := verdictKey{tau: o.Tau, repeat: o.Repeat}
	legBatch := func(ctx context.Context, us []kg.NodeID) map[kg.NodeID]bool {
		out := make(map[kg.NodeID]bool, len(us))
		var fresh []kg.NodeID
		st.mu.Lock()
		verdicts := st.verdictsFor(vkey)
		for _, u := range us {
			if v, ok := verdicts.get(u); ok {
				out[u] = v
			} else {
				fresh = append(fresh, u)
			}
		}
		st.mu.Unlock()
		if hits := len(us) - len(fresh); hits > 0 {
			metVerdictHits.Add(float64(hits))
			obs.TraceFrom(ctx).Add("verdict_cache_hits", float64(hits))
		}
		if len(fresh) > 0 && ctx.Err() == nil {
			metValidationCalls.Add(float64(len(fresh)))
			obs.TraceFrom(ctx).Add("validation_calls", float64(len(fresh)))
			res, _ := semsim.ValidateCtx(ctx, v.g, e.calc, root, pred, st.piMap, fresh, vcfg)
			if ctx.Err() == nil {
				st.mu.Lock()
				verdicts := st.verdictsFor(vkey)
				for _, u := range fresh {
					v, ok := verdicts.get(u)
					if !ok {
						v = res[u].Similarity >= o.Tau
						verdicts.put(u, v)
					}
					out[u] = v
				}
				st.mu.Unlock()
			}
		}
		return out
	}
	legOK := func(ctx context.Context, u kg.NodeID) bool {
		return legBatch(ctx, []kg.NodeID{u})[u]
	}
	return correctOracle{single: legOK, batch: legBatch}
}

// buildChainLevel returns the exact visiting distribution over the final
// hop's answers together with a lazy correctness oracle, recursing over the
// chain's hops: π(j) = Σᵢ π′ᵢ · π′ⱼ|ᵢ (§V-B), and an answer is correct when
// some intermediate chain validates every leg at the τ threshold.
func (e *Engine) buildChainLevel(ctx context.Context, o Options, v view, root kg.NodeID, hops []query.Hop, bm *buildMetrics) (map[kg.NodeID]float64, correctOracle, error) {
	none := correctOracle{}
	if len(hops) == 0 {
		return nil, none, fmt.Errorf("core: empty hop sequence")
	}
	pred, err := resolvePred(v.g, hops[0].Predicate)
	if err != nil {
		return nil, none, err
	}
	types, err := resolveTypes(v.g, hops[0].Types)
	if err != nil {
		return nil, none, err
	}
	st, err := e.convergedStage(ctx, o, v, root, pred, types, bm)
	if err != nil {
		return nil, none, err
	}
	oracle := e.stageOracle(o, v, st, root, pred)
	legOK := oracle.single

	if len(hops) == 1 {
		pi := make(map[kg.NodeID]float64, len(st.answers))
		for i, u := range st.answers {
			pi[u] = st.probs[i]
		}
		return pi, oracle, nil
	}

	// Multi-hop: expand the highest-probability intermediates, recursing
	// into the remaining hops from each.
	type inter struct {
		node kg.NodeID
		prob float64
	}
	inters := make([]inter, len(st.answers))
	for i, u := range st.answers {
		inters[i] = inter{node: u, prob: st.probs[i]}
	}
	sort.Slice(inters, func(a, b int) bool {
		if inters[a].prob != inters[b].prob {
			return inters[a].prob > inters[b].prob
		}
		return inters[a].node < inters[b].node
	})
	if len(inters) > maxChainIntermediates {
		inters = inters[:maxChainIntermediates]
	}

	// The per-intermediate recursions are independent, so they fan out over
	// the engine's worker pool. A worker slot is acquired opportunistically:
	// when the pool is saturated (e.g. many concurrent queries, or a deeper
	// recursion level already took the slots) the recursion simply runs
	// inline, which keeps the fan-out deadlock-free at any nesting depth.
	subPis := make([]map[kg.NodeID]float64, len(inters))
	subOracles := make([]correctOracle, len(inters))
	subErrs := make([]error, len(inters))
	var wg sync.WaitGroup
	var pb panicBox
	for i, in := range inters {
		if ctx.Err() != nil {
			break
		}
		build := func(i int, node kg.NodeID) {
			subPis[i], subOracles[i], subErrs[i] = e.buildChainLevel(ctx, o, v, node, hops[1:], bm)
		}
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func(i int, node kg.NodeID) {
				defer wg.Done()
				defer func() { <-e.sem }()
				defer pb.capture()
				build(i, node)
			}(i, in.node)
		default:
			build(i, in.node)
		}
	}
	wg.Wait()
	pb.rethrow()
	if err := ctx.Err(); err != nil {
		return nil, none, err
	}

	// Accumulate sequentially in intermediate order so the assembled π is
	// deterministic regardless of which goroutine finished first.
	pi := map[kg.NodeID]float64{}
	type subLevel struct {
		prob    float64
		node    kg.NodeID
		pi      map[kg.NodeID]float64
		correct correctOracle
	}
	var subs []subLevel
	for i, in := range inters {
		if subErrs[i] != nil || subPis[i] == nil {
			continue // an intermediate with no onward answers contributes nothing
		}
		for u, p := range subPis[i] {
			pi[u] += in.prob * p
		}
		subs = append(subs, subLevel{prob: in.prob, node: in.node, pi: subPis[i], correct: subOracles[i]})
	}
	if len(pi) == 0 {
		return nil, none, fmt.Errorf("core: chain stage rooted at %q found no final answers", v.g.Name(root))
	}

	correct := func(ctx context.Context, u kg.NodeID) bool {
		// Try intermediates by descending contribution to u's mass: the
		// most probable chains are checked first, mirroring the greedy
		// validation heuristic.
		order := make([]int, 0, len(subs))
		for i := range subs {
			if subs[i].pi[u] > 0 {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool {
			ca := subs[order[a]].prob * subs[order[a]].pi[u]
			cb := subs[order[b]].prob * subs[order[b]].pi[u]
			if ca != cb {
				return ca > cb
			}
			return subs[order[a]].node < subs[order[b]].node
		})
		for _, i := range order {
			if ctx.Err() != nil {
				return false
			}
			if legOK(ctx, subs[i].node) && subs[i].correct.single(ctx, u) {
				return true
			}
		}
		return false
	}
	return pi, correctOracle{single: correct}, nil
}

// buildAssemblySpace implements decomposition–assembly (§V-B): one sampling
// space per decomposed path, intersected. The assembled distribution is the
// normalised product of per-path visiting probabilities (an answer must be
// reachable by every constraint's walk), and an answer is correct only if
// every path validates it.
func (e *Engine) buildAssemblySpace(ctx context.Context, o Options, v view, paths []query.Path, bm *buildMetrics) (*answerSpace, error) {
	if len(paths) == 1 {
		return e.buildSemanticSpace(ctx, o, v, paths[0], bm)
	}
	type level struct {
		pi      map[kg.NodeID]float64
		correct correctOracle
	}
	levels := make([]level, 0, len(paths))
	for _, p := range paths {
		us, err := resolveRoot(v.g, p)
		if err != nil {
			return nil, err
		}
		pi, correct, err := e.buildChainLevel(ctx, o, v, us, p.Hops, bm)
		if err != nil {
			return nil, fmt.Errorf("core: sub-query rooted at %q: %w", p.RootName, err)
		}
		levels = append(levels, level{pi: pi, correct: correct})
	}
	inter := map[kg.NodeID]float64{}
	for u, p := range levels[0].pi {
		inter[u] = p
	}
	for _, lv := range levels[1:] {
		for u := range inter {
			if p, ok := lv.pi[u]; ok {
				inter[u] *= p
			} else {
				delete(inter, u)
			}
		}
	}
	if len(inter) == 0 {
		return nil, fmt.Errorf("core: decomposition–assembly intersection is empty")
	}
	// The assembled verdict is the conjunction over paths; the batch form
	// exists when every level has one.
	single := func(ctx context.Context, u kg.NodeID) bool {
		for _, lv := range levels {
			if !lv.correct.single(ctx, u) {
				return false
			}
		}
		return true
	}
	allBatch := true
	for _, lv := range levels {
		if lv.correct.batch == nil {
			allBatch = false
			break
		}
	}
	oracle := correctOracle{single: single}
	if allBatch {
		oracle.batch = func(ctx context.Context, us []kg.NodeID) map[kg.NodeID]bool {
			out := make(map[kg.NodeID]bool, len(us))
			for _, u := range us {
				out[u] = true
			}
			for _, lv := range levels {
				verdicts := lv.correct.batch(ctx, us)
				for _, u := range us {
					if !verdicts[u] {
						out[u] = false
					}
				}
			}
			return out
		}
	}
	return spaceFromMap(inter, oracle)
}

// buildTopologySpace assembles the answer space using a topology-only
// sampler (the Fig. 5a ablation). Only simple queries are supported — the
// ablation workload — and probabilities are the walker's empirical visit
// shares.
func (e *Engine) buildTopologySpace(ctx context.Context, o Options, v view, p query.Path, r *rand.Rand, k int) (*answerSpace, []int, error) {
	if len(p.Hops) != 1 {
		return nil, nil, fmt.Errorf("core: %v sampler supports simple queries only", o.Sampler)
	}
	us, err := resolveRoot(v.g, p)
	if err != nil {
		return nil, nil, err
	}
	types, err := resolveTypes(v.g, p.Hops[0].Types)
	if err != nil {
		return nil, nil, err
	}
	var ts *walk.TopologySample
	switch o.Sampler {
	case SamplerCNARW:
		ts, err = walk.CNARW(ctx, v.g, us, types, o.N, r, 200, k)
	case SamplerNode2Vec:
		ts, err = walk.Node2Vec(ctx, v.g, us, types, o.N, 1, 0.5, r, 200, k)
	default:
		return nil, nil, fmt.Errorf("core: buildTopologySpace called with sampler %v", o.Sampler)
	}
	if err != nil {
		return nil, nil, err
	}
	alias := stats.NewAlias(ts.Probs)
	if alias == nil {
		return nil, nil, fmt.Errorf("core: topology sample has no mass")
	}
	sp := &answerSpace{answers: ts.Answers, probs: ts.Probs, alias: alias,
		verdicts: make([]uint8, len(ts.Answers))}

	// Correctness still uses the greedy validator so the ablation isolates
	// the sampling step (S1) exactly as in Fig. 5a. The validator wants a
	// π map; the empirical shares serve. Verdict caching happens on the
	// execution's answerSpace verdict array, as for the semantic oracle.
	pred, err := resolvePred(v.g, p.Hops[0].Predicate)
	if err != nil {
		return nil, nil, err
	}
	piMap := map[kg.NodeID]float64{}
	for i, u := range ts.Answers {
		piMap[u] = ts.Probs[i]
	}
	sp.oracle.single = func(ctx context.Context, u kg.NodeID) bool {
		res, _ := semsim.ValidateCtx(ctx, v.g, e.calc, us, pred, piMap, []kg.NodeID{u},
			semsim.ValidatorConfig{Repeat: o.Repeat, MaxLen: o.N, Tau: o.Tau})
		if ctx.Err() != nil {
			return false
		}
		return res[u].Similarity >= o.Tau
	}
	return sp, ts.Draws, nil
}
