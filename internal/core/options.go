package core

import "kgaq/internal/estimate"

// queryConfig is the per-query execution configuration: the engine Options
// with any per-query overrides applied, plus call-scoped hooks that are not
// engine knobs (round streaming, batch parallelism).
type queryConfig struct {
	opts    Options
	onRound func(Round)
	// parallel bounds the QueryBatch worker pool (0 = GOMAXPROCS).
	parallel int
	// minEpoch is the oldest graph epoch this query may observe (0 = the
	// current snapshot, whatever its epoch).
	minEpoch uint64
	// epochPolicy governs how a prepared plan follows the live graph's
	// epochs (EpochPin by default).
	epochPolicy EpochPolicy
	// degrade configures deadline-aware graceful degradation of the
	// guarantee loop (disabled by default).
	degrade Degradation
}

// QueryOption overrides one engine-level option for a single Query, Start
// or QueryBatch call. The engine's own Options are never mutated, so one
// Engine can serve concurrent queries with different settings.
type QueryOption func(*queryConfig)

// queryConfig merges the engine defaults with per-query overrides and
// re-applies the paper defaults to any knob an option reset to zero.
func (e *Engine) queryConfig(opts []QueryOption) queryConfig {
	return mergeConfig(queryConfig{opts: e.opts}, opts)
}

// mergeConfig applies per-call overrides on top of a base configuration —
// the engine defaults for one-shot queries, the Prepare-time configuration
// for executions of a prepared plan.
func mergeConfig(base queryConfig, opts []QueryOption) queryConfig {
	cfg := base
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	cfg.opts = cfg.opts.withDefaults()
	return cfg
}

// WithOptions replaces the whole option block for this query (zero fields
// fall back to the paper defaults, not to the engine's configuration).
func WithOptions(o Options) QueryOption {
	return func(c *queryConfig) { c.opts = o }
}

// WithErrorBound sets the relative error bound eb for this query.
func WithErrorBound(eb float64) QueryOption {
	return func(c *queryConfig) { c.opts.ErrorBound = eb }
}

// WithConfidence sets the confidence level 1-α for this query.
func WithConfidence(conf float64) QueryOption {
	return func(c *queryConfig) { c.opts.Confidence = conf }
}

// WithTau sets the semantic-similarity threshold τ for this query.
func WithTau(tau float64) QueryOption {
	return func(c *queryConfig) { c.opts.Tau = tau }
}

// WithSeed makes this query's sampling deterministic under the given seed,
// independent of the engine seed and of concurrent queries.
func WithSeed(seed int64) QueryOption {
	return func(c *queryConfig) { c.opts.Seed = seed }
}

// WithSampler selects the sampling algorithm for this query.
func WithSampler(s SamplerKind) QueryOption {
	return func(c *queryConfig) { c.opts.Sampler = s }
}

// WithMaxDraws caps the total sample size for this query.
func WithMaxDraws(n int) QueryOption {
	return func(c *queryConfig) { c.opts.MaxDraws = n }
}

// WithMaxRounds caps the refinement rounds for this query.
func WithMaxRounds(n int) QueryOption {
	return func(c *queryConfig) { c.opts.MaxRounds = n }
}

// WithHopBound sets the walk-scope bound n for this query.
func WithHopBound(n int) QueryOption {
	return func(c *queryConfig) { c.opts.N = n }
}

// WithLambda sets the desired sample ratio λ for this query.
func WithLambda(l float64) QueryOption {
	return func(c *queryConfig) { c.opts.Lambda = l }
}

// WithShards overrides the shard count for this query: its candidate-answer
// space is cut into n hash-ownership strata, sampled and validated per
// shard, and merged through the stratified Horvitz–Thompson combiner.
// Requires the semantic sampler (topology-only ablation samplers carry
// empirical probabilities that do not stratify). n ≤ 1 runs unsharded.
func WithShards(n int) QueryOption {
	return func(c *queryConfig) { c.opts.Shards = n }
}

// WithPolicy selects the estimator divisor policy for this query.
func WithPolicy(p estimate.DivisorPolicy) QueryOption {
	return func(c *queryConfig) { c.opts.Policy = p }
}

// WithSkipValidation toggles the S2 ablation (trust the sampler blindly)
// for this query.
func WithSkipValidation(skip bool) QueryOption {
	return func(c *queryConfig) { c.opts.SkipValidation = skip }
}

// OnRound registers a callback fired synchronously after every refinement
// round with the round's estimate, margin of error and sample size — the
// paper's Table IX trace streamed live. The callback runs on the query's
// goroutine; a slow callback slows the query.
func OnRound(fn func(Round)) QueryOption {
	return func(c *queryConfig) { c.onRound = fn }
}

// WithParallelism bounds the QueryBatch worker pool (default GOMAXPROCS).
// It has no effect on single-query calls.
func WithParallelism(n int) QueryOption {
	return func(c *queryConfig) { c.parallel = n }
}

// WithEpochPolicy sets how a prepared plan (Engine.Prepare) follows a live
// graph's epochs: EpochPin (default) freezes the plan on its Prepare-time
// snapshot, EpochRepin re-pins to the current snapshot at every Start,
// rebuilding the compiled space when the epoch moved. One-shot queries
// ignore it (they always pin their Start-time snapshot).
func WithEpochPolicy(p EpochPolicy) QueryOption {
	return func(c *queryConfig) { c.epochPolicy = p }
}

// WithDegradation enables deadline-aware graceful degradation for this
// query: when the context deadline is too close for another refinement
// round, the guarantee loop stops early and returns the honest interval it
// already holds (Result.Degraded=true, Result.AchievedEB() reporting the
// bound actually reached) instead of being cancelled mid-round. The
// configured MaxErrorBound is the honesty floor a degraded serving tier may
// relax effective bounds toward; zero disables degradation. It is an
// execution-level option: prepared plans accept it per execution.
func WithDegradation(d Degradation) QueryOption {
	return func(c *queryConfig) { c.degrade = d }
}

// ResolvedQuery is the externally visible result of merging an Options
// base with per-query overrides — the inputs an execution driver outside
// the engine (the federated coordinator) needs to honour the same
// QueryOption surface as Engine.Query.
type ResolvedQuery struct {
	// Opts is the merged option block with the paper defaults re-applied.
	Opts Options
	// OnRound is the round-streaming callback, if any.
	OnRound func(Round)
	// Degrade is the deadline-aware degradation configuration.
	Degrade Degradation
}

// ResolveQuery merges per-query options over a base the way Engine.Query
// does, so external drivers resolve WithErrorBound/WithSeed/WithDegradation
// etc. identically to the engine.
func ResolveQuery(base Options, opts ...QueryOption) ResolvedQuery {
	cfg := mergeConfig(queryConfig{opts: base}, opts)
	return ResolvedQuery{Opts: cfg.opts, OnRound: cfg.onRound, Degrade: cfg.degrade}
}

// WithMinEpoch pins the query to a graph view at or above the given epoch —
// the read half of read-your-writes: pass the epoch a mutation batch
// returned and the query is guaranteed to observe that batch. On a live
// engine the query waits (honouring its context) for the store to reach the
// epoch; on a static engine any positive epoch fails with
// ErrEpochNotReached. Zero is the default: query the current snapshot.
func WithMinEpoch(epoch uint64) QueryOption {
	return func(c *queryConfig) { c.minEpoch = epoch }
}
