package workload

import (
	"encoding/json"
	"fmt"
	"os"
)

// Block kinds, mapped to their serving endpoints.
const (
	// KindQuery posts the body to /v1/query.
	KindQuery = "query"
	// KindMulti is KindQuery for multi-aggregate bodies; a separate kind so
	// reports split single- and multi-aggregate traffic.
	KindMulti = "multi"
	// KindPrepare posts to /v1/prepare; with "capture" set, the returned
	// plan id lands in the cross-request store under that key.
	KindPrepare = "prepare"
	// KindPlanQuery posts the body to /v1/plans/{plan}/query, with {plan}
	// usually a ${ref:key} captured by a prepare block.
	KindPlanQuery = "plan_query"
	// KindMutate posts the block's mutation lines to /v1/mutate as one
	// NDJSON batch.
	KindMutate = "mutate"
)

// Script is one replayable workload: a weighted request mix with an
// open-loop arrival rate.
type Script struct {
	Name string `json:"name"`
	// Seed makes template expansion and block selection deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64 `json:"rate"`
	// DurationS bounds the run in seconds (overridable by the runner).
	DurationS float64 `json:"duration_s,omitempty"`
	// MaxInFlight bounds concurrent outstanding requests; arrivals beyond
	// it are counted as dropped (default 64).
	MaxInFlight int `json:"max_inflight,omitempty"`
	// Client is sent as the X-Client-ID header when set, so server-side
	// per-client rate limits see one identity for the whole run.
	Client string  `json:"client,omitempty"`
	Blocks []Block `json:"blocks"`
}

// Block is one request shape within the mix.
type Block struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Weight is the block's share of arrivals (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Body is the templated JSON request body (all kinds except mutate).
	Body json.RawMessage `json:"body,omitempty"`
	// Capture names the store key a prepare block saves its plan id under.
	Capture string `json:"capture,omitempty"`
	// Plan is the plan-id template of a plan_query block, e.g. "${ref:p}".
	Plan string `json:"plan,omitempty"`
	// Mutations are the templated NDJSON lines of a mutate block.
	Mutations []json.RawMessage `json:"mutations,omitempty"`
}

// ParseScript decodes and validates one script document.
func ParseScript(data []byte) (*Script, error) {
	var s Script
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload script: %v", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("workload script: missing \"name\"")
	}
	if s.Rate <= 0 {
		return nil, fmt.Errorf("workload script %q: \"rate\" must be positive", s.Name)
	}
	if s.MaxInFlight == 0 {
		s.MaxInFlight = 64
	}
	if s.MaxInFlight < 0 {
		return nil, fmt.Errorf("workload script %q: negative \"max_inflight\"", s.Name)
	}
	if len(s.Blocks) == 0 {
		return nil, fmt.Errorf("workload script %q: no blocks", s.Name)
	}
	for i := range s.Blocks {
		b := &s.Blocks[i]
		if b.Name == "" {
			b.Name = fmt.Sprintf("block%d", i)
		}
		if b.Weight == 0 {
			b.Weight = 1
		}
		if b.Weight < 0 {
			return nil, fmt.Errorf("block %q: negative weight", b.Name)
		}
		switch b.Kind {
		case KindQuery, KindMulti, KindPrepare:
			if len(b.Body) == 0 {
				return nil, fmt.Errorf("block %q: kind %q needs a \"body\"", b.Name, b.Kind)
			}
		case KindPlanQuery:
			if b.Plan == "" {
				return nil, fmt.Errorf("block %q: plan_query needs \"plan\" (usually \"${ref:key}\")", b.Name)
			}
			if len(b.Body) == 0 {
				b.Body = json.RawMessage("{}")
			}
		case KindMutate:
			if len(b.Mutations) == 0 {
				return nil, fmt.Errorf("block %q: mutate needs \"mutations\"", b.Name)
			}
		default:
			return nil, fmt.Errorf("block %q: unknown kind %q (query, multi, prepare, plan_query, mutate)", b.Name, b.Kind)
		}
		if b.Capture != "" && b.Kind != KindPrepare {
			return nil, fmt.Errorf("block %q: \"capture\" only applies to prepare blocks", b.Name)
		}
	}
	return &s, nil
}

// LoadScript reads and parses a script file.
func LoadScript(path string) (*Script, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseScript(data)
}
