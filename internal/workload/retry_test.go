package workload

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kgaq/internal/kg/kgtest"
)

// retryScript is a one-arrival script: rate 2/s over 0.5s fires exactly one
// request, so the retry counters are deterministic.
const retryScript = `{
  "name": "retry", "seed": 5, "rate": 2, "duration_s": 0.5,
  "blocks": [
    {"name": "q", "kind": "query", "body": {
      "query": "AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c"}}
  ]
}`

// TestRunnerRetriesShedRequest: a request shed twice with Retry-After
// completes on the third attempt; the retries are counted separately from
// the final outcome, and the arrival is never double-counted.
func TestRunnerRetriesShedRequest(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy","code":"queue_full","retry_after_s":0.01}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"estimate":5,"achieved_eb":0.01}`)
	}))
	defer ts.Close()

	script, err := ParseScript([]byte(retryScript))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Script: script, BaseURL: ts.URL, Catalog: NewCatalog(kgtest.Figure1()),
		Retries: 3, RetryMaxWait: 50 * time.Millisecond,
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != 1 || rep.Completed != 1 || rep.Shed != 0 {
		t.Fatalf("offered %d completed %d shed %d, want 1/1/0: %+v",
			rep.Offered, rep.Completed, rep.Shed, rep)
	}
	if rep.Retries != 2 || rep.RetriedCompleted != 1 {
		t.Fatalf("retries %d retried_completed %d, want 2/1", rep.Retries, rep.RetriedCompleted)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestRunnerRetryBudgetExhausted: a persistently shedding server exhausts
// the retry budget and the arrival lands in shed — exactly once.
func TestRunnerRetryBudgetExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining","code":"draining","retry_after_s":0.01}`)
	}))
	defer ts.Close()

	script, err := ParseScript([]byte(retryScript))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Script: script, BaseURL: ts.URL, Catalog: NewCatalog(kgtest.Figure1()),
		Retries: 2, RetryMaxWait: 20 * time.Millisecond,
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 1 || rep.Completed != 0 {
		t.Fatalf("shed %d completed %d, want 1/0: %+v", rep.Shed, rep.Completed, rep)
	}
	if rep.Retries != 2 || rep.RetriedCompleted != 0 {
		t.Fatalf("retries %d retried_completed %d, want 2/0", rep.Retries, rep.RetriedCompleted)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}

	// Without a retry budget the same shed is terminal on first sight.
	hits.Store(0)
	r2 := &Runner{Script: script, BaseURL: ts.URL, Catalog: NewCatalog(kgtest.Figure1())}
	rep2, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Shed != 1 || rep2.Retries != 0 || hits.Load() != 1 {
		t.Fatalf("no-retry run: shed %d retries %d hits %d, want 1/0/1",
			rep2.Shed, rep2.Retries, hits.Load())
	}
}
