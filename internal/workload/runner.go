package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"kgaq/internal/stats"
)

// Runner replays one script against a serving endpoint.
type Runner struct {
	Script  *Script
	BaseURL string
	Catalog *Catalog
	// Client is the HTTP client (default: 60s-timeout client).
	Client *http.Client
	// Rate and Duration override the script's values when positive.
	Rate     float64
	Duration time.Duration
	// Retries bounds how many times one arrival is re-sent after a 429/503
	// before it counts as shed (0 = give up immediately, the default).
	// Waits between attempts use jittered exponential backoff and honour
	// the server's Retry-After suggestion when it is longer.
	Retries int
	// RetryMaxWait caps a single backoff wait (default 2s).
	RetryMaxWait time.Duration
	// Store is the cross-request capture store (fresh when nil).
	Store *Store
}

// Run primes the store (every prepare block executes once, so plan ids
// exist before the mix references them), then drives the open loop until
// the duration or ctx ends, and returns the aggregated report.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	s := r.Script
	rate := s.Rate
	if r.Rate > 0 {
		rate = r.Rate
	}
	dur := time.Duration(s.DurationS * float64(time.Second))
	if r.Duration > 0 {
		dur = r.Duration
	}
	if dur <= 0 {
		return nil, fmt.Errorf("workload %q: no duration (script duration_s or runner override)", s.Name)
	}
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	store := r.Store
	if store == nil {
		store = NewStore()
	}

	maxWait := r.RetryMaxWait
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	run := &runState{
		script:       s,
		base:         r.BaseURL,
		client:       client,
		catalog:      r.Catalog,
		store:        store,
		retries:      r.Retries,
		retryMaxWait: maxWait,
		blocks:       make([]*blockStats, len(s.Blocks)),
	}
	for i := range s.Blocks {
		run.blocks[i] = &blockStats{}
	}

	// Prime: every prepare block runs once, synchronously, outside the
	// measured window, so ${ref:...} plan ids resolve from the first
	// arrival on.
	rng := stats.NewRand(s.Seed)
	for i := range s.Blocks {
		if s.Blocks[i].Kind == KindPrepare {
			run.execute(ctx, i, stats.Fork(rng), true)
		}
	}

	weights := make([]float64, len(s.Blocks))
	for i, b := range s.Blocks {
		weights[i] = b.Weight
	}
	sem := make(chan struct{}, s.MaxInFlight)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / rate)
	begin := time.Now()
	deadline := begin.Add(dur)
	next := begin

loop:
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			break
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
				break loop
			case <-time.After(d):
			}
		}
		i := stats.WeightedIndex(rng, weights)
		run.blocks[i].arrival()
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: the in-flight bound is full, so this arrival is
			// dropped and counted, never queued on the client side.
			run.blocks[i].drop()
			continue
		}
		wg.Add(1)
		go func(i int, rng2 *rand.Rand) {
			defer wg.Done()
			defer func() { <-sem }()
			run.execute(ctx, i, rng2, false)
		}(i, stats.Fork(rng))
	}
	wg.Wait()
	elapsed := time.Since(begin)
	return run.report(rate, elapsed), nil
}

// runState is the shared state of one run.
type runState struct {
	script       *Script
	base         string
	client       *http.Client
	catalog      *Catalog
	store        *Store
	retries      int
	retryMaxWait time.Duration
	blocks       []*blockStats
}

// execute performs one request of block i. prime marks the unmeasured
// store-priming pass.
func (rs *runState) execute(ctx context.Context, i int, rng *rand.Rand, prime bool) {
	b := &rs.script.Blocks[i]
	st := rs.blocks[i]

	req, err := rs.buildRequest(ctx, b, rng)
	if err != nil {
		if errors.Is(err, ErrMissingRef) {
			st.skip(prime)
			return
		}
		st.fail(prime, false)
		return
	}
	// The retry loop re-sends the same rendered payload on 429/503; only
	// the final outcome lands in the completed/shed/error counters, and
	// latency spans the whole exchange including backoff waits — that is
	// what the caller experienced.
	begin := time.Now()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// NewRequestWithContext over a bytes.Reader sets GetBody, so the
			// payload replays exactly.
			clone := req.Clone(ctx)
			clone.Body, _ = req.GetBody()
			req = clone
		}
		resp, err := rs.client.Do(req)
		if err != nil {
			st.fail(prime, false)
			return
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		latency := time.Since(begin)

		switch {
		case resp.StatusCode == http.StatusOK:
			var probe struct {
				ID         string   `json:"id"`
				Degraded   bool     `json:"degraded"`
				AchievedEB *float64 `json:"achieved_eb"`
				Aggregates []struct {
					AchievedEB *float64 `json:"achieved_eb"`
				} `json:"aggregates"`
			}
			_ = json.Unmarshal(body, &probe)
			if b.Kind == KindPrepare && b.Capture != "" && probe.ID != "" {
				rs.store.Set(b.Capture, probe.ID)
			}
			var ebs []float64
			if probe.AchievedEB != nil {
				ebs = append(ebs, *probe.AchievedEB)
			}
			for _, a := range probe.Aggregates {
				if a.AchievedEB != nil {
					ebs = append(ebs, *a.AchievedEB)
				}
			}
			st.complete(prime, latency, probe.Degraded, attempt > 0, ebs)
			return
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			if attempt >= rs.retries {
				st.shedAt(prime)
				return
			}
			st.retry(prime)
			select {
			case <-ctx.Done():
				st.shedAt(prime)
				return
			case <-time.After(rs.backoff(attempt, retryAfter(resp, body), rng)):
			}
		default:
			st.fail(prime, resp.StatusCode >= 500)
			return
		}
	}
}

// backoff computes the wait before retry attempt+1: jittered exponential
// (100ms · 2^attempt · [0.5, 1.5)), raised to the server's Retry-After
// suggestion when that is longer, capped at retryMaxWait.
func (rs *runState) backoff(attempt int, suggested time.Duration, rng *rand.Rand) time.Duration {
	d := time.Duration(float64(100*time.Millisecond) * math.Pow(2, float64(attempt)) * (0.5 + rng.Float64()))
	if suggested > d {
		d = suggested
	}
	if d > rs.retryMaxWait {
		d = rs.retryMaxWait
	}
	return d
}

// retryAfter extracts the server's retry hint from a shed response: the
// body's sub-second retry_after_s when present, else the Retry-After header
// (whole seconds per RFC 9110), else 0.
func retryAfter(resp *http.Response, body []byte) time.Duration {
	var shed struct {
		RetryAfterS float64 `json:"retry_after_s"`
	}
	if json.Unmarshal(body, &shed) == nil && shed.RetryAfterS > 0 {
		return time.Duration(shed.RetryAfterS * float64(time.Second))
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// buildRequest renders the block's templates into one HTTP request. All
// templates of one request share a scope, so ${seq} is stable across the
// lines of a mutate batch.
func (rs *runState) buildRequest(ctx context.Context, b *Block, rng *rand.Rand) (*http.Request, error) {
	sc := newScope(rs.catalog, rs.store, rng)
	var url, contentType, payload string
	switch b.Kind {
	case KindQuery, KindMulti:
		body, err := sc.expand(string(b.Body))
		if err != nil {
			return nil, err
		}
		url, contentType, payload = rs.base+"/v1/query", "application/json", body
	case KindPrepare:
		body, err := sc.expand(string(b.Body))
		if err != nil {
			return nil, err
		}
		url, contentType, payload = rs.base+"/v1/prepare", "application/json", body
	case KindPlanQuery:
		id, err := sc.expand(b.Plan)
		if err != nil {
			return nil, err
		}
		body, err := sc.expand(string(b.Body))
		if err != nil {
			return nil, err
		}
		url, contentType, payload = rs.base+"/v1/plans/"+id+"/query", "application/json", body
	case KindMutate:
		var lines []string
		for _, m := range b.Mutations {
			line, err := sc.expand(string(m))
			if err != nil {
				return nil, err
			}
			lines = append(lines, line)
		}
		url, contentType = rs.base+"/v1/mutate", "application/x-ndjson"
		payload = joinLines(lines)
	default:
		return nil, fmt.Errorf("unknown kind %q", b.Kind)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader([]byte(payload)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if rs.script.Client != "" {
		req.Header.Set("X-Client-ID", rs.script.Client)
	}
	return req, nil
}

func joinLines(lines []string) string {
	var sb bytes.Buffer
	for i, l := range lines {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(l)
	}
	return sb.String()
}

// blockStats accumulates one block's outcomes; prime-pass requests touch
// only the store, never the counters.
type blockStats struct {
	mu        sync.Mutex
	offered   int64
	dropped   int64
	skipped   int64
	completed int64
	shed      int64
	errors    int64
	status5xx int64
	degraded  int64
	// retries counts individual re-sends after a 429/503;
	// retriedCompleted counts requests that completed only thanks to one.
	retries          int64
	retriedCompleted int64
	latencies        []float64 // ms, completed requests
	achieved         []float64 // achieved eb of completed estimates
}

func (s *blockStats) arrival() {
	s.mu.Lock()
	s.offered++
	s.mu.Unlock()
}

func (s *blockStats) drop() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}

func (s *blockStats) skip(prime bool) {
	if prime {
		return
	}
	s.mu.Lock()
	s.skipped++
	s.mu.Unlock()
}

func (s *blockStats) shedAt(prime bool) {
	if prime {
		return
	}
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
}

func (s *blockStats) retry(prime bool) {
	if prime {
		return
	}
	s.mu.Lock()
	s.retries++
	s.mu.Unlock()
}

func (s *blockStats) fail(prime, is5xx bool) {
	if prime {
		return
	}
	s.mu.Lock()
	s.errors++
	if is5xx {
		s.status5xx++
	}
	s.mu.Unlock()
}

func (s *blockStats) complete(prime bool, latency time.Duration, degraded, retried bool, ebs []float64) {
	if prime {
		return
	}
	s.mu.Lock()
	s.completed++
	if degraded {
		s.degraded++
	}
	if retried {
		s.retriedCompleted++
	}
	s.latencies = append(s.latencies, float64(latency.Microseconds())/1000)
	s.achieved = append(s.achieved, ebs...)
	s.mu.Unlock()
}

// Report is the outcome of one run, JSON-ready for bench artifacts and CI
// assertions.
type Report struct {
	Script     string  `json:"script"`
	TargetRate float64 `json:"target_rate"`
	DurationS  float64 `json:"duration_s"`

	Offered   int64 `json:"offered"`
	Dropped   int64 `json:"dropped"`
	Skipped   int64 `json:"skipped,omitempty"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	Status5xx int64 `json:"status_5xx"`
	Degraded  int64 `json:"degraded"`

	// Retries counts re-sends after 429/503 (not separate arrivals);
	// RetriedCompleted is how many completions needed at least one.
	Retries          int64 `json:"retries,omitempty"`
	RetriedCompleted int64 `json:"retried_completed,omitempty"`

	// AchievedRate is completed requests per second of wall clock.
	AchievedRate float64 `json:"achieved_rate"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	// AchievedEB summarises the honest error bounds across every completed
	// estimate of the run (absent when no block returned any).
	AchievedEB *EBDist `json:"achieved_eb,omitempty"`

	Blocks []BlockReport `json:"blocks"`
}

// BlockReport is one block's slice of the report.
type BlockReport struct {
	Name string `json:"name"`
	Kind string `json:"kind"`

	Offered   int64 `json:"offered"`
	Dropped   int64 `json:"dropped,omitempty"`
	Skipped   int64 `json:"skipped,omitempty"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed,omitempty"`
	Errors    int64 `json:"errors,omitempty"`
	Status5xx int64 `json:"status_5xx,omitempty"`
	Degraded  int64 `json:"degraded,omitempty"`

	Retries          int64 `json:"retries,omitempty"`
	RetriedCompleted int64 `json:"retried_completed,omitempty"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	// AchievedEB summarises the honest error bounds of this block's
	// completed estimates (absent for blocks that return none).
	AchievedEB *EBDist `json:"achieved_eb,omitempty"`
}

// EBDist is an achieved-error-bound distribution summary.
type EBDist struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

func (rs *runState) report(rate float64, elapsed time.Duration) *Report {
	rep := &Report{
		Script:     rs.script.Name,
		TargetRate: rate,
		DurationS:  elapsed.Seconds(),
	}
	var allLat, allEB []float64
	for i, st := range rs.blocks {
		st.mu.Lock()
		br := BlockReport{
			Name:      rs.script.Blocks[i].Name,
			Kind:      rs.script.Blocks[i].Kind,
			Offered:   st.offered,
			Dropped:   st.dropped,
			Skipped:   st.skipped,
			Completed: st.completed,
			Shed:      st.shed,
			Errors:    st.errors,
			Status5xx: st.status5xx,
			Degraded:  st.degraded,

			Retries:          st.retries,
			RetriedCompleted: st.retriedCompleted,
		}
		br.LatencyP50MS, br.LatencyP95MS, br.LatencyP99MS = percentiles(st.latencies)
		br.AchievedEB = ebDist(st.achieved)
		allLat = append(allLat, st.latencies...)
		allEB = append(allEB, st.achieved...)
		st.mu.Unlock()

		rep.Offered += br.Offered
		rep.Dropped += br.Dropped
		rep.Skipped += br.Skipped
		rep.Completed += br.Completed
		rep.Shed += br.Shed
		rep.Errors += br.Errors
		rep.Status5xx += br.Status5xx
		rep.Degraded += br.Degraded
		rep.Retries += br.Retries
		rep.RetriedCompleted += br.RetriedCompleted
		rep.Blocks = append(rep.Blocks, br)
	}
	rep.LatencyP50MS, rep.LatencyP95MS, rep.LatencyP99MS = percentiles(allLat)
	rep.AchievedEB = ebDist(allEB)
	if elapsed > 0 {
		rep.AchievedRate = float64(rep.Completed) / elapsed.Seconds()
	}
	return rep
}

// ebDist summarises achieved error bounds (nil for an empty sample).
func ebDist(achieved []float64) *EBDist {
	n := len(achieved)
	if n == 0 {
		return nil
	}
	ebs := append([]float64(nil), achieved...)
	sort.Float64s(ebs)
	return &EBDist{
		Count: n,
		P50:   ebs[n/2],
		P95:   ebs[(n-1)*95/100],
		Max:   ebs[n-1],
	}
}

// percentiles returns the p50/p95/p99 order statistics of ms latencies.
func percentiles(v []float64) (p50, p95, p99 float64) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	at := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
	return at(0.50), at(0.95), at(0.99)
}
