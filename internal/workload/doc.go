// Package workload is the template-driven load engine behind cmd/kgaqload
// and the bench trajectory's sustained-throughput axis: it replays a
// scripted request mix against a kgaqd server at a fixed open-loop arrival
// rate and reports per-block latency and outcome statistics.
//
// A Script is a JSON document of weighted blocks, each one request shape:
// "query" and "multi" post to /v1/query, "prepare" compiles a plan (and can
// capture the returned plan id into the cross-request store), "plan_query"
// executes a captured plan, "mutate" streams an NDJSON batch. Request
// bodies are templates: ${...} placeholders draw values from a Catalog
// seeded by the served graph (entities by type, predicates, attribute
// names) plus numeric/choice/sequence generators and ${ref:key} lookups of
// captured values, so a script stays valid across datasets of any size.
//
// Arrival is open-loop: requests launch on a fixed cadence regardless of
// completions, bounded by MaxInFlight — arrivals that would exceed the
// bound are counted as dropped, never queued client-side, so offered load
// stays honest under server backpressure. The Report separates completed,
// shed (429/503 backpressure), degraded (honest relaxed-bound answers,
// with their achieved-eb distribution) and error outcomes per block, with
// p50/p95/p99 latencies.
package workload
