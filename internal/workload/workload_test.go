package workload

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kgaq/internal/admission"
	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/httpapi"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/live"
	"kgaq/internal/stats"
)

func figureScope(t *testing.T) (*scope, *Store) {
	t.Helper()
	cat := NewCatalog(kgtest.Figure1())
	store := NewStore()
	return newScope(cat, store, stats.NewRand(1)), store
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog(kgtest.Figure1())
	if len(cat.Entities) != 13 {
		t.Fatalf("entities = %d, want 13", len(cat.Entities))
	}
	if got := cat.ByType["Country"]; len(got) != 1 || got[0] != "Germany" {
		t.Fatalf("ByType[Country] = %v", got)
	}
	if len(cat.ByType["Automobile"]) != 6 {
		t.Fatalf("ByType[Automobile] = %v", cat.ByType["Automobile"])
	}
	hasPred := false
	for _, p := range cat.Preds {
		if p == "product" {
			hasPred = true
		}
	}
	if !hasPred {
		t.Fatalf("preds missing product: %v", cat.Preds)
	}
	hasAttr := false
	for _, a := range cat.Attrs {
		if a == "price" {
			hasAttr = true
		}
	}
	if !hasAttr {
		t.Fatalf("attrs missing price: %v", cat.Attrs)
	}
}

func TestExpandGenerators(t *testing.T) {
	sc, store := figureScope(t)
	store.Set("plan", "abc123")

	cases := []struct{ tmpl, want string }{
		{"${entity:Country}", "Germany"},
		{"${int:7:7}", "7"},
		{"${float:2:2}", "2"},
		{"${choice:only}", "only"},
		{"${ref:plan}", "abc123"},
		{"x-${int:3:3}-y", "x-3-y"},
	}
	for _, c := range cases {
		got, err := sc.expand(c.tmpl)
		if err != nil {
			t.Fatalf("expand(%q): %v", c.tmpl, err)
		}
		if got != c.want {
			t.Fatalf("expand(%q) = %q, want %q", c.tmpl, got, c.want)
		}
	}

	// Membership-only generators.
	member := func(tmpl string, pool []string) {
		got, err := sc.expand(tmpl)
		if err != nil {
			t.Fatalf("expand(%q): %v", tmpl, err)
		}
		for _, p := range pool {
			if got == p {
				return
			}
		}
		t.Fatalf("expand(%q) = %q, not in catalog pool", tmpl, got)
	}
	member("${type}", sc.cat.Types)
	member("${pred}", sc.cat.Preds)
	member("${attr}", sc.cat.Attrs)
	member("${entity}", sc.cat.Entities)
}

func TestSeqStableWithinScope(t *testing.T) {
	sc1, _ := figureScope(t)
	a, err := sc1.expand("${seq}/${seq}")
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(a, "/")
	if parts[0] != parts[1] {
		t.Fatalf("seq differs within one scope: %q", a)
	}
	sc2, _ := figureScope(t)
	b, err := sc2.expand("${seq}")
	if err != nil {
		t.Fatal(err)
	}
	if b == parts[0] {
		t.Fatalf("seq repeated across scopes: %q", b)
	}
}

func TestQuotedNumericUnquoting(t *testing.T) {
	sc, _ := figureScope(t)
	got, err := sc.expand(`{"value": "${int:5:5}", "label": "${choice:a}"}`)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"value": 5, "label": "a"}`
	if got != want {
		t.Fatalf("expand = %s, want %s", got, want)
	}
}

func TestExpandErrors(t *testing.T) {
	sc, _ := figureScope(t)
	if _, err := sc.expand("${ref:never}"); !errors.Is(err, ErrMissingRef) {
		t.Fatalf("missing ref error = %v", err)
	}
	for _, tmpl := range []string{
		"${bogus}", "${int:1}", "${int:9:1}", "${int:a:b}", "${entity:NoSuchType}",
	} {
		if _, err := sc.expand(tmpl); err == nil {
			t.Fatalf("expand(%q): want error", tmpl)
		}
	}
}

func TestParseScriptValidation(t *testing.T) {
	cases := []struct{ name, doc, wantErr string }{
		{"not json", "{", "workload script"},
		{"no name", `{"rate": 1, "blocks": [{"kind":"query","body":{}}]}`, "missing"},
		{"no rate", `{"name":"x","blocks":[{"kind":"query","body":{}}]}`, "rate"},
		{"no blocks", `{"name":"x","rate":1}`, "no blocks"},
		{"bad kind", `{"name":"x","rate":1,"blocks":[{"kind":"nope","body":{}}]}`, "unknown kind"},
		{"query no body", `{"name":"x","rate":1,"blocks":[{"kind":"query"}]}`, "needs a \"body\""},
		{"plan_query no plan", `{"name":"x","rate":1,"blocks":[{"kind":"plan_query"}]}`, "needs \"plan\""},
		{"mutate no mutations", `{"name":"x","rate":1,"blocks":[{"kind":"mutate"}]}`, "needs \"mutations\""},
		{"capture on query", `{"name":"x","rate":1,"blocks":[{"kind":"query","body":{},"capture":"k"}]}`, "only applies to prepare"},
		{"negative weight", `{"name":"x","rate":1,"blocks":[{"kind":"query","body":{},"weight":-2}]}`, "negative weight"},
	}
	for _, c := range cases {
		_, err := ParseScript([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.wantErr)
		}
	}

	s, err := ParseScript([]byte(`{"name":"ok","rate":5,"blocks":[
		{"kind":"query","body":{"query":"q"}},
		{"kind":"plan_query","plan":"${ref:p}"}]}`))
	if err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	if s.MaxInFlight != 64 {
		t.Fatalf("MaxInFlight default = %d, want 64", s.MaxInFlight)
	}
	if s.Blocks[0].Name != "block0" || s.Blocks[0].Weight != 1 {
		t.Fatalf("block defaults = %q/%g", s.Blocks[0].Name, s.Blocks[0].Weight)
	}
	if string(s.Blocks[1].Body) != "{}" {
		t.Fatalf("plan_query default body = %s", s.Blocks[1].Body)
	}
}

// TestExampleScriptsParse keeps the committed example scripts loadable and
// their mutation templates valid JSON after expansion.
func TestExampleScriptsParse(t *testing.T) {
	for _, name := range []string{"mixed", "overload"} {
		s, err := LoadScript("../../examples/workloads/" + name + ".json")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("script name = %q, want %q", s.Name, name)
		}
	}
}

// TestRunnerEndToEnd drives a mixed script with every block kind against a
// real admission-controlled serving stack over the Figure 1 graph.
func TestRunnerEndToEnd(t *testing.T) {
	g := kgtest.Figure1()
	store := live.NewStore(g, 0)
	eng, err := core.NewLiveEngine(store, embtest.Figure1Model(g), core.Options{ErrorBound: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := httpapi.NewLiveServer(eng, store)
	api.ConfigureAdmission(admission.New(admission.Config{MaxErrorBound: 0.25}), "")
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	script, err := ParseScript([]byte(`{
	  "name": "e2e",
	  "seed": 11,
	  "rate": 200,
	  "duration_s": 1,
	  "client": "e2e-test",
	  "blocks": [
	    {"name": "avg", "kind": "query", "weight": 4, "body": {
	      "query": "AVG(price) MATCH (g:Country name=${entity:Country})-[product]->(c:Automobile) TARGET c",
	      "error_bound": 0.1, "timeout_ms": 2000}},
	    {"name": "prep", "kind": "prepare", "weight": 1, "capture": "p", "body": {
	      "query": "COUNT(*) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c"}},
	    {"name": "plan", "kind": "plan_query", "weight": 2, "plan": "${ref:p}", "body": {
	      "error_bound": 0.1, "timeout_ms": 2000}},
	    {"name": "multi", "kind": "multi", "weight": 2, "body": {
	      "query": "COUNT(*) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c",
	      "timeout_ms": 2000,
	      "aggregates": [{"func": "COUNT"}, {"func": "AVG", "attr": "price", "error_bound": 0.1}]}},
	    {"name": "mutate", "kind": "mutate", "weight": 1, "mutations": [
	      {"op": "add_entity", "entity": "Load_${seq}", "types": ["Automobile"]},
	      {"op": "add_edge", "src": "${entity:Country}", "pred": "product", "dst": "Load_${seq}"},
	      {"op": "set_attr", "entity": "Load_${seq}", "attr": "price", "value": "${int:20000:80000}"}
	    ]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}

	r := &Runner{Script: script, BaseURL: ts.URL, Catalog: NewCatalog(g)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Completed == 0 {
		t.Fatalf("no completed requests: %+v", rep)
	}
	if rep.Status5xx != 0 {
		t.Fatalf("%d unexpected 5xx responses", rep.Status5xx)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	if got := len(rep.Blocks); got != 5 {
		t.Fatalf("block reports = %d, want 5", got)
	}
	byName := map[string]BlockReport{}
	for _, b := range rep.Blocks {
		byName[b.Name] = b
	}
	// The prime pass captured the plan id before the open loop, so every
	// plan_query arrival that got a slot completed.
	if p := byName["plan"]; p.Completed == 0 || p.Skipped != 0 {
		t.Fatalf("plan block: %+v", p)
	}
	// Estimates carry their honest achieved error bound.
	if a := byName["avg"]; a.Completed > 0 && a.AchievedEB == nil {
		t.Fatalf("avg block has no achieved-eb distribution: %+v", a)
	}
	if m := byName["mutate"]; m.Completed == 0 {
		t.Fatalf("mutate block: %+v", m)
	}
	// Mutations really landed: the live store advanced past the load epoch.
	if store.Snapshot().Epoch() == 0 {
		t.Fatal("store epoch did not advance")
	}
	if rep.LatencyP50MS <= 0 || rep.LatencyP99MS < rep.LatencyP50MS {
		t.Fatalf("implausible latency percentiles: p50=%g p99=%g", rep.LatencyP50MS, rep.LatencyP99MS)
	}
	if rep.AchievedRate <= 0 {
		t.Fatalf("achieved rate = %g", rep.AchievedRate)
	}
}

// TestRunnerOverloadSheds saturates a MaxInFlight=1 server and checks the
// open loop counts drops/sheds instead of queueing client-side. The rate
// is far past any host's serial capacity for the tiny query (sub-ms on a
// fast machine), so saturation — and therefore shedding — does not depend
// on the runner's speed.
func TestRunnerOverloadSheds(t *testing.T) {
	g := kgtest.Figure1()
	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api := httpapi.NewServer(eng)
	api.ConfigureAdmission(admission.New(admission.Config{
		MaxInFlight: 1, MaxQueue: 1, MaxErrorBound: 0.3,
	}), "")
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	script, err := ParseScript([]byte(`{
	  "name": "surge", "seed": 3, "rate": 4000, "duration_s": 1, "max_inflight": 8,
	  "blocks": [
	    {"name": "tight", "kind": "query", "body": {
	      "query": "AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c",
	      "error_bound": 0.02, "timeout_ms": 2000}}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Script: script, BaseURL: ts.URL, Catalog: NewCatalog(g)}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("nothing completed under overload")
	}
	if rep.Shed+rep.Dropped == 0 {
		t.Fatalf("overload produced no shedding or drops: %+v", rep)
	}
	if rep.Status5xx != 0 {
		t.Fatalf("%d 5xx under overload (shed should be 429/503)", rep.Status5xx)
	}
	if rep.Offered != rep.Dropped+rep.Skipped+rep.Completed+rep.Shed+rep.Errors {
		t.Fatalf("outcome accounting does not balance: %+v", rep)
	}
}
