package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"kgaq/internal/kg"
)

// Catalog is the value source template generators draw from: the served
// graph's vocabulary, extracted once so a script written against a schema
// (types, predicates, attributes) runs against any dataset of that schema.
type Catalog struct {
	// Entities is every node name.
	Entities []string
	// ByType maps a type name to its members' names.
	ByType map[string][]string
	// Types, Preds and Attrs are the graph's vocabularies.
	Types []string
	Preds []string
	Attrs []string
}

// NewCatalog extracts a catalog from a graph.
func NewCatalog(g *kg.Graph) *Catalog {
	c := &Catalog{
		ByType: make(map[string][]string, g.NumTypes()),
		Preds:  append([]string(nil), g.PredNames()...),
	}
	c.Entities = make([]string, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		c.Entities[u] = g.Name(kg.NodeID(u))
	}
	for t := 0; t < g.NumTypes(); t++ {
		name := g.TypeName(kg.TypeID(t))
		c.Types = append(c.Types, name)
		members := g.NodesByType(kg.TypeID(t))
		names := make([]string, len(members))
		for i, u := range members {
			names[i] = g.Name(u)
		}
		c.ByType[name] = names
	}
	for a := 0; a < g.NumAttrs(); a++ {
		c.Attrs = append(c.Attrs, g.AttrName(kg.AttrID(a)))
	}
	return c
}

// Store is the cross-request key/value store: prepare blocks capture plan
// ids into it, ${ref:key} placeholders read them back.
type Store struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[string]string)} }

// Set saves a captured value.
func (s *Store) Set(key, value string) {
	s.mu.Lock()
	s.m[key] = value
	s.mu.Unlock()
}

// Get reads a captured value.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// ErrMissingRef marks a template whose ${ref:key} has not been captured
// yet; the runner counts such requests as skipped rather than failed.
var ErrMissingRef = errors.New("workload: ${ref} not captured yet")

var (
	placeholderRE = regexp.MustCompile(`\$\{([^}]*)\}`)
	// quotedNumRE matches a JSON string holding nothing but a numeric
	// generator; the quotes are stripped so the rendered value is a JSON
	// number ("price": "${int:1:9}" → "price": 5). Scripts are JSON
	// documents, so this is the only way a template can emit a number.
	quotedNumRE = regexp.MustCompile(`"(\$\{(?:int|float):[^}]*\})"`)
)

// globalSeq feeds the ${seq} generator: a process-wide monotone counter,
// so concurrently expanded requests never collide on generated names.
var globalSeq atomic.Int64

// scope is one request's template-expansion context. ${seq} is drawn once
// per scope, so every ${seq} within one request (e.g. the add_entity /
// add_edge / set_attr lines of a mutate batch) names the same entity.
type scope struct {
	cat   *Catalog
	store *Store
	rng   *rand.Rand
	seq   int64
}

func newScope(cat *Catalog, store *Store, rng *rand.Rand) *scope {
	return &scope{cat: cat, store: store, rng: rng}
}

// expand renders one template: every ${...} placeholder is replaced by a
// generated value. Supported generators:
//
//	${entity}         random entity name        ${entity:Type}  of that type
//	${type}           random type name          ${pred}         random predicate
//	${attr}           random attribute name
//	${int:a:b}        uniform integer in [a,b]  ${float:a:b}    uniform float
//	${choice:a|b|c}   one of the listed literals
//	${seq}            monotone integer, shared by every ${seq} in the request
//	${ref:key}        value captured into the store (e.g. a plan id)
//
// A JSON string consisting solely of a numeric generator loses its quotes,
// so "${int:a:b}" renders as a JSON number.
func (sc *scope) expand(tmpl string) (string, error) {
	tmpl = quotedNumRE.ReplaceAllString(tmpl, "$1")
	var genErr error
	out := placeholderRE.ReplaceAllStringFunc(tmpl, func(m string) string {
		if genErr != nil {
			return m
		}
		v, err := sc.generate(m[2 : len(m)-1])
		if err != nil {
			genErr = err
			return m
		}
		return v
	})
	return out, genErr
}

func (sc *scope) generate(spec string) (string, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "entity":
		pool := sc.cat.Entities
		if arg != "" {
			pool = sc.cat.ByType[arg]
		}
		return sc.pick(pool, "entity", arg)
	case "type":
		return sc.pick(sc.cat.Types, "type", "")
	case "pred":
		return sc.pick(sc.cat.Preds, "pred", "")
	case "attr":
		return sc.pick(sc.cat.Attrs, "attr", "")
	case "int":
		lo, hi, err := bounds(arg)
		if err != nil {
			return "", fmt.Errorf("${int:%s}: %v", arg, err)
		}
		return strconv.FormatInt(int64(lo)+sc.rng.Int63n(int64(hi-lo)+1), 10), nil
	case "float":
		lo, hi, err := bounds(arg)
		if err != nil {
			return "", fmt.Errorf("${float:%s}: %v", arg, err)
		}
		return strconv.FormatFloat(lo+sc.rng.Float64()*(hi-lo), 'g', -1, 64), nil
	case "choice":
		opts := strings.Split(arg, "|")
		return opts[sc.rng.Intn(len(opts))], nil
	case "seq":
		if sc.seq == 0 {
			sc.seq = globalSeq.Add(1)
		}
		return strconv.FormatInt(sc.seq, 10), nil
	case "ref":
		v, ok := sc.store.Get(arg)
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrMissingRef, arg)
		}
		return v, nil
	default:
		return "", fmt.Errorf("unknown template generator ${%s}", spec)
	}
}

func (sc *scope) pick(pool []string, kind, arg string) (string, error) {
	if len(pool) == 0 {
		if arg != "" {
			return "", fmt.Errorf("catalog has no %s of type %q", kind, arg)
		}
		return "", fmt.Errorf("catalog has no %ss", kind)
	}
	return pool[sc.rng.Intn(len(pool))], nil
}

// bounds parses the "a:b" numeric range of ${int}/${float}.
func bounds(arg string) (lo, hi float64, err error) {
	a, b, ok := strings.Cut(arg, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want a:b")
	}
	if lo, err = strconv.ParseFloat(a, 64); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.ParseFloat(b, 64); err != nil {
		return 0, 0, err
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("empty range %g:%g", lo, hi)
	}
	return lo, hi, nil
}
