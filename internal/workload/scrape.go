package workload

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"sort"
	"time"

	"kgaq/internal/obs"
)

// Scrape fetches a Prometheus text exposition endpoint (kgaqd's debug
// listener /metrics) and parses it strictly: well-formed comments, escaped
// labels, cumulative histogram buckets. A server whose registry drifts out
// of spec fails here, not in the operator's Prometheus.
func Scrape(ctx context.Context, url string) (map[string]*obs.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return fams, nil
}

// docMetricRE matches a backticked metric name in markdown docs.
var docMetricRE = regexp.MustCompile("`(kgaq_[a-z0-9_]+)`")

// DocumentedMetrics extracts every backticked kgaq_* metric name from a
// markdown file (the README metrics reference), deduplicated and sorted.
// This is the doc half of the metrics lint: CI asserts each name it returns
// exists in a live scrape, so the table and the registry cannot drift apart
// silently.
func DocumentedMetrics(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, m := range docMetricRE.FindAllStringSubmatch(string(data), -1) {
		seen[m[1]] = true
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("%s documents no kgaq_* metrics", path)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// LintMetrics checks a scrape against the documented metric names and
// returns the documented names missing from the scrape. The scrape itself
// has already proven well-formedness (strict parse); this closes the other
// direction.
func LintMetrics(fams map[string]*obs.Family, documented []string) []string {
	var missing []string
	for _, name := range documented {
		if _, ok := fams[name]; !ok {
			missing = append(missing, name)
		}
	}
	return missing
}
