// Package cmdutil shares the data-loading plumbing of the command-line
// tools: every CLI accepts either a generated profile or a graph +
// embedding snapshot pair from kgen.
package cmdutil

import (
	"fmt"

	"kgaq/internal/datagen"
	"kgaq/internal/embedding"
	"kgaq/internal/kg"
)

// LoadGraphModel resolves the -profile / -graph / -emb flag triple into a
// graph and embedding. When a profile is generated and *tau is zero, it is
// set to the profile's optimal τ.
func LoadGraphModel(graphPath, embPath, profile string, tau *float64) (*kg.Graph, embedding.Model, error) {
	if profile != "" {
		p, ok := datagen.ProfileByName(profile)
		if !ok {
			return nil, nil, fmt.Errorf("unknown profile %q", profile)
		}
		ds, err := datagen.Generate(p)
		if err != nil {
			return nil, nil, fmt.Errorf("generate: %w", err)
		}
		if *tau == 0 {
			*tau = p.OptimalTau
		}
		return ds.Graph, ds.Model, nil
	}
	if graphPath == "" || embPath == "" {
		return nil, nil, fmt.Errorf("need either -profile or both -graph and -emb")
	}
	g, err := kg.LoadFile(graphPath)
	if err != nil {
		return nil, nil, fmt.Errorf("load graph: %w", err)
	}
	m, err := embedding.LoadFile(embPath)
	if err != nil {
		return nil, nil, fmt.Errorf("load embedding: %w", err)
	}
	return g, m, nil
}
