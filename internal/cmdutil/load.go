package cmdutil

import (
	"fmt"
	"strings"

	"kgaq/internal/datagen"
	"kgaq/internal/embedding"
	"kgaq/internal/kg"
)

// maxLoadErrors caps how many textual-loader diagnostics are surfaced.
const maxLoadErrors = 5

// LoadGraph loads a knowledge graph from path, auto-detecting the format:
//
//   - binary snapshots (kgen's .graph / .kg files, any header version) are
//     recognised by content, not extension, and return their recorded epoch;
//   - *.nt / *.ntriples load through the N-Triples reader;
//   - *.tsv load the nodes/edges pair: pass either X.nodes.tsv or
//     X.edges.tsv and the sibling is derived.
//
// Textual formats report epoch 0 (they predate live graphs).
func LoadGraph(path string) (*kg.Graph, uint64, error) {
	switch {
	case strings.HasSuffix(path, ".nt"), strings.HasSuffix(path, ".ntriples"):
		g, errs := kg.LoadNTriplesFile(path, kg.NTOptions{})
		if err := firstErr(errs); err != nil {
			return nil, 0, fmt.Errorf("load %s: %w", path, err)
		}
		return g, 0, nil
	case strings.HasSuffix(path, ".tsv"):
		nodes, edges, err := tsvPair(path)
		if err != nil {
			return nil, 0, err
		}
		g, errs := kg.LoadTSVFiles(nodes, edges)
		if err := firstErr(errs); err != nil {
			return nil, 0, fmt.Errorf("load %s: %w", path, err)
		}
		return g, 0, nil
	default:
		g, epoch, err := kg.LoadFileEpoch(path)
		if err != nil {
			return nil, 0, fmt.Errorf("load graph: %w", err)
		}
		return g, epoch, nil
	}
}

// tsvPair derives the nodes/edges file pair from either member's path.
func tsvPair(path string) (nodes, edges string, err error) {
	switch {
	case strings.HasSuffix(path, ".nodes.tsv"):
		stem := strings.TrimSuffix(path, ".nodes.tsv")
		return path, stem + ".edges.tsv", nil
	case strings.HasSuffix(path, ".edges.tsv"):
		stem := strings.TrimSuffix(path, ".edges.tsv")
		return stem + ".nodes.tsv", path, nil
	default:
		return "", "", fmt.Errorf("tsv graphs come as a pair: pass X.nodes.tsv or X.edges.tsv, got %q", path)
	}
}

// firstErr condenses a textual loader's error list into one error (nil when
// clean), quoting up to maxLoadErrors diagnostics.
func firstErr(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	shown := errs
	if len(shown) > maxLoadErrors {
		shown = shown[:maxLoadErrors]
	}
	msgs := make([]string, len(shown))
	for i, e := range shown {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%d malformed lines (%s)", len(errs), strings.Join(msgs, "; "))
}

// LoadGraphModel resolves the -profile / -graph / -emb flag triple into a
// graph, an embedding and the graph's recorded live epoch. When a profile
// is generated and *tau is zero, it is set to the profile's optimal τ.
func LoadGraphModel(graphPath, embPath, profile string, tau *float64) (*kg.Graph, embedding.Model, uint64, error) {
	if profile != "" {
		p, ok := datagen.ProfileByName(profile)
		if !ok {
			return nil, nil, 0, fmt.Errorf("unknown profile %q", profile)
		}
		ds, err := datagen.Generate(p)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("generate: %w", err)
		}
		if *tau == 0 {
			*tau = p.OptimalTau
		}
		return ds.Graph, ds.Model, 0, nil
	}
	if graphPath == "" || embPath == "" {
		return nil, nil, 0, fmt.Errorf("need either -profile or both -graph and -emb")
	}
	g, epoch, err := LoadGraph(graphPath)
	if err != nil {
		return nil, nil, 0, err
	}
	m, err := embedding.LoadFile(embPath)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("load embedding: %w", err)
	}
	return g, m, epoch, nil
}
