// Package cmdutil shares the data-loading plumbing of the command-line
// tools: every CLI accepts either a generated profile or a graph +
// embedding snapshot pair from kgen, with the graph format auto-detected.
package cmdutil
