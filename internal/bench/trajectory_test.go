package bench

import (
	"encoding/json"
	"testing"
)

func TestPercentile(t *testing.T) {
	// Nearest-rank: ceil(p·n)-1.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(vals, 0.50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(vals, 0.95); got != 10 {
		t.Fatalf("p95 = %v, want 10", got)
	}
	if got := percentile(vals, 0.01); got != 1 {
		t.Fatalf("p1 = %v, want 1", got)
	}
	// Odd length: the median is the middle element, not one below it.
	odd := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if got := percentile(odd, 0.50); got != 6 {
		t.Fatalf("odd p50 = %v, want 6", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
}

var allocSink []byte

func TestMicroResultCapturesAllocs(t *testing.T) {
	r := microResult("alloc_probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			allocSink = make([]byte, 64)
		}
	})
	if r.Name != "alloc_probe" || r.NsPerOp <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.AllocsOp < 1 {
		t.Fatalf("allocs/op = %d, want ≥ 1", r.AllocsOp)
	}
}

func TestTrajectorySchemaRoundTrip(t *testing.T) {
	tr := Trajectory{Schema: TrajectorySchema, Label: "test", Queries: 3,
		Micro: []MicroResult{{Name: "m", NsPerOp: 1}}}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trajectory
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != TrajectorySchema || back.Label != "test" || len(back.Micro) != 1 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

// The churn scenario must deliver a sustained write mix without starving
// reads, keep the realised write fraction at or above the 10% bar, and show
// the selective invalidation working (hits survive the churn).
func TestRunChurnQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("churn measurement is seconds-long")
	}
	res, err := RunChurn(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Batches == 0 || res.Mutations == 0 {
		t.Fatalf("empty measurement: %+v", res)
	}
	if res.WriteMix < 0.10 {
		t.Fatalf("write mix %.2f below the 10%% floor", res.WriteMix)
	}
	if res.FinalEpoch == 0 {
		t.Fatal("no epochs advanced under churn")
	}
	if res.ReadP95MS <= 0 {
		t.Fatalf("no read latencies: %+v", res)
	}
	if res.CacheHitRate <= 0 {
		t.Fatal("cache never hit under churn: selective invalidation is not selective")
	}
}
