package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCompareTrajectories(t *testing.T) {
	base := &Trajectory{
		Schema: TrajectorySchema, LatencyP50MS: 10, LatencyP95MS: 20,
		Throughput: &ThroughputResult{Sustained: ThroughputRun{LatencyP50MS: 5, LatencyP95MS: 9}},
	}
	same := &Trajectory{
		Schema: TrajectorySchema, LatencyP50MS: 11, LatencyP95MS: 21,
		Throughput: &ThroughputResult{Sustained: ThroughputRun{LatencyP50MS: 5.5, LatencyP95MS: 9}},
	}
	if regs := CompareTrajectories(base, same, 0.5); len(regs) != 0 {
		t.Fatalf("within-tolerance trajectory flagged: %v", regs)
	}

	worse := &Trajectory{
		Schema: TrajectorySchema, LatencyP50MS: 40, LatencyP95MS: 21,
		Throughput: &ThroughputResult{Sustained: ThroughputRun{LatencyP50MS: 30, LatencyP95MS: 9}},
	}
	regs := CompareTrajectories(base, worse, 0.5)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want p50 serving + p50 sustained", regs)
	}
	if regs[0].Metric != "latency_p50_ms" || regs[0].Ratio != 4 {
		t.Fatalf("first regression = %+v", regs[0])
	}

	// Older-schema baseline without throughput gates fewer axes, not more.
	old := &Trajectory{Schema: "kgaq-bench-trajectory/v4", LatencyP50MS: 10, LatencyP95MS: 20}
	if regs := CompareTrajectories(old, same, 0.5); len(regs) != 0 {
		t.Fatalf("v4 baseline flagged throughput it never measured: %v", regs)
	}
}

func TestReadTrajectory(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data, _ := json.Marshal(Trajectory{Schema: TrajectorySchema, Label: "x", LatencyP50MS: 1})
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrajectory(good)
	if err != nil || tr.Label != "x" {
		t.Fatalf("tr=%+v err=%v", tr, err)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"label":"no-schema"}`), 0o644)
	if _, err := ReadTrajectory(bad); err == nil {
		t.Fatal("schema-less baseline accepted")
	}
	if _, err := ReadTrajectory(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

// TestRunThroughputQuick runs the throughput axis end to end: the sustained
// run must complete work with bounded shedding and the overload run must
// actually shed or drop while completions keep flowing.
func TestRunThroughputQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is seconds-long")
	}
	res, err := RunThroughput(t.Context(), QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sustained.Completed == 0 || res.Overload.Completed == 0 {
		t.Fatalf("runs completed nothing: %+v", res)
	}
	if res.Overload.Shed+res.Overload.Dropped == 0 {
		t.Fatalf("overload at %g req/s produced no backpressure: %+v", res.Overload.TargetRate, res.Overload)
	}
	if res.Sustained.Errors != 0 || res.Overload.Errors != 0 {
		t.Fatalf("throughput runs saw errors: %+v", res)
	}
	if res.Sustained.LatencyP99MS <= 0 {
		t.Fatalf("no sustained latencies: %+v", res.Sustained)
	}
	if res.Sustained.AchievedEB == nil || res.Sustained.AchievedEB.Count == 0 {
		t.Fatalf("no achieved-eb distribution: %+v", res.Sustained)
	}
}
