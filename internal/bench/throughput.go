package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"kgaq/internal/admission"
	"kgaq/internal/core"
	"kgaq/internal/httpapi"
	"kgaq/internal/live"
	"kgaq/internal/workload"
)

// ThroughputResult is the sustained-throughput axis of the trajectory: a
// fixed-rate mixed workload (reads, plans, mutations) driven through the
// full admission-controlled serving stack — HTTP, middleware, token
// buckets, the work queue — via internal/workload's open-loop runner.
// Sustained offers a rate the server absorbs; Overload offers several times
// its capacity, so the record captures how shedding and honest degradation
// behave under saturation (completions keep flowing, in-flight latency
// stays bounded, excess arrivals get fast 429s).
type ThroughputResult struct {
	// MaxInFlight/MaxQueue pin the admission geometry the runs used, so
	// successive baselines compare like with like.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`

	Sustained ThroughputRun `json:"sustained"`
	Overload  ThroughputRun `json:"overload"`
}

// ThroughputRun is one fixed-rate run's outcome.
type ThroughputRun struct {
	TargetRate float64 `json:"target_rate"`
	DurationS  float64 `json:"duration_s"`

	Offered   int64 `json:"offered"`
	Dropped   int64 `json:"dropped"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	Degraded  int64 `json:"degraded"`

	AchievedRate float64 `json:"achieved_rate"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	AchievedEB *workload.EBDist `json:"achieved_eb,omitempty"`
}

// Admission geometry of the throughput runs: small and fixed, so overload
// is reachable on any machine and baselines stay comparable.
const (
	throughputInFlight = 4
	throughputQueue    = 8
)

// throughputScript is the mixed request template of both runs; rate and
// duration come from the runner. The tiny profile shares the Figure 1
// schema, so ${entity:Country} resolves against the generated graph.
const throughputScript = `{
  "name": "throughput",
  "seed": 1,
  "rate": 1,
  "max_inflight": 128,
  "client": "bench",
  "blocks": [
    {"name": "avg", "kind": "query", "weight": 5, "body": {
      "query": "AVG(price) MATCH (g:Country name=${entity:Country})-[product]->(c:Automobile) TARGET c",
      "error_bound": 0.05, "timeout_ms": 2000}},
    {"name": "count", "kind": "query", "weight": 3, "body": {
      "query": "COUNT(*) MATCH (g:Country name=${entity:Country})-[product]->(c:Automobile) TARGET c",
      "error_bound": 0.05, "timeout_ms": 2000}},
    {"name": "mutate", "kind": "mutate", "weight": 1, "mutations": [
      {"op": "add_entity", "entity": "Bench_${seq}", "types": ["Automobile"]},
      {"op": "add_edge", "src": "${entity:Country}", "pred": "product", "dst": "Bench_${seq}"},
      {"op": "set_attr", "entity": "Bench_${seq}", "attr": "price", "value": "${int:20000:80000}"}
    ]}
  ]
}`

// RunThroughput boots the tiny profile behind a real httpapi server with
// admission control and replays the mixed script twice: once at a
// sustainable rate, once at overload.
func RunThroughput(ctx context.Context, cfg Config) (*ThroughputResult, error) {
	cfg = cfg.withDefaults()
	profile := cfg.Profiles[0]
	env, err := NewEnv(profile)
	if err != nil {
		return nil, err
	}
	store := live.NewStore(env.DS.Graph, 0)
	eng, err := core.NewLiveEngine(store, env.DS.Model,
		core.Options{Tau: profile.OptimalTau, ErrorBound: 0.05, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	api := httpapi.NewLiveServer(eng, store)
	api.ConfigureAdmission(admission.New(admission.Config{
		MaxInFlight:     throughputInFlight,
		MaxQueue:        throughputQueue,
		MaxErrorBound:   0.25,
		DegradePressure: 0.5,
	}), "")
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	script, err := workload.ParseScript([]byte(throughputScript))
	if err != nil {
		return nil, fmt.Errorf("bench: throughput script: %w", err)
	}
	catalog := workload.NewCatalog(env.DS.Graph)

	res := &ThroughputResult{MaxInFlight: throughputInFlight, MaxQueue: throughputQueue}
	// Warm-up: one unmeasured second populates the answer-space cache, as
	// the serving trajectory does for its workload.
	if _, err := runThroughputOnce(ctx, script, ts.URL, catalog, 25, time.Second); err != nil {
		return nil, err
	}
	sustained, err := runThroughputOnce(ctx, script, ts.URL, catalog, 40, 3*time.Second)
	if err != nil {
		return nil, err
	}
	res.Sustained = *sustained
	overload, err := runThroughputOnce(ctx, script, ts.URL, catalog, 1500, 2*time.Second)
	if err != nil {
		return nil, err
	}
	res.Overload = *overload
	return res, nil
}

func runThroughputOnce(ctx context.Context, script *workload.Script, url string, cat *workload.Catalog, rate float64, dur time.Duration) (*ThroughputRun, error) {
	r := &workload.Runner{
		Script:   script,
		BaseURL:  url,
		Catalog:  cat,
		Rate:     rate,
		Duration: dur,
	}
	rep, err := r.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: throughput run at %g req/s: %w", rate, err)
	}
	if rep.Completed == 0 {
		return nil, fmt.Errorf("bench: throughput run at %g req/s completed nothing", rate)
	}
	return &ThroughputRun{
		TargetRate:   rate,
		DurationS:    rep.DurationS,
		Offered:      rep.Offered,
		Dropped:      rep.Dropped,
		Completed:    rep.Completed,
		Shed:         rep.Shed,
		Errors:       rep.Errors,
		Degraded:     rep.Degraded,
		AchievedRate: rep.AchievedRate,
		LatencyP50MS: rep.LatencyP50MS,
		LatencyP95MS: rep.LatencyP95MS,
		LatencyP99MS: rep.LatencyP99MS,
		AchievedEB:   rep.AchievedEB,
	}, nil
}
