package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/query"
	"kgaq/internal/semsim"
	"kgaq/internal/walk"
)

// TrajectorySchema versions the BENCH_*.json layout so future PRs can
// extend it without breaking readers of earlier baselines. v2 adds the
// churn (mixed read/write) section; v3 adds the sharded cold-query
// comparison; v4 adds the multi-aggregate (QueryMulti vs separate
// queries) comparison; v5 adds the sustained-throughput axis (fixed-rate
// mixed workload through the admission-controlled serving stack); v6 adds
// the convergence-telemetry axis (mean refinement rounds and the
// validation share of query time); v7 adds the runner-noise
// characterisation (per-pass percentile spread over repeated measured
// passes), which the regression gate derives its tolerance from; v8 adds
// the federated scatter/gather axis (1 coordinator + 3 in-process members
// over split graphs vs the unsplit twin).
const TrajectorySchema = "kgaq-bench-trajectory/v8"

// measuredPasses is the number of measured workload repetitions after the
// warm-up pass: the pooled latencies give the headline percentiles, and
// the per-pass percentile spread is the runner-noise signal recorded in
// Trajectory.Noise.
const measuredPasses = 3

// Trajectory is one tracked performance baseline: the serving hot path
// measured end to end (latency distribution, sampling throughput, cache
// behaviour) plus the micro-benchmarks of the layers this baseline exists
// to keep honest. Each PR that touches the hot path appends a new
// BENCH_<pr>.json so regressions have a number to be measured against.
type Trajectory struct {
	Schema    string    `json:"schema"`
	Label     string    `json:"label"`
	CreatedAt time.Time `json:"created_at"`

	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Profile string `json:"profile"`
	Queries int    `json:"queries"`

	// End-to-end serving measurements over the repeated workload.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`
	DrawsPerSec  float64 `json:"draws_per_sec"`

	Cache TrajectoryCache `json:"cache"`

	// Churn is the mixed read/write measurement: the same workload under a
	// sustained ~20% mutation mix on a live engine (nil in configurations
	// that skip it).
	Churn *ChurnResult `json:"churn,omitempty"`

	// Sharded compares cold-query latency on the 40k-node bench graph
	// across shard counts (partition-parallel execution, DESIGN.md
	// "Sharded execution").
	Sharded *ShardedResult `json:"sharded,omitempty"`

	// MultiAgg compares COUNT+SUM+AVG as one QueryMulti (one build, one
	// shared sample) against three separate queries (DESIGN.md "Prepared
	// plans").
	MultiAgg *MultiAggResult `json:"multi_agg,omitempty"`

	// Throughput measures the full serving stack (HTTP, middleware,
	// admission) under a fixed-rate mixed workload at a sustainable rate
	// and at overload (DESIGN.md "Serving tier").
	Throughput *ThroughputResult `json:"throughput,omitempty"`

	// Convergence is the telemetry axis over the measured pass: refinement
	// rounds to the guarantee and where the query time went.
	Convergence *ConvergenceResult `json:"convergence,omitempty"`

	// Federated is the scatter/gather axis: cold latency through a
	// 1-coordinator / 3-member loopback federation over split graphs, next
	// to the unsplit twin, with per-query member fan-out (DESIGN.md
	// "Federation: remote strata").
	Federated *FederatedResult `json:"federated,omitempty"`

	// Noise characterises the runner: the spread of the per-pass latency
	// percentiles across the repeated measured passes of this very run. A
	// regression gate that ignores it either flakes (tolerance below the
	// runner's own noise) or sleeps through real regressions (tolerance
	// padded by guesswork); -gate derives its tolerance from this record.
	Noise *NoiseResult `json:"noise,omitempty"`

	Micro []MicroResult `json:"micro"`
}

// NoiseResult is the repeat-run noise measurement: each measured workload
// pass yields its own p50/p95, and the min–max spread across passes bounds
// how far two honest runs of the same binary on this runner disagree.
type NoiseResult struct {
	// Passes is the number of measured workload repetitions.
	Passes int `json:"passes"`
	// P50MinMS/P50MaxMS and P95MinMS/P95MaxMS are the extremes of the
	// per-pass percentiles.
	P50MinMS float64 `json:"p50_min_ms"`
	P50MaxMS float64 `json:"p50_max_ms"`
	P95MinMS float64 `json:"p95_min_ms"`
	P95MaxMS float64 `json:"p95_max_ms"`
	// P50Spread and P95Spread are (max-min)/min — the relative run-to-run
	// disagreement the gate must at least forgive.
	P50Spread float64 `json:"p50_spread"`
	P95Spread float64 `json:"p95_spread"`
}

// MaxSpread returns the larger of the two percentile spreads.
func (n *NoiseResult) MaxSpread() float64 {
	if n.P50Spread > n.P95Spread {
		return n.P50Spread
	}
	return n.P95Spread
}

// ConvergenceResult aggregates the per-query convergence telemetry of the
// measured (warm) workload pass — the same numbers the serving tier exports
// per query through kgaq_core_rounds_per_query and /debug/trace.
type ConvergenceResult struct {
	// MeanRounds / MaxRounds count guarantee-loop rounds per query.
	MeanRounds float64 `json:"mean_rounds"`
	MaxRounds  int     `json:"max_rounds"`
	// ValidationShare is the fraction of total query time spent in the
	// estimation step, where drawn answers meet the semantic verdict
	// oracle; SamplingShare and GuaranteeShare cover the rest of the
	// paper's three-step split.
	ValidationShare float64 `json:"validation_share"`
	SamplingShare   float64 `json:"sampling_share"`
	GuaranteeShare  float64 `json:"guarantee_share"`
}

// TrajectoryCache snapshots the engine's answer-space cache after the
// workload ran (the second half of the workload repeats the first, so a
// healthy cache shows a hit rate well above zero).
type TrajectoryCache struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Entries int     `json:"entries"`
	Bytes   int64   `json:"bytes"`
}

// MicroResult is one micro-benchmark measurement captured via
// testing.Benchmark.
type MicroResult struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
}

func microResult(name string, fn func(b *testing.B)) MicroResult {
	r := testing.Benchmark(fn)
	return MicroResult{
		Name:     name,
		NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
}

// RunTrajectory measures the serving hot path and the layer
// micro-benchmarks, returning the baseline record. The workload is the
// tiny profile's generated query set, run twice over one engine: the first
// pass populates the answer-space cache, the second measures the steady
// state a hot server sees.
func RunTrajectory(cfg Config, label string) (*Trajectory, error) {
	cfg = cfg.withDefaults()
	profile := cfg.Profiles[0]
	env, err := NewEnv(profile)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(env.DS.Graph, env.DS.Model,
		core.Options{Tau: profile.OptimalTau, ErrorBound: 0.05, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	ctx := cfg.ctx()
	var latencies []float64
	passP50 := make([]float64, 0, measuredPasses)
	passP95 := make([]float64, 0, measuredPasses)
	totalDraws := 0
	totalTime := time.Duration(0)
	ran := 0
	totalRounds, maxRounds := 0, 0
	var steps core.StepTimes
	for pass := 0; pass <= measuredPasses; pass++ {
		var passLat []float64
		for _, gq := range env.DS.Queries {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			begin := time.Now()
			res, err := eng.Query(ctx, gq.Agg)
			elapsed := time.Since(begin)
			if err != nil {
				continue // a workload query without candidates is not a perf signal
			}
			if pass == 0 {
				continue // warm-up only: cold convergence must not dilute the baseline
			}
			ran++
			ms := float64(elapsed.Microseconds()) / 1000
			latencies = append(latencies, ms)
			passLat = append(passLat, ms)
			totalDraws += res.SampleSize
			totalTime += elapsed
			totalRounds += len(res.Rounds)
			if len(res.Rounds) > maxRounds {
				maxRounds = len(res.Rounds)
			}
			steps.Sampling += res.Times.Sampling
			steps.Estimation += res.Times.Estimation
			steps.Guarantee += res.Times.Guarantee
		}
		if pass > 0 && len(passLat) > 0 {
			sort.Float64s(passLat)
			passP50 = append(passP50, percentile(passLat, 0.50))
			passP95 = append(passP95, percentile(passLat, 0.95))
		}
	}
	if len(latencies) == 0 {
		return nil, fmt.Errorf("bench: no workload query completed")
	}
	sort.Float64s(latencies)
	cs := eng.CacheStats()

	tr := &Trajectory{
		Schema:       TrajectorySchema,
		Label:        label,
		CreatedAt:    time.Now().UTC(),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Profile:      profile.Name,
		Queries:      ran,
		LatencyP50MS: percentile(latencies, 0.50),
		LatencyP95MS: percentile(latencies, 0.95),
		LatencyMaxMS: latencies[len(latencies)-1],
		DrawsPerSec:  float64(totalDraws) / totalTime.Seconds(),
		Cache: TrajectoryCache{
			Hits:    cs.Hits,
			Misses:  cs.Misses,
			HitRate: cs.HitRate(),
			Entries: cs.Entries,
			Bytes:   cs.Bytes,
		},
		Micro: microBenchmarks(),
	}
	if len(passP50) > 1 {
		tr.Noise = noiseFromPasses(passP50, passP95)
	}
	if total := steps.Total(); total > 0 {
		tr.Convergence = &ConvergenceResult{
			MeanRounds:      float64(totalRounds) / float64(ran),
			MaxRounds:       maxRounds,
			ValidationShare: steps.Estimation.Seconds() / total.Seconds(),
			SamplingShare:   steps.Sampling.Seconds() / total.Seconds(),
			GuaranteeShare:  steps.Guarantee.Seconds() / total.Seconds(),
		}
	}
	churn, err := RunChurn(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: churn scenario: %w", err)
	}
	tr.Churn = churn
	sharded, err := RunSharded(ctx, []int{1, 8})
	if err != nil {
		return nil, fmt.Errorf("bench: sharded scenario: %w", err)
	}
	tr.Sharded = sharded
	multiAgg, err := RunMultiAgg(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: multi-aggregate scenario: %w", err)
	}
	tr.MultiAgg = multiAgg
	throughput, err := RunThroughput(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: throughput scenario: %w", err)
	}
	tr.Throughput = throughput
	federated, err := RunFederated(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: federated scenario: %w", err)
	}
	tr.Federated = federated
	return tr, nil
}

// microBenchmarks runs the layer micro-benchmarks in-process: walker build
// + convergence (the CSR core), batched greedy validation (the ValidateCtx
// allocation profile), and a full cached engine query.
func microBenchmarks() []MicroResult {
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	us := g.NodeByName("Germany")
	pred := g.PredByName("product")

	var out []MicroResult
	out = append(out, microResult("walker_build_converge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := walk.New(g, calc, us, pred, walk.Config{N: 3})
			if err != nil {
				b.Fatal(err)
			}
			w.Converge()
		}
	}))

	w, err := walk.New(g, calc, us, pred, walk.Config{N: 3})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	w.Converge()
	pi := w.PiMap()
	auto := g.TypeByName("Automobile")
	cands := w.Bound().CandidateAnswers(g, []kg.TypeID{auto})
	out = append(out, microResult("validate_batch", func(b *testing.B) {
		b.ReportAllocs()
		vcfg := semsim.ValidatorConfig{Repeat: 3, MaxLen: 3, Tau: 0.85}
		for i := 0; i < b.N; i++ {
			semsim.Validate(g, calc, us, pred, pi, cands, vcfg)
		}
	}))

	eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{ErrorBound: 0.05, Seed: 7})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	q := query.Simple(query.Avg, "price", "Germany", "Country", "product", "Automobile")
	out = append(out, microResult("engine_query_cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return out
}

// noiseFromPasses condenses per-pass percentiles into the min–max spread
// record.
func noiseFromPasses(p50s, p95s []float64) *NoiseResult {
	minMax := func(vs []float64) (lo, hi float64) {
		lo, hi = vs[0], vs[0]
		for _, v := range vs[1:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return lo, hi
	}
	spread := func(lo, hi float64) float64 {
		if lo <= 0 {
			return 0
		}
		return (hi - lo) / lo
	}
	p50lo, p50hi := minMax(p50s)
	p95lo, p95hi := minMax(p95s)
	return &NoiseResult{
		Passes:    len(p50s),
		P50MinMS:  p50lo,
		P50MaxMS:  p50hi,
		P95MinMS:  p95lo,
		P95MaxMS:  p95hi,
		P50Spread: spread(p50lo, p50hi),
		P95Spread: spread(p95lo, p95hi),
	}
}

// percentile returns the p-quantile of sorted values (nearest-rank:
// ceil(p·n)-1).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteTrajectory runs the baseline measurement and writes it as indented
// JSON to path, echoing a summary to w.
func WriteTrajectory(w io.Writer, cfg Config, label, path string) error {
	tr, err := RunTrajectory(cfg, label)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "trajectory %s: %d queries, p50 %.2fms, p95 %.2fms, %.0f draws/s, cache hit rate %.2f → %s\n",
		label, tr.Queries, tr.LatencyP50MS, tr.LatencyP95MS, tr.DrawsPerSec, tr.Cache.HitRate, path)
	if c := tr.Churn; c != nil {
		fmt.Fprintf(w, "  churn: %d reads / %d batches (%.0f%% writes), read p50 %.2fms, p95 %.2fms, hit rate %.2f, %d invalidated, epoch %d\n",
			c.Queries, c.Batches, 100*c.WriteMix, c.ReadP50MS, c.ReadP95MS, c.CacheHitRate, c.Invalidated, c.FinalEpoch)
	}
	if s := tr.Sharded; s != nil {
		for _, run := range s.Runs {
			fmt.Fprintf(w, "  sharded: %d shards, %d cold queries on %d nodes, p50 %.2fms, p95 %.2fms, %d draws\n",
				run.Shards, run.Queries, s.Nodes, run.ColdP50MS, run.ColdP95MS, run.Draws)
		}
		fmt.Fprintf(w, "  sharded p95 speedup: %.2fx\n", s.SpeedupP95)
	}
	if m := tr.MultiAgg; m != nil {
		for _, run := range m.Runs {
			fmt.Fprintf(w, "  multi-agg %-14s %d cold queries, p50 %.2fms, p95 %.2fms, %d draws\n",
				run.Mode+":", run.Queries, run.P50MS, run.P95MS, run.Draws)
		}
		fmt.Fprintf(w, "  multi-agg p50 cost: QueryMulti %.2fx single (three separate queries %.2fx)\n",
			m.MultiVsSingle, m.SeparateVsSingle)
	}
	if tp := tr.Throughput; tp != nil {
		for _, run := range []struct {
			name string
			r    ThroughputRun
		}{{"sustained", tp.Sustained}, {"overload", tp.Overload}} {
			fmt.Fprintf(w, "  throughput %-10s %5.0f req/s offered: %d completed (%.0f/s), %d shed, %d dropped, %d degraded, p50 %.2fms, p99 %.2fms\n",
				run.name+":", run.r.TargetRate, run.r.Completed, run.r.AchievedRate,
				run.r.Shed, run.r.Dropped, run.r.Degraded, run.r.LatencyP50MS, run.r.LatencyP99MS)
		}
	}
	if c := tr.Convergence; c != nil {
		fmt.Fprintf(w, "  convergence: mean %.2f rounds (max %d), time split sampling %.0f%% / validation %.0f%% / guarantee %.0f%%\n",
			c.MeanRounds, c.MaxRounds, 100*c.SamplingShare, 100*c.ValidationShare, 100*c.GuaranteeShare)
	}
	if f := tr.Federated; f != nil {
		fmt.Fprintf(w, "  federated: %d members, %d cold queries, p50 %.2fms, p95 %.2fms (twin p50 %.2fms), %.1f rounds/query, %.1f RPCs/query, %.0f draws/query\n",
			f.Members, f.Queries, f.ColdP50MS, f.ColdP95MS, f.TwinColdP50MS, f.MeanRounds, f.RPCsPerQuery, f.DrawsPerQuery)
	}
	if n := tr.Noise; n != nil {
		fmt.Fprintf(w, "  noise: %d passes, p50 %.2f–%.2fms (spread %.0f%%), p95 %.2f–%.2fms (spread %.0f%%)\n",
			n.Passes, n.P50MinMS, n.P50MaxMS, 100*n.P50Spread, n.P95MinMS, n.P95MaxMS, 100*n.P95Spread)
	}
	for _, m := range tr.Micro {
		fmt.Fprintf(w, "  micro %-22s %12.0f ns/op %8d B/op %6d allocs/op\n", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
	}
	return nil
}
