package bench

import (
	"context"
	"testing"
)

// The sharded cold-query scenario must produce a comparable latency row per
// shard count over the same interleaved workload.
func TestRunSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 40k-node graph")
	}
	res, err := RunSharded(context.Background(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != shardedBenchNodes {
		t.Fatalf("bench graph has %d nodes, want %d", res.Nodes, shardedBenchNodes)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %+v, want one per shard count", res.Runs)
	}
	for _, run := range res.Runs {
		if run.Queries == 0 || run.ColdP95MS <= 0 || run.Draws == 0 {
			t.Fatalf("degenerate run %+v", run)
		}
		if run.ColdP50MS > run.ColdP95MS || run.ColdP95MS > run.ColdMaxMS {
			t.Fatalf("latency percentiles out of order: %+v", run)
		}
	}
	if res.Runs[0].Shards != 1 || res.Runs[1].Shards != 2 {
		t.Fatalf("shard counts out of order: %+v", res.Runs)
	}
	if res.SpeedupP95 <= 0 {
		t.Fatalf("speedup = %v", res.SpeedupP95)
	}
}
