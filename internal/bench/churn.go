package bench

import (
	"fmt"
	"sort"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/datagen"
	"kgaq/internal/live"
)

// ChurnResult is the mixed read/write measurement: query latency under
// sustained mutation, the realised write mix, and how the answer-space
// cache behaved (selective invalidation should keep the hit rate well above
// zero — mutations touch one region, the rest of the workload keeps
// hitting).
type ChurnResult struct {
	Queries    int     `json:"queries"`
	Batches    int     `json:"batches"`
	Mutations  int     `json:"mutations"`
	WriteMix   float64 `json:"write_mix"` // batches / (batches + queries)
	FinalEpoch uint64  `json:"final_epoch"`

	ReadP50MS float64 `json:"read_p50_ms"`
	ReadP95MS float64 `json:"read_p95_ms"`
	ReadMaxMS float64 `json:"read_max_ms"`

	CacheHitRate float64 `json:"cache_hit_rate"`
	Invalidated  uint64  `json:"invalidated"`
	Compactions  int     `json:"compactions"`
}

// readsPerBatch paces the writer: one mutation batch per this many queries,
// a 20% write mix — comfortably past the ≥10% bar the live-graph workload
// targets.
const readsPerBatch = 4

// RunChurn measures the read path under sustained mutation: the tiny
// profile's workload runs repeatedly over a live engine while a concurrent
// writer applies one churn batch per readsPerBatch queries, with a manual
// compaction between passes. The first pass is warm-up (cold convergence
// must not dilute the read latencies), passes two and three are measured —
// the steady state of a hot server taking writes.
func RunChurn(cfg Config) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	profile := cfg.Profiles[0]
	env, err := NewEnv(profile)
	if err != nil {
		return nil, err
	}
	store := live.NewStore(env.DS.Graph, 0)
	eng, err := core.NewLiveEngine(store, env.DS.Model,
		core.Options{Tau: profile.OptimalTau, ErrorBound: 0.05, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	churn := datagen.NewChurn(datagen.ChurnConfig{Seed: cfg.Seed})

	ctx := cfg.ctx()
	res := &ChurnResult{}

	// The writer runs on its own goroutine, one batch per token, so writes
	// overlap reads exactly as they would in a serving process.
	tokens := make(chan struct{}, 64)
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for range tokens {
			b := churn.Batch(store.Snapshot())
			if _, err := store.Apply(b); err != nil {
				writerDone <- fmt.Errorf("bench: churn apply: %w", err)
				return
			}
			res.Batches++
			res.Mutations += len(b)
		}
	}()

	var latencies []float64
	reads := 0
	for pass := 0; pass < 3; pass++ {
		for _, gq := range env.DS.Queries {
			if err := ctx.Err(); err != nil {
				close(tokens)
				return nil, err
			}
			begin := time.Now()
			_, qerr := eng.Query(ctx, gq.Agg)
			elapsed := time.Since(begin)
			if qerr != nil {
				continue // churn can starve a query of candidates; not a perf signal
			}
			reads++
			if pass > 0 {
				latencies = append(latencies, float64(elapsed.Microseconds())/1000)
			}
			if reads%readsPerBatch == 0 {
				select {
				case tokens <- struct{}{}:
				default: // writer saturated; skip rather than block the read path
				}
			}
		}
		if pass < 2 {
			if ev, err := store.Compact(); err != nil {
				close(tokens)
				return nil, err
			} else if ev != nil {
				res.Compactions++
			}
		}
	}
	close(tokens)
	if err, ok := <-writerDone; ok && err != nil {
		return nil, err
	}

	if len(latencies) == 0 {
		return nil, fmt.Errorf("bench: no churn-workload query completed")
	}
	sort.Float64s(latencies)
	cs := eng.CacheStats()
	res.Queries = reads
	res.WriteMix = float64(res.Batches) / float64(res.Batches+reads)
	res.FinalEpoch = store.Epoch()
	res.ReadP50MS = percentile(latencies, 0.50)
	res.ReadP95MS = percentile(latencies, 0.95)
	res.ReadMaxMS = latencies[len(latencies)-1]
	res.CacheHitRate = cs.HitRate()
	res.Invalidated = cs.Invalidated
	return res, nil
}
