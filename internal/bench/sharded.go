package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// shardedBenchNodes sizes the sharded cold-query graph: ~40k nodes with
// average half-degree ~20 put the walk's transition arrays in the tens of
// megabytes, the regime where the cold path (CSR build + convergence +
// validation) dominates and sharding has something real to win or lose.
const shardedBenchNodes = 40000

// ShardedLatency is one shard count's cold-query latency distribution over
// the sharded benchmark workload.
type ShardedLatency struct {
	Shards    int     `json:"shards"`
	Queries   int     `json:"queries"`
	ColdP50MS float64 `json:"cold_p50_ms"`
	ColdP95MS float64 `json:"cold_p95_ms"`
	ColdMaxMS float64 `json:"cold_max_ms"`
	// Draws is the total sample size across the workload — stratified
	// Neyman allocation shows up here as fewer draws for the same bound.
	Draws int `json:"draws"`
}

// ShardedResult compares cold-query latency on the 40k-node bench graph
// across shard counts. SpeedupP95 is single-shard p95 divided by the
// highest shard count's p95 (> 1 means sharding is ahead).
type ShardedResult struct {
	Nodes      int              `json:"nodes"`
	Edges      int              `json:"edges"`
	Runs       []ShardedLatency `json:"runs"`
	SpeedupP95 float64          `json:"speedup_p95"`
}

// shardedBenchGraph builds the deterministic 40k-node random graph (the
// same construction as the walk package's big-walker micro-benchmark) with
// a handful of typed answer pools and priced answers so guaranteed
// aggregates have non-trivial ground truth.
func shardedBenchGraph() (*kg.Graph, []kg.NodeID) {
	r := stats.NewRand(97)
	bld := kg.NewBuilder()
	ids := make([]kg.NodeID, shardedBenchNodes)
	for i := range ids {
		ty := "Thing"
		if i%4 == 1 {
			ty = "Automobile"
		}
		ids[i] = bld.AddNode(fmt.Sprintf("bench_%d", i), ty)
		if ty == "Automobile" {
			if err := bld.SetAttr(ids[i], "price", 10000+r.Float64()*50000); err != nil {
				panic(err)
			}
		}
	}
	preds := []string{"assembly", "country", "designer", "product"}
	for i := 0; i < 10*shardedBenchNodes; i++ {
		u, v := r.Intn(shardedBenchNodes), r.Intn(shardedBenchNodes)
		if u == v {
			continue
		}
		if err := bld.AddEdge(ids[u], preds[r.Intn(len(preds))], ids[v]); err != nil {
			panic(err)
		}
	}
	// Distinct roots for the workload, all of the plain "Thing" type (index
	// multiples of 4 by construction) so the query's root-type condition
	// holds; the dense random topology gives every root ample candidates.
	var roots []kg.NodeID
	for k := 0; k < 16; k++ {
		roots = append(roots, ids[k*1000])
	}
	return bld.Build(), roots
}

// shardedBenchReps repeats every (root, shard count) measurement so the
// reported percentiles rest on dozens of samples instead of one pass.
const shardedBenchReps = 3

// RunSharded measures the sharded cold path: every workload query runs on
// a freshly built engine with the answer-space cache disabled, so each
// measurement pays walker construction, convergence, per-stratum
// splitting, validation and refinement from scratch — the worst case a
// scaled-out deployment sees on an unwarmed shard. The shard settings are
// interleaved inside one measurement loop, so machine drift lands on every
// setting equally instead of biasing whichever ran last.
func RunSharded(ctx context.Context, shardCounts []int) (*ShardedResult, error) {
	g, roots := shardedBenchGraph()
	model := embtest.Figure1Model(g)
	out := &ShardedResult{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	latencies := make([][]float64, len(shardCounts))
	draws := make([]int, len(shardCounts))
	for rep := 0; rep < shardedBenchReps; rep++ {
		for _, root := range roots {
			for si, shards := range shardCounts {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				eng, err := core.NewEngine(g, model, core.Options{
					ErrorBound: 0.10, Seed: 7, Shards: shards, CacheMaxBytes: -1,
				})
				if err != nil {
					return nil, err
				}
				q := query.Simple(query.Avg, "price", g.Name(root), "Thing", "product", "Automobile")
				begin := time.Now()
				res, err := eng.Query(ctx, q)
				elapsed := time.Since(begin)
				if err != nil {
					continue // a root without candidates is not a perf signal
				}
				draws[si] += res.SampleSize
				latencies[si] = append(latencies[si], float64(elapsed.Microseconds())/1000)
			}
		}
	}
	for si, shards := range shardCounts {
		if len(latencies[si]) == 0 {
			return nil, fmt.Errorf("bench: no sharded workload query completed at %d shards", shards)
		}
		sort.Float64s(latencies[si])
		out.Runs = append(out.Runs, ShardedLatency{
			Shards:    shards,
			Queries:   len(latencies[si]),
			ColdP50MS: percentile(latencies[si], 0.50),
			ColdP95MS: percentile(latencies[si], 0.95),
			ColdMaxMS: latencies[si][len(latencies[si])-1],
			Draws:     draws[si],
		})
	}
	if n := len(out.Runs); n >= 2 && out.Runs[n-1].ColdP95MS > 0 {
		out.SpeedupP95 = out.Runs[0].ColdP95MS / out.Runs[n-1].ColdP95MS
	}
	return out, nil
}
