// Package bench reproduces every table and figure of the paper's evaluation
// (§VII): a runner per artefact prints the same rows/series the paper
// reports, over the synthetic datasets of internal/datagen. Effectiveness is
// measured against both ground truths — τ-GT (the SSB oracle at the
// dataset's optimal τ) and HA-GT (the simulated annotation) — and efficiency
// as wall-clock response time, exactly as in the paper.
package bench
