package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/federate"
	"kgaq/internal/httpapi"
	"kgaq/internal/kg"
	"kgaq/internal/query"
)

// federatedAnswers sizes the federated bench split: enough priced answers
// per member that the coordinator runs real refinement rounds, small
// enough that the axis stays a few seconds.
const federatedAnswers = 600

// federatedMembers is the federation width of the bench axis: one
// coordinator scattering across three in-process members, the smallest
// fleet where Neyman allocation across members is observable.
const federatedMembers = 3

// federatedBenchReps repeats every aggregate's measurement so the
// percentiles rest on more than one sample per function.
const federatedBenchReps = 3

// FederatedResult is the scatter/gather axis of the trajectory: cold
// end-to-end latency through a 1-coordinator / 3-member loopback
// federation next to the same split's unsplit twin on a local engine, plus
// the per-query fan-out (member RPCs and refinement rounds) that prices
// the coordination overhead.
type FederatedResult struct {
	Members int `json:"members"`
	Answers int `json:"answers"`
	Queries int `json:"queries"`

	// Cold federated latency over the COUNT/SUM/AVG workload (the member
	// answer-space caches are disabled, so every query pays the full
	// scatter/sample/gather path).
	ColdP50MS float64 `json:"cold_p50_ms"`
	ColdP95MS float64 `json:"cold_p95_ms"`

	// TwinColdP50MS is the same workload on the unsplit twin graph through
	// a plain local engine — what federation's fan-out is measured against.
	TwinColdP50MS float64 `json:"twin_cold_p50_ms"`

	// MeanRounds and RPCsPerQuery are the per-round member fan-out: a
	// query takes MeanRounds scatter rounds on average, issuing
	// RPCsPerQuery member RPCs in total (retries and hedges included).
	MeanRounds   float64 `json:"mean_rounds"`
	RPCsPerQuery float64 `json:"rpcs_per_query"`

	// DrawsPerQuery is the mean merged sample size across members.
	DrawsPerQuery float64 `json:"draws_per_query"`
}

// federatedBenchGraphs builds the shard-owners split: every graph holds
// the anchor Country root, member j owns the answers with i ≡ j (mod
// members), and the twin holds all of them.
func federatedBenchGraphs() (members []*kg.Graph, twin *kg.Graph) {
	build := func(owns func(i int) bool) *kg.Graph {
		bld := kg.NewBuilder()
		root := bld.AddNode("FedRoot_0", "Country")
		for i := 0; i < federatedAnswers; i++ {
			if !owns(i) {
				continue
			}
			car := bld.AddNode(fmt.Sprintf("FedCar_%d", i), "Automobile")
			if err := bld.SetAttr(car, "price", 10000+float64(i%53)*613); err != nil {
				panic(err)
			}
			if err := bld.AddEdge(root, "product", car); err != nil {
				panic(err)
			}
		}
		return bld.Build()
	}
	for j := 0; j < federatedMembers; j++ {
		j := j
		members = append(members, build(func(i int) bool { return i%federatedMembers == j }))
	}
	return members, build(func(int) bool { return true })
}

// RunFederated measures the federated scatter/gather axis: three
// in-process member servers over the split graphs behind one coordinator,
// with the unsplit twin on a local engine as the non-federated reference.
func RunFederated(ctx context.Context) (*FederatedResult, error) {
	graphs, twinGraph := federatedBenchGraphs()

	var members []federate.Member
	var servers []*httptest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for j, g := range graphs {
		eng, err := core.NewEngine(g, embtest.Figure1Model(g), core.Options{
			SkipValidation: true, Seed: int64(100 + j), CacheMaxBytes: -1,
		})
		if err != nil {
			return nil, err
		}
		srv := httptest.NewServer(httpapi.NewServer(eng).Handler())
		servers = append(servers, srv)
		members = append(members, federate.Member{Name: fmt.Sprintf("m%d", j), URL: srv.URL})
	}
	coord, err := federate.New(federate.Config{Members: members, HedgeAfter: -1},
		core.Options{ErrorBound: 0.10, Seed: 7})
	if err != nil {
		return nil, err
	}
	twinEng, err := core.NewEngine(twinGraph, embtest.Figure1Model(twinGraph), core.Options{
		SkipValidation: true, Seed: 11, ErrorBound: 0.10, CacheMaxBytes: -1,
	})
	if err != nil {
		return nil, err
	}

	workload := []*query.Aggregate{
		query.Simple(query.Count, "", "FedRoot_0", "Country", "product", "Automobile"),
		query.Simple(query.Sum, "price", "FedRoot_0", "Country", "product", "Automobile"),
		query.Simple(query.Avg, "price", "FedRoot_0", "Country", "product", "Automobile"),
	}

	out := &FederatedResult{Members: federatedMembers, Answers: federatedAnswers}
	var fedLat, twinLat []float64
	totalRounds, totalDraws := 0, 0
	for rep := 0; rep < federatedBenchReps; rep++ {
		for _, q := range workload {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			begin := time.Now()
			res, err := coord.Query(ctx, q)
			if err != nil {
				return nil, fmt.Errorf("federated %s: %w", q.Func, err)
			}
			fedLat = append(fedLat, float64(time.Since(begin).Microseconds())/1000)
			totalRounds += len(res.Rounds)
			totalDraws += res.SampleSize
			out.Queries++

			begin = time.Now()
			if _, err := twinEng.Query(ctx, q); err != nil {
				return nil, fmt.Errorf("twin %s: %w", q.Func, err)
			}
			twinLat = append(twinLat, float64(time.Since(begin).Microseconds())/1000)
		}
	}
	sort.Float64s(fedLat)
	sort.Float64s(twinLat)
	out.ColdP50MS = percentile(fedLat, 0.50)
	out.ColdP95MS = percentile(fedLat, 0.95)
	out.TwinColdP50MS = percentile(twinLat, 0.50)
	out.MeanRounds = float64(totalRounds) / float64(out.Queries)
	st := coord.Stats()
	rpcs := uint64(0)
	for _, m := range st.Members {
		rpcs += m.RPCs
	}
	out.RPCsPerQuery = float64(rpcs) / float64(out.Queries)
	out.DrawsPerQuery = float64(totalDraws) / float64(out.Queries)
	return out, nil
}
