package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadTrajectory loads a committed BENCH_*.json baseline.
func ReadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("trajectory %s: %v", path, err)
	}
	if tr.Schema == "" {
		return nil, fmt.Errorf("trajectory %s: missing schema field", path)
	}
	return &tr, nil
}

// Regression is one gate finding: a tracked metric of the fresh trajectory
// exceeding the committed baseline beyond tolerance.
type Regression struct {
	Metric   string
	Baseline float64
	Fresh    float64
	// Ratio is fresh/baseline; the gate trips when it exceeds 1+tolerance.
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.3f → %.3f (%.2fx, tolerance exceeded)", r.Metric, r.Baseline, r.Fresh, r.Ratio)
}

// CompareTrajectories gates a fresh trajectory against a committed
// baseline: the serving-workload latency percentiles (cold-cache warm-up
// excluded on both sides, so the comparison is steady state vs steady
// state) must not exceed baseline × (1+tolerance). Zero-valued baseline
// metrics are skipped — an older-schema baseline simply gates fewer axes.
// The returned slice is empty when the gate passes.
func CompareTrajectories(baseline, fresh *Trajectory, tolerance float64) []Regression {
	var regs []Regression
	check := func(metric string, base, cur float64) {
		if base <= 0 || cur <= 0 {
			return
		}
		if ratio := cur / base; ratio > 1+tolerance {
			regs = append(regs, Regression{Metric: metric, Baseline: base, Fresh: cur, Ratio: ratio})
		}
	}
	check("latency_p50_ms", baseline.LatencyP50MS, fresh.LatencyP50MS)
	check("latency_p95_ms", baseline.LatencyP95MS, fresh.LatencyP95MS)
	if baseline.Throughput != nil && fresh.Throughput != nil {
		check("throughput.sustained.latency_p50_ms",
			baseline.Throughput.Sustained.LatencyP50MS, fresh.Throughput.Sustained.LatencyP50MS)
		check("throughput.sustained.latency_p95_ms",
			baseline.Throughput.Sustained.LatencyP95MS, fresh.Throughput.Sustained.LatencyP95MS)
	}
	if baseline.Federated != nil && fresh.Federated != nil {
		check("federated.cold_p50_ms", baseline.Federated.ColdP50MS, fresh.Federated.ColdP50MS)
		check("federated.cold_p95_ms", baseline.Federated.ColdP95MS, fresh.Federated.ColdP95MS)
	}
	return regs
}

// Gate tolerance bounds for the noise-derived (auto) mode: the floor keeps
// a suspiciously quiet run from tripping on scheduler jitter the noise
// passes happened to miss; the ceiling keeps a pathologically noisy
// baseline from waving real regressions through.
const (
	// autoToleranceFactor scales the baseline's recorded max percentile
	// spread: two honest runs can each land anywhere in the spread, so the
	// gate must forgive at least 2× — 3× adds margin for tail draws beyond
	// the recorded extremes.
	autoToleranceFactor = 3
	minAutoTolerance    = 0.25
	maxAutoTolerance    = 1.0
	// fallbackTolerance applies when the baseline predates the v7 noise
	// record and the caller asked for auto tolerance.
	fallbackTolerance = 0.5
)

// ResolveTolerance turns the caller's tolerance request into the effective
// gate tolerance: a non-negative value is used as-is, a negative value asks
// for auto mode — derived from the committed baseline's own runner-noise
// record (autoToleranceFactor × max percentile spread, clamped), falling
// back to fallbackTolerance for pre-noise baselines.
func ResolveTolerance(requested float64, baseline *Trajectory) (tol float64, auto bool) {
	if requested >= 0 {
		return requested, false
	}
	if baseline.Noise == nil || baseline.Noise.Passes < 2 {
		return fallbackTolerance, true
	}
	tol = autoToleranceFactor * baseline.Noise.MaxSpread()
	if tol < minAutoTolerance {
		tol = minAutoTolerance
	}
	if tol > maxAutoTolerance {
		tol = maxAutoTolerance
	}
	return tol, true
}

// Gate measures a fresh trajectory and compares it against the committed
// baseline at path, writing a verdict to w. A negative tolerance derives
// the effective tolerance from the baseline's runner-noise record (see
// ResolveTolerance). A non-nil error means the gate tripped (or could not
// run); callers exit non-zero on it.
func Gate(w io.Writer, cfg Config, baselinePath string, tolerance float64) error {
	baseline, err := ReadTrajectory(baselinePath)
	if err != nil {
		return err
	}
	tolerance, auto := ResolveTolerance(tolerance, baseline)
	fresh, err := RunTrajectory(cfg, baseline.Label+"-gate")
	if err != nil {
		return err
	}
	mode := "fixed"
	if auto {
		mode = "auto (from baseline noise)"
		if baseline.Noise != nil {
			mode = fmt.Sprintf("auto (%d× baseline max spread %.0f%%)",
				autoToleranceFactor, 100*baseline.Noise.MaxSpread())
		}
	}
	fmt.Fprintf(w, "gate: baseline %s (%s), tolerance %.0f%% [%s]\n",
		baselinePath, baseline.Label, 100*tolerance, mode)
	fmt.Fprintf(w, "  serving p50 %.2fms → %.2fms, p95 %.2fms → %.2fms\n",
		baseline.LatencyP50MS, fresh.LatencyP50MS, baseline.LatencyP95MS, fresh.LatencyP95MS)
	if baseline.Throughput != nil && fresh.Throughput != nil {
		fmt.Fprintf(w, "  sustained p50 %.2fms → %.2fms, p95 %.2fms → %.2fms\n",
			baseline.Throughput.Sustained.LatencyP50MS, fresh.Throughput.Sustained.LatencyP50MS,
			baseline.Throughput.Sustained.LatencyP95MS, fresh.Throughput.Sustained.LatencyP95MS)
	}
	regs := CompareTrajectories(baseline, fresh, tolerance)
	if len(regs) == 0 {
		fmt.Fprintln(w, "  PASS: no tracked metric regressed beyond tolerance")
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(w, "  REGRESSION %s\n", r)
	}
	return fmt.Errorf("%d metric(s) regressed beyond %.0f%% tolerance", len(regs), 100*tolerance)
}
