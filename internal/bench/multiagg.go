package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kgaq/internal/core"
	"kgaq/internal/embedding/embtest"
	"kgaq/internal/query"
)

// MultiAggLatency is one execution mode's cold-latency distribution over
// the multi-aggregate workload.
type MultiAggLatency struct {
	Mode    string  `json:"mode"`
	Queries int     `json:"queries"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	// Draws is the total sample size the mode consumed — the shared draw
	// stream shows up as roughly one query's draws instead of three.
	Draws int `json:"draws"`
}

// MultiAggResult compares the faceted-exploration workload — COUNT,
// SUM(price) and AVG(price) of one query graph — across three execution
// modes on cold engines (answer-space cache disabled, so every mode pays
// its builds honestly):
//
//   - single:         one AVG query (the baseline unit of work)
//   - three-separate: three independent Query calls (3 builds, 3 samples)
//   - multi:          one QueryMulti call (1 build, 1 shared sample)
//
// The PR 5 acceptance bar: MultiVsSingle < 2 while SeparateVsSingle ≈ 3.
type MultiAggResult struct {
	Nodes            int               `json:"nodes"`
	Runs             []MultiAggLatency `json:"runs"`
	MultiVsSingle    float64           `json:"multi_vs_single_p50"`
	SeparateVsSingle float64           `json:"separate_vs_single_p50"`
}

// multiAggReps repeats every (root, mode) measurement.
const multiAggReps = 3

// RunMultiAgg measures the multi-aggregate trajectory case on the 40k-node
// bench graph. Modes are interleaved inside one loop so machine drift
// lands on all of them equally.
func RunMultiAgg(ctx context.Context) (*MultiAggResult, error) {
	g, roots := shardedBenchGraph()
	model := embtest.Figure1Model(g)
	modes := []string{"single", "three-separate", "multi"}
	latencies := make([][]float64, len(modes))
	draws := make([]int, len(modes))

	freshEngine := func() (*core.Engine, error) {
		return core.NewEngine(g, model, core.Options{
			ErrorBound: 0.10, Seed: 7, CacheMaxBytes: -1,
		})
	}
	for rep := 0; rep < multiAggReps; rep++ {
		for _, root := range roots {
			qCount := query.Simple(query.Count, "", g.Name(root), "Thing", "product", "Automobile")
			qSum := query.Simple(query.Sum, "price", g.Name(root), "Thing", "product", "Automobile")
			qAvg := query.Simple(query.Avg, "price", g.Name(root), "Thing", "product", "Automobile")
			specs := []core.AggSpec{
				{Func: query.Count},
				{Func: query.Sum, Attr: "price"},
				{Func: query.Avg, Attr: "price"},
			}
			for mi, mode := range modes {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				eng, err := freshEngine()
				if err != nil {
					return nil, err
				}
				begin := time.Now()
				sampled := 0
				ok := true
				switch mode {
				case "single":
					res, err := eng.Query(ctx, qAvg)
					if err != nil {
						ok = false
						break
					}
					sampled = res.SampleSize
				case "three-separate":
					for _, q := range []*query.Aggregate{qCount, qSum, qAvg} {
						res, err := eng.Query(ctx, q)
						if err != nil {
							ok = false
							break
						}
						sampled += res.SampleSize
					}
				case "multi":
					res, err := eng.QueryMulti(ctx, qCount, specs)
					if err != nil {
						ok = false
						break
					}
					sampled = res.SampleSize
				}
				if !ok {
					continue // a root without candidates is not a perf signal
				}
				latencies[mi] = append(latencies[mi], float64(time.Since(begin).Microseconds())/1000)
				draws[mi] += sampled
			}
		}
	}

	out := &MultiAggResult{Nodes: g.NumNodes()}
	for mi, mode := range modes {
		if len(latencies[mi]) == 0 {
			return nil, fmt.Errorf("bench: no multi-aggregate workload query completed in mode %s", mode)
		}
		sort.Float64s(latencies[mi])
		out.Runs = append(out.Runs, MultiAggLatency{
			Mode:    mode,
			Queries: len(latencies[mi]),
			P50MS:   percentile(latencies[mi], 0.50),
			P95MS:   percentile(latencies[mi], 0.95),
			Draws:   draws[mi],
		})
	}
	if base := out.Runs[0].P50MS; base > 0 {
		out.SeparateVsSingle = out.Runs[1].P50MS / base
		out.MultiVsSingle = out.Runs[2].P50MS / base
	}
	return out, nil
}
