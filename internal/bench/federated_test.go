package bench

import (
	"context"
	"testing"
)

func TestRunFederated(t *testing.T) {
	if testing.Short() {
		t.Skip("federated bench axis in -short mode")
	}
	res, err := RunFederated(context.Background())
	if err != nil {
		t.Fatalf("RunFederated: %v", err)
	}
	if res.Members != federatedMembers || res.Queries == 0 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	if res.ColdP50MS <= 0 || res.TwinColdP50MS <= 0 {
		t.Errorf("latencies must be positive: %+v", res)
	}
	if res.RPCsPerQuery < float64(federatedMembers) {
		t.Errorf("a converged query must contact every member at least once: %.1f RPCs/query", res.RPCsPerQuery)
	}
	if res.MeanRounds < 1 {
		t.Errorf("mean rounds %.2f < 1", res.MeanRounds)
	}
}
