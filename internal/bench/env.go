package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"kgaq/internal/baselines"
	"kgaq/internal/core"
	"kgaq/internal/datagen"
	"kgaq/internal/embedding"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// Config trims experiment size so the full suite can run as Go benchmarks.
type Config struct {
	// PerCategory caps the number of queries evaluated per (dataset,
	// category) bucket; zero means 4.
	PerCategory int
	// Profiles selects datasets (default: the three paper profiles).
	Profiles []datagen.Profile
	// Seed feeds the engines.
	Seed int64
	// TrainEpochs for Table XIII's embedding training (default 40).
	TrainEpochs int
	// Ctx, when set, cancels in-flight experiment queries (^C in aggbench);
	// nil means context.Background().
	Ctx context.Context
}

// ctx returns the configured cancellation context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c Config) withDefaults() Config {
	if c.PerCategory <= 0 {
		c.PerCategory = 4
	}
	if len(c.Profiles) == 0 {
		c.Profiles = datagen.Profiles()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 40
	}
	return c
}

// QuickConfig is a fast configuration for tests and smoke benchmarks: the
// tiny dataset, two queries per bucket.
func QuickConfig() Config {
	return Config{
		PerCategory: 2,
		Profiles:    []datagen.Profile{datagen.TinyProfile()},
		Seed:        1,
		TrainEpochs: 15,
	}
}

// Env is one dataset prepared for experiments: the generated graph and
// workload, the τ-GT oracle at the profile's optimal τ, and a cache of
// ground-truth values.
type Env struct {
	Profile datagen.Profile
	DS      *datagen.Dataset
	SSB     *baselines.SSB

	tauGT map[string]float64 // query ID → τ-GT value
	haGT  map[string]float64 // query ID → HA-GT value
}

// NewEnv generates the dataset and its oracles.
func NewEnv(p datagen.Profile) (*Env, error) {
	ds, err := datagen.Generate(p)
	if err != nil {
		return nil, err
	}
	ssb, err := baselines.NewSSB(ds.Graph, ds.Model, p.OptimalTau, 3)
	if err != nil {
		return nil, err
	}
	return &Env{
		Profile: p,
		DS:      ds,
		SSB:     ssb,
		tauGT:   map[string]float64{},
		haGT:    map[string]float64{},
	}, nil
}

// Envs builds environments for every configured profile.
func Envs(cfg Config) ([]*Env, error) {
	cfg = cfg.withDefaults()
	out := make([]*Env, 0, len(cfg.Profiles))
	for _, p := range cfg.Profiles {
		e, err := NewEnv(p)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// TauGT returns (computing once) the τ-GT value of a workload query.
func (e *Env) TauGT(q datagen.GenQuery) (float64, error) {
	if v, ok := e.tauGT[q.ID]; ok {
		return v, nil
	}
	res, err := e.SSB.Execute(q.Agg)
	if err != nil {
		return 0, err
	}
	e.tauGT[q.ID] = res.Value
	return res.Value, nil
}

// HAGT returns (computing once) the HA-GT value of a workload query.
func (e *Env) HAGT(q datagen.GenQuery) (float64, error) {
	if v, ok := e.haGT[q.ID]; ok {
		return v, nil
	}
	v, err := e.DS.HAValue(q)
	if err != nil {
		return 0, err
	}
	e.haGT[q.ID] = v
	return v, nil
}

// Engine builds the paper-default engine over this dataset (τ at the
// profile's optimum).
func (e *Env) Engine(opts core.Options) (*core.Engine, error) {
	if opts.Tau == 0 {
		opts.Tau = e.Profile.OptimalTau
	}
	return core.NewEngine(e.DS.Graph, e.DS.Model, opts)
}

// pick returns up to n queries of a category, preferring diverse templates
// (stable order).
func pick(e *Env, category string, n int) []datagen.GenQuery {
	qs := e.DS.QueriesByCategory(category)
	if len(qs) <= n {
		return qs
	}
	// Take a spread across the list rather than the first n (the workload
	// groups queries by anchor).
	out := make([]datagen.GenQuery, 0, n)
	step := len(qs) / n
	for i := 0; i < n; i++ {
		out = append(out, qs[i*step])
	}
	return out
}

// pickShape returns up to n queries of a query-graph shape.
func pickShape(e *Env, s query.Shape, n int) []datagen.GenQuery {
	var qs []datagen.GenQuery
	for _, q := range e.DS.Queries {
		// Extremes and grouped queries are evaluated by their own tables.
		if q.Category == "extreme" || q.Category == "groupby" {
			continue
		}
		if q.Shape == s {
			qs = append(qs, q)
		}
	}
	if len(qs) <= n {
		return qs
	}
	out := make([]datagen.GenQuery, 0, n)
	step := len(qs) / n
	for i := 0; i < n; i++ {
		out = append(out, qs[i*step])
	}
	return out
}

// timed measures one call's wall-clock time.
func timed(f func() error) (time.Duration, error) {
	begin := time.Now()
	err := f()
	return time.Since(begin), err
}

// relErr is relative error in percent, or NaN when the ground truth errors.
func relErrPct(est, truth float64) float64 {
	return 100 * stats.RelativeError(est, truth)
}

// meanOrDash formats the mean of xs, or "-" when empty.
func meanOrDash(xs []float64, format string) string {
	if len(xs) == 0 {
		return "-"
	}
	return fmt.Sprintf(format, stats.Mean(xs))
}

// methodSet builds the comparison systems for one environment. EAQ needs a
// trained link scorer; training cost is attributed to offline preparation,
// as in the paper.
func methodSet(e *Env, epochs int) ([]baselines.Method, error) {
	trained, err := embedding.Train("TransE", e.DS.Graph, embedding.TrainConfig{
		Dim: 24, Epochs: epochs, LearningRate: 0.03, Margin: 1, Seed: 9,
	})
	if err != nil {
		return nil, err
	}
	sgq, err := baselines.NewSGQ(e.DS.Graph, e.DS.Model, e.Profile.OptimalTau, 3)
	if err != nil {
		return nil, err
	}
	return []baselines.Method{
		baselines.NewEAQ(e.DS.Graph, trained),
		baselines.NewGraB(e.DS.Graph),
		baselines.NewQGA(e.DS.Graph),
		sgq,
		baselines.NewJENA(e.DS.Graph),
		baselines.NewVirtuoso(e.DS.Graph),
		e.SSB,
	}, nil
}

// shapes lists the five query shapes in the paper's column order.
func shapes() []query.Shape {
	return []query.Shape{
		query.ShapeSimple, query.ShapeChain, query.ShapeStar,
		query.ShapeCycle, query.ShapeFlower,
	}
}

// sortedKeys returns a map's keys in stable order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Runner executes one experiment and writes its report.
type Runner func(w io.Writer, cfg Config) error

// Registry maps experiment ids (table5…fig6f) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table5":           Table5,
		"table6":           Table6,
		"table7":           Table7,
		"table8":           Table8,
		"table9":           Table9,
		"table10":          Table10,
		"table11":          Table11,
		"table12":          Table12,
		"table13":          Table13,
		"fig5a":            Fig5a,
		"fig5b":            Fig5b,
		"fig5c":            Fig5c,
		"fig6a":            Fig6a,
		"fig6b":            Fig6b,
		"fig6c":            Fig6c,
		"fig6d":            Fig6d,
		"fig6e":            Fig6e,
		"fig6f":            Fig6f,
		"ablation-divisor": AblationDivisor,
	}
}

// ExperimentIDs lists registry keys in paper order.
func ExperimentIDs() []string {
	return []string{
		"table5", "table6", "table7", "table8", "table9", "table10",
		"table11", "table12", "table13",
		"fig5a", "fig5b", "fig5c",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
		"ablation-divisor",
	}
}
