package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"kgaq/internal/baselines"
	"kgaq/internal/core"
	"kgaq/internal/datagen"
	"kgaq/internal/embedding"
	"kgaq/internal/estimate"
	"kgaq/internal/query"
)

// funcBuckets is the COUNT/AVG/SUM breakdown used by Table XII and the
// figure sweeps.
var funcBuckets = []query.AggFunc{query.Count, query.Avg, query.Sum}

// simpleByFunc picks up to n simple queries per aggregate function.
func simpleByFunc(e *Env, n int) map[query.AggFunc][]datagen.GenQuery {
	out := map[query.AggFunc][]datagen.GenQuery{}
	for _, q := range e.DS.QueriesByCategory("simple") {
		if len(out[q.Agg.Func]) < n {
			out[q.Agg.Func] = append(out[q.Agg.Func], q)
		}
	}
	return out
}

// Table12 reproduces Table XII: per-step time (ms) of the three pipeline
// stages — S1 semantic-aware sampling, S2 approximate estimation, S3
// accuracy guarantee — per aggregate function.
func Table12(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Profiles[0])
	if err != nil {
		return err
	}
	eng, err := env.Engine(core.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	byFunc := simpleByFunc(env, cfg.PerCategory)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table XII: per-step time (ms) on", env.Profile.Name)
	fmt.Fprintln(tw, "Operator\tS1 sampling\tS2 estimation\tS3 guarantee")
	for _, fn := range funcBuckets {
		var s1, s2, s3 []float64
		for _, q := range byFunc[fn] {
			res, err := eng.Query(cfg.ctx(), q.Agg)
			if err != nil {
				continue
			}
			s1 = append(s1, float64(res.Times.Sampling.Microseconds())/1000)
			s2 = append(s2, float64(res.Times.Estimation.Microseconds())/1000)
			s3 = append(s3, float64(res.Times.Guarantee.Microseconds())/1000)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", fn,
			meanOrDash(s1, "%.2f"), meanOrDash(s2, "%.2f"), meanOrDash(s3, "%.2f"))
	}
	return tw.Flush()
}

// Table13 reproduces Table XIII: the effect of the KG embedding model —
// training time, parameter memory and query relative error (HA-GT) for
// TransE, TransD, TransH, RESCAL and SE trained on the dataset's triples.
func Table13(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Profiles[0])
	if err != nil {
		return err
	}
	qs := pick(env, "simple", cfg.PerCategory)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table XIII: effect of KG embedding models on", env.Profile.Name)
	fmt.Fprintln(tw, "Model\tEmbed time (s)\tMem (MB)\tRelative error % (HA-GT)")
	for _, name := range embedding.ModelNames() {
		dim := 24
		if name == "RESCAL" || name == "SE" {
			dim = 16 // matrix models carry dim² parameters per relation
		}
		trained, err := embedding.Train(name, env.DS.Graph, embedding.TrainConfig{
			Dim: dim, Epochs: cfg.TrainEpochs, LearningRate: 0.03, Margin: 1, Seed: 11,
		})
		if err != nil {
			return err
		}
		eng, err := core.NewEngine(env.DS.Graph, trained, core.Options{
			Tau: env.Profile.OptimalTau, Seed: cfg.Seed, ErrorBound: 0.01,
		})
		if err != nil {
			return err
		}
		var errs []float64
		for _, q := range qs {
			haGT, err := env.HAGT(q)
			if err != nil {
				continue
			}
			res, err := eng.Query(cfg.ctx(), q.Agg)
			if err != nil {
				continue
			}
			errs = append(errs, relErrPct(res.Estimate, haGT))
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%s\n", name,
			trained.TrainTime.Seconds(),
			float64(trained.MemoryBytes())/(1<<20),
			meanOrDash(errs, "%.2f"))
	}
	return tw.Flush()
}

// sweepPoint is one x-axis position of a parameter sweep.
type sweepPoint struct {
	label string
	opts  core.Options
}

// runSweep executes simple queries per aggregate function at every sweep
// point, reporting mean relative error (vs the chosen ground truth) and
// mean response time.
func runSweep(w io.Writer, cfg Config, title string, points []sweepPoint,
	gt func(*Env, datagen.GenQuery) (float64, error)) error {

	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Profiles[0])
	if err != nil {
		return err
	}
	byFunc := simpleByFunc(env, cfg.PerCategory)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title, "on", env.Profile.Name)
	fmt.Fprint(tw, "Metric\tFunc")
	for _, p := range points {
		fmt.Fprintf(tw, "\t%s", p.label)
	}
	fmt.Fprintln(tw)

	type row struct{ errs, times []string }
	rows := map[query.AggFunc]*row{}
	for _, fn := range funcBuckets {
		rows[fn] = &row{}
	}
	for _, p := range points {
		opts := p.opts
		opts.Seed = cfg.Seed
		eng, err := env.Engine(opts)
		if err != nil {
			return err
		}
		for _, fn := range funcBuckets {
			var errs, times []float64
			for _, q := range byFunc[fn] {
				truth, err := gt(env, q)
				if err != nil {
					continue
				}
				var res *core.Result
				d, err := timed(func() error {
					var err error
					res, err = eng.Query(cfg.ctx(), q.Agg)
					return err
				})
				if err != nil {
					continue
				}
				errs = append(errs, relErrPct(res.Estimate, truth))
				times = append(times, float64(d.Microseconds())/1000)
			}
			rows[fn].errs = append(rows[fn].errs, meanOrDash(errs, "%.2f"))
			rows[fn].times = append(rows[fn].times, meanOrDash(times, "%.1f"))
		}
	}
	for _, fn := range funcBuckets {
		fmt.Fprintf(tw, "error %%\t%s", fn)
		for _, v := range rows[fn].errs {
			fmt.Fprintf(tw, "\t%s", v)
		}
		fmt.Fprintln(tw)
	}
	for _, fn := range funcBuckets {
		fmt.Fprintf(tw, "time ms\t%s", fn)
		for _, v := range rows[fn].times {
			fmt.Fprintf(tw, "\t%s", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func tauGTOf(e *Env, q datagen.GenQuery) (float64, error) { return e.TauGT(q) }
func haGTOf(e *Env, q datagen.GenQuery) (float64, error)  { return e.HAGT(q) }

// Fig5a reproduces Fig. 5(a): the sampling-step ablation — semantic-aware
// sampling vs the topology-only CNARW and Node2Vec walkers.
func Fig5a(w io.Writer, cfg Config) error {
	return runSweep(w, cfg, "Fig 5a: effect of S1 (sampler)", []sweepPoint{
		{label: "semantic", opts: core.Options{Sampler: core.SamplerSemantic}},
		{label: "CNARW", opts: core.Options{Sampler: core.SamplerCNARW}},
		{label: "Node2Vec", opts: core.Options{Sampler: core.SamplerNode2Vec}},
	}, haGTOf)
}

// Fig5b reproduces Fig. 5(b): estimation with vs without correctness
// validation.
func Fig5b(w io.Writer, cfg Config) error {
	return runSweep(w, cfg, "Fig 5b: effect of S2 (correctness validation)", []sweepPoint{
		{label: "w/ validation", opts: core.Options{}},
		{label: "w/o validation", opts: core.Options{SkipValidation: true}},
	}, haGTOf)
}

// Fig5c reproduces Fig. 5(c): the error-based sample-size configuration of
// Eq. 12 vs a fixed increment of 50.
func Fig5c(w io.Writer, cfg Config) error {
	return runSweep(w, cfg, "Fig 5c: effect of S3 (sample-size configuration)", []sweepPoint{
		{label: "error-based", opts: core.Options{}},
		{label: "fixed(50)", opts: core.Options{FixedDelta: 50}},
	}, haGTOf)
}

// Fig6a reproduces Fig. 6(a): interactive performance — the incremental
// response time as the user tightens eb from 5% to 1% in 1% steps.
func Fig6a(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Profiles[0])
	if err != nil {
		return err
	}
	byFunc := simpleByFunc(env, cfg.PerCategory)
	steps := []float64{0.05, 0.04, 0.03, 0.02, 0.01}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig 6a: incremental response time (ms) while tightening eb on", env.Profile.Name)
	fmt.Fprint(tw, "Func")
	for i := 1; i < len(steps); i++ {
		fmt.Fprintf(tw, "\t%.0f%%→%.0f%%", steps[i-1]*100, steps[i]*100)
	}
	fmt.Fprintln(tw)
	for _, fn := range funcBuckets {
		inc := make([][]float64, len(steps)-1)
		for _, q := range byFunc[fn] {
			eng, err := env.Engine(core.Options{Seed: cfg.Seed})
			if err != nil {
				return err
			}
			x, err := eng.Start(cfg.ctx(), q.Agg)
			if err != nil {
				continue
			}
			if _, err := x.Refine(cfg.ctx(), steps[0]); err != nil {
				continue
			}
			for i := 1; i < len(steps); i++ {
				begin := time.Now()
				if _, err := x.Refine(cfg.ctx(), steps[i]); err != nil {
					break
				}
				inc[i-1] = append(inc[i-1], float64(time.Since(begin).Microseconds())/1000)
			}
		}
		fmt.Fprintf(tw, "%s", fn)
		for i := range inc {
			fmt.Fprintf(tw, "\t%s", meanOrDash(inc[i], "%.2f"))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig6b reproduces Fig. 6(b): the confidence-level sweep.
func Fig6b(w io.Writer, cfg Config) error {
	var points []sweepPoint
	for _, c := range []float64{0.86, 0.89, 0.92, 0.95, 0.98} {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("%.0f%%", c*100),
			opts:  core.Options{Confidence: c},
		})
	}
	return runSweep(w, cfg, "Fig 6b: effect of confidence level 1-α", points, haGTOf)
}

// Fig6c reproduces Fig. 6(c): the repeat-factor sweep.
func Fig6c(w io.Writer, cfg Config) error {
	var points []sweepPoint
	for r := 1; r <= 5; r++ {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("r=%d", r),
			opts:  core.Options{Repeat: r},
		})
	}
	return runSweep(w, cfg, "Fig 6c: effect of repeat factor r", points, haGTOf)
}

// Fig6d reproduces Fig. 6(d): the desired-sample-ratio sweep.
func Fig6d(w io.Writer, cfg Config) error {
	var points []sweepPoint
	for _, l := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("λ=%.1f", l),
			opts:  core.Options{Lambda: l},
		})
	}
	return runSweep(w, cfg, "Fig 6d: effect of desired sample ratio λ", points, haGTOf)
}

// Fig6e reproduces Fig. 6(e): the n-bounded-subgraph sweep.
func Fig6e(w io.Writer, cfg Config) error {
	var points []sweepPoint
	for n := 1; n <= 5; n++ {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("n=%d", n),
			opts:  core.Options{N: n},
		})
	}
	return runSweep(w, cfg, "Fig 6e: effect of n-bounded subgraph", points, haGTOf)
}

// Fig6f reproduces Fig. 6(f): the τ sweep against both ground truths. The
// left panel (τ-GT) recomputes the oracle at each τ; the right panel keeps
// HA-GT fixed.
func Fig6f(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Profiles[0])
	if err != nil {
		return err
	}
	byFunc := simpleByFunc(env, cfg.PerCategory)
	taus := []float64{0.70, 0.75, 0.80, 0.85, 0.90}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig 6f: effect of similarity threshold τ on", env.Profile.Name)
	fmt.Fprint(tw, "GT\tFunc")
	for _, tau := range taus {
		fmt.Fprintf(tw, "\tτ=%.2f", tau)
	}
	fmt.Fprintln(tw)

	for _, gt := range []string{"τ-GT", "HA-GT"} {
		rows := map[query.AggFunc][]string{}
		for _, tau := range taus {
			var oracle *baselines.SSB
			if gt == "τ-GT" {
				oracle, err = baselines.NewSSB(env.DS.Graph, env.DS.Model, tau, 3)
				if err != nil {
					return err
				}
			}
			eng, err := env.Engine(core.Options{Tau: tau, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			for _, fn := range funcBuckets {
				var errs []float64
				for _, q := range byFunc[fn] {
					var truth float64
					if gt == "τ-GT" {
						ans, err := oracle.Execute(q.Agg)
						if err != nil {
							continue
						}
						truth = ans.Value
					} else {
						truth, err = env.HAGT(q)
						if err != nil {
							continue
						}
					}
					res, err := eng.Query(cfg.ctx(), q.Agg)
					if err != nil {
						continue
					}
					errs = append(errs, relErrPct(res.Estimate, truth))
				}
				rows[fn] = append(rows[fn], meanOrDash(errs, "%.2f"))
			}
		}
		for _, fn := range funcBuckets {
			fmt.Fprintf(tw, "%s\t%s", gt, fn)
			for _, v := range rows[fn] {
				fmt.Fprintf(tw, "\t%s", v)
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}

// AblationDivisor compares the unbiased SampleSize divisor policy against
// the paper's printed CorrectOnly form (DESIGN.md, estimator subtlety).
func AblationDivisor(w io.Writer, cfg Config) error {
	return runSweep(w, cfg, "Ablation: estimator divisor policy", []sweepPoint{
		{label: "sample-size", opts: core.Options{Policy: estimate.SampleSize}},
		{label: "correct-only", opts: core.Options{Policy: estimate.CorrectOnly}},
	}, tauGTOf)
}
