package bench

import (
	"bytes"
	"strings"
	"testing"

	"kgaq/internal/datagen"
)

// TestAllRunnersSmoke executes every registered experiment on the tiny
// dataset and checks it produces a non-trivial report without error.
func TestAllRunnersSmoke(t *testing.T) {
	reg := Registry()
	if len(reg) != len(ExperimentIDs()) {
		t.Fatalf("registry has %d entries, ids list %d", len(reg), len(ExperimentIDs()))
	}
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			runner, ok := reg[id]
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			var buf bytes.Buffer
			if err := runner(&buf, QuickConfig()); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s: report too small:\n%s", id, out)
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("%s: single-line report", id)
			}
		})
	}
}

// TestTable5PeaksAtOptimalTau verifies the Table V premise end to end: the
// AJS of the tiny dataset peaks at its designed optimal τ rather than at
// the sweep's extremes.
func TestTable5PeaksAtOptimalTau(t *testing.T) {
	var buf bytes.Buffer
	if err := Table5(&buf, QuickConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	var ajsLine string
	for _, l := range lines {
		if strings.Contains(l, "-AJS") {
			ajsLine = l
			break
		}
	}
	if ajsLine == "" {
		t.Fatalf("no AJS row in:\n%s", out)
	}
	fields := strings.Fields(ajsLine)
	// Columns: name, then τ = 0.60 … 0.95. Optimal τ of tiny is 0.85
	// (index 6 of the fields slice).
	if len(fields) != 9 {
		t.Fatalf("AJS row has %d fields: %q", len(fields), ajsLine)
	}
	vals := fields[1:]
	at := func(i int) string { return vals[i] }
	// AJS at the optimum (0.85, index 5) must beat both extremes.
	if !(at(5) > at(0) && at(5) > at(7)) {
		t.Fatalf("AJS not peaked at τ*: %v", vals)
	}
}

// TestQuickConfigDefaults pins the fast-path configuration.
func TestQuickConfigDefaults(t *testing.T) {
	cfg := QuickConfig()
	if cfg.PerCategory != 2 || len(cfg.Profiles) != 1 {
		t.Fatalf("quick config = %+v", cfg)
	}
	if cfg.Profiles[0].Name != datagen.TinyProfile().Name {
		t.Fatal("quick config should use the tiny profile")
	}
	d := Config{}.withDefaults()
	if d.PerCategory != 4 || len(d.Profiles) != 3 {
		t.Fatalf("defaults = %+v", d)
	}
}
