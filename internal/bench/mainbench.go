package bench

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"kgaq/internal/baselines"
	"kgaq/internal/core"
	"kgaq/internal/datagen"
	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/stats"
)

// Table5 reproduces Table V: the average Jaccard similarity (and its
// variance) between the τ-relevant and human-annotated correct answer sets,
// per dataset, for τ ∈ {0.60 … 0.95}.
func Table5(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	envs, err := Envs(cfg)
	if err != nil {
		return err
	}
	taus := []float64{0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table V: AJS between human-annotated and τ-relevant correct answers\n")
	fmt.Fprintf(tw, "Threshold τ")
	for _, tau := range taus {
		fmt.Fprintf(tw, "\t%.2f", tau)
	}
	fmt.Fprintln(tw)
	for _, e := range envs {
		ajsRow := make([]float64, len(taus))
		varRow := make([]float64, len(taus))
		// Table V uses simple queries (35% of the workload in the paper).
		qs := pick(e, "simple", 3*cfg.PerCategory)
		for ti, tau := range taus {
			ssb, err := baselines.NewSSB(e.DS.Graph, e.DS.Model, tau, 3)
			if err != nil {
				return err
			}
			var js []float64
			for _, q := range qs {
				answers, err := ssb.CorrectAnswers(q.Agg)
				if err != nil {
					continue
				}
				tauSet := map[string]bool{}
				for _, u := range answers {
					tauSet[e.DS.Graph.Name(u)] = true
				}
				haSet := map[string]bool{}
				for _, n := range q.HAAnswers {
					haSet[n] = true
				}
				js = append(js, stats.Jaccard(tauSet, haSet))
			}
			ajsRow[ti] = stats.Mean(js)
			varRow[ti] = stats.Variance(js)
		}
		fmt.Fprintf(tw, "%s-AJS", e.Profile.Name)
		for _, v := range ajsRow {
			fmt.Fprintf(tw, "\t%.2f", v)
		}
		fmt.Fprintln(tw)
		fmt.Fprintf(tw, "%s-Var", e.Profile.Name)
		for _, v := range varRow {
			fmt.Fprintf(tw, "\t%.3f", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// cell accumulates one (method, shape) bucket of the main grid.
type cell struct {
	errTau []float64 // relative error (%) vs τ-GT
	errHA  []float64 // relative error (%) vs HA-GT
	timeMs []float64
}

// grid is the shared computation behind Tables VI, VII and VIII: every
// method over every dataset and shape.
type grid struct {
	cells map[string]map[query.Shape]*cell // method → shape → metrics
	order []string                         // method display order
}

func newGrid() *grid {
	g := &grid{cells: map[string]map[query.Shape]*cell{}}
	for _, m := range []string{"Ours", "EAQ", "GraB", "QGA", "SGQ", "JENA", "Virtuoso", "SSB"} {
		g.order = append(g.order, m)
		g.cells[m] = map[query.Shape]*cell{}
		for _, s := range shapes() {
			g.cells[m][s] = &cell{}
		}
	}
	return g
}

func (g *grid) add(method string, s query.Shape, errTau, errHA, ms float64) {
	c := g.cells[method][s]
	if !math.IsNaN(errTau) && !math.IsInf(errTau, 0) {
		c.errTau = append(c.errTau, errTau)
	}
	if !math.IsNaN(errHA) && !math.IsInf(errHA, 0) {
		c.errHA = append(c.errHA, errHA)
	}
	c.timeMs = append(c.timeMs, ms)
}

// mainGrid evaluates one environment into the grid.
func mainGrid(e *Env, g *grid, cfg Config) error {
	eng, err := e.Engine(core.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	methods, err := methodSet(e, cfg.TrainEpochs)
	if err != nil {
		return err
	}
	for _, shape := range shapes() {
		for _, q := range pickShape(e, shape, cfg.PerCategory) {
			tauGT, err := e.TauGT(q)
			if err != nil {
				continue
			}
			haGT, err := e.HAGT(q)
			if err != nil {
				continue
			}
			// Ours.
			var res *core.Result
			d, err := timed(func() error {
				var err error
				res, err = eng.Query(cfg.ctx(), q.Agg)
				return err
			})
			if err == nil {
				g.add("Ours", shape, relErrPct(res.Estimate, tauGT),
					relErrPct(res.Estimate, haGT), float64(d.Milliseconds()))
			}
			// Baselines.
			for _, m := range methods {
				var ans *baselines.Answer
				d, err := timed(func() error {
					var err error
					ans, err = m.Execute(q.Agg)
					return err
				})
				if err != nil {
					continue // unsupported shape → dash
				}
				g.add(m.Name(), shape, relErrPct(ans.Value, tauGT),
					relErrPct(ans.Value, haGT), float64(d.Milliseconds())+float64(d.Microseconds()%1000)/1000)
			}
		}
	}
	return nil
}

// gridTable prints one metric of the grid in the paper's layout.
func gridTable(w io.Writer, title string, envs []*Env, metric func(*cell) string, compute func(*Env, *grid) error) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprint(tw, "Method")
	for _, e := range envs {
		for _, s := range shapes() {
			fmt.Fprintf(tw, "\t%s/%s", e.Profile.Name[:2], s)
		}
	}
	fmt.Fprintln(tw)

	grids := make([]*grid, len(envs))
	for i, e := range envs {
		grids[i] = newGrid()
		if err := compute(e, grids[i]); err != nil {
			return err
		}
	}
	for _, m := range grids[0].order {
		fmt.Fprint(tw, m)
		for i := range envs {
			for _, s := range shapes() {
				fmt.Fprintf(tw, "\t%s", metric(grids[i].cells[m][s]))
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func runMainTable(w io.Writer, cfg Config, title string, metric func(*cell) string) error {
	cfg = cfg.withDefaults()
	envs, err := Envs(cfg)
	if err != nil {
		return err
	}
	return gridTable(w, title, envs, metric, func(e *Env, g *grid) error {
		return mainGrid(e, g, cfg)
	})
}

// Table6 reproduces Table VI: relative error (%) vs τ-GT for every method,
// dataset and shape.
func Table6(w io.Writer, cfg Config) error {
	return runMainTable(w, cfg,
		"Table VI: relative error (%) vs τ-relevant ground truth",
		func(c *cell) string { return meanOrDash(c.errTau, "%.2f") })
}

// Table7 reproduces Table VII: relative error (%) vs HA-GT.
func Table7(w io.Writer, cfg Config) error {
	return runMainTable(w, cfg,
		"Table VII: relative error (%) vs human-annotated ground truth",
		func(c *cell) string { return meanOrDash(c.errHA, "%.2f") })
}

// Table8 reproduces Table VIII: average response time (ms).
func Table8(w io.Writer, cfg Config) error {
	return runMainTable(w, cfg,
		"Table VIII: average response time (ms)",
		func(c *cell) string { return meanOrDash(c.timeMs, "%.1f") })
}

// Table9 reproduces Table IX: the per-round refinement case study — one
// COUNT, one AVG and one SUM query, each refined until eb=1%.
func Table9(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Profiles[0])
	if err != nil {
		return err
	}
	eng, err := env.Engine(core.Options{Seed: cfg.Seed, ErrorBound: 0.01})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table IX: relative error refinement per round (eb = 1%)")
	fmt.Fprintln(tw, "QID\tround\tV̂\tMoE ε\terror % (τ-GT)")
	wanted := map[query.AggFunc]bool{query.Count: true, query.Avg: true, query.Sum: true}
	for _, q := range env.DS.QueriesByCategory("simple") {
		if !wanted[q.Agg.Func] {
			continue
		}
		wanted[q.Agg.Func] = false
		tauGT, err := env.TauGT(q)
		if err != nil || tauGT == 0 {
			continue
		}
		res, err := eng.Query(cfg.ctx(), q.Agg)
		if err != nil {
			continue
		}
		for i, r := range res.Rounds {
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.3f\t%.2f\n",
				q.ID, i+1, r.Estimate, r.MoE, relErrPct(r.Estimate, tauGT))
		}
	}
	return tw.Flush()
}

// operatorRow evaluates one operator bucket (filter / groupby / extreme)
// under every method; GROUP-BY is only supported by Ours, JENA/Virtuoso and
// SSB (the paper's dashes).
func operatorRows(e *Env, cfg Config, category string) (map[string]*cell, error) {
	eng, err := e.Engine(core.Options{Seed: cfg.Seed, ErrorBound: 0.01})
	if err != nil {
		return nil, err
	}
	methods, err := methodSet(e, cfg.TrainEpochs)
	if err != nil {
		return nil, err
	}
	rows := map[string]*cell{"Ours": {}}
	for _, m := range methods {
		rows[m.Name()] = &cell{}
	}
	groupCapable := map[string]bool{"Ours": true, "JENA": true, "Virtuoso": true, "SSB": true}

	for _, q := range pick(e, category, cfg.PerCategory) {
		ssbAns, err := e.SSB.Execute(q.Agg)
		if err != nil {
			continue
		}
		haIDs := make([]kg.NodeID, 0, len(q.HAAnswers))
		for _, n := range q.HAAnswers {
			if u := e.DS.Graph.NodeByName(n); u != kg.InvalidNode {
				haIDs = append(haIDs, u)
			}
		}
		haAns, err := baselines.AggregateOver(e.DS.Graph, q.Agg, haIDs)
		if err != nil {
			continue
		}

		var res *core.Result
		d, err := timed(func() error {
			var err error
			res, err = eng.Query(cfg.ctx(), q.Agg)
			return err
		})
		if err == nil {
			et, eh := oursOperatorErr(res, ssbAns, haAns, q)
			addCell(rows["Ours"], et, eh, d)
		}
		for _, m := range methods {
			if q.Agg.GroupBy != "" && !groupCapable[m.Name()] {
				continue
			}
			var ans *baselines.Answer
			d, err := timed(func() error {
				var err error
				ans, err = m.Execute(q.Agg)
				return err
			})
			if err != nil {
				continue
			}
			et := groupAwareErr(ans.Value, ans.Groups, ssbAns.Value, ssbAns.Groups)
			eh := groupAwareErr(ans.Value, ans.Groups, haAns.Value, haAns.Groups)
			addCell(rows[m.Name()], et, eh, d)
		}
	}
	return rows, nil
}

func addCell(c *cell, errTau, errHA float64, d interface{ Milliseconds() int64 }) {
	if !math.IsNaN(errTau) && !math.IsInf(errTau, 0) {
		c.errTau = append(c.errTau, errTau)
	}
	if !math.IsNaN(errHA) && !math.IsInf(errHA, 0) {
		c.errHA = append(c.errHA, errHA)
	}
	c.timeMs = append(c.timeMs, float64(d.Milliseconds()))
}

// oursOperatorErr compares the engine result (groups included) against both
// ground truths.
func oursOperatorErr(res *core.Result, ssb, ha *baselines.Answer, q datagen.GenQuery) (float64, float64) {
	if q.Agg.GroupBy == "" {
		return relErrPct(res.Estimate, ssb.Value), relErrPct(res.Estimate, ha.Value)
	}
	est := map[string]float64{}
	for label, gr := range res.Groups {
		est[label] = gr.Estimate
	}
	return groupMapErr(est, ssb.Groups), groupMapErr(est, ha.Groups)
}

// groupAwareErr compares scalar results, or group maps when present.
func groupAwareErr(v float64, groups map[string]float64, gtV float64, gtGroups map[string]float64) float64 {
	if gtGroups == nil || groups == nil {
		return relErrPct(v, gtV)
	}
	return groupMapErr(groups, gtGroups)
}

// groupMapErr is the mean relative error (%) across ground-truth groups; a
// group the method missed counts as 100%.
func groupMapErr(est, gt map[string]float64) float64 {
	if len(gt) == 0 {
		return math.NaN()
	}
	var errs []float64
	for _, label := range sortedKeys(gt) {
		want := gt[label]
		got, ok := est[label]
		if !ok {
			errs = append(errs, 100)
			continue
		}
		e := relErrPct(got, want)
		if math.IsInf(e, 0) || math.IsNaN(e) {
			e = 100
		}
		errs = append(errs, e)
	}
	return stats.Mean(errs)
}

func operatorTable(w io.Writer, cfg Config, title string, metric func(*cell) string) error {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg.Profiles[0])
	if err != nil {
		return err
	}
	cats := []string{"filter", "groupby", "extreme"}
	byCat := map[string]map[string]*cell{}
	for _, cat := range cats {
		rows, err := operatorRows(env, cfg, cat)
		if err != nil {
			return err
		}
		byCat[cat] = rows
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprintln(tw, "Method\tFilter\tGROUP-BY\tMAX/MIN")
	for _, m := range []string{"Ours", "EAQ", "GraB", "QGA", "SGQ", "JENA", "Virtuoso", "SSB"} {
		fmt.Fprint(tw, m)
		for _, cat := range cats {
			c, ok := byCat[cat][m]
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%s", metric(c))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Table10 reproduces Table X: operator efficiency (seconds) on the first
// dataset.
func Table10(w io.Writer, cfg Config) error {
	return operatorTable(w, cfg, "Table X: operator efficiency (ms)",
		func(c *cell) string { return meanOrDash(c.timeMs, "%.1f") })
}

// Table11 reproduces Table XI: operator effectiveness vs τ-GT and HA-GT.
func Table11(w io.Writer, cfg Config) error {
	return operatorTable(w, cfg, "Table XI: operator relative error (%) [τ-GT | HA-GT]",
		func(c *cell) string {
			return meanOrDash(c.errTau, "%.2f") + " | " + meanOrDash(c.errHA, "%.2f")
		})
}
