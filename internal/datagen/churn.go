package datagen

import (
	"fmt"
	"math/rand"

	"kgaq/internal/kg"
	"kgaq/internal/live"
	"kgaq/internal/stats"
)

// ChurnConfig shapes the synthetic mutation stream.
type ChurnConfig struct {
	// Seed makes the stream deterministic (default 1).
	Seed int64
	// BatchSize is the number of mutations per batch (default 4).
	BatchSize int
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	return c
}

// Churn generates a sustained stream of valid mutation batches against a
// live graph — the write half of the mixed read/write benchmark. The mix
// mirrors a production KG's update profile: mostly attribute refreshes,
// a steady drip of new entities with edges, occasional edge removals and
// re-typings. Every batch is generated against the snapshot passed in, so
// with a single writer applying batches in order, every batch is valid at
// apply time.
//
// A Churn is not safe for concurrent use; give each writer its own.
type Churn struct {
	cfg ChurnConfig
	rng *rand.Rand
	n   int // entities added so far, for unique names
}

// NewChurn builds a generator.
func NewChurn(cfg ChurnConfig) *Churn {
	cfg = cfg.withDefaults()
	return &Churn{cfg: cfg, rng: stats.NewRand(cfg.Seed)}
}

// Batch generates the next mutation batch, valid against g. The returned
// batch always contains at least one mutation. Edge removals are deduped
// within the batch — two remove_edge lines for the same stored edge would
// make the second fail and the atomic Apply reject the whole batch.
func (c *Churn) Batch(g kg.ReadGraph) live.Batch {
	out := make(live.Batch, 0, c.cfg.BatchSize)
	removed := map[[3]string]bool{}
	for len(out) < c.cfg.BatchSize {
		switch p := c.rng.Float64(); {
		case p < 0.40:
			out = append(out, c.attrUpdate(g))
		case p < 0.60:
			out = append(out, c.addEntity(g)...)
		case p < 0.80:
			if m, ok := c.addEdge(g); ok {
				out = append(out, m)
			}
		case p < 0.95:
			if m, ok := c.removeEdge(g); ok {
				key := [3]string{m.Src, m.Pred, m.Dst}
				if !removed[key] {
					removed[key] = true
					out = append(out, m)
				}
			}
		default:
			out = append(out, c.setTypes(g))
		}
	}
	return out
}

// randomNode picks a uniform existing node.
func (c *Churn) randomNode(g kg.ReadGraph) kg.NodeID {
	return kg.NodeID(c.rng.Intn(g.NumNodes()))
}

// attrUpdate refreshes a numeric attribute on a random node, reusing an
// existing attribute name so vocabularies stay realistic.
func (c *Churn) attrUpdate(g kg.ReadGraph) live.Mutation {
	u := c.randomNode(g)
	attr := "churn_score"
	if n := g.NumAttrs(); n > 0 {
		attr = g.AttrName(kg.AttrID(c.rng.Intn(n)))
	}
	return live.SetAttr(g.Name(u), attr, 1000*c.rng.Float64())
}

// addEntity mints a fresh entity of an existing type and wires it to a
// random anchor over an existing predicate — the "new fact arrives" case.
func (c *Churn) addEntity(g kg.ReadGraph) live.Batch {
	c.n++
	name := fmt.Sprintf("churn_e%d", c.n)
	typ := "Thing"
	if n := g.NumTypes(); n > 0 {
		typ = g.TypeName(kg.TypeID(c.rng.Intn(n)))
	}
	b := live.Batch{live.AddEntity(name, typ)}
	if g.NumPredicates() > 0 && g.NumNodes() > 0 {
		pred := g.PredName(kg.PredID(c.rng.Intn(g.NumPredicates())))
		anchor := g.Name(c.randomNode(g))
		b = append(b, live.AddEdge(name, pred, anchor))
	}
	return b
}

// addEdge links two distinct random existing nodes over an existing
// predicate (duplicates collapse harmlessly at apply time).
func (c *Churn) addEdge(g kg.ReadGraph) (live.Mutation, bool) {
	if g.NumNodes() < 2 || g.NumPredicates() == 0 {
		return live.Mutation{}, false
	}
	src := c.randomNode(g)
	dst := c.randomNode(g)
	for tries := 0; src == dst && tries < 8; tries++ {
		dst = c.randomNode(g)
	}
	if src == dst {
		return live.Mutation{}, false
	}
	pred := g.PredName(kg.PredID(c.rng.Intn(g.NumPredicates())))
	return live.AddEdge(g.Name(src), pred, g.Name(dst)), true
}

// removeEdge deletes one stored edge found at a random node; reports false
// when the probes found none.
func (c *Churn) removeEdge(g kg.ReadGraph) (live.Mutation, bool) {
	for tries := 0; tries < 8; tries++ {
		u := c.randomNode(g)
		hes := g.Neighbors(u)
		if len(hes) == 0 {
			continue
		}
		at := c.rng.Intn(len(hes))
		for k := 0; k < len(hes); k++ {
			he := hes[(at+k)%len(hes)]
			if he.Out {
				return live.RemoveEdge(g.Name(u), g.PredName(he.Pred), g.Name(he.To)), true
			}
		}
	}
	return live.Mutation{}, false
}

// setTypes re-types a random node: its current types plus one random
// existing type (monotone, so workload queries keep their answer types).
func (c *Churn) setTypes(g kg.ReadGraph) live.Mutation {
	u := c.randomNode(g)
	names := make([]string, 0, 3)
	for _, t := range g.Types(u) {
		names = append(names, g.TypeName(t))
	}
	if n := g.NumTypes(); n > 0 {
		extra := g.TypeName(kg.TypeID(c.rng.Intn(n)))
		seen := false
		for _, t := range names {
			if t == extra {
				seen = true
			}
		}
		if !seen {
			names = append(names, extra)
		}
	}
	if len(names) == 0 {
		names = []string{"Thing"}
	}
	return live.SetTypes(g.Name(u), names...)
}
