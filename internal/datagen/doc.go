// Package datagen synthesises the evaluation substrate of the paper: three
// schema-flexible knowledge graphs whose shape mirrors DBpedia, Freebase and
// YAGO2 (Table III) at laptop scale, an oracle embedding derived from the
// generator's known predicate semantic clusters, a simulated crowdsourced
// human annotation (HA-GT), and the Q1–Q10 style query workload with
// per-query ground truth.
//
// The real datasets are multi-million-node dumps plus web-crawled numeric
// attributes and a Baidu crowdsourcing campaign; none is reproducible
// offline. What the algorithms actually consume is (a) a typed, attributed
// graph in which the same semantic relation appears as several structurally
// different subgraphs, and (b) two notions of ground truth to compare. The
// generator plants those variants explicitly — per relation it emits a
// canonical predicate plus direct-predicate and multi-hop variants with
// controlled embedding affinities, and semantically-wrong look-alike paths —
// so sampling quality, validation and every baseline exercise the same
// trade-offs as on the real data (see DESIGN.md, substitutions).
package datagen
