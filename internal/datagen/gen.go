package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
	"kgaq/internal/stats"
)

// fact records one planted connection: an answer entity reachable from an
// anchor through a named schema variant.
type fact struct {
	answer  string
	variant string
}

// genCtx carries generation state and the bookkeeping that later becomes
// ground truth.
type genCtx struct {
	p Profile
	r *rand.Rand
	b *kg.Builder

	countries []string
	cities    map[string][]string // country → cities
	companies map[string][]string // country → companies

	// facts[relation][anchor] lists planted facts; the annotator panel
	// later decides which variants are human-approved.
	facts map[string]map[string][]fact

	// Chain/star/cycle bookkeeping.
	designersOf     map[string][]string // country → designers (nationality)
	designedBy      map[string][]string // designer → cars
	clubPlayers     map[string][]fact   // club → player facts (team relation)
	clubsGrounded   map[string][]fact   // country → club facts (ground relation)
	birthCityOf     map[string][]string // city → players with birthPlace edge
	filmsByDirector map[string][]fact   // director → film facts
}

// addFact plants bookkeeping for (relation, anchor) → answer via variant.
func (c *genCtx) addFact(rel, anchor, answer, variant string) {
	m, ok := c.facts[rel]
	if !ok {
		m = map[string][]fact{}
		c.facts[rel] = m
	}
	m[anchor] = append(m[anchor], fact{answer: answer, variant: variant})
}

func (c *genCtx) node(name string, types ...string) kg.NodeID {
	return c.b.AddNode(name, types...)
}

func (c *genCtx) edge(src kg.NodeID, pred string, dst kg.NodeID) {
	if err := c.b.AddEdge(src, pred, dst); err != nil {
		panic(fmt.Sprintf("datagen: %v", err))
	}
}

func (c *genCtx) attr(u kg.NodeID, name string, v float64) {
	if err := c.b.SetAttr(u, name, v); err != nil {
		panic(fmt.Sprintf("datagen: %v", err))
	}
}

func (c *genCtx) lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*c.r.NormFloat64())
}

// Generate synthesises the dataset for a profile: graph, oracle embedding,
// simulated annotation and workload.
func Generate(p Profile) (*Dataset, error) {
	if p.Countries < 2 || p.Scale < 1 {
		return nil, fmt.Errorf("datagen: profile needs ≥2 countries and scale ≥1")
	}
	c := &genCtx{
		p: p, r: stats.NewRand(p.Seed), b: kg.NewBuilder(),
		cities:    map[string][]string{},
		companies: map[string][]string{},
		facts:     map[string]map[string][]fact{},

		designersOf:     map[string][]string{},
		designedBy:      map[string][]string{},
		clubPlayers:     map[string][]fact{},
		clubsGrounded:   map[string][]fact{},
		birthCityOf:     map[string][]string{},
		filmsByDirector: map[string][]fact{},
	}

	c.genGeography()
	c.genAutomotive()
	c.genSoccer()
	c.genMovies()
	c.genLanguagesAndMuseums()
	c.genNoise()

	graph := c.b.Build()
	model, err := embedding.NewOracle(graph, p.EmbeddingDim, p.Seed+1, p.EmbeddingClusters())
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	ds := &Dataset{
		Name:     p.Name,
		Graph:    graph,
		Model:    model,
		Clusters: p.EmbeddingClusters(),
	}
	ds.ApprovedVariants = c.annotate()
	ds.Queries = c.workload(ds)
	return ds, nil
}

// genGeography creates countries, their border topology, and cities.
// Every city carries a cityIn edge (the birthPlace chain hop) plus a
// cityOf-family edge for the Q8-style relation, and a population attribute.
func (c *genCtx) genGeography() {
	p := c.p
	for i := 0; i < p.Countries; i++ {
		c.countries = append(c.countries, fmt.Sprintf("Country_%d", i))
		c.node(c.countries[i], "Country")
	}
	// A sparse border ring plus chords: hub-to-hub topology that lets walks
	// and path enumeration leak into neighbouring countries, which is where
	// low selectivity comes from.
	for i, name := range c.countries {
		u := c.b.NodeByName(name)
		v := c.b.NodeByName(c.countries[(i+1)%len(c.countries)])
		if u != v {
			c.edge(u, "borders", v)
		}
		if i%3 == 0 {
			w := c.b.NodeByName(c.countries[(i+5)%len(c.countries)])
			if u != w {
				c.edge(u, "borders", w)
			}
		}
	}
	nCities := 6 * p.Scale
	for i, country := range c.countries {
		cu := c.b.NodeByName(country)
		for j := 0; j < nCities; j++ {
			name := fmt.Sprintf("City_%d_%d", i, j)
			u := c.node(name, "City")
			c.cities[country] = append(c.cities[country], name)
			c.edge(u, "cityIn", cu)
			c.attr(u, "population", c.lognormal(11.5, 1.2))

			// cityOf-family variant for the Q8 relation.
			roll := c.r.Float64()
			switch {
			case roll < 0.55:
				c.edge(u, "cityOf", cu)
				c.addFact("cityOf", country, name, "cityOf")
			case roll < 0.80:
				c.edge(u, "municipality", cu)
				c.addFact("cityOf", country, name, "municipality")
			default:
				c.edge(u, "adminSeat", cu)
				c.addFact("cityOf", country, name, "adminSeat")
			}
			// Wrong-path look-alike: twinned with a city of a different
			// country. The twin edge connects city→city (never back to a
			// country hub): a noise edge re-entering a hub would be diluted
			// by the perfect edges around the hub — the geometric mean of
			// (1, x, 1) is x^(1/3) — and foreign cities would leak above τ.
			if c.r.Float64() < 0.2 && i > 0 {
				prev := c.cities[c.countries[i-1]]
				if len(prev) > 0 {
					c.edge(u, "twinnedWith", c.b.NodeByName(prev[c.r.Intn(len(prev))]))
				}
			}
		}
	}
}

func (c *genCtx) otherCountry(not string) string {
	for {
		cand := c.countries[c.r.Intn(len(c.countries))]
		if cand != not {
			return cand
		}
	}
}

// genAutomotive plants the paper's running-example domain: companies,
// automobiles produced in countries through five structural variants, and
// designers whose nationality builds the classic wrong path.
func (c *genCtx) genAutomotive() {
	p := c.p
	nCompanies := 3 * p.Scale
	nCars := 15 * p.Scale
	nDesigners := 3 * p.Scale

	for i, country := range c.countries {
		cu := c.b.NodeByName(country)
		for j := 0; j < nCompanies; j++ {
			name := fmt.Sprintf("Company_%d_%d", i, j)
			u := c.node(name, "Company")
			c.companies[country] = append(c.companies[country], name)
			c.edge(u, "coCountry", cu)
		}
		for j := 0; j < nDesigners; j++ {
			name := fmt.Sprintf("Designer_%d_%d", i, j)
			u := c.node(name, "Designer", "Person")
			c.edge(u, "nationality", cu)
			c.designersOf[country] = append(c.designersOf[country], name)
		}
	}

	for i, country := range c.countries {
		cu := c.b.NodeByName(country)
		cos := c.companies[country]
		for j := 0; j < nCars; j++ {
			name := fmt.Sprintf("Car_%d_%d", i, j)
			u := c.node(name, "Automobile")
			c.attr(u, "price", c.lognormal(10.7, 0.35))
			c.attr(u, "horsepower", 100+c.r.Float64()*400)
			if c.r.Float64() < 0.9 {
				c.attr(u, "fuel_economy", 18+c.r.Float64()*22)
			}

			co := c.b.NodeByName(cos[c.r.Intn(len(cos))])
			switch roll := c.r.Float64(); {
			case roll < 0.30: // direct assembly in the country
				c.edge(u, "assembly", cu)
				c.addFact("product", country, name, "assembly")
			case roll < 0.50: // manufacturer → company → country
				c.edge(u, "manufacturer", co)
				c.addFact("product", country, name, "manufacturer+coCountry")
			case roll < 0.65: // assembly at a company of the country
				c.edge(u, "assembly", co)
				c.addFact("product", country, name, "assembly+coCountry")
			case roll < 0.85: // company → product → car
				c.edge(co, "product", u)
				c.addFact("product", country, name, "product+coCountry")
			default: // design company only (weakest correct tier)
				c.edge(u, "designCompany", co)
				c.addFact("product", country, name, "designCompany+coCountry")
			}

			// The classic wrong path: a designer from a *different*
			// country. For the product query it is noise; for the chain
			// query (cars designed by X-national designers) it is signal,
			// recorded under the designerChain relation.
			//
			// Each country's cars draw designers from exactly one partner
			// country (the ring successor). If designers served cars of
			// several production countries, two such cars would be linked
			// by an assembly→designer→designer path whose geometric mean
			// — one strong hop diluting two medium ones — crosses τ, and
			// foreign cars would leak into the τ-relevant answer set.
			if c.r.Float64() < 0.35 {
				dCountry := c.countries[(i+1)%len(c.countries)]
				ds := c.designersOf[dCountry]
				d := ds[c.r.Intn(len(ds))]
				c.edge(u, "designer", c.b.NodeByName(d))
				c.designedBy[d] = append(c.designedBy[d], name)
				c.addFact("designerChain", dCountry, name, "nationality+designer")
			}
		}
	}
}

// genSoccer plants players, clubs, born-in variants and the club/ground
// structure used by the star, cycle and flower templates.
func (c *genCtx) genSoccer() {
	p := c.p
	nClubs := 3 * p.Scale
	nPlayers := 12 * p.Scale

	clubsOf := map[string][]string{}
	for i, country := range c.countries {
		cu := c.b.NodeByName(country)
		for j := 0; j < nClubs; j++ {
			name := fmt.Sprintf("Club_%d_%d", i, j)
			u := c.node(name, "SoccerClub")
			clubsOf[country] = append(clubsOf[country], name)
			switch roll := c.r.Float64(); {
			case roll < 0.5:
				c.edge(u, "ground", cu)
				c.addFact("ground", country, name, "ground")
				c.clubsGrounded[country] = append(c.clubsGrounded[country], fact{answer: name, variant: "ground"})
			case roll < 0.8:
				c.edge(u, "homeStadium", cu)
				c.addFact("ground", country, name, "homeStadium")
				c.clubsGrounded[country] = append(c.clubsGrounded[country], fact{answer: name, variant: "homeStadium"})
			case roll < 0.95:
				c.edge(u, "basedIn", cu)
				c.addFact("ground", country, name, "basedIn")
				c.clubsGrounded[country] = append(c.clubsGrounded[country], fact{answer: name, variant: "basedIn"})
			default: // sponsor link only: not grounded here
				c.edge(u, "sponsoredBy", cu)
			}
		}
	}

	for i, country := range c.countries {
		cu := c.b.NodeByName(country)
		cities := c.cities[country]
		for j := 0; j < nPlayers; j++ {
			name := fmt.Sprintf("Player_%d_%d", i, j)
			u := c.node(name, "SoccerPlayer", "Person")
			age := 17 + c.r.Intn(23)
			c.attr(u, "age", float64(age))
			c.attr(u, "age_group", float64(age/5*5))
			if c.r.Float64() < 0.93 {
				c.attr(u, "transfer_value", c.lognormal(14, 1))
			}

			// Born-in variants.
			switch roll := c.r.Float64(); {
			case roll < 0.40:
				c.edge(u, "bornIn", cu)
				c.addFact("bornIn", country, name, "bornIn")
			case roll < 0.75:
				// Birth cities are skewed toward the first cities of the
				// country so the flower template's birth-city branch has a
				// populous anchor.
				idx := int(float64(len(cities)) * c.r.Float64() * c.r.Float64())
				city := cities[idx]
				c.edge(u, "birthPlace", c.b.NodeByName(city))
				c.addFact("bornIn", country, name, "birthPlace+cityIn")
				c.birthCityOf[city] = append(c.birthCityOf[city], name)
			case roll < 0.88:
				c.edge(u, "hometown", cu)
				c.addFact("bornIn", country, name, "hometown")
			default: // lives in a city of a different country: wrong path
				other := c.otherCountry(country)
				oc := c.cities[other]
				c.edge(u, "livesIn", c.b.NodeByName(oc[c.r.Intn(len(oc))]))
			}

			// Team variants: usually a domestic club, sometimes abroad.
			clubCountry := country
			if c.r.Float64() < 0.25 {
				clubCountry = c.otherCountry(country)
			}
			clubs := clubsOf[clubCountry]
			club := clubs[c.r.Intn(len(clubs))]
			cn := c.b.NodeByName(club)
			switch roll := c.r.Float64(); {
			case roll < 0.55:
				c.edge(u, "team", cn)
				c.addFact("team", club, name, "team")
				c.clubPlayers[club] = append(c.clubPlayers[club], fact{answer: name, variant: "team"})
			case roll < 0.80:
				c.edge(u, "playsFor", cn)
				c.addFact("team", club, name, "playsFor")
				c.clubPlayers[club] = append(c.clubPlayers[club], fact{answer: name, variant: "playsFor"})
			case roll < 0.93:
				c.edge(u, "club", cn)
				c.addFact("team", club, name, "club")
				c.clubPlayers[club] = append(c.clubPlayers[club], fact{answer: name, variant: "club"})
			default: // training affiliation only
				c.edge(u, "trainsAt", cn)
			}
		}
	}
}

// genMovies plants directors (persons with nationality-like born-in edges)
// and films for the Q6-style low-selectivity SUM queries.
func (c *genCtx) genMovies() {
	p := c.p
	nDirectors := 2 * p.Scale
	nFilms := 5 * p.Scale

	for i, country := range c.countries {
		cu := c.b.NodeByName(country)
		for j := 0; j < nDirectors; j++ {
			dname := fmt.Sprintf("Director_%d_%d", i, j)
			du := c.node(dname, "Director", "Person")
			c.edge(du, "bornIn", cu)
			c.addFact("bornIn", country, dname, "bornIn")
			for k := 0; k < nFilms/p.Scale; k++ {
				fname := fmt.Sprintf("Film_%d_%d_%d", i, j, k)
				fu := c.node(fname, "Film")
				c.attr(fu, "box_office", c.lognormal(17, 1.1))
				c.attr(fu, "rating", 3+c.r.Float64()*7)
				switch roll := c.r.Float64(); {
				case roll < 0.55:
					c.edge(fu, "director", du)
					c.addFact("director", dname, fname, "director")
					c.filmsByDirector[dname] = append(c.filmsByDirector[dname], fact{answer: fname, variant: "director"})
				case roll < 0.80:
					c.edge(fu, "directedBy", du)
					c.addFact("director", dname, fname, "directedBy")
					c.filmsByDirector[dname] = append(c.filmsByDirector[dname], fact{answer: fname, variant: "directedBy"})
				case roll < 0.92:
					c.edge(fu, "filmmaker", du)
					c.addFact("director", dname, fname, "filmmaker")
					c.filmsByDirector[dname] = append(c.filmsByDirector[dname], fact{answer: fname, variant: "filmmaker"})
				default: // produced, not directed
					c.edge(fu, "producer", du)
				}
			}
		}
	}
}

// genLanguagesAndMuseums plants the high-selectivity Q5 relation (languages
// spoken in a country) and the Q7 museum relation.
func (c *genCtx) genLanguagesAndMuseums() {
	p := c.p
	nLang := 3 * p.Scale
	nMuseums := 4 * p.Scale

	for i, country := range c.countries {
		cu := c.b.NodeByName(country)
		for j := 0; j < nLang; j++ {
			name := fmt.Sprintf("Language_%d_%d", i, j)
			u := c.node(name, "Language")
			c.attr(u, "speakers", c.lognormal(13, 1.4))
			switch roll := c.r.Float64(); {
			case roll < 0.55:
				c.edge(u, "spokenIn", cu)
				c.addFact("spokenIn", country, name, "spokenIn")
			case roll < 0.80:
				c.edge(cu, "officialLanguage", u)
				c.addFact("spokenIn", country, name, "officialLanguage")
			case roll < 0.92:
				c.edge(u, "languageOf", cu)
				c.addFact("spokenIn", country, name, "languageOf")
			default: // minority presence only
				c.edge(u, "minorityIn", cu)
			}
		}
		for j := 0; j < nMuseums; j++ {
			name := fmt.Sprintf("Museum_%d_%d", i, j)
			u := c.node(name, "Museum")
			c.attr(u, "visitors", c.lognormal(11, 1))
			switch roll := c.r.Float64(); {
			case roll < 0.45:
				c.edge(u, "museumIn", cu)
				c.addFact("museumIn", country, name, "museumIn")
			case roll < 0.75:
				c.edge(cu, "siteOf", u)
				c.addFact("museumIn", country, name, "siteOf")
			case roll < 0.90:
				c.edge(u, "exhibitsIn", cu)
				c.addFact("museumIn", country, name, "exhibitsIn")
			default: // near the border, not in the country
				c.edge(u, "nearBorder", cu)
			}
		}
	}
}

// genNoise adds cross-domain edges with unclustered predicates: topological
// noise the semantic walker should mostly ignore (the Fig. 5a contrast).
func (c *genCtx) genNoise() {
	p := c.p
	preds := make([]string, 0, p.ExtraPredicates+1)
	preds = append(preds, "relatedTo")
	for i := 0; i < p.ExtraPredicates; i++ {
		preds = append(preds, fmt.Sprintf("misc_%d", i))
	}
	n := c.b.NumNodes()
	if n < 2 {
		return
	}
	for i := 0; i < p.NoiseEdges; i++ {
		u := kg.NodeID(c.r.Intn(n))
		v := kg.NodeID(c.r.Intn(n))
		if u == v {
			continue
		}
		pred := preds[c.r.Intn(len(preds))]
		if err := c.b.AddEdge(u, pred, v); err != nil {
			continue
		}
	}
}

// annotate simulates the 10-annotator crowdsourcing panel of §VII-A at the
// schema level: each annotator labels every (relation, variant) schema,
// erring with probability AnnotatorError, and the panel approves a schema
// only when all ten annotators accept it. Correct schemas are thus approved
// with probability (1-e)^10 ≈ 0.96, wrong schemas with e^10 ≈ 0.
func (c *genCtx) annotate() map[string]map[string]bool {
	r := stats.NewRand(c.p.Seed + 2)
	approved := map[string]map[string]bool{}
	// Deterministic iteration: the panel consumes randomness in a fixed
	// order regardless of Go's map ordering.
	rels := make([]string, 0, len(correctVariants))
	for rel := range correctVariants {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		correctSet := correctVariants[rel]
		variants := make([]string, 0, len(correctSet))
		for v := range correctSet {
			variants = append(variants, v)
		}
		sort.Strings(variants)
		approved[rel] = map[string]bool{}
		for _, variant := range variants {
			correct := correctSet[variant]
			ok := true
			for a := 0; a < 10; a++ {
				label := correct
				if r.Float64() < c.p.AnnotatorError {
					label = !label
				}
				if !label {
					ok = false
				}
			}
			approved[rel][variant] = ok
		}
	}
	return approved
}

// correctVariants is the generator's own semantics: which schema variants
// truly express each relation. Wrong-path variants never appear here (they
// are planted as separate edges, not facts).
var correctVariants = map[string]map[string]bool{
	"product": {
		"assembly":                true,
		"manufacturer+coCountry":  true,
		"assembly+coCountry":      true,
		"product+coCountry":       true,
		"designCompany+coCountry": true,
	},
	"bornIn": {
		"bornIn":            true,
		"birthPlace+cityIn": true,
		"hometown":          true,
	},
	"team":          {"team": true, "playsFor": true, "club": true},
	"ground":        {"ground": true, "homeStadium": true, "basedIn": true},
	"director":      {"director": true, "directedBy": true, "filmmaker": true},
	"spokenIn":      {"spokenIn": true, "officialLanguage": true, "languageOf": true},
	"museumIn":      {"museumIn": true, "siteOf": true, "exhibitsIn": true},
	"cityOf":        {"cityOf": true, "municipality": true, "adminSeat": true},
	"designerChain": {"nationality+designer": true},
}

// haAnswers filters the planted facts of (relation, anchor) down to those
// whose variant the annotator panel approved.
func (c *genCtx) haAnswers(approved map[string]map[string]bool, rel, anchor string) []string {
	var out []string
	seen := map[string]bool{}
	for _, f := range c.facts[rel][anchor] {
		if !approved[rel][f.variant] {
			continue
		}
		if !seen[f.answer] {
			seen[f.answer] = true
			out = append(out, f.answer)
		}
	}
	return out
}
