package datagen

import (
	"testing"

	"kgaq/internal/core"
	"kgaq/internal/kg"
	"kgaq/internal/query"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
)

func tiny(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(TinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateTiny(t *testing.T) {
	ds := tiny(t)
	g := ds.Graph
	if g.NumNodes() < 200 || g.NumEdges() < 300 {
		t.Fatalf("tiny graph too small: %v", g)
	}
	if err := ds.Model.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(ds.Queries) == 0 {
		t.Fatal("no queries generated")
	}
	cats := map[string]int{}
	for _, q := range ds.Queries {
		cats[q.Category]++
		if err := q.Agg.Validate(); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
	}
	for _, c := range []string{"simple", "filter", "groupby", "extreme", "chain", "star", "cycle"} {
		if cats[c] == 0 {
			t.Errorf("no %s queries (have %v)", c, cats)
		}
	}
}

func TestGenerateRejectsBadProfile(t *testing.T) {
	if _, err := Generate(Profile{Countries: 1, Scale: 1}); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func TestHAAnswersExistAndTyped(t *testing.T) {
	ds := tiny(t)
	g := ds.Graph
	for _, q := range ds.Queries {
		tgt := q.Agg.Q.Nodes[q.Agg.Q.Target]
		var types []kg.TypeID
		for _, tn := range tgt.Types {
			id := g.TypeByName(tn)
			if id == kg.InvalidType {
				t.Fatalf("%s: unknown target type %q", q.ID, tn)
			}
			types = append(types, id)
		}
		for _, name := range q.HAAnswers {
			u := g.NodeByName(name)
			if u == kg.InvalidNode {
				t.Fatalf("%s: HA answer %q not in graph", q.ID, name)
			}
			if !g.SharesType(u, types) {
				t.Fatalf("%s: HA answer %q lacks target type %v", q.ID, name, tgt.Types)
			}
		}
	}
}

func TestHAValueComputes(t *testing.T) {
	ds := tiny(t)
	for _, q := range ds.Queries {
		if _, err := ds.HAValue(q); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := tiny(t)
	b := tiny(t)
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("graph generation nondeterministic")
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("workload nondeterministic")
	}
	for i := range a.Queries {
		if a.Queries[i].ID != b.Queries[i].ID || len(a.Queries[i].HAAnswers) != len(b.Queries[i].HAAnswers) {
			t.Fatal("query ground truth nondeterministic")
		}
	}
}

func TestProfilesShapeOrdering(t *testing.T) {
	// Freebase-sim must out-scale DBpedia-sim in edges and predicates, and
	// YAGO2-sim must have the smallest predicate vocabulary relative to its
	// size, mirroring Table III's shape.
	db, err := Generate(DBpediaSim())
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Generate(FreebaseSim())
	if err != nil {
		t.Fatal(err)
	}
	yg, err := Generate(Yago2Sim())
	if err != nil {
		t.Fatal(err)
	}
	if fb.Graph.NumEdges() <= db.Graph.NumEdges() {
		t.Fatalf("freebase-sim edges %d ≤ dbpedia-sim %d", fb.Graph.NumEdges(), db.Graph.NumEdges())
	}
	if fb.Graph.NumPredicates() <= db.Graph.NumPredicates() {
		t.Fatal("freebase-sim should have the largest predicate vocabulary")
	}
	if yg.Graph.NumPredicates() >= db.Graph.NumPredicates() {
		t.Fatal("yago2-sim should have the smallest predicate vocabulary")
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("dbpedia-sim"); !ok {
		t.Fatal("dbpedia-sim missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("unknown profile resolved")
	}
}

// τ-GT at the profile's optimal τ must agree closely with HA-GT: the
// Table V premise. Checked via exhaustive (SSB) similarities on a product
// query.
func TestTauGTMatchesHAGT(t *testing.T) {
	ds := tiny(t)
	g := ds.Graph
	calc, err := semsim.NewCalculator(g, ds.Model, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Table V's metric is the AVERAGE Jaccard over queries: a single
	// annotator-rejected schema legitimately drags one query down (the
	// paper's peak AJS is 0.95, not 1).
	var sum float64
	checked := 0
	for _, q := range ds.Queries {
		if q.Category != "simple" || q.Shape != query.ShapeSimple {
			continue
		}
		paths, err := q.Agg.Q.Decompose()
		if err != nil || len(paths) != 1 || len(paths[0].Hops) != 1 {
			continue
		}
		us := g.NodeByName(paths[0].RootName)
		pred := g.PredByName(paths[0].Hops[0].Predicate)
		tgtType := g.TypeByName(paths[0].Hops[0].Types[0])
		best := semsim.Exhaustive(g, calc, us, pred, 3)
		tau := TinyProfile().OptimalTau
		tauSet := map[string]bool{}
		for u, s := range best {
			if g.HasType(u, tgtType) && s >= tau {
				tauSet[g.Name(u)] = true
			}
		}
		haSet := map[string]bool{}
		for _, n := range q.HAAnswers {
			haSet[n] = true
		}
		sum += stats.Jaccard(tauSet, haSet)
		checked++
		if checked >= 8 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no simple queries checked")
	}
	if ajs := sum / float64(checked); ajs < 0.8 {
		t.Fatalf("average Jaccard(τ-GT, HA-GT) = %v over %d queries, want ≥ 0.8", ajs, checked)
	}
}

// End-to-end: the engine's estimate on generated data lands near the HA
// ground truth for COUNT queries at the profile's optimal τ.
func TestEngineOnGeneratedData(t *testing.T) {
	ds := tiny(t)
	eng, err := core.NewEngine(ds.Graph, ds.Model, core.Options{
		Tau: TinyProfile().OptimalTau, ErrorBound: 0.05, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, q := range ds.Queries {
		if q.Category != "simple" || q.Agg.Func != query.Count {
			continue
		}
		truth, err := ds.HAValue(q)
		if err != nil || truth < 3 {
			continue
		}
		res, err := eng.Execute(q.Agg)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if rel := stats.RelativeError(res.Estimate, truth); rel > 0.25 {
			t.Errorf("%s: estimate %v vs HA truth %v (rel %v)", q.ID, res.Estimate, truth, rel)
		}
		checked++
		if checked >= 4 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no COUNT queries executed")
	}
}
