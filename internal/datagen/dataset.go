package datagen

import (
	"fmt"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
	"kgaq/internal/query"
)

// GenQuery is one workload query with its construction-time ground truth.
type GenQuery struct {
	// ID names the query (Q1-style identifiers plus a discriminator).
	ID string
	// Agg is the executable aggregate query.
	Agg *query.Aggregate
	// Shape classifies the query graph.
	Shape query.Shape
	// HAAnswers are the names of the human-annotated correct answers: the
	// entities connected through annotator-approved schemas.
	HAAnswers []string
	// Category is the workload bucket ("simple", "filter", "groupby",
	// "chain", "star", "cycle", "flower", "extreme").
	Category string
}

// Dataset bundles a generated graph with its embedding and workload.
type Dataset struct {
	Name     string
	Graph    *kg.Graph
	Model    *embedding.PredVectors
	Clusters []embedding.Cluster
	Queries  []GenQuery
	// ApprovedVariants records which schema variants the simulated
	// annotator panel approved, keyed by relation name then variant id.
	ApprovedVariants map[string]map[string]bool
}

// QueriesByCategory filters the workload.
func (d *Dataset) QueriesByCategory(cat string) []GenQuery {
	var out []GenQuery
	for _, q := range d.Queries {
		if q.Category == cat {
			out = append(out, q)
		}
	}
	return out
}

// QueriesByShape filters the workload by query-graph shape.
func (d *Dataset) QueriesByShape(s query.Shape) []GenQuery {
	var out []GenQuery
	for _, q := range d.Queries {
		if q.Shape == s {
			out = append(out, q)
		}
	}
	return out
}

// HAValue computes the human-annotation ground truth of the aggregate: the
// aggregate function applied over the HA-correct answers (answers missing
// the aggregated attribute are skipped, matching every engine's handling).
func (d *Dataset) HAValue(q GenQuery) (float64, error) {
	return aggregateOverNames(d.Graph, q.Agg, q.HAAnswers)
}

func aggregateOverNames(g *kg.Graph, a *query.Aggregate, names []string) (float64, error) {
	var attr kg.AttrID = kg.InvalidAttr
	if a.Attr != "" {
		attr = g.AttrByName(a.Attr)
		if attr == kg.InvalidAttr {
			return 0, fmt.Errorf("datagen: attribute %q missing from graph", a.Attr)
		}
	}
	count := 0.0
	sum := 0.0
	vals := 0.0
	best := 0.0
	haveBest := false
	for _, name := range names {
		u := g.NodeByName(name)
		if u == kg.InvalidNode {
			return 0, fmt.Errorf("datagen: ground-truth answer %q missing from graph", name)
		}
		ok := true
		for _, f := range a.Filters {
			fa := g.AttrByName(f.Attr)
			if fa == kg.InvalidAttr {
				ok = false
				break
			}
			v, has := g.Attr(u, fa)
			if !has || !f.Matches(v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		count++
		if attr != kg.InvalidAttr {
			if v, has := g.Attr(u, attr); has {
				sum += v
				vals++
				if !haveBest ||
					(a.Func == query.Max && v > best) ||
					(a.Func == query.Min && v < best) {
					best = v
					haveBest = true
				}
			} else if a.Func != query.Count {
				count-- // no attribute: cannot contribute to SUM/AVG/MAX/MIN
			}
		}
	}
	switch a.Func {
	case query.Count:
		return count, nil
	case query.Sum:
		return sum, nil
	case query.Avg:
		if vals == 0 {
			return 0, fmt.Errorf("datagen: no attributed answers for AVG")
		}
		return sum / vals, nil
	case query.Max, query.Min:
		if !haveBest {
			return 0, fmt.Errorf("datagen: no attributed answers for %v", a.Func)
		}
		return best, nil
	default:
		return 0, fmt.Errorf("datagen: unsupported aggregate %v", a.Func)
	}
}
