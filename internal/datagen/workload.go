package datagen

import (
	"fmt"
	"sort"
	"strings"

	"kgaq/internal/query"
)

// workload synthesises the Q1–Q10 style query set with per-query HA ground
// truth. Templates mirror Table IV: counting and averaging over the
// automotive relation (Q1/Q2), filters (Q3), GROUP-BY (Q4), high-selectivity
// language queries (Q5), low-selectivity film sums (Q6), museums (Q7), city
// populations (Q8), and the star/chain/cycle/flower shapes (Q9/Q10).
func (c *genCtx) workload(ds *Dataset) []GenQuery {
	approved := ds.ApprovedVariants
	var out []GenQuery

	anchors := c.sampleCountries()
	add := func(id, category string, agg *query.Aggregate, ha []string, minHA int) {
		if len(ha) < minHA {
			return
		}
		if err := agg.Validate(); err != nil {
			return
		}
		out = append(out, GenQuery{
			ID:        fmt.Sprintf("%s-%s", id, c.p.Name),
			Agg:       agg,
			Shape:     agg.Q.ShapeOf(),
			HAAnswers: ha,
			Category:  category,
		})
	}

	for i, country := range anchors {
		carsHA := c.haAnswers(approved, "product", country)
		playersHA := c.typed(c.haAnswers(approved, "bornIn", country), "SoccerPlayer")
		langsHA := c.haAnswers(approved, "spokenIn", country)
		museumsHA := c.haAnswers(approved, "museumIn", country)
		citiesHA := c.haAnswers(approved, "cityOf", country)

		add(fmt.Sprintf("q1.%d-count-cars", i), "simple",
			query.Simple(query.Count, "", country, "Country", "product", "Automobile"),
			carsHA, 3)
		add(fmt.Sprintf("q2.%d-avg-price", i), "simple",
			query.Simple(query.Avg, "price", country, "Country", "product", "Automobile"),
			carsHA, 3)
		add(fmt.Sprintf("q2s.%d-sum-price", i), "simple",
			query.Simple(query.Sum, "price", country, "Country", "product", "Automobile"),
			carsHA, 3)
		add(fmt.Sprintf("q5.%d-count-langs", i), "simple",
			query.Simple(query.Count, "", country, "Country", "spokenIn", "Language"),
			langsHA, 3)
		add(fmt.Sprintf("q7.%d-count-museums", i), "simple",
			query.Simple(query.Count, "", country, "Country", "museumIn", "Museum"),
			museumsHA, 3)
		add(fmt.Sprintf("q8.%d-avg-population", i), "simple",
			query.Simple(query.Avg, "population", country, "Country", "cityOf", "City"),
			citiesHA, 3)
		add(fmt.Sprintf("qa.%d-avg-age", i), "simple",
			query.Simple(query.Avg, "age", country, "Country", "bornIn", "SoccerPlayer"),
			playersHA, 3)

		// Q3-style filter and Q4-style GROUP-BY.
		add(fmt.Sprintf("q3.%d-filter-price", i), "filter",
			query.Simple(query.Avg, "price", country, "Country", "product", "Automobile").
				WithFilter("fuel_economy", 22, 32),
			carsHA, 4)
		add(fmt.Sprintf("qf2.%d-filter-age", i), "filter",
			query.Simple(query.Count, "", country, "Country", "bornIn", "SoccerPlayer").
				WithFilter("age", 20, 29),
			playersHA, 4)
		add(fmt.Sprintf("q4.%d-groupby-age", i), "groupby",
			query.Simple(query.Count, "", country, "Country", "bornIn", "SoccerPlayer").
				WithGroupBy("age_group"),
			playersHA, 4)

		// Extremes (no guarantee).
		add(fmt.Sprintf("qx.%d-max-price", i), "extreme",
			query.Simple(query.Max, "price", country, "Country", "product", "Automobile"),
			carsHA, 3)
		add(fmt.Sprintf("qx2.%d-min-transfer", i), "extreme",
			query.Simple(query.Min, "transfer_value", country, "Country", "bornIn", "SoccerPlayer"),
			playersHA, 3)

		// Q10-style chain: cars designed by this country's designers.
		chainHA := c.haAnswers(approved, "designerChain", country)
		chainQ := query.Chain(query.Count, "", country, "Country", []query.Hop{
			{Predicate: "nationality", Types: []string{"Designer"}},
			{Predicate: "designer", Types: []string{"Automobile"}},
		})
		add(fmt.Sprintf("q10.%d-chain-designed", i), "chain", chainQ, chainHA, 3)
		chainQ2 := query.Chain(query.Avg, "price", country, "Country", []query.Hop{
			{Predicate: "nationality", Types: []string{"Designer"}},
			{Predicate: "designer", Types: []string{"Automobile"}},
		})
		add(fmt.Sprintf("q10a.%d-chain-avg", i), "chain", chainQ2, chainHA, 3)

		// Q9-style star: born in the country and playing for its most
		// popular club.
		if club := c.popularClub(approved, country); club != "" {
			teamHA := c.typed(c.approvedTeam(approved, club), "SoccerPlayer")
			starHA := intersect(playersHA, teamHA)
			b := query.NewBuilder()
			cn := b.Specific(country, "Country")
			cl := b.Specific(club, "SoccerClub")
			tgt := b.Target("SoccerPlayer")
			b.Edge(tgt, cn, "bornIn")
			b.Edge(tgt, cl, "team")
			add(fmt.Sprintf("q9.%d-star-born-team", i), "star",
				b.Aggregate(query.Count, ""), starHA, 2)
		}

		// Cycle: players of clubs grounded in the country who were also
		// born there (Fig. 4c).
		cycleHA := c.cycleHA(approved, country)
		{
			b := query.NewBuilder()
			tgt := b.Target("SoccerPlayer")
			club := b.Unknown("SoccerClub")
			cn := b.Specific(country, "Country")
			b.Edge(tgt, club, "team")
			b.Edge(club, cn, "ground")
			b.Edge(tgt, cn, "bornIn")
			add(fmt.Sprintf("qc.%d-cycle-home", i), "cycle",
				b.Aggregate(query.Avg, "age"), cycleHA, 2)
		}

		// Flower: the cycle plus a birth-city branch (Fig. 4d).
		if city := c.popularBirthCity(country); city != "" {
			flowerHA := intersect(cycleHA, c.birthCityOf[city])
			if approved["bornIn"]["birthPlace+cityIn"] {
				b := query.NewBuilder()
				tgt := b.Target("SoccerPlayer")
				club := b.Unknown("SoccerClub")
				cn := b.Specific(country, "Country")
				ct := b.Specific(city, "City")
				b.Edge(tgt, club, "team")
				b.Edge(club, cn, "ground")
				b.Edge(tgt, cn, "bornIn")
				b.Edge(tgt, ct, "birthPlace")
				add(fmt.Sprintf("qw.%d-flower-local", i), "flower",
					b.Aggregate(query.Count, ""), flowerHA, 3)
			}
		}
	}

	// Q6-style: lowest-selectivity SUM over one director's films.
	for i, d := range c.sampleDirectors() {
		filmsHA := c.haAnswers(approved, "director", d)
		add(fmt.Sprintf("q6.%d-sum-boxoffice", i), "simple",
			query.Simple(query.Sum, "box_office", d, "Director", "director", "Film"),
			filmsHA, 2)
	}
	return out
}

// sampleCountries picks the workload anchors deterministically.
func (c *genCtx) sampleCountries() []string {
	k := c.p.QueriesPerTemplate
	if k > len(c.countries) {
		k = len(c.countries)
	}
	idx := c.r.Perm(len(c.countries))[:k]
	sort.Ints(idx)
	out := make([]string, k)
	for i, j := range idx {
		out[i] = c.countries[j]
	}
	return out
}

// sampleDirectors picks directors with the most approved films.
func (c *genCtx) sampleDirectors() []string {
	type dc struct {
		name string
		n    int
	}
	var ds []dc
	for d, films := range c.filmsByDirector {
		ds = append(ds, dc{name: d, n: len(films)})
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].n != ds[j].n {
			return ds[i].n > ds[j].n
		}
		return ds[i].name < ds[j].name
	})
	k := c.p.QueriesPerTemplate
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].name
	}
	return out
}

// typed filters answer names to those carrying the given type. The builder
// has no type lookup, so the generator's disjoint naming scheme serves
// (Player_/Director_ prefixes never overlap).
func (c *genCtx) typed(names []string, typeName string) []string {
	var out []string
	for _, n := range names {
		switch typeName {
		case "SoccerPlayer":
			if strings.HasPrefix(n, "Player_") {
				out = append(out, n)
			}
		default:
			out = append(out, n)
		}
	}
	return out
}

// approvedTeam lists a club's players connected through approved team
// variants.
func (c *genCtx) approvedTeam(approved map[string]map[string]bool, club string) []string {
	var out []string
	for _, f := range c.clubPlayers[club] {
		if approved["team"][f.variant] {
			out = append(out, f.answer)
		}
	}
	return out
}

// popularClub returns the club grounded (by approved variants) in the
// country with the most approved players.
func (c *genCtx) popularClub(approved map[string]map[string]bool, country string) string {
	best, bestN := "", 0
	for _, f := range c.clubsGrounded[country] {
		if !approved["ground"][f.variant] {
			continue
		}
		n := len(c.approvedTeam(approved, f.answer))
		if n > bestN || (n == bestN && f.answer < best) {
			best, bestN = f.answer, n
		}
	}
	return best
}

// popularBirthCity returns the country's city with the most birthPlace
// players.
func (c *genCtx) popularBirthCity(country string) string {
	best, bestN := "", 0
	for _, city := range c.cities[country] {
		if n := len(c.birthCityOf[city]); n > bestN {
			best, bestN = city, n
		}
	}
	return best
}

// cycleHA computes the cycle template's ground truth: players born in the
// country (approved) who play (approved) for a club grounded (approved) in
// the country.
func (c *genCtx) cycleHA(approved map[string]map[string]bool, country string) []string {
	born := map[string]bool{}
	for _, n := range c.typed(c.haAnswers(approved, "bornIn", country), "SoccerPlayer") {
		born[n] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, cf := range c.clubsGrounded[country] {
		if !approved["ground"][cf.variant] {
			continue
		}
		for _, pf := range c.clubPlayers[cf.answer] {
			if approved["team"][pf.variant] && born[pf.answer] && !seen[pf.answer] {
				seen[pf.answer] = true
				out = append(out, pf.answer)
			}
		}
	}
	sort.Strings(out)
	return out
}

// intersect returns the sorted intersection of two name lists.
func intersect(a, b []string) []string {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	var out []string
	for _, x := range b {
		if set[x] {
			out = append(out, x)
			set[x] = false
		}
	}
	sort.Strings(out)
	return out
}
