package datagen

import (
	"math"

	"kgaq/internal/embedding"
)

// Profile sizes and shapes one synthetic dataset. The three stock profiles
// mirror the relative shape of Table III: Freebase-sim is the densest with
// the largest type/predicate vocabulary, YAGO2-sim is large with a small
// predicate vocabulary, DBpedia-sim sits between.
type Profile struct {
	Name string
	Seed int64

	// Countries is the number of hub entities; most workload queries anchor
	// at one.
	Countries int
	// Scale multiplies the per-country population of every domain.
	Scale int
	// NoiseEdges is the number of random cross-domain "relatedTo" edges
	// (topological noise that the semantic walker must shrug off).
	NoiseEdges int
	// ExtraPredicates pads the predicate vocabulary with unclustered
	// predicates carried by the noise edges, mirroring each KG's predicate
	// count profile.
	ExtraPredicates int
	// AnnotatorError is the per-annotator, per-schema probability of a
	// wrong label in the simulated crowdsourcing panel (10 annotators,
	// intersection semantics, as in §VII-A).
	AnnotatorError float64
	// OptimalTau positions the dataset's semantic tiers: correct variants
	// land just above it, wrong-path look-alikes just below, so the AJS
	// curve of Table V peaks there (0.85 for DBpedia-sim, 0.80 for
	// Freebase-sim and YAGO2-sim, as in the paper).
	OptimalTau float64
	// EmbeddingDim is the oracle embedding dimension.
	EmbeddingDim int
	// QueriesPerTemplate controls workload size (entities sampled per
	// query template).
	QueriesPerTemplate int
}

// DBpediaSim returns the DBpedia-shaped profile.
func DBpediaSim() Profile {
	return Profile{
		Name: "dbpedia-sim", Seed: 101,
		Countries: 24, Scale: 3, NoiseEdges: 9000, ExtraPredicates: 40,
		AnnotatorError: 0.004, OptimalTau: 0.85, EmbeddingDim: 64,
		QueriesPerTemplate: 6,
	}
}

// FreebaseSim returns the Freebase-shaped profile: denser, bigger
// vocabularies, slightly blurrier semantics.
func FreebaseSim() Profile {
	return Profile{
		Name: "freebase-sim", Seed: 202,
		Countries: 28, Scale: 4, NoiseEdges: 24000, ExtraPredicates: 120,
		AnnotatorError: 0.006, OptimalTau: 0.80, EmbeddingDim: 64,
		QueriesPerTemplate: 6,
	}
}

// Yago2Sim returns the YAGO2-shaped profile: large, few predicates.
func Yago2Sim() Profile {
	return Profile{
		Name: "yago2-sim", Seed: 303,
		Countries: 30, Scale: 4, NoiseEdges: 15000, ExtraPredicates: 12,
		AnnotatorError: 0.008, OptimalTau: 0.80, EmbeddingDim: 64,
		QueriesPerTemplate: 6,
	}
}

// TinyProfile is a fast profile for tests.
func TinyProfile() Profile {
	return Profile{
		Name: "tiny", Seed: 7,
		Countries: 6, Scale: 1, NoiseEdges: 300, ExtraPredicates: 5,
		AnnotatorError: 0.001, OptimalTau: 0.85, EmbeddingDim: 32,
		QueriesPerTemplate: 2,
	}
}

// Profiles returns the three paper-shaped profiles in Table III order.
func Profiles() []Profile {
	return []Profile{DBpediaSim(), FreebaseSim(), Yago2Sim()}
}

// ProfileByName resolves a stock profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range append(Profiles(), TinyProfile()) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// relation describes one semantic relation cluster planted by the
// generator: a canonical query predicate plus variant predicates with
// prescribed affinities (embedding cosines to the canonical vector).
type relation struct {
	name      string // cluster name == canonical predicate
	canonical string
	affinity  map[string]float64
}

// clusters assembles the embedding cluster specs for a profile. Affinities
// are positioned relative to the profile's optimal τ so the geometric-mean
// path similarities of the planted variants land exactly where the workload
// needs them:
//
//   - strong correct variants (direct canonical-family edges) well above τ*
//   - the weakest correct tier at τ* + 0.015 (dropped when τ rises by 0.05,
//     producing Table V's decline above the optimum)
//   - wrong-path look-alikes at τ* − 0.015 / τ* − 0.02 (picked up when τ
//     falls by 0.05, producing the decline below the optimum)
//
// Two-hop variants back out the first-hop affinity from the fixed second
// hop: for a target geometric mean g over hops (a, h), a = g²/h.
func (p Profile) clusters() []relation {
	tau := p.OptimalTau
	if tau <= 0 {
		tau = 0.85
	}
	mid := tau + 0.015    // weakest correct tier
	hi := tau + 0.045     // middle correct tier
	noise2 := tau - 0.015 // two-hop wrong-path target
	noise1 := tau - 0.02  // direct wrong predicates
	const hop = 0.86      // fixed company→country affinity
	const cityHop = 0.88  // fixed city→country affinity

	// The designer affinity serves the classic wrong path (target gm just
	// below τ) but is additionally capped so that the chain query's
	// composite paths — one perfect designer hop diluted by two
	// product-family hops, gm = (1·x·x)^{1/3} with x = a_designer·1.0 —
	// stay below τ: a_designer < τ^{3/2}.
	designer := noise2 * noise2 / hop
	if cap := 0.98 * math.Pow(tau, 1.5); designer > cap {
		designer = cap
	}
	return []relation{
		{
			name: "product", canonical: "product",
			affinity: map[string]float64{
				"product":       1.00,
				"assembly":      0.98,
				"coCountry":     hop,
				"manufacturer":  hi * hi / hop,
				"designCompany": mid * mid / hop,
				"nationality":   hop,
				"designer":      designer,
				"madeBy":        0.50,
				"engine":        0.20,
			},
		},
		{
			name: "bornIn", canonical: "bornIn",
			affinity: map[string]float64{
				"bornIn": 1.00,
				"cityIn": cityHop,
				// birthPlace sits in the weakest correct tier: at the hi
				// tier, the composite path city→cityIn→bornIn→player would
				// cross τ and pull directly-born players into a specific
				// birth city's answer set (the flower query's branch).
				"birthPlace": mid,
				"hometown":   mid,
				"livesIn":    noise2 * noise2 / cityHop,
			},
		},
		{
			name: "team", canonical: "team",
			affinity: map[string]float64{
				"team":     1.00,
				"playsFor": 0.96,
				"club":     mid,
				"trainsAt": noise1,
			},
		},
		{
			name: "ground", canonical: "ground",
			affinity: map[string]float64{
				"ground":      1.00,
				"homeStadium": 0.94,
				"basedIn":     mid,
				"sponsoredBy": noise1,
			},
		},
		{
			name: "director", canonical: "director",
			affinity: map[string]float64{
				"director":   1.00,
				"directedBy": 0.97,
				"filmmaker":  mid,
				"producer":   noise1,
			},
		},
		{
			name: "spokenIn", canonical: "spokenIn",
			affinity: map[string]float64{
				"spokenIn":         1.00,
				"officialLanguage": 0.95,
				"languageOf":       mid,
				"minorityIn":       noise1,
			},
		},
		{
			name: "museumIn", canonical: "museumIn",
			affinity: map[string]float64{
				"museumIn":   1.00,
				"siteOf":     0.94,
				"exhibitsIn": mid,
				"nearBorder": noise1,
			},
		},
		{
			name: "cityOf", canonical: "cityOf",
			affinity: map[string]float64{
				"cityOf":       1.00,
				"municipality": 0.94,
				"adminSeat":    mid,
				// twinnedWith extends a perfect cityOf hop, so the 2-hop
				// noise path lands at sqrt(1·noise2²) = noise2.
				"twinnedWith": noise2 * noise2,
			},
		},
	}
}

// EmbeddingClusters converts the relation specs into oracle clusters.
func (p Profile) EmbeddingClusters() []embedding.Cluster {
	rels := p.clusters()
	out := make([]embedding.Cluster, len(rels))
	for i, r := range rels {
		out[i] = embedding.Cluster{Name: r.name, Affinity: r.affinity}
	}
	return out
}
