// Package shard partitions a knowledge graph into N logical shards for
// partition-parallel query execution. A Plan hash-assigns every node to
// exactly one shard; a Partition presents one shard's view of the graph as
// a kg.ReadGraph; and SplitSpace cuts a query's candidate-answer
// distribution π′ into per-shard strata whose observations merge back into
// one estimate through the stratified Horvitz–Thompson combiner of
// internal/estimate.
//
// # Ownership sharding over shared topology
//
// The shards are ownership partitions, not topology partitions: every
// Partition reads the full, shared edge structure (walks must see the whole
// n-bounded neighbourhood, or answers reachable only through another
// shard's nodes would silently get visiting probability zero and bias the
// estimator), while the candidate-answer space is cut by node ownership —
// each answer belongs to exactly one shard, so per-shard samples are
// disjoint strata and the merged estimate stays provably unbiased
// (E[Σ_h V̂_h] = Σ_h Σ_{u∈A_h} v·1{correct} = V, the same decomposition
// stratified approximate aggregation systems such as ABae exploit).
//
// In-process, shards share the graph's memory and the single converged
// stationary distribution; the Partition boundary is the seam where a
// multi-process deployment would give each shard its own storage plus a
// halo of replicated boundary nodes. Everything above this package — the
// stratified combiner, the per-shard draw allocation, the per-shard cache
// segments — already speaks in per-shard terms, so that migration changes
// where a Partition reads from, not how results merge.
package shard
