package shard

import (
	"math"
	"testing"

	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/stats"
)

func TestAssignDeterministicAndInRange(t *testing.T) {
	for n := 1; n <= 16; n *= 2 {
		for u := kg.NodeID(0); u < 1000; u++ {
			s := Assign(u, n)
			if s < 0 || s >= n {
				t.Fatalf("Assign(%d, %d) = %d out of range", u, n, s)
			}
			if s != Assign(u, n) {
				t.Fatalf("Assign(%d, %d) not deterministic", u, n)
			}
		}
	}
	if Assign(42, 1) != 0 || Assign(42, 0) != 0 {
		t.Fatal("degenerate plans must map everything to shard 0")
	}
}

func TestAssignBalance(t *testing.T) {
	const nodes, shards = 100000, 8
	counts := make([]int, shards)
	for u := 0; u < nodes; u++ {
		counts[Assign(kg.NodeID(u), shards)]++
	}
	want := nodes / shards
	for s, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("shard %d owns %d nodes, want %d ± 5%%", s, c, want)
		}
	}
}

func TestNewPlanClamps(t *testing.T) {
	if got := NewPlan(-3).Shards(); got != 1 {
		t.Fatalf("NewPlan(-3).Shards() = %d", got)
	}
	if got := NewPlan(MaxShards + 1).Shards(); got != MaxShards {
		t.Fatalf("NewPlan(MaxShards+1).Shards() = %d", got)
	}
	var zero Plan
	if zero.Shards() != 1 {
		t.Fatalf("zero Plan.Shards() = %d", zero.Shards())
	}
}

func TestPartitionOwnership(t *testing.T) {
	g := kgtest.Figure1()
	plan := NewPlan(4)
	if _, err := NewPartition(nil, plan, 0); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewPartition(g, plan, 4); err == nil {
		t.Fatal("out-of-range shard accepted")
	}

	// Every node is owned by exactly one partition, and NodesByType across
	// partitions reassembles the base graph's answer exactly.
	parts := make([]*Partition, plan.Shards())
	for s := range parts {
		p, err := NewPartition(g, plan, s)
		if err != nil {
			t.Fatal(err)
		}
		parts[s] = p
	}
	totalOwned := 0
	for _, p := range parts {
		totalOwned += p.OwnedNodes()
	}
	if totalOwned != g.NumNodes() {
		t.Fatalf("partitions own %d nodes, graph has %d", totalOwned, g.NumNodes())
	}
	auto := g.TypeByName("Automobile")
	seen := map[kg.NodeID]int{}
	for _, p := range parts {
		for _, u := range p.NodesByType(auto) {
			seen[u]++
			if !p.Owns(u) {
				t.Fatalf("partition %d returned unowned node %d", p.Shard(), u)
			}
		}
	}
	for _, u := range g.NodesByType(auto) {
		if seen[u] != 1 {
			t.Fatalf("node %d appears in %d partitions, want exactly 1", u, seen[u])
		}
	}

	// Topology is shared: a partition sees the full neighbourhood of any
	// node, owned or not.
	for u := 0; u < g.NumNodes(); u++ {
		if len(parts[0].Neighbors(kg.NodeID(u))) != len(g.Neighbors(kg.NodeID(u))) {
			t.Fatalf("partition filtered topology of node %d", u)
		}
	}
}

func TestSplitSpace(t *testing.T) {
	g := kgtest.Figure1()
	var answers []kg.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		answers = append(answers, kg.NodeID(u))
	}
	probs := make([]float64, len(answers))
	for i := range probs {
		probs[i] = 1 / float64(len(probs))
	}
	plan := NewPlan(3)
	spaces, err := SplitSpace(plan, answers, probs)
	if err != nil {
		t.Fatal(err)
	}
	wsum := 0.0
	covered := map[int]bool{}
	for _, sp := range spaces {
		wsum += sp.Weight
		csum := 0.0
		for k, i := range sp.Index {
			if plan.Of(answers[i]) != sp.Shard {
				t.Fatalf("index %d assigned to wrong shard %d", i, sp.Shard)
			}
			if covered[i] {
				t.Fatalf("answer index %d in two strata", i)
			}
			covered[i] = true
			csum += sp.CondProbs[k]
			if want := probs[i] / sp.Weight; math.Abs(sp.CondProbs[k]-want) > 1e-12 {
				t.Fatalf("conditional prob = %g, want %g", sp.CondProbs[k], want)
			}
		}
		if math.Abs(csum-1) > 1e-9 {
			t.Fatalf("shard %d conditional probs sum to %g", sp.Shard, csum)
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("stratum weights sum to %g", wsum)
	}
	if len(covered) != len(answers) {
		t.Fatalf("strata cover %d of %d answers", len(covered), len(answers))
	}

	// Draws come back as global indices owned by the stratum's shard.
	r := stats.NewRand(1)
	for _, sp := range spaces {
		for _, i := range sp.Draw(r, 100) {
			if plan.Of(answers[i]) != sp.Shard {
				t.Fatalf("draw %d escaped shard %d", i, sp.Shard)
			}
		}
	}

	if _, err := SplitSpace(plan, answers, probs[:1]); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
