package shard

import (
	"fmt"
	"math/rand"

	"kgaq/internal/kg"
	"kgaq/internal/stats"
)

// MaxShards bounds a Plan. Beyond this, per-shard strata on realistic
// answer spaces degenerate to single draws and the allocator's per-stratum
// floors dominate the budget.
const MaxShards = 1024

// Assign returns the shard owning node u under an n-way plan, by
// Fibonacci-hashing the node id. The map is deterministic — every engine,
// process and test agrees on ownership without coordination — and
// effectively uniform, so shard weights concentrate near 1/n.
func Assign(u kg.NodeID, n int) int {
	if n <= 1 {
		return 0
	}
	// Knuth's multiplicative hash: the golden-ratio constant scrambles the
	// dense, sequential NodeIDs so consecutive ids land on different
	// shards. The shard is taken from the HIGH bits via a range reduction
	// ((h·n) >> 32) — a plain h mod n would undo the hash for power-of-two
	// n (the constant is ≡ 1 mod 16), reducing ownership to u mod n and
	// letting periodic id patterns (bulk loads interleaving types) skew
	// whole answer populations onto a couple of shards.
	h := uint32(u) * 2654435761
	return int((uint64(h) * uint64(n)) >> 32)
}

// Plan is a validated n-way ownership partition of the node-id space.
type Plan struct {
	shards int
}

// NewPlan returns an n-way plan; n is clamped to [1, MaxShards].
func NewPlan(n int) Plan {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	return Plan{shards: n}
}

// Shards returns the number of shards in the plan.
func (p Plan) Shards() int {
	if p.shards < 1 {
		return 1
	}
	return p.shards
}

// Of returns the shard owning node u.
func (p Plan) Of(u kg.NodeID) int { return Assign(u, p.Shards()) }

// OwnedCounts returns, for each shard, how many of the graph's nodes it
// owns — the healthz/debug balance report.
func (p Plan) OwnedCounts(g kg.ReadGraph) []int {
	out := make([]int, p.Shards())
	for u := 0; u < g.NumNodes(); u++ {
		out[p.Of(kg.NodeID(u))]++
	}
	return out
}

// Partition is one shard's view of a graph: a kg.ReadGraph that shares the
// base topology (walks and validations traverse every edge, so visiting
// probabilities stay exact) while filtering node *ownership* — NodesByType
// returns only owned nodes, and Owns answers the ownership question the
// sampling layer partitions the answer space by.
type Partition struct {
	kg.ReadGraph
	plan  Plan
	shard int
}

// NewPartition returns shard s's view of g.
func NewPartition(g kg.ReadGraph, plan Plan, s int) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	if s < 0 || s >= plan.Shards() {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", s, plan.Shards())
	}
	return &Partition{ReadGraph: g, plan: plan, shard: s}, nil
}

// Shard returns the partition's shard index.
func (p *Partition) Shard() int { return p.shard }

// Owns reports whether this shard owns node u.
func (p *Partition) Owns(u kg.NodeID) bool { return p.plan.Of(u) == p.shard }

// OwnedNodes returns the number of nodes this shard owns.
func (p *Partition) OwnedNodes() int {
	n := 0
	for u := 0; u < p.ReadGraph.NumNodes(); u++ {
		if p.Owns(kg.NodeID(u)) {
			n++
		}
	}
	return n
}

// NodesByType narrows the base graph's answer to the shard's owned nodes —
// the one ReadGraph method whose results partition across shards.
func (p *Partition) NodesByType(t kg.TypeID) []kg.NodeID {
	all := p.ReadGraph.NodesByType(t)
	var out []kg.NodeID
	for _, u := range all {
		if p.Owns(u) {
			out = append(out, u)
		}
	}
	return out
}

var _ kg.ReadGraph = (*Partition)(nil)

// Space is one shard's stratum of a query's sampling space: the owned
// candidate answers as indices into the full answer list, their
// probabilities conditional on the stratum (they sum to 1), the stratum's
// inclusion probability Weight = Σ π′(owned answers), and an alias table for
// O(1) conditional draws.
type Space struct {
	Shard  int
	Weight float64
	// Index holds positions into the full answer/probs slices the space was
	// split from; draws from this stratum yield these global indices.
	Index []int
	// CondProbs are the per-draw probabilities conditional on the stratum,
	// parallel to Index.
	CondProbs []float64
	alias     *stats.Alias
}

// Draw samples k global answer indices i.i.d. from the stratum's
// conditional distribution.
func (s *Space) Draw(r *rand.Rand, k int) []int {
	return s.DrawInto(make([]int, 0, k), r, k)
}

// DrawInto appends k i.i.d. draws from the stratum's conditional
// distribution to dst, for callers that batch draws into a reused buffer.
func (s *Space) DrawInto(dst []int, r *rand.Rand, k int) []int {
	for i := 0; i < k; i++ {
		dst = append(dst, s.Index[s.alias.Draw(r)])
	}
	return dst
}

// SplitSpace cuts a normalised answer distribution (answers[i] drawn with
// probability probs[i]) into per-shard strata under the plan. Shards owning
// no answer are dropped: their stratum weight is zero, so they contribute
// nothing to the merged estimate. The returned strata are ordered by shard
// index and their weights sum to 1.
func SplitSpace(plan Plan, answers []kg.NodeID, probs []float64) ([]*Space, error) {
	if len(answers) != len(probs) {
		return nil, fmt.Errorf("shard: %d answers vs %d probs", len(answers), len(probs))
	}
	n := plan.Shards()
	byShard := make([][]int, n)
	for i, u := range answers {
		s := plan.Of(u)
		byShard[s] = append(byShard[s], i)
	}
	var out []*Space
	for s, idx := range byShard {
		if len(idx) == 0 {
			continue
		}
		w := 0.0
		for _, i := range idx {
			w += probs[i]
		}
		if w <= 0 {
			continue
		}
		cond := make([]float64, len(idx))
		for k, i := range idx {
			cond[k] = probs[i] / w
		}
		alias := stats.NewAlias(cond)
		if alias == nil {
			return nil, fmt.Errorf("shard: failed to build alias table for shard %d", s)
		}
		out = append(out, &Space{Shard: s, Weight: w, Index: idx, CondProbs: cond, alias: alias})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: no shard owns any candidate answer")
	}
	return out, nil
}
