// Package buildinfo carries the build provenance every kgaq binary
// reports: the version and commit stamped at link time, plus the Go
// toolchain that produced the binary. CI stamps releases via
//
//	go build -ldflags "-X kgaq/internal/buildinfo.Version=v1.2.3 \
//	                   -X kgaq/internal/buildinfo.Commit=abc1234" ./...
//
// Unstamped builds report "dev"/"unknown", so a provenance gap is visible
// instead of silent. The same record surfaces three ways: the -version
// flag of every binary, the healthz "build" block, and the
// kgaq_build_info gauge (value 1, identity in the labels — the standard
// Prometheus idiom for joining version metadata onto any other series).
package buildinfo

import (
	"fmt"
	"runtime"

	"kgaq/internal/obs"
)

// Version and Commit are stamped via -ldflags -X; see the package comment.
var (
	Version = "dev"
	Commit  = "unknown"
)

// Info is the build provenance record of the running binary.
type Info struct {
	Binary    string `json:"binary"`
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
}

// Get returns the provenance record for the named binary.
func Get(binary string) Info {
	return Info{
		Binary:    binary,
		Version:   Version,
		Commit:    Commit,
		GoVersion: runtime.Version(),
	}
}

// String renders the one-line -version output.
func (i Info) String() string {
	return fmt.Sprintf("%s %s (commit %s, %s)", i.Binary, i.Version, i.Commit, i.GoVersion)
}

var metBuildInfo = obs.Default().GaugeVec("kgaq_build_info",
	"Build provenance of the running binary: constant 1, identity in the labels.",
	"binary", "version", "commit")

// Register exports the kgaq_build_info gauge for the named binary. Call
// once from main; the gauge is constant for the process lifetime.
func Register(binary string) {
	metBuildInfo.With(binary, Version, Commit).Set(1)
}
