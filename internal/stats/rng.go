package stats

import (
	"math/rand"
)

// NewRand returns a deterministic *rand.Rand seeded with seed. All random
// behaviour in kgaq flows through explicitly seeded generators so that
// experiments are reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Fork derives a child generator from parent. Subsystems that need
// independent random streams (e.g. each bootstrap replicate, each walker)
// fork the experiment-level generator instead of sharing one, which keeps
// results independent of evaluation order.
func Fork(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}

// Splitmix is a splitmix64 generator: a single multiply-xorshift chain per
// output, no allocation, no locking. The bootstrap hot loop draws millions
// of bounded indices per query; math/rand's generic path was ~45% of warm
// query CPU, so the resampler uses this instead. Not for cryptographic or
// statistical-testing use — its output quality is ample for bootstrap index
// selection, where only uniformity over a small range matters.
//
// The zero value is a valid generator (a fixed stream); seed it via
// NewSplitmix for a reproducible stream keyed to an experiment seed.
type Splitmix struct {
	state uint64
}

// NewSplitmix returns a generator whose stream is determined by seed.
func NewSplitmix(seed int64) Splitmix {
	return Splitmix{state: uint64(seed)}
}

// Next returns the next 64 uniform bits.
func (s *Splitmix) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n) for 0 < n ≤ 2³¹ using Lemire's
// multiply-shift range reduction (bias < 2⁻³² per draw, immaterial against
// bootstrap resampling noise and far cheaper than a rejection loop).
func (s *Splitmix) Intn(n int) int {
	return int((uint64(uint32(s.Next())) * uint64(n)) >> 32)
}

// WeightedIndex draws an index in [0,len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise -1 is returned.
func WeightedIndex(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return -1
		}
		total += w
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1 // guard against floating point slack
}

// Alias implements Walker's alias method for O(1) categorical sampling from
// a fixed discrete distribution. Building the table is O(n); it is the
// workhorse behind continuous sampling, where the engine draws thousands of
// i.i.d. answers from the stationary distribution π′.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given weights. Weights must be
// non-negative with a positive sum; NewAlias returns nil otherwise.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		return nil
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil
		}
		total += w
	}
	if total <= 0 {
		return nil
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw samples one index from the alias table.
func (a *Alias) Draw(r *rand.Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// N returns the number of categories in the table.
func (a *Alias) N() int { return len(a.prob) }
